// Package saco (Synchronization-Avoiding Convex Optimization) is a Go
// implementation of the solvers from
//
//	Devarakonda, Fountoulakis, Demmel, Mahoney.
//	"Avoiding Synchronization in First-Order Methods for Sparse Convex
//	Optimization." IPDPS 2018 (arXiv:1712.06047).
//
// It provides randomized (block) coordinate descent for sparse proximal
// least squares (Lasso, elastic net, group lasso) and dual coordinate
// descent for linear SVM (hinge and squared hinge), each in a classical
// per-iteration-synchronizing form and a synchronization-avoiding (SA)
// form that communicates once every s iterations while producing the
// same iterate sequence up to floating-point roundoff.
//
// Three ways to run a solver:
//
//   - sequentially on this machine: Lasso, SVM;
//   - distributed: DistLasso, DistSVM over a Cluster naming a transport —
//     the in-process simulated world (goroutine ranks, binomial-tree
//     collectives, Cray XC30 cost model; TransportSim, the default) or a
//     real TCP mesh (TransportTCP in-process, cmd/sarank across
//     processes and machines), both bitwise-identical in trajectory;
//   - through the experiment harness regenerating the paper's tables and
//     figures: cmd/saexp.
//
// Quickstart:
//
//	data := saco.Regression("demo", 1, 1000, 500, 0.05, 10, 0.1)
//	lambda := 0.1 * saco.LambdaMax(data.Cols(), data.B)
//	res, err := saco.Lasso(data.Cols(), data.B, saco.LassoOptions{
//		Lambda: lambda, BlockSize: 8, Iters: 2000, Accelerated: true, S: 64,
//	})
package saco

import (
	"context"

	"saco/internal/casvm"
	"saco/internal/core"
	"saco/internal/datagen"
	"saco/internal/dist"
	"saco/internal/libsvm"
	"saco/internal/metrics"
	"saco/internal/mpi"
	"saco/internal/serve"
	"saco/internal/simd"
	"saco/internal/sparse"
	"saco/internal/stream"
)

// Core solver types, re-exported from the implementation packages.
type (
	// LassoOptions configures the Lasso-family solvers (see core docs).
	LassoOptions = core.LassoOptions
	// LassoResult is the Lasso solver output.
	LassoResult = core.LassoResult
	// SVMOptions configures the dual coordinate-descent SVM solvers.
	SVMOptions = core.SVMOptions
	// SVMResult is the SVM solver output.
	SVMResult = core.SVMResult
	// SVMLoss selects hinge (SVML1) or squared hinge (SVML2).
	SVMLoss = core.SVMLoss
	// Regularizer is a convex penalty with a proximal operator.
	Regularizer = core.Regularizer
	// L1 is the Lasso penalty λ‖x‖₁.
	L1 = core.L1
	// ElasticNet is λ(α‖x‖₁ + (1−α)/2‖x‖₂²).
	ElasticNet = core.ElasticNet
	// GroupLasso is λ·Σ_g‖x_g‖₂ over disjoint groups.
	GroupLasso = core.GroupLasso
	// ColMatrix is the column-sampling access the Lasso solvers need.
	ColMatrix = core.ColMatrix
	// RowMatrix is the row-sampling access the SVM solvers need.
	RowMatrix = core.RowMatrix
	// TracePoint is one tracked objective value.
	TracePoint = core.TracePoint
	// GapPoint is one tracked duality-gap measurement.
	GapPoint = core.GapPoint
)

// Hinge-loss selectors.
const (
	SVML1 = core.SVML1
	SVML2 = core.SVML2
)

// Execution-backend selection: every solve runs sequentially by default;
// BackendMulticore fans its matrix kernels across the persistent
// shared-memory worker pool; BackendAsync runs lock-free HOGWILD!-style
// solver workers against one shared atomic iterate; and the simulated
// cluster (SimulateLasso / SimulateSVM) models distributed execution,
// optionally hybrid rank×thread via Cluster.RankWorkers. Multicore
// execution parallelizes only independent output elements with unchanged
// summation order, so iterates are bitwise identical to the sequential
// backend — the shared-memory counterpart of the paper's same-sequence
// claim. Async execution keeps only convergence: runs reach the same
// optimum (tolerance-convergent) but are not reproducible step for step.
type (
	// Exec selects the execution backend of one solve (LassoOptions.Exec,
	// SVMOptions.Exec).
	Exec = core.Exec
	// Backend enumerates the shared-memory backends.
	Backend = core.Backend
)

// Backend selectors.
const (
	BackendSequential = core.BackendSequential
	BackendMulticore  = core.BackendMulticore
	BackendAsync      = core.BackendAsync
)

// Multicore returns an Exec selecting the multicore backend with w
// workers; w <= 0 uses every core (GOMAXPROCS).
func Multicore(w int) Exec {
	if w < 0 {
		w = 0
	}
	return Exec{Backend: core.BackendMulticore, Workers: w}
}

// Async returns an Exec selecting the lock-free asynchronous backend
// with w solver workers; w <= 0 uses every core (GOMAXPROCS). Async
// solves converge to the sequential optimum but are not deterministic;
// objective tracking (TrackEvery) and the SVM gap tolerance (Tol) are
// skipped, and the accelerated Lasso variants are not supported.
func Async(w int) Exec {
	if w < 0 {
		w = 0
	}
	return Exec{Backend: core.BackendAsync, Workers: w}
}

// Matrix and dataset types.
type (
	// CSR is a compressed sparse row matrix (implements RowMatrix).
	CSR = sparse.CSR
	// CSC is a compressed sparse column matrix (implements ColMatrix).
	CSC = sparse.CSC
	// COO is a coordinate-format sparse matrix builder.
	COO = sparse.COO
	// Dataset is a generated or loaded problem instance.
	Dataset = datagen.Dataset
)

// Distributed-execution types.
type (
	// Machine is the α-β-γ cost model of the modeled platform.
	Machine = mpi.Machine
	// Cluster configures a distributed run: rank count, cost model,
	// transport (Cluster.Transport: TransportSim or TransportTCP),
	// ablation switches and the hybrid rank×thread core budget.
	Cluster = dist.Options
	// ClusterTransport selects how a Cluster executes its ranks.
	ClusterTransport = dist.Transport
	// DistLassoResult is the outcome of DistLasso.
	DistLassoResult = dist.LassoResult
	// DistSVMResult is the outcome of DistSVM.
	DistSVMResult = dist.SVMResult
	// TimedPoint is a convergence point stamped with modeled seconds.
	TimedPoint = dist.TimedPoint
)

// Cluster transport selectors.
const (
	// TransportSim runs ranks as goroutines over the in-process
	// simulated world (the default).
	TransportSim = dist.TransportSim
	// TransportTCP runs ranks over a real loopback TCP mesh within this
	// process; for one-rank-per-process clusters use cmd/sarank.
	TransportTCP = dist.TransportTCP
)

// Lasso solves min ½‖Ax−b‖² + g(x) sequentially. Set opt.S > 1 for the
// synchronization-avoiding variant, opt.Accelerated for accCD/accBCD.
func Lasso(a ColMatrix, b []float64, opt LassoOptions) (*LassoResult, error) {
	return core.Lasso(a, b, opt)
}

// SVM trains a linear SVM by dual coordinate descent sequentially.
func SVM(a RowMatrix, b []float64, opt SVMOptions) (*SVMResult, error) {
	return core.SVM(a, b, opt)
}

// DistLasso runs the distributed Lasso solver (1D-row partitioning,
// Fig. 1 of the paper) on the cluster, whose Transport field names the
// execution backend: TransportSim (goroutine ranks over the in-process
// simulated world, the default) or TransportTCP (one goroutine per rank
// over a real loopback TCP mesh). Both transports carry the same
// message DAG, so the trajectory — solution, objective, trace and
// modeled cost statistics — is bitwise identical across them. For
// one-rank-per-OS-process clusters, run cmd/sarank on each node.
func DistLasso(src ClusterSource, b []float64, opt LassoOptions, cluster Cluster) (*DistLassoResult, error) {
	return dist.LassoFrom(src, b, opt, cluster)
}

// DistSVM is the 1D-column twin of DistLasso: distributed dual
// coordinate descent for the linear SVM over the transport named by
// cluster.Transport, bitwise identical across transports.
func DistSVM(src ClusterSource, b []float64, opt SVMOptions, cluster Cluster) (*DistSVMResult, error) {
	return dist.SVMFrom(src, b, opt, cluster)
}

// MatrixSource adapts an in-memory CSR matrix into a ClusterSource for
// DistLasso / DistSVM; each rank slices exactly its block from it.
func MatrixSource(a *CSR) ClusterSource { return dist.CSRSource{A: a} }

// SimulateLasso runs the distributed Lasso solver on the in-process
// simulated cluster.
//
// Deprecated: use DistLasso with MatrixSource(a); it accepts the same
// Cluster and additionally honors Cluster.Transport.
func SimulateLasso(a *CSR, b []float64, opt LassoOptions, cluster Cluster) (*DistLassoResult, error) {
	return DistLasso(MatrixSource(a), b, opt, cluster)
}

// SimulateSVM runs the distributed SVM solver on the in-process
// simulated cluster.
//
// Deprecated: use DistSVM with MatrixSource(a); it accepts the same
// Cluster and additionally honors Cluster.Transport.
func SimulateSVM(a *CSR, b []float64, opt SVMOptions, cluster Cluster) (*DistSVMResult, error) {
	return DistSVM(MatrixSource(a), b, opt, cluster)
}

// LambdaMax returns ‖Aᵀb‖_∞, the smallest λ with an all-zero Lasso
// solution; experiments typically use a fraction of it.
func LambdaMax(a ColMatrix, b []float64) float64 { return core.LambdaMaxL1(a, b) }

// CrayXC30 models the paper's evaluation platform.
func CrayXC30() Machine { return mpi.CrayXC30() }

// EthernetCluster models a commodity 10 GbE cluster.
func EthernetCluster() Machine { return mpi.EthernetCluster() }

// SparkLike models a bulk-synchronous analytics framework with
// millisecond synchronization latency (§VII).
func SparkLike() Machine { return mpi.SparkLike() }

// NewCOO returns an m×n coordinate-format builder; convert with ToCSR.
func NewCOO(m, n int) *COO { return sparse.NewCOO(m, n) }

// LoadLIBSVM reads a LIBSVM-format file (the format of every dataset in
// the paper's Tables II and IV). features = 0 infers the width.
func LoadLIBSVM(path string, features int) (*CSR, []float64, error) {
	return libsvm.ReadFile(path, features)
}

// SaveLIBSVM writes a matrix and labels in LIBSVM format.
func SaveLIBSVM(path string, a *CSR, labels []float64) error {
	return libsvm.WriteFile(path, a, labels)
}

// Regression generates a synthetic sparse regression problem with a
// planted k-sparse model: b = A·x* + sigma·noise.
func Regression(name string, seed uint64, m, n int, density float64, k int, sigma float64) *Dataset {
	return datagen.Regression(name, seed, m, n, density, k, sigma)
}

// Classification generates a synthetic sparse binary classification
// problem with a planted separator.
func Classification(name string, seed uint64, m, n int, density, sigma float64) *Dataset {
	return datagen.Classification(name, seed, m, n, density, sigma)
}

// Replica generates a named stand-in for one of the paper's LIBSVM
// datasets (url, news20, covtype, epsilon, leu, w1a, duke,
// news20.binary, rcv1.binary, gisette, leu.binary); see internal/datagen.
func Replica(name string, scale float64, seed uint64) (*Dataset, error) {
	return datagen.Replica(name, scale, seed)
}

// Out-of-core streaming dataset types (internal/stream): LIBSVM inputs
// ingested into row-block shards on disk so paper-scale matrices solve
// in bounded memory. StreamDataset.Cols() / .Rows() plug into Lasso,
// LassoPath, SVM and PegasosSVM; sequential-backend trajectories are
// bitwise identical to the in-memory solvers. Streaming v2 adds a
// column-major spill layout (LayoutCSC — column solves perform zero
// CSR→CSC conversions), a delta-varint shard codec (CodecDelta —
// roughly half the bytes on url-like inputs) and an mmap read mode
// (StreamMmap — shards decode from page-mapped files, raw vals served
// zero-copy, graceful fallback where mmap is unavailable).
type (
	// StreamDataset is an out-of-core dataset spilled to a shard cache
	// directory.
	StreamDataset = stream.Dataset
	// StreamOptions configures an out-of-core ingestion (block rows,
	// feature count, spill layout, shard codec).
	StreamOptions = stream.BuildOptions
	// StreamBlock is one CSR row block of a sequential pass.
	StreamBlock = stream.Block
	// StreamLayout selects row-major (LayoutCSR) or column-major
	// (LayoutCSC) shards.
	StreamLayout = stream.Layout
	// StreamCodec selects fixed-width (CodecRaw) or delta-varint
	// (CodecDelta) shard sections.
	StreamCodec = stream.Codec
	// StreamReadMode selects copy (StreamCopy) or mmap (StreamMmap)
	// shard reads.
	StreamReadMode = stream.ReadMode
	// StreamCacheStats is a snapshot of the shard cache's decision
	// counters (hits, misses, loads, prefetches, conversions).
	StreamCacheStats = stream.CacheStats
	// ClusterSource supplies partitioned blocks to a distributed run;
	// StreamDataset implements it out of core, MatrixSource adapts an
	// in-memory CSR.
	ClusterSource = dist.Source
)

// Streaming layout, codec and read-mode selectors.
const (
	LayoutCSR  = stream.LayoutCSR
	LayoutCSC  = stream.LayoutCSC
	CodecRaw   = stream.CodecRaw
	CodecDelta = stream.CodecDelta
	StreamCopy = stream.ReadCopy
	StreamMmap = stream.ReadMmap
)

// ParseStreamLayout maps a flag value ("csr", "csc") onto a StreamLayout.
func ParseStreamLayout(s string) (StreamLayout, error) { return stream.ParseLayout(s) }

// ParseStreamCodec maps a flag value ("raw", "delta") onto a StreamCodec.
func ParseStreamCodec(s string) (StreamCodec, error) { return stream.ParseCodec(s) }

// ConvertStream re-spills an existing shard store into dstDir with a
// different layout and/or codec in one bounded-memory pass (e.g. the
// CSR→CSC transpose that makes streamed Lasso conversion-free). The
// conversion is exact: trajectories over the converted store are
// bitwise identical.
func ConvertStream(src *StreamDataset, dstDir string, layout StreamLayout, codec StreamCodec) (*StreamDataset, error) {
	return stream.Convert(src, dstDir, layout, codec)
}

// BuildStream ingests a LIBSVM file into cacheDir in bounded memory,
// spilling row-block shards; peak resident matrix data is about
// opt.CacheShards blocks regardless of file size.
func BuildStream(svmPath, cacheDir string, opt StreamOptions) (*StreamDataset, error) {
	return stream.BuildFile(svmPath, cacheDir, opt)
}

// OpenStream reopens a previously built shard cache directory without
// re-ingesting the text file.
func OpenStream(cacheDir string) (*StreamDataset, error) {
	return stream.Open(cacheDir)
}

// SimulateLassoFrom is SimulateLasso over any block source (an
// out-of-core StreamDataset, or an in-memory CSR via MatrixSource):
// each rank loads exactly its row block.
//
// Deprecated: use DistLasso, which is this function under its
// transport-neutral name.
func SimulateLassoFrom(src ClusterSource, b []float64, opt LassoOptions, cluster Cluster) (*DistLassoResult, error) {
	return DistLasso(src, b, opt, cluster)
}

// SimulateSVMFrom is SimulateSVM over any block source; each rank
// assembles its column block with one pass over the source.
//
// Deprecated: use DistSVM, which is this function under its
// transport-neutral name.
func SimulateSVMFrom(src ClusterSource, b []float64, opt SVMOptions, cluster Cluster) (*DistSVMResult, error) {
	return DistSVM(src, b, opt, cluster)
}

// PathPoint is one solution along a Lasso regularization path.
type PathPoint = core.PathPoint

// LassoPath solves the Lasso problem along a descending λ sequence with
// warm starts; the SA options apply to every solve.
func LassoPath(a ColMatrix, b []float64, lambdas []float64, opt LassoOptions) ([]PathPoint, error) {
	return core.LassoPath(a, b, lambdas, opt)
}

// PegasosSVM is the primal stochastic-subgradient baseline (the P-packSVM
// family of the paper's §II); it optimizes the same objective as SVM but
// offers no duality-gap certificate.
func PegasosSVM(a RowMatrix, b []float64, opt SVMOptions) (*SVMResult, error) {
	return core.PegasosSVM(a, b, opt)
}

// CA-SVM types: the communication-eliminating scheme of You et al. (§II)
// with this library's (SA-)dual-CD as the local solver.
type (
	// CASVMOptions configures TrainCASVM.
	CASVMOptions = casvm.Options
	// CASVMModel is a trained clustered SVM.
	CASVMModel = casvm.Model
)

// TrainCASVM k-means-partitions the data and trains one local SVM per
// cluster with zero inter-cluster communication, trading accuracy for
// the eliminated synchronization (CA-SVM, IPDPS 2015). Set
// opt.Local.S > 1 to make each local solver synchronization-avoiding —
// the composition the paper suggests in §II.
func TrainCASVM(a *CSR, b []float64, opt CASVMOptions) (*CASVMModel, error) {
	return casvm.Train(a, b, opt)
}

// LassoDualityGap returns a rigorous suboptimality certificate for an L1
// solution x with residual r = A·x − b.
func LassoDualityGap(a ColMatrix, b, x, r []float64, lambda float64) float64 {
	return core.LassoDualityGap(a, b, x, r, lambda)
}

// Model-serving types (internal/serve): a versioned binary model
// format, a registry that hot-swaps model versions through an atomic
// pointer, an HTTP scoring server that micro-batches concurrent
// requests into pooled kernel calls, and a live HOGWILD! refit that
// shares one lock-free coefficient vector between training and
// publishing. See cmd/saserve for the binary.
type (
	// Model is one immutable trained coefficient vector plus provenance
	// (kind, dims, lambda, registry version).
	Model = serve.Model
	// ModelKind tags the problem family of a Model.
	ModelKind = serve.Kind
	// ModelRegistry stores versioned models behind a lock-free atomic
	// pointer, watching a directory for hot swaps.
	ModelRegistry = serve.Registry
	// ServeOptions tunes the scoring server (batch size, linger window,
	// kernel workers).
	ServeOptions = serve.Options
	// ServeServer answers /predict, /healthz and /stats.
	ServeServer = serve.Server
	// RefitOptions tunes the live lock-free refit loop.
	RefitOptions = serve.RefitOptions
	// LoadMode selects how model artifacts materialize: LoadCopy reads
	// them into fresh slices, LoadMmap serves coefficients zero-copy
	// from a page-mapped file (falling back to copy where mmap is
	// unavailable or the artifact is not the binary format).
	LoadMode = serve.LoadMode
	// ServeCluster shards a fleet of named models across a static peer
	// list with a consistent-hash ring; each replica owns a slice of
	// the model directories and forwards the rest.
	ServeCluster = serve.Cluster
	// ServeClusterOptions configures a ServeCluster (vnodes, load mode,
	// rescan cadence, metrics).
	ServeClusterOptions = serve.ClusterOptions
	// ServeClusterStatus is the GET /cluster reply.
	ServeClusterStatus = serve.ClusterStatus
	// LearnBuffer is the bounded staging buffer between POST /learn and
	// a live refit.
	LearnBuffer = serve.LearnBuffer
	// MetricsRegistry is a zero-dependency Prometheus-text metrics
	// registry (counters, gauges, histograms) servable at /metrics.
	MetricsRegistry = metrics.Registry
)

// Model artifact load modes.
const (
	LoadCopy = serve.LoadCopy
	LoadMmap = serve.LoadMmap
)

// Model kinds.
const (
	KindRaw     = serve.KindRaw
	KindLasso   = serve.KindLasso
	KindSVM     = serve.KindSVM
	KindPegasos = serve.KindPegasos
)

// NewModel builds a Model from a dense coefficient vector, keeping the
// nonzeros.
func NewModel(kind ModelKind, x []float64) *Model { return serve.NewModel(kind, x) }

// LoadModel reads a model file, auto-detecting the versioned binary
// format (by magic) or the text format (one value per line).
func LoadModel(path string) (*Model, error) { return serve.LoadModelFile(path) }

// SaveModel writes a model in the versioned binary format (sparse
// coefficients, provenance header, checksum).
func SaveModel(path string, m *Model) error { return serve.WriteModelFile(path, m) }

// OpenModelRegistry opens (creating if needed) a model directory and
// serves the newest valid version in it.
func OpenModelRegistry(dir string) (*ModelRegistry, error) { return serve.OpenRegistry(dir) }

// OpenModelRegistryMode is OpenModelRegistry with an explicit artifact
// load mode (LoadCopy or LoadMmap).
func OpenModelRegistryMode(dir string, mode LoadMode) (*ModelRegistry, error) {
	return serve.OpenRegistryMode(dir, mode)
}

// NewCluster joins a static peer list as self and takes ownership of
// this replica's ring slice of the model directories under root; pair
// it with NewClusterServer. Close it when done.
func NewCluster(root, self string, peers []string, opt ServeClusterOptions) (*ServeCluster, error) {
	return serve.NewCluster(root, self, peers, opt)
}

// NewClusterServer starts a scoring server fronting a cluster's owned
// models: /predict and /learn take a ?model= name, resolve it against
// the shard ring, and forward to the owning replica when it is not
// this one.
func NewClusterServer(c *ServeCluster, opt ServeOptions) *ServeServer {
	return serve.NewClusterServer(c, opt)
}

// NewLearnBuffer returns a staging buffer holding at most capRows
// labeled rows (capRows <= 0 uses the serving default).
func NewLearnBuffer(capRows int) *LearnBuffer { return serve.NewLearnBuffer(capRows) }

// RefitStream drains a LearnBuffer on a cadence into a lock-free
// HOGWILD! refit over a sliding window of recent rows, publishing a
// model version per productive cycle until ctx is cancelled. It is the
// consumer behind POST /learn (start it from ServeOptions.OnLearn).
func RefitStream(ctx context.Context, reg *ModelRegistry, buf *LearnBuffer, opt RefitOptions) error {
	return serve.RefitStream(ctx, reg, buf, opt)
}

// NewMetricsRegistry returns an empty metrics registry; pass it to
// ServeOptions.Metrics / ServeClusterOptions.Metrics and mount its
// Handler (the serving layer mounts it at /metrics automatically).
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// NewServer starts a scoring server over a registry; mount Handler()
// on an http.Server (or use cmd/saserve).
func NewServer(reg *ModelRegistry, opt ServeOptions) *ServeServer { return serve.NewServer(reg, opt) }

// Refit streams labeled rows into a lock-free HOGWILD! solver warm-
// started from the registry's serving model and publishes snapshots of
// the live coefficient vector until ctx is cancelled.
func Refit(ctx context.Context, reg *ModelRegistry, a *CSR, b []float64, opt RefitOptions) error {
	return serve.Refit(ctx, reg, a, b, opt)
}

// Predict returns the decision values A·x for a fitted model.
func Predict(a RowMatrix, x []float64) []float64 {
	m, _ := a.Dims()
	out := make([]float64, m)
	a.MulVec(x, out)
	return out
}

// Accuracy returns the fraction of labels whose sign the model x
// predicts correctly (binary classification with ±1 labels).
func Accuracy(a RowMatrix, b, x []float64) float64 {
	if len(b) == 0 {
		return 0
	}
	margins := Predict(a, x)
	correct := 0
	for i, v := range margins {
		if v*b[i] > 0 {
			correct++
		}
	}
	return float64(correct) / float64(len(b))
}

// KernelSet returns the name of the active internal/simd kernel
// dispatch set (scalar, unrolled, avx2, or reassoc), chosen at init
// from CPU capabilities or the SACO_KERNELS environment variable. CLIs
// surface it so a recorded result names the kernels that produced it.
func KernelSet() string { return simd.Active().Name() }

// KernelSets lists every kernel set available on this machine.
func KernelSets() []string { return simd.Names() }

// KernelWarning returns a human-readable note when a SACO_KERNELS
// override was ignored (unknown name or unavailable on this CPU), else
// the empty string. Libraries never panic on a bad override; CLIs call
// this to tell the user.
func KernelWarning() string { return simd.Warning() }
