// Package costmodel implements the closed-form algorithm costs of Table I
// of the paper: flops (F), memory (M), latency (L) and message size (W)
// along the critical path for classical and synchronization-avoiding
// block coordinate descent, plus the SVM analogues. Combined with a
// machine model (α, β, γ) it predicts running times, the optimal
// recurrence-unrolling parameter s, and the speedup curves of Fig. 4.
package costmodel

import (
	"math"

	"saco/internal/mpi"
)

// Problem describes one solver configuration in the model's terms.
type Problem struct {
	M        int     // data points (rows)
	N        int     // features (columns)
	Density  float64 // f: nnz / (m·n)
	Mu       int     // block size µ
	H        int     // iterations
	S        int     // recurrence unrolling parameter (1 = classical)
	P        int     // processors
	Cores    int     // per-rank core budget for hybrid rank×thread runs (0/1 = flat MPI)
	HalfPack bool    // send only the Gram upper triangle (paper §III fn. 3)
}

// effectiveCores normalizes a per-rank core budget: 0 and 1 both mean
// flat MPI.
func effectiveCores(c int) float64 {
	if c > 1 {
		return float64(c)
	}
	return 1
}

// cores returns the effective per-rank core budget.
func (pb Problem) cores() float64 { return effectiveCores(pb.Cores) }

// logP returns ⌈log₂P⌉, the round count of the binomial-tree collectives.
func (pb Problem) logP() float64 {
	if pb.P <= 1 {
		return 0
	}
	return math.Ceil(math.Log2(float64(pb.P)))
}

// outerIters returns the number of communication rounds, H/s (Table I's
// L = O(H/s · logP) row).
func (pb Problem) outerIters() float64 {
	return math.Ceil(float64(pb.H) / float64(pb.S))
}

// gramWords returns the words of one batched Gram + residual-product
// exchange: the sµ×sµ Gram matrix plus the 2sµ hoisted products
// Yᵀ[ỹ z̃] (Alg. 2 lines 11–12).
func (pb Problem) gramWords() float64 {
	k := float64(pb.S * pb.Mu)
	g := k * k
	if pb.HalfPack {
		g = k * (k + 1) / 2
	}
	return g + 2*k
}

// Flops returns the model flop count per processor over the whole run:
// F = O(H·s·µ²·f·m/P + H·µ³) (Table I, with the classical case s=1).
// The first term is the Gram and product assembly over the owned row
// block, the second the µ×µ eigenvalue solve and subproblem updates that
// every processor performs redundantly.
func (pb Problem) Flops() float64 {
	fmP := pb.Density * float64(pb.M) / float64(pb.P)
	mu := float64(pb.Mu)
	perIter := 2*float64(pb.S)*mu*mu*fmP + 2*mu*fmP
	redundant := mu * mu * mu
	return float64(pb.H) * (perIter + redundant)
}

// MemoryWords returns the model per-processor storage:
// M = O(f·m·n/P + m/P + s²µ² + n) words (Table I).
func (pb Problem) MemoryWords() float64 {
	k := float64(pb.S * pb.Mu)
	return pb.Density*float64(pb.M)*float64(pb.N)/float64(pb.P) +
		float64(pb.M)/float64(pb.P) + k*k + 3*float64(pb.N)
}

// LatencyMessages returns the number of messages on the critical path:
// L = O(H/s · logP), counting the two binomial trees of each Allreduce.
func (pb Problem) LatencyMessages() float64 {
	return pb.outerIters() * 2 * pb.logP()
}

// BandwidthWords returns the words moved on the critical path:
// W = O(H·s·µ² · logP) — each of the H/s reductions moves the s²µ² Gram
// words through 2·logP rounds.
func (pb Problem) BandwidthWords() float64 {
	return pb.outerIters() * pb.gramWords() * 2 * pb.logP()
}

// Time returns the modeled running time on machine mc: F·γ + L·α + W·β.
// Gram assembly runs at the blocked (BLAS-3) rate when s·µ > 1 and the
// working set fits in cache; everything else streams. This reproduces the
// computation-speedup column of Fig. 4e–h, including its decline once the
// s²µ² working set spills the cache.
func (pb Problem) Time(mc mpi.Machine) float64 {
	comp := pb.CompTime(mc)
	comm := pb.CommTime(mc)
	return comp + comm
}

// CompTime returns the modeled computation component of Time. With a
// per-rank core budget (hybrid rank×thread runs) the data-parallel terms
// — Gram assembly and the streamed products over the owned row block —
// divide by Cores; the µ³ eigensolve every rank performs redundantly
// does not, which is why hybrid speedup saturates once the redundant
// scalar work dominates (Amdahl inside the rank).
func (pb Problem) CompTime(mc mpi.Machine) float64 {
	fmP := pb.Density * float64(pb.M) / float64(pb.P)
	mu := float64(pb.Mu)
	k := float64(pb.S) * mu
	cr := pb.cores()
	gramFlops := float64(pb.H) * 2 * float64(pb.S) * mu * mu * fmP / cr
	streamFlops := float64(pb.H) * (2*mu*fmP/cr + mu*mu*mu)
	gamma := mc.GammaStream
	if pb.S*pb.Mu > 1 {
		ws := int(k*k) + int(2*k*fmP)
		if mc.CacheWords == 0 || ws <= mc.CacheWords {
			gamma = mc.GammaBlocked
		}
	}
	return gramFlops*gamma + streamFlops*mc.GammaStream
}

// CommTime returns the modeled communication component of Time.
func (pb Problem) CommTime(mc mpi.Machine) float64 {
	return pb.LatencyMessages()*mc.Alpha + pb.BandwidthWords()*mc.Beta
}

// WithS returns a copy of the problem with a different unrolling factor.
func (pb Problem) WithS(s int) Problem {
	pb.S = s
	return pb
}

// WithP returns a copy of the problem with a different processor count.
func (pb Problem) WithP(p int) Problem {
	pb.P = p
	return pb
}

// WithCores returns a copy of the problem with a different per-rank core
// budget.
func (pb Problem) WithCores(c int) Problem {
	pb.Cores = c
	return pb
}

// HybridSpeedup returns the modeled speedup of the hybrid rank×thread
// configuration over its flat (one core per rank) counterpart at equal
// rank count — the gain -rank-workers buys without changing the
// communication pattern.
func (pb Problem) HybridSpeedup(mc mpi.Machine) float64 {
	return pb.WithCores(1).Time(mc) / pb.Time(mc)
}

// Speedup returns the modeled speedup of this configuration over its
// classical (s = 1) counterpart: the total, communication-only, and
// computation-only ratios plotted in Fig. 4e–h.
func (pb Problem) Speedup(mc mpi.Machine) (total, comm, comp float64) {
	base := pb.WithS(1)
	total = base.Time(mc) / pb.Time(mc)
	comm = safeRatio(base.CommTime(mc), pb.CommTime(mc))
	comp = safeRatio(base.CompTime(mc), pb.CompTime(mc))
	return total, comm, comp
}

// OptimalS returns the s in [1, sMax] minimizing modeled time. The
// analytic optimum balances the latency saving H/s·α·logP against the
// bandwidth growth H·s·µ²·β·logP, giving s* ≈ √(α/(µ²β)); this function
// searches the discrete range, which also accounts for the cache knee.
func OptimalS(pb Problem, mc mpi.Machine, sMax int) int {
	best, bestT := 1, math.Inf(1)
	for s := 1; s <= sMax; s++ {
		if t := pb.WithS(s).Time(mc); t < bestT {
			best, bestT = s, t
		}
	}
	return best
}

// SVMProblem models the dual coordinate-descent SVM (Alg. 3 vs Alg. 4):
// one coordinate per iteration, 1D-column partitioning, an s×s Gram
// matrix per outer iteration.
type SVMProblem struct {
	M       int     // data points
	N       int     // features
	Density float64 // f
	H       int     // iterations
	S       int     // unrolling (1 = classical)
	P       int     // processors
	Cores   int     // per-rank core budget for hybrid rank×thread runs (0/1 = flat MPI)
}

// Flops per processor: each inner step touches one row (f·n/P nonzeros
// locally); the batched Gram costs s²·f·n/P per outer iteration.
func (pb SVMProblem) Flops() float64 {
	fnP := pb.Density * float64(pb.N) / float64(pb.P)
	perOuter := 2*float64(pb.S*pb.S)*fnP + 2*float64(pb.S)*fnP
	return math.Ceil(float64(pb.H)/float64(pb.S)) * perOuter
}

// LatencyMessages on the critical path: 2·logP per outer iteration.
func (pb SVMProblem) LatencyMessages() float64 {
	lp := Problem{P: pb.P}.logP
	return math.Ceil(float64(pb.H)/float64(pb.S)) * 2 * lp()
}

// BandwidthWords on the critical path: the s×s Gram (plus s hoisted dot
// products) through 2·logP rounds per outer iteration.
func (pb SVMProblem) BandwidthWords() float64 {
	lp := Problem{P: pb.P}.logP
	words := float64(pb.S*pb.S) + float64(pb.S)
	return math.Ceil(float64(pb.H)/float64(pb.S)) * words * 2 * lp()
}

// Time returns the modeled running time: F·γ + L·α + W·β. The SVM
// kernels are all data-parallel over the owned column block, so the
// hybrid core budget divides the whole flop term.
func (pb SVMProblem) Time(mc mpi.Machine) float64 {
	gamma := mc.GammaStream
	if pb.S > 1 {
		ws := pb.S * pb.S
		if mc.CacheWords == 0 || ws <= mc.CacheWords {
			gamma = mc.GammaBlocked
		}
	}
	cr := effectiveCores(pb.Cores)
	return pb.Flops()/cr*gamma + pb.LatencyMessages()*mc.Alpha + pb.BandwidthWords()*mc.Beta
}

// WithS returns a copy with a different unrolling factor.
func (pb SVMProblem) WithS(s int) SVMProblem {
	pb.S = s
	return pb
}

// WithCores returns a copy with a different per-rank core budget.
func (pb SVMProblem) WithCores(c int) SVMProblem {
	pb.Cores = c
	return pb
}

// Speedup returns the modeled speedup over the classical variant.
func (pb SVMProblem) Speedup(mc mpi.Machine) float64 {
	return pb.WithS(1).Time(mc) / pb.Time(mc)
}

// OptimalSVMS returns the s in [1, sMax] minimizing the modeled SA-SVM
// time, the SVM counterpart of OptimalS.
func OptimalSVMS(pb SVMProblem, mc mpi.Machine, sMax int) int {
	best, bestT := 1, math.Inf(1)
	for s := 1; s <= sMax; s++ {
		if t := pb.WithS(s).Time(mc); t < bestT {
			best, bestT = s, t
		}
	}
	return best
}

func safeRatio(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return a / b
}
