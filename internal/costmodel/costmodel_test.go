package costmodel

import (
	"math"
	"testing"
	"testing/quick"

	"saco/internal/mpi"
)

func newsProblem() Problem {
	return Problem{M: 16000, N: 62000, Density: 0.0013, Mu: 8, H: 1000, S: 1, P: 768}
}

func TestLatencyDropsByS(t *testing.T) {
	pb := newsProblem()
	base := pb.LatencyMessages()
	for _, s := range []int{2, 4, 8, 16, 50} {
		got := pb.WithS(s).LatencyMessages()
		want := math.Ceil(float64(pb.H)/float64(s)) / float64(pb.H) * base
		if math.Abs(got-want) > 1e-9*want {
			t.Fatalf("s=%d: latency %v, want %v", s, got, want)
		}
	}
}

func TestBandwidthGrowsWithS(t *testing.T) {
	pb := newsProblem()
	prev := pb.BandwidthWords()
	for _, s := range []int{2, 4, 8, 16} {
		got := pb.WithS(s).BandwidthWords()
		if got <= prev {
			t.Fatalf("s=%d: bandwidth %v did not grow from %v", s, got, prev)
		}
		prev = got
	}
}

func TestFlopsGrowLinearlyInS(t *testing.T) {
	// Use few processors so local Gram work (which scales with s)
	// dominates the redundant µ³ term; at the paper's P=768 each rank owns
	// so few rows that the replicated subproblem work dominates instead.
	pb := newsProblem().WithP(4)
	f1 := pb.Flops()
	f8 := pb.WithS(8).Flops()
	// The Gram term dominates; the ratio should be close to 8 but below it
	// because the residual product and eigen terms do not scale with s.
	if ratio := f8 / f1; ratio < 3 || ratio > 8 {
		t.Fatalf("flops ratio s8/s1 = %v, want within (3, 8]", ratio)
	}
}

func TestHalfPackHalvesGramWords(t *testing.T) {
	pb := newsProblem().WithS(16)
	full := pb.gramWords()
	pb.HalfPack = true
	half := pb.gramWords()
	if half >= full || half < 0.4*full {
		t.Fatalf("half-pack words %v vs full %v", half, full)
	}
}

func TestMemoryGrowsQuadraticallyInS(t *testing.T) {
	pb := newsProblem()
	m1 := pb.MemoryWords()
	m16 := pb.WithS(16).MemoryWords()
	if m16 <= m1 {
		t.Fatal("memory did not grow with s")
	}
	// The s²µ² term: 16²·64 = 16384 extra words minimum.
	if m16-m1 < 16*16*64-64 {
		t.Fatalf("memory delta %v too small", m16-m1)
	}
}

func TestSpeedupShapeOnHighLatencyMachine(t *testing.T) {
	// On a latency-dominated machine, moderate s must speed things up and
	// the speedup must eventually decay as bandwidth takes over.
	pb := Problem{M: 100000, N: 50000, Density: 0.001, Mu: 4, H: 1000, P: 1024}
	mc := mpi.SparkLike()
	t1 := pb.Time(mc)
	t16 := pb.WithS(16).Time(mc)
	if t16 >= t1 {
		t.Fatalf("s=16 not faster on Spark-like machine: %v vs %v", t16, t1)
	}
	sStar := OptimalS(pb, mc, 4096)
	tStar := pb.WithS(sStar).Time(mc)
	tHuge := pb.WithS(4096).Time(mc)
	if tHuge < tStar {
		t.Fatal("model has no bandwidth penalty at huge s")
	}
	if sStar < 2 {
		t.Fatalf("optimal s = %d on a high-latency machine", sStar)
	}
}

func TestSpeedupComponentsConsistent(t *testing.T) {
	pb := newsProblem().WithS(8)
	mc := mpi.CrayXC30()
	total, comm, comp := pb.Speedup(mc)
	if total <= 0 || comm <= 0 || comp <= 0 {
		t.Fatalf("non-positive speedups: %v %v %v", total, comm, comp)
	}
	// Total must lie between the min and max of the components.
	lo, hi := math.Min(comm, comp), math.Max(comm, comp)
	if total < lo-1e-9 || total > hi+1e-9 {
		t.Fatalf("total %v outside [%v, %v]", total, lo, hi)
	}
}

func TestCacheKneeReducesComputeGain(t *testing.T) {
	// µ = 1: classical CD streams individual dot products (BLAS-1) while
	// the SA Gram runs blocked (BLAS-3) — this is the Fig. 4e–h setting
	// where the paper observes a computation speedup > 1 at moderate s.
	pb := Problem{M: 100000, N: 50000, Density: 0.01, Mu: 1, H: 100, P: 64}
	mc := mpi.CrayXC30()
	small := pb.WithS(4)
	// Choose s so the Gram working set s²µ² exceeds the cache.
	huge := pb.WithS(4096)
	_, _, compSmall := small.Speedup(mc)
	_, _, compHuge := huge.Speedup(mc)
	if compSmall <= 1 {
		t.Fatalf("moderate s should gain from BLAS-3 rate, got %v", compSmall)
	}
	if compHuge >= compSmall {
		t.Fatalf("cache knee missing: comp speedup %v at s=4096 vs %v at s=4", compHuge, compSmall)
	}
}

func TestOptimalSScalesWithLatency(t *testing.T) {
	pb := Problem{M: 500000, N: 100000, Density: 0.0001, Mu: 1, H: 10000, P: 4096}
	sCray := OptimalS(pb, mpi.CrayXC30(), 2048)
	sSpark := OptimalS(pb, mpi.SparkLike(), 2048)
	if sSpark <= sCray {
		t.Fatalf("optimal s should grow with latency: cray=%d spark=%d", sCray, sSpark)
	}
}

func TestTimeMonotoneInP(t *testing.T) {
	// More processors cannot slow the modeled compute phase; total time
	// may rise from the logP terms, but compute strictly shrinks.
	pb := newsProblem()
	mc := mpi.CrayXC30()
	if pb.WithP(2*pb.P).CompTime(mc) >= pb.CompTime(mc) {
		t.Fatal("compute time did not shrink with P")
	}
}

func TestSVMModelBasics(t *testing.T) {
	pb := SVMProblem{M: 20000, N: 50000, Density: 0.0003, H: 100000, S: 1, P: 576}
	mc := mpi.CrayXC30()
	t1 := pb.Time(mc)
	t64 := pb.WithS(64).Time(mc)
	if t64 >= t1 {
		t.Fatalf("SA-SVM s=64 not faster: %v vs %v", t64, t1)
	}
	if sp := pb.WithS(64).Speedup(mc); sp <= 1 {
		t.Fatalf("speedup %v", sp)
	}
	// Latency drops by exactly the outer-iteration ratio.
	l1 := pb.LatencyMessages()
	l64 := pb.WithS(64).LatencyMessages()
	if math.Abs(l1/l64-64) > 1 {
		t.Fatalf("latency ratio %v, want ~64", l1/l64)
	}
}

// Property: when H is divisible by both s and s+1 (no ceiling boundary
// effects), latency messages decrease in s and bandwidth words increase.
func TestMonotonicityProperty(t *testing.T) {
	f := func(mRaw, nRaw uint16, muRaw, sRaw uint8, pRaw uint16) bool {
		s := 1 + int(sRaw%100)
		pb := Problem{
			M:       1000 + int(mRaw),
			N:       1000 + int(nRaw),
			Density: 0.01,
			Mu:      1 + int(muRaw%16),
			H:       10 * s * (s + 1),
			S:       s,
			P:       2 + int(pRaw%1000),
		}
		s2 := pb.WithS(s + 1)
		return s2.LatencyMessages() <= pb.LatencyMessages()+1e-9 &&
			s2.BandwidthWords() >= pb.BandwidthWords()-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestP1HasNoCommunication(t *testing.T) {
	pb := newsProblem().WithP(1)
	if pb.LatencyMessages() != 0 || pb.BandwidthWords() != 0 {
		t.Fatal("P=1 should have zero communication")
	}
	if pb.CommTime(mpi.CrayXC30()) != 0 {
		t.Fatal("P=1 comm time nonzero")
	}
}

// TestHybridCores pins the hybrid rank×thread model: the per-rank core
// budget divides only the data-parallel flop terms, so time strictly
// decreases with cores while communication is untouched, and the
// redundant µ³ eigensolve bounds the achievable speedup (Amdahl inside
// the rank).
func TestHybridCores(t *testing.T) {
	mc := mpi.CrayXC30()
	pb := Problem{M: 1 << 20, N: 1 << 18, Density: 1e-3, Mu: 8, H: 1000, S: 16, P: 64, HalfPack: true}
	prev := pb.Time(mc)
	for _, c := range []int{2, 4, 16} {
		hy := pb.WithCores(c)
		if got := hy.Time(mc); got >= prev {
			t.Fatalf("cores=%d: time %v not below %v", c, got, prev)
		} else {
			prev = got
		}
		if hy.CommTime(mc) != pb.CommTime(mc) {
			t.Fatalf("cores=%d: communication time changed", c)
		}
		if s := hy.HybridSpeedup(mc); s <= 1 || s > float64(c) {
			t.Fatalf("cores=%d: hybrid speedup %v outside (1, %d]", c, s, c)
		}
	}
	// Redundant scalar work does not scale: with enormous µ³ relative to
	// the kernel terms, the hybrid speedup collapses toward 1.
	tiny := Problem{M: 64, N: 1 << 18, Density: 1e-5, Mu: 64, H: 100, S: 1, P: 64}
	if s := tiny.WithCores(64).HybridSpeedup(mc); s > 1.5 {
		t.Fatalf("Amdahl bound violated: speedup %v on eig-dominated problem", s)
	}

	svm := SVMProblem{M: 1 << 20, N: 1 << 18, Density: 1e-3, H: 1000, S: 32, P: 64}
	if svm.WithCores(8).Time(mc) >= svm.Time(mc) {
		t.Fatal("SVM hybrid time did not decrease with cores")
	}
	if svm.WithCores(8).LatencyMessages() != svm.LatencyMessages() {
		t.Fatal("SVM latency changed with cores")
	}
}
