package mat

import (
	"math"
	"sync/atomic"
)

// AtomicVec is a float64 vector whose elements are read and written with
// lock-free atomic operations — the shared iterate of the asynchronous
// (HOGWILD!-style) backend. Elements are stored as IEEE-754 bit patterns
// in uint64 words so sync/atomic applies; Add is a compare-and-swap
// loop, the standard construction for atomic float accumulation.
//
// Atomics are what make the async backend's races *benign*: concurrent
// workers may interleave element updates in any order (so results are
// not deterministic, unlike every other backend), but no update is ever
// lost or torn, and the race detector stays silent — the repository's
// -race CI gate covers the async solvers like everything else.
type AtomicVec struct {
	bits []uint64
}

// NewAtomicVec returns a zeroed n-element atomic vector.
func NewAtomicVec(n int) *AtomicVec {
	return &AtomicVec{bits: make([]uint64, n)}
}

// NewAtomicVecFrom returns an atomic vector initialized to a copy of
// src.
func NewAtomicVecFrom(src []float64) *AtomicVec {
	v := NewAtomicVec(len(src))
	for i, x := range src {
		v.bits[i] = math.Float64bits(x) //saco:nolint atomicguard pre-publication init: the vector is not shared yet, plain stores cannot tear
	}
	return v
}

// Len returns the element count.
func (v *AtomicVec) Len() int { return len(v.bits) }

// Load atomically reads element i.
func (v *AtomicVec) Load(i int) float64 {
	return math.Float64frombits(atomic.LoadUint64(&v.bits[i]))
}

// Store atomically writes element i.
func (v *AtomicVec) Store(i int, x float64) {
	atomic.StoreUint64(&v.bits[i], math.Float64bits(x))
}

// Add atomically performs v[i] += delta via a CAS loop. Concurrent adds
// to one element serialize in some order; none is lost.
func (v *AtomicVec) Add(i int, delta float64) {
	for {
		old := atomic.LoadUint64(&v.bits[i])
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if atomic.CompareAndSwapUint64(&v.bits[i], old, nw) {
			return
		}
	}
}

// CompareAndSwap atomically replaces element i with nw if it still holds
// old (bitwise comparison), reporting success. It is the primitive the
// async dual solver uses to keep box constraints exact under collisions.
func (v *AtomicVec) CompareAndSwap(i int, old, nw float64) bool {
	return atomic.CompareAndSwapUint64(&v.bits[i], math.Float64bits(old), math.Float64bits(nw))
}

// Snapshot copies the vector into dst (allocated when nil) with atomic
// element loads. Concurrent writers make the snapshot a per-element
// (not globally) consistent view; callers wanting a quiescent copy must
// join their workers first.
func (v *AtomicVec) Snapshot(dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, len(v.bits))
	}
	for i := range v.bits {
		dst[i] = math.Float64frombits(atomic.LoadUint64(&v.bits[i]))
	}
	return dst
}

// Gather atomically loads dst[k] = v[idx[k]].
func (v *AtomicVec) Gather(dst []float64, idx []int) {
	for k, i := range idx {
		dst[k] = v.Load(i)
	}
}

// ScatterAdd atomically performs v[idx[k]] += delta[k].
func (v *AtomicVec) ScatterAdd(delta []float64, idx []int) {
	for k, i := range idx {
		v.Add(i, delta[k])
	}
}
