package mat

import (
	"sync"
	"testing"
)

func TestAtomicVecBasics(t *testing.T) {
	v := NewAtomicVec(3)
	if v.Len() != 3 || v.Load(1) != 0 {
		t.Fatal("zero init")
	}
	v.Store(1, 2.5)
	if v.Load(1) != 2.5 {
		t.Fatal("store/load")
	}
	v.Add(1, -1.25)
	if v.Load(1) != 1.25 {
		t.Fatal("add")
	}
	if v.CompareAndSwap(1, 99, 0) {
		t.Fatal("CAS must fail on stale value")
	}
	if !v.CompareAndSwap(1, 1.25, 7) || v.Load(1) != 7 {
		t.Fatal("CAS must succeed on current value")
	}
	w := NewAtomicVecFrom([]float64{1, 2, 3})
	got := w.Snapshot(nil)
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("snapshot %v", got)
	}
	buf := make([]float64, 2)
	w.Gather(buf, []int{2, 0})
	if buf[0] != 3 || buf[1] != 1 {
		t.Fatalf("gather %v", buf)
	}
	w.ScatterAdd([]float64{10, 20}, []int{0, 2})
	if w.Load(0) != 11 || w.Load(2) != 23 {
		t.Fatal("scatter-add")
	}
}

// TestAtomicVecConcurrentAdds: the CAS loop must lose no update under
// contention (run under -race in CI).
func TestAtomicVecConcurrentAdds(t *testing.T) {
	const workers, per = 8, 10000
	v := NewAtomicVec(4)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				v.Add(i%4, 1)
			}
		}()
	}
	wg.Wait()
	total := 0.0
	for i := 0; i < 4; i++ {
		total += v.Load(i)
	}
	if total != workers*per {
		t.Fatalf("lost updates: total %v, want %d", total, workers*per)
	}
}
