package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randDense(rng *rand.Rand, r, c int) *Dense {
	a := NewDense(r, c)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	return a
}

func TestDenseBasics(t *testing.T) {
	a := NewDense(2, 3)
	a.Set(0, 1, 5)
	a.Set(1, 2, -2)
	if a.At(0, 1) != 5 || a.At(1, 2) != -2 || a.At(0, 0) != 0 {
		t.Fatal("Set/At failed")
	}
	row := a.Row(1)
	if len(row) != 3 || row[2] != -2 {
		t.Fatalf("Row = %v", row)
	}
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("Clone not equal")
	}
	b.Set(0, 0, 1)
	if a.Equal(b) || a.At(0, 0) != 0 {
		t.Fatal("Clone aliases original")
	}
	at := a.T()
	if at.R != 3 || at.C != 2 || at.At(1, 0) != 5 || at.At(2, 1) != -2 {
		t.Fatal("transpose wrong")
	}
	a.Zero()
	for _, v := range a.Data {
		if v != 0 {
			t.Fatal("Zero failed")
		}
	}
}

func TestNewDenseDataValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad data length")
		}
	}()
	NewDenseData(2, 2, []float64{1, 2, 3})
}

func TestGemvAgainstManual(t *testing.T) {
	a := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	x := []float64{1, 0, -1}
	y := []float64{10, 20}
	Gemv(2, a, x, 1, y) // y = 2*A*x + y = 2*[-2,-2] + [10,20]
	if y[0] != 6 || y[1] != 16 {
		t.Fatalf("Gemv = %v", y)
	}
}

func TestGemvTAgainstExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randDense(rng, 7, 5)
	x := make([]float64, 7)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y1 := make([]float64, 5)
	y2 := make([]float64, 5)
	GemvT(1.5, a, x, 0, y1)
	Gemv(1.5, a.T(), x, 0, y2)
	for i := range y1 {
		if !almostEq(y1[i], y2[i], 1e-12) {
			t.Fatalf("GemvT[%d] = %v, want %v", i, y1[i], y2[i])
		}
	}
	// beta path: y_new = Aᵀx + 0.5*y_prev, with y_prev = 1.5*Aᵀx.
	Copy(y2, y1)
	GemvT(1, a, x, 0.5, y1)
	for i := range y1 {
		want := y2[i]/1.5 + 0.5*y2[i]
		if !almostEq(y1[i], want, 1e-12) {
			t.Fatalf("GemvT beta path [%d] = %v, want %v", i, y1[i], want)
		}
	}
}

func TestGemmAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randDense(rng, 4, 6)
	b := randDense(rng, 6, 3)
	c := NewDense(4, 3)
	Gemm(1, a, b, 0, c)
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			var want float64
			for k := 0; k < 6; k++ {
				want += a.At(i, k) * b.At(k, j)
			}
			if !almostEq(c.At(i, j), want, 1e-12) {
				t.Fatalf("Gemm[%d,%d] = %v, want %v", i, j, c.At(i, j), want)
			}
		}
	}
}

func TestGemmTNMatchesGemmOfTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randDense(rng, 8, 4)
	b := randDense(rng, 8, 5)
	c1 := NewDense(4, 5)
	c2 := NewDense(4, 5)
	GemmTN(1, a, b, 0, c1)
	Gemm(1, a.T(), b, 0, c2)
	if d := MaxAbsDiff(c1, c2); d > 1e-12 {
		t.Fatalf("GemmTN differs from Gemm(Aᵀ,B) by %v", d)
	}
}

func TestSyrkMatchesGemmTN(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randDense(rng, 9, 6)
	c1 := NewDense(6, 6)
	c2 := NewDense(6, 6)
	Syrk(2, a, 0, c1)
	GemmTN(2, a, a, 0, c2)
	if d := MaxAbsDiff(c1, c2); d > 1e-11 {
		t.Fatalf("Syrk differs from GemmTN by %v", d)
	}
	// Symmetry of the result.
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			if c1.At(i, j) != c1.At(j, i) {
				t.Fatalf("Syrk result not symmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestSubmatrixCopy(t *testing.T) {
	a := NewDenseData(3, 4, []float64{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
	})
	dst := NewDense(2, 2)
	SubmatrixCopy(dst, a, 1, 1)
	want := NewDenseData(2, 2, []float64{6, 7, 10, 11})
	if !dst.Equal(want) {
		t.Fatalf("SubmatrixCopy = %v", dst.Data)
	}
}

// Property: (A·B)·x == A·(B·x) for random shapes.
func TestGemmAssociativityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(6)
		k := 1 + rng.Intn(6)
		n := 1 + rng.Intn(6)
		a := randDense(rng, m, k)
		b := randDense(rng, k, n)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		ab := NewDense(m, n)
		Gemm(1, a, b, 0, ab)
		y1 := make([]float64, m)
		Gemv(1, ab, x, 0, y1)
		bx := make([]float64, k)
		Gemv(1, b, x, 0, bx)
		y2 := make([]float64, m)
		Gemv(1, a, bx, 0, y2)
		for i := range y1 {
			if !almostEq(y1[i], y2[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGemmBetaAccumulate(t *testing.T) {
	a := NewDenseData(1, 1, []float64{2})
	b := NewDenseData(1, 1, []float64{3})
	c := NewDenseData(1, 1, []float64{10})
	Gemm(1, a, b, 2, c) // 2*10 + 6
	if c.At(0, 0) != 26 {
		t.Fatalf("Gemm beta = %v", c.At(0, 0))
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := NewDenseData(1, 2, []float64{1, 2})
	b := NewDenseData(1, 2, []float64{1.5, 2})
	if d := MaxAbsDiff(a, b); d != 0.5 {
		t.Fatalf("MaxAbsDiff = %v", d)
	}
	if math.IsNaN(MaxAbsDiff(a, a)) || MaxAbsDiff(a, a) != 0 {
		t.Fatal("self diff nonzero")
	}
}
