// Package mat provides the small dense linear-algebra kernel set needed by
// the synchronization-avoiding coordinate-descent solvers: BLAS-1 vector
// operations, BLAS-2/3 matrix products, symmetric eigensolvers for the
// (block) Gram matrices, and a Cholesky factorization.
//
// The package substitutes for the Intel MKL BLAS used by the paper
// ("Avoiding Synchronization in First-Order Methods for Sparse Convex
// Optimization", Devarakonda et al., IPDPS 2018). Only float64 is
// supported; matrices are dense, row-major, and sized for the paper's
// working sets (Gram blocks of order s·µ, i.e. at most a few thousand).
//
// All functions are deterministic: identical inputs produce bitwise
// identical outputs, which the solvers rely on to keep replicated state
// consistent across simulated ranks.
package mat
