package mat

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	s := math.Max(math.Abs(a), math.Abs(b))
	return d <= tol*math.Max(1, s)
}

func TestDot(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, -5, 6}
	if got := Dot(x, y); got != 12 {
		t.Fatalf("Dot = %v, want 12", got)
	}
	if got := Dot(nil, nil); got != 0 {
		t.Fatalf("Dot(nil,nil) = %v, want 0", got)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestAxpy(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{10, 20, 30}
	Axpy(2, x, y)
	want := []float64{12, 24, 36}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("Axpy y[%d] = %v, want %v", i, y[i], want[i])
		}
	}
	// alpha == 0 must leave y untouched (fast path).
	Axpy(0, x, y)
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("Axpy(0) modified y[%d]", i)
		}
	}
}

func TestScalFill(t *testing.T) {
	x := []float64{1, -2, 4}
	Scal(-0.5, x)
	want := []float64{-0.5, 1, -2}
	for i := range want {
		if x[i] != want[i] {
			t.Fatalf("Scal x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
	Fill(x, 7)
	for i := range x {
		if x[i] != 7 {
			t.Fatalf("Fill x[%d] = %v", i, x[i])
		}
	}
}

func TestNrm2MatchesNaive(t *testing.T) {
	x := []float64{3, 4}
	if got := Nrm2(x); !almostEq(got, 5, 1e-15) {
		t.Fatalf("Nrm2 = %v, want 5", got)
	}
	if got := Nrm2(nil); got != 0 {
		t.Fatalf("Nrm2(nil) = %v", got)
	}
}

func TestNrm2Overflow(t *testing.T) {
	x := []float64{1e300, 1e300}
	got := Nrm2(x)
	want := 1e300 * math.Sqrt2
	if !almostEq(got, want, 1e-14) {
		t.Fatalf("Nrm2 overflow-guard = %v, want %v", got, want)
	}
	y := []float64{1e-300, 1e-300}
	if got := Nrm2(y); !almostEq(got, 1e-300*math.Sqrt2, 1e-14) {
		t.Fatalf("Nrm2 underflow-guard = %v", got)
	}
}

func TestNrm2PropertyAgainstSquaredSum(t *testing.T) {
	f := func(xs []float64) bool {
		// Keep magnitudes moderate so the naive reference is exact enough.
		for i := range xs {
			if math.IsNaN(xs[i]) || math.IsInf(xs[i], 0) {
				return true
			}
			xs[i] = math.Mod(xs[i], 1e6)
		}
		return almostEq(Nrm2(xs)*Nrm2(xs), Nrm2Sq(xs), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAsumAmax(t *testing.T) {
	x := []float64{-3, 1, 2}
	if got := Asum(x); got != 6 {
		t.Fatalf("Asum = %v", got)
	}
	if got := AmaxAbs(x); got != 3 {
		t.Fatalf("AmaxAbs = %v", got)
	}
	if got := AmaxAbs(nil); got != 0 {
		t.Fatalf("AmaxAbs(nil) = %v", got)
	}
}

func TestAddSubCopy(t *testing.T) {
	x := []float64{1, 2}
	y := []float64{3, 5}
	dst := make([]float64, 2)
	Add(dst, x, y)
	if dst[0] != 4 || dst[1] != 7 {
		t.Fatalf("Add = %v", dst)
	}
	Sub(dst, y, x)
	if dst[0] != 2 || dst[1] != 3 {
		t.Fatalf("Sub = %v", dst)
	}
	Copy(dst, x)
	if dst[0] != 1 || dst[1] != 2 {
		t.Fatalf("Copy = %v", dst)
	}
}

func TestGatherScatter(t *testing.T) {
	src := []float64{10, 20, 30, 40}
	idx := []int{3, 1}
	dst := make([]float64, 2)
	Gather(dst, src, idx)
	if dst[0] != 40 || dst[1] != 20 {
		t.Fatalf("Gather = %v", dst)
	}
	acc := []float64{0, 0, 0, 0}
	ScatterAdd(acc, dst, idx)
	if acc[3] != 40 || acc[1] != 20 || acc[0] != 0 {
		t.Fatalf("ScatterAdd = %v", acc)
	}
	ScatterAxpy(-1, acc, dst, idx)
	for i, v := range acc {
		if v != 0 {
			t.Fatalf("ScatterAxpy acc[%d] = %v, want 0", i, v)
		}
	}
}

// Property: Dot is bilinear: (ax)·y == a(x·y).
func TestDotBilinearProperty(t *testing.T) {
	f := func(seedVals []float64, alpha float64) bool {
		if len(seedVals) == 0 || math.IsNaN(alpha) || math.IsInf(alpha, 0) {
			return true
		}
		alpha = math.Mod(alpha, 100)
		x := make([]float64, len(seedVals))
		y := make([]float64, len(seedVals))
		for i, v := range seedVals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			x[i] = math.Mod(v, 1e3)
			y[i] = math.Mod(v*0.7+1, 1e3)
		}
		ax := make([]float64, len(x))
		for i := range x {
			ax[i] = alpha * x[i]
		}
		return almostEq(Dot(ax, y), alpha*Dot(x, y), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
