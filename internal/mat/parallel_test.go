package mat

import (
	"math/rand"
	"testing"
)

func TestGemvParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randDense(rng, 1200, 37)
	x := make([]float64, 37)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y1 := make([]float64, 1200)
	y2 := make([]float64, 1200)
	Gemv(1.3, a, x, 0, y1)
	GemvParallel(1.3, a, x, 0, y2)
	for i := range y1 {
		if y1[i] != y2[i] {
			t.Fatalf("row %d: parallel %v != sequential %v", i, y2[i], y1[i])
		}
	}
}

func TestGemmTNParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := randDense(rng, 300, 24)
	b := randDense(rng, 300, 18)
	c1 := NewDense(24, 18)
	c2 := NewDense(24, 18)
	GemmTN(1, a, b, 0, c1)
	GemmTNParallel(1, a, b, 0, c2)
	if d := MaxAbsDiff(c1, c2); d > 1e-12 {
		t.Fatalf("parallel GemmTN differs by %v", d)
	}
}

func TestDotParallelCloseToSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 100000
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	if !almostEq(Dot(x, y), DotParallel(x, y), 1e-9) {
		t.Fatalf("DotParallel = %v, Dot = %v", DotParallel(x, y), Dot(x, y))
	}
}

func TestParallelForSmallRunsInline(t *testing.T) {
	var calls int
	parallelFor(3, 256, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 3 {
			t.Fatalf("inline chunk = [%d,%d)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
}

func TestParallelForCoversRange(t *testing.T) {
	n := 10000
	seen := make([]int32, n)
	parallelFor(n, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			seen[i]++
		}
	})
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}
