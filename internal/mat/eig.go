package mat

import (
	"fmt"
	"math"
)

// LargestEigSym returns the largest eigenvalue of the symmetric
// positive-semidefinite matrix g using power iteration. The solvers call
// this on the µ×µ Gram blocks AᵀᵢAᵢ (Alg. 1 line 10 and Alg. 2 line 14 of
// the paper) to obtain the optimal Lipschitz constant.
//
// The start vector and iteration schedule are deterministic so that every
// simulated rank computes a bitwise-identical result from identical input.
// For PSD Gram matrices power iteration converges geometrically in
// (λ₁/λ₂)ᵏ; maxIter 200 with tol 1e-12 is far tighter than the step-size
// use requires.
func LargestEigSym(g *Dense) float64 {
	n := g.R
	if g.C != n {
		panic(fmt.Sprintf("mat: LargestEigSym non-square %dx%d", g.R, g.C))
	}
	switch n {
	case 0:
		return 0
	case 1:
		return g.Data[0]
	}
	const (
		maxIter = 200
		tol     = 1e-12
	)
	// Deterministic start with a mild index tilt so the start vector is
	// never orthogonal to the dominant eigenvector of a permutation-
	// symmetric matrix.
	v := make([]float64, n)
	for i := range v {
		v[i] = 1 + float64(i)/float64(n)
	}
	Scal(1/Nrm2(v), v)
	w := make([]float64, n)
	lambda := 0.0
	for it := 0; it < maxIter; it++ {
		Gemv(1, g, v, 0, w)
		nrm := Nrm2(w)
		if nrm == 0 {
			return 0 // g is the zero matrix
		}
		Scal(1/nrm, w)
		v, w = w, v
		next := rayleigh(g, v, w)
		if math.Abs(next-lambda) <= tol*math.Max(1, math.Abs(next)) {
			return next
		}
		lambda = next
	}
	return lambda
}

// rayleigh returns vᵀgv using scratch for the intermediate product.
func rayleigh(g *Dense, v, scratch []float64) float64 {
	Gemv(1, g, v, 0, scratch)
	return Dot(v, scratch)
}

// EigSymJacobi computes all eigenvalues of the symmetric matrix a using the
// cyclic Jacobi method, returning them in ascending order. It is used as a
// cross-check oracle for LargestEigSym in tests and by the condition-number
// diagnostics for SA Gram matrices. a is not modified.
func EigSymJacobi(a *Dense) []float64 {
	n := a.R
	if a.C != n {
		panic(fmt.Sprintf("mat: EigSymJacobi non-square %dx%d", a.R, a.C))
	}
	w := a.Clone()
	const (
		maxSweeps = 100
		tol       = 1e-14
	)
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagNorm(w)
		if off <= tol*frobNorm(w) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				jacobiRotate(w, p, q)
			}
		}
	}
	eig := make([]float64, n)
	for i := 0; i < n; i++ {
		eig[i] = w.At(i, i)
	}
	insertionSort(eig)
	return eig
}

// CondSym returns the 2-norm condition number λmax/λmin of a symmetric
// positive-definite matrix, or +Inf when the smallest eigenvalue is not
// positive. Used to diagnose ill-conditioned s·µ Gram matrices, the
// numerical-stability risk the paper examines in §IV-A.
func CondSym(a *Dense) float64 {
	eig := EigSymJacobi(a)
	if len(eig) == 0 {
		return 1
	}
	lmin, lmax := eig[0], eig[len(eig)-1]
	if lmin <= 0 {
		return math.Inf(1)
	}
	return lmax / lmin
}

func jacobiRotate(w *Dense, p, q int) {
	n := w.R
	apq := w.At(p, q)
	if apq == 0 {
		return
	}
	app, aqq := w.At(p, p), w.At(q, q)
	tau := (aqq - app) / (2 * apq)
	var t float64
	if tau >= 0 {
		t = 1 / (tau + math.Sqrt(1+tau*tau))
	} else {
		t = -1 / (-tau + math.Sqrt(1+tau*tau))
	}
	c := 1 / math.Sqrt(1+t*t)
	s := t * c
	for i := 0; i < n; i++ {
		wip, wiq := w.At(i, p), w.At(i, q)
		w.Set(i, p, c*wip-s*wiq)
		w.Set(i, q, s*wip+c*wiq)
	}
	for i := 0; i < n; i++ {
		wpi, wqi := w.At(p, i), w.At(q, i)
		w.Set(p, i, c*wpi-s*wqi)
		w.Set(q, i, s*wpi+c*wqi)
	}
}

func offDiagNorm(a *Dense) float64 {
	var s float64
	for i := 0; i < a.R; i++ {
		for j := 0; j < a.C; j++ {
			if i != j {
				v := a.At(i, j)
				s += v * v
			}
		}
	}
	return math.Sqrt(s)
}

func frobNorm(a *Dense) float64 {
	var s float64
	for _, v := range a.Data {
		s += v * v
	}
	if s == 0 {
		return 1
	}
	return math.Sqrt(s)
}

func insertionSort(x []float64) {
	for i := 1; i < len(x); i++ {
		v := x[i]
		j := i - 1
		for j >= 0 && x[j] > v {
			x[j+1] = x[j]
			j--
		}
		x[j+1] = v
	}
}
