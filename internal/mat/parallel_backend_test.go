package mat

import (
	"math/rand"
	"runtime"
	"testing"
)

// withWorkers runs body under a temporary global worker count.
func withWorkers(w int, body func()) {
	old := Workers
	Workers = w
	defer func() { Workers = old }()
	body()
}

func TestParallelReduceIndependentOfWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	x := make([]float64, 50000)
	y := make([]float64, 50000)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	var ref float64
	withWorkers(1, func() { ref = DotParallel(x, y) })
	for _, w := range []int{2, 3, 8, 64} {
		withWorkers(w, func() {
			if got := DotParallel(x, y); got != ref {
				t.Fatalf("workers=%d: DotParallel %v != %v at workers=1", w, got, ref)
			}
			if got := Nrm2SqParallel(x); got != func() float64 {
				var r float64
				withWorkers(1, func() { r = Nrm2SqParallel(x) })
				return r
			}() {
				t.Fatalf("workers=%d: Nrm2SqParallel not worker-invariant", w)
			}
		})
	}
	if !almostEq(ref, Dot(x, y), 1e-9) {
		t.Fatalf("DotParallel %v far from Dot %v", ref, Dot(x, y))
	}
}

func TestParallelReduceTreeOrder(t *testing.T) {
	// 4 chunks of 1: the deterministic tree must fold ((c0⊕c1)⊕(c2⊕c3)),
	// observable with a non-associative combine.
	vals := []float64{1, 2, 3, 4}
	got := ParallelReduce(4, 1,
		func(lo, hi int) float64 { return vals[lo] },
		func(a, b float64) float64 { return 2*a + b })
	// c01 = 2·1+2 = 4; c23 = 2·3+4 = 10; root = 2·4+10 = 18.
	if got != 18 {
		t.Fatalf("tree fold = %v, want 18", got)
	}
}

func TestTriangleRangesCoverAndBalance(t *testing.T) {
	for _, tc := range []struct{ n, parts int }{{1, 1}, {5, 2}, {100, 4}, {513, 8}, {16, 32}} {
		bounds := TriangleRanges(tc.n, tc.parts)
		if bounds[0] != 0 || bounds[len(bounds)-1] != tc.n {
			t.Fatalf("n=%d parts=%d: bounds %v do not span [0,n]", tc.n, tc.parts, bounds)
		}
		for i := 1; i < len(bounds); i++ {
			if bounds[i] < bounds[i-1] {
				t.Fatalf("n=%d parts=%d: bounds %v not monotone", tc.n, tc.parts, bounds)
			}
		}
	}
	// Pair counts of the parts should be within 2x of each other for a
	// large triangle.
	bounds := TriangleRanges(1000, 8)
	pairs := func(lo, hi int) int {
		n := 1000
		return (hi-lo)*n - (hi*(hi-1)-lo*(lo-1))/2
	}
	minP, maxP := 1<<30, 0
	for i := 1; i < len(bounds); i++ {
		p := pairs(bounds[i-1], bounds[i])
		if p < minP {
			minP = p
		}
		if p > maxP {
			maxP = p
		}
	}
	if maxP > 2*minP {
		t.Fatalf("triangle partition imbalance %d/%d", maxP, minP)
	}
}

func TestSyrkParallelMatchesSyrk(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	a := randDense(rng, 200, 64)
	c1 := NewDense(64, 64)
	c2 := NewDense(64, 64)
	Syrk(1.5, a, 0, c1)
	withWorkers(8, func() { SyrkParallel(1.5, a, 0, c2) })
	if !c1.Equal(c2) {
		t.Fatalf("SyrkParallel differs from Syrk by %v", MaxAbsDiff(c1, c2))
	}
}

func TestGemmParallelMatchesGemm(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	a := randDense(rng, 120, 40)
	b := randDense(rng, 40, 30)
	c1 := NewDense(120, 30)
	c2 := NewDense(120, 30)
	Gemm(1, a, b, 0, c1)
	withWorkers(8, func() { GemmParallel(1, a, b, 0, c2) })
	if !c1.Equal(c2) {
		t.Fatalf("GemmParallel differs from Gemm by %v", MaxAbsDiff(c1, c2))
	}
}

func TestCholeskyWorkerInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	// Build SPD A = MᵀM + n·I, large enough to cross the parallel
	// threshold of the panel update.
	n := 300
	m := randDense(rng, n, n)
	a := NewDense(n, n)
	GemmTN(1, m, m, 0, a)
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+float64(n))
	}
	var l1, l8 *Dense
	withWorkers(1, func() {
		var err error
		if l1, err = Cholesky(a); err != nil {
			t.Fatal(err)
		}
	})
	withWorkers(8, func() {
		var err error
		if l8, err = Cholesky(a); err != nil {
			t.Fatal(err)
		}
	})
	if !l1.Equal(l8) {
		t.Fatalf("Cholesky factor depends on worker count (max diff %v)", MaxAbsDiff(l1, l8))
	}
}

func TestParallelRangesSkipsEmpty(t *testing.T) {
	var total int64
	seen := make([]int32, 10)
	ParallelRanges([]int{0, 4, 4, 10}, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			seen[i]++
		}
	})
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
		total += int64(c)
	}
}

// TestDefaultWorkersTracksGOMAXPROCS pins the call-time resolution of
// the package default: Workers = 0 must follow GOMAXPROCS changes made
// after package init, and positive values must pin the width.
func TestDefaultWorkersTracksGOMAXPROCS(t *testing.T) {
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)
	withWorkers(0, func() {
		runtime.GOMAXPROCS(2)
		if got := DefaultWorkers(); got != 2 {
			t.Fatalf("DefaultWorkers() = %d after GOMAXPROCS(2)", got)
		}
		runtime.GOMAXPROCS(old)
		if got := DefaultWorkers(); got != old {
			t.Fatalf("DefaultWorkers() = %d after restore", got)
		}
	})
	withWorkers(5, func() {
		if got := DefaultWorkers(); got != 5 {
			t.Fatalf("DefaultWorkers() = %d with Workers=5", got)
		}
	})
}
