package mat

import (
	"errors"
	"math"
)

// ErrNotPD reports that a matrix handed to Cholesky was not (numerically)
// positive definite.
var ErrNotPD = errors.New("mat: matrix is not positive definite")

// Cholesky computes the lower-triangular factor L with A = L·Lᵀ for a
// symmetric positive-definite matrix. The strict upper triangle of the
// result is zero. It is used by tests to validate Gram matrices and by
// diagnostics that solve small regularized systems.
func Cholesky(a *Dense) (*Dense, error) {
	n := a.R
	if a.C != n {
		return nil, errors.New("mat: Cholesky requires a square matrix")
	}
	l := NewDense(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			ljk := l.At(j, k)
			d -= ljk * ljk
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrNotPD
		}
		d = math.Sqrt(d)
		l.Set(j, j, d)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/d)
		}
	}
	return l, nil
}

// CholeskySolve solves A·x = b given the Cholesky factor L of A,
// overwriting nothing; it returns a fresh solution vector.
func CholeskySolve(l *Dense, b []float64) []float64 {
	n := l.R
	if len(b) != n {
		panic("mat: CholeskySolve length mismatch")
	}
	// Forward substitution L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		row := l.Row(i)
		for k := 0; k < i; k++ {
			s -= row[k] * y[k]
		}
		y[i] = s / row[i]
	}
	// Back substitution Lᵀ·x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x
}
