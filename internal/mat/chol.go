package mat

import (
	"errors"
	"math"
)

// ErrNotPD reports that a matrix handed to Cholesky was not (numerically)
// positive definite.
var ErrNotPD = errors.New("mat: matrix is not positive definite")

// Cholesky computes the lower-triangular factor L with A = L·Lᵀ for a
// symmetric positive-definite matrix. The strict upper triangle of the
// result is zero. It is used by tests to validate Gram matrices and by
// diagnostics that solve small regularized systems.
//
// The panel update below the pivot — one dot product per row i, all
// independent — runs on the shared-memory pool for large matrices,
// following the package default Workers (Cholesky sits outside the
// solver hot paths and the simulated ranks, so the per-solve Exec knob
// does not reach it). Each L[i,j] keeps its sequential summation order,
// so the factor is bitwise identical for every worker count; a caller
// that must avoid goroutines entirely can set mat.Workers = 1.
func Cholesky(a *Dense) (*Dense, error) {
	n := a.R
	if a.C != n {
		return nil, errors.New("mat: Cholesky requires a square matrix")
	}
	l := NewDense(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		lj := l.Row(j)
		for k := 0; k < j; k++ {
			d -= lj[k] * lj[k]
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrNotPD
		}
		d = math.Sqrt(d)
		lj[j] = d
		ParallelFor(n-(j+1), 128, func(lo, hi int) {
			for i := j + 1 + lo; i < j+1+hi; i++ {
				li := l.Row(i)
				s := a.At(i, j)
				for k := 0; k < j; k++ {
					s -= li[k] * lj[k]
				}
				li[j] = s / d
			}
		})
	}
	return l, nil
}

// CholeskySolve solves A·x = b given the Cholesky factor L of A,
// overwriting nothing; it returns a fresh solution vector.
func CholeskySolve(l *Dense, b []float64) []float64 {
	n := l.R
	if len(b) != n {
		panic("mat: CholeskySolve length mismatch")
	}
	// Forward substitution L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		row := l.Row(i)
		for k := 0; k < i; k++ {
			s -= row[k] * y[k]
		}
		y[i] = s / row[i]
	}
	// Back substitution Lᵀ·x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x
}
