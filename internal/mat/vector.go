package mat

import (
	"fmt"
	"math"

	"saco/internal/simd"
)

// The O(n) hot primitives below (Dot, Axpy, Scal, Nrm2Sq, ScatterAxpy,
// SparseDot) dispatch through internal/simd; the scalar kernel set
// there is this package's original loops, so the default-dispatch
// results are bitwise unchanged. Shape checking stays here — the
// kernels only guard against out-of-bounds, not against caller bugs
// like mismatched lengths.

// Dot returns the inner product of x and y.
// It panics if the lengths differ.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: Dot length mismatch %d != %d", len(x), len(y)))
	}
	return simd.Dot(x, y)
}

// Axpy computes y += alpha*x in place; alpha == 0 leaves y untouched
// (see the internal/simd alpha == 0 contract).
// It panics if the lengths differ.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: Axpy length mismatch %d != %d", len(x), len(y)))
	}
	simd.Axpy(alpha, x, y)
}

// Scal scales x by alpha in place.
func Scal(alpha float64, x []float64) {
	simd.Scal(alpha, x)
}

// Nrm2 returns the Euclidean norm of x, guarding against overflow
// and underflow by scaling (as in the reference BLAS dnrm2).
func Nrm2(x []float64) float64 {
	var scale, ssq float64
	ssq = 1
	for _, v := range x {
		if v == 0 {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// Nrm2Sq returns the squared Euclidean norm of x. Unlike Nrm2 it does not
// guard against overflow; the solvers use it on well-scaled residuals where
// the straightforward sum is faster and deterministic.
func Nrm2Sq(x []float64) float64 {
	return simd.Nrm2Sq(0, x)
}

// Asum returns the sum of absolute values of x (the L1 norm).
func Asum(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += math.Abs(v)
	}
	return s
}

// AmaxAbs returns the maximum absolute value in x, or 0 for an empty slice.
func AmaxAbs(x []float64) float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Add computes dst = x + y element-wise.
// It panics if the lengths differ.
func Add(dst, x, y []float64) {
	if len(x) != len(y) || len(dst) != len(x) {
		panic("mat: Add length mismatch")
	}
	for i := range dst {
		dst[i] = x[i] + y[i]
	}
}

// Sub computes dst = x - y element-wise.
// It panics if the lengths differ.
func Sub(dst, x, y []float64) {
	if len(x) != len(y) || len(dst) != len(x) {
		panic("mat: Sub length mismatch")
	}
	for i := range dst {
		dst[i] = x[i] - y[i]
	}
}

// Copy copies src into dst and panics if the lengths differ. It exists so
// call sites read as linear algebra rather than builtin slice plumbing.
func Copy(dst, src []float64) {
	if len(dst) != len(src) {
		panic("mat: Copy length mismatch")
	}
	copy(dst, src)
}

// Fill sets every element of x to v.
func Fill(x []float64, v float64) {
	for i := range x {
		x[i] = v
	}
}

// Gather copies src[idx[k]] into dst[k]. dst must have length len(idx).
func Gather(dst, src []float64, idx []int) {
	if len(dst) != len(idx) {
		panic("mat: Gather length mismatch")
	}
	for k, j := range idx {
		dst[k] = src[j]
	}
}

// ScatterAdd performs dst[idx[k]] += v[k]. v must have length len(idx).
func ScatterAdd(dst, v []float64, idx []int) {
	if len(v) != len(idx) {
		panic("mat: ScatterAdd length mismatch")
	}
	for k, j := range idx {
		dst[j] += v[k]
	}
}

// ScatterAxpy performs dst[idx[k]] += alpha*v[k]; alpha == 0 leaves dst
// untouched, like every kernel in the Axpy family.
func ScatterAxpy(alpha float64, dst, v []float64, idx []int) {
	if len(v) != len(idx) {
		panic("mat: ScatterAxpy length mismatch")
	}
	simd.ScatterAxpy(alpha, dst, v, idx)
}

// SparseDot returns Σ_k val[k]·x[idx[k]] — the inner product of a dense
// vector with a sparse vector given as (index, value) pairs. It is the
// per-row primitive of the dense-batch × sparse-model scoring kernel:
// only the model's nonzero coordinates are touched, so scoring a dense
// row against a k-sparse Lasso model costs O(k) instead of O(n).
func SparseDot(x []float64, idx []int, val []float64) float64 {
	if len(idx) != len(val) {
		panic(fmt.Sprintf("mat: SparseDot index/value length mismatch %d != %d", len(idx), len(val)))
	}
	return simd.GatherDot(0, val, idx, x)
}
