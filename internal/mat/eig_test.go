package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randPSD builds AᵀA for a random A, guaranteeing symmetric PSD input.
func randPSD(rng *rand.Rand, n int) *Dense {
	a := randDense(rng, n+2, n)
	g := NewDense(n, n)
	Syrk(1, a, 0, g)
	return g
}

func TestLargestEigSymScalarAndEmpty(t *testing.T) {
	if got := LargestEigSym(NewDense(0, 0)); got != 0 {
		t.Fatalf("empty eig = %v", got)
	}
	g := NewDenseData(1, 1, []float64{4.5})
	if got := LargestEigSym(g); got != 4.5 {
		t.Fatalf("1x1 eig = %v", got)
	}
}

func TestLargestEigSymDiagonal(t *testing.T) {
	g := NewDense(3, 3)
	g.Set(0, 0, 1)
	g.Set(1, 1, 7)
	g.Set(2, 2, 3)
	if got := LargestEigSym(g); !almostEq(got, 7, 1e-10) {
		t.Fatalf("diag eig = %v, want 7", got)
	}
}

func TestLargestEigSymZeroMatrix(t *testing.T) {
	if got := LargestEigSym(NewDense(4, 4)); got != 0 {
		t.Fatalf("zero-matrix eig = %v", got)
	}
}

func TestLargestEigSymMatchesJacobi(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(10)
		g := randPSD(rng, n)
		power := LargestEigSym(g)
		eig := EigSymJacobi(g)
		jac := eig[len(eig)-1]
		if !almostEq(power, jac, 1e-6) {
			t.Fatalf("trial %d: power=%v jacobi=%v", trial, power, jac)
		}
	}
}

func TestEigSymJacobiKnown(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	g := NewDenseData(2, 2, []float64{2, 1, 1, 2})
	eig := EigSymJacobi(g)
	if !almostEq(eig[0], 1, 1e-12) || !almostEq(eig[1], 3, 1e-12) {
		t.Fatalf("eig = %v, want [1 3]", eig)
	}
	// Input must be untouched.
	if g.At(0, 1) != 1 {
		t.Fatal("EigSymJacobi modified its input")
	}
}

// Property: trace(G) == sum of eigenvalues for random PSD matrices.
func TestJacobiTraceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		g := randPSD(rng, n)
		var tr float64
		for i := 0; i < n; i++ {
			tr += g.At(i, i)
		}
		var sum float64
		for _, ev := range EigSymJacobi(g) {
			sum += ev
		}
		return almostEq(tr, sum, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the power-iteration eigenvalue dominates the Rayleigh quotient
// of random probe vectors (λmax = sup_v vᵀGv/vᵀv).
func TestLargestEigUpperBoundsRayleighProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		g := randPSD(rng, n)
		lmax := LargestEigSym(g)
		for probe := 0; probe < 5; probe++ {
			v := make([]float64, n)
			for i := range v {
				v[i] = rng.NormFloat64()
			}
			nv := Nrm2Sq(v)
			if nv == 0 {
				continue
			}
			w := make([]float64, n)
			Gemv(1, g, v, 0, w)
			if Dot(v, w)/nv > lmax*(1+1e-6)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCondSym(t *testing.T) {
	g := NewDenseData(2, 2, []float64{2, 1, 1, 2}) // cond = 3
	if got := CondSym(g); !almostEq(got, 3, 1e-10) {
		t.Fatalf("CondSym = %v, want 3", got)
	}
	singular := NewDenseData(2, 2, []float64{1, 1, 1, 1})
	if got := CondSym(singular); !math.IsInf(got, 1) {
		t.Fatalf("CondSym(singular) = %v, want +Inf", got)
	}
}

func TestLargestEigDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := randPSD(rng, 12)
	a := LargestEigSym(g)
	b := LargestEigSym(g)
	if a != b {
		t.Fatalf("LargestEigSym not deterministic: %v != %v", a, b)
	}
}
