package mat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCholeskyKnown(t *testing.T) {
	a := NewDenseData(2, 2, []float64{4, 2, 2, 3})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	// L = [[2,0],[1,sqrt2]]
	if !almostEq(l.At(0, 0), 2, 1e-14) || !almostEq(l.At(1, 0), 1, 1e-14) {
		t.Fatalf("L = %v", l.Data)
	}
	if l.At(0, 1) != 0 {
		t.Fatal("upper triangle not zero")
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 2, 2, 1}) // eigenvalues 3, -1
	if _, err := Cholesky(a); err != ErrNotPD {
		t.Fatalf("err = %v, want ErrNotPD", err)
	}
	if _, err := Cholesky(NewDense(2, 3)); err == nil {
		t.Fatal("expected error for non-square input")
	}
}

// Property: reconstruct A = L·Lᵀ and solve A·x = b correctly.
func TestCholeskyFactorSolveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		// SPD via AᵀA + I.
		g := randPSD(rng, n)
		for i := 0; i < n; i++ {
			g.Set(i, i, g.At(i, i)+1)
		}
		l, err := Cholesky(g)
		if err != nil {
			return false
		}
		// Reconstruction check.
		recon := NewDense(n, n)
		Gemm(1, l, l.T(), 0, recon)
		if MaxAbsDiff(recon, g) > 1e-8 {
			return false
		}
		// Solve check.
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		b := make([]float64, n)
		Gemv(1, g, xTrue, 0, b)
		x := CholeskySolve(l, b)
		for i := range x {
			if !almostEq(x[i], xTrue[i], 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
