package mat

import (
	"fmt"

	"saco/internal/simd"
)

// Dense is a row-major dense matrix. The zero value is an empty matrix;
// use NewDense to allocate a sized one.
type Dense struct {
	R, C int
	Data []float64 // len R*C, row-major
}

// NewDense allocates an r-by-c zero matrix.
func NewDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: NewDense negative dimension %dx%d", r, c))
	}
	return &Dense{R: r, C: c, Data: make([]float64, r*c)}
}

// NewDenseData wraps data (row-major, length r*c) without copying.
func NewDenseData(r, c int, data []float64) *Dense {
	if len(data) != r*c {
		panic(fmt.Sprintf("mat: NewDenseData length %d != %d*%d", len(data), r, c))
	}
	return &Dense{R: r, C: c, Data: data}
}

// At returns the element at row i, column j.
func (a *Dense) At(i, j int) float64 { return a.Data[i*a.C+j] }

// Set assigns the element at row i, column j.
func (a *Dense) Set(i, j int, v float64) { a.Data[i*a.C+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (a *Dense) Row(i int) []float64 { return a.Data[i*a.C : (i+1)*a.C] }

// Clone returns a deep copy of a.
func (a *Dense) Clone() *Dense {
	b := NewDense(a.R, a.C)
	copy(b.Data, a.Data)
	return b
}

// Zero sets every element to 0.
func (a *Dense) Zero() {
	for i := range a.Data {
		a.Data[i] = 0
	}
}

// T returns a newly allocated transpose of a.
func (a *Dense) T() *Dense {
	b := NewDense(a.C, a.R)
	for i := 0; i < a.R; i++ {
		row := a.Row(i)
		for j, v := range row {
			b.Data[j*b.C+i] = v
		}
	}
	return b
}

// MirrorUpper copies the strict upper triangle onto the lower one,
// completing a symmetric matrix whose upper half was accumulated
// incrementally (the out-of-core Gram assembly of package stream).
func (a *Dense) MirrorUpper() {
	for i := 1; i < a.R; i++ {
		for j := 0; j < i; j++ {
			a.Data[i*a.C+j] = a.Data[j*a.C+i]
		}
	}
}

// Equal reports whether a and b have the same shape and elements.
func (a *Dense) Equal(b *Dense) bool {
	if a.R != b.R || a.C != b.C {
		return false
	}
	for i, v := range a.Data {
		if v != b.Data[i] {
			return false
		}
	}
	return true
}

// Gemv computes y = alpha*A*x + beta*y.
// A is r-by-c, x has length c, y has length r.
func Gemv(alpha float64, a *Dense, x []float64, beta float64, y []float64) {
	if len(x) != a.C || len(y) != a.R {
		panic(fmt.Sprintf("mat: Gemv shape mismatch A=%dx%d len(x)=%d len(y)=%d", a.R, a.C, len(x), len(y)))
	}
	for i := 0; i < a.R; i++ {
		row := a.Row(i)
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = alpha*s + beta*y[i]
	}
}

// GemvT computes y = alpha*Aᵀ*x + beta*y.
// A is r-by-c, x has length r, y has length c.
func GemvT(alpha float64, a *Dense, x []float64, beta float64, y []float64) {
	if len(x) != a.R || len(y) != a.C {
		panic(fmt.Sprintf("mat: GemvT shape mismatch A=%dx%d len(x)=%d len(y)=%d", a.R, a.C, len(x), len(y)))
	}
	if beta != 1 {
		if beta == 0 {
			Fill(y, 0)
		} else {
			Scal(beta, y)
		}
	}
	for i := 0; i < a.R; i++ {
		Axpy(alpha*x[i], a.Row(i), y)
	}
}

// Gemm computes C = alpha*A*B + beta*C.
// A is m-by-k, B is k-by-n, C is m-by-n. Uses an ikj loop order so the
// inner loop streams rows, which is the cache-friendly ordering for
// row-major storage.
func Gemm(alpha float64, a, b *Dense, beta float64, c *Dense) {
	if a.C != b.R || c.R != a.R || c.C != b.C {
		panic(fmt.Sprintf("mat: Gemm shape mismatch A=%dx%d B=%dx%d C=%dx%d", a.R, a.C, b.R, b.C, c.R, c.C))
	}
	if beta != 1 {
		if beta == 0 {
			c.Zero()
		} else {
			Scal(beta, c.Data)
		}
	}
	for i := 0; i < a.R; i++ {
		arow := a.Row(i)
		crow := c.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			Axpy(alpha*av, b.Row(k), crow)
		}
	}
}

// GemmTN computes C = alpha*Aᵀ*B + beta*C where A is k-by-m and B is k-by-n,
// so C is m-by-n. This is the kernel behind Gram-matrix assembly YᵀY.
func GemmTN(alpha float64, a, b *Dense, beta float64, c *Dense) {
	if a.R != b.R || c.R != a.C || c.C != b.C {
		panic(fmt.Sprintf("mat: GemmTN shape mismatch A=%dx%d B=%dx%d C=%dx%d", a.R, a.C, b.R, b.C, c.R, c.C))
	}
	if beta != 1 {
		if beta == 0 {
			c.Zero()
		} else {
			Scal(beta, c.Data)
		}
	}
	for k := 0; k < a.R; k++ {
		arow := a.Row(k)
		brow := b.Row(k)
		for i, av := range arow {
			if av == 0 {
				continue
			}
			Axpy(alpha*av, brow, c.Row(i))
		}
	}
}

// Syrk computes the symmetric product C = alpha*AᵀA + beta*C for
// A k-by-n, C n-by-n, filling both triangles. Exploiting symmetry halves
// the flops relative to GemmTN(A, A); the paper notes the same trick halves
// the SA Gram message size (§III footnote 3).
func Syrk(alpha float64, a *Dense, beta float64, c *Dense) {
	n := a.C
	if c.R != n || c.C != n {
		panic(fmt.Sprintf("mat: Syrk shape mismatch A=%dx%d C=%dx%d", a.R, a.C, c.R, c.C))
	}
	if beta != 1 {
		if beta == 0 {
			c.Zero()
		} else {
			Scal(beta, c.Data)
		}
	}
	kr := simd.Active()
	for k := 0; k < a.R; k++ {
		row := a.Row(k)
		for i := 0; i < n; i++ {
			av := row[i]
			if av == 0 {
				continue
			}
			kr.Axpy(alpha*av, row[i:], c.Row(i)[i:])
		}
	}
	c.MirrorUpper()
}

// SubmatrixCopy copies the block a[r0:r0+h, c0:c0+w] into dst (h-by-w).
func SubmatrixCopy(dst *Dense, a *Dense, r0, c0 int) {
	if r0 < 0 || c0 < 0 || r0+dst.R > a.R || c0+dst.C > a.C {
		panic("mat: SubmatrixCopy out of range")
	}
	for i := 0; i < dst.R; i++ {
		copy(dst.Row(i), a.Row(r0 + i)[c0:c0+dst.C])
	}
}

// MaxAbsDiff returns max |a_ij - b_ij|; it panics on shape mismatch.
func MaxAbsDiff(a, b *Dense) float64 {
	if a.R != b.R || a.C != b.C {
		panic("mat: MaxAbsDiff shape mismatch")
	}
	var m float64
	for i, v := range a.Data {
		d := v - b.Data[i]
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}
