package mat

import (
	"runtime"
	"sync"
)

// Workers is the default worker count for the shared-memory parallel
// kernels. Solvers running inside the simulated distributed runtime use
// the sequential kernels (one goroutine per rank already saturates the
// machine); the sequential laptop API uses these to speed up large dense
// workloads such as the epsilon- and gisette-like datasets.
var Workers = runtime.GOMAXPROCS(0)

// parallelFor splits [0,n) into contiguous chunks and runs body(lo,hi) on
// each from its own goroutine. It runs inline when n is small or only one
// worker is configured, so callers never pay goroutine overhead on the
// tiny Gram-block operations that dominate the inner loops.
func parallelFor(n, minChunk int, body func(lo, hi int)) {
	w := Workers
	if w > n/minChunk {
		w = n / minChunk
	}
	if w <= 1 {
		body(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + w - 1) / w
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// GemvParallel computes y = alpha*A*x + beta*y across Workers goroutines,
// partitioning rows of A. Row partitioning keeps the output regions
// disjoint, so no synchronization beyond the final join is needed.
func GemvParallel(alpha float64, a *Dense, x []float64, beta float64, y []float64) {
	if len(x) != a.C || len(y) != a.R {
		panic("mat: GemvParallel shape mismatch")
	}
	parallelFor(a.R, 256, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := a.Row(i)
			var s float64
			for j, v := range row {
				s += v * x[j]
			}
			y[i] = alpha*s + beta*y[i]
		}
	})
}

// GemmTNParallel computes C = alpha*Aᵀ*B + beta*C, partitioning the
// columns of A (rows of C) across workers. Each worker owns a disjoint
// row band of C, so updates race-free. This is the parallel Gram-assembly
// kernel used by the sequential SA solvers for large batches.
func GemmTNParallel(alpha float64, a, b *Dense, beta float64, c *Dense) {
	if a.R != b.R || c.R != a.C || c.C != b.C {
		panic("mat: GemmTNParallel shape mismatch")
	}
	if beta != 1 {
		if beta == 0 {
			c.Zero()
		} else {
			Scal(beta, c.Data)
		}
	}
	parallelFor(a.C, 8, func(lo, hi int) {
		for k := 0; k < a.R; k++ {
			arow := a.Row(k)
			brow := b.Row(k)
			for i := lo; i < hi; i++ {
				av := arow[i]
				if av == 0 {
					continue
				}
				Axpy(alpha*av, brow, c.Row(i))
			}
		}
	})
}

// DotParallel returns xᵀy computed in parallel chunks. The chunked
// reduction changes the summation order relative to Dot, so results can
// differ from Dot by O(ε); the distributed solvers therefore never use it
// for replicated state, only the shared-memory API does.
func DotParallel(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("mat: DotParallel length mismatch")
	}
	n := len(x)
	w := Workers
	if w <= 1 || n < 4096 {
		return Dot(x, y)
	}
	partial := make([]float64, w)
	var wg sync.WaitGroup
	chunk := (n + w - 1) / w
	for g := 0; g < w; g++ {
		lo := g * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(g, lo, hi int) {
			defer wg.Done()
			var s float64
			for i := lo; i < hi; i++ {
				s += x[i] * y[i]
			}
			partial[g] = s
		}(g, lo, hi)
	}
	wg.Wait()
	var s float64
	for _, p := range partial {
		s += p
	}
	return s
}
