package mat

import (
	rt "saco/internal/runtime"
	"saco/internal/simd"
)

// This file is the dense-BLAS face of the repository's shared-memory
// execution layer. The primitives themselves — the persistent worker
// pool, chunked fork-join (For/Ranges) and the deterministic
// tree-ordered reduction — live in internal/runtime; the wrappers here
// preserve this package's historical API and attach the package-default
// width. Every parallel kernel in mat, sparse and the solvers is built
// on those primitives under one strict contract: a parallel kernel
// partitions only *independent output elements* across workers and
// leaves each element's summation order exactly as in the sequential
// code. Results are therefore bitwise identical for every worker count
// — the shared-memory analogue of the paper's "same iterate sequence up
// to floating-point roundoff" claim, and the property internal/core's
// backend-equivalence tests pin down.
//
// Two layers sit on these primitives with different knobs. The solver
// hot paths run through the per-matrix kernel views of internal/sparse
// (CSC/CSR/DenseCols/DenseRows.WithKernelWorkers), selected per solve
// by core.Exec and sequential by default. The package-level *-Parallel
// BLAS below (GemvParallel, GemmParallel, GemmTNParallel, SyrkParallel,
// DotParallel, Nrm2SqParallel) follows the package default Workers —
// like an OMP_NUM_THREADS-keyed BLAS — and serves dense library work
// outside the solvers: dataset generation (internal/datagen), the
// Cholesky panel update, diagnostics. Worker invariance makes either
// knob safe: no result ever depends on the width chosen.

// Workers is the default worker count for the shared-memory parallel
// kernels; explicit-width entry points (ParallelForWorkers, the sparse
// kernels' per-matrix knob) override it per call. The default 0 resolves
// to runtime.GOMAXPROCS(0) at each call — not at package init — so
// GOMAXPROCS changes made after import take effect. Set it positive to
// pin a width, or to 1 to force every default-width kernel sequential.
var Workers = 0

// DefaultWorkers returns the effective package-default width: Workers
// when positive, else GOMAXPROCS at the time of the call.
func DefaultWorkers() int { return rt.Resolve(Workers) }

// ParallelFor splits [0,n) into contiguous chunks and runs body(lo,hi)
// on up to DefaultWorkers() executors of the persistent pool. It runs
// inline when n < 2·minChunk or only one worker is configured, so
// callers never pay dispatch overhead on the tiny Gram-block operations
// that dominate the inner loops.
func ParallelFor(n, minChunk int, body func(lo, hi int)) {
	rt.For(Workers, n, minChunk, body)
}

// ParallelForWorkers is ParallelFor with an explicit worker count. w <= 1
// runs body(0, n) inline: the sequential path is the parallel path with
// one chunk, so there is exactly one implementation of every kernel.
// (w = 0 historically meant sequential through the kernelWorkers
// normalization in internal/sparse; matrices pass widths ≥ 1 here.)
func ParallelForWorkers(w, n, minChunk int, body func(lo, hi int)) {
	if w < 1 {
		w = 1
	}
	rt.For(w, n, minChunk, body)
}

// ParallelRanges runs body on the consecutive half-open ranges
// [bounds[i], bounds[i+1]), claimed by up to len(bounds)-1 pool
// executors. It is the building block for load-balanced partitions whose
// chunk boundaries carry meaning — e.g. TriangleRanges for Gram
// assembly, where equal index ranges would give the first worker almost
// all the flops.
func ParallelRanges(bounds []int, body func(lo, hi int)) {
	rt.Ranges(bounds, body)
}

// TriangleRanges partitions rows [0,n) of an upper-triangular loop
// (row i costs ~n−i) into at most parts ranges of roughly equal pair
// counts, returning the boundaries for ParallelRanges. The split depends
// only on n and parts, never on scheduling, so partitioned kernels stay
// deterministic.
func TriangleRanges(n, parts int) []int { return rt.TriangleRanges(n, parts) }

// ParallelReduce folds leaf values over [0,n) into a single float64 with
// a deterministic tree: the range is cut into fixed-size chunks (chunk
// size depends only on n and minChunk, never on the worker count), leaf
// computes each chunk's partial, and the partials are combined pairwise
// along a binary tree in chunk-index order. The result is identical for
// every value of Workers — including 1 — which is what lets solvers call
// it from any backend without perturbing iterates. It does NOT generally
// equal the single left-to-right fold of a plain loop; callers that need
// that exact order (the distributed runtime's replicated state) must
// stay sequential.
func ParallelReduce(n, minChunk int, leaf func(lo, hi int) float64, combine func(a, b float64) float64) float64 {
	return rt.Reduce(Workers, n, minChunk, leaf, combine)
}

// GemvParallel computes y = alpha*A*x + beta*y across Workers goroutines,
// partitioning rows of A. Row partitioning keeps the output regions
// disjoint and each row's dot product in sequential order, so the result
// is bitwise identical to Gemv.
func GemvParallel(alpha float64, a *Dense, x []float64, beta float64, y []float64) {
	if len(x) != a.C || len(y) != a.R {
		panic("mat: GemvParallel shape mismatch")
	}
	ParallelFor(a.R, 256, func(lo, hi int) {
		k := simd.Active()
		for i := lo; i < hi; i++ {
			s := k.Dot(a.Row(i), x)
			y[i] = alpha*s + beta*y[i]
		}
	})
}

// GemmParallel computes C = alpha*A*B + beta*C, partitioning the rows of
// C across workers with the same ikj inner ordering as Gemm, so results
// match Gemm bitwise.
func GemmParallel(alpha float64, a, b *Dense, beta float64, c *Dense) {
	if a.C != b.R || c.R != a.R || c.C != b.C {
		panic("mat: GemmParallel shape mismatch")
	}
	if beta != 1 {
		if beta == 0 {
			c.Zero()
		} else {
			Scal(beta, c.Data)
		}
	}
	ParallelFor(a.R, 8, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			crow := c.Row(i)
			for k, av := range arow {
				if av == 0 {
					continue
				}
				Axpy(alpha*av, b.Row(k), crow)
			}
		}
	})
}

// GemmTNParallel computes C = alpha*Aᵀ*B + beta*C, partitioning the
// columns of A (rows of C) across workers. Each worker owns a disjoint
// row band of C and streams k in the same order as GemmTN, so updates are
// race-free and bitwise identical to the sequential kernel. This is the
// parallel Gram-assembly kernel used by the sequential SA solvers for
// large batches.
func GemmTNParallel(alpha float64, a, b *Dense, beta float64, c *Dense) {
	if a.R != b.R || c.R != a.C || c.C != b.C {
		panic("mat: GemmTNParallel shape mismatch")
	}
	if beta != 1 {
		if beta == 0 {
			c.Zero()
		} else {
			Scal(beta, c.Data)
		}
	}
	ParallelFor(a.C, 8, func(lo, hi int) {
		for k := 0; k < a.R; k++ {
			arow := a.Row(k)
			brow := b.Row(k)
			for i := lo; i < hi; i++ {
				av := arow[i]
				if av == 0 {
					continue
				}
				Axpy(alpha*av, brow, c.Row(i))
			}
		}
	})
}

// SyrkParallel computes the symmetric product C = alpha*AᵀA + beta*C like
// Syrk, partitioning the rows of the upper triangle across workers with
// TriangleRanges so every worker sees a similar pair count. Each C row is
// owned by one worker and accumulated in the same k-major order as Syrk,
// so the result matches Syrk bitwise.
func SyrkParallel(alpha float64, a *Dense, beta float64, c *Dense) {
	n := a.C
	if c.R != n || c.C != n {
		panic("mat: SyrkParallel shape mismatch")
	}
	if beta != 1 {
		if beta == 0 {
			c.Zero()
		} else {
			Scal(beta, c.Data)
		}
	}
	w := DefaultWorkers()
	if w > 1 && n >= 8 {
		ParallelRanges(TriangleRanges(n, w), func(lo, hi int) {
			syrkRows(alpha, a, c, lo, hi)
		})
	} else {
		syrkRows(alpha, a, c, 0, n)
	}
	// Mirror the upper triangle into the lower one, row-partitioned.
	ParallelFor(n, 64, func(lo, hi int) {
		for i := max(lo, 1); i < hi; i++ {
			for j := 0; j < i; j++ {
				c.Data[i*n+j] = c.Data[j*n+i]
			}
		}
	})
}

// syrkRows accumulates alpha·AᵀA into the upper-triangle rows [rlo,rhi)
// of c, streaming A's rows exactly like Syrk. The inner update is the
// axpy kernel on the row suffix: ci[j] += (alpha·av)·row[j], the same
// association the scalar loop used.
func syrkRows(alpha float64, a, c *Dense, rlo, rhi int) {
	kr := simd.Active()
	for k := 0; k < a.R; k++ {
		row := a.Row(k)
		for i := rlo; i < rhi; i++ {
			av := row[i]
			if av == 0 {
				continue
			}
			kr.Axpy(alpha*av, row[i:], c.Row(i)[i:])
		}
	}
}

// DotParallel returns xᵀy via ParallelReduce with a fixed 4096-element
// chunking. The chunked tree changes the summation order relative to Dot,
// so results can differ from Dot by O(ε) — but they are identical for
// every worker count, so callers may use it under any backend. The
// distributed solvers never use it for replicated state; only the
// shared-memory API does.
func DotParallel(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("mat: DotParallel length mismatch")
	}
	return ParallelReduce(len(x), 4096,
		func(lo, hi int) float64 { return simd.Dot(x[lo:hi], y[lo:hi]) },
		func(a, b float64) float64 { return a + b })
}

// Nrm2SqParallel returns ‖x‖² with the same fixed-chunk deterministic
// reduction as DotParallel.
func Nrm2SqParallel(x []float64) float64 {
	return ParallelReduce(len(x), 4096,
		func(lo, hi int) float64 { return simd.Nrm2Sq(0, x[lo:hi]) },
		func(a, b float64) float64 { return a + b })
}

// parallelFor is the legacy unexported entry point, kept so existing
// in-package callers and tests read unchanged.
func parallelFor(n, minChunk int, body func(lo, hi int)) {
	ParallelFor(n, minChunk, body)
}
