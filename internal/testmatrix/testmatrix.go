// Package testmatrix enumerates the dataset forms of the ROADMAP
// determinism matrix so parity tests can run every execution backend
// (sequential, multicore, simulated, hybrid rank×thread, async) over
// every data representation (in-memory CSR/CSC, dense views, and
// streamed stores in each layout × codec × read mode) from one
// table-driven loop. It is a test-support package: production code must
// not import it.
//
// The matrix contract it encodes:
//
//   - sequential, multicore, simulated and hybrid runs are bitwise
//     deterministic — identical trajectories whatever form the data
//     takes;
//   - async (HOGWILD!) runs are tolerance-convergent (1e-6-relative
//     objective against the sequential optimum) and only exist for the
//     in-memory forms, which provide atomic kernels;
//   - streamed forms run their kernels sequentially under every local
//     backend knob, so multicore requests degrade to (bitwise-equal)
//     sequential execution and async requests are rejected.
package testmatrix

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"saco/internal/core"
	"saco/internal/dist"
	"saco/internal/libsvm"
	"saco/internal/simd"
	"saco/internal/sparse"
	"saco/internal/stream"
)

// Form is one dataset representation under test, with every view a
// backend could need. Views that a form cannot provide are nil.
type Form struct {
	// Name labels the subtest (e.g. "stream-csc-delta-mmap").
	Name string
	// Col is the column-access view (Lasso family).
	Col core.ColMatrix
	// Row is the row-access view (SVM family).
	Row core.RowMatrix
	// Source feeds the simulated cluster's block loaders; nil when the
	// form cannot back a distributed run (dense views).
	Source dist.Source
	// Async reports whether the form provides the atomic kernels
	// BackendAsync needs; async solves over !Async forms must error.
	Async bool
	// Dataset is the backing store of streamed forms (counter
	// assertions); nil for in-memory forms.
	Dataset *stream.Dataset
}

// Streamed reports whether the form is an out-of-core store.
func (f Form) Streamed() bool { return f.Dataset != nil }

// layoutCodecModes is the streamed cross-product: every spill layout ×
// section codec × shard read mode.
var layoutCodecModes = []struct {
	layout stream.Layout
	codec  stream.Codec
	mode   stream.ReadMode
}{
	{stream.LayoutCSR, stream.CodecRaw, stream.ReadCopy},
	{stream.LayoutCSR, stream.CodecRaw, stream.ReadMmap},
	{stream.LayoutCSR, stream.CodecDelta, stream.ReadCopy},
	{stream.LayoutCSR, stream.CodecDelta, stream.ReadMmap},
	{stream.LayoutCSC, stream.CodecRaw, stream.ReadCopy},
	{stream.LayoutCSC, stream.CodecRaw, stream.ReadMmap},
	{stream.LayoutCSC, stream.CodecDelta, stream.ReadCopy},
	{stream.LayoutCSC, stream.CodecDelta, stream.ReadMmap},
}

// Forms materializes every representation of (a, b): the in-memory
// sparse pair, the dense views, and one streamed store per layout ×
// codec × read mode (each ingested from the same LIBSVM rendering of a,
// with labels verified bitwise). Streamed stores live in tb.TempDir and
// close on cleanup.
func Forms(tb testing.TB, a *sparse.CSR, b []float64, blockRows int) []Form {
	tb.Helper()
	dense := a.ToDense()
	forms := []Form{
		{
			Name: "inmem-sparse", Col: a.ToCSC(), Row: a,
			Source: dist.CSRSource{A: a}, Async: true,
		},
		{
			Name: "inmem-dense",
			Col:  sparse.DenseCols{A: dense}, Row: sparse.DenseRows{A: dense},
			Async: true,
		},
	}
	var buf bytes.Buffer
	if err := libsvm.Write(&buf, a, b); err != nil {
		tb.Fatal(err)
	}
	text := buf.Bytes()
	for _, lcm := range layoutCodecModes {
		ds, err := stream.Build(bytes.NewReader(text), tb.TempDir(), stream.BuildOptions{
			BlockRows: blockRows, Features: a.N, Layout: lcm.layout, Codec: lcm.codec,
		})
		if err != nil {
			tb.Fatal(err)
		}
		ds.SetReadMode(lcm.mode)
		tb.Cleanup(func() { ds.Close() })
		if m, n := ds.Dims(); m != a.M || n != a.N {
			tb.Fatalf("streamed store %dx%d, want %dx%d", m, n, a.M, a.N)
		}
		for i := range b {
			if ds.B[i] != b[i] {
				tb.Fatalf("label %d did not survive the text round trip", i)
			}
		}
		forms = append(forms, Form{
			Name:    fmt.Sprintf("stream-%v-%v-%v", lcm.layout, lcm.codec, lcm.mode),
			Col:     ds.Cols(),
			Row:     ds.Rows(),
			Source:  ds,
			Dataset: ds,
		})
	}
	return forms
}

// KernelSets enumerates the bitwise kernel-set dimension of the matrix:
// every deterministic solver configuration must produce bitwise
// identical trajectories under each of these internal/simd dispatch
// sets (scalar is the reference; unrolled and, where the CPU supports
// it, avx2 must reproduce it exactly). The reassociating opt-in set is
// deliberately absent — it is tolerance-gated, never part of the
// deterministic matrix.
func KernelSets() []string { return simd.BitwiseNames() }

// WithKernelSet switches the process-wide kernel dispatch to the named
// set for the duration of the test, restoring the previous set on
// cleanup. Tests that use it cannot run in parallel with each other —
// dispatch is process-wide by design.
func WithKernelSet(tb testing.TB, name string) {
	tb.Helper()
	prev := simd.Active().Name()
	if err := simd.Use(name); err != nil {
		tb.Fatalf("switching kernel set: %v", err)
	}
	tb.Cleanup(func() {
		if err := simd.Use(prev); err != nil {
			tb.Fatalf("restoring kernel set %q: %v", prev, err)
		}
	})
}

// TransportKinds enumerates the mpi transports of the ROADMAP backend
// matrix: every deterministic solver configuration must produce bitwise
// identical trajectories over each (the simulated world is the
// reference; the TCP mesh carries the same message DAG over real
// sockets).
func TransportKinds() []dist.Transport {
	return []dist.Transport{dist.TransportSim, dist.TransportTCP}
}

// SameFloats asserts two vectors are bitwise identical (the matrix's
// deterministic cells).
func SameFloats(tb testing.TB, what string, got, want []float64) {
	tb.Helper()
	if len(got) != len(want) {
		tb.Fatalf("%s: length %d, want %d", what, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			tb.Fatalf("%s[%d]: %.17g != %.17g", what, i, got[i], want[i])
		}
	}
}

// RelDiff returns |x−y| / max(|x|, |y|, 1), the tolerance metric of the
// matrix's async cells.
func RelDiff(x, y float64) float64 {
	d := math.Abs(x - y)
	scale := math.Max(math.Max(math.Abs(x), math.Abs(y)), 1)
	return d / scale
}
