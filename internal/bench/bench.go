// Package bench regenerates every table and figure of the paper's
// evaluation (§IV and §VI) on the synthetic dataset replicas and the
// simulated Cray XC30. Each experiment function returns a structured
// result and can render it as text; cmd/saexp is the CLI front end and
// the repository-root benchmarks exercise the same harness under
// `go test -bench`.
//
// Scaling note: the experiments run the paper's parameter grids on
// scaled-down replicas (see internal/datagen) and rank counts (the paper
// uses 192–12,288 MPI processes; the simulator runs 4–64 goroutine ranks
// and models Cray XC30 time with the α-β-γ model). EXPERIMENTS.md records
// paper-vs-measured values for every artifact.
package bench

import (
	"fmt"
	"io"

	"saco/internal/core"
	"saco/internal/datagen"
	"saco/internal/mpi"
	"saco/internal/sparse"
)

// Config controls the experiment scale.
type Config struct {
	// Scale multiplies dataset dimensions (1 = the replica defaults).
	Scale float64
	// IterScale multiplies iteration counts (1 = full experiment; tests
	// use ~0.05 for smoke coverage).
	IterScale float64
	// Machine is the modeled platform (default CrayXC30).
	Machine mpi.Machine
	// Out receives the rendered tables; nil discards them.
	Out io.Writer
	// Seed drives dataset generation and solver sampling.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.IterScale <= 0 {
		c.IterScale = 1
	}
	if c.Machine.Name == "" {
		c.Machine = mpi.CrayXC30()
	}
	if c.Out == nil {
		c.Out = io.Discard
	}
	if c.Seed == 0 {
		c.Seed = 20180521 // IPDPS 2018 opening day
	}
	return c
}

// iters scales an iteration count, keeping at least a handful.
func (c Config) iters(h int) int {
	v := int(float64(h) * c.IterScale)
	if v < 8 {
		v = 8
	}
	return v
}

// Series is one convergence curve.
type Series struct {
	Label  string
	Iters  []int
	Times  []float64 // modeled seconds; nil for iteration-indexed series
	Values []float64
}

// Final returns the last value of the series.
func (s *Series) Final() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	return s.Values[len(s.Values)-1]
}

// lassoData loads a Lasso replica and picks λ = 0.1·‖Aᵀb‖_∞ (see
// DESIGN.md for why this replaces the paper's 100·σ_min).
func lassoData(name string, cfg Config) (*datagen.Dataset, *sparse.CSR, []float64, float64, error) {
	d, err := datagen.Replica(name, cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, nil, nil, 0, err
	}
	a := d.AsCSR()
	lambda := 0.1 * core.LambdaMaxL1(a.ToCSC(), d.B)
	if lambda == 0 {
		lambda = 0.1
	}
	return d, a, d.B, lambda, nil
}

// svmData loads an SVM replica.
func svmData(name string, cfg Config) (*datagen.Dataset, *sparse.CSR, []float64, error) {
	d, err := datagen.Replica(name, cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, nil, nil, err
	}
	return d, d.AsCSR(), d.B, nil
}

// historySeries converts a core history to a Series.
func historySeries(label string, hist []core.TracePoint) Series {
	s := Series{Label: label}
	for _, p := range hist {
		s.Iters = append(s.Iters, p.Iter)
		s.Values = append(s.Values, p.Value)
	}
	return s
}

// gapSeries converts an SVM gap history to a Series.
func gapSeries(label string, hist []core.GapPoint) Series {
	s := Series{Label: label}
	for _, p := range hist {
		s.Iters = append(s.Iters, p.Iter)
		s.Values = append(s.Values, p.Gap)
	}
	return s
}

// methodName renders the paper's method naming (CD, accBCD, SA-accCD, ...).
func methodName(accelerated bool, mu, s int) string {
	name := "CD"
	if mu > 1 {
		name = "BCD"
	}
	if accelerated {
		name = "acc" + name
	}
	if s > 1 {
		name = fmt.Sprintf("SA-%s(s=%d)", name, s)
	}
	return name
}
