package bench

import (
	"fmt"
	"math"

	"saco/internal/core"
)

// Fig2Dataset is one panel of Fig. 2 plus its Table III row.
type Fig2Dataset struct {
	Name   string
	Series []Series
	// RelErr maps method name to the final relative objective error
	// |f_classic − f_SA| / f_classic (Table III; machine precision is
	// 2.2e-16).
	RelErr map[string]float64
}

// Fig2Result holds the convergence-equivalence experiment.
type Fig2Result struct {
	Datasets []Fig2Dataset
}

// fig2Spec fixes the per-dataset parameters: iteration counts follow the
// paper's x-axes (scaled); the unrolling values keep the batched Gram
// dimension s·µ near 1000, the paper's most aggressive setting (for µ = 8
// the paper's s = 1000 would need a 8000² Gram matrix, so s = 128 keeps
// the same conditioning stress at feasible memory — see EXPERIMENTS.md).
var fig2Spec = []struct {
	name        string
	iters       int
	sCD, sBCD   int
	muBCD       int
	replicaName string
}{
	{name: "leu", iters: 4000, sCD: 1000, sBCD: 128, muBCD: 8, replicaName: "leu"},
	{name: "covtype", iters: 400, sCD: 400, sBCD: 50, muBCD: 8, replicaName: "covtype"},
	{name: "news20", iters: 4000, sCD: 1000, sBCD: 128, muBCD: 8, replicaName: "news20"},
}

// Fig2 reproduces Fig. 2 (objective vs iterations for CD, accCD, BCD,
// accBCD and their SA variants) and Table III (final relative objective
// errors) on the leu, covtype and news20 replicas.
func Fig2(cfg Config) (*Fig2Result, error) {
	cfg = cfg.withDefaults()
	out := &Fig2Result{}
	for _, spec := range fig2Spec {
		d, a, b, lambda, err := lassoData(spec.replicaName, cfg)
		if err != nil {
			return nil, err
		}
		_ = d
		cols := a.ToCSC()
		_, n := a.Dims()
		muBCD := min(spec.muBCD, n) // tiny smoke-test replicas can have n < µ
		h := cfg.iters(spec.iters)
		track := max(h/40, 1)
		panel := Fig2Dataset{Name: spec.name, RelErr: map[string]float64{}}
		for _, m := range []struct {
			acc bool
			mu  int
			s   int
		}{
			{false, 1, 1}, {true, 1, 1}, {false, muBCD, 1}, {true, muBCD, 1},
		} {
			sSA := spec.sCD
			if m.mu > 1 {
				sSA = spec.sBCD
			}
			if sSA > h {
				sSA = h
			}
			base := core.LassoOptions{
				Lambda: lambda, BlockSize: m.mu, Iters: h,
				Accelerated: m.acc, Seed: cfg.Seed, TrackEvery: track,
			}
			classic, err := core.Lasso(cols, b, base)
			if err != nil {
				return nil, err
			}
			sa := base
			sa.S = sSA
			saRes, err := core.Lasso(cols, b, sa)
			if err != nil {
				return nil, err
			}
			panel.Series = append(panel.Series,
				historySeries(methodName(m.acc, m.mu, 1), classic.History),
				historySeries(methodName(m.acc, m.mu, sSA), saRes.History),
			)
			rel := math.Abs(classic.Objective-saRes.Objective) /
				math.Max(1e-300, math.Abs(classic.Objective))
			panel.RelErr[methodName(m.acc, m.mu, 1)] = rel
		}
		out.Datasets = append(out.Datasets, panel)
	}
	out.render(cfg)
	return out, nil
}

func (r *Fig2Result) render(cfg Config) {
	for _, d := range r.Datasets {
		writeSeries(cfg.Out, fmt.Sprintf("Fig 2 (%s): objective vs iterations", d.Name), d.Series, 9)
	}
	t := newTable("dataset", "method", "relative objective error (Table III)")
	for _, d := range r.Datasets {
		for _, m := range []string{"CD", "accCD", "BCD", "accBCD"} {
			if v, ok := d.RelErr[m]; ok {
				t.add(d.Name, "SA-"+m, fmt.Sprintf("%.4e", v))
			}
		}
	}
	t.write(cfg.Out, "Table III: final relative objective error, SA vs non-SA (machine eps 2.2e-16)")
}

// Table3 returns just the Table III values (running the Fig. 2 workloads).
func Table3(cfg Config) (*Fig2Result, error) { return Fig2(cfg) }
