package bench

import (
	"fmt"

	"saco/internal/core"
	"saco/internal/dist"
	"saco/internal/mpi"
)

// AblationRow is one configuration of the design-choice ablations.
type AblationRow struct {
	Name    string
	Seconds float64
	Words   int64
	Msgs    int64
}

// MachineRow is one platform of the latency-sensitivity study (§VII: the
// paper predicts larger SA gains on high-latency frameworks like Spark).
type MachineRow struct {
	Machine string
	Classic float64
	SA      float64
	Speedup float64
	BestS   int
}

// AblationsResult collects both studies.
type AblationsResult struct {
	Design   []AblationRow
	Machines []MachineRow
}

// Ablations quantifies the paper's design choices on the news20 workload:
// replicated-seed coordinate agreement vs broadcasting indices, symmetric
// half-packing of the Gram message (§III fn. 3), and the machine-latency
// sensitivity of the SA speedup (§VII).
func Ablations(cfg Config) (*AblationsResult, error) {
	cfg = cfg.withDefaults()
	_, a, b, lambda, err := lassoData("news20", cfg)
	if err != nil {
		return nil, err
	}
	h := cfg.iters(1000)
	copt := core.LassoOptions{Lambda: lambda, BlockSize: 1, Iters: h, Accelerated: true, Seed: cfg.Seed, S: 16}
	out := &AblationsResult{}

	for _, v := range []struct {
		name string
		opt  dist.Options
	}{
		{"SA s=16, replicated seed, half-pack Gram", dist.Options{P: 16, Machine: cfg.Machine}},
		{"SA s=16, broadcast indices", dist.Options{P: 16, Machine: cfg.Machine, BroadcastIndices: true}},
		{"SA s=16, full Gram pack", dist.Options{P: 16, Machine: cfg.Machine, FullGramPack: true}},
		{"SA s=16, Rabenseifner allreduce", dist.Options{P: 16, Machine: cfg.Machine, RSAGAllreduce: true}},
	} {
		res, err := dist.Lasso(a, b, copt, v.opt)
		if err != nil {
			return nil, err
		}
		out.Design = append(out.Design, AblationRow{
			Name: v.name, Seconds: res.ModeledSeconds(),
			Words: res.Stats.TotalWords(), Msgs: res.Stats.TotalMsgs(),
		})
	}

	base := copt
	base.S = 1
	for _, m := range []mpi.Machine{mpi.CrayXC30(), mpi.EthernetCluster(), mpi.SparkLike()} {
		classic, err := dist.Lasso(a, b, base, dist.Options{P: 16, Machine: m})
		if err != nil {
			return nil, err
		}
		bestT, bestS := -1.0, 1
		for _, s := range []int{4, 16, 64, 256} {
			if s > h {
				continue
			}
			opt := base
			opt.S = s
			res, err := dist.Lasso(a, b, opt, dist.Options{P: 16, Machine: m})
			if err != nil {
				return nil, err
			}
			if t := res.ModeledSeconds(); bestT < 0 || t < bestT {
				bestT, bestS = t, s
			}
		}
		out.Machines = append(out.Machines, MachineRow{
			Machine: m.Name, Classic: classic.ModeledSeconds(), SA: bestT,
			Speedup: classic.ModeledSeconds() / bestT, BestS: bestS,
		})
	}

	t := newTable("configuration", "modeled time", "total words", "total msgs")
	for _, r := range out.Design {
		t.add(r.Name, fmt.Sprintf("%.4es", r.Seconds), fmt.Sprintf("%d", r.Words), fmt.Sprintf("%d", r.Msgs))
	}
	t.write(cfg.Out, "Ablations: coordinate agreement and Gram packing (news20, accCD, P=16)")

	t2 := newTable("machine", "classic", "best SA", "speedup", "best s")
	for _, r := range out.Machines {
		t2.add(r.Machine, fmt.Sprintf("%.4es", r.Classic), fmt.Sprintf("%.4es", r.SA),
			fmt.Sprintf("%.2fx", r.Speedup), fmt.Sprintf("%d", r.BestS))
	}
	t2.write(cfg.Out, "Machine sensitivity: SA speedup grows with synchronization latency (§VII)")
	return out, nil
}
