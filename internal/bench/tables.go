package bench

import (
	"fmt"

	"saco/internal/costmodel"
	"saco/internal/datagen"
)

// Table1Row is one evaluated configuration of the Table I cost model.
type Table1Row struct {
	S                  int
	Flops, Memory      float64
	Latency, Bandwidth float64
	ModeledTime        float64
}

// Table1Result evaluates the closed-form costs of Table I.
type Table1Result struct {
	Problem costmodel.Problem
	Rows    []Table1Row
	// OptimalS is the model-predicted best unrolling factor.
	OptimalS int
}

// Table1 evaluates the Table I cost formulas for a news20-like
// configuration at the paper's scale (P = 768, µ = 8) across unrolling
// factors, demonstrating the F·s and W·s growth against the L/s decline.
func Table1(cfg Config) (*Table1Result, error) {
	cfg = cfg.withDefaults()
	pb := costmodel.Problem{
		M: 15935, N: 62061, Density: 0.0013, Mu: 8, H: 10000, S: 1, P: 768,
		HalfPack: true,
	}
	res := &Table1Result{Problem: pb, OptimalS: costmodel.OptimalS(pb, cfg.Machine, 2048)}
	for _, s := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512} {
		p := pb.WithS(s)
		res.Rows = append(res.Rows, Table1Row{
			S:           s,
			Flops:       p.Flops(),
			Memory:      p.MemoryWords(),
			Latency:     p.LatencyMessages(),
			Bandwidth:   p.BandwidthWords(),
			ModeledTime: p.Time(cfg.Machine),
		})
	}
	t := newTable("s", "F (flops)", "M (words)", "L (msgs)", "W (words)", "modeled time")
	for _, r := range res.Rows {
		t.add(fmt.Sprintf("%d", r.S), fmt.Sprintf("%.3e", r.Flops), fmt.Sprintf("%.3e", r.Memory),
			fmt.Sprintf("%.3e", r.Latency), fmt.Sprintf("%.3e", r.Bandwidth),
			fmt.Sprintf("%.3es", r.ModeledTime))
	}
	t.write(cfg.Out, fmt.Sprintf("Table I: accBCD vs SA-accBCD costs (news20-scale, P=%d, µ=%d; model-optimal s=%d on %s)",
		pb.P, pb.Mu, res.OptimalS, cfg.Machine.Name))
	return res, nil
}

// DatasetRow summarizes one replica (Tables II and IV).
type DatasetRow struct {
	Name           string
	Features       int
	DataPoints     int
	OrigFeatures   int
	OrigDataPoints int
	NNZPercent     float64
}

// DatasetsResult holds the replica summaries.
type DatasetsResult struct {
	Lasso []DatasetRow // Table II
	SVM   []DatasetRow // Table IV
}

// Tables2and4 generates each dataset replica at the configured scale and
// reports its shape against the original LIBSVM dataset.
func Tables2and4(cfg Config) (*DatasetsResult, error) {
	cfg = cfg.withDefaults()
	res := &DatasetsResult{}
	lasso := []string{"url", "news20", "covtype", "epsilon", "leu"}
	svm := []string{"w1a", "leu.binary", "duke", "news20.binary", "rcv1.binary", "gisette"}
	build := func(names []string) ([]DatasetRow, error) {
		var rows []DatasetRow
		for _, name := range names {
			d, err := datagen.Replica(name, cfg.Scale, cfg.Seed)
			if err != nil {
				return nil, err
			}
			m, n := d.Dims()
			_, _, origM, origN, _, err := datagen.ReplicaInfo(name)
			if err != nil {
				return nil, err
			}
			rows = append(rows, DatasetRow{
				Name: name, Features: n, DataPoints: m,
				OrigFeatures: origN, OrigDataPoints: origM,
				NNZPercent: 100 * d.Density(),
			})
		}
		return rows, nil
	}
	var err error
	if res.Lasso, err = build(lasso); err != nil {
		return nil, err
	}
	if res.SVM, err = build(svm); err != nil {
		return nil, err
	}
	emit := func(rows []DatasetRow, title string) {
		t := newTable("name", "features", "data points", "NNZ%", "original (features x points)")
		for _, r := range rows {
			t.add(r.Name, fmt.Sprintf("%d", r.Features), fmt.Sprintf("%d", r.DataPoints),
				fmt.Sprintf("%.4g", r.NNZPercent),
				fmt.Sprintf("%d x %d", r.OrigFeatures, r.OrigDataPoints))
		}
		t.write(cfg.Out, title)
	}
	emit(res.Lasso, "Table II: Lasso dataset replicas")
	emit(res.SVM, "Table IV: SVM dataset replicas")
	return res, nil
}
