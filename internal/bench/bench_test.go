package bench

import (
	"bytes"
	"strings"
	"testing"
)

// quickCfg keeps every experiment at smoke-test scale; -short (the CI
// test job) shrinks the replicas and iteration budgets further so the
// whole harness finishes in seconds, while full paper-scale runs stay
// reachable through cmd/saexp.
func quickCfg(buf *bytes.Buffer) Config {
	cfg := Config{Scale: 0.03, IterScale: 0.02, Out: buf, Seed: 7}
	if testing.Short() {
		cfg.Scale = 0.02
		cfg.IterScale = 0.01
	}
	return cfg
}

func TestFig2Quick(t *testing.T) {
	var buf bytes.Buffer
	res, err := Fig2(quickCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Datasets) != 3 {
		t.Fatalf("datasets = %d", len(res.Datasets))
	}
	for _, d := range res.Datasets {
		if len(d.Series) != 8 {
			t.Fatalf("%s: %d series, want 8", d.Name, len(d.Series))
		}
		for m, rel := range d.RelErr {
			if rel > 1e-8 {
				t.Fatalf("%s/%s: SA relative error %v too large", d.Name, m, rel)
			}
		}
	}
	if !strings.Contains(buf.String(), "Table III") {
		t.Fatal("missing Table III output")
	}
}

func TestFig3Quick(t *testing.T) {
	var buf bytes.Buffer
	cfg := quickCfg(&buf)
	res, err := Fig3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Panels) != 4 {
		t.Fatalf("panels = %d", len(res.Panels))
	}
	for _, p := range res.Panels {
		if len(p.Series) != 12 {
			t.Fatalf("%s: %d series, want 12", p.Name, len(p.Series))
		}
		for m, sp := range p.Speedup {
			if sp <= 0 {
				t.Fatalf("%s/%s: non-positive speedup", p.Name, m)
			}
		}
	}
}

func TestFig4Quick(t *testing.T) {
	var buf bytes.Buffer
	res, err := Fig4(quickCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Panels {
		if len(p.Scaling) == 0 || len(p.Speedups) == 0 {
			t.Fatalf("%s: empty panel", p.Name)
		}
		// SA must win at every P on the latency-bound tiny workload.
		for _, sp := range p.Scaling {
			if sp.SASeconds >= sp.ClassicSeconds {
				t.Fatalf("%s P=%d: SA %v not faster than classic %v", p.Name, sp.P, sp.SASeconds, sp.ClassicSeconds)
			}
		}
		// Communication speedup must be greater than 1 somewhere.
		anyComm := false
		for _, sp := range p.Speedups {
			if sp.Comm > 1 {
				anyComm = true
			}
		}
		if !anyComm {
			t.Fatalf("%s: no communication speedup observed", p.Name)
		}
	}
}

func TestFig5Quick(t *testing.T) {
	var buf bytes.Buffer
	res, err := Fig5(quickCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Panels) != 3 {
		t.Fatalf("panels = %d", len(res.Panels))
	}
	for _, p := range res.Panels {
		if len(p.Series) != 4 {
			t.Fatalf("%s: %d series, want 4", p.Name, len(p.Series))
		}
		for loss, dev := range p.MaxDeviation {
			// The gap trajectories must agree to fine precision relative
			// to the gap magnitude (starts at O(m)).
			if dev > 1e-6*float64(1+len(p.Series[0].Values))*1e3 {
				t.Fatalf("%s/%s: SA deviation %v", p.Name, loss, dev)
			}
		}
	}
}

func TestTable5Quick(t *testing.T) {
	var buf bytes.Buffer
	res, err := Table5(quickCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.Speedup <= 0 {
			t.Fatalf("%s: speedup %v", r.Dataset, r.Speedup)
		}
		if r.SBest < 2 {
			t.Fatalf("%s: degenerate best s", r.Dataset)
		}
	}
}

func TestTable1(t *testing.T) {
	var buf bytes.Buffer
	cfg := quickCfg(&buf)
	res, err := Table1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 5 {
		t.Fatal("too few rows")
	}
	// Latency monotonically falls with s, bandwidth rises.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Latency > res.Rows[i-1].Latency {
			t.Fatal("latency not decreasing in s")
		}
		if res.Rows[i].Bandwidth < res.Rows[i-1].Bandwidth {
			t.Fatal("bandwidth not increasing in s")
		}
	}
	if res.OptimalS < 2 {
		t.Fatalf("model-optimal s = %d; expected > 1 on the Cray model", res.OptimalS)
	}
}

func TestTables2and4(t *testing.T) {
	var buf bytes.Buffer
	res, err := Tables2and4(quickCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Lasso) != 5 || len(res.SVM) != 6 {
		t.Fatalf("row counts %d/%d", len(res.Lasso), len(res.SVM))
	}
	out := buf.String()
	if !strings.Contains(out, "Table II") || !strings.Contains(out, "Table IV") {
		t.Fatal("missing table titles")
	}
}

func TestAblationsQuick(t *testing.T) {
	var buf bytes.Buffer
	res, err := Ablations(quickCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Design) != 4 || len(res.Machines) != 3 {
		t.Fatalf("rows %d/%d", len(res.Design), len(res.Machines))
	}
	base := res.Design[0]
	if res.Design[1].Words <= base.Words {
		t.Fatal("broadcast-indices ablation should cost more words")
	}
	if res.Design[2].Words <= base.Words {
		t.Fatal("full-pack ablation should cost more words")
	}
	if res.Design[3].Seconds <= 0 {
		t.Fatal("RSAG ablation missing")
	}
	// Speedup should grow with machine latency: Cray < Ethernet < Spark.
	if !(res.Machines[0].Speedup < res.Machines[1].Speedup && res.Machines[1].Speedup < res.Machines[2].Speedup) {
		t.Fatalf("speedups not ordered by latency: %v %v %v",
			res.Machines[0].Speedup, res.Machines[1].Speedup, res.Machines[2].Speedup)
	}
}
