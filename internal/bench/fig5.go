package bench

import (
	"fmt"
	"math"

	"saco/internal/core"
)

// fig5Spec mirrors Fig. 5: three binary datasets, SVM-L1 and SVM-L2 with
// s = 500. For the dense leu/duke replicas the unrolling is capped at 128
// to keep the 500×500 dense-row Gram feasible in pure Go (w1a, the
// sparse panel, runs the paper's full s = 500); the stability claim is
// unchanged since the Gram dimension still far exceeds typical s.
var fig5Spec = []struct {
	name    string
	replica string
	iters   int
	s       int
	tol     float64
}{
	{name: "w1a", replica: "w1a", iters: 400000, s: 500, tol: 1e-6},
	{name: "leu", replica: "leu.binary", iters: 2000, s: 128, tol: 1e-8},
	{name: "duke", replica: "duke", iters: 4000, s: 128, tol: 1e-8},
}

// Fig5Panel is one dataset's duality-gap trajectories.
type Fig5Panel struct {
	Name   string
	Series []Series
	// MaxDeviation is the largest |gap_SA − gap_classic| over tracked
	// points, per loss — the numerical-stability evidence of §VI.
	MaxDeviation map[string]float64
}

// Fig5Result reproduces Fig. 5.
type Fig5Result struct {
	Panels []Fig5Panel
}

// Fig5 runs SVM-L1 and SVM-L2 with and without synchronization avoidance
// and reports duality gap vs iterations.
func Fig5(cfg Config) (*Fig5Result, error) {
	cfg = cfg.withDefaults()
	out := &Fig5Result{}
	for _, spec := range fig5Spec {
		_, a, b, err := svmData(spec.replica, cfg)
		if err != nil {
			return nil, err
		}
		h := cfg.iters(spec.iters)
		track := max(h/25, 1)
		panel := Fig5Panel{Name: spec.name, MaxDeviation: map[string]float64{}}
		for _, loss := range []core.SVMLoss{core.SVML1, core.SVML2} {
			base := core.SVMOptions{
				Lambda: 1, Loss: loss, Iters: h, Seed: cfg.Seed,
				TrackEvery: track, Tol: spec.tol,
			}
			classic, err := core.SVM(a, b, base)
			if err != nil {
				return nil, err
			}
			sa := base
			sa.S = min(spec.s, h)
			saRes, err := core.SVM(a, b, sa)
			if err != nil {
				return nil, err
			}
			panel.Series = append(panel.Series,
				gapSeries(loss.String(), classic.History),
				gapSeries(fmt.Sprintf("SA-%s(s=%d)", loss.String(), sa.S), saRes.History),
			)
			dev := 0.0
			for k := 0; k < len(classic.History) && k < len(saRes.History); k++ {
				if d := math.Abs(classic.History[k].Gap - saRes.History[k].Gap); d > dev {
					dev = d
				}
			}
			panel.MaxDeviation[loss.String()] = dev
		}
		out.Panels = append(out.Panels, panel)
	}
	out.render(cfg)
	return out, nil
}

func (r *Fig5Result) render(cfg Config) {
	for _, p := range r.Panels {
		writeSeries(cfg.Out, fmt.Sprintf("Fig 5 (%s): duality gap vs iterations", p.Name), p.Series, 8)
		t := newTable("loss", "max |gap_SA - gap_classic|")
		for _, l := range []string{"svm-l1", "svm-l2"} {
			t.add(l, fmt.Sprintf("%.4e", p.MaxDeviation[l]))
		}
		t.write(cfg.Out, fmt.Sprintf("Fig 5 (%s): SA vs classic trajectory deviation", p.Name))
	}
}
