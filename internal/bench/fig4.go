package bench

import (
	"fmt"

	"saco/internal/core"
	"saco/internal/dist"
)

// fig4Spec: strong-scaling rank sweeps (paper: 192–12288 cores, scaled
// down 48x) and the s sweep of the speedup-breakdown panels.
var fig4Spec = []struct {
	name  string
	ps    []int
	iters int
	sMax  int
}{
	{name: "news20", ps: []int{4, 8, 16}, iters: 1500, sMax: 128},
	{name: "covtype", ps: []int{8, 16, 32}, iters: 400, sMax: 64},
	{name: "url", ps: []int{16, 32, 64}, iters: 1000, sMax: 512},
	{name: "epsilon", ps: []int{16, 32, 64}, iters: 600, sMax: 256},
}

// ScalePoint is one (P, time) pair of the strong-scaling panels 4a–4d.
type ScalePoint struct {
	P              int
	ClassicSeconds float64
	SASeconds      float64
	SBest          int
}

// SpeedupPoint is one s value of the breakdown panels 4e–4h.
type SpeedupPoint struct {
	S           int
	Total       float64
	Comm        float64
	Comp        float64
	SecondsSA   float64
	SecondsBase float64
}

// Fig4Panel is one dataset's scaling study.
type Fig4Panel struct {
	Name     string
	Scaling  []ScalePoint   // accCD vs SA-accCD across P (Fig. 4a–d)
	Speedups []SpeedupPoint // breakdown across s at the largest P (Fig. 4e–h)
}

// Fig4Result reproduces Fig. 4.
type Fig4Result struct {
	Panels []Fig4Panel
}

// Fig4 reproduces the strong-scaling comparison (accCD vs SA-accCD) and
// the total/communication/computation speedup breakdown across s.
func Fig4(cfg Config) (*Fig4Result, error) {
	cfg = cfg.withDefaults()
	out := &Fig4Result{}
	for _, spec := range fig4Spec {
		_, a, b, lambda, err := lassoData(spec.name, cfg)
		if err != nil {
			return nil, err
		}
		h := cfg.iters(spec.iters)
		base := core.LassoOptions{Lambda: lambda, BlockSize: 1, Iters: h, Accelerated: true, Seed: cfg.Seed}
		panel := Fig4Panel{Name: spec.name}

		// Panels a–d: strong scaling at each P, SA at its measured-best s.
		sGrid := sValuesUpTo(spec.sMax, h)
		for _, p := range spec.ps {
			classic, err := dist.Lasso(a, b, base, dist.Options{P: p, Machine: cfg.Machine})
			if err != nil {
				return nil, err
			}
			bestT, bestS := -1.0, 1
			for _, s := range sGrid {
				opt := base
				opt.S = s
				saRes, err := dist.Lasso(a, b, opt, dist.Options{P: p, Machine: cfg.Machine})
				if err != nil {
					return nil, err
				}
				if t := saRes.ModeledSeconds(); bestT < 0 || t < bestT {
					bestT, bestS = t, s
				}
			}
			panel.Scaling = append(panel.Scaling, ScalePoint{
				P: p, ClassicSeconds: classic.ModeledSeconds(), SASeconds: bestT, SBest: bestS,
			})
		}

		// Panels e–h: breakdown at the largest P across the s grid.
		pMax := spec.ps[len(spec.ps)-1]
		classic, err := dist.Lasso(a, b, base, dist.Options{P: pMax, Machine: cfg.Machine})
		if err != nil {
			return nil, err
		}
		for _, s := range sGrid {
			opt := base
			opt.S = s
			saRes, err := dist.Lasso(a, b, opt, dist.Options{P: pMax, Machine: cfg.Machine})
			if err != nil {
				return nil, err
			}
			panel.Speedups = append(panel.Speedups, SpeedupPoint{
				S:           s,
				Total:       classic.ModeledSeconds() / saRes.ModeledSeconds(),
				Comm:        safeDiv(classic.Stats.MaxComm(), saRes.Stats.MaxComm()),
				Comp:        safeDiv(classic.Stats.MaxComp(), saRes.Stats.MaxComp()),
				SecondsSA:   saRes.ModeledSeconds(),
				SecondsBase: classic.ModeledSeconds(),
			})
		}
		out.Panels = append(out.Panels, panel)
	}
	out.render(cfg)
	return out, nil
}

func sValuesUpTo(sMax, h int) []int {
	var out []int
	for s := 2; s <= sMax && s <= h; s *= 2 {
		out = append(out, s)
	}
	if len(out) == 0 {
		out = []int{2}
	}
	return out
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 1
	}
	return a / b
}

func (r *Fig4Result) render(cfg Config) {
	for _, p := range r.Panels {
		t := newTable("P", "accCD time", "SA-accCD time", "best s", "speedup")
		for _, sp := range p.Scaling {
			t.add(fmt.Sprintf("%d", sp.P), fmt.Sprintf("%.4es", sp.ClassicSeconds),
				fmt.Sprintf("%.4es", sp.SASeconds), fmt.Sprintf("%d", sp.SBest),
				fmt.Sprintf("%.2fx", sp.ClassicSeconds/sp.SASeconds))
		}
		t.write(cfg.Out, fmt.Sprintf("Fig 4a-d (%s): strong scaling, modeled time", p.Name))

		t2 := newTable("s", "total", "communication", "computation")
		for _, sp := range p.Speedups {
			t2.add(fmt.Sprintf("%d", sp.S), fmt.Sprintf("%.2fx", sp.Total),
				fmt.Sprintf("%.2fx", sp.Comm), fmt.Sprintf("%.2fx", sp.Comp))
		}
		t2.write(cfg.Out, fmt.Sprintf("Fig 4e-h (%s): SA-accCD speedup breakdown vs s", p.Name))
	}
}
