package bench

import (
	"fmt"
	"io"
	"strings"
)

// table is a minimal fixed-width text table writer for experiment output.
type table struct {
	header []string
	rows   [][]string
}

func newTable(header ...string) *table { return &table{header: header} }

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) addf(format string, args ...any) {
	t.add(strings.Split(fmt.Sprintf(format, args...), "|")...)
}

func (t *table) write(w io.Writer, title string) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if title != "" {
		fmt.Fprintf(w, "\n== %s ==\n", title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		fmt.Fprintln(w)
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
}

// downsample reduces a series to at most k points (keeping the last).
func downsample(s Series, k int) Series {
	n := len(s.Values)
	if n <= k || k < 2 {
		return s
	}
	out := Series{Label: s.Label}
	step := float64(n-1) / float64(k-1)
	for i := 0; i < k; i++ {
		j := int(float64(i) * step)
		if i == k-1 {
			j = n - 1
		}
		out.Iters = append(out.Iters, s.Iters[j])
		if s.Times != nil {
			out.Times = append(out.Times, s.Times[j])
		}
		out.Values = append(out.Values, s.Values[j])
	}
	return out
}

// writeSeries renders convergence curves as aligned columns, one series
// per block — the textual stand-in for the paper's plots.
func writeSeries(w io.Writer, title string, series []Series, maxPoints int) {
	fmt.Fprintf(w, "\n== %s ==\n", title)
	for _, s := range series {
		ds := downsample(s, maxPoints)
		fmt.Fprintf(w, "%s:\n", s.Label)
		for i := range ds.Values {
			if ds.Times != nil {
				fmt.Fprintf(w, "  iter %8d   t=%.6es   f=%.6e\n", ds.Iters[i], ds.Times[i], ds.Values[i])
			} else {
				fmt.Fprintf(w, "  iter %8d   f=%.6e\n", ds.Iters[i], ds.Values[i])
			}
		}
	}
}
