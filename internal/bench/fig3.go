package bench

import (
	"fmt"

	"saco/internal/core"
	"saco/internal/dist"
)

// fig3Spec mirrors the paper's Fig. 3 panels. The processor counts scale
// the paper's 768/3072/12288 down by 48x (the simulator runs real
// goroutine ranks); the s values are the paper's legend values.
var fig3Spec = []struct {
	name    string
	p       int
	itersCD int
	muBCD   int
	sCD     [2]int // best / too-large, from the paper's legends
	sAccCD  [2]int
	sBCD    [2]int
	sAccBCD [2]int
}{
	{name: "news20", p: 16, itersCD: 3000, muBCD: 8, sCD: [2]int{32, 128}, sAccCD: [2]int{16, 128}, sBCD: [2]int{8, 32}, sAccBCD: [2]int{8, 16}},
	{name: "covtype", p: 32, itersCD: 400, muBCD: 2, sCD: [2]int{16, 64}, sAccCD: [2]int{32, 128}, sBCD: [2]int{32, 128}, sAccBCD: [2]int{32, 128}},
	{name: "url", p: 64, itersCD: 2000, muBCD: 8, sCD: [2]int{64, 512}, sAccCD: [2]int{64, 512}, sBCD: [2]int{32, 64}, sAccBCD: [2]int{32, 64}},
	{name: "epsilon", p: 64, itersCD: 1000, muBCD: 8, sCD: [2]int{64, 256}, sAccCD: [2]int{64, 256}, sBCD: [2]int{8, 32}, sAccBCD: [2]int{8, 32}},
}

// Fig3Panel is one dataset's convergence-vs-running-time curves.
type Fig3Panel struct {
	Name   string
	P      int
	Series []Series
	// Speedup maps method name to modeled time(classic)/time(best SA) at
	// equal iteration counts — the headline numbers of §IV-B.
	Speedup map[string]float64
}

// Fig3Result reproduces Fig. 3.
type Fig3Result struct {
	Panels []Fig3Panel
}

// Fig3 runs CD, accCD, BCD and accBCD plus their SA variants on the
// simulated cluster and reports objective vs modeled running time.
func Fig3(cfg Config) (*Fig3Result, error) {
	cfg = cfg.withDefaults()
	out := &Fig3Result{}
	for _, spec := range fig3Spec {
		_, a, b, lambda, err := lassoData(spec.name, cfg)
		if err != nil {
			return nil, err
		}
		_, n := a.Dims()
		muBCD := min(spec.muBCD, n) // tiny smoke-test replicas can have n < µ
		panel := Fig3Panel{Name: spec.name, P: spec.p, Speedup: map[string]float64{}}
		for _, m := range []struct {
			acc bool
			mu  int
			ss  [2]int
		}{
			{false, 1, spec.sCD},
			{true, 1, spec.sAccCD},
			{false, muBCD, spec.sBCD},
			{true, muBCD, spec.sAccBCD},
		} {
			h := cfg.iters(spec.itersCD)
			if m.mu > 1 {
				h = cfg.iters(spec.itersCD / 2)
			}
			track := max(h/20, 1)
			base := core.LassoOptions{
				Lambda: lambda, BlockSize: m.mu, Iters: h,
				Accelerated: m.acc, Seed: cfg.Seed, TrackEvery: track,
			}
			classic, err := dist.Lasso(a, b, base, dist.Options{P: spec.p, Machine: cfg.Machine})
			if err != nil {
				return nil, err
			}
			panel.Series = append(panel.Series, timedSeries(methodName(m.acc, m.mu, 1), classic.Trace))
			bestTime := -1.0
			for _, s := range m.ss {
				if s > h {
					s = h
				}
				opt := base
				opt.S = s
				saRes, err := dist.Lasso(a, b, opt, dist.Options{P: spec.p, Machine: cfg.Machine})
				if err != nil {
					return nil, err
				}
				panel.Series = append(panel.Series, timedSeries(methodName(m.acc, m.mu, s), saRes.Trace))
				if t := saRes.ModeledSeconds(); bestTime < 0 || t < bestTime {
					bestTime = t
				}
			}
			panel.Speedup[methodName(m.acc, m.mu, 1)] = classic.ModeledSeconds() / bestTime
		}
		out.Panels = append(out.Panels, panel)
	}
	out.render(cfg)
	return out, nil
}

func timedSeries(label string, trace []dist.TimedPoint) Series {
	s := Series{Label: label}
	for _, p := range trace {
		s.Iters = append(s.Iters, p.Iter)
		s.Times = append(s.Times, p.Seconds)
		s.Values = append(s.Values, p.Value)
	}
	return s
}

func (r *Fig3Result) render(cfg Config) {
	for _, p := range r.Panels {
		writeSeries(cfg.Out, fmt.Sprintf("Fig 3 (%s, P=%d): objective vs modeled running time", p.Name, p.P), p.Series, 6)
		t := newTable("method", "modeled speedup of best SA variant")
		for _, m := range []string{"CD", "accCD", "BCD", "accBCD"} {
			if v, ok := p.Speedup[m]; ok {
				t.add(m, fmt.Sprintf("%.2fx", v))
			}
		}
		t.write(cfg.Out, fmt.Sprintf("Fig 3 (%s): SA speedups at equal iterations", p.Name))
	}
}
