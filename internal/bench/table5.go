package bench

import (
	"fmt"

	"saco/internal/core"
	"saco/internal/dist"
)

// table5Spec mirrors Table V. Rank counts scale the paper's 576/240/3072
// down 24x–96x. The paper stops at duality gap 1e-1 on the full datasets;
// on the scaled replicas the equivalent is a fixed iteration budget of
// several epochs — legitimate because SA and classic trajectories are
// numerically identical, so time-to-H equals time-to-gap for both.
var table5Spec = []struct {
	name     string
	replica  string
	p        int
	epochs   int
	sChoices []int
}{
	{name: "news20.binary", replica: "news20.binary", p: 24, epochs: 6, sChoices: []int{16, 32, 64, 128}},
	{name: "rcv1.binary", replica: "rcv1.binary", p: 16, epochs: 4, sChoices: []int{16, 32, 64, 128}},
	{name: "gisette", replica: "gisette", p: 32, epochs: 10, sChoices: []int{32, 64, 128, 256}},
}

// Table5Row is one dataset's SVM-L1 timing comparison.
type Table5Row struct {
	Dataset        string
	P              int
	Iters          int
	ClassicSeconds float64
	SASeconds      float64
	SBest          int
	Speedup        float64
	FinalGap       float64
	// FlopImbalance is max/min per-rank flops under the 1D-column layout:
	// the load-balancing effect §VI reports for the sparse datasets.
	FlopImbalance float64
}

// Table5Result reproduces Table V.
type Table5Result struct {
	Rows []Table5Row
}

// Table5 times SVM-L1 vs SA-SVM-L1 on the simulated cluster, choosing the
// best s per dataset as the paper does ("s = 64 was the best setting for
// rcv1 and news20; s = 128 was best for gisette").
func Table5(cfg Config) (*Table5Result, error) {
	cfg = cfg.withDefaults()
	out := &Table5Result{}
	for _, spec := range table5Spec {
		_, a, b, err := svmData(spec.replica, cfg)
		if err != nil {
			return nil, err
		}
		m, _ := a.Dims()
		h := cfg.iters(spec.epochs * m)
		base := core.SVMOptions{Lambda: 1, Loss: core.SVML1, Iters: h, Seed: cfg.Seed}
		classic, err := dist.SVM(a, b, base, dist.Options{P: spec.p, Machine: cfg.Machine})
		if err != nil {
			return nil, err
		}
		bestT, bestS := -1.0, 1
		for _, s := range spec.sChoices {
			if s > h {
				s = h
			}
			opt := base
			opt.S = s
			saRes, err := dist.SVM(a, b, opt, dist.Options{P: spec.p, Machine: cfg.Machine})
			if err != nil {
				return nil, err
			}
			if t := saRes.ModeledSeconds(); bestT < 0 || t < bestT {
				bestT, bestS = t, s
			}
		}
		var minF, maxF float64
		for i, r := range classic.Stats.PerRank {
			if i == 0 || r.Flops < minF {
				minF = r.Flops
			}
			if r.Flops > maxF {
				maxF = r.Flops
			}
		}
		imb := 1.0
		if minF > 0 {
			imb = maxF / minF
		}
		out.Rows = append(out.Rows, Table5Row{
			Dataset: spec.name, P: spec.p, Iters: h,
			ClassicSeconds: classic.ModeledSeconds(), SASeconds: bestT,
			SBest: bestS, Speedup: classic.ModeledSeconds() / bestT,
			FinalGap: classic.Gap, FlopImbalance: imb,
		})
	}
	out.render(cfg)
	return out, nil
}

func (r *Table5Result) render(cfg Config) {
	t := newTable("dataset", "P", "iters", "SVM-L1 time", "SA-SVM-L1 time", "best s", "speedup", "flop imbalance")
	for _, row := range r.Rows {
		t.add(row.Dataset, fmt.Sprintf("%d", row.P), fmt.Sprintf("%d", row.Iters),
			fmt.Sprintf("%.4es", row.ClassicSeconds), fmt.Sprintf("%.4es", row.SASeconds),
			fmt.Sprintf("%d", row.SBest), fmt.Sprintf("%.2fx", row.Speedup),
			fmt.Sprintf("%.2f", row.FlopImbalance))
	}
	t.write(cfg.Out, "Table V: SA-SVM-L1 speedups over SVM-L1 (modeled Cray XC30 time)")
}
