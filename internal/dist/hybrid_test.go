package dist

import (
	"testing"

	"saco/internal/core"
	"saco/internal/datagen"
	"saco/internal/mpi"
)

// TestLassoHybridRankWorkers is the acceptance criterion for the hybrid
// rank×thread mode: at fixed rank count, raising the per-rank core
// budget must (a) leave the solution bitwise unchanged — kernel worker
// invariance — and (b) strictly lower the modeled time, since the cost
// model charges parallelizable kernel flops at flops/cores while
// communication stays fixed.
func TestLassoHybridRankWorkers(t *testing.T) {
	data := datagen.Regression("hybrid", 7, 600, 200, 0.1, 10, 0.05)
	a := data.AsCSR()
	opt := core.LassoOptions{Lambda: 0.3, BlockSize: 4, Iters: 200, S: 8, Seed: 3}
	base := Options{P: 4, Machine: mpi.CrayXC30()}

	flat, err := Lasso(a, data.B, opt, base)
	if err != nil {
		t.Fatal(err)
	}
	prev := flat.ModeledSeconds()
	for _, cores := range []int{2, 4, 8} {
		cl := base
		cl.RankWorkers = cores
		hyb, err := Lasso(a, data.B, opt, cl)
		if err != nil {
			t.Fatal(err)
		}
		for i := range hyb.X {
			if hyb.X[i] != flat.X[i] {
				t.Fatalf("cores=%d: X[%d] = %v differs from flat run %v", cores, i, hyb.X[i], flat.X[i])
			}
		}
		if hyb.Objective != flat.Objective {
			t.Fatalf("cores=%d: objective %v != %v", cores, hyb.Objective, flat.Objective)
		}
		if got := hyb.ModeledSeconds(); got >= prev {
			t.Fatalf("cores=%d: modeled time %.6e not below %.6e", cores, got, prev)
		} else {
			prev = got
		}
	}
}

// TestSVMHybridRankWorkers is the SVM counterpart: bitwise-equal duals
// and strictly decreasing modeled time with the core budget.
func TestSVMHybridRankWorkers(t *testing.T) {
	data := datagen.Classification("hybrid-svm", 11, 400, 150, 0.1, 0.05)
	a := data.AsCSR()
	opt := core.SVMOptions{Lambda: 1, Iters: 600, S: 16, Seed: 5}
	base := Options{P: 4, Machine: mpi.CrayXC30()}

	flat, err := SVM(a, data.B, opt, base)
	if err != nil {
		t.Fatal(err)
	}
	cl := base
	cl.RankWorkers = 4
	hyb, err := SVM(a, data.B, opt, cl)
	if err != nil {
		t.Fatal(err)
	}
	for i := range hyb.Alpha {
		if hyb.Alpha[i] != flat.Alpha[i] {
			t.Fatalf("Alpha[%d] = %v differs from flat run %v", i, hyb.Alpha[i], flat.Alpha[i])
		}
	}
	for i := range hyb.X {
		if hyb.X[i] != flat.X[i] {
			t.Fatalf("X[%d] = %v differs from flat run %v", i, hyb.X[i], flat.X[i])
		}
	}
	if hyb.Gap != flat.Gap {
		t.Fatalf("gap %v != %v", hyb.Gap, flat.Gap)
	}
	if hyb.ModeledSeconds() >= flat.ModeledSeconds() {
		t.Fatalf("hybrid modeled time %.6e not below flat %.6e",
			hyb.ModeledSeconds(), flat.ModeledSeconds())
	}
}

// TestHybridFlopsConserved: the core budget changes modeled time, not
// modeled work — the flop count is the same at any width.
func TestHybridFlopsConserved(t *testing.T) {
	data := datagen.Regression("hybrid-flops", 13, 300, 100, 0.15, 8, 0.05)
	a := data.AsCSR()
	opt := core.LassoOptions{Lambda: 0.3, Iters: 100, S: 4, Seed: 9}
	flops := func(cores int) float64 {
		res, err := Lasso(a, data.B, opt, Options{P: 2, Machine: mpi.CrayXC30(), RankWorkers: cores})
		if err != nil {
			t.Fatal(err)
		}
		var f float64
		for _, r := range res.Stats.PerRank {
			f += r.Flops
		}
		return f
	}
	if f1, f4 := flops(1), flops(4); f1 != f4 {
		t.Fatalf("flops changed with core budget: %v vs %v", f1, f4)
	}
}
