package dist

import (
	"fmt"

	"saco/internal/core"
	"saco/internal/mat"
	"saco/internal/mpi"
	"saco/internal/rng"
	"saco/internal/sparse"
)

// tagGatherX is the point-to-point tag of the final primal-vector
// assembly (collective tags are negative, so any non-negative tag is
// free).
const tagGatherX = 1

// SVM trains a linear SVM by dual coordinate descent on the configured
// cluster with the paper's 1D-column layout (§VI): each rank owns a
// column block of A and the matching slice of the primal vector x, while
// the dual α and the labels are replicated. Per outer iteration the
// ranks compute local contributions to the s×s row Gram G = YYᵀ and the
// hoisted products x'_j, sum them with one Allreduce, and run s
// communication-free dual updates — opt.S <= 1 degenerates to the
// classical one-reduction-per-iteration Alg. 3.
func SVM(a *sparse.CSR, b []float64, opt core.SVMOptions, cl Options) (*SVMResult, error) {
	return SVMFrom(CSRSource{a}, b, opt, cl)
}

// SVMFrom is SVM over any block Source — the entry point for
// out-of-core data (stream.Dataset), whose column blocks are assembled
// with one shard pass per rank instead of slicing a resident CSR.
func SVMFrom(src Source, b []float64, opt core.SVMOptions, cl Options) (*SVMResult, error) {
	cl, err := cl.withDefaults()
	if err != nil {
		return nil, err
	}
	results := make([]*SVMResult, cl.P)
	stats, err := cl.runRecoverable(func(o Options) func(c *mpi.Comm) error {
		return func(c *mpi.Comm) error {
			res, err := SVMRank(c, src, b, opt, o)
			if err != nil {
				return err
			}
			results[c.Rank()] = res
			return nil
		}
	})
	if err != nil {
		return nil, err
	}
	res := results[0]
	res.Stats = stats
	return res, nil
}

// SVMRank runs one rank's share of the distributed SVM solve over an
// established Comm: the SPMD body that SVMFrom spawns per goroutine and
// that a cmd/sarank process runs alone over its TCP endpoint. The world
// size comes from the Comm (cl.P is ignored). The primal vector X is
// assembled on rank 0 only; Stats is left nil for the driver to fill.
func SVMRank(c *mpi.Comm, src Source, b []float64, opt core.SVMOptions, cl Options) (*SVMResult, error) {
	m, n := src.Dims()
	if len(b) != m {
		return nil, fmt.Errorf("dist: len(b)=%d does not match %d rows", len(b), m)
	}
	if opt.Iters <= 0 {
		return nil, fmt.Errorf("dist: Iters=%d, want positive", opt.Iters)
	}
	if opt.Lambda <= 0 {
		return nil, fmt.Errorf("dist: Lambda=%v, want positive", opt.Lambda)
	}
	lo, hi := mpi.BlockRange(n, c.Size(), c.Rank())
	aLoc, err := src.ColsCSR(lo, hi)
	if err != nil {
		return nil, fmt.Errorf("dist: rank %d column block [%d,%d): %v", c.Rank(), lo, hi, err)
	}
	if cl.RankWorkers > 1 {
		// Hybrid rank×thread: kernel worker invariance keeps the dual
		// trajectory bitwise identical to the sequential-rank run.
		aLoc = aLoc.WithKernelWorkers(cl.RankWorkers).(*sparse.CSR)
	}
	gamma, nu := opt.GammaNu()

	alpha := make([]float64, m)
	xLoc := make([]float64, hi-lo)
	if opt.Alpha0 != nil {
		copy(alpha, opt.Alpha0)
		for i, ai := range alpha {
			if ai != 0 {
				aLoc.RowTAxpy(i, ai*b[i], xLoc)
			}
		}
	}

	r := rng.New(opt.Seed)
	s := max(1, opt.S)
	rows := make([]int, s)
	gram := mat.NewDense(s, s)
	xP := make([]float64, s)
	thetaStep := make([]float64, s)
	buf := make([]float64, s*s+s)
	idxS := make([]float64, s)
	marginLoc := make([]float64, m)
	res := &SVMResult{Iters: opt.Iters}

	// objectives reduces the full margin vector A·x = Σ_ranks A_loc·x_loc
	// and ‖x‖² = Σ‖x_loc‖², then evaluates primal, dual and gap — all
	// replicated bitwise, so every rank reaches the same Tol decision.
	objectives := func() (primal, dual, gap float64, err error) {
		aLoc.MulVec(xLoc, marginLoc)
		if err := cl.allreduce(c, marginLoc); err != nil {
			return 0, 0, 0, err
		}
		xns, err := c.AllreduceScalar(mpi.Sum, mat.Nrm2Sq(xLoc))
		if err != nil {
			return 0, 0, 0, err
		}
		primal, dual, gap = core.SVMObjectivesFromParts(xns, alpha, marginLoc, b, opt.Lambda, gamma, opt.Loss)
		return primal, dual, gap, nil
	}

	ses := newCkptSession(cl.Checkpoint, c, fmt.Sprintf(
		"svm m=%d n=%d p=%d seed=%d iters=%d s=%d lambda=%g loss=%d tol=%g track=%d warm=%t bcast=%t fullgram=%t rsag=%t",
		m, n, c.Size(), opt.Seed, opt.Iters, opt.S, opt.Lambda, opt.Loss,
		opt.Tol, opt.TrackEvery, opt.Alpha0 != nil,
		cl.BroadcastIndices, cl.FullGramPack, cl.RSAGAllreduce))
	h := 0
	if ck, err := ses.resume(); err != nil {
		return nil, err
	} else if ck != nil {
		// α and the primal slice are incrementally maintained — restored,
		// never recomputed, to keep bitwise identity with an
		// uninterrupted run.
		if err := restoreVecs(ck, alpha, xLoc); err != nil {
			return nil, err
		}
		r.SetState(ck.Rng)
		c.SetRankStats(ck.Stats)
		if c.Rank() == 0 {
			res.Trace = append(res.Trace[:0], ck.Trace...)
		}
		h = ck.Step
	}

	done := false
	for h < opt.Iters && !done {
		sb := min(s, opt.Iters-h)
		if cl.BroadcastIndices {
			if err := bcastRows(c, r, m, sb, rows[:sb], idxS); err != nil {
				return nil, err
			}
		} else {
			for j := 0; j < sb; j++ {
				rows[j] = r.Intn(m) // replicated draws (Alg. 3 line 4)
			}
		}
		gb := mat.NewDenseData(sb, sb, gram.Data[:sb*sb])
		// Local contributions to lines 9–10 of Alg. 4, then the one
		// reduction of the outer iteration.
		aLoc.RowGram(rows[:sb], gb)
		aLoc.RowMulVec(rows[:sb], xLoc, xP[:sb])
		nnzR := 0
		for j := 0; j < sb; j++ {
			nnzR += aLoc.RowNNZ(rows[j])
		}
		// Kernel flops split over the hybrid core budget (plain Compute at
		// one core); the scalar dual recurrences below stay sequential.
		gramFlops := float64(sb+1) * float64(nnzR)
		if sb > 1 {
			c.ComputeBlockedParallel(gramFlops, sb*sb+2*nnzR)
		} else {
			c.ComputeParallel(gramFlops)
		}
		c.ComputeParallel(2 * float64(nnzR))
		words := packGram(gb, [][]float64{xP[:sb]}, cl.FullGramPack, buf)
		if err := cl.allreduce(c, buf[:words]); err != nil {
			return nil, err
		}
		unpackGram(buf[:words], gb, [][]float64{xP[:sb]}, cl.FullGramPack)
		for j := 0; j < sb; j++ {
			gb.Set(j, j, gb.At(j, j)+gamma) // η_j = ‖A_j‖² + γ, now global
		}

		for j := 0; j < sb; j++ {
			i := rows[j]
			eta := gb.At(j, j)
			// Eq. (15): A_j·x_{sk+j−1} = x'_j + Σ_{t<j} θ_t·b_t·G_{j,t}.
			dot := xP[j]
			for t := 0; t < j; t++ {
				if thetaStep[t] != 0 {
					dot += thetaStep[t] * b[rows[t]] * gb.At(j, t)
				}
			}
			g := b[i]*dot - 1 + gamma*alpha[i]
			flops := 4 + 3*float64(j)
			// Projected-Newton step (Alg. 3 lines 9–15), replicated; only
			// the primal update touches rank-local state.
			theta := 0.0
			ai := alpha[i]
			axpyFlops := 0.0
			if gt := core.Clip(ai-g, 0, nu) - ai; gt != 0 {
				theta = core.Clip(ai-g/eta, 0, nu) - ai
				if theta != 0 {
					alpha[i] += theta
					aLoc.RowTAxpy(i, theta*b[i], xLoc)
					axpyFlops = 2 * float64(aLoc.RowNNZ(i))
				}
			}
			thetaStep[j] = theta
			c.Compute(flops)
			if axpyFlops > 0 {
				c.ComputeParallel(axpyFlops)
			}
			h++
			if opt.TrackEvery > 0 && h%opt.TrackEvery == 0 {
				mark := c.Mark()
				sec := c.Elapsed()
				_, _, gap, err := objectives()
				if err != nil {
					return nil, err
				}
				if c.Rank() == 0 {
					res.Trace = append(res.Trace, TimedPoint{Iter: h, Seconds: sec, Value: gap})
				}
				c.Restore(mark)
				if opt.Tol > 0 && gap <= opt.Tol {
					res.Iters = h
					done = true
					break
				}
			}
		}
		if err := ses.endBatch(h, func() rankCkpt {
			ck := rankCkpt{Rng: r.State(), Stats: c.RankStats(), Vecs: [][]float64{alpha, xLoc}}
			if c.Rank() == 0 {
				ck.Trace = res.Trace
			}
			return ck
		}); err != nil {
			return nil, err
		}
	}

	// Assemble the primal vector on rank 0 (charged: shipping the model
	// home is a real cost, and the same one for classic and SA runs).
	res.X, err = gatherX(c, xLoc, n)
	if err != nil {
		return nil, err
	}
	res.Alpha = alpha
	mark := c.Mark()
	res.Primal, res.Dual, res.Gap, err = objectives()
	if err != nil {
		return nil, err
	}
	c.Restore(mark)
	return res, nil
}

// gatherX concatenates the per-rank primal slices onto rank 0 in layout
// order. Blocks are unequal (BlockRange), so this is a point-to-point
// gather rather than the equal-block collective.
func gatherX(c *mpi.Comm, xLoc []float64, n int) ([]float64, error) {
	p := c.Size()
	if p == 1 {
		out := make([]float64, len(xLoc))
		copy(out, xLoc)
		return out, nil
	}
	if c.Rank() != 0 {
		return nil, c.Send(0, tagGatherX, xLoc)
	}
	x := make([]float64, n)
	copy(x, xLoc)
	for src := 1; src < p; src++ {
		lo, _ := mpi.BlockRange(n, p, src)
		part, err := c.Recv(src, tagGatherX)
		if err != nil {
			return nil, err
		}
		copy(x[lo:], part)
	}
	return x, nil
}
