package dist

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"saco/internal/mpi"
	"saco/internal/rng"
)

func sampleCkpt() *rankCkpt {
	return &rankCkpt{
		Step:    42,
		Batches: 7,
		Rng:     rng.State{S: [4]uint64{1, 2, 3, ^uint64(0)}, Spare: -0.25, HasSpare: true},
		Stats:   mpi.RankStats{Clock: 1.5, CompTime: 1.0, CommTime: 0.5, Flops: 1e6, Msgs: 12, Words: 3456},
		Theta:   0.03125,
		Vecs:    [][]float64{{1, -2, 3.5}, {}, {4e-300}},
		Trace:   []TimedPoint{{Iter: 10, Seconds: 0.1, Value: 9.5}, {Iter: 20, Seconds: 0.2, Value: 7.25}},
	}
}

func TestCkptCodecRoundTrip(t *testing.T) {
	fp := ckptFingerprint("cfg")
	want := sampleCkpt()
	data := encodeCkpt(fp, 2, 4, want)
	got, err := decodeCkpt(data, fp, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got.Step != want.Step || got.Batches != want.Batches ||
		got.Rng != want.Rng || got.Stats != want.Stats || got.Theta != want.Theta {
		t.Fatalf("scalars changed:\n got %+v\nwant %+v", got, want)
	}
	if len(got.Vecs) != len(want.Vecs) {
		t.Fatalf("%d vectors, want %d", len(got.Vecs), len(want.Vecs))
	}
	for i := range want.Vecs {
		if len(got.Vecs[i]) != len(want.Vecs[i]) {
			t.Fatalf("vec %d length %d, want %d", i, len(got.Vecs[i]), len(want.Vecs[i]))
		}
		for j := range want.Vecs[i] {
			if got.Vecs[i][j] != want.Vecs[i][j] {
				t.Fatalf("vec %d[%d] differs", i, j)
			}
		}
	}
	if len(got.Trace) != len(want.Trace) {
		t.Fatalf("%d trace points, want %d", len(got.Trace), len(want.Trace))
	}
	for i := range want.Trace {
		if got.Trace[i] != want.Trace[i] {
			t.Fatalf("trace[%d] = %+v, want %+v", i, got.Trace[i], want.Trace[i])
		}
	}
}

func TestCkptCodecRejectsMismatch(t *testing.T) {
	fp := ckptFingerprint("cfg")
	data := encodeCkpt(fp, 2, 4, sampleCkpt())
	cases := []struct {
		name string
		poke func([]byte) []byte
		fp   uint64
		rank int
		size int
	}{
		{"wrong fingerprint", nil, ckptFingerprint("other"), 2, 4},
		{"wrong rank", nil, fp, 3, 4},
		{"wrong size", nil, fp, 2, 8},
		{"flipped byte", func(d []byte) []byte { d[20] ^= 0x40; return d }, fp, 2, 4},
		{"truncated", func(d []byte) []byte { return d[:len(d)-5] }, fp, 2, 4},
		{"bad magic", func(d []byte) []byte { d[0] = 'X'; return d }, fp, 2, 4},
		{"empty", func(d []byte) []byte { return nil }, fp, 2, 4},
	}
	for _, tc := range cases {
		img := append([]byte(nil), data...)
		if tc.poke != nil {
			img = tc.poke(img)
		}
		if _, err := decodeCkpt(img, tc.fp, tc.rank, tc.size); err == nil {
			t.Fatalf("%s: decode accepted a bad image", tc.name)
		}
	}
}

func TestRestartBackoffDeterministicAndCapped(t *testing.T) {
	if RestartBackoff(1) != RestartBackoff(1) {
		t.Fatal("backoff is not deterministic")
	}
	prev := RestartBackoff(1)
	for n := 2; n <= 10; n++ {
		d := RestartBackoff(n)
		if d < prev {
			t.Fatalf("backoff shrank at attempt %d: %v < %v", n, d, prev)
		}
		prev = d
	}
	if RestartBackoff(50) != RestartBackoff(10) {
		t.Fatal("backoff not capped")
	}
}

// TestCkptSessionAgreesOnMinStep: ranks whose save boundaries drifted by
// one interval must agree on the newest step everyone holds, and each
// rank finds that step in one of its two slots.
func TestCkptSessionAgreesOnMinStep(t *testing.T) {
	dir := t.TempDir()
	cfg := &Checkpoint{Dir: dir, Every: 1, Resume: true}
	_, err := mpi.Run(nil, 2, mpi.CrayXC30(), func(c *mpi.Comm) error {
		s := newCkptSession(cfg, c, "cfg")
		// Rank 0 completes two boundaries, rank 1 three — the ≤ 1
		// interval drift the batch structure guarantees.
		for i := 1; i <= 2+c.Rank(); i++ {
			err := s.endBatch(10*i, func() rankCkpt {
				return rankCkpt{Vecs: [][]float64{{float64(c.Rank())}}}
			})
			if err != nil {
				return err
			}
		}
		s2 := newCkptSession(cfg, c, "cfg")
		ck, err := s2.resume()
		if err != nil {
			return err
		}
		if ck == nil || ck.Step != 20 {
			return fmt.Errorf("rank %d resumed %+v, want step 20", c.Rank(), ck)
		}
		if s2.batches != 2 {
			return fmt.Errorf("rank %d restored batch counter %d, want 2", c.Rank(), s2.batches)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCkptSessionFreshStartCases: resume falls back to a fresh start
// when any rank lacks a usable checkpoint — absent files or a
// fingerprint from a different solver configuration.
func TestCkptSessionFreshStartCases(t *testing.T) {
	for _, tc := range []struct {
		name   string
		config func(rank int) string
		save   func(rank int) bool
	}{
		{"one rank has no files", func(int) string { return "cfg" }, func(r int) bool { return r == 0 }},
		{"foreign fingerprint", func(r int) string { return fmt.Sprintf("cfg-%d", r) }, func(int) bool { return true }},
	} {
		dir := t.TempDir()
		_, err := mpi.Run(nil, 2, mpi.CrayXC30(), func(c *mpi.Comm) error {
			if tc.save(c.Rank()) {
				s := newCkptSession(&Checkpoint{Dir: dir, Every: 1}, c, tc.config(c.Rank()))
				err := s.endBatch(10, func() rankCkpt { return rankCkpt{} })
				if err != nil {
					return err
				}
			}
			// Every resuming rank fingerprints config "other"; saved files
			// either don't exist (rank 1) or don't match.
			s2 := newCkptSession(&Checkpoint{Dir: dir, Every: 1, Resume: true}, c, "other")
			ck, err := s2.resume()
			if err != nil {
				return err
			}
			if ck != nil {
				return fmt.Errorf("rank %d resumed %+v, want a fresh start", c.Rank(), ck)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
	}
}

// TestCkptSlotRotation: consecutive saves alternate between the two slot
// files, so a crash mid-save can never destroy the only good checkpoint.
func TestCkptSlotRotation(t *testing.T) {
	dir := t.TempDir()
	_, err := mpi.Run(nil, 1, mpi.CrayXC30(), func(c *mpi.Comm) error {
		var paths []string
		s := newCkptSession(&Checkpoint{Dir: dir, Every: 2, OnSave: func(i CheckpointInfo) {
			paths = append(paths, filepath.Base(i.Path))
		}}, c, "cfg")
		for i := 1; i <= 6; i++ {
			if err := s.endBatch(i, func() rankCkpt { return rankCkpt{} }); err != nil {
				return err
			}
		}
		// Every=2: batches 2, 4, 6 save, alternating slots.
		want := []string{"rank-0-b.sack", "rank-0-a.sack", "rank-0-b.sack"}
		if len(paths) != len(want) {
			return fmt.Errorf("%d saves %v, want %v", len(paths), paths, want)
		}
		for i := range want {
			if paths[i] != want[i] {
				return fmt.Errorf("save %d went to %s, want %s", i, paths[i], want[i])
			}
		}
		ents, err := os.ReadDir(dir)
		if err != nil {
			return err
		}
		if len(ents) != 2 {
			return fmt.Errorf("%d files on disk, want the two slots", len(ents))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
