// Kill-and-restart bitwise parity: the acceptance test of the
// checkpoint/restart layer. A rank killed at a chosen operation and
// recovered from its checkpoint must finish with a trajectory — solution,
// objective, every traced point, the per-rank modeled cost counters —
// bitwise identical to the uninterrupted run, on every transport of the
// backend matrix.
package dist_test

import (
	"sync/atomic"
	"testing"

	"saco/internal/core"
	"saco/internal/datagen"
	"saco/internal/dist"
	"saco/internal/mpi"
	"saco/internal/mpi/faulty"
	"saco/internal/testmatrix"
)

const restartParityP = 4

func restartLassoOpts(acc bool) core.LassoOptions {
	return core.LassoOptions{
		Lambda: 0.4, BlockSize: 3, Iters: 90, S: 6,
		Accelerated: acc, Seed: 7, TrackEvery: 18,
	}
}

func sameLasso(t *testing.T, label string, got, want *dist.LassoResult) {
	t.Helper()
	testmatrix.SameFloats(t, label+" X", got.X, want.X)
	if got.Objective != want.Objective {
		t.Fatalf("%s: objective %.17g != %.17g", label, got.Objective, want.Objective)
	}
	sameTrace(t, label, got.Trace, want.Trace)
	samePerRank(t, label, got.Stats, want.Stats)
}

func sameTrace(t *testing.T, label string, got, want []dist.TimedPoint) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d trace points, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: trace[%d] = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

func samePerRank(t *testing.T, label string, got, want *mpi.Stats) {
	t.Helper()
	if len(got.PerRank) != len(want.PerRank) {
		t.Fatalf("%s: %d ranks, want %d", label, len(got.PerRank), len(want.PerRank))
	}
	for r := range want.PerRank {
		if got.PerRank[r] != want.PerRank[r] {
			t.Fatalf("%s: rank %d modeled stats\n got %+v\nwant %+v",
				label, r, got.PerRank[r], want.PerRank[r])
		}
	}
}

// calibrateSends runs a clean injector over the same configuration and
// returns how many Send calls the victim rank makes — the yardstick for
// "kill a quarter / half / three quarters of the way through".
func calibrateSends(t *testing.T, victim int, run func(cl dist.Options) error, cl dist.Options) int64 {
	t.Helper()
	cal := faulty.New(faulty.Plan{Rank: victim})
	cl.WrapTransport = cal.Wrap
	cl.Checkpoint = nil
	if err := run(cl); err != nil {
		t.Fatalf("calibration run failed: %v", err)
	}
	if cal.Sends() == 0 {
		t.Fatal("calibration observed no sends")
	}
	return cal.Sends()
}

func TestLassoKillRestartBitwise(t *testing.T) {
	d := datagen.Regression("restart", 5, 160, 80, 0.15, 6, 0.05)
	a := d.AsCSR()
	for _, acc := range []bool{false, true} {
		opt := restartLassoOpts(acc)
		// Uninterrupted reference, no checkpointing at all.
		ref, err := dist.Lasso(a, d.B, opt, dist.Options{P: restartParityP})
		if err != nil {
			t.Fatal(err)
		}
		for _, tr := range testmatrix.TransportKinds() {
			base := dist.Options{P: restartParityP, Transport: tr}
			run := func(cl dist.Options) error {
				_, err := dist.Lasso(a, d.B, opt, cl)
				return err
			}

			// Checkpointing must be a pure observer: enabling it without
			// any fault leaves the trajectory bitwise unchanged. OnSave
			// fires on every rank goroutine, hence the atomic counter.
			var saves atomic.Int64
			cl := base
			cl.Checkpoint = &dist.Checkpoint{
				Dir: t.TempDir(), Every: 1,
				OnSave: func(dist.CheckpointInfo) { saves.Add(1) },
			}
			clean, err := dist.Lasso(a, d.B, opt, cl)
			if err != nil {
				t.Fatalf("acc=%v %v: checkpointed run failed: %v", acc, tr, err)
			}
			sameLasso(t, tr.String()+" checkpoint-observer", clean, ref)
			if saves.Load() == 0 {
				t.Fatalf("acc=%v %v: no checkpoints were saved", acc, tr)
			}

			sends := calibrateSends(t, 1, run, base)
			// Kill rank 1 before its first checkpoint (fresh-start
			// recovery), near the middle, and near the end.
			for _, at := range []int{2, int(sends / 2), int(3 * sends / 4)} {
				in := faulty.New(faulty.Plan{Rank: 1, KillAtSend: at})
				cl := base
				cl.WrapTransport = in.Wrap
				cl.Checkpoint = &dist.Checkpoint{Dir: t.TempDir(), Every: 2, MaxRestarts: 2}
				got, err := dist.Lasso(a, d.B, opt, cl)
				if err != nil {
					t.Fatalf("acc=%v %v kill@%d: recovery failed: %v", acc, tr, at, err)
				}
				if !in.Fired() {
					t.Fatalf("acc=%v %v kill@%d: fault never fired", acc, tr, at)
				}
				sameLasso(t, tr.String()+" killed+restarted", got, ref)
			}
		}
	}
}

func TestSVMKillRestartBitwise(t *testing.T) {
	d := datagen.Classification("restartsvm", 11, 140, 60, 0.2, 0.05)
	a := d.AsCSR()
	opt := core.SVMOptions{Lambda: 1, Iters: 80, S: 5, Seed: 3, TrackEvery: 20}
	ref, err := dist.SVM(a, d.B, opt, dist.Options{P: restartParityP})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range testmatrix.TransportKinds() {
		base := dist.Options{P: restartParityP, Transport: tr}
		sends := calibrateSends(t, 2, func(cl dist.Options) error {
			_, err := dist.SVM(a, d.B, opt, cl)
			return err
		}, base)

		in := faulty.New(faulty.Plan{Rank: 2, KillAtRecv: int(sends / 2)})
		cl := base
		cl.WrapTransport = in.Wrap
		cl.Checkpoint = &dist.Checkpoint{Dir: t.TempDir(), Every: 1, MaxRestarts: 2}
		got, err := dist.SVM(a, d.B, opt, cl)
		if err != nil {
			t.Fatalf("%v: recovery failed: %v", tr, err)
		}
		if !in.Fired() {
			t.Fatalf("%v: fault never fired", tr)
		}
		testmatrix.SameFloats(t, "X", got.X, ref.X)
		testmatrix.SameFloats(t, "Alpha", got.Alpha, ref.Alpha)
		if got.Primal != ref.Primal || got.Dual != ref.Dual || got.Gap != ref.Gap {
			t.Fatalf("%v: objectives (%.17g, %.17g, %.17g) != (%.17g, %.17g, %.17g)",
				tr, got.Primal, got.Dual, got.Gap, ref.Primal, ref.Dual, ref.Gap)
		}
		sameTrace(t, tr.String(), got.Trace, ref.Trace)
		samePerRank(t, tr.String(), got.Stats, ref.Stats)
	}
}

// TestKillWithoutCheckpointStillFails: without a checkpoint policy the
// historical fail-fast contract holds — a lost rank surfaces as a
// recoverable error, but nothing retries.
func TestKillWithoutCheckpointStillFails(t *testing.T) {
	d := datagen.Regression("restartff", 5, 80, 40, 0.2, 4, 0.05)
	in := faulty.New(faulty.Plan{Rank: 1, KillAtSend: 5})
	_, err := dist.Lasso(d.AsCSR(), d.B, restartLassoOpts(false),
		dist.Options{P: 2, WrapTransport: in.Wrap})
	if err == nil {
		t.Fatal("killed run succeeded without a checkpoint policy")
	}
	if !dist.Recoverable(err) {
		t.Fatalf("kill surfaced as %v, want a recoverable peer loss", err)
	}
}
