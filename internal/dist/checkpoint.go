package dist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"time"

	"saco/internal/mpi"
	"saco/internal/rng"
	"saco/internal/stream"
)

// Checkpoint configures deterministic rank checkpointing: at s-step
// outer-batch boundaries — the communication-free points the paper's
// batching creates — every rank serializes its full solver state
// (iterate vectors, RNG cursor, virtual clock and traffic counters,
// rank 0's trace) to a versioned, CRC-checked .sack file, so a lost
// rank rejoins with a trajectory bitwise identical to an uninterrupted
// run. Each rank alternates between two slot files and the resume path
// agrees on the newest step every rank still holds (boundary drift
// across ranks is at most one save interval — a rank can only pass a
// boundary once every rank has contributed to the previous one), so a
// kill at any instant leaves a consistent world-wide restore point.
type Checkpoint struct {
	// Dir is the directory holding the rank-<r>-<slot>.sack files.
	// Every rank of one run must see the same logical directory (shared
	// or per-process local storage both work: ranks only read their own
	// files).
	Dir string
	// Every is the save interval in outer batches (each covering up to
	// s inner iterations); values below 1 mean every batch.
	Every int
	// Resume loads the agreed checkpoint before iterating instead of
	// starting fresh. With no checkpoint present anywhere the run
	// starts fresh — which replays the identical trajectory anyway.
	Resume bool
	// MaxRestarts lets the in-process drivers (Lasso, SVM, *From)
	// re-run the world from the latest checkpoints when a rank is lost
	// (mpi.PeerError): up to this many recovery attempts, each after a
	// deterministic backoff. 0 keeps the historical fail-fast behavior.
	// Multi-process deployments supervise per process in cmd/sarank
	// instead.
	MaxRestarts int
	// OnSave, when non-nil, observes every completed save — the hook
	// the health surface uses to publish checkpoint progress. Called on
	// the rank's own goroutine after the file is durably published.
	OnSave func(CheckpointInfo)
}

func (ck *Checkpoint) every() int {
	if ck.Every < 1 {
		return 1
	}
	return ck.Every
}

// CheckpointInfo describes one completed checkpoint save. The JSON
// names are the contract of cmd/sarank's /checkpoint endpoint.
type CheckpointInfo struct {
	Rank    int    `json:"rank"`    // the saving rank
	Step    int    `json:"step"`    // inner iterations completed at the boundary
	Batches int    `json:"batches"` // outer batches completed
	Path    string `json:"path"`    // the published .sack file
}

// The .sack on-disk format, all little-endian:
//
//	8  magic "SACKPT1\n"
//	u32 version
//	u64 fingerprint   FNV-1a of the solver configuration (see ckptFingerprint)
//	u32 rank, u32 size
//	u64 step          inner iterations completed
//	u64 batches       outer batches completed
//	4×u64 + f64 + u8  RNG cursor (xoshiro words, polar spare, has-spare)
//	4×f64 + 2×u64     RankStats: clock, comp, comm, flops, msgs, words
//	f64 theta         acceleration parameter (0 when unused)
//	u32 nvec { u32 len, len×f64 }  solver vectors in a solver-fixed order
//	u32 ntrace { u64 iter, f64 seconds, f64 value }  rank 0's trace
//	u64 CRC-64/ECMA over everything above
const (
	sackMagic   = "SACKPT1\n"
	sackVersion = 1
)

var sackCRC = crc64.MakeTable(crc64.ECMA)

// rankCkpt is one rank's decoded solver state at an s-step boundary.
type rankCkpt struct {
	Step    int
	Batches int
	Rng     rng.State
	Stats   mpi.RankStats
	Theta   float64
	Vecs    [][]float64
	Trace   []TimedPoint
}

// ckptFingerprint hashes the solver configuration that must match
// between the saving and the resuming run: dimensions, world size, and
// every option that shapes the trajectory. A checkpoint from a
// different configuration is rejected, not silently misapplied.
func ckptFingerprint(config string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(config)) //nolint:errcheck // hash.Hash.Write never fails
	return h.Sum64()
}

func encodeCkpt(fp uint64, rank, size int, ck *rankCkpt) []byte {
	n := 8 + 4 + 8 + 4 + 4 + 8 + 8 + (4*8 + 8 + 1) + (4*8 + 2*8) + 8 + 4
	for _, v := range ck.Vecs {
		n += 4 + 8*len(v)
	}
	n += 4 + len(ck.Trace)*(8+8+8) + 8
	buf := make([]byte, 0, n)
	le := binary.LittleEndian
	u32 := func(v uint32) { buf = le.AppendUint32(buf, v) }
	u64 := func(v uint64) { buf = le.AppendUint64(buf, v) }
	f64 := func(v float64) { buf = le.AppendUint64(buf, math.Float64bits(v)) }

	buf = append(buf, sackMagic...)
	u32(sackVersion)
	u64(fp)
	u32(uint32(rank))
	u32(uint32(size))
	u64(uint64(ck.Step))
	u64(uint64(ck.Batches))
	for _, w := range ck.Rng.S {
		u64(w)
	}
	f64(ck.Rng.Spare)
	if ck.Rng.HasSpare {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	f64(ck.Stats.Clock)
	f64(ck.Stats.CompTime)
	f64(ck.Stats.CommTime)
	f64(ck.Stats.Flops)
	u64(uint64(ck.Stats.Msgs))
	u64(uint64(ck.Stats.Words))
	f64(ck.Theta)
	u32(uint32(len(ck.Vecs)))
	for _, v := range ck.Vecs {
		u32(uint32(len(v)))
		for _, x := range v {
			f64(x)
		}
	}
	u32(uint32(len(ck.Trace)))
	for _, p := range ck.Trace {
		u64(uint64(p.Iter))
		f64(p.Seconds)
		f64(p.Value)
	}
	u64(crc64.Checksum(buf, sackCRC))
	return buf
}

// decodeCkpt validates and decodes a .sack image for the given
// configuration and rank. Any mismatch — magic, version, checksum,
// fingerprint, identity — is an error; callers treat corrupt slots as
// absent and fall back to the other slot.
func decodeCkpt(data []byte, fp uint64, rank, size int) (*rankCkpt, error) {
	le := binary.LittleEndian
	if len(data) < len(sackMagic)+4+8 || string(data[:8]) != sackMagic {
		return nil, errors.New("dist: not a checkpoint file")
	}
	if len(data) < 8+8 {
		return nil, errors.New("dist: short checkpoint")
	}
	body, tail := data[:len(data)-8], data[len(data)-8:]
	if crc64.Checksum(body, sackCRC) != le.Uint64(tail) {
		return nil, errors.New("dist: checkpoint checksum mismatch")
	}
	off := 8
	u32 := func() uint32 { v := le.Uint32(body[off:]); off += 4; return v }
	u64 := func() uint64 { v := le.Uint64(body[off:]); off += 8; return v }
	f64 := func() float64 { return math.Float64frombits(u64()) }
	// The CRC has validated the length implicitly, but keep the reads
	// bounded anyway: a truncated-then-rechecksummed file must not panic.
	need := func(n int) error {
		if off+n > len(body) {
			return errors.New("dist: truncated checkpoint")
		}
		return nil
	}
	if err := need(4 + 8 + 4 + 4 + 8 + 8 + 4*8 + 8 + 1 + 6*8 + 8 + 4); err != nil {
		return nil, err
	}
	if v := u32(); v != sackVersion {
		return nil, fmt.Errorf("dist: checkpoint version %d, want %d", v, sackVersion)
	}
	if got := u64(); got != fp {
		return nil, errors.New("dist: checkpoint is from a different solver configuration")
	}
	if r := int(u32()); r != rank {
		return nil, fmt.Errorf("dist: checkpoint belongs to rank %d, not %d", r, rank)
	}
	if s := int(u32()); s != size {
		return nil, fmt.Errorf("dist: checkpoint world size %d, want %d", s, size)
	}
	ck := &rankCkpt{Step: int(u64()), Batches: int(u64())}
	for i := range ck.Rng.S {
		ck.Rng.S[i] = u64()
	}
	ck.Rng.Spare = f64()
	ck.Rng.HasSpare = body[off] != 0
	off++
	ck.Stats.Clock = f64()
	ck.Stats.CompTime = f64()
	ck.Stats.CommTime = f64()
	ck.Stats.Flops = f64()
	ck.Stats.Msgs = int64(u64())
	ck.Stats.Words = int64(u64())
	ck.Theta = f64()
	nv := int(u32())
	ck.Vecs = make([][]float64, nv)
	for i := range ck.Vecs {
		if err := need(4); err != nil {
			return nil, err
		}
		l := int(u32())
		if err := need(8 * l); err != nil {
			return nil, err
		}
		v := make([]float64, l)
		for j := range v {
			v[j] = f64()
		}
		ck.Vecs[i] = v
	}
	if err := need(4); err != nil {
		return nil, err
	}
	nt := int(u32())
	if err := need(24 * nt); err != nil {
		return nil, err
	}
	ck.Trace = make([]TimedPoint, nt)
	for i := range ck.Trace {
		ck.Trace[i] = TimedPoint{Iter: int(u64()), Seconds: f64(), Value: f64()}
	}
	return ck, nil
}

// ckptSession drives one rank's checkpointing through a solve: slot
// rotation on save, world-wide step agreement on resume.
type ckptSession struct {
	cfg     *Checkpoint
	c       *mpi.Comm
	fp      uint64
	batches int // outer batches completed (restored on resume)
}

// newCkptSession returns nil when checkpointing is off — every method
// is nil-safe, so solver bodies call unconditionally.
func newCkptSession(cfg *Checkpoint, c *mpi.Comm, config string) *ckptSession {
	if cfg == nil {
		return nil
	}
	return &ckptSession{cfg: cfg, c: c, fp: ckptFingerprint(config)}
}

func (s *ckptSession) slotPath(slot int) string {
	name := fmt.Sprintf("rank-%d-%c.sack", s.c.Rank(), 'a'+byte(slot))
	return filepath.Join(s.cfg.Dir, name)
}

// loadSlot decodes one slot, nil when absent or invalid.
func (s *ckptSession) loadSlot(slot int) *rankCkpt {
	data, err := os.ReadFile(s.slotPath(slot))
	if err != nil {
		return nil
	}
	ck, err := decodeCkpt(data, s.fp, s.c.Rank(), s.c.Size())
	if err != nil {
		return nil
	}
	return ck
}

// resume agrees the world-wide restore point and returns this rank's
// checkpoint for it, nil for a fresh start. It is collective (one
// scalar allreduce, excluded from the modeled cost) and must run before
// the first solver iteration. The agreed step is the minimum of the
// ranks' newest steps: boundary drift is at most one save interval, so
// every rank still holds the minimum in one of its two slots.
func (s *ckptSession) resume() (*rankCkpt, error) {
	if s == nil || !s.cfg.Resume {
		return nil, nil
	}
	newest := -1
	var slots [2]*rankCkpt
	for i := 0; i < 2; i++ {
		slots[i] = s.loadSlot(i)
		if slots[i] != nil && slots[i].Step > newest {
			newest = slots[i].Step
		}
	}
	// min over ranks == -max over ranks of the negated steps; Mark/
	// Restore keeps the agreement out of the modeled clocks (resumed
	// ranks overwrite their stats from the checkpoint anyway, but a
	// fresh-start agreement must be cost-free too).
	mark := s.c.Mark()
	agreed, err := s.c.AllreduceScalar(mpi.Max, -float64(newest))
	s.c.Restore(mark)
	if err != nil {
		return nil, err
	}
	target := int(-agreed)
	if target < 0 {
		// Some rank has no usable checkpoint: everyone starts fresh,
		// which replays the identical trajectory from iteration zero.
		return nil, nil
	}
	for _, ck := range slots {
		if ck != nil && ck.Step == target {
			s.batches = ck.Batches
			return ck, nil
		}
	}
	return nil, fmt.Errorf("dist: rank %d holds no checkpoint for agreed step %d (slots drifted more than one interval — was Checkpoint.Every changed between runs?)", s.c.Rank(), target)
}

// endBatch marks an outer-batch boundary after h inner iterations and
// saves at the configured interval. snap must capture the solver state
// exactly as the next batch would find it; vectors are serialized
// immediately, so callers may pass live buffers.
func (s *ckptSession) endBatch(h int, snap func() rankCkpt) error {
	if s == nil {
		return nil
	}
	s.batches++
	every := s.cfg.every()
	if s.batches%every != 0 {
		return nil
	}
	ck := snap()
	ck.Step = h
	ck.Batches = s.batches
	slot := (s.batches / every) % 2
	path := s.slotPath(slot)
	if err := stream.WriteFileAtomic(path, encodeCkpt(s.fp, s.c.Rank(), s.c.Size(), &ck)); err != nil {
		return fmt.Errorf("dist: rank %d checkpoint at step %d: %w", s.c.Rank(), h, err)
	}
	if s.cfg.OnSave != nil {
		s.cfg.OnSave(CheckpointInfo{Rank: s.c.Rank(), Step: h, Batches: s.batches, Path: path})
	}
	return nil
}

// restoreVecs copies a checkpoint's vectors back into the solver's live
// buffers, in the solver-fixed order they were saved in.
func restoreVecs(ck *rankCkpt, dst ...[]float64) error {
	if len(ck.Vecs) != len(dst) {
		return fmt.Errorf("dist: checkpoint holds %d vectors, solver expects %d", len(ck.Vecs), len(dst))
	}
	for i, v := range ck.Vecs {
		if len(v) != len(dst[i]) {
			return fmt.Errorf("dist: checkpoint vector %d has length %d, solver expects %d", i, len(v), len(dst[i]))
		}
		copy(dst[i], v)
	}
	return nil
}

// Recoverable reports whether err is a peer-loss failure a supervised
// run may recover from by rebuilding the world and resuming from the
// agreed checkpoint — any *mpi.PeerError: a vanished peer, a torn
// connection, a starved receive deadline. Configuration and data errors
// are not recoverable.
func Recoverable(err error) bool {
	var pe *mpi.PeerError
	return errors.As(err, &pe)
}

// RestartBackoff returns the deterministic wait before recovery attempt
// n (1-based): 100ms·2^(n−1) capped at 2s. Exported so cmd/sarank's
// per-process supervision paces identically to the in-process driver.
func RestartBackoff(attempt int) time.Duration {
	d := 100 * time.Millisecond
	for i := 1; i < attempt && d < 2*time.Second; i++ {
		d *= 2
	}
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	return d
}

// runRecoverable executes the world, re-running it with Resume set when
// a rank is lost and the checkpoint policy allows recovery. mk builds
// the SPMD body against the (possibly resume-flagged) options, so the
// solver sees the attempt's own view.
func (o Options) runRecoverable(mk func(Options) func(c *mpi.Comm) error) (*mpi.Stats, error) {
	stats, err := o.run(mk(o))
	if err == nil || o.Checkpoint == nil {
		return stats, err
	}
	for attempt := 1; attempt <= o.Checkpoint.MaxRestarts && Recoverable(err); attempt++ {
		time.Sleep(RestartBackoff(attempt))
		ro := o
		ck := *o.Checkpoint
		ck.Resume = true
		ro.Checkpoint = &ck
		stats, err = ro.run(mk(ro))
	}
	return stats, err
}
