package dist

import (
	"fmt"

	"saco/internal/core"
	"saco/internal/mat"
	"saco/internal/mpi"
	"saco/internal/sparse"
)

// Lasso solves min ½‖Ax−b‖² + g(x) on the configured cluster with the
// paper's 1D-row layout (Fig. 1): each rank owns a contiguous row block
// of A (stored as CSC for column sampling) and the matching slice of the
// residual image, while the iterate x (or z, y when accelerated) is
// replicated. Per outer iteration the ranks compute local contributions
// to the batched Gram G = YᵀY and the hoisted products, sum them with one
// Allreduce, and run s communication-free inner iterations — with
// opt.S <= 1 this degenerates to the classical one-reduction-per-
// iteration algorithm, so both variants share all update arithmetic.
func Lasso(a *sparse.CSR, b []float64, opt core.LassoOptions, cl Options) (*LassoResult, error) {
	return LassoFrom(CSRSource{a}, b, opt, cl)
}

// LassoFrom is Lasso over any block Source — the entry point for
// out-of-core data (stream.Dataset), whose row blocks are loaded shard
// by shard instead of slicing a resident CSR.
func LassoFrom(src Source, b []float64, opt core.LassoOptions, cl Options) (*LassoResult, error) {
	cl, err := cl.withDefaults()
	if err != nil {
		return nil, err
	}
	results := make([]*LassoResult, cl.P)
	stats, err := cl.runRecoverable(func(o Options) func(c *mpi.Comm) error {
		return func(c *mpi.Comm) error {
			res, err := LassoRank(c, src, b, opt, o)
			if err != nil {
				return err
			}
			results[c.Rank()] = res
			return nil
		}
	})
	if err != nil {
		return nil, err
	}
	res := results[0]
	res.Stats = stats
	return res, nil
}

// LassoRank runs one rank's share of the distributed Lasso solve over an
// established Comm: the SPMD body that LassoFrom spawns per goroutine
// and that a cmd/sarank process runs alone over its TCP endpoint. The
// world size comes from the Comm (cl.P is ignored), so the same body
// runs unchanged in-process and across machines. All ranks return the
// full replicated result; Stats is left nil for the driver to fill.
func LassoRank(c *mpi.Comm, src Source, b []float64, opt core.LassoOptions, cl Options) (*LassoResult, error) {
	m, n := src.Dims()
	if len(b) != m {
		return nil, fmt.Errorf("dist: len(b)=%d does not match %d rows", len(b), m)
	}
	if opt.Iters <= 0 {
		return nil, fmt.Errorf("dist: Iters=%d, want positive", opt.Iters)
	}
	lo, hi := mpi.BlockRange(m, c.Size(), c.Rank())
	aLoc, err := src.RowsCSC(lo, hi)
	if err != nil {
		return nil, fmt.Errorf("dist: rank %d row block [%d,%d): %v", c.Rank(), lo, hi, err)
	}
	if cl.RankWorkers > 1 {
		// Hybrid rank×thread: the rank's kernels really run on the
		// shared-memory pool. Kernel worker invariance keeps the
		// iterates bitwise identical to the sequential-rank run.
		aLoc = aLoc.WithKernelWorkers(cl.RankWorkers).(*sparse.CSC)
	}
	lr := newLassoRank(c, &cl, &opt, aLoc, b[lo:hi], n)
	lr.ck = newCkptSession(cl.Checkpoint, c, lassoConfig(c, &opt, &cl, m, n))
	if opt.Accelerated {
		return lr.accelerated()
	}
	return lr.plain()
}

// lassoConfig is the fingerprinted solver configuration: everything that
// shapes the trajectory, so a checkpoint never resumes a different run.
func lassoConfig(c *mpi.Comm, opt *core.LassoOptions, cl *Options, m, n int) string {
	variant := "plain"
	if opt.Accelerated {
		variant = "acc"
	}
	return fmt.Sprintf(
		"lasso/%s m=%d n=%d p=%d seed=%d iters=%d s=%d mu=%d groups=%d reg=%t lambda=%g track=%d warm=%t bcast=%t fullgram=%t rsag=%t",
		variant, m, n, c.Size(), opt.Seed, opt.Iters, opt.S, opt.BlockSize,
		len(opt.Groups), opt.Reg != nil, opt.Lambda, opt.TrackEvery,
		opt.X0 != nil, cl.BroadcastIndices, cl.FullGramPack, cl.RSAGAllreduce)
}

// lassoRank is the per-rank solver state shared by the plain and
// accelerated variants.
type lassoRank struct {
	c    *mpi.Comm
	cl   *Options
	opt  *core.LassoOptions
	aLoc *sparse.CSC // this rank's row block, column-accessible
	bLoc []float64
	n    int
	g    core.Regularizer
	smp  *core.BlockSampler
	s    int
	mu   int // muMax: largest block the batches can hold
	bt   *core.SABatch
	diag *mat.Dense
	buf  []float64 // Allreduce packing buffer
	idxS []float64 // broadcast-indices scratch
	res  *LassoResult
	ck   *ckptSession // nil when checkpointing is off
}

func newLassoRank(c *mpi.Comm, cl *Options, opt *core.LassoOptions, aLoc *sparse.CSC, bLoc []float64, n int) *lassoRank {
	smp := core.NewBlockSampler(opt, n)
	s := max(1, opt.S)
	muMax := smp.MaxBlock()
	kMax := s * muMax
	return &lassoRank{
		c: c, cl: cl, opt: opt, aLoc: aLoc, bLoc: bLoc, n: n,
		g: opt.Regularizer(), smp: smp, s: s, mu: muMax,
		bt:   &core.SABatch{Gram: mat.NewDense(kMax, kMax)},
		diag: mat.NewDense(muMax, muMax),
		buf:  make([]float64, kMax*kMax+2*kMax),
		idxS: make([]float64, 1+s*(muMax+1)),
		res:  &LassoResult{Iters: opt.Iters},
	}
}

// sampleBatch agrees on the next sb blocks: replicated-seed draws by
// default, or rank 0 broadcasting under the BroadcastIndices ablation.
func (lr *lassoRank) sampleBatch(sb int) error {
	if lr.cl.BroadcastIndices {
		blocks, err := bcastBlocks(lr.c, lr.smp, sb, lr.mu, lr.idxS)
		if err != nil {
			return err
		}
		lr.bt.SetBlocks(blocks)
		return nil
	}
	lr.bt.Sample(lr.smp, sb)
	return nil
}

// reduceBatch computes the local Gram and product contributions for the
// current batch, charges their flops, and allreduces them. extras are
// the hoisted product vectors (length k each) reduced with the Gram.
func (lr *lassoRank) reduceBatch(k, sb int, extras [][]float64) error {
	nnzS := lr.localColNNZ(lr.bt.Cols)
	// Gram assembly: each of the k(k+1)/2 merges streams two columns, so
	// the total is ~(k+1)·nnz(S) flops. Batched (s > 1) assembly is the
	// BLAS-3-like kernel the paper credits for part of the SA speedup;
	// it runs at the blocked rate while its working set fits cache.
	// Gram and product assembly partition over the owned rows/columns, so
	// the hybrid core budget divides their modeled time (the *Parallel
	// variants are plain Compute at one core).
	gramFlops := float64(k+1) * float64(nnzS)
	if sb > 1 {
		lr.c.ComputeBlockedParallel(gramFlops, k*k+2*nnzS)
	} else {
		lr.c.ComputeParallel(gramFlops)
	}
	lr.c.ComputeParallel(2 * float64(len(extras)) * float64(nnzS))

	words := packGram(lr.bt.Gram, extras, lr.cl.FullGramPack, lr.buf)
	if err := lr.cl.allreduce(lr.c, lr.buf[:words]); err != nil {
		return err
	}
	unpackGram(lr.buf[:words], lr.bt.Gram, extras, lr.cl.FullGramPack)
	return nil
}

// localColNNZ sums this rank's nonzeros over the block's columns.
func (lr *lassoRank) localColNNZ(idx []int) int {
	nnz := 0
	for _, j := range idx {
		nnz += lr.aLoc.ColNNZ(j)
	}
	return nnz
}

// track records an objective value at iteration h without charging the
// instrumentation (the Mark/Restore pair rewinds clock and traffic).
func (lr *lassoRank) track(h int, value func() (float64, error)) error {
	mark := lr.c.Mark()
	sec := lr.c.Elapsed()
	v, err := value()
	if err != nil {
		return err
	}
	if lr.c.Rank() == 0 {
		lr.res.Trace = append(lr.res.Trace, TimedPoint{Iter: h, Seconds: sec, Value: v})
	}
	lr.c.Restore(mark)
	return nil
}

// globalObjective reduces ½‖r‖² over the partitioned residual and adds
// the replicated penalty.
func (lr *lassoRank) globalObjective(rLoc, x []float64) (float64, error) {
	rn, err := lr.c.AllreduceScalar(mpi.Sum, mat.Nrm2Sq(rLoc))
	if err != nil {
		return 0, err
	}
	return 0.5*rn + lr.g.Value(x), nil
}

// snap captures this rank's checkpointable state. The vectors are
// serialized before endBatch returns, so live buffers are safe to pass.
func (lr *lassoRank) snap(theta float64, vecs ...[]float64) rankCkpt {
	ck := rankCkpt{
		Rng:   lr.smp.Stream().State(),
		Stats: lr.c.RankStats(),
		Theta: theta,
		Vecs:  vecs,
	}
	if lr.c.Rank() == 0 {
		ck.Trace = lr.res.Trace
	}
	return ck
}

// restoreCommon reinstates the non-vector state of a checkpoint: the
// sampler's RNG cursor (replicated-seed discipline: the restored cursor
// replays the exact draw sequence), the virtual clock and traffic
// counters, and rank 0's convergence trace.
func (lr *lassoRank) restoreCommon(ck *rankCkpt) {
	lr.smp.Stream().SetState(ck.Rng)
	lr.c.SetRankStats(ck.Stats)
	if lr.c.Rank() == 0 {
		lr.res.Trace = append(lr.res.Trace[:0], ck.Trace...)
	}
}

// plain is the distributed (SA-)CD/BCD solver; compare core.lassoPlainSA
// for the sequential inner-loop derivation (eqs. (3)–(5) with θ ≡ 1).
func (lr *lassoRank) plain() (*LassoResult, error) {
	opt, aLoc, c := lr.opt, lr.aLoc, lr.c
	x := make([]float64, lr.n)
	if opt.X0 != nil {
		copy(x, opt.X0)
	}
	rLoc := make([]float64, aLoc.M)
	h := 0
	if ck, err := lr.ck.resume(); err != nil {
		return nil, err
	} else if ck != nil {
		// The residual image is incrementally maintained, so it is
		// restored rather than recomputed: a fresh MulVec could round
		// differently from the accumulated updates and break bitwise
		// identity with the uninterrupted run.
		if err := restoreVecs(ck, x, rLoc); err != nil {
			return nil, err
		}
		lr.restoreCommon(ck)
		h = ck.Step
	} else {
		aLoc.MulVec(x, rLoc)
		mat.Axpy(-1, lr.bLoc, rLoc)
	}

	deltas := mat.NewDense(lr.s, lr.mu)
	rP := make([]float64, lr.s*lr.mu)
	grad := make([]float64, lr.mu)
	w := make([]float64, lr.mu)
	gv := make([]float64, lr.mu)

	for h < opt.Iters {
		sb := min(lr.s, opt.Iters-h)
		if err := lr.sampleBatch(sb); err != nil {
			return nil, err
		}
		k := len(lr.bt.Cols)
		lr.bt.Gram = mat.NewDenseData(k, k, lr.bt.Gram.Data[:k*k])
		aLoc.ColGram(lr.bt.Cols, lr.bt.Gram)
		aLoc.ColTMulVec(lr.bt.Cols, rLoc, rP[:k])
		if err := lr.reduceBatch(k, sb, [][]float64{rP[:k]}); err != nil {
			return nil, err
		}

		for j := 0; j < sb; j++ {
			idx := lr.bt.Blocks[j]
			mu := len(idx)
			db := mat.NewDenseData(mu, mu, lr.diag.Data[:mu*mu])
			lr.bt.DiagBlock(j, db)
			v := blockEig(db)
			flops := eigFlops(mu)

			copy(grad[:mu], rP[lr.bt.Offsets[j]:lr.bt.Offsets[j]+mu])
			for t := 0; t < j; t++ {
				lr.bt.CrossApply(j, t, 1, deltas.Row(t), grad[:mu])
				flops += 2 * float64(mu) * float64(len(lr.bt.Blocks[t]))
			}
			mat.Gather(w[:mu], x, idx)
			var eta float64
			if v > 0 {
				eta = 1 / v
				for a2 := 0; a2 < mu; a2++ {
					gv[a2] = w[a2] - eta*grad[a2]
				}
			} else {
				eta = core.BigEta
				copy(gv[:mu], w[:mu])
			}
			lr.g.Prox(eta, gv[:mu])
			d := deltas.Row(j)
			for a2 := 0; a2 < mu; a2++ {
				d[a2] = gv[a2] - w[a2]
			}
			mat.ScatterAdd(x, d[:mu], idx)
			aLoc.ColMulAdd(idx, d[:mu], rLoc)
			// Redundant scalar work (eig, prox) is per-rank sequential; the
			// residual update streams the owned nonzeros and splits over the
			// hybrid core budget.
			c.Compute(flops + float64(5*mu))
			c.ComputeParallel(2 * float64(lr.localColNNZ(idx)))
			h++
			if opt.TrackEvery > 0 && h%opt.TrackEvery == 0 {
				err := lr.track(h, func() (float64, error) { return lr.globalObjective(rLoc, x) })
				if err != nil {
					return nil, err
				}
			}
		}
		if err := lr.ck.endBatch(h, func() rankCkpt { return lr.snap(0, x, rLoc) }); err != nil {
			return nil, err
		}
	}
	lr.res.X = x
	mark := c.Mark()
	obj, err := lr.globalObjective(rLoc, x)
	if err != nil {
		return nil, err
	}
	lr.res.Objective = obj
	c.Restore(mark)
	return lr.res, nil
}

// accelerated is the distributed SA-accBCD solver (Alg. 2); compare
// core.lassoAccSA. z and y are replicated, their images z̃ = A·z − b and
// ỹ = A·y are row-partitioned like the residual.
func (lr *lassoRank) accelerated() (*LassoResult, error) {
	opt, aLoc, c := lr.opt, lr.aLoc, lr.c
	q := float64(lr.smp.NumBlocks())
	z := make([]float64, lr.n)
	if opt.X0 != nil {
		copy(z, opt.X0)
	}
	y := make([]float64, lr.n)
	ztLoc := make([]float64, aLoc.M)
	ytLoc := make([]float64, aLoc.M)
	theta := lr.smp.Theta0()
	h := 0
	if ck, err := lr.ck.resume(); err != nil {
		return nil, err
	} else if ck != nil {
		// All four incrementally-maintained vectors and the momentum
		// parameter are restored, never recomputed (bitwise identity).
		if err := restoreVecs(ck, z, y, ztLoc, ytLoc); err != nil {
			return nil, err
		}
		lr.restoreCommon(ck)
		theta = ck.Theta
		h = ck.Step
	} else {
		aLoc.MulVec(z, ztLoc)
		mat.Axpy(-1, lr.bLoc, ztLoc)
	}

	kMax := lr.s * lr.mu
	ytP := make([]float64, kMax)
	ztP := make([]float64, kMax)
	deltas := mat.NewDense(lr.s, lr.mu)
	dCoef := make([]float64, lr.s)
	thetas := make([]float64, lr.s+1)
	rvec := make([]float64, lr.mu)
	w := make([]float64, lr.mu)
	gv := make([]float64, lr.mu)
	scaled := make([]float64, lr.mu)

	for h < opt.Iters {
		sb := min(lr.s, opt.Iters-h)
		if err := lr.sampleBatch(sb); err != nil {
			return nil, err
		}
		k := len(lr.bt.Cols)
		lr.bt.Gram = mat.NewDenseData(k, k, lr.bt.Gram.Data[:k*k])
		thetas[0] = theta
		for j := 1; j <= sb; j++ {
			thetas[j] = core.NextTheta(thetas[j-1])
		}
		aLoc.ColGram(lr.bt.Cols, lr.bt.Gram)
		aLoc.ColTMulVec(lr.bt.Cols, ytLoc, ytP[:k])
		aLoc.ColTMulVec(lr.bt.Cols, ztLoc, ztP[:k])
		if err := lr.reduceBatch(k, sb, [][]float64{ytP[:k], ztP[:k]}); err != nil {
			return nil, err
		}

		for j := 0; j < sb; j++ {
			idx := lr.bt.Blocks[j]
			mu := len(idx)
			db := mat.NewDenseData(mu, mu, lr.diag.Data[:mu*mu])
			lr.bt.DiagBlock(j, db)
			v := blockEig(db)
			flops := eigFlops(mu)

			thPrev := thetas[j]
			th2 := thPrev * thPrev
			off := lr.bt.Offsets[j]
			for a2 := 0; a2 < mu; a2++ {
				rvec[a2] = th2*ytP[off+a2] + ztP[off+a2]
			}
			for t := 0; t < j; t++ {
				lr.bt.CrossApply(j, t, -(th2*dCoef[t] - 1), deltas.Row(t), rvec[:mu])
				flops += 2 * float64(mu) * float64(len(lr.bt.Blocks[t]))
			}

			mat.Gather(w[:mu], z, idx)
			var eta float64
			if v > 0 {
				eta = 1 / (q * thPrev * v)
				for a2 := 0; a2 < mu; a2++ {
					gv[a2] = w[a2] - eta*rvec[a2]
				}
			} else {
				eta = core.BigEta
				copy(gv[:mu], w[:mu])
			}
			lr.g.Prox(eta, gv[:mu])
			d := deltas.Row(j)
			for a2 := 0; a2 < mu; a2++ {
				d[a2] = gv[a2] - w[a2]
			}

			dj := (1 - q*thPrev) / th2
			dCoef[j] = dj
			mat.ScatterAdd(z, d[:mu], idx)
			aLoc.ColMulAdd(idx, d[:mu], ztLoc)
			mat.ScatterAxpy(-dj, y, d[:mu], idx)
			for a2 := 0; a2 < mu; a2++ {
				scaled[a2] = -dj * d[a2]
			}
			aLoc.ColMulAdd(idx, scaled[:mu], ytLoc)
			c.Compute(flops + float64(8*mu))
			c.ComputeParallel(4 * float64(lr.localColNNZ(idx)))

			h++
			if opt.TrackEvery > 0 && h%opt.TrackEvery == 0 {
				thNext := thetas[j+1]
				err := lr.track(h, func() (float64, error) {
					return lr.accObjective(thNext, y, z, ytLoc, ztLoc)
				})
				if err != nil {
					return nil, err
				}
			}
		}
		theta = thetas[sb]
		if err := lr.ck.endBatch(h, func() rankCkpt { return lr.snap(theta, z, y, ztLoc, ytLoc) }); err != nil {
			return nil, err
		}
	}
	lr.res.X = accSolution(theta, y, z)
	mark := c.Mark()
	rLoc := make([]float64, aLoc.M)
	accResidual(theta, ytLoc, ztLoc, rLoc)
	rn, err := c.AllreduceScalar(mpi.Sum, mat.Nrm2Sq(rLoc))
	if err != nil {
		return nil, err
	}
	lr.res.Objective = 0.5*rn + lr.g.Value(lr.res.X)
	c.Restore(mark)
	return lr.res, nil
}

// accObjective evaluates the implicit iterate's objective: the residual
// θ²ỹ + z̃ is assembled per rank and its norm reduced, the solution
// θ²y + z is replicated.
func (lr *lassoRank) accObjective(theta float64, y, z, ytLoc, ztLoc []float64) (float64, error) {
	rLoc := make([]float64, len(ytLoc))
	accResidual(theta, ytLoc, ztLoc, rLoc)
	rn, err := lr.c.AllreduceScalar(mpi.Sum, mat.Nrm2Sq(rLoc))
	if err != nil {
		return 0, err
	}
	return 0.5*rn + lr.g.Value(accSolution(theta, y, z)), nil
}

// accSolution reconstructs x = θ²·y + z (Alg. 1 line 19).
func accSolution(theta float64, y, z []float64) []float64 {
	x := make([]float64, len(z))
	th2 := theta * theta
	for i := range x {
		x[i] = th2*y[i] + z[i]
	}
	return x
}

// accResidual writes the local slice of A·x − b = θ²·ỹ + z̃ into dst.
func accResidual(theta float64, ytLoc, ztLoc, dst []float64) {
	th2 := theta * theta
	for i := range dst {
		dst[i] = th2*ytLoc[i] + ztLoc[i]
	}
}
