package dist

import (
	"math"
	"testing"

	"saco/internal/core"
	"saco/internal/datagen"
	"saco/internal/mpi"
)

func lassoProblem(t *testing.T) (*datagen.Dataset, float64) {
	t.Helper()
	d := datagen.Regression("dist", 3, 240, 120, 0.12, 8, 0.05)
	lambda := 0.1 * core.LambdaMaxL1(d.AsCSR().ToCSC(), d.B)
	return d, lambda
}

func relDiff(a, b float64) float64 {
	return math.Abs(a-b) / math.Max(1e-300, math.Abs(a))
}

func TestLassoClassicVsSA(t *testing.T) {
	d, lambda := lassoProblem(t)
	for _, acc := range []bool{false, true} {
		base := core.LassoOptions{Lambda: lambda, BlockSize: 4, Iters: 300, Accelerated: acc, Seed: 5}
		cl := Options{P: 4, Machine: mpi.CrayXC30()}
		classic, err := Lasso(d.AsCSR(), d.B, base, cl)
		if err != nil {
			t.Fatal(err)
		}
		sa := base
		sa.S = 25
		saRes, err := Lasso(d.AsCSR(), d.B, sa, cl)
		if err != nil {
			t.Fatal(err)
		}
		if r := relDiff(classic.Objective, saRes.Objective); r > 1e-8 {
			t.Fatalf("acc=%v: SA objective %v != classic %v (rel %v)", acc, saRes.Objective, classic.Objective, r)
		}
		if saRes.Stats.TotalMsgs() >= classic.Stats.TotalMsgs() {
			t.Fatalf("acc=%v: SA msgs %d not below classic %d", acc, saRes.Stats.TotalMsgs(), classic.Stats.TotalMsgs())
		}
		if saRes.ModeledSeconds() <= 0 || classic.ModeledSeconds() <= 0 {
			t.Fatalf("acc=%v: non-positive modeled time", acc)
		}
		if classic.NNZ() == 0 {
			t.Fatalf("acc=%v: no features selected", acc)
		}
	}
}

func TestLassoMatchesSequentialCore(t *testing.T) {
	d, lambda := lassoProblem(t)
	opt := core.LassoOptions{Lambda: lambda, BlockSize: 4, Iters: 300, Accelerated: true, S: 20, Seed: 5}
	seq, err := core.Lasso(d.AsCSR().ToCSC(), d.B, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 3, 8} {
		res, err := Lasso(d.AsCSR(), d.B, opt, Options{P: p, Machine: mpi.CrayXC30()})
		if err != nil {
			t.Fatal(err)
		}
		// The distributed run reduces partial sums along the collective
		// tree, so agreement is up to roundoff, not bitwise — the paper's
		// Table III criterion.
		if r := relDiff(seq.Objective, res.Objective); r > 1e-8 {
			t.Fatalf("P=%d: objective %v != sequential %v (rel %v)", p, res.Objective, seq.Objective, r)
		}
		for i := range res.X {
			if math.Abs(res.X[i]-seq.X[i]) > 1e-8*(1+math.Abs(seq.X[i])) {
				t.Fatalf("P=%d: X[%d] %v != %v", p, i, res.X[i], seq.X[i])
			}
		}
	}
}

func TestLassoTraceAndAblations(t *testing.T) {
	d, lambda := lassoProblem(t)
	opt := core.LassoOptions{Lambda: lambda, Iters: 200, S: 10, Seed: 5, TrackEvery: 40}
	base, err := Lasso(d.AsCSR(), d.B, opt, Options{P: 4, Machine: mpi.CrayXC30()})
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Trace) != 5 {
		t.Fatalf("trace length %d, want 5", len(base.Trace))
	}
	for i, p := range base.Trace {
		if p.Seconds <= 0 || (i > 0 && p.Seconds <= base.Trace[i-1].Seconds) {
			t.Fatalf("trace seconds not increasing: %+v", base.Trace)
		}
	}

	// The ablations pay strictly more words for the same iterates.
	for name, o := range map[string]Options{
		"broadcast-indices": {P: 4, Machine: mpi.CrayXC30(), BroadcastIndices: true},
		"full-gram-pack":    {P: 4, Machine: mpi.CrayXC30(), FullGramPack: true},
	} {
		res, err := Lasso(d.AsCSR(), d.B, opt, o)
		if err != nil {
			t.Fatal(err)
		}
		if res.Objective != base.Objective {
			t.Fatalf("%s: objective %v != base %v (same sampled blocks, same math)", name, res.Objective, base.Objective)
		}
		if res.Stats.TotalWords() <= base.Stats.TotalWords() {
			t.Fatalf("%s: words %d not above base %d", name, res.Stats.TotalWords(), base.Stats.TotalWords())
		}
	}

	// Rabenseifner reduces the same sums along a different tree: slightly
	// different roundoff, same math.
	rsag, err := Lasso(d.AsCSR(), d.B, opt, Options{P: 4, Machine: mpi.CrayXC30(), RSAGAllreduce: true})
	if err != nil {
		t.Fatal(err)
	}
	if r := relDiff(base.Objective, rsag.Objective); r > 1e-8 {
		t.Fatalf("rsag objective %v != %v", rsag.Objective, base.Objective)
	}
}

func TestSVMClassicVsSAAndEarlyStop(t *testing.T) {
	d := datagen.Classification("dists", 7, 200, 80, 0.2, 0.05)
	base := core.SVMOptions{Lambda: 1, Iters: 2000, Seed: 9}
	cl := Options{P: 4, Machine: mpi.CrayXC30()}
	classic, err := SVM(d.AsCSR(), d.B, base, cl)
	if err != nil {
		t.Fatal(err)
	}
	sa := base
	sa.S = 32
	saRes, err := SVM(d.AsCSR(), d.B, sa, cl)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(classic.Gap-saRes.Gap) > 1e-6*(1+math.Abs(classic.Gap)) {
		t.Fatalf("SA gap %v != classic %v", saRes.Gap, classic.Gap)
	}
	if saRes.Stats.TotalMsgs() >= classic.Stats.TotalMsgs() {
		t.Fatal("SA did not reduce messages")
	}
	if len(classic.X) != 80 || len(saRes.Alpha) != 200 {
		t.Fatal("result shapes")
	}

	// Early stop: a loose tolerance must cut the iteration count, and the
	// partial work must be reported.
	stop := sa
	stop.TrackEvery = 64
	stop.Tol = classic.Gap * 4
	stopped, err := SVM(d.AsCSR(), d.B, stop, cl)
	if err != nil {
		t.Fatal(err)
	}
	if stopped.Iters >= stop.Iters {
		t.Fatalf("Tol did not stop early: %d iters", stopped.Iters)
	}
	if stopped.Gap > stop.Tol {
		t.Fatalf("stopped gap %v above Tol %v", stopped.Gap, stop.Tol)
	}
}

func TestSVMMatchesSequentialCore(t *testing.T) {
	d := datagen.Classification("dists2", 13, 150, 60, 0.25, 0.05)
	opt := core.SVMOptions{Lambda: 1, Loss: core.SVML2, Iters: 1500, S: 16, Seed: 2}
	seq, err := core.SVM(d.AsCSR(), d.B, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 5} {
		res, err := SVM(d.AsCSR(), d.B, opt, Options{P: p, Machine: mpi.EthernetCluster()})
		if err != nil {
			t.Fatal(err)
		}
		if r := relDiff(seq.Gap, res.Gap); r > 1e-6 && math.Abs(seq.Gap-res.Gap) > 1e-9 {
			t.Fatalf("P=%d: gap %v != sequential %v", p, res.Gap, seq.Gap)
		}
		for i := range res.X {
			if math.Abs(res.X[i]-seq.X[i]) > 1e-8*(1+math.Abs(seq.X[i])) {
				t.Fatalf("P=%d: X[%d] %v != %v", p, i, res.X[i], seq.X[i])
			}
		}
	}
}

func TestOptionsValidation(t *testing.T) {
	d := datagen.Regression("distv", 1, 40, 20, 0.2, 3, 0.05)
	if _, err := Lasso(d.AsCSR(), d.B, core.LassoOptions{Lambda: 0.1, Iters: 10}, Options{}); err == nil {
		t.Fatal("P=0 must fail")
	}
	if _, err := Lasso(d.AsCSR(), d.B[:10], core.LassoOptions{Lambda: 0.1, Iters: 10}, Options{P: 2}); err == nil {
		t.Fatal("short b must fail")
	}
	if _, err := SVM(d.AsCSR(), d.B, core.SVMOptions{Lambda: 1, Iters: 0}, Options{P: 2}); err == nil {
		t.Fatal("zero iters must fail")
	}
	// More ranks than rows/columns still runs (empty slices are legal).
	res, err := Lasso(d.AsCSR(), d.B, core.LassoOptions{Lambda: 0.1, Iters: 20, S: 4}, Options{P: 64})
	if err != nil {
		t.Fatal(err)
	}
	if res.ModeledSeconds() <= 0 {
		t.Fatal("no modeled time with P>m")
	}
}
