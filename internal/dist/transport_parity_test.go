// Sim-vs-TCP trajectory parity: the acceptance test of the transport
// redesign. An external test package (dist_test) so it can register the
// contract with internal/testmatrix, which itself imports dist.
package dist_test

import (
	"testing"

	"saco/internal/core"
	"saco/internal/datagen"
	"saco/internal/dist"
	"saco/internal/mpi"
	"saco/internal/testmatrix"
)

// TestLassoTransportParityBitwise runs the identical CA-Lasso
// configuration over every transport of the backend matrix and asserts
// the full trajectory — solution vector, final objective, every traced
// point with its modeled timestamp, and the aggregate cost counters —
// is bitwise identical to the simulated reference. The solvers are
// deterministic given the message DAG, the collectives execute the same
// DAG on both transports, and the piggybacked clocks carry the cost
// model across the wire; this test is the contract that keeps it so.
func TestLassoTransportParityBitwise(t *testing.T) {
	d := datagen.Regression("tparity", 11, 200, 100, 0.15, 6, 0.05)
	lambda := 0.1 * core.LambdaMaxL1(d.AsCSR().ToCSC(), d.B)
	for _, acc := range []bool{false, true} {
		opt := core.LassoOptions{
			Lambda: lambda, BlockSize: 4, Iters: 120, S: 10,
			Accelerated: acc, Seed: 7, TrackEvery: 30,
		}
		var ref *dist.LassoResult
		for _, tr := range testmatrix.TransportKinds() {
			cl := dist.Options{P: 4, Machine: mpi.CrayXC30(), Transport: tr}
			res, err := dist.Lasso(d.AsCSR(), d.B, opt, cl)
			if err != nil {
				t.Fatalf("acc=%v %v: %v", acc, tr, err)
			}
			if tr == dist.TransportSim {
				ref = res
				continue
			}
			testmatrix.SameFloats(t, "X", res.X, ref.X)
			if res.Objective != ref.Objective {
				t.Fatalf("acc=%v %v: objective %.17g != sim %.17g", acc, tr, res.Objective, ref.Objective)
			}
			if len(res.Trace) != len(ref.Trace) {
				t.Fatalf("acc=%v %v: %d trace points, sim has %d", acc, tr, len(res.Trace), len(ref.Trace))
			}
			for i, p := range res.Trace {
				if p != ref.Trace[i] {
					t.Fatalf("acc=%v %v: trace[%d] = %+v, sim %+v", acc, tr, i, p, ref.Trace[i])
				}
			}
			// The modeled cost accounting crosses the wire unchanged.
			if res.Stats.TotalMsgs() != ref.Stats.TotalMsgs() ||
				res.Stats.TotalWords() != ref.Stats.TotalWords() ||
				res.Stats.MaxClock() != ref.Stats.MaxClock() {
				t.Fatalf("acc=%v %v: stats msgs=%d words=%d clock=%v, sim msgs=%d words=%d clock=%v",
					acc, tr, res.Stats.TotalMsgs(), res.Stats.TotalWords(), res.Stats.MaxClock(),
					ref.Stats.TotalMsgs(), ref.Stats.TotalWords(), ref.Stats.MaxClock())
			}
		}
	}
}

// TestSVMTransportParityBitwise is the column-partitioned twin: CA-SVM
// duals, primal assembly and duality-gap trace must also agree bitwise
// across transports (the gatherX point-to-point path included).
func TestSVMTransportParityBitwise(t *testing.T) {
	d := datagen.Classification("tparity-svm", 13, 180, 90, 0.2, 0.1)
	opt := core.SVMOptions{
		Lambda: 1e-3, Iters: 150, S: 8, Seed: 3, TrackEvery: 50,
	}
	var ref *dist.SVMResult
	for _, tr := range testmatrix.TransportKinds() {
		cl := dist.Options{P: 4, Machine: mpi.CrayXC30(), Transport: tr}
		res, err := dist.SVM(d.AsCSR(), d.B, opt, cl)
		if err != nil {
			t.Fatalf("%v: %v", tr, err)
		}
		if tr == dist.TransportSim {
			ref = res
			continue
		}
		testmatrix.SameFloats(t, "X", res.X, ref.X)
		testmatrix.SameFloats(t, "Alpha", res.Alpha, ref.Alpha)
		if res.Gap != ref.Gap || res.Primal != ref.Primal || res.Dual != ref.Dual {
			t.Fatalf("%v: objectives (%v,%v,%v) != sim (%v,%v,%v)",
				tr, res.Primal, res.Dual, res.Gap, ref.Primal, ref.Dual, ref.Gap)
		}
		for i, p := range res.Trace {
			if p != ref.Trace[i] {
				t.Fatalf("%v: trace[%d] = %+v, sim %+v", tr, i, p, ref.Trace[i])
			}
		}
	}
}
