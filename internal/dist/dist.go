// Package dist runs the paper's distributed solvers over the transports
// of internal/mpi: the simulated cluster (goroutine ranks, binomial-tree
// collectives and an α-β-γ cost model standing in for the Cray XC30 of
// the evaluation) or a real TCP mesh (Options.Transport; cmd/sarank runs
// one rank per process). The solvers are written once against mpi.Comm,
// so both execution modes run identical message DAGs and deterministic
// configurations produce bitwise-identical trajectories.
//
// The layouts follow §IV/§VI of the paper exactly: Lasso partitions rows
// of A across ranks (Fig. 1) and keeps the iterate x replicated; SVM
// partitions columns and keeps the dual α replicated. Both solvers are
// written once in the batched synchronization-avoiding form — the
// classical algorithm is the s = 1 special case, whose single-block batch
// reduces once per iteration, so the two variants share every line of
// update arithmetic and their trajectories differ only by the roundoff
// the paper's Table III quantifies.
//
// Coordinate selection uses the replicated-seed discipline (§III): every
// rank owns an identically seeded generator, so sampled blocks agree with
// zero communication. Options.BroadcastIndices replaces that with an
// explicit broadcast from rank 0 — the ablation of the design choice.
package dist

import (
	"context"
	"fmt"

	"saco/internal/core"
	"saco/internal/mat"
	"saco/internal/mpi"
)

// Transport selects how a solver run executes its ranks.
type Transport int

const (
	// TransportSim runs ranks as goroutines over the in-process
	// simulated world — the default, and the reference for every
	// deterministic trajectory in the test suite.
	TransportSim Transport = iota
	// TransportTCP runs ranks as goroutines connected through a real
	// loopback TCP mesh: the same process count, but every message
	// crosses the kernel's network stack. Bitwise-identical results to
	// TransportSim; used to validate the networked path (multi-process
	// clusters use cmd/sarank instead).
	TransportTCP
)

// String names the transport as it appears in flags and the ROADMAP
// backend matrix.
func (t Transport) String() string {
	switch t {
	case TransportTCP:
		return "tcp"
	default:
		return "sim"
	}
}

// Options configures a distributed solver run.
type Options struct {
	// P is the rank count.
	P int
	// Transport selects the execution mode: TransportSim (default) or
	// TransportTCP (loopback sockets).
	Transport Transport
	// Ctx cancels an in-flight run: ranks blocked in communication
	// return a *mpi.PeerError wrapping the context error. Nil means
	// context.Background().
	Ctx context.Context
	// Machine is the α-β-γ cost model; the zero value defaults to the
	// paper's Cray XC30.
	Machine mpi.Machine
	// BroadcastIndices replaces the replicated-seed coordinate agreement
	// with an explicit broadcast of the sampled blocks from rank 0 — the
	// communication the paper's discipline avoids (ablation).
	BroadcastIndices bool
	// FullGramPack reduces the full s µ × sµ Gram matrix instead of the
	// packed upper triangle the paper's footnote 3 suggests (ablation).
	FullGramPack bool
	// RSAGAllreduce swaps the binomial-tree Allreduce for Rabenseifner's
	// bandwidth-optimal reduce-scatter/allgather.
	RSAGAllreduce bool
	// RankWorkers is the per-rank core budget for hybrid rank×thread
	// runs (MPI×threads, the paper's natural extension): each simulated
	// rank runs its matrix kernels on this many shared-memory workers of
	// the persistent pool, and the cost model charges parallelizable
	// kernel flops at flops/RankWorkers. Worker invariance of the
	// kernels keeps iterates bitwise identical to the single-core run;
	// only the modeled time changes. 0 or 1 keeps ranks sequential.
	RankWorkers int
	// Checkpoint enables deterministic rank checkpointing and restart;
	// nil disables it (the historical behavior).
	Checkpoint *Checkpoint
	// WrapTransport, when non-nil, decorates every rank's transport
	// before the world forms — the fault-injection seam
	// (internal/mpi/faulty) and any other interposition layer.
	WrapTransport func(rank int, t mpi.Transport) mpi.Transport
}

func (o Options) withDefaults() (Options, error) {
	if o.P <= 0 {
		return o, fmt.Errorf("dist: P=%d, want a positive rank count", o.P)
	}
	if o.Machine.Name == "" {
		o.Machine = mpi.CrayXC30()
	}
	if o.RankWorkers < 1 {
		o.RankWorkers = 1
	}
	return o, nil
}

// run executes body as the SPMD program on the configured transport.
func (o Options) run(body func(c *mpi.Comm) error) (*mpi.Stats, error) {
	wopt := mpi.WorldOptions{Cores: o.RankWorkers, Wrap: o.WrapTransport}
	if o.Transport == TransportTCP {
		wopt.TCP = &mpi.TCPOptions{}
	}
	return mpi.RunWorld(o.Ctx, o.P, o.Machine, wopt, body)
}

// allreduce sums data across ranks with the configured algorithm.
func (o *Options) allreduce(c *mpi.Comm, data []float64) error {
	if o.RSAGAllreduce {
		return c.AllreduceRSAG(mpi.Sum, data)
	}
	return c.Allreduce(mpi.Sum, data)
}

// TimedPoint is one convergence measurement stamped with the modeled
// time (rank 0's virtual clock) at which it was taken.
type TimedPoint struct {
	Iter    int
	Seconds float64
	Value   float64 // objective (Lasso) or duality gap (SVM)
}

// LassoResult is the outcome of a simulated distributed Lasso solve.
type LassoResult struct {
	// X is the solution vector (replicated, so exact on every rank).
	X []float64
	// Objective is ½‖A·X − b‖² + g(X) at the final iterate.
	Objective float64
	// Trace holds objective measurements stamped with modeled seconds
	// (TrackEvery > 0). Instrumentation cost is excluded from the clock.
	Trace []TimedPoint
	// Iters is the number of inner iterations performed.
	Iters int
	// Stats is the per-rank cost accounting of the run.
	Stats *mpi.Stats
}

// ModeledSeconds returns the modeled parallel running time: the maximum
// virtual clock over ranks.
func (r *LassoResult) ModeledSeconds() float64 { return r.Stats.MaxClock() }

// NNZ returns the number of nonzero solution coordinates.
func (r *LassoResult) NNZ() int {
	n := 0
	for _, v := range r.X {
		if v != 0 {
			n++
		}
	}
	return n
}

// SVMResult is the outcome of a simulated distributed SVM solve.
type SVMResult struct {
	// X is the assembled primal weight vector (gathered onto rank 0).
	X []float64
	// Alpha is the dual solution (replicated).
	Alpha []float64
	// Primal, Dual and Gap are the final objective values.
	Primal, Dual, Gap float64
	// Trace holds duality-gap measurements stamped with modeled seconds.
	Trace []TimedPoint
	// Iters is the number of dual updates performed (early stop on Tol
	// counts partial work).
	Iters int
	// Stats is the per-rank cost accounting of the run.
	Stats *mpi.Stats
}

// ModeledSeconds returns the modeled parallel running time.
func (r *SVMResult) ModeledSeconds() float64 { return r.Stats.MaxClock() }

// packGram packs the Gram matrix plus extra vectors into buf for one
// Allreduce: the upper triangle row-wise (or all k² entries under
// FullGramPack — the message-size ablation), followed by the extras.
// It returns the packed word count.
func packGram(g *mat.Dense, extras [][]float64, full bool, buf []float64) int {
	k := g.R
	w := 0
	if full {
		w = copy(buf, g.Data[:k*k])
	} else {
		for i := 0; i < k; i++ {
			w += copy(buf[w:], g.Data[i*k+i:(i+1)*k])
		}
	}
	for _, e := range extras {
		w += copy(buf[w:], e)
	}
	return w
}

// unpackGram is the inverse of packGram, mirroring the reduced upper
// triangle into both halves of g and splitting the extras back out.
func unpackGram(buf []float64, g *mat.Dense, extras [][]float64, full bool) {
	k := g.R
	w := 0
	if full {
		w = copy(g.Data[:k*k], buf)
	} else {
		for i := 0; i < k; i++ {
			copy(g.Data[i*k+i:(i+1)*k], buf[w:])
			w += k - i
		}
		for i := 1; i < k; i++ {
			for j := 0; j < i; j++ {
				g.Data[i*k+j] = g.Data[j*k+i]
			}
		}
	}
	for _, e := range extras {
		copy(e, buf[w:])
		w += len(e)
	}
}

// gramWords returns the packed Gram message size for dimension k.
func gramWords(k int, full bool) int {
	if full {
		return k * k
	}
	return k * (k + 1) / 2
}

// blockEig returns λmax of a Gram block with the scalar fast path, like
// the sequential solvers.
func blockEig(g *mat.Dense) float64 {
	if g.R == 1 {
		return g.Data[0]
	}
	return mat.LargestEigSym(g)
}

// eigFlops is the nominal cost charged for the power-iteration λmax of a
// µ×µ block (a handful of Gemv sweeps).
func eigFlops(mu int) float64 {
	if mu == 1 {
		return 1
	}
	return 20 * float64(mu) * float64(mu)
}

// bcastBlocks implements the broadcast-indices ablation for the Lasso
// sampler: rank 0 draws the batch and broadcasts the concatenated,
// length-prefixed blocks; everyone else decodes. The flattened message
// is what the replicated-seed discipline saves.
func bcastBlocks(c *mpi.Comm, smp *core.BlockSampler, sb, muMax int, scratch []float64) ([][]int, error) {
	buf := scratch[:1+sb*(muMax+1)]
	if c.Rank() == 0 {
		w := 0
		buf[w] = float64(sb)
		w++
		for j := 0; j < sb; j++ {
			blk := smp.Next()
			buf[w] = float64(len(blk))
			w++
			for _, idx := range blk {
				buf[w] = float64(idx)
				w++
			}
		}
		for ; w < len(buf); w++ {
			buf[w] = 0
		}
	}
	if err := c.Bcast(0, buf); err != nil {
		return nil, err
	}
	blocks := make([][]int, 0, sb)
	w := 1
	for j := 0; j < int(buf[0]); j++ {
		l := int(buf[w])
		w++
		blk := make([]int, l)
		for i := range blk {
			blk[i] = int(buf[w])
			w++
		}
		blocks = append(blocks, blk)
	}
	return blocks, nil
}

// bcastRows implements the broadcast-indices ablation for the SVM row
// sampler: rank 0 draws sb row ids and broadcasts them.
func bcastRows(c *mpi.Comm, r interface{ Intn(int) int }, m, sb int, rows []int, scratch []float64) error {
	buf := scratch[:sb]
	if c.Rank() == 0 {
		for j := 0; j < sb; j++ {
			buf[j] = float64(r.Intn(m))
		}
	}
	if err := c.Bcast(0, buf); err != nil {
		return err
	}
	for j := 0; j < sb; j++ {
		rows[j] = int(buf[j])
	}
	return nil
}
