package dist

import "saco/internal/sparse"

// Source supplies the partitioned blocks the distributed loaders need,
// decoupling the simulated cluster from a resident CSR: ranks ask for
// exactly their block in the paper's two layouts (rows for Lasso's
// Fig. 1, columns for the SVM's §VI) and the source decides how to
// produce it. CSRSource adapts an in-memory matrix; stream.Dataset
// implements the same pair out of core, so paper-scale replicas are
// loaded shard by shard instead of materializing the full matrix before
// partitioning.
//
// Implementations must be safe for concurrent calls: every simulated
// rank runs on its own goroutine and loads its block during setup.
type Source interface {
	// Dims returns (rows m, columns n) of the full matrix.
	Dims() (int, int)
	// RowsCSC returns rows [lo, hi) as a column-accessible block with
	// the full column space (the Lasso 1D-row layout).
	RowsCSC(lo, hi int) (*sparse.CSC, error)
	// ColsCSR returns columns [c0, c1), reindexed to start at zero,
	// keeping all rows (the SVM 1D-column layout).
	ColsCSR(c0, c1 int) (*sparse.CSR, error)
}

// CSRSource adapts a resident sparse.CSR to the Source interface. The
// produced blocks are byte-for-byte what the loaders historically built
// with SliceRows(...).ToCSC() and SliceCols(...), so simulated
// trajectories are unchanged.
type CSRSource struct{ A *sparse.CSR }

// Dims returns the matrix dimensions.
func (s CSRSource) Dims() (int, int) { return s.A.Dims() }

// RowsCSC slices rows [lo, hi) and converts to CSC.
func (s CSRSource) RowsCSC(lo, hi int) (*sparse.CSC, error) {
	return s.A.SliceRows(lo, hi).ToCSC(), nil
}

// ColsCSR slices columns [c0, c1).
func (s CSRSource) ColsCSR(c0, c1 int) (*sparse.CSR, error) {
	return s.A.SliceCols(c0, c1), nil
}
