// Package libsvm reads and writes the LIBSVM sparse text format used by
// every dataset in the paper's evaluation (Tables II and IV):
//
//	<label> <index>:<value> <index>:<value> ...
//
// Indices are 1-based and strictly increasing within a line; lines
// starting with '#' and blank lines are ignored. The reader streams, so
// url-scale files do not need to fit in memory twice.
package libsvm

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"saco/internal/sparse"
)

// Read parses a LIBSVM stream. n is the number of features; pass 0 to
// infer it from the largest index seen.
func Read(r io.Reader, n int) (*sparse.CSR, []float64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26) // rows can be wide (url: 3M features)
	var (
		rowPtr = []int{0}
		colIdx []int
		vals   []float64
		labels []float64
		maxCol = -1
		lineNo = 0
	)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		label, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, nil, fmt.Errorf("libsvm: line %d: bad label %q: %v", lineNo, fields[0], err)
		}
		labels = append(labels, label)
		prev := -1
		for _, f := range fields[1:] {
			colon := strings.IndexByte(f, ':')
			if colon <= 0 {
				return nil, nil, fmt.Errorf("libsvm: line %d: bad feature %q", lineNo, f)
			}
			idx, err := strconv.Atoi(f[:colon])
			if err != nil || idx < 1 {
				return nil, nil, fmt.Errorf("libsvm: line %d: bad index %q", lineNo, f[:colon])
			}
			v, err := strconv.ParseFloat(f[colon+1:], 64)
			if err != nil {
				return nil, nil, fmt.Errorf("libsvm: line %d: bad value %q: %v", lineNo, f[colon+1:], err)
			}
			col := idx - 1
			if col <= prev {
				return nil, nil, fmt.Errorf("libsvm: line %d: indices not strictly increasing", lineNo)
			}
			prev = col
			if col > maxCol {
				maxCol = col
			}
			if v != 0 {
				colIdx = append(colIdx, col)
				vals = append(vals, v)
			}
		}
		rowPtr = append(rowPtr, len(vals))
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("libsvm: %v", err)
	}
	if n == 0 {
		n = maxCol + 1
	} else if maxCol >= n {
		return nil, nil, fmt.Errorf("libsvm: index %d exceeds declared features %d", maxCol+1, n)
	}
	a, err := sparse.NewCSR(len(labels), n, rowPtr, colIdx, vals)
	if err != nil {
		return nil, nil, err
	}
	return a, labels, nil
}

// ReadFile reads a LIBSVM file from disk.
func ReadFile(path string, n int) (*sparse.CSR, []float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return Read(f, n)
}

// Write emits a in LIBSVM format with the given labels.
func Write(w io.Writer, a *sparse.CSR, labels []float64) error {
	if len(labels) != a.M {
		return fmt.Errorf("libsvm: %d labels for %d rows", len(labels), a.M)
	}
	bw := bufio.NewWriter(w)
	for i := 0; i < a.M; i++ {
		if _, err := fmt.Fprintf(bw, "%g", labels[i]); err != nil {
			return err
		}
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if _, err := fmt.Fprintf(bw, " %d:%g", a.ColIdx[k]+1, a.Val[k]); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteFile writes a LIBSVM file to disk.
func WriteFile(path string, a *sparse.CSR, labels []float64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, a, labels); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
