// Package libsvm reads and writes the LIBSVM sparse text format used by
// every dataset in the paper's evaluation (Tables II and IV):
//
//	<label> <index>:<value> <index>:<value> ...
//
// Indices are 1-based and strictly increasing within a line; lines
// starting with '#' and blank lines are ignored. The reader streams, so
// url-scale files do not need to fit in memory twice. For files whose
// CSR does not fit in memory at all, package stream ingests the same
// format into an out-of-core shard store through the RowParser exported
// here.
package libsvm

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"saco/internal/sparse"
)

// maxLine is the scanner token cap of the in-memory reader. The widest
// plausible rows (url: 3M features) fit comfortably; rows beyond it are
// reported with their line number so the caller can switch to the
// streaming reader, which has no cap.
const maxLine = 1 << 26

// RowParser parses LIBSVM data lines into reusable buffers. It is the
// single row grammar shared by Read and the out-of-core ingestion of
// package stream, so both paths accept and reject exactly the same
// inputs.
type RowParser struct {
	// Cols and Vals hold the parsed feature pairs of the last Parse call
	// (0-based column indices, explicit zeros dropped). They are reused
	// across calls.
	Cols []int
	Vals []float64

	// maxCol is the largest index of the last Parse call, counting
	// explicit zeros: "n:0" is the conventional way to declare a file's
	// dimensionality, so dropped values still widen the matrix.
	maxCol int
}

// Parse parses one non-empty, non-comment data line, returning its
// label. lineNo is used only for error messages. Feature indices must be
// ≥ 1 and strictly increasing; duplicate and out-of-order indices are
// rejected with a line-numbered error because they break the CSR
// invariant (strictly increasing columns within a row) every downstream
// kernel relies on.
func (p *RowParser) Parse(line string, lineNo int) (float64, error) {
	p.Cols = p.Cols[:0]
	p.Vals = p.Vals[:0]
	p.maxCol = -1
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return 0, fmt.Errorf("libsvm: line %d: empty row", lineNo)
	}
	label, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return 0, fmt.Errorf("libsvm: line %d: bad label %q: %v", lineNo, fields[0], err)
	}
	prev := -1
	for _, f := range fields[1:] {
		colon := strings.IndexByte(f, ':')
		if colon <= 0 {
			return 0, fmt.Errorf("libsvm: line %d: bad feature %q", lineNo, f)
		}
		idx, err := strconv.Atoi(f[:colon])
		if err != nil || idx < 1 {
			return 0, fmt.Errorf("libsvm: line %d: bad index %q", lineNo, f[:colon])
		}
		v, err := strconv.ParseFloat(f[colon+1:], 64)
		if err != nil {
			return 0, fmt.Errorf("libsvm: line %d: bad value %q: %v", lineNo, f[colon+1:], err)
		}
		col := idx - 1
		switch {
		case col == prev:
			return 0, fmt.Errorf("libsvm: line %d: duplicate index %d", lineNo, idx)
		case col < prev:
			return 0, fmt.Errorf("libsvm: line %d: index %d out of order after %d", lineNo, idx, prev+1)
		}
		prev = col
		p.maxCol = col
		if v != 0 {
			p.Cols = append(p.Cols, col)
			p.Vals = append(p.Vals, v)
		}
	}
	return label, nil
}

// MaxCol returns the largest parsed column index of the last Parse
// call, or -1 when the row declared no features. Explicit zeros count:
// their values are dropped from storage, but "n:0" still declares the
// matrix at least n wide (and must still respect a declared width).
func (p *RowParser) MaxCol() int { return p.maxCol }

// Skip reports whether a raw input line carries no data (blank or
// comment) and should not reach Parse.
func Skip(line string) bool {
	line = strings.TrimSpace(line)
	return line == "" || strings.HasPrefix(line, "#")
}

// Read parses a LIBSVM stream. n is the number of features; pass 0 to
// infer it from the largest index seen.
func Read(r io.Reader, n int) (*sparse.CSR, []float64, error) {
	return read(r, n, maxLine)
}

// read is Read with an explicit scanner cap, separated so tests can
// exercise the oversized-row path without materializing a 64 MiB line.
func read(r io.Reader, n, cap int) (*sparse.CSR, []float64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, min(1<<20, cap)), cap)
	var (
		rowPtr = []int{0}
		colIdx []int
		vals   []float64
		labels []float64
		maxCol = -1
		lineNo = 0
		parser RowParser
	)
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if Skip(line) {
			continue
		}
		label, err := parser.Parse(line, lineNo)
		if err != nil {
			return nil, nil, err
		}
		labels = append(labels, label)
		colIdx = append(colIdx, parser.Cols...)
		vals = append(vals, parser.Vals...)
		if c := parser.MaxCol(); c > maxCol {
			maxCol = c
		}
		rowPtr = append(rowPtr, len(vals))
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			// The scanner stops on the line after the last one delivered.
			return nil, nil, fmt.Errorf("libsvm: line %d: row exceeds the %d-byte in-memory reader cap (the streaming reader in internal/stream has no cap)", lineNo+1, cap)
		}
		return nil, nil, fmt.Errorf("libsvm: %v", err)
	}
	if n == 0 {
		n = maxCol + 1
	} else if maxCol >= n {
		return nil, nil, fmt.Errorf("libsvm: index %d exceeds declared features %d", maxCol+1, n)
	}
	a, err := sparse.NewCSR(len(labels), n, rowPtr, colIdx, vals)
	if err != nil {
		return nil, nil, err
	}
	return a, labels, nil
}

// ReadFile reads a LIBSVM file from disk.
func ReadFile(path string, n int) (a *sparse.CSR, labels []float64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer func() {
		// A close error on the read path is rare but can flag delayed
		// I/O failures (e.g. NFS); don't let it vanish on success.
		if cerr := f.Close(); cerr != nil && err == nil {
			a, labels, err = nil, nil, cerr
		}
	}()
	return Read(f, n)
}

// Write emits a in LIBSVM format with the given labels.
func Write(w io.Writer, a *sparse.CSR, labels []float64) error {
	if len(labels) != a.M {
		return fmt.Errorf("libsvm: %d labels for %d rows", len(labels), a.M)
	}
	bw := bufio.NewWriter(w)
	for i := 0; i < a.M; i++ {
		if _, err := fmt.Fprintf(bw, "%g", labels[i]); err != nil {
			return err
		}
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if _, err := fmt.Fprintf(bw, " %d:%g", a.ColIdx[k]+1, a.Val[k]); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteFile writes a LIBSVM file to disk. The file is synced before
// close so that a short write on a full disk surfaces as an error
// instead of silent success.
func WriteFile(path string, a *sparse.CSR, labels []float64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, a, labels); err != nil {
		f.Close() //saco:nolint commerr best-effort close on an already-failing path; the first error is propagating and the success path checks Close
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close() //saco:nolint commerr best-effort close on an already-failing path; the first error is propagating and the success path checks Close
		return err
	}
	return f.Close()
}
