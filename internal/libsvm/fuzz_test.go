package libsvm

import (
	"strings"
	"testing"
)

// FuzzRowParser: the single row grammar shared by the in-memory reader
// and the out-of-core ingestion must never panic and never accept a row
// that violates the CSR invariants — whatever bytes arrive. Malformed
// input is an error, full stop. The seed corpus under
// testdata/fuzz/FuzzRowParser is checked in, so `go test` replays it as
// unit tests even without -fuzz.
func FuzzRowParser(f *testing.F) {
	seeds := []string{
		"1 1:1 2:0.5 7:-3",
		"-1 3:1e300 4:-1e-300",
		"+1.5e2 1:0.1",
		"1",
		"1 4294967295:1",
		"1 1:1 1:2",     // duplicate index
		"1 5:1 2:1",     // out of order
		"x 1:1",         // bad label
		"1 0:1",         // index below 1
		"1 1:",          // empty value
		"1 :1",          // empty index
		"1 1:0 2:0 3:0", // explicit zeros declare width
		"1 00000000001:1",
		"1 1:NaN 2:Inf",
		"\x00\xff \x01:\x02",
		"1 18446744073709551616:1", // overflows uint64
		"1 1:1 2:+0 3:-0",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, line string) {
		var p RowParser
		label, err := p.Parse(line, 1)
		if err != nil {
			// Rejected rows must not leave stale state behind that a
			// reuse of the parser could pick up as data.
			return
		}
		// Accepted rows must satisfy every invariant the CSR builders
		// rely on: paired arrays, strictly increasing 0-based columns,
		// no explicit zeros stored, MaxCol covering every stored column,
		// and nothing beyond the input's own field count.
		if len(p.Cols) != len(p.Vals) {
			t.Fatalf("cols/vals length mismatch: %d vs %d", len(p.Cols), len(p.Vals))
		}
		if fields := len(strings.Fields(line)); len(p.Cols) > fields {
			t.Fatalf("parsed %d features from %d fields (over-allocation)", len(p.Cols), fields)
		}
		prev := -1
		for k, c := range p.Cols {
			if c <= prev {
				t.Fatalf("columns not strictly increasing at %d: %v", k, p.Cols)
			}
			if p.Vals[k] == 0 {
				t.Fatalf("explicit zero stored at column %d", c)
			}
			prev = c
		}
		if prev > p.MaxCol() {
			t.Fatalf("MaxCol %d below largest stored column %d", p.MaxCol(), prev)
		}
		if p.MaxCol() >= 0 && p.MaxCol() < prev {
			t.Fatalf("MaxCol %d inconsistent with %v", p.MaxCol(), p.Cols)
		}
		_ = label
	})
}

// FuzzRead drives the whole in-memory reader (scanner, comments, width
// checks, CSR assembly): any input either parses into a valid CSR or
// errors — no panics, no constraint violations.
func FuzzRead(f *testing.F) {
	f.Add("1 1:1 3:0.5\n-1 2:-1 4:2\n")
	f.Add("# comment\n\n1 1:1\n")
	f.Add("1 1:0\n")
	f.Add("1 2:1\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, text string) {
		a, labels, err := Read(strings.NewReader(text), 0)
		if err != nil {
			return
		}
		if a.M != len(labels) {
			t.Fatalf("%d rows, %d labels", a.M, len(labels))
		}
		// NewCSR's invariants were already checked inside Read; spot
		// check the column bound nonetheless.
		for _, c := range a.ColIdx {
			if c < 0 || c >= a.N {
				t.Fatalf("column %d out of [0,%d)", c, a.N)
			}
		}
	})
}
