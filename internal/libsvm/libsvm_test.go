package libsvm

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"saco/internal/rng"
	"saco/internal/sparse"
)

func TestReadBasic(t *testing.T) {
	in := `+1 1:0.5 3:2
-1 2:-1.5
# a comment

+1 1:1 2:1 3:1
`
	a, b, err := Read(strings.NewReader(in), 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.M != 3 || a.N != 3 {
		t.Fatalf("dims %dx%d", a.M, a.N)
	}
	if b[0] != 1 || b[1] != -1 || b[2] != 1 {
		t.Fatalf("labels %v", b)
	}
	d := a.ToDense()
	if d.At(0, 0) != 0.5 || d.At(0, 2) != 2 || d.At(1, 1) != -1.5 || d.At(2, 1) != 1 {
		t.Fatalf("values wrong: %v", d.Data)
	}
}

func TestReadDeclaredWidth(t *testing.T) {
	a, _, err := Read(strings.NewReader("1 1:1\n"), 10)
	if err != nil {
		t.Fatal(err)
	}
	if a.N != 10 {
		t.Fatalf("N = %d, want 10", a.N)
	}
	if _, _, err := Read(strings.NewReader("1 11:1\n"), 10); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"abc 1:1\n",   // bad label
		"1 0:1\n",     // index < 1
		"1 x:1\n",     // bad index
		"1 1:zz\n",    // bad value
		"1 2:1 1:2\n", // decreasing indices
		"1 1\n",       // missing colon
	}
	for _, in := range cases {
		if _, _, err := Read(strings.NewReader(in), 0); err == nil {
			t.Fatalf("no error for %q", in)
		}
	}
}

// Explicit zeros ("n:0", the conventional dimensionality declaration)
// must widen the inferred matrix and still hit the declared-width
// bounds check, even though their values are not stored.
func TestReadExplicitZeroDeclaresWidth(t *testing.T) {
	a, _, err := Read(strings.NewReader("1 1:1 5:0\n"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.N != 5 || a.NNZ() != 1 {
		t.Fatalf("N=%d nnz=%d, want N=5 nnz=1", a.N, a.NNZ())
	}
	if _, _, err := Read(strings.NewReader("1 1:1 5:0\n"), 3); err == nil {
		t.Fatal("expected out-of-range error for zero-valued index 5 with n=3")
	}
}

func TestReadDuplicateIndex(t *testing.T) {
	_, _, err := Read(strings.NewReader("1 1:1\n1 2:1 2:3\n"), 0)
	if err == nil {
		t.Fatal("expected duplicate-index error")
	}
	for _, want := range []string{"line 2", "duplicate index 2"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}
}

func TestReadOutOfOrderIndex(t *testing.T) {
	_, _, err := Read(strings.NewReader("1 5:1 2:3\n"), 0)
	if err == nil {
		t.Fatal("expected out-of-order error")
	}
	for _, want := range []string{"line 1", "index 2 out of order after 5"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}
}

func TestReadRowTooLong(t *testing.T) {
	// A small cap keeps the test cheap; Read uses the same path with the
	// 64 MiB production cap.
	in := "1 1:1\n-1 " + strings.Repeat("1:1 ", 40) + "\n"
	_, _, err := read(strings.NewReader(in), 0, 32)
	if err == nil {
		t.Fatal("expected token-too-long error")
	}
	for _, want := range []string{"line 2", "32-byte", "streaming reader"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}
}

func TestRowParserReuse(t *testing.T) {
	var p RowParser
	if _, err := p.Parse("1 1:1 3:2 9:4", 1); err != nil {
		t.Fatal(err)
	}
	if p.MaxCol() != 8 || len(p.Cols) != 3 {
		t.Fatalf("cols %v maxCol %d", p.Cols, p.MaxCol())
	}
	// Explicit zeros are dropped from storage but still declare width.
	if _, err := p.Parse("1 2:5 7:0", 2); err != nil {
		t.Fatal(err)
	}
	if p.MaxCol() != 6 || len(p.Cols) != 1 || p.Vals[0] != 5 {
		t.Fatalf("reuse broken: cols %v vals %v maxCol %d", p.Cols, p.Vals, p.MaxCol())
	}
	if _, err := p.Parse("x", 3); err == nil {
		t.Fatal("expected bad-label error")
	}
}

func TestReadScientificNotation(t *testing.T) {
	a, _, err := Read(strings.NewReader("3.5e-1 2:1e3\n"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.ToDense().At(0, 1) != 1000 {
		t.Fatal("scientific value wrong")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	r := rng.New(1)
	coo := sparse.NewCOO(20, 15)
	labels := make([]float64, 20)
	for i := 0; i < 20; i++ {
		labels[i] = float64(2*(i%2) - 1)
		for _, j := range r.SampleK(15, 4) {
			coo.Add(i, j, r.NormFloat64())
		}
	}
	a := coo.ToCSR()
	var buf bytes.Buffer
	if err := Write(&buf, a, labels); err != nil {
		t.Fatal(err)
	}
	back, backLabels, err := Read(&buf, a.N)
	if err != nil {
		t.Fatal(err)
	}
	if !a.ToDense().Equal(back.ToDense()) {
		t.Fatal("matrix changed in round trip")
	}
	for i := range labels {
		if labels[i] != backLabels[i] {
			t.Fatal("labels changed in round trip")
		}
	}
}

func TestWriteLabelMismatch(t *testing.T) {
	a := sparse.NewCOO(2, 2).ToCSR()
	if err := Write(&bytes.Buffer{}, a, []float64{1}); err == nil {
		t.Fatal("expected label-count error")
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.svm")
	coo := sparse.NewCOO(3, 4)
	coo.Add(0, 0, 1)
	coo.Add(2, 3, -2.5)
	a := coo.ToCSR()
	labels := []float64{1, -1, 1}
	if err := WriteFile(path, a, labels); err != nil {
		t.Fatal(err)
	}
	back, bl, err := ReadFile(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !a.ToDense().Equal(back.ToDense()) || bl[2] != 1 {
		t.Fatal("file round trip mismatch")
	}
	if _, _, err := ReadFile(filepath.Join(dir, "missing"), 0); err == nil {
		t.Fatal("expected error for missing file")
	}
}

// Property: write∘read is the identity on random sparse matrices.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed uint64, mRaw, nRaw uint8) bool {
		m := 1 + int(mRaw%12)
		n := 1 + int(nRaw%12)
		r := rng.New(seed)
		coo := sparse.NewCOO(m, n)
		labels := make([]float64, m)
		for i := 0; i < m; i++ {
			labels[i] = r.NormFloat64()
			k := r.Intn(n + 1)
			for _, j := range r.SampleK(n, k) {
				coo.Add(i, j, r.NormFloat64())
			}
		}
		a := coo.ToCSR()
		var buf bytes.Buffer
		if err := Write(&buf, a, labels); err != nil {
			return false
		}
		back, bl, err := Read(&buf, n)
		if err != nil {
			return false
		}
		if !a.ToDense().Equal(back.ToDense()) {
			return false
		}
		for i := range labels {
			if labels[i] != bl[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
