package core

import (
	"runtime"

	"saco/internal/mat"
)

// Backend selects where and how a solve's updates run. The solvers
// themselves are backend-agnostic; the backends differ in what they
// trade for speed:
//
//   - BackendSequential and BackendMulticore produce bitwise-identical
//     iterate sequences (every multicore kernel partitions independent
//     output elements with unchanged summation order) — the
//     shared-memory counterpart of the paper's claim that the SA
//     reformulation preserves the classical iterates up to roundoff.
//   - BackendAsync trades that determinism for latency: HOGWILD!-style
//     lock-free workers update one shared iterate through atomic
//     element operations, so runs converge to the same optimum but are
//     not reproducible step for step (cf. Zhou et al. 2021 on
//     asynchronous lock-free optimization, PAPERS.md).
//
// The remaining execution modes — the simulated distributed cluster and
// its hybrid rank×thread variant — live in package dist (see
// saco.SimulateLasso / saco.SimulateSVM and Cluster.RankWorkers).
type Backend int

const (
	// BackendSequential runs every kernel on the calling goroutine — the
	// default, and the mode the simulated-cluster ranks use internally.
	BackendSequential Backend = iota
	// BackendMulticore fans the batched kernels out across the persistent
	// shared-memory worker pool (Exec.Workers wide, default GOMAXPROCS),
	// keeping iterates bitwise identical to sequential runs.
	BackendMulticore
	// BackendAsync runs Exec.Workers lock-free solver workers against a
	// shared atomic iterate with per-worker RNG streams: no barriers, no
	// locks, convergent but not deterministic. Supported by the plain
	// Lasso solvers (CD/BCD), the dual-CD SVM and Pegasos; matrices must
	// provide atomic kernels (sparse.CSC / sparse.CSR do).
	BackendAsync
)

// String names the backend for logs and flags.
func (b Backend) String() string {
	switch b {
	case BackendMulticore:
		return "multicore"
	case BackendAsync:
		return "async"
	default:
		return "sequential"
	}
}

// Exec selects the execution backend of a single solve.
type Exec struct {
	// Backend picks sequential (zero value), multicore or async
	// execution.
	Backend Backend
	// Workers is the pool width for BackendMulticore and the solver
	// worker count for BackendAsync; 0 means runtime.GOMAXPROCS(0),
	// resolved at solve time. Ignored by BackendSequential.
	Workers int
}

// workers returns the effective kernel worker count (multicore only:
// async workers run sequential kernels, each worker being one lane of
// the outer parallelism).
func (e Exec) workers() int {
	if e.Backend != BackendMulticore {
		return 1
	}
	return e.width()
}

// AsyncWorkers returns the solver worker count of an async solve
// (1 for non-async backends). Exported for callers of the async
// stepper hooks (NewAsyncLasso / NewAsyncSVM), which take an explicit
// worker count.
func (e Exec) AsyncWorkers() int {
	if e.Backend != BackendAsync {
		return 1
	}
	return e.width()
}

// width resolves Exec.Workers, defaulting to GOMAXPROCS at call time.
func (e Exec) width() int {
	if e.Workers > 0 {
		return e.Workers
	}
	return runtime.GOMAXPROCS(0) //saco:nolint nondet resolves Exec.Workers for the pool; worker count never reaches chunking or summation order
}

// kernelParallelizer is the optional capability the sparse matrix types
// implement: producing a read-only view of themselves whose kernels run
// on w shared-memory workers. The method returns any (rather than a
// matrix interface) so the data-structure package need not depend on
// this package; execCol/execRow narrow the result.
type kernelParallelizer interface {
	WithKernelWorkers(w int) any
}

// asyncColMatrix is the capability the async Lasso solver needs on top
// of ColMatrix: gradient reads and residual updates through the shared
// atomic residual. sparse.CSC implements it.
type asyncColMatrix interface {
	ColMatrix
	ColTMulVecAtomic(cols []int, v *mat.AtomicVec, dst []float64)
	ColMulAddAtomic(cols []int, coef []float64, v *mat.AtomicVec)
}

// asyncRowMatrix is the row-access counterpart for the async dual-CD
// SVM: stale margin reads and primal updates through the shared atomic
// primal vector. sparse.CSR implements it.
type asyncRowMatrix interface {
	RowMatrix
	RowDotAtomic(i int, x *mat.AtomicVec) float64
	RowTAxpyAtomic(i int, alpha float64, x *mat.AtomicVec)
}

// execCol applies the Exec knob to a column-access matrix, returning the
// matrix view the solver should use. Matrices without the capability run
// sequentially regardless of the requested backend.
func execCol(a ColMatrix, e Exec) ColMatrix {
	w := e.workers()
	if w <= 1 {
		return a
	}
	if kp, ok := a.(kernelParallelizer); ok {
		if pa, ok := kp.WithKernelWorkers(w).(ColMatrix); ok {
			return pa
		}
	}
	return a
}

// execRow applies the Exec knob to a row-access matrix.
func execRow(a RowMatrix, e Exec) RowMatrix {
	w := e.workers()
	if w <= 1 {
		return a
	}
	if kp, ok := a.(kernelParallelizer); ok {
		if pa, ok := kp.WithKernelWorkers(w).(RowMatrix); ok {
			return pa
		}
	}
	return a
}
