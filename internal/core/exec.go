package core

import "runtime"

// Backend selects where a solve's matrix kernels run. The solvers
// themselves are backend-agnostic: the choice only changes how the
// batched products (Gram assembly, A_Sᵀ·v, SpMV) are executed, and every
// multicore kernel partitions independent output elements with unchanged
// summation order, so the iterate sequence is bitwise identical across
// backends — the shared-memory counterpart of the paper's claim that the
// SA reformulation preserves the classical iterates up to roundoff. The
// third execution mode, the simulated distributed cluster, lives in
// package dist (see saco.SimulateLasso / saco.SimulateSVM).
type Backend int

const (
	// BackendSequential runs every kernel on the calling goroutine — the
	// default, and the mode the simulated-cluster ranks use internally.
	BackendSequential Backend = iota
	// BackendMulticore fans the batched kernels out across a
	// shared-memory worker pool (Exec.Workers wide, default GOMAXPROCS).
	BackendMulticore
)

// String names the backend for logs and flags.
func (b Backend) String() string {
	if b == BackendMulticore {
		return "multicore"
	}
	return "sequential"
}

// Exec selects the execution backend of a single solve.
type Exec struct {
	// Backend picks sequential (zero value) or multicore kernels.
	Backend Backend
	// Workers is the pool width for BackendMulticore; 0 means
	// runtime.GOMAXPROCS(0). Ignored by BackendSequential.
	Workers int
}

// workers returns the effective kernel worker count.
func (e Exec) workers() int {
	if e.Backend != BackendMulticore {
		return 1
	}
	if e.Workers > 0 {
		return e.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// kernelParallelizer is the optional capability the sparse matrix types
// implement: producing a read-only view of themselves whose kernels run
// on w shared-memory workers. The method returns any (rather than a
// matrix interface) so the data-structure package need not depend on
// this package; execCol/execRow narrow the result.
type kernelParallelizer interface {
	WithKernelWorkers(w int) any
}

// execCol applies the Exec knob to a column-access matrix, returning the
// matrix view the solver should use. Matrices without the capability run
// sequentially regardless of the requested backend.
func execCol(a ColMatrix, e Exec) ColMatrix {
	w := e.workers()
	if w <= 1 {
		return a
	}
	if kp, ok := a.(kernelParallelizer); ok {
		if pa, ok := kp.WithKernelWorkers(w).(ColMatrix); ok {
			return pa
		}
	}
	return a
}

// execRow applies the Exec knob to a row-access matrix.
func execRow(a RowMatrix, e Exec) RowMatrix {
	w := e.workers()
	if w <= 1 {
		return a
	}
	if kp, ok := a.(kernelParallelizer); ok {
		if pa, ok := kp.WithKernelWorkers(w).(RowMatrix); ok {
			return pa
		}
	}
	return a
}
