package core

import (
	"errors"
	"sort"
)

// PathPoint is one solution along a regularization path.
type PathPoint struct {
	Lambda    float64
	X         []float64
	Objective float64
	NNZ       int
}

// LassoPath solves the Lasso problem for a decreasing sequence of λ
// values, warm-starting each solve from the previous solution — the
// standard homotopy strategy for exploring sparsity levels (the use case
// behind the paper's Lasso benchmarks). Lambdas are sorted descending
// internally; opt.Lambda and opt.Reg are overridden per point, all other
// options (including S for synchronization-avoiding solves) apply to
// every point.
func LassoPath(a ColMatrix, b []float64, lambdas []float64, opt LassoOptions) ([]PathPoint, error) {
	if len(lambdas) == 0 {
		return nil, errors.New("core: LassoPath needs at least one lambda")
	}
	for _, l := range lambdas {
		if l < 0 {
			return nil, errors.New("core: negative lambda in path")
		}
	}
	sorted := append([]float64(nil), lambdas...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))

	out := make([]PathPoint, 0, len(sorted))
	var warm []float64
	for _, lambda := range sorted {
		o := opt
		o.Lambda = lambda
		o.Reg = nil // the path is defined for the L1 penalty
		o.X0 = warm
		res, err := Lasso(a, b, o)
		if err != nil {
			return nil, err
		}
		out = append(out, PathPoint{
			Lambda:    lambda,
			X:         res.X,
			Objective: res.Objective,
			NNZ:       res.NNZ(),
		})
		warm = res.X
	}
	return out, nil
}
