package core

import (
	"math"
	"testing"
	"testing/quick"

	"saco/internal/datagen"
)

// TestQuickSAEquivalenceLasso is the randomized version of the central
// invariant: for random problem shapes, block sizes, unrolling factors
// and seeds, SA and classical Lasso agree to roundoff.
func TestQuickSAEquivalenceLasso(t *testing.T) {
	f := func(seed uint64, mRaw, nRaw, muRaw, sRaw uint8, acc bool) bool {
		m := 20 + int(mRaw)%80
		n := 10 + int(nRaw)%60
		mu := 1 + int(muRaw)%min(4, n)
		s := 2 + int(sRaw)%40
		d := datagen.Regression("q", seed, m, n, 0.2, max(2, n/10), 0.05)
		a := d.CSR.ToCSC()
		lambda := 0.1 * LambdaMaxL1(a, d.B)
		base := LassoOptions{Lambda: lambda, BlockSize: mu, Iters: 60, Accelerated: acc, Seed: seed}
		ref, err := Lasso(a, d.B, base)
		if err != nil {
			return false
		}
		sa := base
		sa.S = s
		got, err := Lasso(a, d.B, sa)
		if err != nil {
			return false
		}
		return relDiff(got.Objective, ref.Objective) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSAEquivalenceSVM: the SVM counterpart over random shapes,
// losses and unrolling factors.
func TestQuickSAEquivalenceSVM(t *testing.T) {
	f := func(seed uint64, mRaw, nRaw, sRaw uint8, l2 bool) bool {
		m := 20 + int(mRaw)%80
		n := 10 + int(nRaw)%60
		s := 2 + int(sRaw)%60
		d := datagen.Classification("q", seed, m, n, 0.2, 0.1)
		loss := SVML1
		if l2 {
			loss = SVML2
		}
		base := SVMOptions{Lambda: 1, Loss: loss, Iters: 300, Seed: seed}
		ref, err := SVM(d.CSR, d.B, base)
		if err != nil {
			return false
		}
		sa := base
		sa.S = s
		got, err := SVM(d.CSR, d.B, sa)
		if err != nil {
			return false
		}
		for i := range ref.Alpha {
			if math.Abs(got.Alpha[i]-ref.Alpha[i]) > 1e-8*(1+math.Abs(ref.Alpha[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLassoGapCertificate: the duality gap is nonnegative at
// arbitrary points of random problems (weak duality can never break).
func TestQuickLassoGapCertificate(t *testing.T) {
	f := func(seed uint64, itersRaw uint8) bool {
		d := datagen.Regression("q", seed, 60, 40, 0.25, 4, 0.05)
		a := d.CSR.ToCSC()
		lambda := 0.2 * LambdaMaxL1(a, d.B)
		res, err := Lasso(a, d.B, LassoOptions{
			Lambda: lambda, BlockSize: 2, Iters: 1 + int(itersRaw), Seed: seed,
		})
		if err != nil {
			return false
		}
		gap := LassoDualityGap(a, d.B, res.X, residualOf(a, d.B, res.X), lambda)
		return gap >= 0 && !math.IsNaN(gap)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
