package core

import (
	"math"

	"saco/internal/mat"
)

// LassoDualityGap returns a rigorous optimality certificate for the L1
// problem min ½‖Ax−b‖² + λ‖x‖₁ at the point x with residual r = A·x − b.
//
// The Fenchel dual is max_u −½‖u‖² − bᵀu subject to ‖Aᵀu‖∞ ≤ λ; the
// residual scaled into the dual-feasible region,
// u = min(1, λ/‖Aᵀr‖∞)·r, gives the standard dual candidate, and
// P(x) − D(u) ≥ P(x) − P(x*) bounds the true suboptimality. Computing the
// certificate costs one full Aᵀr product (O(nnz)), so solvers evaluate it
// at checkpoints, not every iteration — the same economy the SVM solvers
// apply to their duality gap (§VI).
func LassoDualityGap(a ColMatrix, b, x, r []float64, lambda float64) float64 {
	_, n := a.Dims()
	corr := make([]float64, n)
	cols := make([]int, n)
	for j := range cols {
		cols[j] = j
	}
	a.ColTMulVec(cols, r, corr)
	cInf := mat.AmaxAbs(corr)
	scale := 1.0
	if cInf > lambda && cInf > 0 {
		scale = lambda / cInf
	}
	primal := 0.5*mat.Nrm2Sq(r) + lambda*mat.Asum(x)
	// D(u) = −½‖u‖² − bᵀu with u = scale·r.
	dual := -0.5*scale*scale*mat.Nrm2Sq(r) - scale*mat.Dot(b, r)
	gap := primal - dual
	if gap < 0 && gap > -1e-12*math.Max(1, math.Abs(primal)) {
		gap = 0 // clamp roundoff-negative gaps
	}
	return gap
}
