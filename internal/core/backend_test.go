package core

import (
	"fmt"
	"testing"

	"saco/internal/datagen"
	"saco/internal/mat"
	"saco/internal/sparse"
)

// backendWorkerCounts is the equivalence grid of the acceptance
// criterion: the multicore backend must reproduce the sequential
// iterates bitwise at every width.
var backendWorkerCounts = []int{1, 2, 8}

func sameFloats(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d != %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: element %d: multicore %v != sequential %v", name, i, got[i], want[i])
		}
	}
}

// TestLassoBackendEquivalence solves each Lasso variant sequentially and
// with the multicore backend at several widths, asserting bitwise equal
// solutions, objectives and tracked histories — the shared-memory
// analogue of the paper's SA-equals-classical iterate claim.
func TestLassoBackendEquivalence(t *testing.T) {
	sparseData := datagen.Regression("beq", 5, 400, 160, 0.15, 10, 0.05)
	denseA := sparseData.AsCSR().ToDense()
	cases := []struct {
		name string
		a    ColMatrix
		opt  LassoOptions
	}{
		{"cd-classic-csc", sparseData.AsCSR().ToCSC(), LassoOptions{Lambda: 0.3, Iters: 400, Seed: 7, TrackEvery: 50}},
		{"bcd-sa-csc", sparseData.AsCSR().ToCSC(), LassoOptions{Lambda: 0.3, BlockSize: 8, Iters: 400, S: 16, Seed: 7, TrackEvery: 50}},
		{"accbcd-sa-csc", sparseData.AsCSR().ToCSC(), LassoOptions{Lambda: 0.3, BlockSize: 8, Iters: 400, S: 16, Accelerated: true, Seed: 7, TrackEvery: 50}},
		{"accbcd-sa-dense", sparse.DenseCols{A: denseA}, LassoOptions{Lambda: 0.3, BlockSize: 8, Iters: 300, S: 8, Accelerated: true, Seed: 9, TrackEvery: 50}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ref, err := Lasso(tc.a, sparseData.B, tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range backendWorkerCounts {
				opt := tc.opt
				opt.Exec = Exec{Backend: BackendMulticore, Workers: w}
				got, err := Lasso(tc.a, sparseData.B, opt)
				if err != nil {
					t.Fatal(err)
				}
				sameFloats(t, fmt.Sprintf("workers=%d X", w), got.X, ref.X)
				if got.Objective != ref.Objective {
					t.Fatalf("workers=%d: objective %v != %v", w, got.Objective, ref.Objective)
				}
				if len(got.History) != len(ref.History) {
					t.Fatalf("workers=%d: history length %d != %d", w, len(got.History), len(ref.History))
				}
				for i := range got.History {
					if got.History[i] != ref.History[i] {
						t.Fatalf("workers=%d: history[%d] %+v != %+v", w, i, got.History[i], ref.History[i])
					}
				}
			}
		})
	}
}

// TestSVMBackendEquivalence is the dual-solver counterpart: gaps, duals
// and primal vectors must agree bitwise across worker counts.
func TestSVMBackendEquivalence(t *testing.T) {
	data := datagen.Classification("beqs", 11, 300, 100, 0.2, 0.05)
	denseA := data.AsCSR().ToDense()
	cases := []struct {
		name string
		a    RowMatrix
		opt  SVMOptions
	}{
		{"svml1-classic-csr", data.AsCSR(), SVMOptions{Lambda: 1, Iters: 2000, Seed: 3, TrackEvery: 400}},
		{"svml1-sa-csr", data.AsCSR(), SVMOptions{Lambda: 1, Iters: 2000, S: 64, Seed: 3, TrackEvery: 400}},
		{"svml2-sa-csr", data.AsCSR(), SVMOptions{Lambda: 1, Loss: SVML2, Iters: 2000, S: 32, Seed: 5, TrackEvery: 400}},
		{"svml1-sa-dense", sparse.DenseRows{A: denseA}, SVMOptions{Lambda: 1, Iters: 1500, S: 32, Seed: 5, TrackEvery: 300}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ref, err := SVM(tc.a, data.B, tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range backendWorkerCounts {
				opt := tc.opt
				opt.Exec = Exec{Backend: BackendMulticore, Workers: w}
				got, err := SVM(tc.a, data.B, opt)
				if err != nil {
					t.Fatal(err)
				}
				sameFloats(t, fmt.Sprintf("workers=%d X", w), got.X, ref.X)
				sameFloats(t, fmt.Sprintf("workers=%d Alpha", w), got.Alpha, ref.Alpha)
				if got.Gap != ref.Gap || got.Primal != ref.Primal || got.Dual != ref.Dual {
					t.Fatalf("workers=%d: objectives (%v,%v,%v) != (%v,%v,%v)",
						w, got.Primal, got.Dual, got.Gap, ref.Primal, ref.Dual, ref.Gap)
				}
				for i := range got.History {
					if got.History[i] != ref.History[i] {
						t.Fatalf("workers=%d: history[%d] differs", w, i)
					}
				}
			}
		})
	}
}

// TestExecDefaults pins the knob semantics: the zero value is
// sequential, worker counts below 2 stay sequential, and matrices
// without the capability pass through unchanged.
func TestExecDefaults(t *testing.T) {
	if (Exec{}).workers() != 1 {
		t.Fatal("zero Exec must be sequential")
	}
	if (Exec{Backend: BackendMulticore, Workers: 3}).workers() != 3 {
		t.Fatal("explicit width ignored")
	}
	if w := (Exec{Backend: BackendMulticore}).workers(); w < 1 {
		t.Fatalf("default multicore width %d", w)
	}
	if BackendSequential.String() != "sequential" || BackendMulticore.String() != "multicore" {
		t.Fatal("backend names")
	}
	d := mat.NewDense(2, 2)
	pc := execCol(sparse.DenseCols{A: d}, Exec{Backend: BackendMulticore, Workers: 4})
	if pc.(sparse.DenseCols).Workers != 4 {
		t.Fatal("execCol did not apply workers")
	}
	if got := execCol(sparse.DenseCols{A: d}, Exec{}); got.(sparse.DenseCols).Workers != 0 {
		t.Fatal("sequential exec must not wrap")
	}
}
