package core

import (
	"testing"
)

func TestLassoPathBasics(t *testing.T) {
	a, b, _ := testProblem(20)
	lmax := LambdaMaxL1(a, b)
	lambdas := []float64{0.05 * lmax, 0.5 * lmax, 0.2 * lmax, 1.2 * lmax}
	path, err := LassoPath(a, b, lambdas, LassoOptions{
		BlockSize: 4, Iters: 300, Accelerated: true, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 4 {
		t.Fatalf("path length %d", len(path))
	}
	// Sorted descending in lambda.
	for i := 1; i < len(path); i++ {
		if path[i].Lambda >= path[i-1].Lambda {
			t.Fatal("path not sorted descending")
		}
	}
	// Above lambda-max the solution is exactly zero; at the smallest
	// lambda it should be the densest.
	if path[0].NNZ != 0 {
		t.Fatalf("nnz at lambda > lambda_max is %d, want 0", path[0].NNZ)
	}
	if path[len(path)-1].NNZ <= path[1].NNZ {
		t.Fatalf("sparsity did not grow along the path: %d vs %d",
			path[len(path)-1].NNZ, path[1].NNZ)
	}
	// Objectives decrease with lambda (weaker penalty, richer model).
	for i := 1; i < len(path); i++ {
		if path[i].Objective > path[i-1].Objective*1.0001 {
			t.Fatalf("objective increased along path at %d", i)
		}
	}
}

func TestLassoPathSAMatchesClassic(t *testing.T) {
	a, b, _ := testProblem(21)
	lmax := LambdaMaxL1(a, b)
	lambdas := []float64{0.3 * lmax, 0.1 * lmax}
	base := LassoOptions{BlockSize: 2, Iters: 200, Accelerated: true, Seed: 9}
	classic, err := LassoPath(a, b, lambdas, base)
	if err != nil {
		t.Fatal(err)
	}
	sa := base
	sa.S = 25
	got, err := LassoPath(a, b, lambdas, sa)
	if err != nil {
		t.Fatal(err)
	}
	for i := range classic {
		if d := relDiff(got[i].Objective, classic[i].Objective); d > 1e-9 {
			t.Fatalf("path point %d: SA rel diff %v", i, d)
		}
		if got[i].NNZ != classic[i].NNZ {
			t.Fatalf("path point %d: support size %d vs %d", i, got[i].NNZ, classic[i].NNZ)
		}
	}
}

func TestLassoPathErrors(t *testing.T) {
	a, b, _ := testProblem(22)
	if _, err := LassoPath(a, b, nil, LassoOptions{Iters: 10}); err == nil {
		t.Fatal("expected empty-lambdas error")
	}
	if _, err := LassoPath(a, b, []float64{-1}, LassoOptions{Iters: 10}); err == nil {
		t.Fatal("expected negative-lambda error")
	}
	if _, err := LassoPath(a, b, []float64{1}, LassoOptions{Iters: 0}); err == nil {
		t.Fatal("expected option validation error")
	}
}
