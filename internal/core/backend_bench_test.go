package core

import (
	"fmt"
	"runtime"
	"testing"

	"saco/internal/datagen"
)

// solveBenchWorkers is the ladder of the end-to-end solve benchmarks:
// sequential, the 4-worker acceptance point, the whole machine.
func solveBenchWorkers() []int {
	ws := []int{1, 4, runtime.GOMAXPROCS(0)}
	out := ws[:1]
	for _, w := range ws[1:] {
		if w > out[len(out)-1] {
			out = append(out, w)
		}
	}
	return out
}

// BenchmarkSolveLassoSA runs the SA-accBCD solver end to end per worker
// count. Large blocks (µ=16, s=32) make the batched sµ×sµ Gram the
// dominant cost, which is exactly the kernel the multicore backend fans
// out.
func BenchmarkSolveLassoSA(b *testing.B) {
	m, n, iters := 3000, 1200, 256
	if testing.Short() {
		m, n, iters = 800, 300, 64
	}
	data := datagen.Regression("bench", 17, m, n, 0.05, 20, 0.05)
	a := data.AsCSR().ToCSC()
	lambda := 0.1 * LambdaMaxL1(a, data.B)
	for _, w := range solveBenchWorkers() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := Lasso(a, data.B, LassoOptions{
					Lambda: lambda, BlockSize: 16, Iters: iters, S: 32,
					Accelerated: true, Seed: 2,
					Exec: Exec{Backend: BackendMulticore, Workers: w},
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLocalBackends exercises all three local backends end to end
// on one short Lasso and one short SVM solve. CI runs it at one
// iteration as the pooled-dispatch smoke gate: a regression in the
// persistent pool, the multicore kernels or the async solvers fails
// here before it can hide behind the figure harness.
func BenchmarkLocalBackends(b *testing.B) {
	m, n := 2000, 600
	if testing.Short() {
		m, n = 600, 200
	}
	reg := datagen.Regression("bench-backends", 31, m, n, 0.05, 15, 0.05)
	cls := datagen.Classification("bench-backends", 37, m, n, 0.05, 0.05)
	cols := reg.AsCSR().ToCSC()
	rows := cls.AsCSR()
	lambda := 0.1 * LambdaMaxL1(cols, reg.B)
	backends := []Exec{
		{Backend: BackendSequential},
		{Backend: BackendMulticore, Workers: 4},
		{Backend: BackendAsync, Workers: 4},
	}
	for _, e := range backends {
		b.Run("lasso/"+e.Backend.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Lasso(cols, reg.B, LassoOptions{
					Lambda: lambda, BlockSize: 8, Iters: 512, Seed: 2, Exec: e,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("svm/"+e.Backend.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := SVM(rows, cls.B, SVMOptions{
					Lambda: 1, Iters: 2048, Seed: 2, Exec: e,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSolveSVMSA runs SA dual coordinate descent end to end per
// worker count; the s×s row Gram dominates at s=128.
func BenchmarkSolveSVMSA(b *testing.B) {
	m, n, iters := 4000, 800, 1024
	if testing.Short() {
		m, n, iters = 1000, 200, 256
	}
	data := datagen.Classification("bench", 19, m, n, 0.05, 0.05)
	a := data.AsCSR()
	for _, w := range solveBenchWorkers() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := SVM(a, data.B, SVMOptions{
					Lambda: 1, Iters: iters, S: 128, Seed: 2,
					Exec: Exec{Backend: BackendMulticore, Workers: w},
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
