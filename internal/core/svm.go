package core

import (
	"saco/internal/mat"
	"saco/internal/rng"
)

// SVM trains a linear SVM by dual coordinate descent (Hsieh et al.,
// Alg. 3) or its synchronization-avoiding reformulation (Alg. 4, S > 1).
// It returns the primal weight vector x, the dual solution α, and the
// duality gap — the convergence certificate of Fig. 5.
func SVM(a RowMatrix, b []float64, opt SVMOptions) (*SVMResult, error) {
	m, _ := a.Dims()
	if err := opt.validate(m, len(b)); err != nil {
		return nil, err
	}
	if opt.Exec.Backend == BackendAsync {
		// Lock-free HOGWILD! execution: S is moot and TrackEvery/Tol are
		// skipped — see async.go for the contract.
		return svmAsync(a, b, opt)
	}
	a = execRow(a, opt.Exec)
	if opt.S > 1 {
		return svmSA(a, b, opt)
	}
	return svmClassic(a, b, opt)
}

// svmState holds the shared solver state and the bookkeeping for duality
// gap tracking and early stopping.
type svmState struct {
	a      RowMatrix
	b      []float64
	opt    *SVMOptions
	gamma  float64
	nu     float64
	alpha  []float64
	x      []float64
	res    *SVMResult
	margin []float64 // scratch for A·x in gap evaluation
}

func newSVMState(a RowMatrix, b []float64, opt *SVMOptions) *svmState {
	m, n := a.Dims()
	st := &svmState{a: a, b: b, opt: opt, res: &SVMResult{}}
	st.gamma, st.nu = opt.GammaNu()
	st.alpha = make([]float64, m)
	st.x = make([]float64, n)
	st.margin = make([]float64, m)
	if opt.Alpha0 != nil {
		copy(st.alpha, opt.Alpha0)
		// Line 2: x₀ = Σ bᵢαᵢAᵢᵀ.
		for i, ai := range st.alpha {
			if ai != 0 {
				a.RowTAxpy(i, ai*b[i], st.x)
			}
		}
	}
	return st
}

// update applies the projected-Newton coordinate step of Alg. 3 lines
// 9–15 given the gradient g and curvature eta for coordinate i, returning
// the dual step θ.
func (st *svmState) update(i int, g, eta float64) float64 {
	ai := st.alpha[i]
	// Line 9: projected gradient; zero means the coordinate is already
	// optimal under its box constraint.
	if gt := Clip(ai-g, 0, st.nu) - ai; gt == 0 {
		return 0
	}
	theta := Clip(ai-g/eta, 0, st.nu) - ai // line 11
	if theta != 0 {
		st.alpha[i] += theta                  // line 14
		st.a.RowTAxpy(i, theta*st.b[i], st.x) // line 15: x += θ·bᵢ·Aᵢᵀ
	}
	return theta
}

// trackGap records the duality gap at iteration h; it reports whether the
// tolerance (if any) has been reached.
func (st *svmState) trackGap(h int) bool {
	st.a.MulVec(st.x, st.margin)
	p, d, gap := SVMObjectives(st.x, st.alpha, st.margin, st.b, st.opt.Lambda, st.gamma, st.opt.Loss)
	st.res.History = append(st.res.History, GapPoint{Iter: h, Primal: p, Dual: d, Gap: gap})
	return st.opt.Tol > 0 && gap <= st.opt.Tol
}

// finish computes the final objectives and assembles the result.
func (st *svmState) finish(iters int) *SVMResult {
	st.a.MulVec(st.x, st.margin)
	p, d, gap := SVMObjectives(st.x, st.alpha, st.margin, st.b, st.opt.Lambda, st.gamma, st.opt.Loss)
	st.res.X = st.x
	st.res.Alpha = st.alpha
	st.res.Primal, st.res.Dual, st.res.Gap = p, d, gap
	st.res.Iters = iters
	return st.res
}

// svmClassic is Alg. 3: one dual coordinate per iteration, one reduction
// per iteration in the distributed setting (lines 7–8).
func svmClassic(a RowMatrix, b []float64, opt SVMOptions) (*SVMResult, error) {
	m, _ := a.Dims()
	st := newSVMState(a, b, &opt)
	r := rng.New(opt.Seed)
	one := make([]float64, 1)
	row := make([]int, 1)
	for h := 1; h <= opt.Iters; h++ {
		i := r.Intn(m) // line 4
		row[0] = i
		eta := a.RowNormSq(i) + st.gamma // line 7
		a.RowMulVec(row, st.x, one)
		g := b[i]*one[0] - 1 + st.gamma*st.alpha[i] // line 8
		st.update(i, g, eta)
		if opt.TrackEvery > 0 && h%opt.TrackEvery == 0 {
			if st.trackGap(h) {
				return st.finish(h), nil
			}
		}
	}
	return st.finish(opt.Iters), nil
}

// svmSA is Alg. 4: the coordinate recurrences are unrolled S steps. One
// batched computation per outer iteration produces the s×s Gram matrix
// G = YYᵀ + γI over the sampled rows and the hoisted products x'_j =
// A_j·x_sk (lines 9–10); the inner loop reconstructs each gradient via
// eq. (15) and performs communication-free updates. Reading the in-place
// updated α yields the collision sum β of eq. (14).
func svmSA(a RowMatrix, b []float64, opt SVMOptions) (*SVMResult, error) {
	m, _ := a.Dims()
	st := newSVMState(a, b, &opt)
	r := rng.New(opt.Seed)
	s := opt.S
	rows := make([]int, s)
	gram := mat.NewDense(s, s)
	xP := make([]float64, s)
	thetaStep := make([]float64, s)

	for h := 0; h < opt.Iters; {
		sb := min(s, opt.Iters-h)
		for j := 0; j < sb; j++ {
			rows[j] = r.Intn(m) // line 5 (same draws as Alg. 3)
		}
		gb := mat.NewDenseData(sb, sb, gram.Data[:sb*sb])
		// Lines 9–10: the one batched "communication" of the outer step.
		a.RowGram(rows[:sb], gb)
		for j := 0; j < sb; j++ {
			gb.Set(j, j, gb.At(j, j)+st.gamma)
		}
		a.RowMulVec(rows[:sb], st.x, xP[:sb])

		for j := 0; j < sb; j++ {
			i := rows[j]
			eta := gb.At(j, j) // line 11: η_j = diag(G)_j
			// Eq. (15): A_j·x_{sk+j−1} = x'_j + Σ_{t<j} θ_t·b_t·G_{j,t}.
			dot := xP[j]
			for t := 0; t < j; t++ {
				if thetaStep[t] != 0 {
					dot += thetaStep[t] * b[rows[t]] * gb.At(j, t)
				}
			}
			g := b[i]*dot - 1 + st.gamma*st.alpha[i]
			thetaStep[j] = st.update(i, g, eta)
			h++
			if opt.TrackEvery > 0 && h%opt.TrackEvery == 0 {
				if st.trackGap(h) {
					return st.finish(h), nil
				}
			}
		}
	}
	return st.finish(opt.Iters), nil
}
