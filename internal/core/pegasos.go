package core

import (
	"math"

	"saco/internal/rng"
)

// PegasosSVM is a primal stochastic-subgradient SVM solver
// (Shalev-Shwartz et al., "Pegasos"), included as the baseline from the
// algorithm family of P-packSVM, the prior synchronization-avoiding SVM
// the paper compares against in §II. It minimizes the same objective as
// the dual solvers, P(x) = ½‖x‖² + λ·Σ max(0, 1 − bᵢAᵢx), via the
// equivalent scaling f(x) = P(x)/(λm): regularization λp = 1/(λm),
// step ηt = 1/(λp·t), followed by projection onto the ‖x‖ ≤ 1/√λp ball.
//
// The returned result carries the primal objective trajectory; Alpha is
// nil and Dual/Gap are zero since a primal method certifies nothing —
// which is itself the practical argument for the dual CD methods the
// paper builds on.
func PegasosSVM(a RowMatrix, b []float64, opt SVMOptions) (*SVMResult, error) {
	m, n := a.Dims()
	if err := opt.validate(m, len(b)); err != nil {
		return nil, err
	}
	if opt.Exec.Backend == BackendAsync {
		// Parameter-mixing parallel SGD: independent chains, one final
		// average — see pegasosAsync for why Pegasos cannot share its
		// iterate HOGWILD-style.
		return pegasosAsync(a, b, opt)
	}
	a = execRow(a, opt.Exec)
	r := rng.New(opt.Seed)
	lambdaP := 1 / (opt.Lambda * float64(m))
	radius := 1 / math.Sqrt(lambdaP)

	x := make([]float64, n)
	margin := make([]float64, 1)
	row := make([]int, 1)
	scale := 1.0 // x is stored as scale·x to make the shrink step O(1)
	res := &SVMResult{Iters: opt.Iters}
	xnorm2 := 0.0 // running ‖x‖² of the stored (unscaled) vector

	materialize := func() {
		if scale != 1 {
			for i := range x {
				x[i] *= scale
			}
			xnorm2 *= scale * scale
			scale = 1
		}
	}

	for t := 1; t <= opt.Iters; t++ {
		i := r.Intn(m)
		row[0] = i
		a.RowMulVec(row, x, margin)
		mrg := scale * margin[0] * b[i]
		// Shrink step: x ← (1 − ηλp)·x = (1 − 1/t)·x, folded into scale.
		scale *= 1 - 1/float64(t)
		if scale == 0 { // t == 1
			scale = 1
			for j := range x {
				x[j] = 0
			}
			xnorm2 = 0
		}
		if mrg < 1 {
			// Subgradient step on the hinge term: x += ηt·bᵢ·Aᵢ.
			eta := 1 / (lambdaP * float64(t))
			materialize()
			// Update running norm before and after via the row's change.
			before := xnorm2
			var rowSq, rowDot float64
			a.RowMulVec(row, x, margin)
			rowDot = margin[0]
			rowSq = a.RowNormSq(i)
			a.RowTAxpy(i, eta*b[i], x)
			xnorm2 = before + 2*eta*b[i]*rowDot + eta*eta*rowSq
		}
		// Projection onto the ball of radius 1/√λp.
		nrm := math.Sqrt(math.Max(0, xnorm2)) * scale
		if nrm > radius {
			scale *= radius / nrm
		}
		if opt.TrackEvery > 0 && t%opt.TrackEvery == 0 {
			materialize()
			p := pegasosPrimal(a, b, x, opt.Lambda, opt.Loss)
			res.History = append(res.History, GapPoint{Iter: t, Primal: p})
		}
	}
	materialize()
	res.X = x
	res.Primal = pegasosPrimal(a, b, x, opt.Lambda, opt.Loss)
	return res, nil
}

func pegasosPrimal(a RowMatrix, b, x []float64, lambda float64, loss SVMLoss) float64 {
	m, _ := a.Dims()
	margins := make([]float64, m)
	a.MulVec(x, margins)
	p, _, _ := SVMObjectives(x, make([]float64, m), margins, b, lambda, 0, loss)
	return p
}
