package core

import (
	"math"

	"saco/internal/mat"
	"saco/internal/rng"
)

// Lasso solves min_x ½‖Ax−b‖² + g(x) with randomized (block) coordinate
// descent. Options select plain vs accelerated (Alg. 1) and classical vs
// synchronization-avoiding (Alg. 2, S > 1) variants; all four share the
// coordinate-sampling and step-size rules so that SA and classical runs
// with equal seeds produce the same iterate sequence in exact arithmetic.
func Lasso(a ColMatrix, b []float64, opt LassoOptions) (*LassoResult, error) {
	m, n := a.Dims()
	if err := opt.validate(m, n, len(b)); err != nil {
		return nil, err
	}
	if opt.Exec.Backend == BackendAsync {
		// Lock-free HOGWILD! execution: S is moot (there is no
		// synchronization left to avoid) and TrackEvery is skipped — see
		// async.go for the contract.
		return lassoAsync(a, b, opt)
	}
	a = execCol(a, opt.Exec)
	if opt.Accelerated {
		if opt.S > 1 {
			return lassoAccSA(a, b, opt)
		}
		return lassoAcc(a, b, opt)
	}
	if opt.S > 1 {
		return lassoPlainSA(a, b, opt)
	}
	return lassoPlain(a, b, opt)
}

// BlockSampler yields the coordinate block of each iteration: either µ
// uniform draws without replacement or one whole group. It is exported
// for package dist, which must reproduce the exact sampling sequence of
// the sequential solvers (the replicated-seed discipline).
type BlockSampler struct {
	r      *rng.Stream
	n, mu  int
	groups [][]int
}

// NewBlockSampler builds the sampler for the given options and feature
// count.
func NewBlockSampler(opt *LassoOptions, n int) *BlockSampler {
	return &BlockSampler{r: rng.New(opt.Seed), n: n, mu: opt.mu(), groups: opt.Groups}
}

// Stream exposes the sampler's generator so checkpoint codecs can
// snapshot and restore the sampling position (rng.State) — a restarted
// rank must resume the exact draw sequence for the replicated-seed
// discipline to survive the restart.
func (s *BlockSampler) Stream() *rng.Stream { return s.r }

// Next returns the next sampled block (Alg. 1 line 5 / Alg. 2 line 6).
func (s *BlockSampler) Next() []int {
	if s.groups != nil {
		return s.groups[s.r.Intn(len(s.groups))]
	}
	return s.r.SampleK(s.n, s.mu)
}

// NumBlocks returns q, the block count of the acceleration schedule
// (Alg. 1 line 3: q = ⌈n/µ⌉, or the number of groups).
func (s *BlockSampler) NumBlocks() int {
	if s.groups != nil {
		return len(s.groups)
	}
	return (s.n + s.mu - 1) / s.mu
}

// Theta0 returns the initial acceleration parameter (Alg. 1 line 2:
// θ₀ = µ/n; 1/#groups under group sampling).
func (s *BlockSampler) Theta0() float64 {
	if s.groups != nil {
		return 1 / float64(len(s.groups))
	}
	return float64(s.mu) / float64(s.n)
}

// MaxBlock returns the largest block size the solver must buffer for.
func (s *BlockSampler) MaxBlock() int {
	if s.groups == nil {
		return s.mu
	}
	m := 0
	for _, g := range s.groups {
		if len(g) > m {
			m = len(g)
		}
	}
	return m
}

// BigEta is the step size used when a sampled block has only zero
// columns (λmax = 0): the proximal step with an effectively infinite step
// drives the block to the penalty's minimizer without producing NaNs from
// ∞·0 products.
const BigEta = 1e300

// lassoPlain is classical (non-accelerated) CD/BCD: proximal gradient on
// the sampled block with the optimal step 1/λmax(A_IᵀA_I), maintaining
// the residual r = A·x − b.
func lassoPlain(a ColMatrix, b []float64, opt LassoOptions) (*LassoResult, error) {
	m, n := a.Dims()
	g := opt.Regularizer()
	smp := NewBlockSampler(&opt, n)

	x := make([]float64, n)
	if opt.X0 != nil {
		copy(x, opt.X0)
	}
	r := make([]float64, m)
	a.MulVec(x, r)
	mat.Axpy(-1, b, r) // r = A·x0 − b

	muMax := smp.MaxBlock()
	gram := mat.NewDense(muMax, muMax)
	grad := make([]float64, muMax)
	w := make([]float64, muMax)
	gv := make([]float64, muMax)
	delta := make([]float64, muMax)

	res := &LassoResult{Iters: opt.Iters}
	for h := 1; h <= opt.Iters; h++ {
		idx := smp.Next()
		mu := len(idx)
		gb := mat.NewDenseData(mu, mu, gram.Data[:mu*mu])
		a.ColGram(idx, gb)
		v := blockLargestEig(gb)
		a.ColTMulVec(idx, r, grad[:mu])
		mat.Gather(w[:mu], x, idx)
		var eta float64
		if v > 0 {
			eta = 1 / v
			for k := 0; k < mu; k++ {
				gv[k] = w[k] - eta*grad[k]
			}
		} else {
			eta = BigEta
			copy(gv[:mu], w[:mu])
		}
		g.Prox(eta, gv[:mu])
		for k := 0; k < mu; k++ {
			delta[k] = gv[k] - w[k]
		}
		mat.ScatterAdd(x, delta[:mu], idx)
		a.ColMulAdd(idx, delta[:mu], r)
		if opt.TrackEvery > 0 && h%opt.TrackEvery == 0 {
			res.History = append(res.History, TracePoint{Iter: h, Value: LassoObjective(r, x, g)})
		}
	}
	res.X = x
	res.Objective = LassoObjective(r, x, g)
	return res, nil
}

// lassoAcc is Alg. 1: accelerated (acc)BCD with the Fercoq–Richtárik
// θ-schedule. State: z, y ∈ Rⁿ and their images ỹ = A·y, z̃ = A·z − b.
func lassoAcc(a ColMatrix, b []float64, opt LassoOptions) (*LassoResult, error) {
	m, n := a.Dims()
	g := opt.Regularizer()
	smp := NewBlockSampler(&opt, n)
	q := float64(smp.NumBlocks())
	theta := smp.Theta0() // line 2

	z := make([]float64, n)
	if opt.X0 != nil {
		copy(z, opt.X0) // x₀ = θ₀²·y₀ + z₀ with y₀ = 0
	}
	y := make([]float64, n)
	zt := make([]float64, m) // z̃ = A·z − b
	a.MulVec(z, zt)
	mat.Axpy(-1, b, zt)
	yt := make([]float64, m) // ỹ = A·y = 0

	muMax := smp.MaxBlock()
	gram := mat.NewDense(muMax, muMax)
	ry := make([]float64, muMax)
	rz := make([]float64, muMax)
	w := make([]float64, muMax)
	gv := make([]float64, muMax)
	delta := make([]float64, muMax)
	scaled := make([]float64, muMax)

	res := &LassoResult{Iters: opt.Iters}
	for h := 1; h <= opt.Iters; h++ {
		idx := smp.Next()
		mu := len(idx)
		gb := mat.NewDenseData(mu, mu, gram.Data[:mu*mu])
		a.ColGram(idx, gb) // line 8
		v := blockLargestEig(gb)

		// line 9: r = A_hᵀ(θ²ỹ + z̃), assembled from two products so the
		// m-vector θ²ỹ + z̃ is never materialized.
		a.ColTMulVec(idx, yt, ry[:mu])
		a.ColTMulVec(idx, zt, rz[:mu])
		th2 := theta * theta
		mat.Gather(w[:mu], z, idx)
		var eta float64
		if v > 0 {
			eta = 1 / (q * theta * v) // line 11
			for k := 0; k < mu; k++ {
				gv[k] = w[k] - eta*(th2*ry[k]+rz[k]) // line 12
			}
		} else {
			eta = BigEta
			copy(gv[:mu], w[:mu])
		}
		g.Prox(eta, gv[:mu]) // line 13 (soft threshold for L1)
		for k := 0; k < mu; k++ {
			delta[k] = gv[k] - w[k]
		}

		// lines 14–17: vector updates.
		d := (1 - q*theta) / th2
		mat.ScatterAdd(z, delta[:mu], idx)
		a.ColMulAdd(idx, delta[:mu], zt)
		mat.ScatterAxpy(-d, y, delta[:mu], idx)
		for k := 0; k < mu; k++ {
			scaled[k] = -d * delta[k]
		}
		a.ColMulAdd(idx, scaled[:mu], yt)

		// line 18: θ advance.
		theta = NextTheta(theta)

		if opt.TrackEvery > 0 && h%opt.TrackEvery == 0 {
			res.History = append(res.History, TracePoint{Iter: h, Value: accObjective(theta, y, z, yt, zt, g)})
		}
	}
	res.X = accSolution(theta, y, z)
	rfinal := make([]float64, m)
	accResidual(theta, yt, zt, rfinal)
	res.Objective = LassoObjective(rfinal, res.X, g)
	return res, nil
}

// blockLargestEig returns λmax of the µ×µ Gram block (Alg. 1 line 10),
// with the scalar fast path for CD.
func blockLargestEig(g *mat.Dense) float64 {
	if g.R == 1 {
		return g.Data[0]
	}
	return mat.LargestEigSym(g)
}

// NextTheta advances the acceleration parameter (Alg. 1 line 18):
// θ⁺ = (√(θ⁴+4θ²) − θ²)/2.
func NextTheta(theta float64) float64 {
	t2 := theta * theta
	return (math.Sqrt(t2*t2+4*t2) - t2) / 2
}

// accSolution reconstructs x = θ²·y + z (Alg. 1 line 19).
func accSolution(theta float64, y, z []float64) []float64 {
	x := make([]float64, len(z))
	th2 := theta * theta
	for i := range x {
		x[i] = th2*y[i] + z[i]
	}
	return x
}

// accResidual writes A·x − b = θ²·ỹ + z̃ into dst.
func accResidual(theta float64, yt, zt, dst []float64) {
	th2 := theta * theta
	for i := range dst {
		dst[i] = th2*yt[i] + zt[i]
	}
}

// accObjective evaluates the implicit iterate's objective without
// disturbing solver state.
func accObjective(theta float64, y, z, yt, zt []float64, g Regularizer) float64 {
	x := accSolution(theta, y, z)
	r := make([]float64, len(yt))
	accResidual(theta, yt, zt, r)
	return LassoObjective(r, x, g)
}
