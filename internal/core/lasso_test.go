package core

import (
	"math"
	"testing"

	"saco/internal/datagen"
	"saco/internal/mat"
	"saco/internal/sparse"
)

// testProblem builds a small planted Lasso problem and a reasonable λ.
func testProblem(seed uint64) (ColMatrix, []float64, float64) {
	d := datagen.Regression("test", seed, 120, 80, 0.15, 6, 0.02)
	a := d.CSR.ToCSC()
	lambda := 0.1 * LambdaMaxL1(a, d.B)
	return a, d.B, lambda
}

func relDiff(a, b float64) float64 {
	return math.Abs(a-b) / math.Max(1e-300, math.Max(math.Abs(a), math.Abs(b)))
}

func TestLassoValidation(t *testing.T) {
	a, b, lambda := testProblem(1)
	bad := []LassoOptions{
		{Lambda: lambda, Iters: 0},
		{Lambda: -1, Iters: 10},
		{Lambda: lambda, Iters: 10, BlockSize: 1000},
		{Lambda: lambda, Iters: 10, X0: make([]float64, 3)},
		{Lambda: lambda, Iters: 10, Groups: [][]int{{}}},
		{Lambda: lambda, Iters: 10, Groups: [][]int{{0}, {0}}},
		{Lambda: lambda, Iters: 10, Groups: [][]int{{99999}}},
	}
	for i, opt := range bad {
		if _, err := Lasso(a, b, opt); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
	if _, err := Lasso(a, b[:5], LassoOptions{Lambda: lambda, Iters: 10}); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestLassoConvergesAllVariants(t *testing.T) {
	a, b, lambda := testProblem(2)
	start := 0.5 * mat.Nrm2Sq(b) // objective at x = 0
	for _, cfg := range []struct {
		name string
		opt  LassoOptions
	}{
		{"CD", LassoOptions{Lambda: lambda, Iters: 800, BlockSize: 1, Seed: 3}},
		{"BCD", LassoOptions{Lambda: lambda, Iters: 400, BlockSize: 8, Seed: 3}},
		{"accCD", LassoOptions{Lambda: lambda, Iters: 800, BlockSize: 1, Accelerated: true, Seed: 3}},
		{"accBCD", LassoOptions{Lambda: lambda, Iters: 400, BlockSize: 8, Accelerated: true, Seed: 3}},
		{"SA-CD", LassoOptions{Lambda: lambda, Iters: 800, BlockSize: 1, S: 16, Seed: 3}},
		{"SA-accBCD", LassoOptions{Lambda: lambda, Iters: 400, BlockSize: 8, S: 16, Accelerated: true, Seed: 3}},
	} {
		res, err := Lasso(a, b, cfg.opt)
		if err != nil {
			t.Fatalf("%s: %v", cfg.name, err)
		}
		if math.IsNaN(res.Objective) || res.Objective >= 0.5*start {
			t.Fatalf("%s: objective %v did not decrease well below start %v", cfg.name, res.Objective, start)
		}
		if res.NNZ() == 0 || res.NNZ() == len(res.X) {
			t.Fatalf("%s: solution sparsity degenerate (nnz=%d)", cfg.name, res.NNZ())
		}
	}
}

// TestSAEquivalence is the paper's central numerical claim (Fig. 2, Table
// III): the SA rearrangement reproduces the classical iterate sequence up
// to roundoff, for every variant and for s values up to (and beyond) the
// iteration count.
func TestSAEquivalence(t *testing.T) {
	a, b, lambda := testProblem(4)
	for _, acc := range []bool{false, true} {
		for _, mu := range []int{1, 4} {
			base := LassoOptions{Lambda: lambda, Iters: 300, BlockSize: mu, Accelerated: acc, Seed: 7, TrackEvery: 50}
			ref, err := Lasso(a, b, base)
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range []int{2, 7, 64, 1000} {
				opt := base
				opt.S = s
				got, err := Lasso(a, b, opt)
				if err != nil {
					t.Fatal(err)
				}
				if d := relDiff(got.Objective, ref.Objective); d > 1e-9 {
					t.Fatalf("acc=%v µ=%d s=%d: objective rel diff %v", acc, mu, s, d)
				}
				for i := range ref.X {
					if math.Abs(got.X[i]-ref.X[i]) > 1e-7*(1+math.Abs(ref.X[i])) {
						t.Fatalf("acc=%v µ=%d s=%d: x[%d] = %v vs %v", acc, mu, s, i, got.X[i], ref.X[i])
					}
				}
				for k := range ref.History {
					if d := relDiff(got.History[k].Value, ref.History[k].Value); d > 1e-8 {
						t.Fatalf("acc=%v µ=%d s=%d: history[%d] rel diff %v", acc, mu, s, k, d)
					}
				}
			}
		}
	}
}

// TestSAEquivalenceMachinePrecision reproduces Table III: final relative
// objective error at machine-precision scale for a long run.
func TestSAEquivalenceMachinePrecision(t *testing.T) {
	a, b, lambda := testProblem(5)
	base := LassoOptions{Lambda: lambda, Iters: 2000, BlockSize: 1, Accelerated: true, Seed: 11}
	ref, err := Lasso(a, b, base)
	if err != nil {
		t.Fatal(err)
	}
	sa := base
	sa.S = 1000
	got, err := Lasso(a, b, sa)
	if err != nil {
		t.Fatal(err)
	}
	if d := relDiff(got.Objective, ref.Objective); d > 1e-16 {
		// Table III reports errors of order 1e-16–1e-17; allow a couple of
		// decades of slack for a different platform.
		if d > 1e-11 {
			t.Fatalf("final relative objective error %v far above machine precision", d)
		}
		t.Logf("final relative objective error %.3e (Table III scale: ~1e-16)", d)
	}
}

// Plain (non-accelerated) proximal BCD with the exact block Lipschitz
// step is a descent method: the objective never increases.
func TestPlainBCDMonotone(t *testing.T) {
	a, b, lambda := testProblem(6)
	opt := LassoOptions{Lambda: lambda, Iters: 300, BlockSize: 4, Seed: 13, TrackEvery: 1}
	res, err := Lasso(a, b, opt)
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for _, p := range res.History {
		if p.Value > prev*(1+1e-12) {
			t.Fatalf("objective increased at iter %d: %v -> %v", p.Iter, prev, p.Value)
		}
		prev = p.Value
	}
}

func TestLambdaMaxGivesZeroSolution(t *testing.T) {
	a, b, _ := testProblem(7)
	lambda := 1.001 * LambdaMaxL1(a, b)
	for _, acc := range []bool{false, true} {
		res, err := Lasso(a, b, LassoOptions{Lambda: lambda, Iters: 200, BlockSize: 2, Accelerated: acc, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range res.X {
			if v != 0 {
				t.Fatalf("acc=%v: x[%d] = %v, want exact 0 at λ > λmax", acc, i, v)
			}
		}
	}
}

func TestZeroColumnsHandled(t *testing.T) {
	// A matrix whose second half of columns is entirely zero: sampled
	// blocks regularly hit λmax = 0 and must not produce NaNs.
	coo := sparse.NewCOO(30, 20)
	for i := 0; i < 30; i++ {
		coo.Add(i, i%10, 1+float64(i%3))
	}
	a := coo.ToCSC()
	b := make([]float64, 30)
	for i := range b {
		b[i] = float64(i%5) - 2
	}
	for _, acc := range []bool{false, true} {
		for _, s := range []int{1, 4} {
			res, err := Lasso(a, b, LassoOptions{Lambda: 0.01, Iters: 150, BlockSize: 3, Accelerated: acc, S: s, Seed: 2})
			if err != nil {
				t.Fatal(err)
			}
			if math.IsNaN(res.Objective) {
				t.Fatalf("acc=%v s=%d: NaN objective", acc, s)
			}
			for j := 10; j < 20; j++ {
				if res.X[j] != 0 {
					t.Fatalf("acc=%v s=%d: zero-column coordinate %d = %v", acc, s, j, res.X[j])
				}
			}
		}
	}
}

func TestGroupLassoSolver(t *testing.T) {
	d := datagen.Regression("test", 8, 100, 24, 0.3, 4, 0.02)
	a := d.CSR.ToCSC()
	groups := make([][]int, 6)
	for g := range groups {
		for j := 0; j < 4; j++ {
			groups[g] = append(groups[g], g*4+j)
		}
	}
	lambda := 0.2 * LambdaMaxL1(a, d.B)
	opt := LassoOptions{
		Reg:         GroupLasso{Lambda: lambda, Groups: groups},
		Groups:      groups,
		Iters:       400,
		Accelerated: true,
		Seed:        5,
	}
	res, err := Lasso(a, d.B, opt)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.Objective) {
		t.Fatal("NaN objective")
	}
	// Group sparsity: every group is either all-zero or not; at least one
	// group should be zeroed at this λ, and the solution must be nontrivial.
	zeroGroups := 0
	for _, g := range groups {
		nz := 0
		for _, j := range g {
			if res.X[j] != 0 {
				nz++
			}
		}
		if nz == 0 {
			zeroGroups++
		}
	}
	if res.NNZ() == 0 {
		t.Fatal("trivial solution")
	}
	if zeroGroups == 0 {
		t.Log("no group fully zeroed; group-lasso still converged")
	}
	// SA equivalence under group sampling too.
	sa := opt
	sa.S = 16
	got, err := Lasso(a, d.B, sa)
	if err != nil {
		t.Fatal(err)
	}
	if d := relDiff(got.Objective, res.Objective); d > 1e-9 {
		t.Fatalf("group SA rel diff %v", d)
	}
}

func TestElasticNetSolver(t *testing.T) {
	a, b, lambda := testProblem(9)
	opt := LassoOptions{
		Reg:         ElasticNet{Lambda: lambda, Alpha: 0.7},
		Iters:       400,
		BlockSize:   4,
		Accelerated: true,
		Seed:        6,
	}
	res, err := Lasso(a, b, opt)
	if err != nil {
		t.Fatal(err)
	}
	start := 0.5 * mat.Nrm2Sq(b)
	if res.Objective >= start {
		t.Fatalf("elastic net did not descend: %v vs %v", res.Objective, start)
	}
	sa := opt
	sa.S = 32
	got, err := Lasso(a, b, sa)
	if err != nil {
		t.Fatal(err)
	}
	if d := relDiff(got.Objective, res.Objective); d > 1e-9 {
		t.Fatalf("elastic net SA rel diff %v", d)
	}
}

func TestWarmStart(t *testing.T) {
	a, b, lambda := testProblem(10)
	long, err := Lasso(a, b, LassoOptions{Lambda: lambda, Iters: 400, BlockSize: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	short, err := Lasso(a, b, LassoOptions{Lambda: lambda, Iters: 50, BlockSize: 4, Seed: 1, X0: long.X})
	if err != nil {
		t.Fatal(err)
	}
	// Warm-started from a good point, the objective must stay comparable.
	if short.Objective > long.Objective*1.05+1e-9 {
		t.Fatalf("warm start regressed: %v vs %v", short.Objective, long.Objective)
	}
}

func TestDenseColsPath(t *testing.T) {
	d := datagen.DenseRegression("test", 11, 60, 40, 4, 0.05)
	a := sparse.DenseCols{A: d.Dense}
	lambda := 0.1 * LambdaMaxL1(a, d.B)
	ref, err := Lasso(a, d.B, LassoOptions{Lambda: lambda, Iters: 200, BlockSize: 4, Accelerated: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sa, err := Lasso(a, d.B, LassoOptions{Lambda: lambda, Iters: 200, BlockSize: 4, Accelerated: true, Seed: 3, S: 25})
	if err != nil {
		t.Fatal(err)
	}
	if d := relDiff(sa.Objective, ref.Objective); d > 1e-9 {
		t.Fatalf("dense SA rel diff %v", d)
	}
}

func TestAcceleratedBeatsPlainOnIterations(t *testing.T) {
	// The paper's Fig. 2/3 observation: accelerated methods converge
	// faster per iteration. Compare objectives after the same iteration
	// budget on a problem hard enough to show the gap.
	d := datagen.Regression("test", 12, 300, 200, 0.1, 10, 0.01)
	a := d.CSR.ToCSC()
	lambda := 0.05 * LambdaMaxL1(a, d.B)
	iters := 1500
	plain, err := Lasso(a, d.B, LassoOptions{Lambda: lambda, Iters: iters, BlockSize: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	acc, err := Lasso(a, d.B, LassoOptions{Lambda: lambda, Iters: iters, BlockSize: 4, Accelerated: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if acc.Objective > plain.Objective*1.02 {
		t.Fatalf("accelerated (%v) not competitive with plain (%v)", acc.Objective, plain.Objective)
	}
}

func TestHistoryTracking(t *testing.T) {
	a, b, lambda := testProblem(13)
	res, err := Lasso(a, b, LassoOptions{Lambda: lambda, Iters: 100, BlockSize: 2, Seed: 1, TrackEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != 10 {
		t.Fatalf("history length %d, want 10", len(res.History))
	}
	for k, p := range res.History {
		if p.Iter != (k+1)*10 {
			t.Fatalf("history[%d].Iter = %d", k, p.Iter)
		}
	}
	if res.Iters != 100 {
		t.Fatalf("Iters = %d", res.Iters)
	}
}
