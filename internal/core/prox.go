package core

import "math"

// Regularizer is a convex penalty g with a computable proximal operator,
// the interface the paper requires of its regularization functions (§I:
// "they hold more generally for other regularization functions with
// well-defined proximal operators").
type Regularizer interface {
	// Prox overwrites v with prox_{eta·g}(v) = argmin_u eta·g(u) + ½‖u−v‖².
	// Solvers call it on sampled subvectors, so g must be separable across
	// the sampled coordinates (true for L1 and elastic net; group lasso is
	// applied one whole group at a time, see GroupLasso).
	Prox(eta float64, v []float64)
	// Value returns g(x) for a full-length solution vector.
	Value(x []float64) float64
	// Name identifies the penalty in reports.
	Name() string
}

// SoftThreshold applies the scalar soft-thresholding operator of eq. (2):
// S_a(v) = sign(v)·max(|v|−a, 0).
func SoftThreshold(a, v float64) float64 {
	switch {
	case v > a:
		return v - a
	case v < -a:
		return v + a
	default:
		return 0
	}
}

// L1 is the Lasso penalty g(x) = λ‖x‖₁.
type L1 struct {
	Lambda float64
}

// Prox applies elementwise soft thresholding with threshold eta·λ.
func (r L1) Prox(eta float64, v []float64) {
	a := eta * r.Lambda
	for i, x := range v {
		v[i] = SoftThreshold(a, x)
	}
}

// Value returns λ‖x‖₁.
func (r L1) Value(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += math.Abs(v)
	}
	return r.Lambda * s
}

// Name returns "l1".
func (L1) Name() string { return "l1" }

// ElasticNet is g(x) = λ·(α‖x‖₁ + (1−α)/2·‖x‖₂²), the paper's second
// sparsity-inducing penalty. α = 1 degenerates to L1, α = 0 to ridge.
type ElasticNet struct {
	Lambda float64
	Alpha  float64
}

// Prox applies the elastic-net proximal operator
// S_{ηλα}(v) / (1 + ηλ(1−α)) elementwise.
func (r ElasticNet) Prox(eta float64, v []float64) {
	a := eta * r.Lambda * r.Alpha
	den := 1 + eta*r.Lambda*(1-r.Alpha)
	for i, x := range v {
		v[i] = SoftThreshold(a, x) / den
	}
}

// Value returns λ(α‖x‖₁ + (1−α)/2‖x‖₂²).
func (r ElasticNet) Value(x []float64) float64 {
	var l1, l2 float64
	for _, v := range x {
		l1 += math.Abs(v)
		l2 += v * v
	}
	return r.Lambda * (r.Alpha*l1 + (1-r.Alpha)/2*l2)
}

// Name returns "elastic-net".
func (ElasticNet) Name() string { return "elastic-net" }

// GroupLasso is g(x) = λ·Σ_g ‖x̃_g‖₂ over disjoint coordinate groups. The
// solvers pair it with group sampling (LassoOptions.Groups): each
// iteration updates one whole group, and Prox receives exactly that
// group's subvector, on which the penalty is a single Euclidean norm with
// the closed-form block soft-threshold.
type GroupLasso struct {
	Lambda float64
	Groups [][]int
}

// Prox applies the block soft-threshold v·max(0, 1 − ηλ/‖v‖) treating v as
// one group.
func (r GroupLasso) Prox(eta float64, v []float64) {
	var nrm float64
	for _, x := range v {
		nrm += x * x
	}
	nrm = math.Sqrt(nrm)
	if nrm == 0 {
		return
	}
	scale := 1 - eta*r.Lambda/nrm
	if scale <= 0 {
		for i := range v {
			v[i] = 0
		}
		return
	}
	for i := range v {
		v[i] *= scale
	}
}

// Value returns λ·Σ_g ‖x_g‖₂.
func (r GroupLasso) Value(x []float64) float64 {
	var s float64
	for _, g := range r.Groups {
		var nrm float64
		for _, j := range g {
			nrm += x[j] * x[j]
		}
		s += math.Sqrt(nrm)
	}
	return r.Lambda * s
}

// Name returns "group-lasso".
func (GroupLasso) Name() string { return "group-lasso" }
