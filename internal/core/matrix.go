package core

import "saco/internal/mat"

// ColMatrix is the access pattern the Lasso-family solvers need: sampling
// columns, forming their Gram matrices and products against residual
// vectors. sparse.CSC and sparse.DenseCols implement it.
type ColMatrix interface {
	// Dims returns (rows m, columns n).
	Dims() (int, int)
	// ColNormSq returns ‖A_:j‖².
	ColNormSq(j int) float64
	// ColTMulVec computes dst[k] = A_:cols[k] · v (dst = A_Sᵀ·v).
	ColTMulVec(cols []int, v []float64, dst []float64)
	// ColMulAdd computes v += A_S·coef.
	ColMulAdd(cols []int, coef []float64, v []float64)
	// ColGram computes dst = A_SᵀA_S (|S|×|S|).
	ColGram(cols []int, dst *mat.Dense)
	// MulVec computes y = A·x.
	MulVec(x, y []float64)
}

// RowMatrix is the access pattern the dual coordinate-descent SVM solvers
// need: sampling rows, their Gram matrices, and rank-one primal updates.
// sparse.CSR and sparse.DenseRows implement it.
type RowMatrix interface {
	// Dims returns (rows m, columns n).
	Dims() (int, int)
	// RowNormSq returns ‖A_i‖².
	RowNormSq(i int) float64
	// RowMulVec computes dst[k] = A_rows[k] · x.
	RowMulVec(rows []int, x []float64, dst []float64)
	// RowTAxpy performs x += alpha·A_rowᵀ.
	RowTAxpy(row int, alpha float64, x []float64)
	// RowGram computes dst = A_R·A_Rᵀ (|R|×|R|).
	RowGram(rows []int, dst *mat.Dense)
	// MulVec computes y = A·x.
	MulVec(x, y []float64)
}
