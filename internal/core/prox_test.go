package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSoftThresholdKnown(t *testing.T) {
	cases := []struct{ a, v, want float64 }{
		{1, 3, 2},
		{1, -3, -2},
		{1, 0.5, 0},
		{1, -0.5, 0},
		{0, 2, 2},
		{2, 2, 0},
	}
	for _, c := range cases {
		if got := SoftThreshold(c.a, c.v); got != c.want {
			t.Fatalf("S_%v(%v) = %v, want %v", c.a, c.v, got, c.want)
		}
	}
}

// Properties of the soft-thresholding operator: shrinkage (|S(v)| <= |v|),
// sign preservation, and 1-Lipschitz continuity (nonexpansiveness).
func TestSoftThresholdProperties(t *testing.T) {
	f := func(aRaw, v, w float64) bool {
		if math.IsNaN(aRaw) || math.IsInf(aRaw, 0) || math.IsNaN(v) || math.IsInf(v, 0) || math.IsNaN(w) || math.IsInf(w, 0) {
			return true
		}
		a := math.Abs(math.Mod(aRaw, 1e6))
		v = math.Mod(v, 1e6)
		w = math.Mod(w, 1e6)
		sv, sw := SoftThreshold(a, v), SoftThreshold(a, w)
		if math.Abs(sv) > math.Abs(v) {
			return false
		}
		if sv*v < 0 {
			return false
		}
		return math.Abs(sv-sw) <= math.Abs(v-w)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestL1ProxAndValue(t *testing.T) {
	r := L1{Lambda: 2}
	v := []float64{3, -1, 0.5}
	r.Prox(0.5, v) // threshold 1
	want := []float64{2, 0, 0}
	for i := range want {
		if v[i] != want[i] {
			t.Fatalf("prox[%d] = %v, want %v", i, v[i], want[i])
		}
	}
	if got := r.Value([]float64{1, -2}); got != 6 {
		t.Fatalf("Value = %v, want 6", got)
	}
	if r.Name() != "l1" {
		t.Fatal("name")
	}
}

func TestElasticNetDegeneratesToL1(t *testing.T) {
	en := ElasticNet{Lambda: 1.5, Alpha: 1}
	l1 := L1{Lambda: 1.5}
	v1 := []float64{2, -3, 0.1}
	v2 := append([]float64(nil), v1...)
	en.Prox(0.7, v1)
	l1.Prox(0.7, v2)
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatalf("EN(α=1) prox differs from L1 at %d", i)
		}
	}
	if math.Abs(en.Value([]float64{1, -1})-l1.Value([]float64{1, -1})) > 1e-15 {
		t.Fatal("EN(α=1) value differs from L1")
	}
}

func TestElasticNetRidgeShrinks(t *testing.T) {
	en := ElasticNet{Lambda: 1, Alpha: 0} // pure ridge: v/(1+η)
	v := []float64{2}
	en.Prox(1, v)
	if v[0] != 1 {
		t.Fatalf("ridge prox = %v, want 1", v[0])
	}
	if en.Name() != "elastic-net" {
		t.Fatal("name")
	}
}

// Property: any prox is a minimizer, so eta·g(p) + ½‖p−v‖² <= eta·g(u) +
// ½‖u−v‖² for random probes u.
func TestProxOptimalityProperty(t *testing.T) {
	regs := []Regularizer{
		L1{Lambda: 0.8},
		ElasticNet{Lambda: 0.8, Alpha: 0.5},
	}
	f := func(seed int64, etaRaw float64) bool {
		if math.IsNaN(etaRaw) || math.IsInf(etaRaw, 0) {
			return true
		}
		eta := 0.01 + math.Abs(math.Mod(etaRaw, 10))
		s := seed
		next := func() float64 {
			s = s*6364136223846793005 + 1442695040888963407
			return float64(int16(s>>32)) / 1e3
		}
		for _, g := range regs {
			v := []float64{next(), next(), next()}
			p := append([]float64(nil), v...)
			g.Prox(eta, p)
			obj := func(u []float64) float64 {
				var d float64
				for i := range u {
					d += (u[i] - v[i]) * (u[i] - v[i])
				}
				return eta*g.Value(u) + d/2
			}
			pObj := obj(p)
			for probe := 0; probe < 8; probe++ {
				u := []float64{next(), next(), next()}
				if obj(u) < pObj-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestGroupLassoProx(t *testing.T) {
	g := GroupLasso{Lambda: 1, Groups: [][]int{{0, 1}, {2}}}
	// ‖v‖ = 5, scale = 1 − η·λ/5.
	v := []float64{3, 4}
	g.Prox(2.5, v)
	if math.Abs(v[0]-1.5) > 1e-14 || math.Abs(v[1]-2) > 1e-14 {
		t.Fatalf("group prox = %v", v)
	}
	// Shrink to zero when the threshold exceeds the norm.
	v = []float64{0.3, 0.4}
	g.Prox(1, v)
	if v[0] != 0 || v[1] != 0 {
		t.Fatalf("group prox should zero small blocks, got %v", v)
	}
	// Zero vector fixed point.
	v = []float64{0, 0}
	g.Prox(1, v)
	if v[0] != 0 || v[1] != 0 {
		t.Fatal("zero not fixed")
	}
	if got := g.Value([]float64{3, 4, -2}); math.Abs(got-7) > 1e-14 {
		t.Fatalf("group value = %v, want 7", got)
	}
	if g.Name() != "group-lasso" {
		t.Fatal("name")
	}
}
