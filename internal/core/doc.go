// Package core implements the paper's primary contribution in sequential
// form: randomized (block) coordinate descent solvers for sparse proximal
// least squares (Lasso-family) and dual linear SVM, together with their
// synchronization-avoiding (SA) reformulations.
//
// The four Lasso-side methods follow the paper's naming:
//
//	CD      — coordinate descent, µ = 1             (LassoOptions{BlockSize: 1})
//	BCD     — block coordinate descent, µ > 1
//	accCD   — accelerated CD (Nesterov / Fercoq–Richtárik), Alg. 1 with µ = 1
//	accBCD  — accelerated BCD, Alg. 1
//
// and each gains an SA variant (Alg. 2) by setting S > 1: the recurrences
// are unrolled S steps, every distributed reduction is hoisted into one
// batched (S·µ)×(S·µ) Gram computation, and the inner loop applies the
// correction sums of eqs. (3)–(5). The SVM side implements the dual
// coordinate-descent method of Hsieh et al. (Alg. 3) and SA-SVM (Alg. 4,
// eqs. 14–15) for both the L1 and L2 hinge losses.
//
// The SA reformulations only rearrange arithmetic, so with the same seed
// an SA run reproduces the classical iterate sequence up to floating-point
// roundoff (the paper's Table III: final relative objective differences at
// machine precision). The tests in this package verify that invariant
// directly.
//
// This package is deliberately communication-free; package dist runs the
// same mathematics over the simulated message-passing runtime and charges
// the costs of Table I.
package core
