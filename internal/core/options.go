package core

import (
	"errors"
	"fmt"
)

// LassoOptions configures the proximal least-squares solvers. The zero
// value is not runnable: Iters must be positive and Lambda (or Reg) set.
type LassoOptions struct {
	// Lambda is the regularization strength for the default L1 penalty.
	// Ignored when Reg is non-nil.
	Lambda float64
	// Reg overrides the penalty (elastic net, group lasso, ...).
	Reg Regularizer
	// BlockSize is µ, the number of coordinates updated per iteration.
	// 1 (the default) gives CD/accCD; larger values give BCD/accBCD.
	BlockSize int
	// Groups, when set, switches to group sampling: each iteration picks
	// one group uniformly at random and updates it as a block. BlockSize
	// is ignored; Reg should be a GroupLasso over the same groups.
	Groups [][]int
	// Iters is H, the total number of (inner) iterations.
	Iters int
	// S is the recurrence-unrolling parameter. S <= 1 runs the classical
	// algorithm (Alg. 1); S > 1 runs the synchronization-avoiding variant
	// (Alg. 2), communicating every S iterations.
	S int
	// Accelerated selects the Nesterov-accelerated variants (accCD,
	// accBCD) instead of plain CD/BCD.
	Accelerated bool
	// Seed drives coordinate sampling. The paper's replicated-seed
	// discipline: every rank uses the same seed, so selections agree with
	// no communication.
	Seed uint64
	// TrackEvery records the objective every so many iterations into the
	// result history (0 disables tracking; the final objective is always
	// computed).
	TrackEvery int
	// X0 is an optional warm start (classical solvers only use it as the
	// initial z/x; default zeros).
	X0 []float64
	// Exec selects the execution backend of the solve: sequential by
	// default; BackendMulticore fans the batched Gram and product kernels
	// across the persistent worker pool without changing iterates;
	// BackendAsync runs lock-free HOGWILD!-style solver workers
	// (convergent but not deterministic; TrackEvery/Tol are skipped).
	Exec Exec
}

// Regularizer returns the effective penalty: Reg if set, else L1{Lambda}.
func (o *LassoOptions) Regularizer() Regularizer {
	if o.Reg != nil {
		return o.Reg
	}
	return L1{Lambda: o.Lambda}
}

// mu returns the effective block size.
func (o *LassoOptions) mu() int {
	if o.BlockSize <= 0 {
		return 1
	}
	return o.BlockSize
}

// validate checks the options against the problem dimensions.
func (o *LassoOptions) validate(m, n int, lenB int) error {
	if lenB != m {
		return fmt.Errorf("core: len(b)=%d does not match %d rows", lenB, m)
	}
	if o.Iters <= 0 {
		return errors.New("core: Iters must be positive")
	}
	if o.Lambda < 0 {
		return errors.New("core: Lambda must be nonnegative")
	}
	if o.Groups == nil && o.mu() > n {
		return fmt.Errorf("core: BlockSize %d exceeds %d features", o.mu(), n)
	}
	if o.X0 != nil && len(o.X0) != n {
		return fmt.Errorf("core: len(X0)=%d, want %d", len(o.X0), n)
	}
	seen := make(map[int]bool)
	for _, g := range o.Groups {
		if len(g) == 0 {
			return errors.New("core: empty group")
		}
		for _, j := range g {
			if j < 0 || j >= n {
				return fmt.Errorf("core: group index %d out of range", j)
			}
			if seen[j] {
				return fmt.Errorf("core: coordinate %d appears in two groups", j)
			}
			seen[j] = true
		}
	}
	return nil
}

// TracePoint is one entry of a convergence history.
type TracePoint struct {
	Iter  int     // iteration count h at which the value was recorded
	Value float64 // objective (Lasso) or duality gap (SVM)
}

// LassoResult is the output of the Lasso-family solvers.
type LassoResult struct {
	// X is the solution vector (for accelerated variants, θ²_H·y_H + z_H
	// per Alg. 1 line 19).
	X []float64
	// Objective is ½‖A·X − b‖² + g(X) at the final iterate.
	Objective float64
	// History holds the tracked objective values (TrackEvery > 0).
	History []TracePoint
	// Iters is the number of iterations performed.
	Iters int
}

// NNZ returns the number of nonzero solution coordinates — the sparsity
// the Lasso penalty is there to create.
func (r *LassoResult) NNZ() int {
	n := 0
	for _, v := range r.X {
		if v != 0 {
			n++
		}
	}
	return n
}

// SVMLoss selects the hinge-loss variant of the SVM solvers.
type SVMLoss int

// The two losses of eq. (11): max(1−b·Ax, 0) and its square.
const (
	SVML1 SVMLoss = iota // hinge
	SVML2                // squared hinge
)

// String returns the paper's name for the loss.
func (l SVMLoss) String() string {
	if l == SVML2 {
		return "svm-l2"
	}
	return "svm-l1"
}

// SVMOptions configures the dual coordinate-descent SVM solvers.
type SVMOptions struct {
	// Lambda is the penalty parameter λ of eq. (10) (the C of Hsieh et
	// al.); the paper uses λ = 1 throughout.
	Lambda float64
	// Loss selects SVM-L1 (hinge) or SVM-L2 (squared hinge).
	Loss SVMLoss
	// Iters is H, the number of dual coordinate updates.
	Iters int
	// S is the recurrence-unrolling parameter; S <= 1 runs Alg. 3,
	// S > 1 runs SA-SVM (Alg. 4).
	S int
	// Seed drives coordinate sampling (replicated-seed discipline).
	Seed uint64
	// TrackEvery records the duality gap every so many iterations
	// (rounded up to outer-iteration boundaries for SA). 0 disables.
	TrackEvery int
	// Tol, when positive, stops the solver once the duality gap falls to
	// or below it (checked at tracking points). The paper uses 1e-1 for
	// the Table V timing runs.
	Tol float64
	// Alpha0 is an optional warm start for the dual variables.
	Alpha0 []float64
	// Exec selects the execution backend of the solve: sequential by
	// default; BackendMulticore fans the batched Gram and product kernels
	// across the persistent worker pool without changing iterates;
	// BackendAsync runs lock-free HOGWILD!-style solver workers
	// (convergent but not deterministic; TrackEvery/Tol are skipped).
	Exec Exec
}

// GammaNu returns the γ and ν constants of Alg. 4 line 1:
// γ = 0, ν = λ for SVM-L1; γ = 1/(2λ), ν = ∞ for SVM-L2. Exported for
// package dist, whose ranks replicate the dual update arithmetic.
func (o *SVMOptions) GammaNu() (gamma, nu float64) {
	if o.Loss == SVML2 {
		return 0.5 / o.Lambda, inf
	}
	return 0, o.Lambda
}

func (o *SVMOptions) validate(m int, lenB int) error {
	if lenB != m {
		return fmt.Errorf("core: len(b)=%d does not match %d rows", lenB, m)
	}
	if o.Iters <= 0 {
		return errors.New("core: Iters must be positive")
	}
	if o.Lambda <= 0 {
		return errors.New("core: Lambda must be positive")
	}
	if o.Alpha0 != nil && len(o.Alpha0) != m {
		return fmt.Errorf("core: len(Alpha0)=%d, want %d", len(o.Alpha0), m)
	}
	return nil
}

// GapPoint is one duality-gap measurement.
type GapPoint struct {
	Iter   int
	Primal float64
	Dual   float64
	Gap    float64
}

// SVMResult is the output of the SVM solvers.
type SVMResult struct {
	// X is the primal weight vector.
	X []float64
	// Alpha is the dual solution.
	Alpha []float64
	// Primal, Dual and Gap are the final objective values; Gap = Primal −
	// Dual ≥ 0, → 0 at optimality (strong duality, §VI).
	Primal, Dual, Gap float64
	// History holds tracked duality-gap points.
	History []GapPoint
	// Iters is the number of iterations actually performed (early stop on
	// Tol counts partial work).
	Iters int
}

// SupportVectors returns the number of nonzero dual variables.
func (r *SVMResult) SupportVectors() int {
	n := 0
	for _, a := range r.Alpha {
		if a != 0 {
			n++
		}
	}
	return n
}
