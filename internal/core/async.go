package core

import (
	"sync"

	"saco/internal/mat"
	"saco/internal/rng"
)

// This file implements core.BackendAsync: HOGWILD!-style lock-free
// variants of the coordinate solvers (Niu et al. 2011; cf. Zhou et al.
// 2021 on asynchronous lock-free optimization in PAPERS.md). Where the
// paper's SA reformulation removes synchronization by *rearranging* the
// classical iteration — provably the same sequence, communicated every
// s steps — the async backend removes it by *dropping* the ordering
// guarantee entirely: Exec.Workers solver workers update one shared
// iterate through atomic element operations with no barriers and no
// locks, each sampling coordinates from its own RNG stream.
//
// The trade is explicit and tested for: async runs are NOT
// deterministic (two runs interleave differently), but they converge to
// the same optimum, and the async convergence tests assert the final
// objective lands within tolerance of the sequential solver's. One
// anchor is exact, though: a single async worker replays the sequential
// arithmetic bit for bit, because worker 0's stream equals the
// sequential sampling stream and every atomic kernel mirrors its plain
// counterpart's loop order. That anchor is what pins the update
// arithmetic itself as correct; the multi-worker runs then only add
// benign races.
//
// All shared mutable state lives in mat.AtomicVec (CAS-based float
// adds), so the solvers are clean under the race detector — the -race
// CI gate covers them like every deterministic backend. Objective
// tracking (TrackEvery), early stopping (Tol) and warm-start history
// are coordination points by nature; the async solvers skip History and
// Tol and document it, computing exact objectives on the quiescent
// state after the workers join.

// asyncStreamSalt decorrelates the helper workers' sampling streams
// from the sequential stream that worker 0 keeps.
const asyncStreamSalt = 0xa3c59ac2b7f30e11

// asyncStreams returns w per-worker sampling streams. Stream 0 is
// rng.New(seed) — exactly the sequential solver's stream, giving the
// single-worker equivalence anchor — and the rest are forked from a
// salted generator so no two workers correlate.
func asyncStreams(seed uint64, w int) []*rng.Stream {
	streams := make([]*rng.Stream, w)
	streams[0] = rng.New(seed)
	src := rng.New(seed ^ asyncStreamSalt)
	for k := 1; k < w; k++ {
		streams[k] = rng.New(src.Uint64())
	}
	return streams
}

// splitIters deals total iterations to w workers as evenly as possible.
func splitIters(total, w, k int) int {
	share := total / w
	if k < total%w {
		share++
	}
	return share
}

// lassoAsync is the HOGWILD! (block) coordinate-descent Lasso solver:
// the same proximal step as lassoPlain, but performed by concurrent
// workers against a shared iterate x and shared residual image
// r = A·x − b held in atomic vectors. Stale gradient reads and
// interleaved updates replace the sequential ordering; the step
// (1/λmax of the sampled block) is scaled by the collision damping of
// asyncDamping at high worker counts. The worker loop itself lives in
// the exported AsyncLasso stepper (asyncstate.go), which the serving
// refit drives open-endedly; this entry runs a fixed budget and joins.
func lassoAsync(a ColMatrix, b []float64, opt LassoOptions) (*LassoResult, error) {
	w := opt.Exec.AsyncWorkers()
	if w > opt.Iters {
		w = opt.Iters
	}
	st, err := NewAsyncLasso(a, b, w, opt)
	if err != nil {
		return nil, err
	}
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func(wk *AsyncLassoWorker, iters int) {
			defer wg.Done()
			for h := 0; h < iters; h++ {
				wk.Step()
			}
		}(st.Worker(k), splitIters(opt.Iters, w, k))
	}
	wg.Wait()

	res := &LassoResult{Iters: opt.Iters}
	res.X = st.SnapshotX(nil)
	// The maintained residual is exact up to the roundoff of the racy
	// accumulation order; with one worker it equals the sequential
	// solver's bit for bit.
	res.Objective = st.Objective()
	return res, nil
}

// svmAsync is the lock-free asynchronous dual coordinate-descent SVM
// (the PASSCoDe-Atomic scheme of Hsieh et al. applied to Alg. 3): each
// worker samples rows from its own stream and performs the projected-
// Newton dual step against a stale primal read, with the dual variable
// kept exactly inside its box by a compare-and-swap and the primal
// updated by atomic adds.
func svmAsync(a RowMatrix, b []float64, opt SVMOptions) (*SVMResult, error) {
	w := opt.Exec.AsyncWorkers()
	if w > opt.Iters {
		w = opt.Iters
	}
	st, err := NewAsyncSVM(a, b, w, opt)
	if err != nil {
		return nil, err
	}
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func(wk *AsyncSVMWorker, iters int) {
			defer wg.Done()
			for h := 0; h < iters; h++ {
				wk.Step()
			}
		}(st.Worker(k), splitIters(opt.Iters, w, k))
	}
	wg.Wait()

	res := &SVMResult{Iters: opt.Iters}
	res.X = st.SnapshotX(nil)
	res.Alpha = st.SnapshotAlpha(nil)
	res.Primal, res.Dual, res.Gap = st.ObjectivesAt(res.X, res.Alpha)
	return res, nil
}

// pegasosAsync is the synchronization-free Pegasos variant: parameter
// mixing (Zinkevich et al.). The multiplicative shrink of the Pegasos
// step touches every coordinate each iteration, which no sparse atomic
// update can express, so instead of sharing the iterate each worker runs
// an independent full Pegasos chain on its share of the iterations and
// the chains' solutions are averaged once at the end — zero communication
// during the run, one reduction after it, converging to the same
// objective (the average of near-optimal points of a convex objective is
// near-optimal).
func pegasosAsync(a RowMatrix, b []float64, opt SVMOptions) (*SVMResult, error) {
	m, _ := a.Dims()
	if err := opt.validate(m, len(b)); err != nil {
		return nil, err
	}
	w := opt.Exec.AsyncWorkers()
	if w > opt.Iters {
		w = opt.Iters
	}
	streams := asyncStreams(opt.Seed, w)

	results := make([]*SVMResult, w)
	errs := make([]error, w)
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			chain := opt
			chain.Exec = Exec{}
			chain.Seed = opt.Seed // chain 0 replays the sequential run
			if k > 0 {
				chain.Seed = streams[k].Uint64()
			}
			chain.Iters = splitIters(opt.Iters, w, k)
			chain.TrackEvery = 0
			results[k], errs[k] = PegasosSVM(a, b, chain)
		}(k)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	x := make([]float64, len(results[0].X))
	for _, r := range results {
		mat.Axpy(1/float64(w), r.X, x)
	}
	res := &SVMResult{Iters: opt.Iters, X: x}
	res.Primal = pegasosPrimal(a, b, x, opt.Lambda, opt.Loss)
	return res, nil
}
