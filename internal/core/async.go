package core

import (
	"errors"
	"fmt"
	"sync"

	"saco/internal/mat"
	"saco/internal/rng"
)

// This file implements core.BackendAsync: HOGWILD!-style lock-free
// variants of the coordinate solvers (Niu et al. 2011; cf. Zhou et al.
// 2021 on asynchronous lock-free optimization in PAPERS.md). Where the
// paper's SA reformulation removes synchronization by *rearranging* the
// classical iteration — provably the same sequence, communicated every
// s steps — the async backend removes it by *dropping* the ordering
// guarantee entirely: Exec.Workers solver workers update one shared
// iterate through atomic element operations with no barriers and no
// locks, each sampling coordinates from its own RNG stream.
//
// The trade is explicit and tested for: async runs are NOT
// deterministic (two runs interleave differently), but they converge to
// the same optimum, and the async convergence tests assert the final
// objective lands within tolerance of the sequential solver's. One
// anchor is exact, though: a single async worker replays the sequential
// arithmetic bit for bit, because worker 0's stream equals the
// sequential sampling stream and every atomic kernel mirrors its plain
// counterpart's loop order. That anchor is what pins the update
// arithmetic itself as correct; the multi-worker runs then only add
// benign races.
//
// All shared mutable state lives in mat.AtomicVec (CAS-based float
// adds), so the solvers are clean under the race detector — the -race
// CI gate covers them like every deterministic backend. Objective
// tracking (TrackEvery), early stopping (Tol) and warm-start history
// are coordination points by nature; the async solvers skip History and
// Tol and document it, computing exact objectives on the quiescent
// state after the workers join.

// asyncStreamSalt decorrelates the helper workers' sampling streams
// from the sequential stream that worker 0 keeps.
const asyncStreamSalt = 0xa3c59ac2b7f30e11

// asyncStreams returns w per-worker sampling streams. Stream 0 is
// rng.New(seed) — exactly the sequential solver's stream, giving the
// single-worker equivalence anchor — and the rest are forked from a
// salted generator so no two workers correlate.
func asyncStreams(seed uint64, w int) []*rng.Stream {
	streams := make([]*rng.Stream, w)
	streams[0] = rng.New(seed)
	src := rng.New(seed ^ asyncStreamSalt)
	for k := 1; k < w; k++ {
		streams[k] = rng.New(src.Uint64())
	}
	return streams
}

// splitIters deals total iterations to w workers as evenly as possible.
func splitIters(total, w, k int) int {
	share := total / w
	if k < total%w {
		share++
	}
	return share
}

// lassoAsync is the HOGWILD! (block) coordinate-descent Lasso solver:
// the same proximal step as lassoPlain, but performed by concurrent
// workers against a shared iterate x and shared residual image
// r = A·x − b held in atomic vectors. Stale gradient reads and
// interleaved updates replace the sequential ordering; step sizes are
// unchanged (1/λmax of the sampled block), which is the regime where
// HOGWILD-style CD converges for sparse problems.
func lassoAsync(a ColMatrix, b []float64, opt LassoOptions) (*LassoResult, error) {
	if opt.Accelerated {
		return nil, errors.New("core: BackendAsync does not support the accelerated Lasso variants (acceleration needs an ordered θ-schedule); use plain CD/BCD or a deterministic backend")
	}
	ac, ok := a.(asyncColMatrix)
	if !ok {
		return nil, fmt.Errorf("core: matrix type %T does not provide atomic kernels for BackendAsync (sparse.CSC does)", a)
	}
	m, n := a.Dims()
	g := opt.Regularizer()
	w := opt.Exec.asyncWorkers()
	if w > opt.Iters {
		w = opt.Iters
	}

	x := make([]float64, n)
	if opt.X0 != nil {
		copy(x, opt.X0)
	}
	r := make([]float64, m)
	a.MulVec(x, r)
	mat.Axpy(-1, b, r) // r = A·x0 − b
	xv := mat.NewAtomicVecFrom(x)
	rv := mat.NewAtomicVecFrom(r)

	streams := asyncStreams(opt.Seed, w)
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			smp := &BlockSampler{r: streams[k], n: n, mu: opt.mu(), groups: opt.Groups}
			muMax := smp.MaxBlock()
			gram := mat.NewDense(muMax, muMax)
			grad := make([]float64, muMax)
			wbuf := make([]float64, muMax)
			gv := make([]float64, muMax)
			delta := make([]float64, muMax)
			iters := splitIters(opt.Iters, w, k)
			for h := 0; h < iters; h++ {
				idx := smp.Next()
				mu := len(idx)
				gb := mat.NewDenseData(mu, mu, gram.Data[:mu*mu])
				a.ColGram(idx, gb) // read-only: plain kernel is safe
				v := blockLargestEig(gb)
				ac.ColTMulVecAtomic(idx, rv, grad[:mu])
				xv.Gather(wbuf[:mu], idx)
				var eta float64
				if v > 0 {
					eta = 1 / v
					for i := 0; i < mu; i++ {
						gv[i] = wbuf[i] - eta*grad[i]
					}
				} else {
					eta = BigEta
					copy(gv[:mu], wbuf[:mu])
				}
				g.Prox(eta, gv[:mu])
				for i := 0; i < mu; i++ {
					delta[i] = gv[i] - wbuf[i]
				}
				xv.ScatterAdd(delta[:mu], idx)
				ac.ColMulAddAtomic(idx, delta[:mu], rv)
			}
		}(k)
	}
	wg.Wait()

	res := &LassoResult{Iters: opt.Iters}
	res.X = xv.Snapshot(nil)
	// The maintained residual is exact up to the roundoff of the racy
	// accumulation order; with one worker it equals the sequential
	// solver's bit for bit.
	res.Objective = LassoObjective(rv.Snapshot(r), res.X, g)
	return res, nil
}

// svmAsync is the lock-free asynchronous dual coordinate-descent SVM
// (the PASSCoDe-Atomic scheme of Hsieh et al. applied to Alg. 3): each
// worker samples rows from its own stream and performs the projected-
// Newton dual step against a stale primal read, with the dual variable
// kept exactly inside its box by a compare-and-swap and the primal
// updated by atomic adds.
func svmAsync(a RowMatrix, b []float64, opt SVMOptions) (*SVMResult, error) {
	ar, ok := a.(asyncRowMatrix)
	if !ok {
		return nil, fmt.Errorf("core: matrix type %T does not provide atomic kernels for BackendAsync (sparse.CSR does)", a)
	}
	m, n := a.Dims()
	gamma, nu := opt.GammaNu()
	w := opt.Exec.asyncWorkers()
	if w > opt.Iters {
		w = opt.Iters
	}

	alpha := make([]float64, m)
	x := make([]float64, n)
	if opt.Alpha0 != nil {
		copy(alpha, opt.Alpha0)
		for i, ai := range alpha {
			if ai != 0 {
				a.RowTAxpy(i, ai*b[i], x)
			}
		}
	}
	av := mat.NewAtomicVecFrom(alpha)
	xv := mat.NewAtomicVecFrom(x)

	streams := asyncStreams(opt.Seed, w)
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			r := streams[k]
			iters := splitIters(opt.Iters, w, k)
			for h := 0; h < iters; h++ {
				i := r.Intn(m)
				eta := a.RowNormSq(i) + gamma
				dot := ar.RowDotAtomic(i, xv)
				// CAS keeps α_i in [0, ν] exactly even when two workers
				// collide on the coordinate: the loser recomputes its step
				// from the fresh dual value (the margin read stays stale —
				// that is the async part).
				var theta float64
				for {
					ai := av.Load(i)
					g := b[i]*dot - 1 + gamma*ai
					if gt := Clip(ai-g, 0, nu) - ai; gt == 0 {
						theta = 0
						break
					}
					theta = Clip(ai-g/eta, 0, nu) - ai
					if theta == 0 || av.CompareAndSwap(i, ai, ai+theta) {
						break
					}
				}
				if theta != 0 {
					ar.RowTAxpyAtomic(i, theta*b[i], xv)
				}
			}
		}(k)
	}
	wg.Wait()

	res := &SVMResult{Iters: opt.Iters}
	res.X = xv.Snapshot(x)
	res.Alpha = av.Snapshot(alpha)
	margins := make([]float64, m)
	a.MulVec(res.X, margins)
	res.Primal, res.Dual, res.Gap = SVMObjectives(res.X, res.Alpha, margins, b, opt.Lambda, gamma, opt.Loss)
	return res, nil
}

// pegasosAsync is the synchronization-free Pegasos variant: parameter
// mixing (Zinkevich et al.). The multiplicative shrink of the Pegasos
// step touches every coordinate each iteration, which no sparse atomic
// update can express, so instead of sharing the iterate each worker runs
// an independent full Pegasos chain on its share of the iterations and
// the chains' solutions are averaged once at the end — zero communication
// during the run, one reduction after it, converging to the same
// objective (the average of near-optimal points of a convex objective is
// near-optimal).
func pegasosAsync(a RowMatrix, b []float64, opt SVMOptions) (*SVMResult, error) {
	m, _ := a.Dims()
	if err := opt.validate(m, len(b)); err != nil {
		return nil, err
	}
	w := opt.Exec.asyncWorkers()
	if w > opt.Iters {
		w = opt.Iters
	}
	streams := asyncStreams(opt.Seed, w)

	results := make([]*SVMResult, w)
	errs := make([]error, w)
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			chain := opt
			chain.Exec = Exec{}
			chain.Seed = opt.Seed // chain 0 replays the sequential run
			if k > 0 {
				chain.Seed = streams[k].Uint64()
			}
			chain.Iters = splitIters(opt.Iters, w, k)
			chain.TrackEvery = 0
			results[k], errs[k] = PegasosSVM(a, b, chain)
		}(k)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	x := make([]float64, len(results[0].X))
	for _, r := range results {
		mat.Axpy(1/float64(w), r.X, x)
	}
	res := &SVMResult{Iters: opt.Iters, X: x}
	res.Primal = pegasosPrimal(a, b, x, opt.Lambda, opt.Loss)
	return res, nil
}
