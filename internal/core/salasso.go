package core

import "saco/internal/mat"

// This file implements the synchronization-avoiding Lasso solvers
// (Alg. 2). The recurrences of Alg. 1 are unrolled s steps: all matrix
// products that would require a reduction in the distributed setting —
// the blocks A_{sk+j}ᵀA_{sk+t} of the (sµ)×(sµ) Gram matrix G = YᵀY and
// the products Yᵀỹ_sk, Yᵀz̃_sk — are computed once per outer iteration
// (lines 10–12). The inner loop then reconstructs each iteration's
// gradient from those batched quantities via the correction sums of
// eqs. (3)–(5) and performs only communication-free updates.
//
// The replicated vectors z, y are updated in place every inner step
// (Alg. 2 lines 19, 21): reading z[idx] therefore yields exactly the
// I_jᵀz_sk + Σ_t I_jᵀI_t·Δz_t collision sum of eq. (4). The partitioned
// images z̃, ỹ are likewise updated in place (lines 20, 22) but never read
// by the inner loop — only the hoisted products are — which is what makes
// the rearrangement communication-free in the distributed setting.

// SABatch holds the per-outer-iteration batch state shared by the plain
// and accelerated SA solvers: the s sampled index blocks, their offsets
// in the concatenated column list, and the batched Gram matrix. It is
// exported for package dist, whose ranks run the same inner-loop
// recurrences against an Allreduce-assembled Gram.
type SABatch struct {
	Blocks  [][]int // the s sampled index blocks
	Offsets []int   // block start offsets in the concatenated index list
	Cols    []int   // concatenation of blocks
	Gram    *mat.Dense
}

// Sample draws sb blocks and assembles the concatenated column list.
func (bt *SABatch) Sample(smp *BlockSampler, sb int) {
	blocks := make([][]int, 0, sb)
	for j := 0; j < sb; j++ {
		blocks = append(blocks, smp.Next())
	}
	bt.SetBlocks(blocks)
}

// SetBlocks installs externally chosen blocks (the broadcast-indices
// ablation of package dist, where rank 0 samples for everyone).
func (bt *SABatch) SetBlocks(blocks [][]int) {
	bt.Blocks = bt.Blocks[:0]
	bt.Offsets = bt.Offsets[:0]
	bt.Cols = bt.Cols[:0]
	for _, blk := range blocks {
		bt.Offsets = append(bt.Offsets, len(bt.Cols))
		bt.Blocks = append(bt.Blocks, blk)
		bt.Cols = append(bt.Cols, blk...)
	}
}

// DiagBlock copies the j-th diagonal µ×µ block of the batched Gram matrix
// into dst (the A_{sk+j}ᵀA_{sk+j} of Alg. 2 line 14).
func (bt *SABatch) DiagBlock(j int, dst *mat.Dense) {
	off := bt.Offsets[j]
	mu := len(bt.Blocks[j])
	k := bt.Gram.C
	for a := 0; a < mu; a++ {
		copy(dst.Row(a)[:mu], bt.Gram.Data[(off+a)*k+off:(off+a)*k+off+mu])
	}
}

// CrossApply accumulates dst[a] += scale · Σ_b G[jOff+a, tOff+b]·coef[b],
// the G_{j,t}·Δz_t terms of eqs. (3) and (5).
func (bt *SABatch) CrossApply(j, t int, scale float64, coef, dst []float64) {
	if scale == 0 {
		return
	}
	jOff, tOff := bt.Offsets[j], bt.Offsets[t]
	muJ, muT := len(bt.Blocks[j]), len(bt.Blocks[t])
	k := bt.Gram.C
	for a := 0; a < muJ; a++ {
		row := bt.Gram.Data[(jOff+a)*k+tOff : (jOff+a)*k+tOff+muT]
		var s float64
		for bIdx, c := range coef[:muT] {
			s += row[bIdx] * c
		}
		dst[a] += scale * s
	}
}

// lassoPlainSA is the synchronization-avoiding plain CD/BCD. Gradients of
// the inner iterations are A_jᵀr_sk + Σ_{t<j} G_{j,t}·Δx_t (the
// non-accelerated specialization of eq. (3), where r is the residual).
func lassoPlainSA(a ColMatrix, b []float64, opt LassoOptions) (*LassoResult, error) {
	m, n := a.Dims()
	g := opt.Regularizer()
	smp := NewBlockSampler(&opt, n)
	s := opt.S

	x := make([]float64, n)
	if opt.X0 != nil {
		copy(x, opt.X0)
	}
	r := make([]float64, m)
	a.MulVec(x, r)
	mat.Axpy(-1, b, r)

	muMax := smp.MaxBlock()
	kMax := s * muMax
	bt := &SABatch{Gram: mat.NewDense(kMax, kMax)}
	rP := make([]float64, kMax)      // hoisted A_jᵀ·r_sk for all j
	deltas := mat.NewDense(s, muMax) // Δx_t of the current batch
	diag := mat.NewDense(muMax, muMax)
	grad := make([]float64, muMax)
	w := make([]float64, muMax)
	gv := make([]float64, muMax)

	res := &LassoResult{Iters: opt.Iters}
	for h := 0; h < opt.Iters; {
		sb := min(s, opt.Iters-h)
		bt.Sample(smp, sb)
		k := len(bt.Cols)
		bt.Gram = mat.NewDenseData(k, k, bt.Gram.Data[:k*k])
		// Lines 10–12: the one batched "communication" of the outer step.
		a.ColGram(bt.Cols, bt.Gram)
		a.ColTMulVec(bt.Cols, r, rP[:k])

		for j := 0; j < sb; j++ {
			idx := bt.Blocks[j]
			mu := len(idx)
			db := mat.NewDenseData(mu, mu, diag.Data[:mu*mu])
			bt.DiagBlock(j, db)
			v := blockLargestEig(db)

			copy(grad[:mu], rP[bt.Offsets[j]:bt.Offsets[j]+mu])
			for t := 0; t < j; t++ {
				bt.CrossApply(j, t, 1, deltas.Row(t), grad[:mu])
			}
			mat.Gather(w[:mu], x, idx)
			var eta float64
			if v > 0 {
				eta = 1 / v
				for a2 := 0; a2 < mu; a2++ {
					gv[a2] = w[a2] - eta*grad[a2]
				}
			} else {
				eta = BigEta
				copy(gv[:mu], w[:mu])
			}
			g.Prox(eta, gv[:mu])
			d := deltas.Row(j)
			for a2 := 0; a2 < mu; a2++ {
				d[a2] = gv[a2] - w[a2]
			}
			mat.ScatterAdd(x, d[:mu], idx)
			a.ColMulAdd(idx, d[:mu], r)
			h++
			if opt.TrackEvery > 0 && h%opt.TrackEvery == 0 {
				res.History = append(res.History, TracePoint{Iter: h, Value: LassoObjective(r, x, g)})
			}
		}
	}
	res.X = x
	res.Objective = LassoObjective(r, x, g)
	return res, nil
}

// lassoAccSA is Alg. 2: synchronization-avoiding accelerated (acc)BCD.
func lassoAccSA(a ColMatrix, b []float64, opt LassoOptions) (*LassoResult, error) {
	m, n := a.Dims()
	g := opt.Regularizer()
	smp := NewBlockSampler(&opt, n)
	q := float64(smp.NumBlocks())
	s := opt.S

	z := make([]float64, n)
	if opt.X0 != nil {
		copy(z, opt.X0)
	}
	y := make([]float64, n)
	zt := make([]float64, m)
	a.MulVec(z, zt)
	mat.Axpy(-1, b, zt)
	yt := make([]float64, m)

	muMax := smp.MaxBlock()
	kMax := s * muMax
	bt := &SABatch{Gram: mat.NewDense(kMax, kMax)}
	ytP := make([]float64, kMax) // Yᵀỹ_sk (Alg. 2 line 12)
	ztP := make([]float64, kMax) // Yᵀz̃_sk
	deltas := mat.NewDense(s, muMax)
	dCoef := make([]float64, s) // d_t = (1−qθ_{sk+t−1})/θ²_{sk+t−1}
	thetas := make([]float64, s+1)
	diag := mat.NewDense(muMax, muMax)
	rvec := make([]float64, muMax)
	w := make([]float64, muMax)
	gv := make([]float64, muMax)
	scaled := make([]float64, muMax)

	theta := smp.Theta0()
	res := &LassoResult{Iters: opt.Iters}
	for h := 0; h < opt.Iters; {
		sb := min(s, opt.Iters-h)
		bt.Sample(smp, sb)
		k := len(bt.Cols)
		bt.Gram = mat.NewDenseData(k, k, bt.Gram.Data[:k*k])
		// Lines 9–12: θ schedule for the batch and the batched products.
		thetas[0] = theta
		for j := 1; j <= sb; j++ {
			thetas[j] = NextTheta(thetas[j-1])
		}
		a.ColGram(bt.Cols, bt.Gram)
		a.ColTMulVec(bt.Cols, yt, ytP[:k])
		a.ColTMulVec(bt.Cols, zt, ztP[:k])

		for j := 0; j < sb; j++ {
			idx := bt.Blocks[j]
			mu := len(idx)
			db := mat.NewDenseData(mu, mu, diag.Data[:mu*mu])
			bt.DiagBlock(j, db)
			v := blockLargestEig(db) // line 14

			thPrev := thetas[j]
			th2 := thPrev * thPrev
			// Eq. (3): r_j = θ²ỹ'_j + z̃'_j − Σ_t (θ²·d_t − 1)·G_{j,t}·Δz_t.
			off := bt.Offsets[j]
			for a2 := 0; a2 < mu; a2++ {
				rvec[a2] = th2*ytP[off+a2] + ztP[off+a2]
			}
			for t := 0; t < j; t++ {
				bt.CrossApply(j, t, -(th2*dCoef[t] - 1), deltas.Row(t), rvec[:mu])
			}

			// Eq. (4): reading the in-place-updated z yields the collision
			// sum I_jᵀz_sk + Σ I_jᵀI_t·Δz_t.
			mat.Gather(w[:mu], z, idx)
			var eta float64
			if v > 0 {
				eta = 1 / (q * thPrev * v) // line 15
				for a2 := 0; a2 < mu; a2++ {
					gv[a2] = w[a2] - eta*rvec[a2]
				}
			} else {
				eta = BigEta
				copy(gv[:mu], w[:mu])
			}
			g.Prox(eta, gv[:mu])
			d := deltas.Row(j)
			for a2 := 0; a2 < mu; a2++ {
				d[a2] = gv[a2] - w[a2] // eq. (5)
			}

			// Lines 19–22: communication-free updates.
			dj := (1 - q*thPrev) / th2
			dCoef[j] = dj
			mat.ScatterAdd(z, d[:mu], idx)
			a.ColMulAdd(idx, d[:mu], zt)
			mat.ScatterAxpy(-dj, y, d[:mu], idx)
			for a2 := 0; a2 < mu; a2++ {
				scaled[a2] = -dj * d[a2]
			}
			a.ColMulAdd(idx, scaled[:mu], yt)

			h++
			if opt.TrackEvery > 0 && h%opt.TrackEvery == 0 {
				res.History = append(res.History, TracePoint{Iter: h, Value: accObjective(thetas[j+1], y, z, yt, zt, g)})
			}
		}
		theta = thetas[sb]
	}
	res.X = accSolution(theta, y, z)
	rfinal := make([]float64, m)
	accResidual(theta, yt, zt, rfinal)
	res.Objective = LassoObjective(rfinal, res.X, g)
	return res, nil
}
