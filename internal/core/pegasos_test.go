package core

import (
	"math"
	"testing"
)

func TestPegasosConvergesTowardDualCD(t *testing.T) {
	a, b := svmProblem(60)
	dual, err := SVM(a, b, SVMOptions{Lambda: 1, Iters: 30000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	peg, err := PegasosSVM(a, b, SVMOptions{Lambda: 1, Iters: 60000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(peg.Primal) || peg.Primal <= 0 {
		t.Fatalf("pegasos primal = %v", peg.Primal)
	}
	// SGD converges slowly; within 25% of the dual-CD primal suffices to
	// show both optimize the same objective.
	if peg.Primal > 1.25*dual.Primal {
		t.Fatalf("pegasos primal %v too far above dual CD %v", peg.Primal, dual.Primal)
	}
	// The dual method with its certificate must be at least as good.
	if dual.Primal > peg.Primal*1.05 {
		t.Fatalf("dual CD primal %v worse than SGD %v", dual.Primal, peg.Primal)
	}
}

func TestPegasosObjectiveDecreasesOverall(t *testing.T) {
	a, b := svmProblem(61)
	res, err := PegasosSVM(a, b, SVMOptions{Lambda: 1, Iters: 20000, Seed: 3, TrackEvery: 4000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != 5 {
		t.Fatalf("history %d", len(res.History))
	}
	first, last := res.History[0].Primal, res.History[len(res.History)-1].Primal
	if !(last < first) {
		t.Fatalf("objective did not decrease: %v -> %v", first, last)
	}
}

func TestPegasosDeterministic(t *testing.T) {
	a, b := svmProblem(62)
	r1, err := PegasosSVM(a, b, SVMOptions{Lambda: 0.5, Iters: 5000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := PegasosSVM(a, b, SVMOptions{Lambda: 0.5, Iters: 5000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.X {
		if r1.X[i] != r2.X[i] {
			t.Fatal("pegasos not deterministic")
		}
	}
}

func TestPegasosValidation(t *testing.T) {
	a, b := svmProblem(63)
	if _, err := PegasosSVM(a, b, SVMOptions{Lambda: 0, Iters: 10}); err == nil {
		t.Fatal("expected lambda validation error")
	}
	if _, err := PegasosSVM(a, b, SVMOptions{Lambda: 1, Iters: 0}); err == nil {
		t.Fatal("expected iters validation error")
	}
}

func TestPegasosTrainsUsableClassifier(t *testing.T) {
	a, b := svmProblem(64)
	res, err := PegasosSVM(a, b, SVMOptions{Lambda: 1, Iters: 40000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	m, _ := a.Dims()
	margins := make([]float64, m)
	a.MulVec(res.X, margins)
	correct := 0
	for i, v := range margins {
		if v*b[i] > 0 {
			correct++
		}
	}
	if correct < m*4/5 {
		t.Fatalf("accuracy %d/%d too low", correct, m)
	}
}
