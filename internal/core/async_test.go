package core

import (
	"runtime"
	"testing"

	"saco/internal/datagen"
	"saco/internal/sparse"
)

// asyncExec builds the async knob at width w. Relative comparisons use
// the package test helper relDiff (lasso_test.go).
func asyncExec(w int) Exec { return Exec{Backend: BackendAsync, Workers: w} }

// TestLassoAsyncOneWorkerBitwise is the anchor of the async backend: a
// single async worker replays the sequential plain-CD/BCD arithmetic bit
// for bit (worker 0's stream is the sequential stream and every atomic
// kernel mirrors its plain counterpart's loop order), so the only thing
// multi-worker runs add is benign races.
func TestLassoAsyncOneWorkerBitwise(t *testing.T) {
	data := datagen.Regression("async-anchor", 3, 300, 120, 0.2, 10, 0.05)
	a := data.AsCSR().ToCSC()
	for _, mu := range []int{1, 4} {
		opt := LassoOptions{Lambda: 0.3, BlockSize: mu, Iters: 500, Seed: 7}
		ref, err := Lasso(a, data.B, opt)
		if err != nil {
			t.Fatal(err)
		}
		opt.Exec = asyncExec(1)
		got, err := Lasso(a, data.B, opt)
		if err != nil {
			t.Fatal(err)
		}
		sameFloats(t, "X", got.X, ref.X)
		if got.Objective != ref.Objective {
			t.Fatalf("mu=%d: objective %v != %v", mu, got.Objective, ref.Objective)
		}
	}
}

// TestSVMAsyncOneWorkerBitwise is the dual-CD anchor: with one worker
// the CAS always succeeds first try and the update replays Alg. 3.
func TestSVMAsyncOneWorkerBitwise(t *testing.T) {
	data := datagen.Classification("async-anchor-svm", 5, 250, 80, 0.2, 0.05)
	a := data.AsCSR()
	for _, loss := range []SVMLoss{SVML1, SVML2} {
		opt := SVMOptions{Lambda: 1, Loss: loss, Iters: 1500, Seed: 3}
		ref, err := SVM(a, data.B, opt)
		if err != nil {
			t.Fatal(err)
		}
		opt.Exec = asyncExec(1)
		got, err := SVM(a, data.B, opt)
		if err != nil {
			t.Fatal(err)
		}
		sameFloats(t, "X", got.X, ref.X)
		sameFloats(t, "Alpha", got.Alpha, ref.Alpha)
		if got.Gap != ref.Gap {
			t.Fatalf("loss=%v: gap %v != %v", loss, got.Gap, ref.Gap)
		}
	}
}

// TestLassoAsyncConverges is the acceptance criterion: on the short
// Lasso preset the async backend's final objective lands within 1e-6
// relative of the sequential backend's at every width. Both runs get
// enough iterations to reach the optimum, where the comparison is
// meaningful — async runs take a different path but the same
// destination.
func TestLassoAsyncConverges(t *testing.T) {
	data := datagen.Regression("async-conv", 11, 400, 100, 0.25, 8, 0.05)
	a := data.AsCSR().ToCSC()
	lambda := 0.2 * LambdaMaxL1(a, data.B)
	iters := 30000
	if testing.Short() {
		iters = 15000
	}
	seq, err := Lasso(a, data.B, LassoOptions{Lambda: lambda, Iters: iters, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 8} {
		got, err := Lasso(a, data.B, LassoOptions{Lambda: lambda, Iters: iters, Seed: 1, Exec: asyncExec(w)})
		if err != nil {
			t.Fatal(err)
		}
		if d := relDiff(got.Objective, seq.Objective); d > 1e-6 {
			t.Fatalf("workers=%d: async objective %.12e vs sequential %.12e (rel %.3e)",
				w, got.Objective, seq.Objective, d)
		}
	}
}

// TestLassoAsyncBlockConverges exercises the BCD path (µ > 1) and the
// elastic-net regularizer under async execution.
func TestLassoAsyncBlockConverges(t *testing.T) {
	data := datagen.Regression("async-bcd", 13, 350, 80, 0.3, 8, 0.05)
	a := data.AsCSR().ToCSC()
	lambda := 0.2 * LambdaMaxL1(a, data.B)
	iters := 8000
	opt := LassoOptions{
		Reg: ElasticNet{Lambda: lambda, Alpha: 0.9}, BlockSize: 4,
		Iters: iters, Seed: 5,
	}
	seq, err := Lasso(a, data.B, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Exec = asyncExec(4)
	got, err := Lasso(a, data.B, opt)
	if err != nil {
		t.Fatal(err)
	}
	if d := relDiff(got.Objective, seq.Objective); d > 1e-6 {
		t.Fatalf("async BCD objective %.12e vs sequential %.12e (rel %.3e)",
			got.Objective, seq.Objective, d)
	}
}

// TestSVMAsyncConverges is the SVM half of the acceptance criterion:
// async dual CD reaches the sequential optimum within 1e-6 relative on
// the short SVM preset. SVM-L2's strongly convex dual gives the tight
// anchor; hinge loss is checked at the same tolerance with more
// iterations.
func TestSVMAsyncConverges(t *testing.T) {
	data := datagen.Classification("async-svm", 17, 250, 60, 0.3, 0.1)
	a := data.AsCSR()
	for _, tc := range []struct {
		name  string
		loss  SVMLoss
		iters int
	}{
		{"l2", SVML2, 400000},
		{"l1", SVML1, 3000000},
	} {
		t.Run(tc.name, func(t *testing.T) {
			iters := tc.iters
			if testing.Short() {
				iters /= 2
			}
			seq, err := SVM(a, data.B, SVMOptions{Lambda: 1, Loss: tc.loss, Iters: iters, Seed: 9})
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range []int{2, 4} {
				got, err := SVM(a, data.B, SVMOptions{Lambda: 1, Loss: tc.loss, Iters: iters, Seed: 9, Exec: asyncExec(w)})
				if err != nil {
					t.Fatal(err)
				}
				if d := relDiff(got.Primal, seq.Primal); d > 1e-6 {
					t.Fatalf("workers=%d: async primal %.12e vs sequential %.12e (rel %.3e)",
						w, got.Primal, seq.Primal, d)
				}
				if got.Gap < -1e-9 || got.Alpha == nil { // tiny negative gap = roundoff at optimality
					t.Fatalf("workers=%d: malformed result (gap=%v)", w, got.Gap)
				}
			}
		})
	}
}

// TestPegasosAsyncConverges checks the parameter-mixing Pegasos variant
// reaches the neighbourhood of the sequential solution (SGD noise makes
// a 1e-6 bound meaningless here; the deterministic acceptance presets
// are Lasso and dual-CD SVM).
func TestPegasosAsyncConverges(t *testing.T) {
	data := datagen.Classification("async-peg", 23, 300, 50, 0.3, 0.1)
	a := data.AsCSR()
	// Not reduced under -short: each of the 4 chains needs its full SGD
	// share to converge, and the whole test costs well under a second.
	iters := 60000
	seq, err := PegasosSVM(a, data.B, SVMOptions{Lambda: 1, Iters: iters, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	got, err := PegasosSVM(a, data.B, SVMOptions{Lambda: 1, Iters: iters, Seed: 2, Exec: asyncExec(4)})
	if err != nil {
		t.Fatal(err)
	}
	if d := relDiff(got.Primal, seq.Primal); d > 0.05 {
		t.Fatalf("mixed primal %.6e vs sequential %.6e (rel %.3e)", got.Primal, seq.Primal, d)
	}
}

// colOnly and rowOnly hide everything but the plain access interface,
// modelling a matrix type without atomic kernels.
type colOnly struct{ ColMatrix }
type rowOnly struct{ RowMatrix }

// TestAsyncRejectsUnsupported pins the error surface: acceleration has
// no async analogue, and matrices without atomic kernels must be
// rejected with a clear message rather than silently run sequential.
// (The dense views grew atomic kernels and are no longer rejected — see
// TestAsyncDenseViews.)
func TestAsyncRejectsUnsupported(t *testing.T) {
	data := datagen.Regression("async-rej", 29, 60, 30, 0.3, 5, 0.05)
	csc := data.AsCSR().ToCSC()
	if _, err := Lasso(csc, data.B, LassoOptions{
		Lambda: 0.1, Iters: 10, Accelerated: true, Exec: asyncExec(2),
	}); err == nil {
		t.Fatal("accelerated async Lasso must error")
	}
	if _, err := Lasso(colOnly{csc}, data.B, LassoOptions{
		Lambda: 0.1, Iters: 10, Exec: asyncExec(2),
	}); err == nil {
		t.Fatal("async Lasso on a matrix without atomic kernels must error")
	}
	bb := make([]float64, 60)
	copy(bb, data.B)
	if _, err := SVM(rowOnly{data.AsCSR()}, bb, SVMOptions{
		Lambda: 1, Iters: 10, Exec: asyncExec(2),
	}); err == nil {
		t.Fatal("async SVM on a matrix without atomic kernels must error")
	}
}

// TestAsyncDenseViewsOneWorkerBitwise extends the single-worker anchor
// to the dense views: their atomic kernels mirror the plain dense
// kernels' loop order, so a 1-worker async solve over DenseCols /
// DenseRows replays the sequential dense solve bit for bit.
func TestAsyncDenseViewsOneWorkerBitwise(t *testing.T) {
	data := datagen.Regression("async-dense", 31, 120, 40, 0.3, 6, 0.05)
	dc := sparse.DenseCols{A: data.AsCSR().ToDense()}
	opt := LassoOptions{Lambda: 0.3, BlockSize: 2, Iters: 400, Seed: 7}
	ref, err := Lasso(dc, data.B, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Exec = asyncExec(1)
	got, err := Lasso(dc, data.B, opt)
	if err != nil {
		t.Fatal(err)
	}
	sameFloats(t, "dense Lasso X", got.X, ref.X)
	if got.Objective != ref.Objective {
		t.Fatalf("objective %v != %v", got.Objective, ref.Objective)
	}

	cdata := datagen.Classification("async-dense-svm", 37, 100, 30, 0.3, 0.05)
	dr := sparse.DenseRows{A: cdata.AsCSR().ToDense()}
	sopt := SVMOptions{Lambda: 1, Loss: SVML2, Iters: 800, Seed: 3}
	sref, err := SVM(dr, cdata.B, sopt)
	if err != nil {
		t.Fatal(err)
	}
	sopt.Exec = asyncExec(1)
	sgot, err := SVM(dr, cdata.B, sopt)
	if err != nil {
		t.Fatal(err)
	}
	sameFloats(t, "dense SVM X", sgot.X, sref.X)
	sameFloats(t, "dense SVM Alpha", sgot.Alpha, sref.Alpha)
}

// TestAsyncDenseViewsConverge: multi-worker async over the dense views
// reaches the sequential optimum (the satellite of the dense-kernel
// ROADMAP item).
func TestAsyncDenseViewsConverge(t *testing.T) {
	data := datagen.Regression("async-dense-conv", 41, 200, 50, 0.3, 6, 0.05)
	dc := sparse.DenseCols{A: data.AsCSR().ToDense()}
	lambda := 0.2 * LambdaMaxL1(dc, data.B)
	iters := 20000
	if testing.Short() {
		iters = 10000
	}
	seq, err := Lasso(dc, data.B, LassoOptions{Lambda: lambda, Iters: iters, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Lasso(dc, data.B, LassoOptions{Lambda: lambda, Iters: iters, Seed: 1, Exec: asyncExec(4)})
	if err != nil {
		t.Fatal(err)
	}
	if d := relDiff(got.Objective, seq.Objective); d > 1e-6 {
		t.Fatalf("dense async objective %.12e vs sequential %.12e (rel %.3e)",
			got.Objective, seq.Objective, d)
	}
}

// TestAsyncDamping pins the collision-rate step damping: exact 1 up to
// the grace width (the small-worker HOGWILD regime the other async
// tests pin must stay undamped, and the 1-worker bitwise anchor depends
// on it) and for density-unknown matrices, monotone non-increasing in
// workers beyond the grace, and floored at 1/2.
func TestAsyncDamping(t *testing.T) {
	for _, w := range []int{1, 2, asyncDampGrace} {
		if d := asyncDamping(w, 8, 0.9); d != 1 {
			t.Fatalf("damping at %d workers = %v, want exactly 1 (grace %d)", w, d, asyncDampGrace)
		}
	}
	if d := asyncDamping(64, 4, 0); d != 1 {
		t.Fatalf("damping at unknown density = %v, want exactly 1", d)
	}
	if d := asyncDamping(asyncDampGrace+1, 1, 0.5); d >= 1 || d < 0.5 {
		t.Fatalf("damping just past grace = %v, want in [0.5, 1)", d)
	}
	prev := 1.0
	for _, w := range []int{9, 16, 64, 256} {
		d := asyncDamping(w, 1, 0.01)
		if d > prev || d < 0.5 {
			t.Fatalf("damping(%d) = %v (prev %v): must be non-increasing and >= 1/2", w, d, prev)
		}
		prev = d
	}
	if d := asyncDamping(1024, 64, 1); d != 0.5 {
		t.Fatalf("saturated damping = %v, want 0.5", d)
	}
	// The solvers surface the factor: a wide solve on a known-density
	// matrix must report damp < 1, a 1-worker solve exactly 1.
	data := datagen.Regression("async-damp", 43, 80, 30, 0.3, 5, 0.05)
	csc := data.AsCSR().ToCSC()
	st1, err := NewAsyncLasso(csc, data.B, 1, LassoOptions{Lambda: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if st1.Damping() != 1 {
		t.Fatalf("1-worker Damping() = %v", st1.Damping())
	}
	st2, err := NewAsyncLasso(csc, data.B, 4*asyncDampGrace, LassoOptions{Lambda: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if d := st2.Damping(); d >= 1 || d < 0.5 {
		t.Fatalf("wide Damping() = %v, want in [0.5, 1)", d)
	}
}

// TestAsyncHighWorkerCount is the oversubscription satellite: at
// workers = 4×GOMAXPROCS (floored past the damping grace so the damped
// path always runs) the goroutines far outnumber cores, so updates are
// maximally stale — the regime the collision damping is for. Both async
// solvers must still land on the sequential optimum.
func TestAsyncHighWorkerCount(t *testing.T) {
	w := 4 * runtime.GOMAXPROCS(0)
	if w < 2*asyncDampGrace {
		w = 2 * asyncDampGrace
	}
	data := datagen.Regression("async-hi", 47, 300, 80, 0.2, 8, 0.05)
	a := data.AsCSR().ToCSC()
	lambda := 0.2 * LambdaMaxL1(a, data.B)
	iters := 40000
	if testing.Short() {
		iters = 20000
	}
	seq, err := Lasso(a, data.B, LassoOptions{Lambda: lambda, Iters: iters, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Lasso(a, data.B, LassoOptions{Lambda: lambda, Iters: iters, Seed: 1, Exec: asyncExec(w)})
	if err != nil {
		t.Fatal(err)
	}
	if d := relDiff(got.Objective, seq.Objective); d > 1e-6 {
		t.Fatalf("workers=%d: async objective %.12e vs sequential %.12e (rel %.3e)",
			w, got.Objective, seq.Objective, d)
	}

	cdata := datagen.Classification("async-hi-svm", 53, 250, 60, 0.3, 0.1)
	ar := cdata.AsCSR()
	siters := 400000
	if testing.Short() {
		siters = 200000
	}
	sseq, err := SVM(ar, cdata.B, SVMOptions{Lambda: 1, Loss: SVML2, Iters: siters, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	sgot, err := SVM(ar, cdata.B, SVMOptions{Lambda: 1, Loss: SVML2, Iters: siters, Seed: 9, Exec: asyncExec(w)})
	if err != nil {
		t.Fatal(err)
	}
	if d := relDiff(sgot.Primal, sseq.Primal); d > 1e-6 {
		t.Fatalf("workers=%d: async SVM primal %.12e vs sequential %.12e (rel %.3e)",
			w, sgot.Primal, sseq.Primal, d)
	}
}

// TestAsyncLassoStepperMatchesSolver pins the exported stepper surface
// the serving refit drives: manually stepping a 1-worker AsyncLasso for
// the full budget reproduces the batch BackendAsync solve (and hence
// the sequential solver) bit for bit, and the live snapshots expose the
// same state.
func TestAsyncLassoStepperMatchesSolver(t *testing.T) {
	data := datagen.Regression("async-step", 59, 150, 60, 0.25, 6, 0.05)
	a := data.AsCSR().ToCSC()
	opt := LassoOptions{Lambda: 0.3, Iters: 600, Seed: 7}
	ref, err := Lasso(a, data.B, opt)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewAsyncLasso(a, data.B, 1, opt)
	if err != nil {
		t.Fatal(err)
	}
	wk := st.Worker(0)
	for h := 0; h < opt.Iters; h++ {
		wk.Step()
	}
	sameFloats(t, "stepped X", st.SnapshotX(nil), ref.X)
	if obj := st.Objective(); obj != ref.Objective {
		t.Fatalf("stepped objective %v != %v", obj, ref.Objective)
	}
	if obj := st.ObjectiveAt(st.SnapshotX(nil)); relDiff(obj, ref.Objective) > 1e-12 {
		t.Fatalf("recomputed objective %v vs %v", obj, ref.Objective)
	}

	cdata := datagen.Classification("async-step-svm", 61, 120, 40, 0.3, 0.05)
	sopt := SVMOptions{Lambda: 1, Loss: SVML2, Iters: 900, Seed: 5}
	sref, err := SVM(cdata.AsCSR(), cdata.B, sopt)
	if err != nil {
		t.Fatal(err)
	}
	sst, err := NewAsyncSVM(cdata.AsCSR(), cdata.B, 1, sopt)
	if err != nil {
		t.Fatal(err)
	}
	swk := sst.Worker(0)
	for h := 0; h < sopt.Iters; h++ {
		swk.Step()
	}
	x := sst.SnapshotX(nil)
	alpha := sst.SnapshotAlpha(nil)
	sameFloats(t, "stepped SVM X", x, sref.X)
	sameFloats(t, "stepped SVM Alpha", alpha, sref.Alpha)
	p, _, _ := sst.ObjectivesAt(x, alpha)
	if p != sref.Primal {
		t.Fatalf("stepped primal %v != %v", p, sref.Primal)
	}
}

// TestBackendAsyncString pins the knob naming used by flags and logs.
func TestBackendAsyncString(t *testing.T) {
	if BackendAsync.String() != "async" {
		t.Fatalf("BackendAsync.String() = %q", BackendAsync.String())
	}
	if (Exec{Backend: BackendAsync, Workers: 3}).AsyncWorkers() != 3 {
		t.Fatal("explicit async width ignored")
	}
	if (Exec{Backend: BackendAsync}).workers() != 1 {
		t.Fatal("async solves must run sequential kernels per worker")
	}
	if w := (Exec{Backend: BackendAsync}).AsyncWorkers(); w < 1 {
		t.Fatalf("default async width %d", w)
	}
}
