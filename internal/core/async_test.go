package core

import (
	"testing"

	"saco/internal/datagen"
	"saco/internal/sparse"
)

// asyncExec builds the async knob at width w. Relative comparisons use
// the package test helper relDiff (lasso_test.go).
func asyncExec(w int) Exec { return Exec{Backend: BackendAsync, Workers: w} }

// TestLassoAsyncOneWorkerBitwise is the anchor of the async backend: a
// single async worker replays the sequential plain-CD/BCD arithmetic bit
// for bit (worker 0's stream is the sequential stream and every atomic
// kernel mirrors its plain counterpart's loop order), so the only thing
// multi-worker runs add is benign races.
func TestLassoAsyncOneWorkerBitwise(t *testing.T) {
	data := datagen.Regression("async-anchor", 3, 300, 120, 0.2, 10, 0.05)
	a := data.AsCSR().ToCSC()
	for _, mu := range []int{1, 4} {
		opt := LassoOptions{Lambda: 0.3, BlockSize: mu, Iters: 500, Seed: 7}
		ref, err := Lasso(a, data.B, opt)
		if err != nil {
			t.Fatal(err)
		}
		opt.Exec = asyncExec(1)
		got, err := Lasso(a, data.B, opt)
		if err != nil {
			t.Fatal(err)
		}
		sameFloats(t, "X", got.X, ref.X)
		if got.Objective != ref.Objective {
			t.Fatalf("mu=%d: objective %v != %v", mu, got.Objective, ref.Objective)
		}
	}
}

// TestSVMAsyncOneWorkerBitwise is the dual-CD anchor: with one worker
// the CAS always succeeds first try and the update replays Alg. 3.
func TestSVMAsyncOneWorkerBitwise(t *testing.T) {
	data := datagen.Classification("async-anchor-svm", 5, 250, 80, 0.2, 0.05)
	a := data.AsCSR()
	for _, loss := range []SVMLoss{SVML1, SVML2} {
		opt := SVMOptions{Lambda: 1, Loss: loss, Iters: 1500, Seed: 3}
		ref, err := SVM(a, data.B, opt)
		if err != nil {
			t.Fatal(err)
		}
		opt.Exec = asyncExec(1)
		got, err := SVM(a, data.B, opt)
		if err != nil {
			t.Fatal(err)
		}
		sameFloats(t, "X", got.X, ref.X)
		sameFloats(t, "Alpha", got.Alpha, ref.Alpha)
		if got.Gap != ref.Gap {
			t.Fatalf("loss=%v: gap %v != %v", loss, got.Gap, ref.Gap)
		}
	}
}

// TestLassoAsyncConverges is the acceptance criterion: on the short
// Lasso preset the async backend's final objective lands within 1e-6
// relative of the sequential backend's at every width. Both runs get
// enough iterations to reach the optimum, where the comparison is
// meaningful — async runs take a different path but the same
// destination.
func TestLassoAsyncConverges(t *testing.T) {
	data := datagen.Regression("async-conv", 11, 400, 100, 0.25, 8, 0.05)
	a := data.AsCSR().ToCSC()
	lambda := 0.2 * LambdaMaxL1(a, data.B)
	iters := 30000
	if testing.Short() {
		iters = 15000
	}
	seq, err := Lasso(a, data.B, LassoOptions{Lambda: lambda, Iters: iters, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 8} {
		got, err := Lasso(a, data.B, LassoOptions{Lambda: lambda, Iters: iters, Seed: 1, Exec: asyncExec(w)})
		if err != nil {
			t.Fatal(err)
		}
		if d := relDiff(got.Objective, seq.Objective); d > 1e-6 {
			t.Fatalf("workers=%d: async objective %.12e vs sequential %.12e (rel %.3e)",
				w, got.Objective, seq.Objective, d)
		}
	}
}

// TestLassoAsyncBlockConverges exercises the BCD path (µ > 1) and the
// elastic-net regularizer under async execution.
func TestLassoAsyncBlockConverges(t *testing.T) {
	data := datagen.Regression("async-bcd", 13, 350, 80, 0.3, 8, 0.05)
	a := data.AsCSR().ToCSC()
	lambda := 0.2 * LambdaMaxL1(a, data.B)
	iters := 8000
	opt := LassoOptions{
		Reg: ElasticNet{Lambda: lambda, Alpha: 0.9}, BlockSize: 4,
		Iters: iters, Seed: 5,
	}
	seq, err := Lasso(a, data.B, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Exec = asyncExec(4)
	got, err := Lasso(a, data.B, opt)
	if err != nil {
		t.Fatal(err)
	}
	if d := relDiff(got.Objective, seq.Objective); d > 1e-6 {
		t.Fatalf("async BCD objective %.12e vs sequential %.12e (rel %.3e)",
			got.Objective, seq.Objective, d)
	}
}

// TestSVMAsyncConverges is the SVM half of the acceptance criterion:
// async dual CD reaches the sequential optimum within 1e-6 relative on
// the short SVM preset. SVM-L2's strongly convex dual gives the tight
// anchor; hinge loss is checked at the same tolerance with more
// iterations.
func TestSVMAsyncConverges(t *testing.T) {
	data := datagen.Classification("async-svm", 17, 250, 60, 0.3, 0.1)
	a := data.AsCSR()
	for _, tc := range []struct {
		name  string
		loss  SVMLoss
		iters int
	}{
		{"l2", SVML2, 400000},
		{"l1", SVML1, 3000000},
	} {
		t.Run(tc.name, func(t *testing.T) {
			iters := tc.iters
			if testing.Short() {
				iters /= 2
			}
			seq, err := SVM(a, data.B, SVMOptions{Lambda: 1, Loss: tc.loss, Iters: iters, Seed: 9})
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range []int{2, 4} {
				got, err := SVM(a, data.B, SVMOptions{Lambda: 1, Loss: tc.loss, Iters: iters, Seed: 9, Exec: asyncExec(w)})
				if err != nil {
					t.Fatal(err)
				}
				if d := relDiff(got.Primal, seq.Primal); d > 1e-6 {
					t.Fatalf("workers=%d: async primal %.12e vs sequential %.12e (rel %.3e)",
						w, got.Primal, seq.Primal, d)
				}
				if got.Gap < -1e-9 || got.Alpha == nil { // tiny negative gap = roundoff at optimality
					t.Fatalf("workers=%d: malformed result (gap=%v)", w, got.Gap)
				}
			}
		})
	}
}

// TestPegasosAsyncConverges checks the parameter-mixing Pegasos variant
// reaches the neighbourhood of the sequential solution (SGD noise makes
// a 1e-6 bound meaningless here; the deterministic acceptance presets
// are Lasso and dual-CD SVM).
func TestPegasosAsyncConverges(t *testing.T) {
	data := datagen.Classification("async-peg", 23, 300, 50, 0.3, 0.1)
	a := data.AsCSR()
	// Not reduced under -short: each of the 4 chains needs its full SGD
	// share to converge, and the whole test costs well under a second.
	iters := 60000
	seq, err := PegasosSVM(a, data.B, SVMOptions{Lambda: 1, Iters: iters, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	got, err := PegasosSVM(a, data.B, SVMOptions{Lambda: 1, Iters: iters, Seed: 2, Exec: asyncExec(4)})
	if err != nil {
		t.Fatal(err)
	}
	if d := relDiff(got.Primal, seq.Primal); d > 0.05 {
		t.Fatalf("mixed primal %.6e vs sequential %.6e (rel %.3e)", got.Primal, seq.Primal, d)
	}
}

// TestAsyncRejectsUnsupported pins the error surface: acceleration has
// no async analogue, and matrices without atomic kernels must be
// rejected with a clear message rather than silently run sequential.
func TestAsyncRejectsUnsupported(t *testing.T) {
	data := datagen.Regression("async-rej", 29, 60, 30, 0.3, 5, 0.05)
	csc := data.AsCSR().ToCSC()
	if _, err := Lasso(csc, data.B, LassoOptions{
		Lambda: 0.1, Iters: 10, Accelerated: true, Exec: asyncExec(2),
	}); err == nil {
		t.Fatal("accelerated async Lasso must error")
	}
	dense := sparse.DenseCols{A: data.AsCSR().ToDense()}
	if _, err := Lasso(dense, data.B, LassoOptions{
		Lambda: 0.1, Iters: 10, Exec: asyncExec(2),
	}); err == nil {
		t.Fatal("async Lasso on a matrix without atomic kernels must error")
	}
	denseR := sparse.DenseRows{A: data.AsCSR().ToDense()}
	bb := make([]float64, 60)
	copy(bb, data.B)
	if _, err := SVM(denseR, bb, SVMOptions{
		Lambda: 1, Iters: 10, Exec: asyncExec(2),
	}); err == nil {
		t.Fatal("async SVM on a matrix without atomic kernels must error")
	}
}

// TestBackendAsyncString pins the knob naming used by flags and logs.
func TestBackendAsyncString(t *testing.T) {
	if BackendAsync.String() != "async" {
		t.Fatalf("BackendAsync.String() = %q", BackendAsync.String())
	}
	if (Exec{Backend: BackendAsync, Workers: 3}).asyncWorkers() != 3 {
		t.Fatal("explicit async width ignored")
	}
	if (Exec{Backend: BackendAsync}).workers() != 1 {
		t.Fatal("async solves must run sequential kernels per worker")
	}
	if w := (Exec{Backend: BackendAsync}).asyncWorkers(); w < 1 {
		t.Fatalf("default async width %d", w)
	}
}
