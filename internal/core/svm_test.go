package core

import (
	"math"
	"testing"

	"saco/internal/datagen"
	"saco/internal/sparse"
)

func svmProblem(seed uint64) (RowMatrix, []float64) {
	d := datagen.Classification("test", seed, 150, 60, 0.2, 0.05)
	return d.CSR, d.B
}

func TestSVMValidation(t *testing.T) {
	a, b := svmProblem(1)
	bad := []SVMOptions{
		{Lambda: 1, Iters: 0},
		{Lambda: 0, Iters: 10},
		{Lambda: -1, Iters: 10},
		{Lambda: 1, Iters: 10, Alpha0: make([]float64, 3)},
	}
	for i, opt := range bad {
		if _, err := SVM(a, b, opt); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
	if _, err := SVM(a, b[:5], SVMOptions{Lambda: 1, Iters: 10}); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestSVMGapConverges(t *testing.T) {
	a, b := svmProblem(2)
	for _, loss := range []SVMLoss{SVML1, SVML2} {
		res, err := SVM(a, b, SVMOptions{Lambda: 1, Loss: loss, Iters: 20000, Seed: 3, TrackEvery: 2000})
		if err != nil {
			t.Fatal(err)
		}
		if res.Gap < -1e-8 {
			t.Fatalf("%v: negative duality gap %v", loss, res.Gap)
		}
		first := res.History[0].Gap
		if res.Gap > first*0.05 {
			t.Fatalf("%v: gap %v did not shrink from %v", loss, res.Gap, first)
		}
		// Weak duality holds at every tracked point.
		for _, p := range res.History {
			if p.Gap < -1e-8 {
				t.Fatalf("%v: negative gap %v at iter %d", loss, p.Gap, p.Iter)
			}
		}
	}
}

func TestSVMTrainsAccurateClassifier(t *testing.T) {
	d := datagen.Classification("test", 4, 300, 50, 0.3, 0.01)
	res, err := SVM(d.CSR, d.B, SVMOptions{Lambda: 1, Iters: 30000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	margins := make([]float64, 300)
	d.CSR.MulVec(res.X, margins)
	correct := 0
	for i, m := range margins {
		if m*d.B[i] > 0 {
			correct++
		}
	}
	if correct < 270 {
		t.Fatalf("training accuracy %d/300 too low", correct)
	}
	if res.SupportVectors() == 0 || res.SupportVectors() == 300 {
		t.Fatalf("support vector count degenerate: %d", res.SupportVectors())
	}
}

// TestSASVMEquivalence mirrors Fig. 5: SA-SVM reproduces the classical
// dual CD trajectory up to roundoff for both losses and large s.
func TestSASVMEquivalence(t *testing.T) {
	a, b := svmProblem(6)
	for _, loss := range []SVMLoss{SVML1, SVML2} {
		base := SVMOptions{Lambda: 1, Loss: loss, Iters: 5000, Seed: 7, TrackEvery: 500}
		ref, err := SVM(a, b, base)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range []int{2, 16, 500} {
			opt := base
			opt.S = s
			got, err := SVM(a, b, opt)
			if err != nil {
				t.Fatal(err)
			}
			for i := range ref.Alpha {
				if math.Abs(got.Alpha[i]-ref.Alpha[i]) > 1e-8*(1+math.Abs(ref.Alpha[i])) {
					t.Fatalf("%v s=%d: alpha[%d] = %v vs %v", loss, s, i, got.Alpha[i], ref.Alpha[i])
				}
			}
			for i := range ref.X {
				if math.Abs(got.X[i]-ref.X[i]) > 1e-8*(1+math.Abs(ref.X[i])) {
					t.Fatalf("%v s=%d: x[%d] = %v vs %v", loss, s, i, got.X[i], ref.X[i])
				}
			}
			for k := range ref.History {
				if d := relDiff(got.History[k].Gap, ref.History[k].Gap); d > 1e-6 && math.Abs(got.History[k].Gap-ref.History[k].Gap) > 1e-9 {
					t.Fatalf("%v s=%d: gap history[%d] %v vs %v", loss, s, k, got.History[k].Gap, ref.History[k].Gap)
				}
			}
		}
	}
}

func TestSVMAlphaBoxConstraint(t *testing.T) {
	a, b := svmProblem(8)
	lambda := 0.5
	res, err := SVM(a, b, SVMOptions{Lambda: lambda, Loss: SVML1, Iters: 8000, Seed: 9, S: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i, al := range res.Alpha {
		if al < 0 || al > lambda {
			t.Fatalf("alpha[%d] = %v outside [0, %v]", i, al, lambda)
		}
	}
	// L2 has no upper bound but must stay nonnegative.
	res2, err := SVM(a, b, SVMOptions{Lambda: lambda, Loss: SVML2, Iters: 8000, Seed: 9, S: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i, al := range res2.Alpha {
		if al < 0 {
			t.Fatalf("L2 alpha[%d] = %v negative", i, al)
		}
	}
}

func TestSVMEarlyStopOnTol(t *testing.T) {
	a, b := svmProblem(10)
	res, err := SVM(a, b, SVMOptions{Lambda: 1, Iters: 100000, Seed: 11, TrackEvery: 500, Tol: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters >= 100000 {
		t.Fatalf("did not stop early (iters=%d, gap=%v)", res.Iters, res.Gap)
	}
	if res.Gap > 1.0 {
		t.Fatalf("stopped with gap %v above tol", res.Gap)
	}
	// SA path with the same tolerance also stops early.
	sa, err := SVM(a, b, SVMOptions{Lambda: 1, Iters: 100000, Seed: 11, TrackEvery: 500, Tol: 1.0, S: 100})
	if err != nil {
		t.Fatal(err)
	}
	if sa.Iters >= 100000 {
		t.Fatalf("SA did not stop early (iters=%d)", sa.Iters)
	}
}

func TestSVMWarmStart(t *testing.T) {
	a, b := svmProblem(12)
	long, err := SVM(a, b, SVMOptions{Lambda: 1, Iters: 20000, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := SVM(a, b, SVMOptions{Lambda: 1, Iters: 100, Seed: 14, Alpha0: long.Alpha})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Gap > long.Gap*2+1e-6 {
		t.Fatalf("warm start lost progress: gap %v vs %v", warm.Gap, long.Gap)
	}
}

func TestSVMDenseRowsPath(t *testing.T) {
	d := datagen.DenseClassification("test", 15, 80, 40, 0.05)
	a := sparse.DenseRows{A: d.Dense}
	ref, err := SVM(a, d.B, SVMOptions{Lambda: 1, Iters: 3000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sa, err := SVM(a, d.B, SVMOptions{Lambda: 1, Iters: 3000, Seed: 1, S: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.X {
		if math.Abs(sa.X[i]-ref.X[i]) > 1e-8*(1+math.Abs(ref.X[i])) {
			t.Fatalf("dense SA x[%d] mismatch", i)
		}
	}
}

func TestSVML2ConvergesFasterThanL1(t *testing.T) {
	// §VI: "SVM-L2 converges faster than SVM-L1 since the loss function is
	// smoothed". Compare duality gaps relative to their initial values
	// after the same iteration budget.
	a, b := svmProblem(16)
	iters := 6000
	l1, err := SVM(a, b, SVMOptions{Lambda: 1, Loss: SVML1, Iters: iters, Seed: 17, TrackEvery: iters})
	if err != nil {
		t.Fatal(err)
	}
	l2, err := SVM(a, b, SVMOptions{Lambda: 1, Loss: SVML2, Iters: iters, Seed: 17, TrackEvery: iters})
	if err != nil {
		t.Fatal(err)
	}
	// Both should have made progress; this is a soft expectation, so only
	// fail when L2 is dramatically worse, and log otherwise.
	if l2.Gap > 10*l1.Gap+1e-9 {
		t.Fatalf("L2 gap %v far worse than L1 gap %v", l2.Gap, l1.Gap)
	}
	t.Logf("gap after %d iters: L1=%.3e L2=%.3e", iters, l1.Gap, l2.Gap)
}

func TestSVMLossString(t *testing.T) {
	if SVML1.String() != "svm-l1" || SVML2.String() != "svm-l2" {
		t.Fatal("loss names")
	}
}
