package core

import (
	"errors"
	"fmt"

	"saco/internal/mat"
	"saco/internal/rng"
)

// This file exports the HOGWILD! solver loop as a steppable state
// machine. The batch entry points (Lasso/SVM with BackendAsync) run a
// fixed iteration budget and join; a model-serving refit loop instead
// needs to keep solver workers running indefinitely against a live
// coefficient vector while a publisher thread snapshots it — so the
// worker inner loop is factored into AsyncLasso/AsyncSVM plus
// per-worker Step methods, and async.go drives exactly these steppers.
// That identity is what keeps the exported surface pinned by the async
// backend's tests: a single worker stepping an AsyncLasso replays the
// sequential solver bit for bit.

// asyncDampGrace is the worker count below which no step damping is
// applied. The HOGWILD! regime the async tests pin — small worker
// counts on sparse problems — tolerates undamped steps (that is the
// point of the method), so damping would only slow it down; the delay
// term matters once workers heavily outnumber what runs concurrently
// and stale reads age across whole scheduling quanta.
const asyncDampGrace = 8

// asyncDamping returns the multiplicative step-size scale 1/(1+ρ) the
// async solvers apply at very high worker counts (the ROADMAP damping
// item). ρ estimates the collision rate of concurrent lock-free
// updates — the expected number of other in-flight updates touching the
// rows a worker is reading — in the spirit of the delay analyses of
// HOGWILD!-style methods (Niu et al.; Zhou et al., PAPERS.md): with w
// workers each updating a block of µ coordinates whose columns have
// density f, a given residual element is shared with roughly w·µ·f
// concurrent updates; the first asyncDampGrace workers are exempt (see
// above). ρ is capped at 1, so the step is damped by at most half, and
// a single worker (or an unknown density) leaves the step exactly
// unchanged — preserving the 1-worker bitwise anchor.
func asyncDamping(workers, mu int, density float64) float64 {
	if workers <= asyncDampGrace || density <= 0 {
		return 1
	}
	rho := float64(workers-asyncDampGrace) * float64(mu) * density
	if rho > 1 {
		rho = 1
	}
	return 1 / (1 + rho)
}

// densityReporter is the optional capability the damping heuristic
// consults; sparse.CSR/CSC and the dense views implement it. Matrices
// without it are treated as density-unknown (no damping).
type densityReporter interface{ Density() float64 }

func densityOf(a interface{ Dims() (int, int) }) float64 {
	if d, ok := a.(densityReporter); ok {
		return d.Density()
	}
	return 0
}

// AsyncLasso is the shared state of a lock-free (HOGWILD!) coordinate-
// descent Lasso solve: one atomic iterate x and one atomic residual
// image r = A·x − b, updated by any number of AsyncLassoWorker steppers
// with no locks and no barriers. Construct with NewAsyncLasso, obtain
// one worker per goroutine with Worker, and call Step in any
// interleaving; X exposes the live coefficient vector so a serving
// layer can snapshot models mid-training.
type AsyncLasso struct {
	ac      asyncColMatrix
	b       []float64
	opt     LassoOptions
	g       Regularizer
	m, n    int
	damp    float64
	xv, rv  *mat.AtomicVec
	streams []*rng.Stream
}

// NewAsyncLasso validates the problem and builds the shared async state
// for the given worker count. opt.Iters is not consumed here — the
// caller decides how many Steps each worker takes; opt.X0 seeds the
// live iterate (warm start), and opt.Seed fixes the sampling streams
// (worker 0's stream is the sequential solver's stream, the bitwise
// anchor). Accelerated variants have no async analogue and are
// rejected, as are matrices without atomic kernels.
func NewAsyncLasso(a ColMatrix, b []float64, workers int, opt LassoOptions) (*AsyncLasso, error) {
	if opt.Accelerated {
		return nil, errors.New("core: BackendAsync does not support the accelerated Lasso variants (acceleration needs an ordered θ-schedule); use plain CD/BCD or a deterministic backend")
	}
	ac, ok := a.(asyncColMatrix)
	if !ok {
		return nil, fmt.Errorf("core: matrix type %T does not provide atomic kernels for BackendAsync (sparse.CSC and sparse.DenseCols do)", a)
	}
	m, n := a.Dims()
	vopt := opt
	if vopt.Iters <= 0 {
		vopt.Iters = 1 // the stepper has no iteration budget to validate
	}
	if err := vopt.validate(m, n, len(b)); err != nil {
		return nil, err
	}
	if workers < 1 {
		workers = 1
	}

	x := make([]float64, n)
	if opt.X0 != nil {
		copy(x, opt.X0)
	}
	r := make([]float64, m)
	a.MulVec(x, r)
	mat.Axpy(-1, b, r) // r = A·x0 − b

	return &AsyncLasso{
		ac: ac, b: b, opt: opt, g: opt.Regularizer(), m: m, n: n,
		damp:    asyncDamping(workers, opt.mu(), densityOf(a)),
		xv:      mat.NewAtomicVecFrom(x),
		rv:      mat.NewAtomicVecFrom(r),
		streams: asyncStreams(opt.Seed, workers),
	}, nil
}

// Workers returns the worker count the state was built for.
func (s *AsyncLasso) Workers() int { return len(s.streams) }

// Damping returns the step-size scale applied to every worker's step
// (1 for a single worker or unknown density; see asyncDamping).
func (s *AsyncLasso) Damping() float64 { return s.damp }

// X returns the live atomic coefficient vector the workers update.
// Element reads are atomic but a multi-element read is not a consistent
// cut; consumers wanting a publishable model should use SnapshotX and
// treat the copy as the model.
func (s *AsyncLasso) X() *mat.AtomicVec { return s.xv }

// SnapshotX copies the live iterate into dst (allocated when nil) with
// atomic element loads.
func (s *AsyncLasso) SnapshotX(dst []float64) []float64 { return s.xv.Snapshot(dst) }

// Objective evaluates the objective from the maintained residual. It is
// exact when the workers are quiescent; mid-flight it is an estimate
// racing the updates.
func (s *AsyncLasso) Objective() float64 {
	return LassoObjective(s.rv.Snapshot(nil), s.xv.Snapshot(nil), s.g)
}

// ObjectiveAt evaluates the exact objective of an arbitrary iterate x
// (typically a SnapshotX taken while workers run), recomputing the
// residual from scratch rather than trusting the racy maintained one.
func (s *AsyncLasso) ObjectiveAt(x []float64) float64 {
	r := make([]float64, s.m)
	s.ac.MulVec(x, r)
	mat.Axpy(-1, s.b, r)
	return LassoObjective(r, x, s.g)
}

// Worker returns stepper k (0 ≤ k < Workers). Each worker owns its
// sampling stream and scratch buffers; one worker must not be stepped
// from two goroutines, but distinct workers may run concurrently.
func (s *AsyncLasso) Worker(k int) *AsyncLassoWorker {
	smp := &BlockSampler{r: s.streams[k], n: s.n, mu: s.opt.mu(), groups: s.opt.Groups}
	muMax := smp.MaxBlock()
	return &AsyncLassoWorker{
		s: s, smp: smp,
		gram:  mat.NewDense(muMax, muMax),
		grad:  make([]float64, muMax),
		wbuf:  make([]float64, muMax),
		gv:    make([]float64, muMax),
		delta: make([]float64, muMax),
	}
}

// AsyncLassoWorker is one HOGWILD! solver worker: private sampling
// stream and scratch, shared atomic iterate and residual.
type AsyncLassoWorker struct {
	s                     *AsyncLasso
	smp                   *BlockSampler
	gram                  *mat.Dense
	grad, wbuf, gv, delta []float64
}

// Step performs one (block) proximal coordinate update against the
// shared iterate: sample a block, read the (stale) gradient through the
// atomic residual, prox, and scatter the delta back with atomic adds.
// The step size is 1/λmax of the sampled block scaled by the collision
// damping.
func (w *AsyncLassoWorker) Step() {
	s := w.s
	idx := w.smp.Next()
	mu := len(idx)
	gb := mat.NewDenseData(mu, mu, w.gram.Data[:mu*mu])
	s.ac.ColGram(idx, gb) // read-only: plain kernel is safe
	v := blockLargestEig(gb)
	s.ac.ColTMulVecAtomic(idx, s.rv, w.grad[:mu])
	s.xv.Gather(w.wbuf[:mu], idx)
	var eta float64
	if v > 0 {
		eta = s.damp / v
		for i := 0; i < mu; i++ {
			w.gv[i] = w.wbuf[i] - eta*w.grad[i]
		}
	} else {
		eta = BigEta
		copy(w.gv[:mu], w.wbuf[:mu])
	}
	s.g.Prox(eta, w.gv[:mu])
	for i := 0; i < mu; i++ {
		w.delta[i] = w.gv[i] - w.wbuf[i]
	}
	s.xv.ScatterAdd(w.delta[:mu], idx)
	s.ac.ColMulAddAtomic(idx, w.delta[:mu], s.rv)
}

// AsyncSVM is the shared state of the lock-free asynchronous dual
// coordinate-descent SVM (PASSCoDe-Atomic): atomic dual vector α kept
// exactly in its box by CAS, atomic primal x updated by atomic adds.
type AsyncSVM struct {
	ar        asyncRowMatrix
	b         []float64
	opt       SVMOptions
	gamma, nu float64
	m, n      int
	damp      float64
	av, xv    *mat.AtomicVec
	streams   []*rng.Stream
}

// NewAsyncSVM validates the problem and builds the shared async state.
// opt.Iters is not consumed (callers budget Steps themselves);
// opt.Alpha0 warm-starts the dual, with the primal rebuilt to match.
func NewAsyncSVM(a RowMatrix, b []float64, workers int, opt SVMOptions) (*AsyncSVM, error) {
	ar, ok := a.(asyncRowMatrix)
	if !ok {
		return nil, fmt.Errorf("core: matrix type %T does not provide atomic kernels for BackendAsync (sparse.CSR and sparse.DenseRows do)", a)
	}
	m, n := a.Dims()
	vopt := opt
	if vopt.Iters <= 0 {
		vopt.Iters = 1
	}
	if err := vopt.validate(m, len(b)); err != nil {
		return nil, err
	}
	if workers < 1 {
		workers = 1
	}
	gamma, nu := opt.GammaNu()

	alpha := make([]float64, m)
	x := make([]float64, n)
	if opt.Alpha0 != nil {
		copy(alpha, opt.Alpha0)
		for i, ai := range alpha {
			if ai != 0 {
				a.RowTAxpy(i, ai*b[i], x)
			}
		}
	}

	return &AsyncSVM{
		ar: ar, b: b, opt: opt, gamma: gamma, nu: nu, m: m, n: n,
		damp:    asyncDamping(workers, 1, densityOf(a)),
		av:      mat.NewAtomicVecFrom(alpha),
		xv:      mat.NewAtomicVecFrom(x),
		streams: asyncStreams(opt.Seed, workers),
	}, nil
}

// Workers returns the worker count the state was built for.
func (s *AsyncSVM) Workers() int { return len(s.streams) }

// Damping returns the step-size scale applied to every worker's step.
func (s *AsyncSVM) Damping() float64 { return s.damp }

// X returns the live atomic primal vector (see AsyncLasso.X for the
// consistency caveat).
func (s *AsyncSVM) X() *mat.AtomicVec { return s.xv }

// SnapshotX copies the live primal vector into dst (allocated when nil).
func (s *AsyncSVM) SnapshotX(dst []float64) []float64 { return s.xv.Snapshot(dst) }

// SnapshotAlpha copies the live dual vector into dst (allocated when
// nil).
func (s *AsyncSVM) SnapshotAlpha(dst []float64) []float64 { return s.av.Snapshot(dst) }

// ObjectivesAt evaluates primal, dual and gap for an (x, α) snapshot
// pair, recomputing the margins from scratch.
func (s *AsyncSVM) ObjectivesAt(x, alpha []float64) (primal, dual, gap float64) {
	margins := make([]float64, s.m)
	s.ar.MulVec(x, margins)
	return SVMObjectives(x, alpha, margins, s.b, s.opt.Lambda, s.gamma, s.opt.Loss)
}

// Worker returns stepper k (0 ≤ k < Workers); one worker per goroutine.
func (s *AsyncSVM) Worker(k int) *AsyncSVMWorker {
	return &AsyncSVMWorker{s: s, r: s.streams[k]}
}

// AsyncSVMWorker is one lock-free dual-CD worker.
type AsyncSVMWorker struct {
	s *AsyncSVM
	r *rng.Stream
}

// Step performs one projected-Newton dual coordinate update against a
// stale primal read, keeping α exactly inside its box with a CAS loop.
// The collision damping divides the step (multiplies the curvature), so
// high worker counts take proportionally smaller steps.
func (w *AsyncSVMWorker) Step() {
	s := w.s
	i := w.r.Intn(s.m)
	eta := (s.ar.RowNormSq(i) + s.gamma) / s.damp
	dot := s.ar.RowDotAtomic(i, s.xv)
	// CAS keeps α_i in [0, ν] exactly even when two workers collide on
	// the coordinate: the loser recomputes its step from the fresh dual
	// value (the margin read stays stale — that is the async part).
	var theta float64
	for {
		ai := s.av.Load(i)
		g := s.b[i]*dot - 1 + s.gamma*ai
		if gt := Clip(ai-g, 0, s.nu) - ai; gt == 0 {
			theta = 0
			break
		}
		theta = Clip(ai-g/eta, 0, s.nu) - ai
		if theta == 0 || s.av.CompareAndSwap(i, ai, ai+theta) {
			break
		}
	}
	if theta != 0 {
		s.ar.RowTAxpyAtomic(i, theta*s.b[i], s.xv)
	}
}
