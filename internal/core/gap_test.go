package core

import (
	"math"
	"testing"

	"saco/internal/mat"
)

func residualOf(a ColMatrix, b, x []float64) []float64 {
	m, _ := a.Dims()
	r := make([]float64, m)
	a.MulVec(x, r)
	mat.Axpy(-1, b, r)
	return r
}

func TestLassoDualityGapNonnegativeAndShrinks(t *testing.T) {
	a, b, lambda := testProblem(40)
	_, n := a.Dims()

	// At x = 0 the gap is large (equals the full suboptimality bound).
	zero := make([]float64, n)
	g0 := LassoDualityGap(a, b, zero, residualOf(a, b, zero), lambda)
	if g0 <= 0 {
		t.Fatalf("gap at zero = %v, want positive", g0)
	}

	// After optimization the gap must be far smaller and nonnegative.
	res, err := Lasso(a, b, LassoOptions{Lambda: lambda, Iters: 4000, BlockSize: 4, Accelerated: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	g := LassoDualityGap(a, b, res.X, residualOf(a, b, res.X), lambda)
	if g < 0 {
		t.Fatalf("gap = %v, violates weak duality", g)
	}
	if g > 0.01*g0 {
		t.Fatalf("gap %v did not shrink from %v", g, g0)
	}
}

// The gap upper-bounds true suboptimality: P(x) − P(x_best) <= gap(x).
func TestLassoDualityGapBoundsSuboptimality(t *testing.T) {
	a, b, lambda := testProblem(41)
	best, err := Lasso(a, b, LassoOptions{Lambda: lambda, Iters: 6000, BlockSize: 4, Accelerated: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	rough, err := Lasso(a, b, LassoOptions{Lambda: lambda, Iters: 150, BlockSize: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	gap := LassoDualityGap(a, b, rough.X, residualOf(a, b, rough.X), lambda)
	subopt := rough.Objective - best.Objective
	if subopt > gap+1e-9 {
		t.Fatalf("suboptimality %v exceeds certificate %v", subopt, gap)
	}
}

func TestLassoDualityGapZeroResidualEdge(t *testing.T) {
	// Perfectly fit data (b = A·x, λ small): the gap at the fit is ~λ‖x‖₁
	// minus the dual correlation term and must not be NaN.
	a, b, _ := testProblem(42)
	_, n := a.Dims()
	x := make([]float64, n)
	gap := LassoDualityGap(a, b, x, residualOf(a, b, x), 0)
	if math.IsNaN(gap) || gap < 0 {
		t.Fatalf("gap = %v for lambda = 0", gap)
	}
}
