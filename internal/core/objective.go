package core

import (
	"math"

	"saco/internal/mat"
)

var inf = math.Inf(1)

// LassoObjective returns ½‖res‖² + g(x) given the residual res = A·x − b.
// The paper's Fig. 2 convergence metric.
func LassoObjective(res, x []float64, g Regularizer) float64 {
	return 0.5*mat.Nrm2Sq(res) + g.Value(x)
}

// svmPrimal returns P(x) = ½‖x‖² + λ·Σ loss(1 − bᵢ·marginᵢ) for the
// given margins A·x.
func svmPrimal(margins, b []float64, lambda float64, loss SVMLoss) float64 {
	var sum float64
	for i, m := range margins {
		xi := 1 - b[i]*m
		if xi <= 0 {
			continue
		}
		if loss == SVML2 {
			sum += xi * xi
		} else {
			sum += xi
		}
	}
	return lambda * sum
}

// SVMObjectives returns the primal value P(x), dual value D(α) and the
// duality gap P − D. Margins must hold A·x; x is the primal vector
// maintained by the solvers, γ the diagonal regularization of the dual
// (0 for L1, 1/(2λ) for L2). Strong duality makes the gap a rigorous
// optimality certificate, the criterion used in Fig. 5 and Table V.
func SVMObjectives(x, alpha, margins, b []float64, lambda, gamma float64, loss SVMLoss) (primal, dual, gap float64) {
	return SVMObjectivesFromParts(mat.Nrm2Sq(x), alpha, margins, b, lambda, gamma, loss)
}

// SVMObjectivesFromParts is SVMObjectives with ‖x‖² already reduced. The
// distributed solver owns only a column slice of x per rank and sums the
// squared norms with an Allreduce, so it cannot hand over the full
// vector.
func SVMObjectivesFromParts(xNormSq float64, alpha, margins, b []float64, lambda, gamma float64, loss SVMLoss) (primal, dual, gap float64) {
	primal = 0.5*xNormSq + svmPrimal(margins, b, lambda, loss)
	var sumAlpha, alphaSq float64
	for _, a := range alpha {
		sumAlpha += a
		alphaSq += a * a
	}
	dual = sumAlpha - 0.5*xNormSq - 0.5*gamma*alphaSq
	return primal, dual, primal - dual
}

// LambdaMaxL1 returns ‖Aᵀb‖_∞, the smallest λ for which the Lasso
// solution is identically zero. Experiments set λ as a fraction of it —
// the substitution (documented in DESIGN.md) for the paper's
// λ = 100·σ_min(A), which needs a full SVD this repository's problem
// sizes make pointless.
func LambdaMaxL1(a ColMatrix, b []float64) float64 {
	_, n := a.Dims()
	dst := make([]float64, n)
	cols := make([]int, n)
	for j := range cols {
		cols[j] = j
	}
	a.ColTMulVec(cols, b, dst)
	return mat.AmaxAbs(dst)
}

// Clip returns v clamped to [lo, hi]; exported for package dist, whose
// ranks replicate the projected dual coordinate step.
func Clip(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
