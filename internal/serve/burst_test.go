package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestWatcherPublishBurst: a watcher facing a rapid burst of
// rename-publishes from another handle must converge on the newest
// version with no torn state — every model it serves along the way is
// whole (its version's exact artifact), and a corrupt file dropped
// mid-burst is skipped, not served and not fatal.
func TestWatcherPublishBurst(t *testing.T) {
	dir := t.TempDir()
	writer, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	writer.Retain = -1 // keep the burst on disk so every version stays checkable
	reader, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	reader.Watch(2 * time.Millisecond)
	defer reader.StopWatch()

	// Observe the reader concurrently with the burst: every model it
	// serves must be a whole artifact (each publish tags its Lambda
	// with its own nonzero count, so a mix of two versions' fields
	// would break the tag) and versions must only move forward.
	const publishes = 40
	stopObs := make(chan struct{})
	obsErr := make(chan error, 1)
	go func() {
		defer close(obsErr)
		var lastV uint64
		for {
			select {
			case <-stopObs:
				return
			default:
			}
			m := reader.Current()
			if m == nil {
				continue
			}
			if int(m.Lambda) != m.NNZ() {
				obsErr <- fmt.Errorf("torn state: version %d served with %d nonzeros, tag says %v", m.Version, m.NNZ(), m.Lambda)
				return
			}
			if m.Version < lastV {
				obsErr <- fmt.Errorf("version went backwards: %d after %d", m.Version, lastV)
				return
			}
			lastV = m.Version
		}
	}()

	for v := 1; v <= publishes; v++ {
		x := make([]float64, 64)
		for j := 0; j <= v; j++ { // v+1 nonzeros, echoed in the Lambda tag
			x[j] = float64(j + 1)
		}
		m := NewModel(KindLasso, x)
		m.Lambda = float64(m.NNZ())
		if _, err := writer.Publish(m); err != nil {
			t.Fatal(err)
		}
		if v == publishes/2 {
			// Drop garbage with a higher version number than anything
			// published so far: the watcher must skip it and keep
			// swapping to real versions underneath it. (The writer's
			// never-reuse-a-number rule means later publishes jump past
			// the decoy — that is correct, not an anomaly.)
			bad := filepath.Join(dir, fmt.Sprintf(modelFilePattern, uint64(publishes+100)))
			if err := os.WriteFile(bad, []byte("SACOMDL1 but truncated garbage"), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}

	// The watcher must converge on the writer's newest real version
	// despite the corrupt decoy numbered above it.
	deadline := time.Now().Add(5 * time.Second)
	for reader.Version() != writer.Version() {
		if time.Now().After(deadline) {
			t.Fatalf("watcher stuck at version %d, want %d", reader.Version(), writer.Version())
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(stopObs)
	if err := <-obsErr; err != nil {
		t.Fatal(err)
	}
	if m := reader.Current(); m.NNZ() != publishes+1 {
		t.Fatalf("final model has %d nonzeros, want %d", m.NNZ(), publishes+1)
	}
}
