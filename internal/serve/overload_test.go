package serve

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"saco/internal/metrics"
)

// newHTTPServer mounts an already-built Server into httptest.
func newHTTPServer(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return ts
}

// get fetches a URL and returns (status, bytes).
func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// TestAdmissionControlSheds drives a deliberately starved server (one-
// deep queue, long batch window, tiny queue-delay budget) far past
// capacity and checks the overload contract: every request is answered
// (200 or 429 — the ledger adds up, nothing deadlocks), every 429
// carries Retry-After, and the server's shed count reconciles exactly
// with the 429s the driver observed.
func TestAdmissionControlSheds(t *testing.T) {
	reg, err := OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Publish(testModel(KindLasso, 64, 9, 1)); err != nil {
		t.Fatal(err)
	}
	// A long batch window with a short queue-delay budget guarantees
	// deadline sheds: the first jobs of each batch wait out the window
	// and blow their budget, late arrivals score. (Queue-full rejects
	// can add to the mix; both paths answer 429 and tick the same shed
	// ledger.)
	mr := metrics.NewRegistry()
	s := NewServer(reg, Options{
		Workers:       1,
		QueueDepth:    64,
		MaxBatch:      256,
		BatchWindow:   50 * time.Millisecond,
		MaxQueueDelay: 10 * time.Millisecond,
		Metrics:       mr,
	})
	ts := newHTTPServer(t, s)

	const clients = 16
	const perClient = 12
	var ok200, ok429 atomic.Uint64
	var wg sync.WaitGroup
	body := []byte("1:0.5 3:1.25\n")
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				resp, err := http.Post(ts.URL+"/predict", "text/plain", strings.NewReader(string(body)))
				if err != nil {
					t.Error(err)
					return
				}
				switch resp.StatusCode {
				case http.StatusOK:
					ok200.Add(1)
				case http.StatusTooManyRequests:
					if resp.Header.Get("Retry-After") == "" {
						t.Error("429 without Retry-After")
					}
					ok429.Add(1)
				default:
					t.Errorf("unexpected status %d", resp.StatusCode)
				}
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()

	total := ok200.Load() + ok429.Load()
	if total != clients*perClient {
		t.Fatalf("ledger mismatch: %d answers for %d requests", total, clients*perClient)
	}
	if ok429.Load() == 0 {
		t.Fatal("starved server shed nothing — admission control inactive")
	}
	if shed := s.stats.shed.Load(); shed != ok429.Load() {
		t.Fatalf("server shed count %d, driver observed %d 429s", shed, ok429.Load())
	}

	// The drained server still answers — and the probe joins the ledger
	// so the /metrics scrape below reconciles exactly.
	switch status, _ := post(t, ts.URL+"/predict", "text/plain", body); status {
	case http.StatusOK:
		ok200.Add(1)
	case http.StatusTooManyRequests:
		ok429.Add(1)
	default:
		t.Fatalf("post-burst request answered %d", status)
	}
	_, scrape := get(t, ts.URL+"/metrics")
	if want := fmt.Sprintf("saco_shed_total %d", ok429.Load()); !strings.Contains(string(scrape), want) {
		t.Fatalf("scrape missing %q:\n%s", want, scrape)
	}
	if want := fmt.Sprintf("saco_rows_scored_total %d", ok200.Load()); !strings.Contains(string(scrape), want) {
		t.Fatalf("scrape missing %q (one row per 200):\n%s", want, scrape)
	}
}

// TestQueueFullFastReject: with the dispatcher unable to drain (no
// model needed — the queue itself is the gate), surplus enqueues are
// rejected immediately rather than blocking the handler.
func TestQueueFullFastReject(t *testing.T) {
	reg, err := OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Publish(testModel(KindLasso, 64, 9, 1)); err != nil {
		t.Fatal(err)
	}
	s := NewServer(reg, Options{
		Workers:     1,
		QueueDepth:  1,
		MaxBatch:    1,
		BatchWindow: time.Millisecond,
	})
	ts := newHTTPServer(t, s)

	var shed atomic.Uint64
	var wg sync.WaitGroup
	for c := 0; c < 32; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/predict", "text/plain", strings.NewReader("1:1\n"))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode == http.StatusTooManyRequests {
				shed.Add(1)
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("overloaded server deadlocked")
	}
}
