package serve

import (
	"fmt"
	"net/http"
	"time"

	"saco/internal/sparse"
)

// The micro-batcher. Concurrent /predict requests land as predictJobs
// on one channel; the dispatcher goroutine coalesces whatever arrives
// within a short window (or until a row cap) into a single sparse
// matrix and makes one batched kernel call on the persistent worker
// pool — the serving-side analogue of the solvers' batched Gram
// kernels, where one dispatch amortizes across many rows.
//
// Correctness under hot swaps is by construction: the dispatcher loads
// the registry pointer once per batch and scores every row of the
// batch against that one immutable model, so no request can ever see a
// mix of two versions, and the response reports which version scored
// it.

// predictJob is one request's parsed rows plus its reply channel.
type predictJob struct {
	cols   [][]int // per row: 0-based, strictly increasing
	vals   [][]float64
	maxCol int // largest index across rows, -1 when all rows empty
	resp   chan predictResult
}

// predictResult is what the dispatcher sends back: scores against one
// model version, or an HTTP-ready error.
type predictResult struct {
	scores  []float64
	model   *Model
	status  int // non-zero = error
	errText string
}

// dispatch is the batcher loop: take one job, linger BatchWindow for
// companions (up to MaxBatch rows), score the coalesced batch.
func (s *Server) dispatch() {
	defer close(s.done)
	for {
		select {
		case <-s.stop:
			return
		case j := <-s.jobs:
			batch := []*predictJob{j}
			rows := len(j.cols)
			if rows < s.opt.MaxBatch {
				timer := time.NewTimer(s.opt.BatchWindow)
			collect:
				for rows < s.opt.MaxBatch {
					select {
					case j2 := <-s.jobs:
						batch = append(batch, j2)
						rows += len(j2.cols)
					case <-timer.C:
						break collect
					}
				}
				timer.Stop()
			}
			s.scoreBatch(batch, rows)
		}
	}
}

// scoreBatch scores every job in the batch against one atomic load of
// the serving model.
func (s *Server) scoreBatch(batch []*predictJob, totalRows int) {
	m := s.reg.Current()
	if m == nil {
		for _, j := range batch {
			j.resp <- predictResult{status: http.StatusServiceUnavailable, errText: "no model loaded yet"}
		}
		return
	}

	// Per-job dimensionality check against this batch's model snapshot;
	// oversized requests fail alone, not the whole batch.
	valid := batch[:0:0]
	validRows := 0
	for _, j := range batch {
		if j.maxCol >= m.Features {
			j.resp <- predictResult{
				status:  http.StatusBadRequest,
				errText: fmt.Sprintf("feature index %d exceeds model dimensionality %d (model version %d)", j.maxCol+1, m.Features, m.Version),
			}
			continue
		}
		valid = append(valid, j)
		validRows += len(j.cols)
	}
	if len(valid) == 0 {
		return
	}

	// Assemble the batch matrix and make the one kernel call.
	rowPtr := make([]int, 1, validRows+1)
	var colIdx []int
	var vals []float64
	for _, j := range valid {
		for r := range j.cols {
			colIdx = append(colIdx, j.cols[r]...)
			vals = append(vals, j.vals[r]...)
			rowPtr = append(rowPtr, len(vals))
		}
	}
	a, err := sparse.NewCSR(validRows, m.Features, rowPtr, colIdx, vals)
	if err == nil {
		y := make([]float64, validRows)
		if err = m.Score(a, s.opt.Workers, y); err == nil {
			off := 0
			for _, j := range valid {
				j.resp <- predictResult{scores: y[off : off+len(j.cols)], model: m}
				off += len(j.cols)
			}
			s.stats.batches.Add(1)
			s.stats.rowsScored.Add(uint64(validRows))
			s.stats.maxBatchRows.Max(uint64(validRows))
			return
		}
	}
	// Assembly or scoring rejected the batch wholesale (malformed rows
	// slipping past parsing would be a server bug; report, don't hang).
	for _, j := range valid {
		j.resp <- predictResult{status: http.StatusInternalServerError, errText: err.Error()}
	}
}
