package serve

import (
	"fmt"
	"net/http"
	"time"

	"saco/internal/sparse"
)

// The micro-batcher. Concurrent /predict requests land as predictJobs
// on one bounded channel; the dispatcher goroutine coalesces whatever
// arrives within a short window (or until a row cap) into per-model
// sparse matrices and makes one batched kernel call per model on the
// persistent worker pool — the serving-side analogue of the solvers'
// batched Gram kernels, where one dispatch amortizes across many rows.
//
// Correctness under hot swaps is by construction: the dispatcher loads
// each registry pointer once per batch group and scores every row of
// the group against that one immutable model, so no request can ever
// see a mix of two versions, and the response reports which version
// scored it.
//
// The same queue is the admission-control surface: handlers enqueue
// non-blocking (full queue = immediate 429), and when MaxQueueDelay is
// set the dispatcher sheds jobs that already overstayed it before
// spending kernel time on them.

// predictJob is one request's parsed rows plus its reply channel.
type predictJob struct {
	reg    *Registry // the model registry this job scores against
	cols   [][]int   // per row: 0-based, strictly increasing
	vals   [][]float64
	maxCol int       // largest index across rows, -1 when all rows empty
	enq    time.Time // when the handler enqueued the job (shedding deadline)
	resp   chan predictResult
}

// predictResult is what the dispatcher sends back: scores against one
// model version, or an HTTP-ready error.
type predictResult struct {
	scores  []float64
	model   *Model
	status  int // non-zero = error
	errText string
}

// dispatch is the batcher loop: take one job, linger BatchWindow for
// companions (up to MaxBatch rows), shed the stale, score the rest.
func (s *Server) dispatch() {
	defer close(s.done)
	for {
		select {
		case <-s.stop:
			return
		case j := <-s.jobs:
			batch := []*predictJob{j}
			rows := len(j.cols)
			if rows < s.opt.MaxBatch {
				timer := time.NewTimer(s.opt.BatchWindow)
			collect:
				for rows < s.opt.MaxBatch {
					select {
					case j2 := <-s.jobs:
						batch = append(batch, j2)
						rows += len(j2.cols)
					case <-timer.C:
						break collect
					}
				}
				timer.Stop()
			}
			batch, rows = s.shedStale(batch, rows)
			if len(batch) == 0 {
				continue
			}
			begin := time.Now()
			s.scoreBatch(batch)
			s.met.batchLatency.Observe(time.Since(begin).Seconds())
		}
	}
}

// shedStale drops jobs that waited past MaxQueueDelay, answering each
// with 429 + Retry-After: their latency budget is spent, so kernel time
// is better given to the rest of the batch.
func (s *Server) shedStale(batch []*predictJob, rows int) ([]*predictJob, int) {
	if s.opt.MaxQueueDelay <= 0 {
		return batch, rows
	}
	now := time.Now()
	keep := batch[:0]
	for _, j := range batch {
		if now.Sub(j.enq) > s.opt.MaxQueueDelay {
			s.stats.shed.Add(1)
			s.met.shed.Inc()
			j.resp <- predictResult{
				status:  http.StatusTooManyRequests,
				errText: fmt.Sprintf("overloaded: job queued longer than %v", s.opt.MaxQueueDelay),
			}
			rows -= len(j.cols)
			continue
		}
		keep = append(keep, j)
	}
	return keep, rows
}

// scoreBatch partitions the batch by registry — a cluster replica's
// batch can mix models — preserving arrival order, and scores each
// group against one atomic load of its registry.
func (s *Server) scoreBatch(batch []*predictJob) {
	// First-appearance order, not map iteration: grouping must be
	// deterministic for the batched==sequential contract's sake.
	var order []*Registry
	groups := make(map[*Registry][]*predictJob, 1)
	for _, j := range batch {
		if _, ok := groups[j.reg]; !ok {
			order = append(order, j.reg)
		}
		groups[j.reg] = append(groups[j.reg], j)
	}
	for _, reg := range order {
		s.scoreGroup(reg, groups[reg])
	}
}

// scoreGroup scores every job in the group against one atomic load of
// the group's serving model.
func (s *Server) scoreGroup(reg *Registry, batch []*predictJob) {
	m := reg.Current()
	if m == nil {
		for _, j := range batch {
			j.resp <- predictResult{status: http.StatusServiceUnavailable, errText: "no model loaded yet"}
		}
		return
	}

	// Per-job dimensionality check against this batch's model snapshot;
	// oversized requests fail alone, not the whole batch.
	valid := batch[:0:0]
	validRows := 0
	for _, j := range batch {
		if j.maxCol >= m.Features {
			j.resp <- predictResult{
				status:  http.StatusBadRequest,
				errText: fmt.Sprintf("feature index %d exceeds model dimensionality %d (model version %d)", j.maxCol+1, m.Features, m.Version),
			}
			continue
		}
		valid = append(valid, j)
		validRows += len(j.cols)
	}
	if len(valid) == 0 {
		return
	}

	// Assemble the batch matrix and make the one kernel call.
	rowPtr := make([]int, 1, validRows+1)
	var colIdx []int
	var vals []float64
	for _, j := range valid {
		for r := range j.cols {
			colIdx = append(colIdx, j.cols[r]...)
			vals = append(vals, j.vals[r]...)
			rowPtr = append(rowPtr, len(vals))
		}
	}
	a, err := sparse.NewCSR(validRows, m.Features, rowPtr, colIdx, vals)
	if err == nil {
		y := make([]float64, validRows)
		if err = m.Score(a, s.opt.Workers, y); err == nil {
			off := 0
			for _, j := range valid {
				j.resp <- predictResult{scores: y[off : off+len(j.cols)], model: m}
				off += len(j.cols)
			}
			s.stats.batches.Add(1)
			s.stats.rowsScored.Add(uint64(validRows))
			s.stats.maxBatchRows.Max(uint64(validRows))
			s.met.batches.Inc()
			s.met.rows.Add(uint64(validRows))
			s.met.batchRows.Observe(float64(validRows))
			return
		}
	}
	// Assembly or scoring rejected the batch wholesale (malformed rows
	// slipping past parsing would be a server bug; report, don't hang).
	for _, j := range valid {
		j.resp <- predictResult{status: http.StatusInternalServerError, errText: err.Error()}
	}
}
