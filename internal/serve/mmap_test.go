package serve

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"saco/internal/stream"
)

// TestLoadModelFileMmap: the mmap load reproduces the copy load bit
// for bit — header, indices, coefficients, and scores.
func TestLoadModelFileMmap(t *testing.T) {
	if !stream.MmapSupported() {
		t.Skip("no mmap on this platform")
	}
	m := testModel(KindLasso, 500, 37, 7)
	m.Version = 3
	path := filepath.Join(t.TempDir(), "m.sacm")
	if err := WriteModelFile(path, m); err != nil {
		t.Fatal(err)
	}
	copied, err := LoadModelFileMode(path, LoadCopy)
	if err != nil {
		t.Fatal(err)
	}
	mapped, err := LoadModelFileMode(path, LoadMmap)
	if err != nil {
		t.Fatal(err)
	}
	if mapped.Kind != copied.Kind || mapped.Features != copied.Features ||
		mapped.TrainRows != copied.TrainRows || mapped.Lambda != copied.Lambda ||
		mapped.Version != copied.Version || mapped.NNZ() != copied.NNZ() {
		t.Fatalf("header mismatch: %+v vs %+v", mapped, copied)
	}
	for k := range copied.Idx {
		if mapped.Idx[k] != copied.Idx[k] ||
			math.Float64bits(mapped.Val[k]) != math.Float64bits(copied.Val[k]) {
			t.Fatalf("coef %d differs between load modes", k)
		}
	}

	// Scoring through the mapped model is bitwise the copy path.
	a := randRequestCSR(newTestRng(11), 16, copied.Features)
	yc := make([]float64, a.M)
	ym := make([]float64, a.M)
	if err := copied.Score(a, 1, yc); err != nil {
		t.Fatal(err)
	}
	if err := mapped.Score(a, 1, ym); err != nil {
		t.Fatal(err)
	}
	for i := range yc {
		if math.Float64bits(yc[i]) != math.Float64bits(ym[i]) {
			t.Fatalf("score %d: %x != %x", i, yc[i], ym[i])
		}
	}
	runtime.KeepAlive(mapped)
}

// TestLoadModelFileMmapFallbackText: a text-format model under
// LoadMmap silently takes the copy path — same result, no error.
func TestLoadModelFileMmapFallbackText(t *testing.T) {
	m := testModel(KindLasso, 100, 9, 3)
	path := filepath.Join(t.TempDir(), "m.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteTextModel(f, m); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := LoadModelFileMode(path, LoadMmap)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != KindRaw || got.Features != m.Features || got.NNZ() != m.NNZ() {
		t.Fatalf("text fallback loaded %+v", got)
	}
}

// TestLoadModelFileMmapCorrupt: a flipped payload byte fails the CRC in
// mmap mode exactly as in copy mode — the mapping is never trusted.
func TestLoadModelFileMmapCorrupt(t *testing.T) {
	if !stream.MmapSupported() {
		t.Skip("no mmap on this platform")
	}
	m := testModel(KindSVM, 200, 15, 5)
	path := filepath.Join(t.TempDir(), "m.sacm")
	if err := WriteModelFile(path, m); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[modelHeaderSize+3] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModelFileMode(path, LoadMmap); err == nil {
		t.Fatal("corrupt model must not load via mmap")
	}
	if _, err := LoadModelFileMode(path, LoadCopy); err == nil {
		t.Fatal("corrupt model must not load via copy")
	}
}

// TestRegistryMmapMode: a registry opened in mmap mode publishes,
// polls and serves like the copy-mode registry.
func TestRegistryMmapMode(t *testing.T) {
	dir := t.TempDir()
	reg, err := OpenRegistryMode(dir, LoadMmap)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Publish(testModel(KindLasso, 50, 7, 1)); err != nil {
		t.Fatal(err)
	}
	// A second handle sees the artifact through its own mmap poll.
	reg2, err := OpenRegistryMode(dir, LoadMmap)
	if err != nil {
		t.Fatal(err)
	}
	m := reg2.Current()
	if m == nil || m.Version != 1 || m.NNZ() != 7 {
		t.Fatalf("mmap registry served %+v", m)
	}
}

// newTestRng is the deterministic source the request generators use.
func newTestRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
