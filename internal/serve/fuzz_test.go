package serve

import (
	"bytes"
	"encoding/binary"
	"hash/crc64"
	"testing"
)

// fuzzSeedModel renders a small valid binary model for the seed corpus.
func fuzzSeedModel() []byte {
	m := NewModel(KindLasso, []float64{0, 1.5, 0, -2, 0.25})
	m.TrainRows = 7
	m.Lambda = 0.3
	m.Version = 4
	var buf bytes.Buffer
	if err := WriteModel(&buf, m); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// overflowingNNZModel builds a file whose nnz field is 2⁶⁰+k so that
// 16·nnz wraps modulo 2⁶⁴ and the declared size matches the actual
// length — the header-arithmetic overflow that once drove make() into a
// panic instead of an error.
func overflowingNNZModel() []byte {
	const k = 3
	data := make([]byte, modelHeaderSize+16*k+8)
	copy(data, modelMagic[:])
	le := binary.LittleEndian
	le.PutUint32(data[8:], modelFormatVersion)
	le.PutUint64(data[48:], 1<<60+k)
	le.PutUint64(data[len(data)-8:], crc64.Checksum(data[:len(data)-8], crcTable))
	return data
}

// TestReadModelOverflowingNNZRejected pins the overflow guard as a
// plain unit test (the fuzz corpus carries the same seed).
func TestReadModelOverflowingNNZRejected(t *testing.T) {
	if _, err := ReadModel(bytes.NewReader(overflowingNNZModel())); err == nil {
		t.Fatal("wrapping nnz header accepted")
	}
}

// FuzzLoadModel: the .sacm decoder feeds the serving registry from a
// watched directory, so it must treat every byte stream as hostile —
// malformed input always returns an error, never a panic, and never an
// allocation driven by a corrupt header (ReadModel validates the
// declared nnz against the actual file size before allocating). The
// checked-in corpus under testdata/fuzz/FuzzLoadModel replays on plain
// `go test`.
func FuzzLoadModel(f *testing.F) {
	valid := fuzzSeedModel()
	f.Add(valid)
	f.Add(valid[:len(valid)-3])           // truncated checksum
	f.Add(append([]byte{}, valid[8:]...)) // missing magic
	f.Add([]byte("SACOMDL1"))             // magic only
	f.Add([]byte("0.5\n-1.25\n0\n"))      // text model (LoadModelFile fallback)
	f.Add([]byte{})
	corrupt := append([]byte{}, valid...)
	corrupt[20] ^= 0xff // flip a dims byte under the checksum
	f.Add(corrupt)
	f.Add(overflowingNNZModel())
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadModel(bytes.NewReader(data))
		if err == nil {
			// An accepted model must satisfy the registry's structural
			// invariants — validate() is what every load path promises.
			if verr := m.validate(); verr != nil {
				t.Fatalf("ReadModel accepted an invalid model: %v", verr)
			}
			// And it must round-trip: decode(encode(m)) == m is what
			// makes the hot-swap artifacts trustworthy.
			var buf bytes.Buffer
			if werr := WriteModel(&buf, m); werr != nil {
				t.Fatalf("re-encode failed: %v", werr)
			}
			back, rerr := ReadModel(bytes.NewReader(buf.Bytes()))
			if rerr != nil {
				t.Fatalf("re-decode failed: %v", rerr)
			}
			if back.Features != m.Features || back.NNZ() != m.NNZ() || back.Kind != m.Kind {
				t.Fatal("model did not round-trip")
			}
		}
		// The text fallback must be equally panic-free.
		if tm, terr := ReadTextModel(bytes.NewReader(data)); terr == nil {
			if tm.validate() != nil {
				t.Fatal("ReadTextModel accepted an invalid model")
			}
		}
	})
}
