package serve

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"net"
	"net/http"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"saco/internal/metrics"
	"saco/internal/sparse"
)

// clusterReplica is one in-process saserve-equivalent: a Cluster over
// the shared root plus a Server on a real loopback listener (real
// listeners, not httptest, because the listen address doubles as the
// replica's ring identity).
type clusterReplica struct {
	addr string
	c    *Cluster
	srv  *Server
	mr   *metrics.Registry
	hs   *http.Server
}

// startCluster brings up n replicas over one shared model root.
func startCluster(t *testing.T, root string, n int) []*clusterReplica {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	reps := make([]*clusterReplica, n)
	for i := range reps {
		mr := metrics.NewRegistry()
		c, err := NewCluster(root, addrs[i], addrs, ClusterOptions{
			VNodes:      16,
			Mode:        LoadMmap,
			RescanEvery: 20 * time.Millisecond,
			Metrics:     mr,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv := NewClusterServer(c, Options{Workers: 1, QueueDepth: 512, LearnCap: 4096, Metrics: mr})
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(lns[i]) //nolint:errcheck // closed at cleanup
		reps[i] = &clusterReplica{addr: addrs[i], c: c, srv: srv, mr: mr, hs: hs}
	}
	t.Cleanup(func() {
		for _, r := range reps {
			r.hs.Close()
			r.srv.Close()
			r.c.Close()
		}
	})
	return reps
}

// libsvmBody renders rows as a LIBSVM /predict body; FormatFloat 'g'
// -1 round-trips every float64 bit for bit through the parser.
func libsvmBody(cols [][]int, vals [][]float64) []byte {
	var sb strings.Builder
	for r := range cols {
		for k, j := range cols[r] {
			if k > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(strconv.Itoa(j + 1))
			sb.WriteByte(':')
			sb.WriteString(strconv.FormatFloat(vals[r][k], 'g', -1, 64))
		}
		sb.WriteByte('\n')
	}
	return []byte(sb.String())
}

// randRows draws deterministic sparse request rows within n features.
func randRows(rng *rand.Rand, rows, n int) (cols [][]int, vals [][]float64) {
	for r := 0; r < rows; r++ {
		nnz := 1 + rng.Intn(6)
		perm := rng.Perm(n)[:nnz]
		c := append([]int(nil), perm...)
		for i := 1; i < len(c); i++ { // insertion sort: strictly increasing
			for j := i; j > 0 && c[j] < c[j-1]; j-- {
				c[j], c[j-1] = c[j-1], c[j]
			}
		}
		v := make([]float64, nnz)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		cols = append(cols, c)
		vals = append(vals, v)
	}
	return cols, vals
}

// modelCache loads published artifacts by (name, version), once each.
type modelCache struct {
	mu   sync.Mutex
	root string
	m    map[string]*Model
}

func (mc *modelCache) load(t *testing.T, name string, version uint64) *Model {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	key := fmt.Sprintf("%s@%d", name, version)
	if m := mc.m[key]; m != nil {
		return m
	}
	m, err := LoadModelFile(filepath.Join(mc.root, name, fmt.Sprintf(modelFilePattern, version)))
	if err != nil {
		t.Errorf("load %s: %v", key, err)
		return nil
	}
	mc.m[key] = m
	return m
}

// scrapeValue extracts one unlabeled sample from a /metrics scrape.
func scrapeValue(t *testing.T, scrape []byte, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(string(scrape), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("bad sample %q: %v", line, err)
			}
			return v
		}
	}
	return 0
}

// TestClusterE2E is the multi-replica harness: three replicas share a
// model root, every replica is an entry point for every model, and
// predict traffic runs concurrently with hot-swap publishes and learn
// ingest. Every successful prediction is verified bitwise against a
// single-process scoring of the exact model version the reply names —
// the no-torn-read and batched==sequential contracts, surviving
// forwarding and mid-flight swaps.
func TestClusterE2E(t *testing.T) {
	root := t.TempDir()
	names := []string{"alpha", "beta", "gamma", "delta"}
	const features = 80

	// Seed version 1 of every model before the replicas come up, via
	// independent writer handles (the trainer's side of the protocol).
	writers := make(map[string]*Registry, len(names))
	for i, name := range names {
		w, err := OpenRegistry(filepath.Join(root, name))
		if err != nil {
			t.Fatal(err)
		}
		w.Retain = -1 // every version stays checkable on disk
		if _, err := w.Publish(testModel(KindLasso, features, 13, int64(i+1))); err != nil {
			t.Fatal(err)
		}
		writers[name] = w
	}

	reps := startCluster(t, root, 3)

	cache := &modelCache{root: root, m: make(map[string]*Model)}
	var rows200 atomic.Uint64  // rows in 200 replies (the scoring ledger)
	var predicts atomic.Uint64 // /predict requests this driver sent

	// Every (entry replica, model) pair must answer before the storm;
	// probe attempts join the request ledger like any other traffic.
	probeCols, probeVals := randRows(rand.New(rand.NewSource(99)), 1, features)
	probe := libsvmBody(probeCols, probeVals)
	deadline := time.Now().Add(10 * time.Second)
	for _, r := range reps {
		for _, name := range names {
			for {
				predicts.Add(1)
				status, _ := post(t, "http://"+r.addr+"/predict?model="+name, "text/plain", probe)
				if status == http.StatusOK {
					rows200.Add(1)
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("replica %s never served %s (status %d)", r.addr, name, status)
				}
				time.Sleep(10 * time.Millisecond)
			}
		}
	}

	stopSwap := make(chan struct{})
	var swapWG sync.WaitGroup
	swapWG.Add(1)
	go func() { // hot-swap publisher: new versions under live traffic
		defer swapWG.Done()
		rng := rand.New(rand.NewSource(42))
		for v := 0; ; v++ {
			select {
			case <-stopSwap:
				return
			case <-time.After(5 * time.Millisecond):
			}
			name := names[v%len(names)]
			if _, err := writers[name].Publish(testModel(KindLasso, features, 9+v%7, rng.Int63())); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	const drivers = 6
	const iters = 40
	for d := 0; d < drivers; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(d) + 7))
			for i := 0; i < iters; i++ {
				name := names[(d+i)%len(names)]
				entry := reps[(d*iters+i)%len(reps)]
				cols, vals := randRows(rng, 1+rng.Intn(4), features)
				predicts.Add(1)
				status, body := post(t, "http://"+entry.addr+"/predict?model="+name, "text/plain", libsvmBody(cols, vals))
				if status != http.StatusOK {
					t.Errorf("predict %s via %s: status %d: %s", name, entry.addr, status, body)
					continue
				}
				pr := decodePredict(t, body)
				m := cache.load(t, name, pr.ModelVersion)
				if m == nil {
					continue
				}
				// Single-process reference scoring of the same rows
				// against the exact version the reply names.
				rowPtr := make([]int, 1, len(cols)+1)
				var ci []int
				var cv []float64
				for r := range cols {
					ci = append(ci, cols[r]...)
					cv = append(cv, vals[r]...)
					rowPtr = append(rowPtr, len(cv))
				}
				a, err := sparse.NewCSR(len(cols), features, rowPtr, ci, cv)
				if err != nil {
					t.Error(err)
					continue
				}
				want := make([]float64, len(cols))
				if err := m.Score(a, 1, want); err != nil {
					t.Error(err)
					continue
				}
				if len(pr.Scores) != len(want) {
					t.Errorf("%d scores for %d rows", len(pr.Scores), len(want))
					continue
				}
				for k := range want {
					if math.Float64bits(pr.Scores[k]) != math.Float64bits(want[k]) {
						t.Errorf("%s@%d row %d: cluster score %x, single-process %x",
							name, pr.ModelVersion, k, math.Float64bits(pr.Scores[k]), math.Float64bits(want[k]))
					}
				}
				rows200.Add(uint64(len(cols)))
			}
		}(d)
	}

	// Learn ingest rides along: labeled rows for a model that does not
	// exist yet; accepted (202) or backpressured (429), never an error.
	// It enters via the owning replica directly so the forward counters
	// below stay a pure predict ledger.
	learnOwner := reps[0]
	for _, r := range reps {
		if r.addr == reps[0].c.Ring().Owner("epsilon") {
			learnOwner = r
		}
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(1234))
		for i := 0; i < 30; i++ {
			cols, vals := randRows(rng, 2, features)
			var sb bytes.Buffer
			for r := range cols {
				fmt.Fprintf(&sb, "%d %s", 1-2*(r%2), bytes.TrimSpace(libsvmBody(cols[r:r+1], vals[r:r+1])))
				sb.WriteByte('\n')
			}
			status, body := post(t, "http://"+learnOwner.addr+"/learn?model=epsilon", "text/plain", sb.Bytes())
			if status != http.StatusAccepted && status != http.StatusTooManyRequests {
				t.Errorf("learn status %d: %s", status, body)
			}
		}
	}()

	wg.Wait()
	close(stopSwap)
	swapWG.Wait()

	// The /metrics ledgers reconcile with the driver's: every scored
	// row counted exactly once cluster-wide, every handler hit equal to
	// driver entries plus observed forwards, and no forward ever failed.
	var sumRows, sumReqs, sumFwd, sumFwdErr float64
	for _, r := range reps {
		_, scrape := get(t, "http://"+r.addr+"/metrics")
		sumRows += scrapeValue(t, scrape, "saco_rows_scored_total")
		sumReqs += scrapeValue(t, scrape, "saco_requests_total")
		sumFwd += scrapeValue(t, scrape, "saco_forwards_total")
		sumFwdErr += scrapeValue(t, scrape, "saco_forward_errors_total")
	}
	if sumFwdErr != 0 {
		t.Fatalf("%v forwards failed", sumFwdErr)
	}
	if want := float64(rows200.Load()); sumRows != want {
		t.Fatalf("cluster scored %v rows, driver ledger says %v", sumRows, want)
	}
	if want := float64(predicts.Load()) + sumFwd; sumReqs != want {
		t.Fatalf("cluster saw %v predict hits, driver sent %v + %v forwards", sumReqs, float64(predicts.Load()), sumFwd)
	}
	if sumFwd == 0 {
		t.Fatal("three replicas and four models but no forwards — routing never engaged")
	}
}

// TestClusterRebalance: a membership change pushed to every replica
// moves ownership — the leaver drops its models, the stayers pick them
// up — and every model keeps answering through any entry replica.
func TestClusterRebalance(t *testing.T) {
	root := t.TempDir()
	names := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	const features = 40
	for i, name := range names {
		w, err := OpenRegistry(filepath.Join(root, name))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Publish(testModel(KindLasso, features, 7, int64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	reps := startCluster(t, root, 3)
	probeCols, probeVals := randRows(rand.New(rand.NewSource(5)), 1, features)
	probe := libsvmBody(probeCols, probeVals)

	waitServing := func(entries []*clusterReplica) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for _, r := range entries {
			for _, name := range names {
				for {
					status, _ := post(t, "http://"+r.addr+"/predict?model="+name, "text/plain", probe)
					if status == http.StatusOK {
						break
					}
					if time.Now().After(deadline) {
						t.Fatalf("replica %s never served %s", r.addr, name)
					}
					time.Sleep(10 * time.Millisecond)
				}
			}
		}
	}
	waitServing(reps)

	// Shrink the cluster to the first two replicas, telling all three
	// (the leaver must drop its slice and start forwarding).
	newMembers := fmt.Sprintf(`{"members":[%q,%q]}`, reps[0].addr, reps[1].addr)
	for _, r := range reps {
		status, body := post(t, "http://"+r.addr+"/cluster/members", "application/json", []byte(newMembers))
		if status != http.StatusOK {
			t.Fatalf("members update on %s: %d %s", r.addr, status, body)
		}
	}
	if owned := reps[2].c.Owned(); len(owned) != 0 {
		t.Fatalf("leaver still owns %v after rebalance", owned)
	}
	stayersOwn := len(reps[0].c.Owned()) + len(reps[1].c.Owned())
	if stayersOwn != len(names) {
		t.Fatalf("stayers own %d models, want %d", stayersOwn, len(names))
	}
	// Every model still answers — including through the leaver, which
	// now forwards everything.
	waitServing(reps)
}
