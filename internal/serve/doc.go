// Package serve is the lock-free model-serving layer: it turns the
// solvers' coefficient vectors into versioned model artifacts and
// answers prediction traffic against them while a background trainer
// refits the live model without ever taking a lock.
//
// The paper's core trade — replace synchronization with atomic updates
// that stay convergent — applies to serving directly. Three lock-free
// mechanisms compose here:
//
//   - Registry holds the current model behind an atomic pointer.
//     Readers (request handlers) load it wait-free; a publish is one
//     pointer swap, so in-flight requests always score against exactly
//     one immutable model version — never a torn mix of two.
//   - Server micro-batches concurrent /predict requests into a single
//     sparse matrix and scores it with one batched kernel call on the
//     persistent internal/runtime pool, amortizing dispatch across the
//     batch exactly like the solvers' Gram kernels.
//   - Refit drives the exported core.AsyncLasso / core.AsyncSVM HOGWILD
//     steppers against a live atomic coefficient vector and snapshots
//     it into a new registry version on a fixed cadence: training and
//     serving share one lock-free vector, with immutable snapshots as
//     the only hand-off.
//
// # Model file format (.sacm, version 1)
//
// A model is a sparse coefficient vector plus provenance, stored
// little-endian with a trailing checksum:
//
//	offset  size        field
//	0       8           magic "SACOMDL1"
//	8       4           format version (uint32, = 1)
//	12      4           problem kind (uint32: 0 raw, 1 lasso, 2 svm, 3 pegasos)
//	16      8           features n (uint64)
//	24      8           training rows m (uint64, informational)
//	32      8           lambda (float64 bits)
//	40      8           model version (uint64; registry sequence, 0 = unpublished)
//	48      8           nnz (uint64)
//	56      8·nnz       nonzero coordinate indices (uint64, strictly increasing, < n)
//	56+8·nnz  8·nnz     nonzero values (float64 bits)
//	...     8           CRC-64/ECMA of every preceding byte
//
// ReadModel rejects bad magic, unknown versions, truncated or oversized
// payloads, checksum mismatches, and indices out of order or out of
// range — a corrupt or half-written file can never become the serving
// model (the registry additionally publishes via rename, so a watcher
// never even opens a partial file). The text format (one "%.17g" value
// per line, the historical sasolve -out format) is read and written for
// compatibility; %.17g round-trips float64 exactly, so text↔binary
// conversion is lossless.
//
// Registry versions are encoded in the file name (model-%08d.sacm);
// the watcher polls the directory and hot-swaps the pointer when a
// higher version appears.
package serve
