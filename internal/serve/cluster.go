package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"saco/internal/metrics"
	"saco/internal/shard"
)

// Cluster manages one replica's slice of a model fleet. The fleet
// lives under a shared root directory — one subdirectory per model
// name, each a Registry directory of versioned .sacm artifacts — and
// a consistent-hash ring over the static peer list decides which
// replica owns which name. The cluster opens registries only for owned
// names, polls them for fresh versions on a cadence, and rebalances
// (open newly-owned, drop disowned) whenever membership changes.
type ClusterOptions struct {
	// VNodes is the ring's vnode count per member (0 = shard default).
	VNodes int
	// Mode is the artifact materialization mode for owned registries.
	Mode LoadMode
	// RescanEvery is the cadence of the background sweep that polls
	// owned registries for new versions and picks up newly created
	// model directories (default 2s; negative disables the sweep —
	// tests then drive Rebalance explicitly).
	RescanEvery time.Duration
	// Metrics, when set, receives per-model gauges (active version,
	// registry swaps) and the router's forward counters.
	Metrics *metrics.Registry
}

// Cluster is safe for concurrent use: the request path reads the
// router and the owned map under a read lock; rebalances take the
// write lock.
type Cluster struct {
	root   string
	self   string
	table  *shard.Table
	router *shard.Router
	opt    ClusterOptions

	mu    sync.RWMutex
	owned map[string]*Registry

	sweepStop chan struct{}
	sweepDone chan struct{}
}

// NewCluster joins the static peer list as self and takes ownership of
// its slice of the models under root. self must appear in peers (it is
// added if missing) so every replica computes the same ring.
func NewCluster(root, self string, peers []string, opt ClusterOptions) (*Cluster, error) {
	if self == "" {
		return nil, fmt.Errorf("serve: cluster self address must be set")
	}
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, err
	}
	members := append([]string(nil), peers...)
	found := false
	for _, p := range members {
		if p == self {
			found = true
			break
		}
	}
	if !found {
		members = append(members, self)
	}
	c := &Cluster{
		root:  root,
		self:  self,
		table: shard.NewTable(members, opt.VNodes),
		opt:   opt,
		owned: make(map[string]*Registry),
	}
	c.router = &shard.Router{Table: c.table, Self: self}
	if mr := opt.Metrics; mr != nil {
		c.router.Forwards = mr.Counter("saco_forwards_total", "requests forwarded to the owning replica")
		c.router.ForwardErrors = mr.Counter("saco_forward_errors_total", "forwards that failed")
		c.router.Retries = mr.Counter("saco_forward_retries_total", "forward retries after a ring change")
	}
	if err := c.Rebalance(); err != nil {
		return nil, err
	}
	if opt.RescanEvery >= 0 {
		every := opt.RescanEvery
		if every == 0 {
			every = 2 * time.Second
		}
		c.sweepStop = make(chan struct{})
		c.sweepDone = make(chan struct{})
		go c.sweep(every)
	}
	return c, nil
}

// sweep is the background maintenance loop: rebalance (which also
// opens newly appeared model directories) and poll owned registries so
// versions published by peers or trainers get picked up.
func (c *Cluster) sweep(every time.Duration) {
	defer close(c.sweepDone)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-c.sweepStop:
			return
		case <-t.C:
			c.Rebalance() //nolint:errcheck // transient; retried next tick
			for _, reg := range c.ownedSorted() {
				reg.Poll() //nolint:errcheck // transient; retried next tick
			}
		}
	}
}

// Close stops the background sweep. Owned registries hold no goroutines
// of their own in cluster mode.
func (c *Cluster) Close() {
	if c.sweepStop != nil {
		close(c.sweepStop)
		<-c.sweepDone
		c.sweepStop, c.sweepDone = nil, nil
	}
}

// Self returns this replica's advertised address.
func (c *Cluster) Self() string { return c.self }

// Router returns the request router.
func (c *Cluster) Router() *shard.Router { return c.router }

// Ring returns the current ring.
func (c *Cluster) Ring() *shard.Ring { return c.table.Current() }

// SetMembers installs a new member set and rebalances against it.
func (c *Cluster) SetMembers(members []string) error {
	c.table.Set(members)
	return c.Rebalance()
}

// Registry returns the open registry for an owned model name, or nil.
func (c *Cluster) Registry(name string) *Registry {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.owned[name]
}

// Owned returns the sorted names this replica currently serves.
func (c *Cluster) Owned() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return sortedNames(c.owned)
}

// ownedSorted returns the open registries in name order (deterministic
// sweep order; map iteration order must never leak into behavior).
func (c *Cluster) ownedSorted() []*Registry {
	c.mu.RLock()
	defer c.mu.RUnlock()
	regs := make([]*Registry, 0, len(c.owned))
	for _, name := range sortedNames(c.owned) {
		regs = append(regs, c.owned[name])
	}
	return regs
}

func sortedNames(m map[string]*Registry) []string {
	names := make([]string, 0, len(m))
	for name := range m { //saco:nolint mapiter keys are sorted before use
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// missingModels returns owned names whose registry has no servable
// model yet (the readiness gate).
func (c *Cluster) missingModels() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var missing []string
	for _, name := range sortedNames(c.owned) {
		if c.owned[name].Current() == nil {
			missing = append(missing, name)
		}
	}
	return missing
}

// Ensure opens (creating the directory if needed) the registry for an
// owned name — the /learn path, where a model may not exist yet.
func (c *Cluster) Ensure(name string) (*Registry, error) {
	if reg := c.Registry(name); reg != nil {
		return reg, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if reg := c.owned[name]; reg != nil {
		return reg, nil
	}
	reg, err := OpenRegistryMode(filepath.Join(c.root, name), c.opt.Mode)
	if err != nil {
		return nil, err
	}
	c.owned[name] = reg
	c.registerGauges(name, reg)
	return reg, nil
}

// Rebalance reconciles the owned map with the current ring and the
// model directories under root: open registries for newly owned names,
// drop (and unregister the gauges of) names the ring no longer assigns
// here. In-flight requests against a dropped registry finish against
// the model snapshot they already loaded.
func (c *Cluster) Rebalance() error {
	entries, err := os.ReadDir(c.root)
	if err != nil {
		return err
	}
	ring := c.table.Current()
	c.mu.Lock()
	defer c.mu.Unlock()
	// Drop what the ring took away.
	for _, name := range sortedNames(c.owned) {
		if !ring.Owns(c.self, name) {
			c.unregisterGauges(name)
			delete(c.owned, name)
		}
	}
	// Open what it granted (ReadDir returns sorted entries).
	var errs []error
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() || c.owned[name] != nil || !ring.Owns(c.self, name) {
			continue
		}
		reg, err := OpenRegistryMode(filepath.Join(c.root, name), c.opt.Mode)
		if err != nil {
			errs = append(errs, fmt.Errorf("model %q: %w", name, err))
			continue
		}
		c.owned[name] = reg
		c.registerGauges(name, reg)
	}
	if len(errs) > 0 {
		return fmt.Errorf("serve: rebalance: %v", errs)
	}
	return nil
}

// registerGauges exposes per-model registry state; called with mu held.
func (c *Cluster) registerGauges(name string, reg *Registry) {
	mr := c.opt.Metrics
	if mr == nil {
		return
	}
	mr.GaugeFunc("saco_model_active_version", "serving model version per owned model",
		func() float64 { return float64(reg.Version()) }, metrics.Label{Key: "model", Value: name})
	mr.GaugeFunc("saco_registry_swaps", "registry pointer swaps per owned model",
		func() float64 { return float64(reg.Swaps()) }, metrics.Label{Key: "model", Value: name})
}

// unregisterGauges removes a dropped model's series; called with mu
// held.
func (c *Cluster) unregisterGauges(name string) {
	mr := c.opt.Metrics
	if mr == nil {
		return
	}
	mr.Unregister("saco_model_active_version", metrics.Label{Key: "model", Value: name})
	mr.Unregister("saco_registry_swaps", metrics.Label{Key: "model", Value: name})
}

// ClusterStatus is the GET /cluster reply.
type ClusterStatus struct {
	Self    string            `json:"self"`
	Members []string          `json:"members"`
	RingGen uint64            `json:"ring_gen"`
	VNodes  int               `json:"vnodes"`
	Owned   map[string]uint64 `json:"owned"` // model name → serving version (0 = none)
}

// Status snapshots the ring and owned slice.
func (c *Cluster) Status() ClusterStatus {
	ring := c.table.Current()
	st := ClusterStatus{
		Self:    c.self,
		Members: ring.Members(),
		RingGen: ring.Gen(),
		VNodes:  ring.VNodes(),
		Owned:   make(map[string]uint64),
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, name := range sortedNames(c.owned) {
		st.Owned[name] = c.owned[name].Version()
	}
	return st
}
