package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestLearnIngestAndBackpressure: /learn stages labeled rows up to the
// buffer cap, refuses whole requests past it with 429 + Retry-After,
// and rejects label-less rows.
func TestLearnIngestAndBackpressure(t *testing.T) {
	reg, err := OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var hooked *LearnBuffer
	s := NewServer(reg, Options{
		Workers:  1,
		LearnCap: 3,
		OnLearn:  func(name string, r *Registry, buf *LearnBuffer) { hooked = buf },
	})
	ts := newHTTPServer(t, s)

	// Two labeled rows: accepted.
	status, body := post(t, ts.URL+"/learn", "text/plain", []byte("1 1:0.5 3:1.0\n-1 2:2.0\n"))
	if status != http.StatusAccepted {
		t.Fatalf("learn status %d: %s", status, body)
	}
	var lr learnResponse
	if err := json.Unmarshal(body, &lr); err != nil || lr.Accepted != 2 || lr.Buffered != 2 {
		t.Fatalf("learn reply %s (err %v)", body, err)
	}
	if hooked == nil || hooked.Len() != 2 {
		t.Fatal("OnLearn hook did not fire with the live buffer")
	}

	// Two more rows do not fit in the remaining capacity of 1: the whole
	// request is refused, nothing partial.
	resp, err := http.Post(ts.URL+"/learn", "text/plain", strings.NewReader("1 1:1\n-1 2:1\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overfull learn status %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if hooked.Len() != 2 {
		t.Fatalf("refused request leaked rows: %d buffered", hooked.Len())
	}

	// Label-less LIBSVM rows are a 400 on /learn (but fine on /predict).
	if status, _ := post(t, ts.URL+"/learn", "text/plain", []byte("1:0.5 2:1.0\n")); status != http.StatusBadRequest {
		t.Fatalf("label-less learn row answered %d", status)
	}

	// JSON learn grammar: rows plus parallel labels.
	jsonBody := []byte(`{"rows":[{"indices":[1,2],"values":[1.0,2.0]}],"labels":[1]}`)
	if status, body := post(t, ts.URL+"/learn", "application/json", jsonBody); status != http.StatusAccepted {
		t.Fatalf("JSON learn status %d: %s", status, body)
	}
}

// TestLearnRejectsOversizedRows: once a model serves, learn rows wider
// than its dimensionality are refused at ingest.
func TestLearnRejectsOversizedRows(t *testing.T) {
	reg, err := OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Publish(testModel(KindLasso, 10, 3, 1)); err != nil {
		t.Fatal(err)
	}
	s := NewServer(reg, Options{Workers: 1, LearnCap: 100})
	ts := newHTTPServer(t, s)
	if status, _ := post(t, ts.URL+"/learn", "text/plain", []byte("1 99:1.0\n")); status != http.StatusBadRequest {
		t.Fatalf("oversized learn row answered %d", status)
	}
}

// TestRefitStreamPublishes: rows offered to a buffer flow through
// RefitStream into published model versions, warm-started cycle over
// cycle, without a pre-existing model.
func TestRefitStreamPublishes(t *testing.T) {
	reg, err := OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	buf := NewLearnBuffer(1024)
	// y = 2·x1 on a 3-feature design: the lasso should find feature 1.
	var cols [][]int
	var vals [][]float64
	var labels []float64
	for i := 0; i < 64; i++ {
		x := float64(i%7) - 3
		cols = append(cols, []int{0, 2})
		vals = append(vals, []float64{x, 0.01 * float64(i%3)})
		labels = append(labels, 2*x)
	}
	if !buf.Offer(cols, vals, labels) {
		t.Fatal("offer failed")
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- RefitStream(ctx, reg, buf, RefitOptions{
			Kind:    KindLasso,
			Lambda:  0.01,
			Every:   30 * time.Millisecond,
			Workers: 2,
			Seed:    1,
		})
	}()
	deadline := time.Now().Add(10 * time.Second)
	for reg.Version() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("refit stream never published")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	m := reg.Current()
	if m == nil || m.Kind != KindLasso || m.Features != 3 {
		t.Fatalf("published model %+v", m)
	}
	if w := m.Dense()[0]; w < 1.0 || w > 3.0 {
		t.Fatalf("learned weight %v for a y=2x signal", w)
	}
}
