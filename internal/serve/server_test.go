package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"saco/internal/simd"
)

// newTestServer wires a registry-backed server into httptest.
func newTestServer(t *testing.T, reg *Registry, opt Options) *httptest.Server {
	t.Helper()
	s := NewServer(reg, opt)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return ts
}

// post sends a body and returns (status, bytes).
func post(t *testing.T, url, contentType string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// decodePredict parses a successful /predict reply.
func decodePredict(t *testing.T, data []byte) predictResponse {
	t.Helper()
	var pr predictResponse
	if err := json.Unmarshal(data, &pr); err != nil {
		t.Fatalf("bad predict reply %q: %v", data, err)
	}
	return pr
}

// TestPredictBothBodyFormats: the same rows through the JSON and the
// LIBSVM body produce identical scores, and classifier models add
// labels.
func TestPredictBothBodyFormats(t *testing.T) {
	reg, err := OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 10)
	for j := range x {
		x[j] = float64(j + 1)
	}
	m := NewModel(KindSVM, x)
	if _, err := reg.Publish(m); err != nil {
		t.Fatal(err)
	}
	ts := newTestServer(t, reg, Options{Workers: 1})

	jsonBody := []byte(`{"rows":[{"indices":[1,3],"values":[1,1]},{"indices":[2],"values":[-1]}]}`)
	st, data := post(t, ts.URL+"/predict", "application/json", jsonBody)
	if st != http.StatusOK {
		t.Fatalf("JSON predict: %d %s", st, data)
	}
	pj := decodePredict(t, data)

	// Same rows as LIBSVM lines — one with a label field (replayed
	// training data), one bare.
	svmBody := []byte("+1 1:1 3:1\n2:-1\n")
	st, data = post(t, ts.URL+"/predict", "text/plain", svmBody)
	if st != http.StatusOK {
		t.Fatalf("LIBSVM predict: %d %s", st, data)
	}
	pl := decodePredict(t, data)

	wantScores := []float64{1 + 3, -2} // x[0]·1 + x[2]·1, x[1]·(−1)
	for i, want := range wantScores {
		if pj.Scores[i] != want || pl.Scores[i] != want {
			t.Fatalf("row %d: JSON %v, LIBSVM %v, want %v", i, pj.Scores[i], pl.Scores[i], want)
		}
	}
	wantLabels := []int{1, -1}
	for i, want := range wantLabels {
		if pj.Labels[i] != want || pl.Labels[i] != want {
			t.Fatalf("label %d: JSON %d, LIBSVM %d, want %d", i, pj.Labels[i], pl.Labels[i], want)
		}
	}
	if pj.ModelVersion != 1 || pl.ModelVersion != 1 {
		t.Fatalf("versions %d/%d, want 1", pj.ModelVersion, pl.ModelVersion)
	}
}

// TestPredictErrorSurface pins the failure modes: no model yet (503,
// and /healthz agrees), malformed bodies (400), dimension overflow
// (400 naming both sides), wrong method (405).
func TestPredictErrorSurface(t *testing.T) {
	reg, err := OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestServer(t, reg, Options{Workers: 1})

	if st, _ := post(t, ts.URL+"/predict", "text/plain", []byte("1:1\n")); st != http.StatusServiceUnavailable {
		t.Fatalf("no-model predict: %d, want 503", st)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("no-model healthz: %d, want 503", resp.StatusCode)
	}

	if _, err := reg.Publish(NewModel(KindLasso, []float64{1, 2, 3})); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after publish: %d", resp.StatusCode)
	}

	for name, tc := range map[string]struct {
		ct   string
		body string
		want int
	}{
		"bad json":          {"application/json", `{"rows":`, http.StatusBadRequest},
		"unknown field":     {"application/json", `{"rowz":[]}`, http.StatusBadRequest},
		"len mismatch":      {"application/json", `{"rows":[{"indices":[1,2],"values":[1]}]}`, http.StatusBadRequest},
		"zero index":        {"application/json", `{"rows":[{"indices":[0],"values":[1]}]}`, http.StatusBadRequest},
		"unordered":         {"application/json", `{"rows":[{"indices":[3,2],"values":[1,1]}]}`, http.StatusBadRequest},
		"empty":             {"application/json", `{"rows":[]}`, http.StatusBadRequest},
		"dim overflow":      {"application/json", `{"rows":[{"indices":[4],"values":[1]}]}`, http.StatusBadRequest},
		"dim overflow svm":  {"text/plain", "1:1 9:2\n", http.StatusBadRequest},
		"bad libsvm pair":   {"text/plain", "1 one:two\n", http.StatusBadRequest},
		"duplicate indices": {"text/plain", "1:1 1:2\n", http.StatusBadRequest},
	} {
		if st, data := post(t, ts.URL+"/predict", tc.ct, []byte(tc.body)); st != tc.want {
			t.Fatalf("%s: %d %s, want %d", name, st, data, tc.want)
		}
	}
	st, data := post(t, ts.URL+"/predict", "application/json", []byte(`{"rows":[{"indices":[4],"values":[1]}]}`))
	if st != http.StatusBadRequest || !strings.Contains(string(data), "model dimensionality 3") {
		t.Fatalf("dim error must name the model width: %d %s", st, data)
	}

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/predict", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /predict: %d", resp.StatusCode)
	}
}

// TestPredictNoTornModel is the tentpole acceptance test: under
// concurrent /predict load racing a hot swap, every response's scores
// must equal — bitwise — the full scoring under the single version the
// response names. The two versions differ in every coordinate (v2 is
// the negation of v1) and every row has a nonzero score, so a torn
// read mixing any coordinates of the two versions could not match
// either expectation.
func TestPredictNoTornModel(t *testing.T) {
	const n = 32
	x1 := make([]float64, n)
	for j := range x1 {
		x1[j] = float64(j + 1)
	}
	x2 := make([]float64, n)
	for j := range x2 {
		x2[j] = -x1[j]
	}
	m1, m2 := NewModel(KindLasso, x1), NewModel(KindLasso, x2)

	reg, err := OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Publish(m1); err != nil {
		t.Fatal(err)
	}
	ts := newTestServer(t, reg, Options{Workers: 2, MaxBatch: 8, BatchWindow: 200 * time.Microsecond})

	const clients = 8
	const perClient = 40
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	seen := make([]uint64, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			for q := 0; q < perClient; q++ {
				j := rng.Intn(n)
				k := (j + 1 + rng.Intn(n-1)) % n
				if k < j {
					j, k = k, j
				}
				body := fmt.Sprintf(`{"rows":[{"indices":[%d,%d],"values":[1,1]}]}`, j+1, k+1)
				resp, err := http.Post(ts.URL+"/predict", "application/json", strings.NewReader(body))
				if err != nil {
					errCh <- err
					return
				}
				data, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					errCh <- fmt.Errorf("client %d: %d %s (%v)", c, resp.StatusCode, data, err)
					return
				}
				var pr predictResponse
				if err := json.Unmarshal(data, &pr); err != nil {
					errCh <- err
					return
				}
				var want float64
				switch pr.ModelVersion {
				case 1:
					want = x1[j] + x1[k]
				case 2:
					want = x2[j] + x2[k]
				default:
					errCh <- fmt.Errorf("client %d: impossible model version %d", c, pr.ModelVersion)
					return
				}
				if len(pr.Scores) != 1 || pr.Scores[0] != want {
					errCh <- fmt.Errorf("client %d: version %d scored %v, want exactly %v — torn or mixed-version read",
						c, pr.ModelVersion, pr.Scores, want)
					return
				}
				seen[c] = seen[c] | (1 << (pr.ModelVersion - 1))
			}
		}(c)
	}
	// Hot-swap mid-flight.
	time.Sleep(5 * time.Millisecond)
	if _, err := reg.Publish(m2); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	var union uint64
	for _, s := range seen {
		union |= s
	}
	if union&0b10 == 0 {
		t.Log("note: no client observed v2 (publish landed after the load); torn-read check still exercised v1")
	}
}

// TestBatchedMatchesSequential is the second acceptance property: the
// micro-batched concurrent path returns, bit for bit, what scoring
// each request alone through a sequential kernel returns. A long batch
// window forces heavy coalescing.
func TestBatchedMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const n = 48
	m := testModel(KindLasso, n, 14, 33)
	reg, err := OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Publish(m); err != nil {
		t.Fatal(err)
	}
	ts := newTestServer(t, reg, Options{Workers: 4, MaxBatch: 512, BatchWindow: 3 * time.Millisecond})

	// Pre-generate each client's rows and its sequential reference:
	// one row at a time, sequential kernel (workers = 1).
	const clients = 12
	type clientReq struct {
		body string
		want []float64
	}
	reqs := make([]clientReq, clients)
	for c := range reqs {
		rows := 1 + rng.Intn(4)
		var sb strings.Builder
		sb.WriteString(`{"rows":[`)
		want := make([]float64, rows)
		for r := 0; r < rows; r++ {
			cr := randRequestCSR(rng, 1, n)
			one := make([]float64, 1)
			if err := m.Score(cr, 1, one); err != nil {
				t.Fatal(err)
			}
			want[r] = one[0]
			if r > 0 {
				sb.WriteString(",")
			}
			sb.WriteString(`{"indices":[`)
			for k := cr.RowPtr[0]; k < cr.RowPtr[1]; k++ {
				if k > 0 {
					sb.WriteString(",")
				}
				fmt.Fprintf(&sb, "%d", cr.ColIdx[k]+1)
			}
			sb.WriteString(`],"values":[`)
			for k := cr.RowPtr[0]; k < cr.RowPtr[1]; k++ {
				if k > 0 {
					sb.WriteString(",")
				}
				fmt.Fprintf(&sb, "%.17g", cr.Val[k])
			}
			sb.WriteString(`]}`)
		}
		sb.WriteString(`]}`)
		reqs[c] = clientReq{body: sb.String(), want: want}
	}

	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for c := range reqs {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/predict", "application/json", strings.NewReader(reqs[c].body))
			if err != nil {
				errCh <- err
				return
			}
			data, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil || resp.StatusCode != http.StatusOK {
				errCh <- fmt.Errorf("client %d: %d %s (%v)", c, resp.StatusCode, data, err)
				return
			}
			var pr predictResponse
			if err := json.Unmarshal(data, &pr); err != nil {
				errCh <- err
				return
			}
			if len(pr.Scores) != len(reqs[c].want) {
				errCh <- fmt.Errorf("client %d: %d scores for %d rows", c, len(pr.Scores), len(reqs[c].want))
				return
			}
			for r, want := range reqs[c].want {
				if pr.Scores[r] != want {
					errCh <- fmt.Errorf("client %d row %d: batched %v != sequential %v (must be bitwise identical)",
						c, r, pr.Scores[r], want)
					return
				}
			}
			errCh <- nil
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
	}

	// /stats must account for every row exactly once.
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	var totalRows uint64
	for c := range reqs {
		totalRows += uint64(len(reqs[c].want))
	}
	if st.RowsScored != totalRows {
		t.Fatalf("stats rows_scored = %d, want %d", st.RowsScored, totalRows)
	}
	if st.Batches == 0 || st.Batches > uint64(clients) {
		t.Fatalf("stats batches = %d for %d requests", st.Batches, clients)
	}
	if st.ModelVersion != 1 || st.ModelKind != "lasso" || st.Features != n || st.ModelNNZ != m.NNZ() {
		t.Fatalf("stats model block wrong: %+v", st)
	}
	if st.Kernels != simd.Active().Name() {
		t.Fatalf("stats kernels = %q, want %q", st.Kernels, simd.Active().Name())
	}
}

// TestOversizedSingleRequest: one request larger than MaxBatch still
// scores (as its own batch).
func TestOversizedSingleRequest(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	m := testModel(KindLasso, 20, 6, 5)
	reg, err := OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Publish(m); err != nil {
		t.Fatal(err)
	}
	ts := newTestServer(t, reg, Options{Workers: 1, MaxBatch: 4})

	rows := randRequestCSR(rng, 32, 20)
	want := make([]float64, 32)
	if err := m.Score(rows, 1, want); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for i := 0; i < rows.M; i++ {
		for k := rows.RowPtr[i]; k < rows.RowPtr[i+1]; k++ {
			if k > rows.RowPtr[i] {
				sb.WriteString(" ")
			}
			fmt.Fprintf(&sb, "%d:%.17g", rows.ColIdx[k]+1, rows.Val[k])
		}
		sb.WriteString("\n")
	}
	st, data := post(t, ts.URL+"/predict", "text/plain", []byte(sb.String()))
	if st != http.StatusOK {
		t.Fatalf("oversized request: %d %s", st, data)
	}
	pr := decodePredict(t, data)
	for i, w := range want {
		if pr.Scores[i] != w {
			t.Fatalf("row %d: %v != %v", i, pr.Scores[i], w)
		}
	}
}
