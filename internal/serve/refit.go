package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"saco/internal/core"
	"saco/internal/metrics"
	"saco/internal/sparse"
)

// The live refit loop: HOGWILD! solver workers run open-endedly against
// one lock-free atomic coefficient vector (the exported core.AsyncLasso
// / core.AsyncSVM steppers) while a publisher thread snapshots that
// vector on a fixed cadence and hands each snapshot to the registry as
// a new immutable version. Training and serving thus share a single
// synchronization-free vector; the only hand-off is the atomic pointer
// swap of a publish, so scoring traffic is never blocked — not by the
// trainer, not by the publisher.

// RefitOptions configures a live refit.
type RefitOptions struct {
	// Every is the publish cadence (default 2s).
	Every time.Duration
	// Workers is the HOGWILD worker count (0 = GOMAXPROCS).
	Workers int
	// Seed drives the workers' sampling streams.
	Seed uint64
	// BlockSize is the Lasso block size µ (default 1).
	BlockSize int
	// Lambda overrides the regularization strength; 0 inherits the
	// serving model's recorded lambda.
	Lambda float64
	// Loss selects the SVM loss for KindSVM/KindPegasos refits.
	Loss core.SVMLoss
	// Kind overrides the task; KindRaw (the zero value) infers it from
	// the serving model.
	Kind Kind
	// MaxPublishes stops the refit after this many publishes
	// (0 = run until the context is cancelled).
	MaxPublishes int
	// Log, when set, receives one progress line per publish.
	Log io.Writer
	// Steps, when non-nil, counts solver steps taken (wired by saserve
	// to saco_refit_steps_total); nil is inert.
	Steps *metrics.Counter
	// Publishes, when non-nil, counts snapshot publishes (wired to
	// saco_refit_publishes_total); nil is inert.
	Publishes *metrics.Counter
}

// Refit streams the labeled rows (a, b) into a lock-free solver warm-
// started from the serving model and publishes snapshots of the live
// coefficient vector until ctx is cancelled (a final quiescent snapshot
// is flushed on the way out) or MaxPublishes is reached.
//
// Lasso refits warm-start X0 from the serving model's coefficients.
// SVM/Pegasos refits retrain the dual from scratch on the new rows (a
// published primal vector cannot be decomposed back into dual
// variables), publishing primal snapshots; Pegasos models keep their
// kind, scored identically.
func Refit(ctx context.Context, reg *Registry, a *sparse.CSR, b []float64, opt RefitOptions) error {
	cur := reg.Current()
	kind := opt.Kind
	if kind == KindRaw && cur != nil {
		kind = cur.Kind
	}
	if kind == KindRaw {
		return errors.New("serve: cannot infer the refit task (no typed serving model); set RefitOptions.Kind")
	}
	if cur != nil && a.N != cur.Features {
		return fmt.Errorf("serve: refit data has %d features, serving model has %d", a.N, cur.Features)
	}
	lambda := opt.Lambda
	if lambda == 0 && cur != nil {
		lambda = cur.Lambda
	}
	workers := opt.Workers
	every := opt.Every
	if every <= 0 {
		every = 2 * time.Second
	}

	// Build the solver-specific stepper behind a uniform pair of
	// closures; everything after this is solver-agnostic.
	var (
		newWorker func(k int) func() // per-worker Step closure
		snapshot  func() []float64
		objective func(x []float64) float64
		nWorkers  int
	)
	switch kind {
	case KindLasso:
		lopt := core.LassoOptions{
			Lambda: lambda, BlockSize: opt.BlockSize, Seed: opt.Seed,
			Exec: core.Exec{Backend: core.BackendAsync, Workers: workers},
		}
		if cur != nil {
			lopt.X0 = cur.Dense()
		}
		w := lopt.Exec.AsyncWorkers()
		st, err := core.NewAsyncLasso(a.ToCSC(), b, w, lopt)
		if err != nil {
			return err
		}
		nWorkers = w
		newWorker = func(k int) func() { wk := st.Worker(k); return wk.Step }
		snapshot = func() []float64 { return st.SnapshotX(nil) }
		objective = st.ObjectiveAt
	case KindSVM, KindPegasos:
		sopt := core.SVMOptions{
			Lambda: lambda, Loss: opt.Loss, Seed: opt.Seed,
			Exec: core.Exec{Backend: core.BackendAsync, Workers: workers},
		}
		w := sopt.Exec.AsyncWorkers()
		st, err := core.NewAsyncSVM(a, b, w, sopt)
		if err != nil {
			return err
		}
		nWorkers = w
		newWorker = func(k int) func() { wk := st.Worker(k); return wk.Step }
		snapshot = func() []float64 { return st.SnapshotX(nil) }
		objective = func(x []float64) float64 {
			p, _, _ := st.ObjectivesAt(x, st.SnapshotAlpha(nil))
			return p
		}
	default:
		return fmt.Errorf("serve: cannot refit a %s model", kind)
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	for k := 0; k < nWorkers; k++ {
		step := newWorker(k)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				// Steps are cheap; amortize the cancellation check (and
				// the step counter tick) over a run of them.
				for i := 0; i < 64; i++ {
					step()
				}
				opt.Steps.Add(64)
				select {
				case <-runCtx.Done():
					return
				default:
				}
			}
		}()
	}

	publish := func(quiescent bool) error {
		x := snapshot()
		m := NewModel(kind, x)
		m.TrainRows = len(b)
		m.Lambda = lambda
		v, err := reg.Publish(m)
		if err != nil {
			return err
		}
		opt.Publishes.Inc()
		if opt.Log != nil {
			state := "live"
			if quiescent {
				state = "final"
			}
			fmt.Fprintf(opt.Log, "refit: published version %d (%s snapshot, objective %.6e, nnz %d/%d, %d workers)\n",
				v, state, objective(x), m.NNZ(), m.Features, nWorkers)
		}
		return nil
	}

	ticker := time.NewTicker(every)
	defer ticker.Stop()
	published := 0
	for {
		select {
		case <-ctx.Done():
			// Quiesce the workers, flush one exact final model.
			cancel()
			wg.Wait()
			return publish(true)
		case <-ticker.C:
			if err := publish(false); err != nil {
				cancel()
				wg.Wait()
				return err
			}
			published++
			if opt.MaxPublishes > 0 && published >= opt.MaxPublishes {
				cancel()
				wg.Wait()
				return nil
			}
		}
	}
}
