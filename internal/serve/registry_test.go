package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestRegistryPublishAndReopen: publishes number versions sequentially,
// the pointer tracks the latest, and a fresh registry over the same
// directory recovers the newest model.
func TestRegistryPublishAndReopen(t *testing.T) {
	dir := t.TempDir()
	r, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r.Current() != nil || r.Version() != 0 {
		t.Fatal("empty registry must serve no model")
	}
	for i := 1; i <= 3; i++ {
		m := testModel(KindLasso, 40, 5, int64(i))
		v, err := r.Publish(m)
		if err != nil {
			t.Fatal(err)
		}
		if v != uint64(i) || r.Version() != uint64(i) || r.Current() != m {
			t.Fatalf("publish %d: got version %d, serving %d", i, v, r.Version())
		}
	}
	if r.Publishes() != 3 || r.Swaps() != 3 {
		t.Fatalf("publishes=%d swaps=%d", r.Publishes(), r.Swaps())
	}

	r2, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Version() != 3 {
		t.Fatalf("reopened registry serves version %d, want 3", r2.Version())
	}
}

// TestRegistryPollHotSwap: a model dropped into the directory by
// another process (simulated by a second registry) is picked up by
// Poll, and stale or foreign files are ignored.
func TestRegistryPollHotSwap(t *testing.T) {
	dir := t.TempDir()
	writer, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	reader, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := writer.Publish(testModel(KindLasso, 40, 5, 1)); err != nil {
		t.Fatal(err)
	}
	// Foreign junk the scan must skip.
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, ".model-xyz.tmp"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	swapped, err := reader.Poll()
	if err != nil || !swapped {
		t.Fatalf("Poll = (%v, %v), want swap", swapped, err)
	}
	if reader.Version() != 1 {
		t.Fatalf("reader serves %d, want 1", reader.Version())
	}
	if swapped, _ := reader.Poll(); swapped {
		t.Fatal("second Poll with nothing new must not swap")
	}

	// A corrupt newer file must not displace the serving model, but an
	// even newer valid one must still win.
	if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf(modelFilePattern, uint64(2))), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	swapped, err = reader.Poll()
	if swapped || err == nil {
		t.Fatalf("Poll over corrupt v2 = (%v, %v), want no swap + error", swapped, err)
	}
	if reader.Version() != 1 {
		t.Fatalf("corrupt file displaced the serving model (now %d)", reader.Version())
	}
	if _, err := writer.Publish(testModel(KindSVM, 40, 4, 3)); err != nil {
		t.Fatal(err)
	}
	if writer.Version() != 3 {
		t.Fatalf("publisher must skip past the corrupt v2 number, got %d", writer.Version())
	}
	swapped, _ = reader.Poll()
	if !swapped || reader.Version() != 3 || reader.Current().Kind != KindSVM {
		t.Fatalf("reader did not reach v3: swapped=%v version=%d", swapped, reader.Version())
	}
}

// TestRegistryWatch: the background watcher picks up a publish within
// a few intervals.
func TestRegistryWatch(t *testing.T) {
	dir := t.TempDir()
	writer, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	reader, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	reader.Watch(time.Millisecond)
	defer reader.StopWatch()
	if _, err := writer.Publish(testModel(KindLasso, 30, 3, 7)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for reader.Version() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("watcher never swapped (version %d)", reader.Version())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestOpenRegistryRecoversFromCorruptOnlyDir: a directory holding only
// a partial/corrupt artifact (a trainer crashed mid-write) must open
// and serve nothing, and the normal Poll path must recover once a
// whole model appears — startup must not be the one moment corruption
// is fatal.
func TestOpenRegistryRecoversFromCorruptOnlyDir(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf(modelFilePattern, uint64(1))), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := OpenRegistry(dir)
	if err != nil {
		t.Fatalf("open over corrupt-only dir: %v", err)
	}
	if r.Current() != nil {
		t.Fatal("corrupt file must not become the serving model")
	}
	// A whole model appears (any writer); Poll recovers.
	w, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Publish(testModel(KindLasso, 20, 3, 1)); err != nil {
		t.Fatal(err)
	}
	if swapped, _ := r.Poll(); !swapped || r.Version() != 2 {
		t.Fatalf("recovery: swapped=%v version=%d", swapped, r.Version())
	}
}

// TestRegistryRetention: Publish keeps only the newest Retain versions
// on disk, without ever touching the serving pointer, and never prunes
// with a negative Retain.
func TestRegistryRetention(t *testing.T) {
	dir := t.TempDir()
	r, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	r.Retain = 2
	for i := 0; i < 5; i++ {
		if _, err := r.Publish(testModel(KindLasso, 20, 3, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if r.Version() != 5 {
		t.Fatalf("serving version %d", r.Version())
	}
	var versions []uint64
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if v, ok := modelFileVersion(e.Name()); ok {
			versions = append(versions, v)
		}
	}
	if len(versions) != 2 {
		t.Fatalf("retained %v, want exactly the newest 2", versions)
	}
	for _, v := range versions {
		if v != 4 && v != 5 {
			t.Fatalf("retained unexpected version %d", v)
		}
	}
	// A reopened registry still serves the newest survivor.
	r2, err := OpenRegistry(dir)
	if err != nil || r2.Version() != 5 {
		t.Fatalf("reopen after prune: version %d (%v)", r2.Version(), err)
	}

	keep := &Registry{dir: dir, Retain: -1}
	for i := 0; i < 3; i++ {
		if _, err := keep.Publish(testModel(KindLasso, 20, 3, 9)); err != nil {
			t.Fatal(err)
		}
	}
	entries, _ = os.ReadDir(dir)
	n := 0
	for _, e := range entries {
		if _, ok := modelFileVersion(e.Name()); ok {
			n++
		}
	}
	if n != 5 { // 2 survivors + 3 unpruned
		t.Fatalf("negative Retain pruned: %d files", n)
	}
}

// TestModelFileVersion pins the artifact-name grammar.
func TestModelFileVersion(t *testing.T) {
	if v, ok := modelFileVersion("model-00000042.sacm"); !ok || v != 42 {
		t.Fatalf("parse = (%d, %v)", v, ok)
	}
	for _, bad := range []string{"model-1.sacm", "model-00000042.txt", ".model-x.tmp", "model-00000042.sacm.bak"} {
		if _, ok := modelFileVersion(bad); ok {
			t.Fatalf("%q accepted", bad)
		}
	}
}
