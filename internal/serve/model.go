package serve

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"saco/internal/sparse"
)

// Kind identifies the problem family a model was trained on. It decides
// how predictions are interpreted (regression value vs. classification
// margin); scoring itself is kind-agnostic.
type Kind uint32

const (
	// KindRaw marks a model of unknown provenance (e.g. loaded from the
	// text format, which carries no metadata).
	KindRaw Kind = iota
	// KindLasso is a sparse least-squares model; scores are regression
	// values.
	KindLasso
	// KindSVM is a linear SVM; scores are margins, sign(score) the label.
	KindSVM
	// KindPegasos is a Pegasos-trained SVM; scores are margins.
	KindPegasos
	kindEnd
)

// String names the kind for logs, stats and flags.
func (k Kind) String() string {
	switch k {
	case KindLasso:
		return "lasso"
	case KindSVM:
		return "svm"
	case KindPegasos:
		return "pegasos"
	default:
		return "raw"
	}
}

// Classifier reports whether sign(score) is a class label.
func (k Kind) Classifier() bool { return k == KindSVM || k == KindPegasos }

// Model is one immutable trained coefficient vector plus provenance.
// Fields are set at construction and never mutated afterwards — the
// registry hands the same *Model to every concurrent reader, and
// immutability is what makes the atomic-pointer hand-off torn-read
// free.
type Model struct {
	// Kind is the problem family (lasso, svm, pegasos, raw).
	Kind Kind
	// Features is the model dimensionality n; requests with indices
	// beyond it are rejected.
	Features int
	// TrainRows is the number of rows the model was fitted on
	// (informational).
	TrainRows int
	// Lambda is the regularization strength used in training.
	Lambda float64
	// Version is the registry sequence number (0 until published).
	Version uint64
	// Idx/Val are the nonzero coordinates, Idx strictly increasing.
	Idx []int
	Val []float64

	denseOnce sync.Once
	dense     []float64
}

// NewModel builds a model from a dense coefficient vector, keeping only
// the nonzeros (the Lasso penalty exists to make that small).
func NewModel(kind Kind, x []float64) *Model {
	m := &Model{Kind: kind, Features: len(x)}
	for j, v := range x {
		if v != 0 {
			m.Idx = append(m.Idx, j)
			m.Val = append(m.Val, v)
		}
	}
	return m
}

// NNZ returns the model's support size.
func (m *Model) NNZ() int { return len(m.Idx) }

// Dense returns the dense expansion of the coefficient vector, built
// once and cached. The returned slice is shared — callers must not
// mutate it. (The refit loop uses it as the warm start X0.)
func (m *Model) Dense() []float64 {
	m.denseOnce.Do(func() {
		m.dense = make([]float64, m.Features)
		for k, j := range m.Idx {
			m.dense[j] = m.Val[k]
		}
	})
	return m.dense
}

// Score computes y = A·x for a batch of request rows against this
// model with the batched sparse-model kernel on workers pool lanes
// (0 = GOMAXPROCS, 1 = sequential). It is the single scoring path:
// the server's micro-batches and the tests' per-request references both
// go through it, which is what makes "batched equals sequential
// bitwise" checkable.
func (m *Model) Score(a *sparse.CSR, workers int, y []float64) error {
	if a.N != m.Features {
		return fmt.Errorf("serve: batch has %d features, model has %d", a.N, m.Features)
	}
	if len(y) != a.M {
		return fmt.Errorf("serve: %d outputs for %d rows", len(y), a.M)
	}
	a.WithKernelWorkers(workers).(*sparse.CSR).MulSparseVec(m.Idx, m.Val, y)
	return nil
}

// validate checks the structural invariants shared by every load path.
func (m *Model) validate() error {
	if m.Features < 0 {
		return fmt.Errorf("serve: negative feature count %d", m.Features)
	}
	if len(m.Idx) != len(m.Val) {
		return fmt.Errorf("serve: %d indices for %d values", len(m.Idx), len(m.Val))
	}
	prev := -1
	for _, j := range m.Idx {
		if j <= prev {
			return fmt.Errorf("serve: model indices not strictly increasing at %d", j)
		}
		if j >= m.Features {
			return fmt.Errorf("serve: model index %d out of range (dim mismatch: %d features declared)", j, m.Features)
		}
		prev = j
	}
	if m.Kind >= kindEnd {
		return fmt.Errorf("serve: unknown model kind %d", uint32(m.Kind))
	}
	return nil
}

// Binary format constants (layout documented in doc.go).
var modelMagic = [8]byte{'S', 'A', 'C', 'O', 'M', 'D', 'L', '1'}

const (
	modelFormatVersion = 1
	modelHeaderSize    = 56 // magic through nnz
	// maxModelBytes bounds how large a model file a reader will accept
	// (1 << 31 covers ~134M nonzeros — far past any dataset in the
	// paper) so a corrupt nnz field cannot drive allocation.
	maxModelBytes = 1 << 31
)

var crcTable = crc64.MakeTable(crc64.ECMA)

// WriteModel writes m in the versioned binary format.
func WriteModel(w io.Writer, m *Model) error {
	if err := m.validate(); err != nil {
		return err
	}
	buf := make([]byte, modelHeaderSize+16*len(m.Idx)+8)
	copy(buf, modelMagic[:])
	le := binary.LittleEndian
	le.PutUint32(buf[8:], modelFormatVersion)
	le.PutUint32(buf[12:], uint32(m.Kind))
	le.PutUint64(buf[16:], uint64(m.Features))
	le.PutUint64(buf[24:], uint64(m.TrainRows))
	le.PutUint64(buf[32:], math.Float64bits(m.Lambda))
	le.PutUint64(buf[40:], m.Version)
	le.PutUint64(buf[48:], uint64(len(m.Idx)))
	off := modelHeaderSize
	for _, j := range m.Idx {
		le.PutUint64(buf[off:], uint64(j))
		off += 8
	}
	for _, v := range m.Val {
		le.PutUint64(buf[off:], math.Float64bits(v))
		off += 8
	}
	le.PutUint64(buf[off:], crc64.Checksum(buf[:off], crcTable))
	_, err := w.Write(buf)
	return err
}

// ReadModel reads a binary model, verifying magic, format version,
// size, checksum and index invariants. Any failure is an error — a
// corrupt file never yields a partially-trusted model.
func ReadModel(r io.Reader) (*Model, error) {
	data, err := io.ReadAll(io.LimitReader(r, maxModelBytes+1))
	if err != nil {
		return nil, err
	}
	if len(data) > maxModelBytes {
		return nil, fmt.Errorf("serve: model file exceeds the %d-byte reader cap", maxModelBytes)
	}
	if len(data) < modelHeaderSize+8 {
		return nil, fmt.Errorf("serve: model file truncated (%d bytes)", len(data))
	}
	if !bytes.Equal(data[:8], modelMagic[:]) {
		return nil, fmt.Errorf("serve: bad magic %q (not a saco binary model)", data[:8])
	}
	le := binary.LittleEndian
	if v := le.Uint32(data[8:]); v != modelFormatVersion {
		return nil, fmt.Errorf("serve: unsupported model format version %d (have %d)", v, modelFormatVersion)
	}
	nnz := le.Uint64(data[48:])
	// Bound nnz by the file length before any arithmetic on it: a
	// corrupt field near 2⁶⁴/16 would otherwise wrap 16*nnz, slip past
	// the size equality and drive make() into a panic.
	if nnz > uint64(len(data))/16 {
		return nil, fmt.Errorf("serve: model header declares %d nonzeros in a %d-byte file", nnz, len(data))
	}
	want := modelHeaderSize + 16*nnz + 8
	if uint64(len(data)) != want {
		return nil, fmt.Errorf("serve: model file is %d bytes, header declares %d (nnz=%d)", len(data), want, nnz)
	}
	payload := data[:len(data)-8]
	if got, stored := crc64.Checksum(payload, crcTable), le.Uint64(data[len(data)-8:]); got != stored {
		return nil, fmt.Errorf("serve: model checksum mismatch (stored %016x, computed %016x): corrupted file", stored, got)
	}
	m := &Model{
		Kind:      Kind(le.Uint32(data[12:])),
		Features:  int(le.Uint64(data[16:])),
		TrainRows: int(le.Uint64(data[24:])),
		Lambda:    math.Float64frombits(le.Uint64(data[32:])),
		Version:   le.Uint64(data[40:]),
	}
	if nnz > 0 {
		m.Idx = make([]int, nnz)
		m.Val = make([]float64, nnz)
		off := modelHeaderSize
		for k := range m.Idx {
			m.Idx[k] = int(le.Uint64(data[off:]))
			off += 8
		}
		for k := range m.Val {
			m.Val[k] = math.Float64frombits(le.Uint64(data[off:]))
			off += 8
		}
	}
	if err := m.validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// WriteModelFile writes the binary format to path through a temp file
// and a rename, so a reader — in particular a registry watching the
// directory the model is being trained into — can never observe a
// partial artifact. The temp file is synced before the rename so a
// full disk surfaces as an error instead of silent success.
func WriteModelFile(path string, m *Model) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".sacm-*.tmp")
	if err != nil {
		return err
	}
	cleanup := func() {
		f.Close()
		os.Remove(f.Name())
	}
	if err := WriteModel(f, m); err != nil {
		cleanup()
		return err
	}
	if err := f.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return err
	}
	if err := os.Rename(f.Name(), path); err != nil {
		os.Remove(f.Name())
		return err
	}
	return nil
}

// WriteTextModel writes the historical text format: one "%.17g" value
// per line, dense. %.17g round-trips float64 exactly.
func WriteTextModel(w io.Writer, m *Model) error {
	bw := bufio.NewWriter(w)
	for _, v := range m.Dense() {
		if _, err := fmt.Fprintf(bw, "%.17g\n", v); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTextModel parses the text format. The result is KindRaw with no
// lambda/rows provenance — the format predates the header.
func ReadTextModel(r io.Reader) (*Model, error) {
	sc := bufio.NewScanner(r)
	var x []float64
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" {
			continue
		}
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, fmt.Errorf("serve: text model line %d: %v", line, err)
		}
		x = append(x, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return NewModel(KindRaw, x), nil
}

// LoadModelFile reads a model from path, auto-detecting the binary
// format by its magic and falling back to the text format.
func LoadModelFile(path string) (*Model, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) >= 8 && bytes.Equal(data[:8], modelMagic[:]) {
		return ReadModel(bytes.NewReader(data))
	}
	return ReadTextModel(bytes.NewReader(data))
}
