package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"saco/internal/libsvm"
	"saco/internal/simd"
)

// Options tunes the serving layer; the zero value is usable.
type Options struct {
	// MaxBatch caps the rows coalesced into one scoring call
	// (default 256). A single oversized request still scores in one
	// call of its own.
	MaxBatch int
	// BatchWindow is how long the dispatcher lingers for companion
	// requests after the first of a batch (default 500µs). Shorter
	// windows favour latency, longer ones throughput.
	BatchWindow time.Duration
	// Workers is the kernel width of the batched scoring call on the
	// persistent pool (0 = GOMAXPROCS, 1 = sequential).
	Workers int
	// MaxBodyBytes caps a /predict request body (default 32 MiB).
	MaxBodyBytes int64
}

func (o Options) withDefaults() Options {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 256
	}
	if o.BatchWindow <= 0 {
		o.BatchWindow = 500 * time.Microsecond
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 32 << 20
	}
	return o
}

// maxUint64 is an atomic running maximum.
type maxUint64 struct{ v atomic.Uint64 }

func (m *maxUint64) Max(x uint64) {
	for {
		cur := m.v.Load()
		if x <= cur || m.v.CompareAndSwap(cur, x) {
			return
		}
	}
}
func (m *maxUint64) Load() uint64 { return m.v.Load() }

// serverStats are the monotone counters /stats reports.
type serverStats struct {
	requests     atomic.Uint64
	rowsScored   atomic.Uint64
	batches      atomic.Uint64
	errors       atomic.Uint64
	maxBatchRows maxUint64
}

// Server answers prediction traffic against a Registry. Construct with
// NewServer, mount Handler on an http.Server, Close when done.
type Server struct {
	reg   *Registry
	opt   Options
	jobs  chan *predictJob
	stop  chan struct{}
	done  chan struct{}
	stats serverStats
	start time.Time
}

// NewServer starts the dispatcher goroutine and returns the server.
func NewServer(reg *Registry, opt Options) *Server {
	s := &Server{
		reg:   reg,
		opt:   opt.withDefaults(),
		jobs:  make(chan *predictJob, 1024),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
		start: time.Now(),
	}
	go s.dispatch()
	return s
}

// Close stops the dispatcher. In-flight handlers receive 503s; callers
// should shut the http.Server down first.
func (s *Server) Close() {
	close(s.stop)
	<-s.done
}

// Handler returns the route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/predict", s.handlePredict)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/stats", s.handleStats)
	return mux
}

// predictResponse is the /predict reply.
type predictResponse struct {
	// ModelVersion is the registry version every score in this reply
	// was computed against — exactly one, never a mix.
	ModelVersion uint64 `json:"model_version"`
	// Scores are the decision values A·x, one per request row.
	Scores []float64 `json:"scores"`
	// Labels are sign(score), present only for classifier models.
	Labels []int `json:"labels,omitempty"`
}

// jsonRow is one request row in the JSON body: parallel 1-based
// indices (LIBSVM convention) and values.
type jsonRow struct {
	Indices []int     `json:"indices"`
	Values  []float64 `json:"values"`
}

// jsonPredictRequest is the JSON body: {"rows": [{"indices": [1,7],
// "values": [0.5, 1.0]}, ...]}.
type jsonPredictRequest struct {
	Rows []jsonRow `json:"rows"`
}

// handlePredict parses the body (JSON or LIBSVM lines by Content-Type),
// enqueues the rows on the micro-batcher, and waits for its verdict.
func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	s.stats.requests.Add(1)
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "POST a JSON or LIBSVM body to /predict")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.opt.MaxBodyBytes))
	if err != nil {
		s.fail(w, http.StatusRequestEntityTooLarge, "request body too large or unreadable")
		return
	}

	job := &predictJob{maxCol: -1, resp: make(chan predictResult, 1)}
	if strings.HasPrefix(r.Header.Get("Content-Type"), "application/json") {
		err = job.parseJSON(body)
	} else {
		err = job.parseLIBSVM(body)
	}
	if err != nil {
		s.fail(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(job.cols) == 0 {
		s.fail(w, http.StatusBadRequest, "no rows in request")
		return
	}

	select {
	case s.jobs <- job:
	case <-s.stop:
		s.fail(w, http.StatusServiceUnavailable, "server shutting down")
		return
	}
	select {
	case res := <-job.resp:
		if res.status != 0 {
			s.fail(w, res.status, res.errText)
			return
		}
		resp := predictResponse{ModelVersion: res.model.Version, Scores: res.scores}
		if res.model.Kind.Classifier() {
			resp.Labels = make([]int, len(res.scores))
			for i, v := range res.scores {
				if v >= 0 {
					resp.Labels[i] = 1
				} else {
					resp.Labels[i] = -1
				}
			}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(resp) //nolint:errcheck // client gone = nothing to do
	case <-s.stop:
		s.fail(w, http.StatusServiceUnavailable, "server shutting down")
	}
}

// parseJSON fills the job from the JSON body format.
func (j *predictJob) parseJSON(body []byte) error {
	var req jsonPredictRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return fmt.Errorf("bad JSON body: %v", err)
	}
	for r, row := range req.Rows {
		if len(row.Indices) != len(row.Values) {
			return fmt.Errorf("row %d: %d indices for %d values", r, len(row.Indices), len(row.Values))
		}
		cols := make([]int, len(row.Indices))
		prev := 0
		for k, idx := range row.Indices {
			if idx < 1 {
				return fmt.Errorf("row %d: index %d (indices are 1-based, LIBSVM convention)", r, idx)
			}
			if idx <= prev {
				return fmt.Errorf("row %d: index %d out of order after %d (must be strictly increasing)", r, idx, prev)
			}
			prev = idx
			cols[k] = idx - 1
			if cols[k] > j.maxCol {
				j.maxCol = cols[k]
			}
		}
		j.cols = append(j.cols, cols)
		j.vals = append(j.vals, append([]float64(nil), row.Values...))
	}
	return nil
}

// parseLIBSVM fills the job from LIBSVM-format lines. A leading label
// field is accepted and ignored (so training files can be replayed
// against /predict verbatim); lines of bare index:value pairs work too.
func (j *predictJob) parseLIBSVM(body []byte) error {
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 1<<16), 1<<26)
	var parser libsvm.RowParser
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if libsvm.Skip(line) {
			continue
		}
		// A first field without ':' is a label; otherwise synthesize one
		// so the shared grammar applies.
		fields := strings.Fields(line)
		if len(fields) > 0 && strings.Contains(fields[0], ":") {
			line = "0 " + line
		}
		if _, err := parser.Parse(line, lineNo); err != nil {
			return err
		}
		j.cols = append(j.cols, append([]int(nil), parser.Cols...))
		j.vals = append(j.vals, append([]float64(nil), parser.Vals...))
		if c := parser.MaxCol(); c > j.maxCol {
			j.maxCol = c
		}
	}
	return sc.Err()
}

// fail writes a plain-text error and counts it.
func (s *Server) fail(w http.ResponseWriter, status int, msg string) {
	s.stats.errors.Add(1)
	http.Error(w, msg, status)
}

// handleHealthz is the liveness/readiness probe: 200 once a model is
// servable, 503 before.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.reg.Current() == nil {
		http.Error(w, "no model loaded", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

// statsResponse is the /stats reply.
type statsResponse struct {
	ModelVersion  uint64  `json:"model_version"`
	ModelKind     string  `json:"model_kind"`
	Features      int     `json:"features"`
	ModelNNZ      int     `json:"model_nnz"`
	Lambda        float64 `json:"lambda"`
	Requests      uint64  `json:"requests"`
	RowsScored    uint64  `json:"rows_scored"`
	Batches       uint64  `json:"batches"`
	MaxBatchRows  uint64  `json:"max_batch_rows"`
	Errors        uint64  `json:"errors"`
	Publishes     uint64  `json:"registry_publishes"`
	Swaps         uint64  `json:"registry_swaps"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Kernels names the internal/simd dispatch set scoring every batch,
	// so a recorded benchmark or incident capture identifies the kernels
	// that served it.
	Kernels string `json:"kernels"`
}

// handleStats reports the serving counters and the current model's
// provenance.
func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	resp := statsResponse{
		Requests:      s.stats.requests.Load(),
		RowsScored:    s.stats.rowsScored.Load(),
		Batches:       s.stats.batches.Load(),
		MaxBatchRows:  s.stats.maxBatchRows.Load(),
		Errors:        s.stats.errors.Load(),
		Publishes:     s.reg.Publishes(),
		Swaps:         s.reg.Swaps(),
		UptimeSeconds: time.Since(s.start).Seconds(),
		Kernels:       simd.Active().Name(),
	}
	if m := s.reg.Current(); m != nil {
		resp.ModelVersion = m.Version
		resp.ModelKind = m.Kind.String()
		resp.Features = m.Features
		resp.ModelNNZ = m.NNZ()
		resp.Lambda = m.Lambda
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp) //nolint:errcheck
}
