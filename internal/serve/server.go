package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"saco/internal/libsvm"
	"saco/internal/metrics"
	"saco/internal/simd"
)

// Options tunes the serving layer; the zero value is usable.
type Options struct {
	// MaxBatch caps the rows coalesced into one scoring call
	// (default 256). A single oversized request still scores in one
	// call of its own.
	MaxBatch int
	// BatchWindow is how long the dispatcher lingers for companion
	// requests after the first of a batch (default 500µs). Shorter
	// windows favour latency, longer ones throughput.
	BatchWindow time.Duration
	// Workers is the kernel width of the batched scoring call on the
	// persistent pool (0 = GOMAXPROCS, 1 = sequential).
	Workers int
	// MaxBodyBytes caps a /predict request body (default 32 MiB).
	MaxBodyBytes int64

	// QueueDepth bounds the dispatcher's job queue (default 1024).
	// Admission control rejects — 429 with Retry-After, never blocks —
	// the moment the queue is full, so a slow scoring path surfaces as
	// fast feedback instead of unbounded goroutine pile-up.
	QueueDepth int
	// MaxQueueDelay, when positive, sheds jobs that waited in the queue
	// longer than this before scoring (429 + Retry-After). A request
	// that would blow its latency budget anyway is cheaper to refuse
	// than to score.
	MaxQueueDelay time.Duration

	// LearnCap, when positive, enables POST /learn with this many
	// buffered rows per model. Learn traffic lands in a bounded
	// in-memory buffer drained by a live refit — backpressure is a 429,
	// and the predict path never touches the buffer.
	LearnCap int
	// OnLearn, when set, is invoked once per model name on the first
	// accepted /learn rows, with the registry the model publishes into
	// and the buffer feeding it. Typical use: start RefitStream.
	OnLearn func(model string, reg *Registry, buf *LearnBuffer)

	// Metrics, when set, receives the serving instruments (request and
	// shed counters, batch size/latency histograms, queue depth) and is
	// exposed at /metrics in the Prometheus text format.
	Metrics *metrics.Registry
}

func (o Options) withDefaults() Options {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 256
	}
	if o.BatchWindow <= 0 {
		o.BatchWindow = 500 * time.Microsecond
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 32 << 20
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 1024
	}
	return o
}

// retryAfterSeconds is the Retry-After hint on every 429: long enough
// for a batch window and queue to drain, short enough that a loaded
// client keeps probing.
const retryAfterSeconds = "1"

// maxUint64 is an atomic running maximum.
type maxUint64 struct{ v atomic.Uint64 }

func (m *maxUint64) Max(x uint64) {
	for {
		cur := m.v.Load()
		if x <= cur || m.v.CompareAndSwap(cur, x) {
			return
		}
	}
}
func (m *maxUint64) Load() uint64 { return m.v.Load() }

// serverStats are the monotone counters /stats reports.
type serverStats struct {
	requests     atomic.Uint64
	rowsScored   atomic.Uint64
	batches      atomic.Uint64
	errors       atomic.Uint64
	shed         atomic.Uint64
	maxBatchRows maxUint64
}

// serveMetrics is the optional wiring into a metrics.Registry; the
// zero value (all nil) is inert, so every call site is branch-free.
type serveMetrics struct {
	requests      *metrics.Counter
	errors        *metrics.Counter
	rows          *metrics.Counter
	batches       *metrics.Counter
	shed          *metrics.Counter
	learnRows     *metrics.Counter
	learnRejected *metrics.Counter
	batchRows     *metrics.Histogram
	batchLatency  *metrics.Histogram
}

func newServeMetrics(mr *metrics.Registry) serveMetrics {
	if mr == nil {
		return serveMetrics{}
	}
	return serveMetrics{
		requests:      mr.Counter("saco_requests_total", "predict requests received"),
		errors:        mr.Counter("saco_request_errors_total", "predict requests answered with an error"),
		rows:          mr.Counter("saco_rows_scored_total", "request rows scored"),
		batches:       mr.Counter("saco_batches_total", "batched kernel calls"),
		shed:          mr.Counter("saco_shed_total", "requests shed by admission control"),
		learnRows:     mr.Counter("saco_learn_rows_total", "learn rows accepted into refit buffers"),
		learnRejected: mr.Counter("saco_learn_rejected_total", "learn rows refused by buffer backpressure"),
		batchRows:     mr.Histogram("saco_batch_rows", "rows per batched kernel call", metrics.DefSizeBuckets),
		batchLatency:  mr.Histogram("saco_batch_latency_seconds", "batched kernel call latency", metrics.DefLatencyBuckets),
	}
}

// Server answers prediction traffic against a Registry (single-model
// mode) or a Cluster's owned slice of a model fleet. Construct with
// NewServer or NewClusterServer, mount Handler on an http.Server,
// Close when done.
type Server struct {
	reg     *Registry // single-model mode; nil in cluster mode
	cluster *Cluster  // cluster mode; nil in single-model mode
	opt     Options
	met     serveMetrics
	jobs    chan *predictJob
	stop    chan struct{}
	done    chan struct{}
	stats   serverStats
	learn   *learnSet
	start   time.Time
}

// NewServer starts the dispatcher goroutine and returns a single-model
// server.
func NewServer(reg *Registry, opt Options) *Server {
	return newServer(reg, nil, opt)
}

// NewClusterServer starts a server fronting the cluster's owned
// models: /predict and /learn resolve the model name against the shard
// ring and forward to the owning replica when it is not this one.
func NewClusterServer(c *Cluster, opt Options) *Server {
	return newServer(nil, c, opt)
}

func newServer(reg *Registry, c *Cluster, opt Options) *Server {
	s := &Server{
		reg:     reg,
		cluster: c,
		opt:     opt.withDefaults(),
		met:     newServeMetrics(opt.Metrics),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		start:   time.Now(),
	}
	s.jobs = make(chan *predictJob, s.opt.QueueDepth)
	if s.opt.LearnCap > 0 {
		s.learn = newLearnSet(s.opt.LearnCap)
	}
	if mr := s.opt.Metrics; mr != nil {
		mr.GaugeFunc("saco_queue_depth", "predict jobs queued for the dispatcher",
			func() float64 { return float64(len(s.jobs)) })
	}
	go s.dispatch()
	return s
}

// Close stops the dispatcher. In-flight handlers receive 503s; callers
// should shut the http.Server down first.
func (s *Server) Close() {
	close(s.stop)
	<-s.done
}

// Handler returns the route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/predict", s.handlePredict)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/stats", s.handleStats)
	if s.learn != nil {
		mux.HandleFunc("/learn", s.handleLearn)
	}
	if s.cluster != nil {
		mux.HandleFunc("/cluster", s.handleClusterStatus)
		mux.HandleFunc("/cluster/members", s.handleClusterMembers)
	}
	if s.opt.Metrics != nil {
		mux.Handle("/metrics", s.opt.Metrics.Handler())
	}
	return mux
}

// predictResponse is the /predict reply.
type predictResponse struct {
	// ModelVersion is the registry version every score in this reply
	// was computed against — exactly one, never a mix.
	ModelVersion uint64 `json:"model_version"`
	// Scores are the decision values A·x, one per request row.
	Scores []float64 `json:"scores"`
	// Labels are sign(score), present only for classifier models.
	Labels []int `json:"labels,omitempty"`
}

// jsonRow is one request row in the JSON body: parallel 1-based
// indices (LIBSVM convention) and values.
type jsonRow struct {
	Indices []int     `json:"indices"`
	Values  []float64 `json:"values"`
}

// jsonPredictRequest is the JSON body: {"rows": [{"indices": [1,7],
// "values": [0.5, 1.0]}, ...]}. /learn adds a parallel "labels" array.
type jsonPredictRequest struct {
	Rows   []jsonRow `json:"rows"`
	Labels []float64 `json:"labels,omitempty"`
}

// readBody drains the request body under the size cap, reporting the
// failure to the client itself. ok=false means the response is written.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.opt.MaxBodyBytes))
	if err != nil {
		s.fail(w, http.StatusRequestEntityTooLarge, "request body too large or unreadable")
		return nil, false
	}
	return body, true
}

// resolve routes a model-name-addressed request: in cluster mode the
// name is required and resolved against the shard ring (forwarding to
// the owner when it is not this replica); in single-model mode local
// always runs against the one registry. local receives the registry
// that owns the name on this replica, or nil when the name is owned
// here but unknown.
func (s *Server) resolve(w http.ResponseWriter, r *http.Request, body []byte, create bool, local func(name string, reg *Registry)) {
	if s.cluster == nil {
		local("", s.reg)
		return
	}
	name := r.URL.Query().Get("model")
	if name == "" {
		s.fail(w, http.StatusBadRequest, "cluster mode requires ?model=<name>")
		return
	}
	s.cluster.router.Dispatch(w, r, name, body, func() {
		if create {
			reg, err := s.cluster.Ensure(name)
			if err != nil {
				s.fail(w, http.StatusInternalServerError, err.Error())
				return
			}
			local(name, reg)
			return
		}
		local(name, s.cluster.Registry(name))
	})
}

// handlePredict parses the body (JSON or LIBSVM lines by Content-Type),
// enqueues the rows on the micro-batcher, and waits for its verdict. In
// cluster mode the request is first routed to the replica owning
// ?model=.
func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	s.stats.requests.Add(1)
	s.met.requests.Inc()
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "POST a JSON or LIBSVM body to /predict")
		return
	}
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	s.resolve(w, r, body, false, func(name string, reg *Registry) {
		if reg == nil {
			s.fail(w, http.StatusNotFound, fmt.Sprintf("model %q has no registry on this replica", name))
			return
		}
		s.predictLocal(w, r, reg, body)
	})
}

// predictLocal runs the parse → enqueue → wait cycle against one
// registry. The enqueue is non-blocking: a full queue is an immediate
// 429 with Retry-After (admission control), never a blocked handler.
func (s *Server) predictLocal(w http.ResponseWriter, r *http.Request, reg *Registry, body []byte) {
	job := &predictJob{reg: reg, maxCol: -1, enq: time.Now(), resp: make(chan predictResult, 1)}
	var err error
	if strings.HasPrefix(r.Header.Get("Content-Type"), "application/json") {
		err = job.parseJSON(body)
	} else {
		err = job.parseLIBSVM(body)
	}
	if err != nil {
		s.fail(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(job.cols) == 0 {
		s.fail(w, http.StatusBadRequest, "no rows in request")
		return
	}

	select {
	case s.jobs <- job:
	default:
		s.shedReply(w, "dispatcher queue full")
		return
	}
	select {
	case res := <-job.resp:
		if res.status != 0 {
			if res.status == http.StatusTooManyRequests {
				w.Header().Set("Retry-After", retryAfterSeconds)
			}
			s.fail(w, res.status, res.errText)
			return
		}
		resp := predictResponse{ModelVersion: res.model.Version, Scores: res.scores}
		if res.model.Kind.Classifier() {
			resp.Labels = make([]int, len(res.scores))
			for i, v := range res.scores {
				if v >= 0 {
					resp.Labels[i] = 1
				} else {
					resp.Labels[i] = -1
				}
			}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(resp) //nolint:errcheck // client gone = nothing to do
	case <-s.stop:
		s.fail(w, http.StatusServiceUnavailable, "server shutting down")
	}
}

// shedReply is the admission-control refusal: 429, Retry-After, and a
// tick on both the shed ledgers.
func (s *Server) shedReply(w http.ResponseWriter, why string) {
	s.stats.shed.Add(1)
	s.met.shed.Inc()
	w.Header().Set("Retry-After", retryAfterSeconds)
	s.fail(w, http.StatusTooManyRequests, "overloaded: "+why)
}

// parseJSON fills the job from the JSON body format.
func (j *predictJob) parseJSON(body []byte) error {
	req, err := parseJSONRows(body, false)
	if err != nil {
		return err
	}
	j.cols, j.vals, j.maxCol = req.cols, req.vals, req.maxCol
	return nil
}

// parsedRows is the common parsed form of a JSON or LIBSVM body.
type parsedRows struct {
	cols   [][]int
	vals   [][]float64
	labels []float64
	maxCol int
}

// parseJSONRows parses the JSON body; withLabels additionally requires
// one label per row (the /learn contract).
func parseJSONRows(body []byte, withLabels bool) (parsedRows, error) {
	out := parsedRows{maxCol: -1}
	var req jsonPredictRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return out, fmt.Errorf("bad JSON body: %v", err)
	}
	if withLabels && len(req.Labels) != len(req.Rows) {
		return out, fmt.Errorf("%d labels for %d rows (learn requires one label per row)", len(req.Labels), len(req.Rows))
	}
	for r, row := range req.Rows {
		if len(row.Indices) != len(row.Values) {
			return out, fmt.Errorf("row %d: %d indices for %d values", r, len(row.Indices), len(row.Values))
		}
		cols := make([]int, len(row.Indices))
		prev := 0
		for k, idx := range row.Indices {
			if idx < 1 {
				return out, fmt.Errorf("row %d: index %d (indices are 1-based, LIBSVM convention)", r, idx)
			}
			if idx <= prev {
				return out, fmt.Errorf("row %d: index %d out of order after %d (must be strictly increasing)", r, idx, prev)
			}
			prev = idx
			cols[k] = idx - 1
			if cols[k] > out.maxCol {
				out.maxCol = cols[k]
			}
		}
		out.cols = append(out.cols, cols)
		out.vals = append(out.vals, append([]float64(nil), row.Values...))
	}
	if withLabels {
		out.labels = append([]float64(nil), req.Labels...)
	}
	return out, nil
}

// parseLIBSVM fills the job from LIBSVM-format lines. A leading label
// field is accepted and ignored (so training files can be replayed
// against /predict verbatim); lines of bare index:value pairs work too.
func (j *predictJob) parseLIBSVM(body []byte) error {
	rows, err := parseLIBSVMRows(body, false)
	if err != nil {
		return err
	}
	j.cols, j.vals, j.maxCol = rows.cols, rows.vals, rows.maxCol
	return nil
}

// parseLIBSVMRows parses LIBSVM lines; withLabels requires every line
// to carry a leading label (the /learn contract), otherwise a missing
// label is synthesized so training files replay against /predict.
func parseLIBSVMRows(body []byte, withLabels bool) (parsedRows, error) {
	out := parsedRows{maxCol: -1}
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 1<<16), 1<<26)
	var parser libsvm.RowParser
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if libsvm.Skip(line) {
			continue
		}
		// A first field without ':' is a label; otherwise synthesize one
		// so the shared grammar applies.
		fields := strings.Fields(line)
		if len(fields) > 0 && strings.Contains(fields[0], ":") {
			if withLabels {
				return out, fmt.Errorf("line %d: learn rows require a leading label", lineNo)
			}
			line = "0 " + line
		}
		label, err := parser.Parse(line, lineNo)
		if err != nil {
			return out, err
		}
		out.cols = append(out.cols, append([]int(nil), parser.Cols...))
		out.vals = append(out.vals, append([]float64(nil), parser.Vals...))
		if withLabels {
			out.labels = append(out.labels, label)
		}
		if c := parser.MaxCol(); c > out.maxCol {
			out.maxCol = c
		}
	}
	return out, sc.Err()
}

// fail writes a plain-text error and counts it.
func (s *Server) fail(w http.ResponseWriter, status int, msg string) {
	s.stats.errors.Add(1)
	s.met.errors.Inc()
	http.Error(w, msg, status)
}

// handleHealthz is the liveness/readiness probe: 200 once every model
// this replica owns is servable (in single-model mode: the one model),
// 503 before.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.cluster != nil {
		if missing := s.cluster.missingModels(); len(missing) > 0 {
			http.Error(w, "no model loaded for: "+strings.Join(missing, ", "), http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
		return
	}
	if s.reg.Current() == nil {
		http.Error(w, "no model loaded", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

// statsResponse is the /stats reply.
type statsResponse struct {
	ModelVersion  uint64  `json:"model_version"`
	ModelKind     string  `json:"model_kind"`
	Features      int     `json:"features"`
	ModelNNZ      int     `json:"model_nnz"`
	Lambda        float64 `json:"lambda"`
	Requests      uint64  `json:"requests"`
	RowsScored    uint64  `json:"rows_scored"`
	Batches       uint64  `json:"batches"`
	MaxBatchRows  uint64  `json:"max_batch_rows"`
	Errors        uint64  `json:"errors"`
	Shed          uint64  `json:"shed"`
	Publishes     uint64  `json:"registry_publishes"`
	Swaps         uint64  `json:"registry_swaps"`
	OwnedModels   int     `json:"owned_models,omitempty"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Kernels names the internal/simd dispatch set scoring every batch,
	// so a recorded benchmark or incident capture identifies the kernels
	// that served it.
	Kernels string `json:"kernels"`
}

// handleStats reports the serving counters and the current model's
// provenance.
func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	resp := statsResponse{
		Requests:      s.stats.requests.Load(),
		RowsScored:    s.stats.rowsScored.Load(),
		Batches:       s.stats.batches.Load(),
		MaxBatchRows:  s.stats.maxBatchRows.Load(),
		Errors:        s.stats.errors.Load(),
		Shed:          s.stats.shed.Load(),
		UptimeSeconds: time.Since(s.start).Seconds(),
		Kernels:       simd.Active().Name(),
	}
	if s.cluster != nil {
		resp.OwnedModels = len(s.cluster.Owned())
	} else {
		resp.Publishes = s.reg.Publishes()
		resp.Swaps = s.reg.Swaps()
		if m := s.reg.Current(); m != nil {
			resp.ModelVersion = m.Version
			resp.ModelKind = m.Kind.String()
			resp.Features = m.Features
			resp.ModelNNZ = m.NNZ()
			resp.Lambda = m.Lambda
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp) //nolint:errcheck
}

// handleClusterStatus reports the ring and this replica's owned slice.
func (s *Server) handleClusterStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, http.StatusMethodNotAllowed, "GET /cluster")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.cluster.Status()) //nolint:errcheck
}

// clusterMembersRequest is the POST /cluster/members body.
type clusterMembersRequest struct {
	Members []string `json:"members"`
}

// handleClusterMembers installs a new member set and rebalances the
// owned model slice against the new ring.
func (s *Server) handleClusterMembers(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "POST a JSON member list to /cluster/members")
		return
	}
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	var req clusterMembersRequest
	if err := json.Unmarshal(body, &req); err != nil {
		s.fail(w, http.StatusBadRequest, "bad JSON body: "+err.Error())
		return
	}
	if len(req.Members) == 0 {
		s.fail(w, http.StatusBadRequest, "members must be non-empty")
		return
	}
	if err := s.cluster.SetMembers(req.Members); err != nil {
		s.fail(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.cluster.Status()) //nolint:errcheck
}
