package serve

import (
	"bytes"
	"encoding/binary"
	"hash/crc64"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"saco/internal/sparse"
)

// testModel builds a deterministic sparse model.
func testModel(kind Kind, n, nnz int, seed int64) *Model {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for _, j := range rng.Perm(n)[:nnz] {
		x[j] = rng.NormFloat64()
	}
	m := NewModel(kind, x)
	m.TrainRows = 1234
	m.Lambda = 0.125
	return m
}

// TestModelBinaryRoundTrip: write → read reproduces every field and
// every coefficient bit for bit.
func TestModelBinaryRoundTrip(t *testing.T) {
	m := testModel(KindLasso, 300, 17, 1)
	m.Version = 42
	var buf bytes.Buffer
	if err := WriteModel(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadModel(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != m.Kind || got.Features != m.Features || got.TrainRows != m.TrainRows ||
		got.Lambda != m.Lambda || got.Version != m.Version || got.NNZ() != m.NNZ() {
		t.Fatalf("header mismatch: %+v vs %+v", got, m)
	}
	for k := range m.Idx {
		if got.Idx[k] != m.Idx[k] || got.Val[k] != m.Val[k] {
			t.Fatalf("coef %d: (%d,%v) != (%d,%v)", k, got.Idx[k], got.Val[k], m.Idx[k], m.Val[k])
		}
	}
}

// TestModelEmptyRoundTrip: the all-zero model (λ ≥ λmax) is legal.
func TestModelEmptyRoundTrip(t *testing.T) {
	m := NewModel(KindLasso, make([]float64, 50))
	var buf bytes.Buffer
	if err := WriteModel(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadModel(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Features != 50 || got.NNZ() != 0 {
		t.Fatalf("got %d features, %d nnz", got.Features, got.NNZ())
	}
}

// TestModelTextRoundTrip: text ↔ binary conversion is lossless (%.17g
// round-trips float64 exactly); text carries no provenance, so the
// reload is KindRaw.
func TestModelTextRoundTrip(t *testing.T) {
	m := testModel(KindSVM, 120, 11, 2)
	var txt bytes.Buffer
	if err := WriteTextModel(&txt, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTextModel(bytes.NewReader(txt.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != KindRaw || got.Features != m.Features {
		t.Fatalf("text reload: kind %v features %d", got.Kind, got.Features)
	}
	gd, md := got.Dense(), m.Dense()
	for j := range md {
		if gd[j] != md[j] {
			t.Fatalf("coef %d: %v != %v (text round trip must be exact)", j, gd[j], md[j])
		}
	}
}

// TestLoadModelFileAutoDetect: one loader for both formats.
func TestLoadModelFileAutoDetect(t *testing.T) {
	dir := t.TempDir()
	m := testModel(KindLasso, 80, 9, 3)

	bin := filepath.Join(dir, "m.sacm")
	if err := WriteModelFile(bin, m); err != nil {
		t.Fatal(err)
	}
	if got, err := LoadModelFile(bin); err != nil || got.Kind != KindLasso {
		t.Fatalf("binary autodetect: %v (%+v)", err, got)
	}

	txt := filepath.Join(dir, "m.txt")
	f, err := os.Create(txt)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteTextModel(f, m); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := LoadModelFile(txt)
	if err != nil || got.Kind != KindRaw || got.Features != m.Features {
		t.Fatalf("text autodetect: %v (%+v)", err, got)
	}
}

// TestModelRejectsCorruption: every corruption class is refused —
// flipped payload bits (checksum), truncation, oversized declarations,
// bad magic, future format versions, and out-of-range indices (dim
// mismatch).
func TestModelRejectsCorruption(t *testing.T) {
	m := testModel(KindLasso, 200, 13, 4)
	var buf bytes.Buffer
	if err := WriteModel(&buf, m); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	reject := func(name string, mutate func([]byte) []byte, wantSub string) {
		t.Helper()
		data := mutate(append([]byte(nil), good...))
		_, err := ReadModel(bytes.NewReader(data))
		if err == nil {
			t.Fatalf("%s: accepted", name)
		}
		if !strings.Contains(err.Error(), wantSub) {
			t.Fatalf("%s: error %q does not mention %q", name, err, wantSub)
		}
	}

	reject("flipped value bit", func(d []byte) []byte {
		d[modelHeaderSize+8*len(m.Idx)+3] ^= 0x40
		return d
	}, "checksum")
	reject("truncated", func(d []byte) []byte { return d[:len(d)-9] }, "declares")
	reject("appended garbage", func(d []byte) []byte { return append(d, 0xff) }, "declares")
	reject("bad magic", func(d []byte) []byte { d[0] = 'X'; return d }, "magic")
	reject("future version", func(d []byte) []byte {
		d[8] = 99
		return rechecksum(d)
	}, "format version")
	reject("dim mismatch", func(d []byte) []byte {
		// Shrink the declared feature count below the largest index.
		d[16] = byte(m.Idx[len(m.Idx)-1]) // features := maxIdx (< maxIdx+1 needed)
		for i := 17; i < 24; i++ {
			d[i] = 0
		}
		return rechecksum(d)
	}, "dim mismatch")
	reject("unordered indices", func(d []byte) []byte {
		// Swap the first two stored indices.
		a := append([]byte(nil), d[modelHeaderSize:modelHeaderSize+8]...)
		copy(d[modelHeaderSize:], d[modelHeaderSize+8:modelHeaderSize+16])
		copy(d[modelHeaderSize+8:], a)
		return rechecksum(d)
	}, "increasing")
}

// rechecksum fixes up the trailing CRC after a deliberate header
// mutation, so the test reaches the validation being targeted instead
// of the checksum gate.
func rechecksum(d []byte) []byte {
	binary.LittleEndian.PutUint64(d[len(d)-8:], crc64.Checksum(d[:len(d)-8], crcTable))
	return d
}

// randRequestCSR builds random sparse request rows of width n.
func randRequestCSR(rng *rand.Rand, rows, n int) *sparse.CSR {
	coo := sparse.NewCOO(rows, n)
	for i := 0; i < rows; i++ {
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.2 {
				coo.Add(i, j, rng.NormFloat64())
			}
		}
	}
	return coo.ToCSR()
}

// TestModelScoreMatchesDense: Score agrees exactly with the dense
// expansion product and validates shapes.
func TestModelScoreMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := testModel(KindLasso, 60, 8, 5)
	rows := randRequestCSR(rng, 40, m.Features)
	y := make([]float64, rows.M)
	if err := m.Score(rows, 1, y); err != nil {
		t.Fatal(err)
	}
	want := make([]float64, rows.M)
	rows.MulVec(m.Dense(), want)
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("row %d: %v != %v", i, y[i], want[i])
		}
	}
	if err := m.Score(rows, 1, y[:1]); err == nil {
		t.Fatal("short output accepted")
	}
	narrow := randRequestCSR(rng, 3, m.Features+5)
	if err := m.Score(narrow, 1, make([]float64, 3)); err == nil {
		t.Fatal("feature-width mismatch accepted")
	}
}
