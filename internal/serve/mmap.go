package serve

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"math"
	"runtime"

	"saco/internal/stream"
)

// LoadMode selects how a model file is materialized in memory.
type LoadMode int

const (
	// LoadCopy reads the file into the heap (the historical path).
	LoadCopy LoadMode = iota
	// LoadMmap maps the file read-only and aliases the value payload in
	// place — the model's Val slice points straight into the page cache,
	// so loading an N-nonzero model copies the indices but not the
	// floats, and repeated replicas on one host share the pages. Any
	// failure to map or alias (unsupported platform, big-endian host,
	// text-format file) silently falls back to LoadCopy; correctness is
	// identical either way, only residency differs.
	LoadMmap
)

// String names the mode for flags and logs.
func (m LoadMode) String() string {
	if m == LoadMmap {
		return "mmap"
	}
	return "copy"
}

// LoadModelFileMode is LoadModelFile with an explicit materialization
// mode. The mmap path verifies exactly what the copy path verifies —
// magic, format version, declared sizes, CRC over the whole payload,
// index invariants — before trusting a byte of the mapping.
func LoadModelFileMode(path string, mode LoadMode) (*Model, error) {
	if mode != LoadMmap || !stream.MmapSupported() {
		return LoadModelFile(path)
	}
	data, err := stream.MapFile(path)
	if err != nil {
		return LoadModelFile(path)
	}
	m, ok, err := modelFromMapping(data)
	if err != nil || !ok {
		// Not aliasable (or not a whole binary model): release the
		// mapping and take the copy path, which also handles the text
		// format. Real corruption fails there identically.
		stream.UnmapFile(data) //nolint:errcheck // best effort on the bail-out path
		if err != nil {
			return nil, err
		}
		return LoadModelFile(path)
	}
	// The model's Val slice aliases the mapping: unmap only once the
	// model itself is unreachable. The registry hands models to readers
	// by pointer, so reachability is exactly liveness of the last
	// in-flight reader.
	runtime.AddCleanup(m, func(d []byte) {
		stream.UnmapFile(d) //nolint:errcheck // process teardown reclaims the mapping regardless
	}, data)
	return m, nil
}

// modelFromMapping builds a Model whose Val slice aliases the mapped
// bytes. ok=false (with nil error) means the mapping cannot back a
// zero-copy model — wrong magic (could be the text format) or an
// unaliasable platform — and the caller should fall back; a non-nil
// error means the file is a provably corrupt binary model.
func modelFromMapping(data []byte) (*Model, bool, error) {
	if len(data) < modelHeaderSize+8 || !bytes.Equal(data[:8], modelMagic[:]) {
		return nil, false, nil
	}
	le := binary.LittleEndian
	if v := le.Uint32(data[8:]); v != modelFormatVersion {
		return nil, false, fmt.Errorf("serve: unsupported model format version %d (have %d)", v, modelFormatVersion)
	}
	nnz := le.Uint64(data[48:])
	if nnz > uint64(len(data))/16 {
		return nil, false, fmt.Errorf("serve: model header declares %d nonzeros in a %d-byte file", nnz, len(data))
	}
	if want := modelHeaderSize + 16*nnz + 8; uint64(len(data)) != want {
		return nil, false, fmt.Errorf("serve: model file is %d bytes, header declares %d (nnz=%d)", len(data), want, nnz)
	}
	payload := data[:len(data)-8]
	if got, stored := crc64.Checksum(payload, crcTable), le.Uint64(data[len(data)-8:]); got != stored {
		return nil, false, fmt.Errorf("serve: model checksum mismatch (stored %016x, computed %016x): corrupted file", stored, got)
	}
	m := &Model{
		Kind:      Kind(le.Uint32(data[12:])),
		Features:  int(le.Uint64(data[16:])),
		TrainRows: int(le.Uint64(data[24:])),
		Lambda:    math.Float64frombits(le.Uint64(data[32:])),
		Version:   le.Uint64(data[40:]),
	}
	if nnz > 0 {
		// Indices widen uint64→int, so they copy; values are raw IEEE-754
		// little-endian at offset 56+8·nnz — 8-aligned on a page-aligned
		// mapping — and alias in place.
		valOff := modelHeaderSize + 8*int(nnz)
		vals, ok := stream.AsFloat64LE(data[valOff:], int(nnz))
		if !ok {
			return nil, false, nil
		}
		m.Val = vals
		m.Idx = make([]int, nnz)
		off := modelHeaderSize
		for k := range m.Idx {
			m.Idx[k] = int(le.Uint64(data[off:]))
			off += 8
		}
	}
	if err := m.validate(); err != nil {
		return nil, false, err
	}
	return m, true, nil
}
