package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"saco/internal/core"
	"saco/internal/datagen"
)

// relDiff is the relative difference used by the convergence checks.
func relDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	if m := math.Max(math.Abs(a), math.Abs(b)); m > 0 {
		return d / m
	}
	return d
}

// TestRefitLassoConverges: a refit warm-started from a deliberately bad
// model must publish versions that land at the sequential optimum, with
// the final (quiescent) publish carrying provenance.
func TestRefitLassoConverges(t *testing.T) {
	data := datagen.Regression("refit", 7, 150, 40, 0.25, 6, 0.05)
	a := data.AsCSR()
	lambda := 0.2 * core.LambdaMaxL1(a.ToCSC(), data.B)

	seq, err := core.Lasso(a.ToCSC(), data.B, core.LassoOptions{Lambda: lambda, Iters: 20000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	reg, err := OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// A bad initial model: all zeros, but typed and sized.
	init := NewModel(KindLasso, make([]float64, a.N))
	init.Lambda = lambda
	if _, err := reg.Publish(init); err != nil {
		t.Fatal(err)
	}

	var log bytes.Buffer
	err = Refit(context.Background(), reg, a, data.B, RefitOptions{
		Every: 30 * time.Millisecond, Workers: 2, Seed: 3,
		MaxPublishes: 3, Log: &log,
	})
	if err != nil {
		t.Fatal(err)
	}
	if reg.Version() != 4 { // initial + 3 refit publishes
		t.Fatalf("registry at version %d, want 4 (log:\n%s)", reg.Version(), log.String())
	}
	m := reg.Current()
	if m.Kind != KindLasso || m.Lambda != lambda || m.TrainRows != a.M {
		t.Fatalf("published provenance wrong: %+v", m)
	}
	obj := core.LassoObjective(residual(a, m.Dense(), data.B), m.Dense(), core.L1{Lambda: lambda})
	if d := relDiff(obj, seq.Objective); d > 1e-4 {
		t.Fatalf("refit objective %.12e vs sequential %.12e (rel %.3e)\n%s", obj, seq.Objective, d, log.String())
	}
}

// residual computes A·x − b.
func residual(a interface{ MulVec(x, y []float64) }, x, b []float64) []float64 {
	r := make([]float64, len(b))
	a.MulVec(x, r)
	for i := range r {
		r[i] -= b[i]
	}
	return r
}

// TestRefitSVMConverges: the dual retrains from scratch on the refit
// rows and the published primal reaches the sequential optimum.
func TestRefitSVMConverges(t *testing.T) {
	data := datagen.Classification("refit-svm", 11, 150, 30, 0.3, 0.05)
	a := data.AsCSR()
	seq, err := core.SVM(a, data.B, core.SVMOptions{Lambda: 1, Loss: core.SVML2, Iters: 120000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	reg, err := OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	init := NewModel(KindSVM, make([]float64, a.N))
	init.Lambda = 1
	if _, err := reg.Publish(init); err != nil {
		t.Fatal(err)
	}
	err = Refit(context.Background(), reg, a, data.B, RefitOptions{
		Every: 40 * time.Millisecond, Workers: 2, Seed: 5,
		Loss: core.SVML2, MaxPublishes: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := reg.Current()
	if m.Version != 3 || m.Kind != KindSVM {
		t.Fatalf("serving %v version %d", m.Kind, m.Version)
	}
	primal := svmPrimal(a, data.B, m.Dense())
	if d := relDiff(primal, seq.Primal); d > 1e-3 {
		t.Fatalf("refit primal %.12e vs sequential %.12e (rel %.3e)", primal, seq.Primal, d)
	}
}

// svmPrimal evaluates the SVM-L2 primal objective at x.
func svmPrimal(a interface{ MulVec(x, y []float64) }, b, x []float64) float64 {
	margins := make([]float64, len(b))
	a.MulVec(x, margins)
	var loss float64
	for i, m := range margins {
		if h := 1 - b[i]*m; h > 0 {
			loss += h * h
		}
	}
	var norm float64
	for _, v := range x {
		norm += v * v
	}
	return loss + norm/2 // λ = 1: λ/2·‖x‖² with the paper's scaling
}

// TestRefitErrors pins the refusal surface: no inferable task, and a
// feature-width mismatch with the serving model.
func TestRefitErrors(t *testing.T) {
	data := datagen.Regression("refit-err", 13, 40, 20, 0.3, 4, 0.05)
	a := data.AsCSR()

	empty, err := OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := Refit(context.Background(), empty, a, data.B, RefitOptions{}); err == nil ||
		!strings.Contains(err.Error(), "infer") {
		t.Fatalf("kind inference: %v", err)
	}

	reg, err := OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	wrong := NewModel(KindLasso, make([]float64, a.N+3))
	if _, err := reg.Publish(wrong); err != nil {
		t.Fatal(err)
	}
	if err := Refit(context.Background(), reg, a, data.B, RefitOptions{}); err == nil ||
		!strings.Contains(err.Error(), "features") {
		t.Fatalf("dim mismatch: %v", err)
	}
}

// TestRefitContextCancel: cancelling the context quiesces the workers
// and flushes one final exact model.
func TestRefitContextCancel(t *testing.T) {
	data := datagen.Regression("refit-cancel", 17, 80, 25, 0.3, 4, 0.05)
	a := data.AsCSR()
	reg, err := OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	init := NewModel(KindLasso, make([]float64, a.N))
	init.Lambda = 0.1
	if _, err := reg.Publish(init); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	// Publish cadence far beyond the deadline: the only publish is the
	// final flush.
	if err := Refit(ctx, reg, a, data.B, RefitOptions{Every: time.Hour, Workers: 2}); err != nil {
		t.Fatal(err)
	}
	if reg.Version() != 2 {
		t.Fatalf("version %d after cancel, want 2 (final flush)", reg.Version())
	}
}

// TestServeWhileRefitting is the tentpole integration check at package
// level: concurrent /predict traffic runs against the registry while a
// live refit publishes new versions into it. Every response must be
// internally consistent (scores exactly match the full model of the
// version it names — verified against the on-disk artifact of that
// version) and the serving version must advance.
func TestServeWhileRefitting(t *testing.T) {
	data := datagen.Regression("serve-refit", 19, 200, 30, 0.3, 5, 0.05)
	a := data.AsCSR()
	lambda := 0.1 * core.LambdaMaxL1(a.ToCSC(), data.B)

	reg, err := OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	init := NewModel(KindLasso, make([]float64, a.N))
	init.Lambda = lambda
	if _, err := reg.Publish(init); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(reg, Options{Workers: 2, MaxBatch: 16, BatchWindow: 200 * time.Microsecond})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	hs := ts.URL

	refitDone := make(chan error, 1)
	go func() {
		refitDone <- Refit(context.Background(), reg, a, data.B, RefitOptions{
			Every: 15 * time.Millisecond, Workers: 2, Seed: 7, MaxPublishes: 4,
		})
	}()

	const clients = 4
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	stop := make(chan struct{})
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"rows":[{"indices":[%d,%d],"values":[0.5,-2]}]}`, c+1, c+7)
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(hs+"/predict", "application/json", strings.NewReader(body))
				if err != nil {
					errCh <- err
					return
				}
				data, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					errCh <- fmt.Errorf("client %d: %d %s (%v)", c, resp.StatusCode, data, err)
					return
				}
				var pr predictResponse
				if err := json.Unmarshal(data, &pr); err != nil {
					errCh <- err
					return
				}
				// Verify against the immutable on-disk artifact of the named
				// version: a mixed-version score cannot match it.
				mv, err := LoadModelFile(fmt.Sprintf("%s/model-%08d.sacm", reg.Dir(), pr.ModelVersion))
				if err != nil {
					errCh <- fmt.Errorf("client %d: version %d not on disk: %v", c, pr.ModelVersion, err)
					return
				}
				xd := mv.Dense()
				want := 0.5*xd[c] + (-2)*xd[c+6]
				if len(pr.Scores) != 1 || pr.Scores[0] != want {
					errCh <- fmt.Errorf("client %d: version %d scored %v, want exactly %v", c, pr.ModelVersion, pr.Scores, want)
					return
				}
			}
		}(c)
	}

	if err := <-refitDone; err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if reg.Version() != 5 { // initial + 4 publishes
		t.Fatalf("version %d after refit, want 5", reg.Version())
	}
}
