package serve

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// modelFilePattern names registry artifacts; the sequence number in the
// name is the model version, so a directory listing is the version
// history.
const modelFilePattern = "model-%08d.sacm"

// modelFileVersion parses a registry artifact name, reporting ok=false
// for foreign files (temp files, READMEs, ...), which the scan skips.
func modelFileVersion(name string) (uint64, bool) {
	var v uint64
	if _, err := fmt.Sscanf(name, modelFilePattern, &v); err != nil || name != fmt.Sprintf(modelFilePattern, v) {
		return 0, false
	}
	return v, true
}

// Registry is the lock-free model store: the current model lives behind
// an atomic pointer that request handlers load wait-free on every
// score, and that Publish / Poll swap in one step. Readers therefore
// always see exactly one immutable model version — a hot swap never
// blocks or tears an in-flight request.
//
// On disk the registry is a directory of versioned model files. Publish
// writes through a temp file and renames, so a concurrent watcher (this
// process's or another's) can never observe a partial artifact.
type Registry struct {
	dir string
	cur atomic.Pointer[Model]

	// Retain bounds how many versions Publish leaves on disk: after a
	// successful publish, artifacts older than the newest Retain are
	// deleted (a long-running refit would otherwise grow the directory
	// without bound). 0 means the default (16); negative keeps
	// everything. Set before the first Publish.
	Retain int

	// Mode selects how Poll materializes artifacts (LoadCopy or
	// LoadMmap). Set at open time (OpenRegistryMode); LoadMmap degrades
	// to LoadCopy wherever mapping or aliasing is unavailable.
	Mode LoadMode

	// mu serializes the writers (Publish, Poll, Watch ticks); readers
	// never take it.
	mu        sync.Mutex
	publishes atomic.Uint64 // models published by this process
	swaps     atomic.Uint64 // pointer swaps (publishes + watcher pickups)

	watchStop chan struct{}
	watchDone chan struct{}
}

// defaultRetain is how many on-disk versions Publish keeps when
// Registry.Retain is 0.
const defaultRetain = 16

// OpenRegistry opens (creating if needed) a model directory and loads
// the highest-versioned valid model in it, if any. Corrupt, partial or
// foreign files are skipped — the registry serves the best model it
// can prove whole, or none (a watcher then picks up the first whole
// model to appear); only an unusable directory is an error.
func OpenRegistry(dir string) (*Registry, error) { return OpenRegistryMode(dir, LoadCopy) }

// OpenRegistryMode is OpenRegistry with an explicit artifact
// materialization mode (LoadMmap maps model files read-only and serves
// their coefficients zero-copy from the page cache).
func OpenRegistryMode(dir string, mode LoadMode) (*Registry, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if _, err := os.ReadDir(dir); err != nil {
		return nil, err
	}
	r := &Registry{dir: dir, Mode: mode}
	r.Poll() //nolint:errcheck // corrupt files at open are recoverable: serve none, let Poll/Watch retry
	return r, nil
}

// Dir returns the registry directory.
func (r *Registry) Dir() string { return r.dir }

// Current returns the serving model, or nil before the first publish.
// The load is wait-free; the result is immutable.
func (r *Registry) Current() *Model { return r.cur.Load() }

// Version returns the serving model's version (0 when none).
func (r *Registry) Version() uint64 {
	if m := r.cur.Load(); m != nil {
		return m.Version
	}
	return 0
}

// Publishes returns how many models this process has published.
func (r *Registry) Publishes() uint64 { return r.publishes.Load() }

// Swaps returns how many times the serving pointer has been swapped
// (own publishes plus watcher pickups).
func (r *Registry) Swaps() uint64 { return r.swaps.Load() }

// Publish assigns m the next version number, persists it (temp file +
// rename, via WriteModelFile), atomically swaps it in as the serving
// model, and prunes versions older than Retain. It returns the
// assigned version.
func (r *Registry) Publish(m *Model) (uint64, error) {
	if err := m.validate(); err != nil {
		return 0, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	next := r.Version()
	if onDisk, err := r.maxDiskVersion(); err == nil && onDisk > next {
		next = onDisk // never reuse a number another writer already took
	}
	next++
	m.Version = next
	if err := WriteModelFile(filepath.Join(r.dir, fmt.Sprintf(modelFilePattern, next)), m); err != nil {
		return 0, err
	}
	r.cur.Store(m)
	r.publishes.Add(1)
	r.swaps.Add(1)
	r.prune(next)
	return next, nil
}

// prune deletes artifacts older than the newest Retain versions; best
// effort (a reader holding an open fd is unaffected by the unlink, and
// a failed remove is retried at the next publish). Called with mu held.
func (r *Registry) prune(newest uint64) {
	retain := r.Retain
	if retain == 0 {
		retain = defaultRetain
	}
	if retain < 0 || newest <= uint64(retain) {
		return
	}
	cutoff := newest - uint64(retain)
	entries, err := os.ReadDir(r.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if v, ok := modelFileVersion(e.Name()); ok && v <= cutoff {
			os.Remove(filepath.Join(r.dir, e.Name())) //nolint:errcheck // retried next publish
		}
	}
}

// maxDiskVersion returns the highest version number present in the
// directory (0 when none), counting even files that fail to load so a
// publisher cannot overwrite them.
func (r *Registry) maxDiskVersion() (uint64, error) {
	entries, err := os.ReadDir(r.dir)
	if err != nil {
		return 0, err
	}
	var maxV uint64
	for _, e := range entries {
		if v, ok := modelFileVersion(e.Name()); ok && v > maxV {
			maxV = v
		}
	}
	return maxV, nil
}

// Poll rescans the directory and hot-swaps to the highest-versioned
// loadable model newer than the serving one. It reports whether a swap
// happened; load failures of newer files are returned as an error but
// do not prevent swapping to the newest loadable version (serving the
// best provable model beats serving an error).
func (r *Registry) Poll() (bool, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	entries, err := os.ReadDir(r.dir)
	if err != nil {
		return false, err
	}
	cur := r.Version()
	var newer []uint64
	for _, e := range entries {
		if v, ok := modelFileVersion(e.Name()); ok && v > cur {
			newer = append(newer, v)
		}
	}
	sort.Slice(newer, func(i, j int) bool { return newer[i] > newer[j] })
	var errs []error
	for _, v := range newer {
		m, err := LoadModelFileMode(filepath.Join(r.dir, fmt.Sprintf(modelFilePattern, v)), r.Mode)
		if err != nil {
			errs = append(errs, fmt.Errorf("version %d: %w", v, err))
			continue
		}
		switch m.Version {
		case v:
		case 0:
			// An unpublished artifact dropped in by a trainer (sasolve -out
			// models/model-NNNNNNNN.sacm): the file name is the version.
			m.Version = v
		default:
			errs = append(errs, fmt.Errorf("version %d: header says version %d", v, m.Version))
			continue
		}
		r.cur.Store(m)
		r.swaps.Add(1)
		return true, errors.Join(errs...)
	}
	return false, errors.Join(errs...)
}

// Watch polls the directory every interval on a background goroutine
// until StopWatch (or a second Watch) is called. Poll errors are
// dropped — the watcher keeps serving the current model and retries
// next tick.
func (r *Registry) Watch(interval time.Duration) {
	r.StopWatch()
	if interval <= 0 {
		interval = 2 * time.Second
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	r.watchStop, r.watchDone = stop, done
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				r.Poll() //nolint:errcheck // transient; retried next tick
			}
		}
	}()
}

// StopWatch stops the background watcher, if any, and waits for it.
func (r *Registry) StopWatch() {
	if r.watchStop != nil {
		close(r.watchStop)
		<-r.watchDone
		r.watchStop, r.watchDone = nil, nil
	}
}
