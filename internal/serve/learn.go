package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"saco/internal/sparse"
)

// The online-learning ingress. POST /learn accepts labeled rows (same
// LIBSVM / JSON grammars as /predict, labels required) into a bounded
// in-memory buffer; a live refit (RefitStream) drains the buffer and
// publishes fresh model versions through the registry's usual
// temp+rename+atomic-swap pipeline. The predict path never touches the
// buffer and the buffer never blocks: a full buffer refuses the rows
// with 429 + Retry-After (backpressure is the client's signal to slow
// down), so learn traffic can saturate without ever adding latency to
// scoring.

// DefaultLearnCap is the per-model row capacity when Options.LearnCap
// is not set by the caller (saserve defaults the flag to this).
const DefaultLearnCap = 65536

// LearnBuffer is a bounded, mutex-guarded staging area of labeled rows
// between the /learn handler and a refit consumer. Offers are
// all-or-nothing: a request's rows are accepted together or refused
// together, so a client never has to figure out which half of its
// batch made it in.
type LearnBuffer struct {
	mu      sync.Mutex
	capRows int
	cols    [][]int
	vals    [][]float64
	labels  []float64
}

// NewLearnBuffer builds a buffer holding at most capRows rows
// (<= 0 selects DefaultLearnCap).
func NewLearnBuffer(capRows int) *LearnBuffer {
	if capRows <= 0 {
		capRows = DefaultLearnCap
	}
	return &LearnBuffer{capRows: capRows}
}

// Cap returns the row capacity.
func (l *LearnBuffer) Cap() int { return l.capRows }

// Len returns the buffered row count.
func (l *LearnBuffer) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.labels)
}

// Offer appends the rows if they all fit, reporting whether they were
// taken. The slices are retained; callers must not reuse them.
func (l *LearnBuffer) Offer(cols [][]int, vals [][]float64, labels []float64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.labels)+len(labels) > l.capRows {
		return false
	}
	l.cols = append(l.cols, cols...)
	l.vals = append(l.vals, vals...)
	l.labels = append(l.labels, labels...)
	return true
}

// Drain takes everything buffered, leaving the buffer empty.
func (l *LearnBuffer) Drain() (cols [][]int, vals [][]float64, labels []float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	cols, vals, labels = l.cols, l.vals, l.labels
	l.cols, l.vals, l.labels = nil, nil, nil
	return cols, vals, labels
}

// learnSet owns the per-model learn buffers; the first accepted rows
// for a name fire the server's OnLearn hook exactly once.
type learnSet struct {
	mu      sync.Mutex
	capRows int
	bufs    map[string]*LearnBuffer
}

func newLearnSet(capRows int) *learnSet {
	return &learnSet{capRows: capRows, bufs: make(map[string]*LearnBuffer)}
}

// buffer returns the buffer for name, creating it (and reporting
// created=true) on first use.
func (ls *learnSet) buffer(name string) (buf *LearnBuffer, created bool) {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if b := ls.bufs[name]; b != nil {
		return b, false
	}
	b := NewLearnBuffer(ls.capRows)
	ls.bufs[name] = b
	return b, true
}

// learnResponse is the POST /learn reply.
type learnResponse struct {
	Accepted int `json:"accepted"`
	Buffered int `json:"buffered"`
}

// handleLearn ingests labeled rows for the (cluster-routed) model and
// stages them for the live refit. Backpressure — a buffer without room
// for the whole request — is 429 + Retry-After, mirroring the predict
// path's admission control.
func (s *Server) handleLearn(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "POST labeled JSON or LIBSVM rows to /learn")
		return
	}
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	s.resolve(w, r, body, true, func(name string, reg *Registry) {
		if reg == nil {
			s.fail(w, http.StatusNotFound, fmt.Sprintf("model %q has no registry on this replica", name))
			return
		}
		s.learnLocal(w, r, name, reg, body)
	})
}

func (s *Server) learnLocal(w http.ResponseWriter, r *http.Request, name string, reg *Registry, body []byte) {
	var rows parsedRows
	var err error
	if strings.HasPrefix(r.Header.Get("Content-Type"), "application/json") {
		rows, err = parseJSONRows(body, true)
	} else {
		rows, err = parseLIBSVMRows(body, true)
	}
	if err != nil {
		s.fail(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(rows.labels) == 0 {
		s.fail(w, http.StatusBadRequest, "no rows in request")
		return
	}
	// Dimensionality gate at ingest: rows wider than the serving model
	// would poison the whole refit dataset cycles later; reject them
	// while the client can still tell which request was wrong.
	if m := reg.Current(); m != nil && rows.maxCol >= m.Features {
		s.fail(w, http.StatusBadRequest,
			fmt.Sprintf("feature index %d exceeds model dimensionality %d", rows.maxCol+1, m.Features))
		return
	}
	buf, created := s.learn.buffer(name)
	if created && s.opt.OnLearn != nil {
		s.opt.OnLearn(name, reg, buf)
	}
	if !buf.Offer(rows.cols, rows.vals, rows.labels) {
		s.met.learnRejected.Add(uint64(len(rows.labels)))
		s.shedReply(w, fmt.Sprintf("learn buffer full (%d/%d rows)", buf.Len(), buf.Cap()))
		return
	}
	s.met.learnRows.Add(uint64(len(rows.labels)))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(learnResponse{Accepted: len(rows.labels), Buffered: buf.Len()}) //nolint:errcheck
}

// refitStreamHistory bounds the dataset RefitStream accumulates, as a
// multiple of the buffer capacity: old rows age out of the sliding
// window so an always-on learner cannot grow memory without bound.
const refitStreamHistory = 8

// RefitStream consumes a LearnBuffer into a rolling live refit: each
// cycle drains whatever rows arrived, appends them to a sliding window
// of recent training data, and runs one Refit publish cycle warm-
// started from the serving model. It returns when ctx is cancelled; a
// refit error is logged (RefitOptions.Log) and retried with fresh data
// rather than killing the learner.
func RefitStream(ctx context.Context, reg *Registry, buf *LearnBuffer, opt RefitOptions) error {
	every := opt.Every
	if every <= 0 {
		every = 2 * time.Second
	}
	maxRows := refitStreamHistory * buf.Cap()
	var cols [][]int
	var vals [][]float64
	var labels []float64
	wait := func(d time.Duration) bool {
		select {
		case <-ctx.Done():
			return false
		case <-time.After(d):
			return true
		}
	}
	for {
		c, v, b := buf.Drain()
		if len(b) == 0 && len(labels) == 0 {
			if !wait(every / 4) {
				return nil
			}
			continue
		}
		cols = append(cols, c...)
		vals = append(vals, v...)
		labels = append(labels, b...)
		if len(labels) > maxRows {
			drop := len(labels) - maxRows
			cols, vals, labels = cols[drop:], vals[drop:], labels[drop:]
		}
		a, err := assembleCSR(cols, vals, labels, reg.Current())
		if err == nil {
			cycle := opt
			cycle.MaxPublishes = 1
			err = Refit(ctx, reg, a, labels, cycle)
		}
		if ctx.Err() != nil {
			return nil
		}
		if err != nil {
			if opt.Log != nil {
				fmt.Fprintf(opt.Log, "refit-stream: cycle failed: %v\n", err)
			}
			if !wait(every) {
				return nil
			}
		}
	}
}

// assembleCSR builds the refit matrix from accumulated rows, sized to
// the serving model's dimensionality when one exists (Refit requires
// the match) and to the data's own width otherwise.
func assembleCSR(cols [][]int, vals [][]float64, labels []float64, cur *Model) (*sparse.CSR, error) {
	n := 0
	for _, row := range cols {
		for _, j := range row {
			if j+1 > n {
				n = j + 1
			}
		}
	}
	if cur != nil && cur.Features > n {
		n = cur.Features
	}
	rowPtr := make([]int, 1, len(labels)+1)
	var colIdx []int
	var flat []float64
	for r := range cols {
		colIdx = append(colIdx, cols[r]...)
		flat = append(flat, vals[r]...)
		rowPtr = append(rowPtr, len(flat))
	}
	return sparse.NewCSR(len(labels), n, rowPtr, colIdx, flat)
}
