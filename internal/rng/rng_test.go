package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminismAcrossStreams(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different seeds matched %d/100 draws", same)
	}
}

func TestZeroSeedIsUsable(t *testing.T) {
	r := New(0)
	v := r.Uint64()
	if v == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a stuck stream")
	}
}

func TestForkIndependence(t *testing.T) {
	a := New(7)
	f1 := a.Fork()
	f2 := a.Fork()
	if f1.Uint64() == f2.Uint64() && f1.Uint64() == f2.Uint64() {
		t.Fatal("forked streams appear identical")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	counts := make([]int, 5)
	for i := 0; i < 5000; i++ {
		v := r.Intn(5)
		if v < 0 || v >= 5 {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	// Roughly uniform: each bucket should land near 1000.
	for i, c := range counts {
		if c < 800 || c > 1200 {
			t.Fatalf("Intn bucket %d count %d outside [800,1200]", i, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	var sum float64
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		sum += v
	}
	if mean := sum / 10000; mean < 0.47 || mean > 0.53 {
		t.Fatalf("Float64 mean %v far from 0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(6)
	n := 20000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.1 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestSampleKDistinctAndInRange(t *testing.T) {
	f := func(seed uint64, nRaw, kRaw uint8) bool {
		n := 1 + int(nRaw)
		k := int(kRaw) % (n + 1)
		r := New(seed)
		s := r.SampleK(n, k)
		if len(s) != k {
			return false
		}
		seen := make(map[int]bool, k)
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleKFullRangeIsPermutation(t *testing.T) {
	r := New(9)
	s := r.SampleK(10, 10)
	seen := make([]bool, 10)
	for _, v := range s {
		seen[v] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("SampleK(10,10) missing %d", i)
		}
	}
}

func TestSampleKUniformity(t *testing.T) {
	// Each element of [0,10) should appear in a 3-sample with probability
	// 3/10; verify empirically within generous bounds.
	r := New(10)
	counts := make([]int, 10)
	trials := 20000
	for tr := 0; tr < trials; tr++ {
		for _, v := range r.SampleK(10, 3) {
			counts[v]++
		}
	}
	want := float64(trials) * 0.3
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.08*want {
			t.Fatalf("element %d drawn %d times, want about %.0f", i, c, want)
		}
	}
}

func TestSampleKDeterministicAcrossRanks(t *testing.T) {
	// The replicated-seed discipline: every "rank" reproduces the same
	// coordinate choices with no communication.
	ranks := make([]*Stream, 4)
	for i := range ranks {
		ranks[i] = New(12345)
	}
	for iter := 0; iter < 50; iter++ {
		ref := ranks[0].SampleK(1000, 8)
		for rk := 1; rk < 4; rk++ {
			got := ranks[rk].SampleK(1000, 8)
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("rank %d diverged at iter %d", rk, iter)
				}
			}
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(11)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if seen[v] {
			t.Fatalf("duplicate %d", v)
		}
		seen[v] = true
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(12)
	xs := []int{1, 2, 2, 3, 9}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	r.Shuffle(xs)
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("Shuffle changed contents: %v", xs)
	}
}

func BenchmarkSampleK(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		r.SampleK(1_000_000, 8)
	}
}

func TestStateRoundTrip(t *testing.T) {
	r := New(99)
	// Burn an odd number of normal draws so the spare variate is cached.
	r.NormFloat64()
	st := r.State()
	if !st.HasSpare {
		t.Fatalf("expected a cached spare variate after one NormFloat64")
	}
	want := make([]float64, 64)
	for i := range want {
		switch i % 3 {
		case 0:
			want[i] = r.Float64()
		case 1:
			want[i] = float64(r.Intn(1 << 20))
		default:
			want[i] = r.NormFloat64()
		}
	}
	r2 := New(7) // different seed: SetState must fully overwrite it
	r2.SetState(st)
	for i := range want {
		var got float64
		switch i % 3 {
		case 0:
			got = r2.Float64()
		case 1:
			got = float64(r2.Intn(1 << 20))
		default:
			got = r2.NormFloat64()
		}
		if got != want[i] {
			t.Fatalf("draw %d after SetState: %.17g != %.17g", i, got, want[i])
		}
	}
}
