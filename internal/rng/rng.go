// Package rng provides the deterministic pseudo-random number generation
// the synchronization-avoiding solvers depend on. The paper removes the
// synchronization otherwise needed to agree on sampled coordinates "by
// initializing the random number generator on all processors to the same
// seed" (§III, §V); this package makes that discipline explicit: a Stream
// seeded identically on every rank produces an identical sequence, so
// coordinate selection is communication-free.
//
// The generator is xoshiro256** seeded through SplitMix64. It is
// implemented here rather than taken from math/rand so that the sequence
// is stable across Go releases (reproducible experiments) and so streams
// can be cheaply forked per rank or per epoch.
package rng

import "math"

// Stream is a deterministic random stream. The zero value is invalid;
// construct with New.
type Stream struct {
	s        [4]uint64
	spare    float64 // cached second variate from the polar method
	hasSpare bool
}

// New returns a stream seeded from the given seed. Two streams with equal
// seeds produce identical sequences.
func New(seed uint64) *Stream {
	var st Stream
	sm := seed
	for i := range st.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		st.s[i] = z ^ (z >> 31)
	}
	// Guard against the all-zero state, which xoshiro cannot leave.
	if st.s[0]|st.s[1]|st.s[2]|st.s[3] == 0 {
		st.s[0] = 0x9e3779b97f4a7c15
	}
	return &st
}

// Fork returns a new independent stream derived from this one. It is used
// to give each dataset generator or experiment its own stream without
// correlating sequences.
func (r *Stream) Fork() *Stream { return New(r.Uint64()) }

// State is a portable snapshot of a Stream's position: the xoshiro256**
// words plus the polar method's cached variate. Checkpoint codecs
// serialize it so a restarted solver resumes the exact sampling sequence
// (the replicated-seed discipline survives a rank restart).
type State struct {
	S        [4]uint64
	Spare    float64
	HasSpare bool
}

// State snapshots the stream's position.
func (r *Stream) State() State {
	return State{S: r.s, Spare: r.spare, HasSpare: r.hasSpare}
}

// SetState rewinds (or fast-forwards) the stream to a snapshot taken with
// State. Two streams set to the same state produce identical sequences.
func (r *Stream) SetState(st State) {
	r.s = st.S
	r.spare = st.Spare
	r.hasSpare = st.HasSpare
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits (xoshiro256**).
func (r *Stream) Uint64() uint64 {
	res := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return res
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// Rejection sampling removes modulo bias.
func (r *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	un := uint64(n)
	// Largest multiple of n that fits in 64 bits.
	limit := (math.MaxUint64 / un) * un
	for {
		v := r.Uint64()
		if v < limit {
			return int(v % un)
		}
	}
}

// Float64 returns a uniform value in [0, 1) with 53 random bits.
func (r *Stream) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate via the Marsaglia polar
// method. Deterministic given the stream state.
func (r *Stream) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s == 0 || s >= 1 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * f
		r.hasSpare = true
		return u * f
	}
}
