package rng

// SampleK draws k distinct integers uniformly from [0, n) in O(k) time and
// space using a sparse partial Fisher–Yates shuffle (swaps tracked in a
// map instead of materializing the n-element permutation). This is the
// "choose µ coordinates uniformly at random without replacement" step of
// Alg. 1 line 5 / Alg. 2 line 6; O(k) matters because the solvers sample
// every iteration from feature counts up to the url replica's 10⁵–10⁶.
//
// The returned indices are in draw order (not sorted), which is the order
// the algorithms consume them in; identical seeds give identical draws on
// every rank.
func (r *Stream) SampleK(n, k int) []int {
	if k < 0 || k > n {
		panic("rng: SampleK k out of range")
	}
	out := make([]int, k)
	swaps := make(map[int]int, k)
	for i := 0; i < k; i++ {
		j := i + r.Intn(n-i)
		vi, ok := swaps[i]
		if !ok {
			vi = i
		}
		vj, ok := swaps[j]
		if !ok {
			vj = j
		}
		out[i] = vj
		swaps[j] = vi
		// swaps[i] no longer matters: position i is never revisited.
	}
	return out
}

// Perm returns a full random permutation of [0, n).
func (r *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes xs in place.
func (r *Stream) Shuffle(xs []int) {
	for i := len(xs) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}
