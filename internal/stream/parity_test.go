// Cross-backend × dataset-form parity harness: the ROADMAP determinism
// matrix asserted in one table-driven place. Every past PR promised one
// cell of this matrix ("multicore is bitwise", "streamed sequential is
// bitwise", "async is 1e-6-convergent", "simulated runs don't care where
// blocks come from"); this file runs the full cross product so a
// regression in any representation × backend pair fails loudly, with
// the dataset forms enumerated by internal/testmatrix.
package stream_test

import (
	"testing"

	"saco/internal/core"
	"saco/internal/datagen"
	"saco/internal/dist"
	"saco/internal/stream"
	"saco/internal/testmatrix"
)

// lassoOpts is the deterministic s-step preset of the matrix: enough
// iterations to leave the initial zeros, small enough to keep ~60 cells
// fast. TrackEvery makes trajectories (not just endpoints) comparable.
func lassoOpts() core.LassoOptions {
	return core.LassoOptions{Lambda: 0.4, Iters: 120, S: 4, BlockSize: 2, Seed: 42, TrackEvery: 30}
}

func svmOpts() core.SVMOptions {
	return core.SVMOptions{Lambda: 1, Iters: 120, S: 4, Seed: 9, TrackEvery: 30}
}

// TestParityMatrixLasso runs the Lasso column-access solvers over every
// dataset form × backend cell.
func TestParityMatrixLasso(t *testing.T) {
	d := datagen.Regression("parity-lasso", 21, 256, 64, 0.12, 8, 0.1)
	a := d.AsCSR()
	forms := testmatrix.Forms(t, a, d.B, 32) // 8 shards vs the 2-shard cache
	opt := lassoOpts()

	seqRef, err := core.Lasso(a.ToCSC(), d.B, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqRef.History) == 0 {
		t.Fatal("reference produced no trajectory")
	}
	distRef, err := dist.Lasso(a, d.B, opt, dist.Options{P: 3})
	if err != nil {
		t.Fatal(err)
	}

	// The bitwise promise holds within a kernel family: streamed views
	// reproduce the sparse kernels' summation order exactly, so they
	// share the sparse reference; the dense views sum every (zero
	// included) term with their own loop order, so they anchor their own
	// reference — still bitwise across backends, and roundoff-close to
	// the sparse optimum.
	refFor := make(map[string]*core.LassoResult)
	for _, f := range forms {
		if f.Name == "inmem-dense" {
			denseRef, err := core.Lasso(f.Col, d.B, opt)
			if err != nil {
				t.Fatal(err)
			}
			if rd := testmatrix.RelDiff(denseRef.Objective, seqRef.Objective); rd > 1e-12 {
				t.Fatalf("dense and sparse sequential objectives drift: rel %.3e", rd)
			}
			refFor[f.Name] = denseRef
		} else {
			refFor[f.Name] = seqRef
		}
	}

	for _, f := range forms {
		f := f
		// Sequential: bitwise against the form's reference, full
		// trajectory. For streamed forms the reference is the in-memory
		// sparse run — the cross-representation bitwise contract.
		t.Run(f.Name+"/sequential", func(t *testing.T) {
			res, err := core.Lasso(f.Col, d.B, opt)
			if err != nil {
				t.Fatal(err)
			}
			assertLassoBitwise(t, res, refFor[f.Name])
		})
		// Multicore: bitwise too — parallel kernels preserve summation
		// order; streamed forms degrade to sequential kernels, which is
		// the same bits by the row above.
		t.Run(f.Name+"/multicore", func(t *testing.T) {
			o := opt
			o.Exec = core.Exec{Backend: core.BackendMulticore, Workers: 3}
			res, err := core.Lasso(f.Col, d.B, o)
			if err != nil {
				t.Fatal(err)
			}
			assertLassoBitwise(t, res, refFor[f.Name])
		})
		// Simulated cluster and hybrid rank×thread: bitwise against the
		// distributed reference — block loaders must not change the
		// arithmetic, and neither must intra-rank threading.
		if f.Source != nil {
			t.Run(f.Name+"/simulated", func(t *testing.T) {
				res, err := dist.LassoFrom(f.Source, d.B, opt, dist.Options{P: 3})
				if err != nil {
					t.Fatal(err)
				}
				if res.Objective != distRef.Objective {
					t.Fatalf("objective %.17g != %.17g", res.Objective, distRef.Objective)
				}
				testmatrix.SameFloats(t, "X", res.X, distRef.X)
			})
			t.Run(f.Name+"/hybrid", func(t *testing.T) {
				res, err := dist.LassoFrom(f.Source, d.B, opt, dist.Options{P: 3, RankWorkers: 2})
				if err != nil {
					t.Fatal(err)
				}
				if res.Objective != distRef.Objective {
					t.Fatalf("objective %.17g != %.17g", res.Objective, distRef.Objective)
				}
				testmatrix.SameFloats(t, "X", res.X, distRef.X)
			})
		}
		// Async: tolerance-convergent on atomic-capable forms, a typed
		// rejection on streamed ones.
		t.Run(f.Name+"/async", func(t *testing.T) {
			o := core.LassoOptions{Lambda: asyncLambda(t, f, d.B), Iters: asyncIters(), Seed: 1,
				Exec: core.Exec{Backend: core.BackendAsync, Workers: 3}}
			res, err := core.Lasso(f.Col, d.B, o)
			if !f.Async {
				if err == nil {
					t.Fatal("async solve over a streamed view did not error")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			so := o
			so.Exec = core.Exec{}
			seq, err := core.Lasso(f.Col, d.B, so)
			if err != nil {
				t.Fatal(err)
			}
			if rd := testmatrix.RelDiff(res.Objective, seq.Objective); rd > 1e-6 {
				t.Fatalf("async objective %.12e vs sequential %.12e (rel %.3e)", res.Objective, seq.Objective, rd)
			}
		})
	}
}

// asyncLambda picks the convergence-friendly λ of the async cells
// (0.2·λmax, the preset core's own async tests use).
func asyncLambda(t *testing.T, f testmatrix.Form, b []float64) float64 {
	t.Helper()
	return 0.2 * core.LambdaMaxL1(f.Col, b)
}

// asyncIters gives the async cells enough iterations to actually reach
// the optimum, where the 1e-6 comparison is meaningful.
func asyncIters() int { return 12000 }

func assertLassoBitwise(t *testing.T, got, want *core.LassoResult) {
	t.Helper()
	if len(got.History) != len(want.History) {
		t.Fatalf("history lengths %d vs %d", len(got.History), len(want.History))
	}
	for k := range want.History {
		if got.History[k].Value != want.History[k].Value {
			t.Fatalf("trajectory diverges at point %d (iter %d): %.17g != %.17g",
				k, want.History[k].Iter, got.History[k].Value, want.History[k].Value)
		}
	}
	if got.Objective != want.Objective {
		t.Fatalf("objective %.17g != %.17g", got.Objective, want.Objective)
	}
	testmatrix.SameFloats(t, "X", got.X, want.X)
}

// TestParityMatrixSVM runs the dual-CD SVM over every dataset form ×
// backend cell (row access).
func TestParityMatrixSVM(t *testing.T) {
	d := datagen.Classification("parity-svm", 23, 256, 48, 0.15, 0.05)
	a := d.AsCSR()
	forms := testmatrix.Forms(t, a, d.B, 32)
	opt := svmOpts()

	seqRef, err := core.SVM(a, d.B, opt)
	if err != nil {
		t.Fatal(err)
	}
	distRef, err := dist.SVM(a, d.B, opt, dist.Options{P: 3})
	if err != nil {
		t.Fatal(err)
	}

	// Per-family bitwise references, as in the Lasso matrix: streamed
	// forms share the sparse anchor, dense anchors itself.
	refFor := make(map[string]*core.SVMResult)
	for _, f := range forms {
		if f.Name == "inmem-dense" {
			denseRef, err := core.SVM(f.Row, d.B, opt)
			if err != nil {
				t.Fatal(err)
			}
			if rd := testmatrix.RelDiff(denseRef.Primal, seqRef.Primal); rd > 1e-12 {
				t.Fatalf("dense and sparse sequential primals drift: rel %.3e", rd)
			}
			refFor[f.Name] = denseRef
		} else {
			refFor[f.Name] = seqRef
		}
	}

	// The async reference: SVM-L2's strongly convex dual converges tight
	// enough for the 1e-6 bound on the matrix's iteration budget (the
	// hinge-loss tolerance cell needs millions of iterations and lives in
	// core's own async suite).
	asyncOpt := core.SVMOptions{Lambda: 1, Loss: core.SVML2, Iters: 200000, Seed: 9}
	asyncSeqRef, err := core.SVM(a, d.B, asyncOpt)
	if err != nil {
		t.Fatal(err)
	}

	for _, f := range forms {
		f := f
		t.Run(f.Name+"/sequential", func(t *testing.T) {
			res, err := core.SVM(f.Row, d.B, opt)
			if err != nil {
				t.Fatal(err)
			}
			assertSVMBitwise(t, res, refFor[f.Name])
		})
		t.Run(f.Name+"/multicore", func(t *testing.T) {
			o := opt
			o.Exec = core.Exec{Backend: core.BackendMulticore, Workers: 3}
			res, err := core.SVM(f.Row, d.B, o)
			if err != nil {
				t.Fatal(err)
			}
			assertSVMBitwise(t, res, refFor[f.Name])
		})
		if f.Source != nil {
			t.Run(f.Name+"/simulated", func(t *testing.T) {
				res, err := dist.SVMFrom(f.Source, d.B, opt, dist.Options{P: 3})
				if err != nil {
					t.Fatal(err)
				}
				if res.Gap != distRef.Gap {
					t.Fatalf("gap %.17g != %.17g", res.Gap, distRef.Gap)
				}
				testmatrix.SameFloats(t, "X", res.X, distRef.X)
			})
			t.Run(f.Name+"/hybrid", func(t *testing.T) {
				res, err := dist.SVMFrom(f.Source, d.B, opt, dist.Options{P: 3, RankWorkers: 2})
				if err != nil {
					t.Fatal(err)
				}
				if res.Gap != distRef.Gap {
					t.Fatalf("gap %.17g != %.17g", res.Gap, distRef.Gap)
				}
				testmatrix.SameFloats(t, "X", res.X, distRef.X)
			})
		}
		t.Run(f.Name+"/async", func(t *testing.T) {
			o := asyncOpt
			o.Exec = core.Exec{Backend: core.BackendAsync, Workers: 3}
			res, err := core.SVM(f.Row, d.B, o)
			if !f.Async {
				if err == nil {
					t.Fatal("async solve over a streamed view did not error")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if rd := testmatrix.RelDiff(res.Primal, asyncSeqRef.Primal); rd > 1e-6 {
				t.Fatalf("async primal %.12e vs sequential %.12e (rel %.3e)", res.Primal, asyncSeqRef.Primal, rd)
			}
		})
	}
}

func assertSVMBitwise(t *testing.T, got, want *core.SVMResult) {
	t.Helper()
	if len(got.History) != len(want.History) {
		t.Fatalf("history lengths %d vs %d", len(got.History), len(want.History))
	}
	for k := range want.History {
		if got.History[k].Gap != want.History[k].Gap || got.History[k].Primal != want.History[k].Primal {
			t.Fatalf("gap trajectory diverges at point %d", k)
		}
	}
	if got.Gap != want.Gap {
		t.Fatalf("gap %.17g != %.17g", got.Gap, want.Gap)
	}
	testmatrix.SameFloats(t, "X", got.X, want.X)
}

// TestParityStreamedConversionCounters closes the loop on the matrix's
// layout promise at harness level: the CSC×(codec×mode) cells above ran
// column solves natively. Re-run one sequential cell per layout here
// and assert the counter split (CSC: zero conversions; CSR: one per
// shard load).
func TestParityStreamedConversionCounters(t *testing.T) {
	d := datagen.Regression("parity-conv", 29, 192, 48, 0.12, 6, 0.1)
	a := d.AsCSR()
	forms := testmatrix.Forms(t, a, d.B, 32)
	opt := lassoOpts()
	for _, f := range forms {
		if !f.Streamed() {
			continue
		}
		if _, err := core.Lasso(f.Col, d.B, opt); err != nil {
			t.Fatal(err)
		}
		st := f.Dataset.CacheStats()
		if f.Dataset.Layout() == stream.LayoutCSC && st.Conversions != 0 {
			t.Fatalf("%s: %d conversions on a CSC store (%+v)", f.Name, st.Conversions, st)
		}
		if f.Dataset.Layout() == stream.LayoutCSR && st.Conversions == 0 {
			t.Fatalf("%s: CSR store reported no conversions (%+v)", f.Name, st)
		}
		if st.Loads > st.Misses+1 {
			t.Fatalf("%s: prefetch double-read (%+v)", f.Name, st)
		}
	}
}
