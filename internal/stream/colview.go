package stream

import (
	"fmt"

	"saco/internal/mat"
	"saco/internal/sparse"
)

// ColStream is the out-of-core core.ColMatrix view of a Dataset: the
// access pattern of the Lasso CD/BCD solvers (sampled column Grams,
// products against the row-partitioned residual, residual updates)
// computed one shard at a time. On a LayoutCSC store every kernel
// consumes the shards in their native column-major decoded form —
// zero CSR→CSC conversions (CacheStats.Conversions stays 0); on a
// LayoutCSR store each shard converts once per load, as before.
//
// Bitwise contract: with the sequential backend, every kernel threads
// its accumulators through the shards in row order — ColGram continues
// each entry's merge sum across blocks and mirrors once at the end,
// ColTMulVec continues each dst[k], ColMulAdd and MulVec touch disjoint
// row slices — so the summation order is exactly that of the in-memory
// sparse.CSC kernels and the solver trajectory is bitwise identical.
// This is the shared-memory/out-of-core counterpart of the paper's
// claim that the s-step reformulation preserves the classical iterates:
// here the partitioning moves data between disk and RAM instead of
// between ranks, and nothing about the arithmetic changes.
//
// The multicore and async backends do not apply (the view implements
// neither the kernel-parallel capability nor atomic kernels); solves on
// it run sequentially regardless of the Exec knob.
type ColStream struct {
	d *Dataset
}

// Cols returns the column-access streaming view (for saco.Lasso,
// saco.LassoPath, saco.LambdaMax).
func (d *Dataset) Cols() *ColStream { return &ColStream{d: d} }

// Dims returns (rows, columns).
func (v *ColStream) Dims() (int, int) { return v.d.m, v.d.n }

// ColNormSq returns ‖A_:j‖², accumulated across shards in row order.
func (v *ColStream) ColNormSq(j int) float64 {
	var s float64
	mustLoad(0, v.d.forEachCSC(func(_ ShardInfo, a *sparse.CSC) {
		s = a.ColNormSqAcc(j, s)
	}))
	return s
}

// ColTMulVec computes dst[k] = A_:cols[k] · v (dst = A_Sᵀ·v), streaming
// the shards with v sliced to each block's rows.
func (v *ColStream) ColTMulVec(cols []int, vec []float64, dst []float64) {
	if len(vec) != v.d.m || len(dst) != len(cols) {
		panic(fmt.Sprintf("stream: ColTMulVec shape mismatch A=%dx%d len(v)=%d", v.d.m, v.d.n, len(vec)))
	}
	for k := range dst {
		dst[k] = 0
	}
	mustLoad(0, v.d.forEachCSC(func(info ShardInfo, a *sparse.CSC) {
		a.ColTMulVecAcc(cols, vec[info.Row0:info.Row0+info.Rows], dst)
	}))
}

// ColMulAdd computes vec += A_S·coef. Each shard scatters into its own
// row slice, so the per-row addition order matches the in-memory CSC.
func (v *ColStream) ColMulAdd(cols []int, coef []float64, vec []float64) {
	if len(vec) != v.d.m || len(coef) != len(cols) {
		panic("stream: ColMulAdd shape mismatch")
	}
	mustLoad(0, v.d.forEachCSC(func(info ShardInfo, a *sparse.CSC) {
		a.ColMulAdd(cols, coef, vec[info.Row0:info.Row0+info.Rows])
	}))
}

// ColGram computes dst = A_SᵀA_S: the per-shard Gram contributions of
// the s-step batch (Alg. 2 lines 10–12) accumulated into the upper
// triangle and mirrored once after the final shard.
func (v *ColStream) ColGram(cols []int, dst *mat.Dense) {
	if dst.R != len(cols) || dst.C != len(cols) {
		panic("stream: ColGram dst shape mismatch")
	}
	dst.Zero()
	mustLoad(0, v.d.forEachCSC(func(_ ShardInfo, a *sparse.CSC) {
		a.ColGramAcc(cols, dst)
	}))
	dst.MirrorUpper()
}

// MulVec computes y = A·x one row block at a time.
func (v *ColStream) MulVec(x, y []float64) {
	if len(x) != v.d.n || len(y) != v.d.m {
		panic("stream: MulVec shape mismatch")
	}
	mustLoad(0, v.d.forEachCSC(func(info ShardInfo, a *sparse.CSC) {
		a.MulVec(x, y[info.Row0:info.Row0+info.Rows])
	}))
}
