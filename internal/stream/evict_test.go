package stream

import "testing"

func cacheWith(max int, used map[int]int64) *shardCache {
	c := &shardCache{max: max, entries: make(map[int]*cacheEntry), pfIdx: -1}
	for idx, u := range used {
		c.entries[idx] = &cacheEntry{used: u}
	}
	return c
}

func keys(c *shardCache) map[int]bool {
	out := make(map[int]bool, len(c.entries))
	for idx := range c.entries {
		out[idx] = true
	}
	return out
}

// Victim selection must be a pure function of (used, idx) — never of
// map iteration order. With every entry sharing one use tick, the
// lowest indices are evicted first, on every repetition (the regression
// pinned by the mapiter sweep: a tie used to be broken by whichever
// entry the map yielded first).
func TestEvictTieBreaksOnLowestIndex(t *testing.T) {
	for rep := 0; rep < 50; rep++ {
		c := cacheWith(2, map[int]int64{0: 7, 1: 7, 2: 7, 3: 7, 4: 7})
		c.evictLocked(-1)
		got := keys(c)
		if !got[3] || !got[4] || len(got) != 2 {
			t.Fatalf("rep %d: surviving entries %v, want {3 4}", rep, got)
		}
		if c.st.Evictions != 3 {
			t.Fatalf("rep %d: evictions = %d, want 3", rep, c.st.Evictions)
		}
	}
}

// The entry just produced is spared even when it ties as oldest.
func TestEvictSparesKeep(t *testing.T) {
	for rep := 0; rep < 50; rep++ {
		c := cacheWith(2, map[int]int64{0: 7, 1: 7, 2: 7, 3: 7})
		c.evictLocked(0)
		got := keys(c)
		if !got[0] || !got[3] || len(got) != 2 {
			t.Fatalf("rep %d: surviving entries %v, want {0 3}", rep, got)
		}
	}
}

// With distinct ticks the tie-break never fires and plain LRU order
// decides: oldest ticks go first regardless of index.
func TestEvictLRUOrder(t *testing.T) {
	c := cacheWith(2, map[int]int64{0: 40, 1: 10, 2: 30, 3: 20})
	c.evictLocked(-1)
	got := keys(c)
	if !got[0] || !got[2] || len(got) != 2 {
		t.Fatalf("surviving entries %v, want {0 2}", got)
	}
}
