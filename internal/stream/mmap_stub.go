//go:build !unix

package stream

import (
	"errors"
)

// mmapSupported reports whether this build carries a working mmap path;
// ReadMmap silently degrades to ReadCopy where it does not.
const mmapSupported = false

var errNoMmap = errors.New("stream: mmap is not supported on this platform")

// mmapFile always fails on platforms without the mmap read path; the
// shard cache falls back to copy reads.
func mmapFile(path string) ([]byte, error) { return nil, errNoMmap }

// munmapFile matches mmap_unix.go's signature; never called on these
// platforms.
func munmapFile(data []byte) error { return nil }
