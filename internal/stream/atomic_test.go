package stream

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileAtomicRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.sack")
	want := []byte("generation one")
	if err := WriteFileAtomic(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("read back %q, want %q", got, want)
	}
	// Overwrite: the rename must replace, not append or fail.
	want2 := []byte("generation two, longer than the first")
	if err := WriteFileAtomic(path, want2); err != nil {
		t.Fatal(err)
	}
	got, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want2) {
		t.Fatalf("read back %q, want %q", got, want2)
	}
	// No temp litter left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory holds %d entries, want only the target", len(entries))
	}
}

func TestWriteFileAtomicFailsIntoMissingDir(t *testing.T) {
	if err := WriteFileAtomic(filepath.Join(t.TempDir(), "no", "such", "dir", "f"), []byte("x")); err == nil {
		t.Fatal("write into a missing directory succeeded")
	}
}
