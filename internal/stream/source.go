package stream

import (
	"fmt"

	"saco/internal/sparse"
)

// RowsCSC assembles rows [lo, hi) as a CSC block — the per-rank loader
// of the simulated cluster's 1D-row Lasso layout (dist.Source). Only
// the covering shards are resident while the block is built, and the
// result is structurally identical to SliceRows(lo, hi).ToCSC() on the
// in-memory CSR, so distributed trajectories do not change.
func (d *Dataset) RowsCSC(lo, hi int) (*sparse.CSC, error) {
	block, err := d.sliceRowsCSR(lo, hi)
	if err != nil {
		return nil, err
	}
	return block.ToCSC(), nil
}

// ColsCSR assembles columns [c0, c1) (reindexed to zero, all rows) as a
// CSR block — the per-rank loader of the 1D-column SVM layout
// (dist.Source). One sequential pass over the shards; peak memory is
// one shard plus the assembled block, which holds ~nnz/P of the data.
func (d *Dataset) ColsCSR(c0, c1 int) (*sparse.CSR, error) {
	if c0 < 0 || c1 < c0 || c1 > d.n {
		return nil, fmt.Errorf("stream: ColsCSR [%d,%d) out of range", c0, c1)
	}
	rowPtr := make([]int, 1, d.m+1)
	var colIdx []int
	var vals []float64
	err := d.forEachCSR(func(_ ShardInfo, a *sparse.CSR) {
		for i := 0; i < a.M; i++ {
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				if c := a.ColIdx[k]; c >= c0 && c < c1 {
					colIdx = append(colIdx, c-c0)
					vals = append(vals, a.Val[k])
				}
			}
			rowPtr = append(rowPtr, len(vals))
		}
	})
	if err != nil {
		return nil, err
	}
	return &sparse.CSR{M: d.m, N: c1 - c0, RowPtr: rowPtr, ColIdx: colIdx, Val: vals}, nil
}

// sliceRowsCSR concatenates the shard fragments covering rows [lo, hi).
func (d *Dataset) sliceRowsCSR(lo, hi int) (*sparse.CSR, error) {
	if lo < 0 || hi < lo || hi > d.m {
		return nil, fmt.Errorf("stream: RowsCSC [%d,%d) out of range", lo, hi)
	}
	rowPtr := make([]int, 1, hi-lo+1)
	var colIdx []int
	var vals []float64
	for si := range d.shards {
		info := d.shards[si]
		s0, s1 := max(lo, info.Row0), min(hi, info.Row0+info.Rows)
		if s0 >= s1 {
			continue
		}
		a, err := d.cache.getCSR(si, true)
		if err != nil {
			return nil, err
		}
		for i := s0 - info.Row0; i < s1-info.Row0; i++ {
			p0, p1 := a.RowPtr[i], a.RowPtr[i+1]
			colIdx = append(colIdx, a.ColIdx[p0:p1]...)
			vals = append(vals, a.Val[p0:p1]...)
			rowPtr = append(rowPtr, len(vals))
		}
	}
	return &sparse.CSR{M: hi - lo, N: d.n, RowPtr: rowPtr, ColIdx: colIdx, Val: vals}, nil
}
