package stream

import (
	"fmt"
	"sort"

	"saco/internal/sparse"
)

// RowsCSC assembles rows [lo, hi) as a CSC block — the per-rank loader
// of the simulated cluster's 1D-row Lasso layout (dist.Source). Only
// the covering shards are resident while the block is built, and the
// result is structurally identical to SliceRows(lo, hi).ToCSC() on the
// in-memory CSR, so distributed trajectories do not change. On a
// LayoutCSC store the block is assembled straight from the native
// column-major shards (no CSR conversion).
func (d *Dataset) RowsCSC(lo, hi int) (*sparse.CSC, error) {
	if lo < 0 || hi < lo || hi > d.m {
		return nil, fmt.Errorf("stream: RowsCSC [%d,%d) out of range", lo, hi)
	}
	if d.layout == LayoutCSC {
		return d.sliceRowsCSCNative(lo, hi)
	}
	block, err := d.sliceRowsCSR(lo, hi)
	if err != nil {
		return nil, err
	}
	return block.ToCSC(), nil
}

// ColsCSR assembles columns [c0, c1) (reindexed to zero, all rows) as a
// CSR block — the per-rank loader of the 1D-column SVM layout
// (dist.Source). One sequential pass over the shards; peak memory is
// one shard plus the assembled block, which holds ~nnz/P of the data.
// On a LayoutCSC store each shard contributes its column band through a
// block-local counting transpose (band-proportional work, no full-shard
// conversion).
func (d *Dataset) ColsCSR(c0, c1 int) (*sparse.CSR, error) {
	if c0 < 0 || c1 < c0 || c1 > d.n {
		return nil, fmt.Errorf("stream: ColsCSR [%d,%d) out of range", c0, c1)
	}
	rowPtr := make([]int, 1, d.m+1)
	var colIdx []int
	var vals []float64
	if d.layout == LayoutCSC {
		err := d.forEachCSC(func(_ ShardInfo, a *sparse.CSC) {
			appendBandCSR(a, c0, c1, &rowPtr, &colIdx, &vals)
		})
		if err != nil {
			return nil, err
		}
		return &sparse.CSR{M: d.m, N: c1 - c0, RowPtr: rowPtr, ColIdx: colIdx, Val: vals}, nil
	}
	err := d.forEachCSR(func(_ ShardInfo, a *sparse.CSR) {
		for i := 0; i < a.M; i++ {
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				if c := a.ColIdx[k]; c >= c0 && c < c1 {
					colIdx = append(colIdx, c-c0)
					vals = append(vals, a.Val[k])
				}
			}
			rowPtr = append(rowPtr, len(vals))
		}
	})
	if err != nil {
		return nil, err
	}
	return &sparse.CSR{M: d.m, N: c1 - c0, RowPtr: rowPtr, ColIdx: colIdx, Val: vals}, nil
}

// appendBandCSR transposes the column band [c0, c1) of one CSC shard
// into CSR rows appended to the output arrays: count entries per local
// row, prefix-sum, then fill by ascending column so each row's indices
// come out strictly increasing — the same canonical order SliceCols
// produces on the in-memory CSR.
func appendBandCSR(a *sparse.CSC, c0, c1 int, rowPtr *[]int, colIdx *[]int, vals *[]float64) {
	counts := make([]int, a.M+1)
	for j := c0; j < c1; j++ {
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			counts[a.RowIdx[p]+1]++
		}
	}
	for i := 0; i < a.M; i++ {
		counts[i+1] += counts[i]
	}
	bandNNZ := counts[a.M]
	base := len(*vals)
	*colIdx = append(*colIdx, make([]int, bandNNZ)...)
	*vals = append(*vals, make([]float64, bandNNZ)...)
	next := counts // reuse: next[i] is the fill cursor of local row i
	for j := c0; j < c1; j++ {
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			r := a.RowIdx[p]
			q := base + next[r]
			(*colIdx)[q] = j - c0
			(*vals)[q] = a.Val[p]
			next[r]++
		}
	}
	// next[i] now equals the end offset of local row i (counts was the
	// start offsets before filling); it is exactly the per-row prefix.
	for i := 0; i < a.M; i++ {
		*rowPtr = append(*rowPtr, base+next[i])
	}
}

// sliceRowsCSCNative concatenates the row range [lo, hi) of a LayoutCSC
// store column by column: two passes over the covering shards (count,
// fill). Within each shard column the local rows are strictly
// increasing, so the [l0, l1) window is located by binary search and
// only its entries are touched — O(n·log + range-nnz) per shard, not a
// full-shard filter (simulated ranks whose row blocks subdivide a shard
// would otherwise each rescan all of it). Shards are visited in
// ascending row order, so every global column's rows come out strictly
// increasing.
func (d *Dataset) sliceRowsCSCNative(lo, hi int) (*sparse.CSC, error) {
	colPtr := make([]int, d.n+1)
	covering := func(f func(info ShardInfo, a *sparse.CSC, l0, l1 int)) error {
		for si, info := range d.shards {
			s0, s1 := max(lo, info.Row0), min(hi, info.Row0+info.Rows)
			if s0 >= s1 {
				continue
			}
			a, err := d.cache.getCSC(si, true)
			if err != nil {
				return err
			}
			f(info, a, s0-info.Row0, s1-info.Row0)
		}
		return nil
	}
	// window returns the [p0, p1) index range of column j whose local
	// rows fall in [l0, l1).
	window := func(a *sparse.CSC, j, l0, l1 int) (int, int) {
		c0, c1 := a.ColPtr[j], a.ColPtr[j+1]
		seg := a.RowIdx[c0:c1]
		p0 := c0 + sort.SearchInts(seg, l0)
		p1 := c0 + sort.SearchInts(seg, l1)
		return p0, p1
	}
	if err := covering(func(_ ShardInfo, a *sparse.CSC, l0, l1 int) {
		for j := 0; j < d.n; j++ {
			p0, p1 := window(a, j, l0, l1)
			colPtr[j+1] += p1 - p0
		}
	}); err != nil {
		return nil, err
	}
	for j := 0; j < d.n; j++ {
		colPtr[j+1] += colPtr[j]
	}
	rowIdx := make([]int, colPtr[d.n])
	vals := make([]float64, colPtr[d.n])
	next := append([]int(nil), colPtr[:d.n]...)
	if err := covering(func(info ShardInfo, a *sparse.CSC, l0, l1 int) {
		rebase := info.Row0 - lo
		for j := 0; j < d.n; j++ {
			p0, p1 := window(a, j, l0, l1)
			for p := p0; p < p1; p++ {
				rowIdx[next[j]] = a.RowIdx[p] + rebase
				vals[next[j]] = a.Val[p]
				next[j]++
			}
		}
	}); err != nil {
		return nil, err
	}
	return &sparse.CSC{M: hi - lo, N: d.n, ColPtr: colPtr, RowIdx: rowIdx, Val: vals}, nil
}

// sliceRowsCSR concatenates the shard fragments covering rows [lo, hi).
func (d *Dataset) sliceRowsCSR(lo, hi int) (*sparse.CSR, error) {
	if lo < 0 || hi < lo || hi > d.m {
		return nil, fmt.Errorf("stream: RowsCSC [%d,%d) out of range", lo, hi)
	}
	rowPtr := make([]int, 1, hi-lo+1)
	var colIdx []int
	var vals []float64
	for si := range d.shards {
		info := d.shards[si]
		s0, s1 := max(lo, info.Row0), min(hi, info.Row0+info.Rows)
		if s0 >= s1 {
			continue
		}
		a, err := d.cache.getCSR(si, true)
		if err != nil {
			return nil, err
		}
		for i := s0 - info.Row0; i < s1-info.Row0; i++ {
			p0, p1 := a.RowPtr[i], a.RowPtr[i+1]
			colIdx = append(colIdx, a.ColIdx[p0:p1]...)
			vals = append(vals, a.Val[p0:p1]...)
			rowPtr = append(rowPtr, len(vals))
		}
	}
	return &sparse.CSR{M: hi - lo, N: d.n, RowPtr: rowPtr, ColIdx: colIdx, Val: vals}, nil
}
