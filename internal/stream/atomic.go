package stream

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFileAtomic publishes data at path through the write seam the
// shard store uses for its own files: write to a same-directory temp
// file, fsync it, then rename over the destination. A reader never
// observes a torn file — it sees either the previous content or the
// complete new one — and a full disk cannot masquerade as a successful
// write. The checkpoint layer (internal/dist) writes its .sack files
// through this seam so a rank killed mid-save leaves its last good
// checkpoint intact.
func WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	cleanup := func() {
		f.Close()      //saco:nolint commerr best-effort close on an already-failing path; the first error is propagating
		os.Remove(tmp) //nolint:errcheck // best-effort removal of the temp file
	}
	if _, err := f.Write(data); err != nil {
		cleanup()
		return err
	}
	if err := f.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp) //nolint:errcheck // best-effort removal of the temp file
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp) //nolint:errcheck // best-effort removal of the temp file
		return fmt.Errorf("stream: publish %s: %w", path, err)
	}
	return nil
}
