// TestSourceParity lives in the external test package: it drives the
// dist solvers from a shard-backed Dataset, and dist itself imports
// stream for the checkpoint write seam, so an in-package test would be
// an import cycle.
package stream_test

import (
	"bytes"
	"testing"

	"saco/internal/core"
	"saco/internal/datagen"
	"saco/internal/dist"
	"saco/internal/libsvm"
	"saco/internal/sparse"
	"saco/internal/stream"
)

// sourceFixture mirrors the in-package buildFixture through the
// exported API: a synthetic regression problem ingested out of core.
func sourceFixture(t *testing.T, m, n, blockRows int) (*stream.Dataset, *sparse.CSR, []float64) {
	t.Helper()
	d := datagen.Regression("fixture", 7, m, n, 0.1, 8, 0.1)
	a := d.AsCSR()
	var buf bytes.Buffer
	if err := libsvm.Write(&buf, a, d.B); err != nil {
		t.Fatal(err)
	}
	ds, err := stream.Build(&buf, t.TempDir(), stream.BuildOptions{BlockRows: blockRows, Features: n})
	if err != nil {
		t.Fatal(err)
	}
	return ds, a, d.B
}

// TestSourceParity: the out-of-core dist.Source blocks must be
// structurally identical to the in-memory slices, and a simulated
// cluster run fed from shards must match one fed from the resident CSR.
func TestSourceParity(t *testing.T) {
	ds, a, b := sourceFixture(t, 230, 40, 32)

	for _, r := range [][2]int{{0, 230}, {57, 101}, {96, 128}, {100, 100}} {
		want := a.SliceRows(r[0], r[1]).ToCSC()
		got, err := ds.RowsCSC(r[0], r[1])
		if err != nil {
			t.Fatal(err)
		}
		if !want.ToDense().Equal(got.ToDense()) {
			t.Fatalf("RowsCSC[%d,%d) differs", r[0], r[1])
		}
	}
	for _, r := range [][2]int{{0, 40}, {13, 27}} {
		want := a.SliceCols(r[0], r[1])
		got, err := ds.ColsCSR(r[0], r[1])
		if err != nil {
			t.Fatal(err)
		}
		if !want.ToDense().Equal(got.ToDense()) {
			t.Fatalf("ColsCSR[%d,%d) differs", r[0], r[1])
		}
	}

	opt := core.LassoOptions{Lambda: 0.5, Iters: 60, S: 4, BlockSize: 2, Seed: 3}
	cl := dist.Options{P: 4}
	mem, err := dist.Lasso(a, b, opt, cl)
	if err != nil {
		t.Fatal(err)
	}
	str, err := dist.LassoFrom(ds, b, opt, cl)
	if err != nil {
		t.Fatal(err)
	}
	if mem.Objective != str.Objective {
		t.Fatalf("simulated objective %.17g != %.17g", str.Objective, mem.Objective)
	}
	for j := range mem.X {
		if mem.X[j] != str.X[j] {
			t.Fatalf("simulated x[%d] differs", j)
		}
	}

	svmOpt := core.SVMOptions{Lambda: 1, Iters: 40, S: 4, Seed: 5}
	labels := make([]float64, len(b))
	for i, v := range b {
		if v >= 0 {
			labels[i] = 1
		} else {
			labels[i] = -1
		}
	}
	memSVM, err := dist.SVM(a, labels, svmOpt, cl)
	if err != nil {
		t.Fatal(err)
	}
	strSVM, err := dist.SVMFrom(ds, labels, svmOpt, cl)
	if err != nil {
		t.Fatal(err)
	}
	if memSVM.Gap != strSVM.Gap {
		t.Fatalf("simulated gap %.17g != %.17g", strSVM.Gap, memSVM.Gap)
	}
	for j := range memSVM.X {
		if memSVM.X[j] != strSVM.X[j] {
			t.Fatalf("simulated svm x[%d] differs", j)
		}
	}
}
