package stream

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"saco/internal/core"
	"saco/internal/datagen"
	"saco/internal/libsvm"
	"saco/internal/mat"
	"saco/internal/rng"
	"saco/internal/sparse"
)

// buildFixture writes a synthetic regression problem as LIBSVM text,
// ingests it out of core with the given block size, and returns both
// representations. blockRows 64 over 640 rows gives 10 shards against
// the default 2-shard cache: the dataset is 5× the resident budget, the
// ≥ 4× regime of the acceptance criterion.
func buildFixture(t *testing.T, m, n, blockRows int) (*Dataset, *sparse.CSR, []float64) {
	t.Helper()
	d := datagen.Regression("fixture", 7, m, n, 0.1, 8, 0.1)
	a := d.AsCSR()
	var buf bytes.Buffer
	if err := libsvm.Write(&buf, a, d.B); err != nil {
		t.Fatal(err)
	}
	ds, err := Build(&buf, t.TempDir(), BuildOptions{BlockRows: blockRows, Features: n})
	if err != nil {
		t.Fatal(err)
	}
	return ds, a, d.B
}

func TestBuildMatchesInMemoryRead(t *testing.T) {
	ds, a, b := buildFixture(t, 230, 40, 32)
	if m, n := ds.Dims(); m != a.M || n != a.N {
		t.Fatalf("dims %dx%d, want %dx%d", m, n, a.M, a.N)
	}
	if ds.NNZ() != int64(a.NNZ()) {
		t.Fatalf("nnz %d, want %d", ds.NNZ(), a.NNZ())
	}
	if ds.NumShards() != (230+31)/32 {
		t.Fatalf("shards %d", ds.NumShards())
	}
	for i, v := range b {
		if ds.B[i] != v {
			t.Fatalf("label %d: %g != %g", i, ds.B[i], v)
		}
	}
	// Reassemble via the block iterator, twice (multi-epoch reset).
	for epoch := 0; epoch < 2; epoch++ {
		it := ds.Blocks()
		got := mat.NewDense(a.M, a.N)
		rows := 0
		for it.Next() {
			blk := it.Block()
			if blk.Row0 != rows {
				t.Fatalf("block row0 %d, want %d", blk.Row0, rows)
			}
			d := blk.A.ToDense()
			for i := 0; i < d.R; i++ {
				copy(got.Row(blk.Row0+i), d.Row(i))
			}
			rows += blk.A.M
		}
		if err := it.Err(); err != nil {
			t.Fatal(err)
		}
		if rows != a.M {
			t.Fatalf("epoch %d reassembled %d rows", epoch, rows)
		}
		if !got.Equal(a.ToDense()) {
			t.Fatalf("epoch %d reassembly differs", epoch)
		}
		it.Reset()
	}
}

func TestOpenRoundTrip(t *testing.T) {
	ds, a, b := buildFixture(t, 100, 30, 16)
	back, err := Open(ds.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if m, n := back.Dims(); m != a.M || n != a.N || back.NNZ() != ds.NNZ() || back.BlockRows() != 16 {
		t.Fatalf("manifest mismatch: %dx%d nnz=%d block=%d", m, n, back.NNZ(), back.BlockRows())
	}
	for i := range b {
		if back.B[i] != b[i] {
			t.Fatal("labels differ after reopen")
		}
	}
	y1 := make([]float64, a.M)
	y2 := make([]float64, a.M)
	x := make([]float64, a.N)
	for j := range x {
		x[j] = float64(j%5) - 2
	}
	a.MulVec(x, y1)
	back.Rows().MulVec(x, y2)
	for i := range y1 {
		if y1[i] != y2[i] {
			t.Fatalf("MulVec differs at %d after reopen", i)
		}
	}
}

// TestColStreamBitwise checks every ColMatrix kernel for exact (==)
// agreement with the in-memory CSC, the invariant the solver
// trajectories rest on.
func TestColStreamBitwise(t *testing.T) {
	ds, a, _ := buildFixture(t, 230, 40, 32)
	csc := a.ToCSC()
	cols := ds.Cols()
	r := rng.New(3)
	v := make([]float64, a.M)
	for i := range v {
		v[i] = r.NormFloat64()
	}

	for j := 0; j < a.N; j++ {
		if got, want := cols.ColNormSq(j), csc.ColNormSq(j); got != want {
			t.Fatalf("ColNormSq(%d): %v != %v", j, got, want)
		}
	}

	idx := r.SampleK(a.N, 12)
	d1 := make([]float64, len(idx))
	d2 := make([]float64, len(idx))
	csc.ColTMulVec(idx, v, d1)
	cols.ColTMulVec(idx, v, d2)
	for k := range d1 {
		if d1[k] != d2[k] {
			t.Fatalf("ColTMulVec[%d]: %v != %v", k, d2[k], d1[k])
		}
	}

	g1 := mat.NewDense(len(idx), len(idx))
	g2 := mat.NewDense(len(idx), len(idx))
	csc.ColGram(idx, g1)
	cols.ColGram(idx, g2)
	for i := range g1.Data {
		if g1.Data[i] != g2.Data[i] {
			t.Fatalf("ColGram entry %d: %v != %v", i, g2.Data[i], g1.Data[i])
		}
	}

	coef := make([]float64, len(idx))
	for k := range coef {
		coef[k] = r.NormFloat64()
	}
	v1 := append([]float64(nil), v...)
	v2 := append([]float64(nil), v...)
	csc.ColMulAdd(idx, coef, v1)
	cols.ColMulAdd(idx, coef, v2)
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatalf("ColMulAdd row %d: %v != %v", i, v2[i], v1[i])
		}
	}

	x := make([]float64, a.N)
	for j := range x {
		x[j] = r.NormFloat64()
	}
	y1 := make([]float64, a.M)
	y2 := make([]float64, a.M)
	csc.MulVec(x, y1)
	cols.MulVec(x, y2)
	for i := range y1 {
		if y1[i] != y2[i] {
			t.Fatalf("MulVec row %d: %v != %v", i, y2[i], y1[i])
		}
	}
}

// TestRowStreamBitwise checks every RowMatrix kernel against the
// in-memory CSR, including rows spanning several shards and the
// memoized gather path.
func TestRowStreamBitwise(t *testing.T) {
	ds, a, _ := buildFixture(t, 230, 40, 32)
	rows := ds.Rows()
	r := rng.New(5)

	x := make([]float64, a.N)
	for j := range x {
		x[j] = r.NormFloat64()
	}
	sample := []int{0, 229, 5, 64, 63, 64, 130, 97} // shard edges + a duplicate
	d1 := make([]float64, len(sample))
	d2 := make([]float64, len(sample))
	a.RowMulVec(sample, x, d1)
	rows.RowMulVec(sample, x, d2)
	for k := range d1 {
		if d1[k] != d2[k] {
			t.Fatalf("RowMulVec[%d]: %v != %v", k, d2[k], d1[k])
		}
	}

	g1 := mat.NewDense(len(sample), len(sample))
	g2 := mat.NewDense(len(sample), len(sample))
	a.RowGram(sample, g1)
	rows.RowGram(sample, g2)
	for i := range g1.Data {
		if g1.Data[i] != g2.Data[i] {
			t.Fatalf("RowGram entry %d: %v != %v", i, g2.Data[i], g1.Data[i])
		}
	}

	for _, i := range []int{0, 31, 32, 150, 229} {
		if got, want := rows.RowNormSq(i), a.RowNormSq(i); got != want {
			t.Fatalf("RowNormSq(%d): %v != %v", i, got, want)
		}
	}

	x1 := append([]float64(nil), x...)
	x2 := append([]float64(nil), x...)
	a.RowTAxpy(117, 0.37, x1)
	rows.RowTAxpy(117, 0.37, x2) // memoized-miss path
	a.RowTAxpy(64, -1.1, x1)
	rows.RowTAxpy(64, -1.1, x2) // memoized-hit path (64 was gathered)
	for j := range x1 {
		if x1[j] != x2[j] {
			t.Fatalf("RowTAxpy col %d: %v != %v", j, x2[j], x1[j])
		}
	}
}

// TestLassoStreamingBitwiseTrajectory is the acceptance criterion: a
// dataset 5× larger than the 2-shard block cache, solved sequentially
// out of core, must reproduce the in-memory objective trajectory and
// solution bitwise — plain and accelerated, classical and s-step.
func TestLassoStreamingBitwiseTrajectory(t *testing.T) {
	ds, a, b := buildFixture(t, 640, 80, 64)
	if got := ds.NumShards(); got < 4*defaultCacheShards {
		t.Fatalf("fixture too small: %d shards vs cache %d", got, defaultCacheShards)
	}
	csc := a.ToCSC()

	lamMem := core.LambdaMaxL1(csc, b)
	lamStream := core.LambdaMaxL1(ds.Cols(), b)
	if lamMem != lamStream {
		t.Fatalf("LambdaMax differs: %v != %v", lamStream, lamMem)
	}

	for _, tc := range []struct {
		name string
		opt  core.LassoOptions
	}{
		{"cd", core.LassoOptions{Lambda: 0.1 * lamMem, Iters: 120, TrackEvery: 11}},
		{"sa-bcd", core.LassoOptions{Lambda: 0.1 * lamMem, Iters: 120, S: 8, BlockSize: 4, TrackEvery: 11}},
		{"sa-accbcd", core.LassoOptions{Lambda: 0.1 * lamMem, Iters: 120, S: 8, BlockSize: 4, Accelerated: true, TrackEvery: 11}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			opt := tc.opt
			opt.Seed = 42
			mem, err := core.Lasso(csc, b, opt)
			if err != nil {
				t.Fatal(err)
			}
			str, err := core.Lasso(ds.Cols(), b, opt)
			if err != nil {
				t.Fatal(err)
			}
			if len(mem.History) == 0 || len(mem.History) != len(str.History) {
				t.Fatalf("history lengths %d vs %d", len(str.History), len(mem.History))
			}
			for k := range mem.History {
				if mem.History[k].Value != str.History[k].Value {
					t.Fatalf("objective trajectory diverges at point %d (iter %d): %.17g != %.17g",
						k, mem.History[k].Iter, str.History[k].Value, mem.History[k].Value)
				}
			}
			if mem.Objective != str.Objective {
				t.Fatalf("final objective %.17g != %.17g", str.Objective, mem.Objective)
			}
			for j := range mem.X {
				if mem.X[j] != str.X[j] {
					t.Fatalf("x[%d]: %.17g != %.17g", j, str.X[j], mem.X[j])
				}
			}
		})
	}
}

// TestSVMStreamingBitwiseTrajectory is the row-access counterpart:
// classical and s-step dual CD over the streamed rows must match the
// in-memory gap trajectory bitwise.
func TestSVMStreamingBitwiseTrajectory(t *testing.T) {
	d := datagen.Classification("svmfix", 11, 640, 60, 0.1, 0.05)
	a := d.AsCSR()
	var buf bytes.Buffer
	if err := libsvm.Write(&buf, a, d.B); err != nil {
		t.Fatal(err)
	}
	ds, err := Build(&buf, t.TempDir(), BuildOptions{BlockRows: 64, Features: 60})
	if err != nil {
		t.Fatal(err)
	}

	for _, s := range []int{0, 8} {
		opt := core.SVMOptions{Lambda: 1, Iters: 150, S: s, Seed: 9, TrackEvery: 25}
		mem, err := core.SVM(a, d.B, opt)
		if err != nil {
			t.Fatal(err)
		}
		str, err := core.SVM(ds.Rows(), d.B, opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(mem.History) == 0 || len(mem.History) != len(str.History) {
			t.Fatalf("s=%d: history lengths %d vs %d", s, len(str.History), len(mem.History))
		}
		for k := range mem.History {
			if mem.History[k].Gap != str.History[k].Gap || mem.History[k].Primal != str.History[k].Primal {
				t.Fatalf("s=%d: gap trajectory diverges at %d", s, k)
			}
		}
		if mem.Gap != str.Gap {
			t.Fatalf("s=%d: final gap %.17g != %.17g", s, str.Gap, mem.Gap)
		}
		for j := range mem.X {
			if mem.X[j] != str.X[j] {
				t.Fatalf("s=%d: x[%d] differs", s, j)
			}
		}
	}
}

func TestBuildRejectsBadRows(t *testing.T) {
	cases := []struct{ in, want string }{
		{"1 1:1\n1 3:1 3:2\n", "line 2: duplicate index 3"},
		{"1 5:1 2:1\n", "line 1: index 2 out of order"},
		{"x 1:1\n", "bad label"},
		{"1 0:2\n", "bad index"},
	}
	for _, tc := range cases {
		_, err := Build(strings.NewReader(tc.in), t.TempDir(), BuildOptions{BlockRows: 4})
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("input %q: error %v does not mention %q", tc.in, err, tc.want)
		}
	}
	if _, err := Build(strings.NewReader("1 2:1\n"), t.TempDir(), BuildOptions{Features: 1}); err == nil {
		t.Fatal("expected declared-width error")
	}
}

// TestBuildLongLine: rows wider than the reader's internal buffer (and
// than libsvm.Read's scanner cap would allow at scale) stream through.
func TestBuildLongLine(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("1")
	n := 300000 // ~3.4 MB of text, past the 1 MiB reader buffer
	for j := 1; j <= n; j++ {
		sb.WriteString(" ")
		sb.WriteString(itoa(j))
		sb.WriteString(":1")
	}
	sb.WriteString("\n-1 1:2\n")
	ds, err := Build(strings.NewReader(sb.String()), t.TempDir(), BuildOptions{BlockRows: 4})
	if err != nil {
		t.Fatal(err)
	}
	if m, nn := ds.Dims(); m != 2 || nn != n {
		t.Fatalf("dims %dx%d", m, nn)
	}
	if ds.NNZ() != int64(n+1) {
		t.Fatalf("nnz %d", ds.NNZ())
	}
	if got := ds.Cols().ColNormSq(0); got != 5 { // 1² + 2²
		t.Fatalf("ColNormSq(0) = %v", got)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

func TestBuildComments(t *testing.T) {
	in := "# header\n\n1 1:1\n  # indented comment\n-1 2:-3\n"
	ds, err := Build(strings.NewReader(in), t.TempDir(), BuildOptions{BlockRows: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m, n := ds.Dims(); m != 2 || n != 2 {
		t.Fatalf("dims %dx%d", m, n)
	}
	if ds.B[0] != 1 || ds.B[1] != -1 {
		t.Fatalf("labels %v", ds.B)
	}
	if ds.NumShards() != 2 {
		t.Fatalf("shards %d", ds.NumShards())
	}
}

func TestBuildNoTrailingNewline(t *testing.T) {
	ds, err := Build(strings.NewReader("1 1:1\n-1 2:2"), t.TempDir(), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m, _ := ds.Dims(); m != 2 {
		t.Fatalf("rows %d", m)
	}
}

func TestSetCacheShards(t *testing.T) {
	ds, a, _ := buildFixture(t, 230, 40, 16) // 15 shards
	ds.SetCacheShards(64)
	ds.SetCacheShards(1) // clamped to 2, must evict down without losing data
	x := make([]float64, a.N)
	x[0] = 1
	y1 := make([]float64, a.M)
	y2 := make([]float64, a.M)
	a.MulVec(x, y1)
	ds.Rows().MulVec(x, y2)
	for i := range y1 {
		if y1[i] != y2[i] {
			t.Fatalf("MulVec differs at %d after cache resize", i)
		}
	}
}

func TestSourceMatches(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "data.svm")
	if err := os.WriteFile(src, []byte("1 1:1\n-1 2:2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cache := filepath.Join(dir, "cache")
	ds, err := BuildFile(src, cache, BuildOptions{BlockRows: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !ds.SourceMatches(src) {
		t.Fatal("fresh build does not match its own source")
	}
	back, err := Open(cache)
	if err != nil {
		t.Fatal(err)
	}
	if !back.SourceMatches(src) {
		t.Fatal("reopened manifest does not match the source")
	}
	// Rewriting the source (different size) must invalidate the cache.
	if err := os.WriteFile(src, []byte("1 1:1\n-1 2:2\n1 3:3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if back.SourceMatches(src) {
		t.Fatal("stale cache still claims to match the rewritten source")
	}
	if back.SourceMatches(filepath.Join(dir, "missing.svm")) {
		t.Fatal("cache matches a nonexistent source")
	}
	// Reader-built datasets record no source and defer to the caller.
	rd, err := Build(strings.NewReader("1 1:1\n"), filepath.Join(dir, "cache2"), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rd.SourceMatches(src) {
		t.Fatal("reader-built dataset should not reject any source")
	}
}

func TestShardValuesExact(t *testing.T) {
	// Exact float64 round-trip through the shard encoding, including
	// values that decimal text would mangle — in every layout × codec.
	vals := []float64{math.Pi, -math.SmallestNonzeroFloat64, 1e300, -0.1, 3}
	rowPtr := []int{0, len(vals)}
	cols := []int{0, 1, 2, 3, 4}
	for _, layout := range []Layout{LayoutCSR, LayoutCSC} {
		for _, codec := range []Codec{CodecRaw, CodecDelta} {
			dir := t.TempDir()
			block := shardBlock{csr: &sparse.CSR{M: 1, N: 5, RowPtr: rowPtr, ColIdx: cols, Val: vals}}
			if layout == LayoutCSC {
				block = shardBlock{csc: cscFromBlock(rowPtr, cols, vals)}
			}
			if err := writeShard(shardPath(dir, 0), layout, codec, block); err != nil {
				t.Fatal(err)
			}
			back, err := readShardFile(shardPath(dir, 0), 5)
			if err != nil {
				t.Fatal(err)
			}
			var got []float64
			if layout == LayoutCSC {
				got = back.csc.ToCSR().Val
			} else {
				got = back.csr.Val
			}
			for k, v := range vals {
				if got[k] != v {
					t.Fatalf("%v/%v val %d: %v != %v", layout, codec, k, got[k], v)
				}
			}
		}
	}
}
