package stream

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"saco/internal/core"
	"saco/internal/datagen"
	"saco/internal/libsvm"
	"saco/internal/rng"
	"saco/internal/sparse"
)

// layoutCodecCases is the full format cross-product every round-trip
// property below must survive.
var layoutCodecCases = []struct {
	layout Layout
	codec  Codec
}{
	{LayoutCSR, CodecRaw},
	{LayoutCSR, CodecDelta},
	{LayoutCSC, CodecRaw},
	{LayoutCSC, CodecDelta},
}

// buildText ingests LIBSVM text into a fresh store and returns it.
func buildText(t *testing.T, text string, opt BuildOptions) *Dataset {
	t.Helper()
	ds, err := Build(strings.NewReader(text), t.TempDir(), opt)
	if err != nil {
		t.Fatalf("layout=%v codec=%v: %v", opt.Layout, opt.Codec, err)
	}
	return ds
}

// assertDatasetEquals checks a streamed store against the in-memory
// parse of the same text, entry by entry and bit by bit.
func assertDatasetEquals(t *testing.T, ds *Dataset, a *sparse.CSR, labels []float64) {
	t.Helper()
	if m, n := ds.Dims(); m != a.M || n != a.N {
		t.Fatalf("dims %dx%d, want %dx%d", m, n, a.M, a.N)
	}
	if ds.NNZ() != int64(a.NNZ()) {
		t.Fatalf("nnz %d, want %d", ds.NNZ(), a.NNZ())
	}
	for i, v := range labels {
		if ds.B[i] != v {
			t.Fatalf("label %d: %g != %g", i, ds.B[i], v)
		}
	}
	it := ds.Blocks()
	row := 0
	for it.Next() {
		blk := it.Block()
		for i := 0; i < blk.A.M; i++ {
			gi := blk.Row0 + i
			p0, p1 := blk.A.RowPtr[i], blk.A.RowPtr[i+1]
			q0, q1 := a.RowPtr[gi], a.RowPtr[gi+1]
			if p1-p0 != q1-q0 {
				t.Fatalf("row %d: %d entries, want %d", gi, p1-p0, q1-q0)
			}
			for k := 0; k < p1-p0; k++ {
				if blk.A.ColIdx[p0+k] != a.ColIdx[q0+k] || blk.A.Val[p0+k] != a.Val[q0+k] {
					t.Fatalf("row %d entry %d: (%d,%v) want (%d,%v)", gi, k,
						blk.A.ColIdx[p0+k], blk.A.Val[p0+k], a.ColIdx[q0+k], a.Val[q0+k])
				}
			}
		}
		row += blk.A.M
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if row != a.M {
		t.Fatalf("iterated %d rows, want %d", row, a.M)
	}
}

// TestShardRoundTripProperties: the edge shapes that historically break
// binary formats — empty rows, width declared by an explicit "n:0",
// single-row blocks, a block larger than the dataset, and columns at the
// far end of the declared width — survive ingest→read byte-identically
// in every layout × codec.
func TestShardRoundTripProperties(t *testing.T) {
	cases := []struct {
		name      string
		text      string
		features  int
		blockRows int
	}{
		{"empty-rows", "1\n-1 2:2\n1\n-1 1:-1 3:7\n1\n", 0, 2},
		{"width-declaring-n0", "1 1:1 50:0\n-1 2:2\n", 0, 3},
		{"single-row-blocks", "1 1:1 2:2\n-1 3:3\n1 2:-2 4:4\n", 0, 1},
		{"block-larger-than-dataset", "1 1:1\n-1 2:2\n1 3:3\n", 0, 10000},
		{"max-declared-column", "1 1:1 131072:5\n-1 131071:2\n", 1 << 17, 2},
		{"all-rows-empty", "1\n-1\n1\n", 4, 2},
		{"trailing-empty-columns", "1 1:1\n-1 2:2\n", 64, 1},
	}
	for _, tc := range cases {
		for _, lc := range layoutCodecCases {
			t.Run(fmt.Sprintf("%s/%v-%v", tc.name, lc.layout, lc.codec), func(t *testing.T) {
				a, labels, err := libsvm.Read(strings.NewReader(tc.text), tc.features)
				if err != nil {
					t.Fatal(err)
				}
				ds := buildText(t, tc.text, BuildOptions{
					BlockRows: tc.blockRows, Features: tc.features,
					Layout: lc.layout, Codec: lc.codec,
				})
				if got := ds.Layout(); got != lc.layout {
					t.Fatalf("layout %v, want %v", got, lc.layout)
				}
				if got := ds.Codec(); got != lc.codec {
					t.Fatalf("codec %v, want %v", got, lc.codec)
				}
				assertDatasetEquals(t, ds, a, labels)
				// Reopen from the manifest and check again: the round
				// trip must also survive the on-disk metadata.
				back, err := Open(ds.Dir())
				if err != nil {
					t.Fatal(err)
				}
				if back.Layout() != lc.layout || back.Codec() != lc.codec {
					t.Fatalf("reopened layout/codec %v/%v", back.Layout(), back.Codec())
				}
				assertDatasetEquals(t, back, a, labels)
			})
		}
	}
}

// TestMaxIndexColumnCSR: a column index at the shard format's 32-bit cap
// round-trips through the row-major layout (the column-major layout is
// for realistic widths — its column pointer is width-proportional).
func TestMaxIndexColumnCSR(t *testing.T) {
	text := fmt.Sprintf("1 1:1 %d:42\n", uint64(MaxFeatures))
	for _, codec := range []Codec{CodecRaw, CodecDelta} {
		ds := buildText(t, text, BuildOptions{Codec: codec})
		if _, n := ds.Dims(); n != MaxFeatures {
			t.Fatalf("codec %v: width %d, want %d", codec, n, MaxFeatures)
		}
		it := ds.Blocks()
		if !it.Next() {
			t.Fatal(it.Err())
		}
		blk := it.Block()
		if got := blk.A.ColIdx[1]; got != MaxFeatures-1 {
			t.Fatalf("codec %v: max column %d, want %d", codec, got, MaxFeatures-1)
		}
		if blk.A.Val[1] != 42 {
			t.Fatalf("codec %v: value %v", codec, blk.A.Val[1])
		}
	}
	// One past the cap must be rejected, not wrapped.
	if _, err := Build(strings.NewReader(fmt.Sprintf("1 %d:1\n", uint64(MaxFeatures)+1)),
		t.TempDir(), BuildOptions{}); err == nil {
		t.Fatal("index past the 32-bit cap was accepted")
	}
}

// TestV1StoreStillReadable hand-writes a version-1 store (the PR 3
// fixed-width CSR format) and checks the v2 reader opens and decodes it.
func TestV1StoreStillReadable(t *testing.T) {
	dir := t.TempDir()
	rowPtr := []int{0, 2, 2, 3}
	colIdx := []int{0, 3, 1}
	vals := []float64{1.5, -2, math.Pi}
	labels := []float64{1, -1, 1}
	writeV1Shard(t, shardPath(dir, 0), rowPtr, colIdx, vals)
	writeV1Manifest(t, dir, 3, 4, 3, 4, []ShardInfo{{Rows: 3, NNZ: 3}}, labels)

	ds, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Layout() != LayoutCSR || ds.Codec() != CodecRaw {
		t.Fatalf("v1 store decoded as %v/%v", ds.Layout(), ds.Codec())
	}
	want, err := sparse.NewCSR(3, 4, rowPtr, colIdx, vals)
	if err != nil {
		t.Fatal(err)
	}
	assertDatasetEquals(t, ds, want, labels)
	// The column view still works (conversion path).
	if got := ds.Cols().ColNormSq(0); got != 1.5*1.5 {
		t.Fatalf("ColNormSq(0) = %v", got)
	}
}

// writeV1Shard emits the PR 3 shard encoding byte for byte.
func writeV1Shard(t *testing.T, path string, rowPtr, colIdx []int, vals []float64) {
	t.Helper()
	le := binary.LittleEndian
	var buf bytes.Buffer
	var hdr [20]byte
	copy(hdr[:], "SACOSHv1")
	le.PutUint32(hdr[8:], uint32(len(rowPtr)-1))
	le.PutUint64(hdr[12:], uint64(len(vals)))
	buf.Write(hdr[:])
	var w8 [8]byte
	for _, v := range rowPtr {
		le.PutUint64(w8[:], uint64(v))
		buf.Write(w8[:])
	}
	var w4 [4]byte
	for _, v := range colIdx {
		le.PutUint32(w4[:], uint32(v))
		buf.Write(w4[:])
	}
	for _, v := range vals {
		le.PutUint64(w8[:], math.Float64bits(v))
		buf.Write(w8[:])
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

// writeV1Manifest emits the PR 3 manifest encoding byte for byte.
func writeV1Manifest(t *testing.T, dir string, m, n int, nnz int64, blockRows int, shards []ShardInfo, labels []float64) {
	t.Helper()
	le := binary.LittleEndian
	var buf bytes.Buffer
	var hdr [56]byte
	copy(hdr[:], "SACOSMv1")
	le.PutUint64(hdr[8:], uint64(m))
	le.PutUint64(hdr[16:], uint64(n))
	le.PutUint64(hdr[24:], uint64(nnz))
	le.PutUint32(hdr[32:], uint32(blockRows))
	le.PutUint32(hdr[36:], uint32(len(shards)))
	buf.Write(hdr[:])
	var rec [12]byte
	for _, sh := range shards {
		le.PutUint32(rec[:], uint32(sh.Rows))
		le.PutUint64(rec[4:], uint64(sh.NNZ))
		buf.Write(rec[:])
	}
	var w8 [8]byte
	for _, v := range labels {
		le.PutUint64(w8[:], math.Float64bits(v))
		buf.Write(w8[:])
	}
	if err := os.WriteFile(filepath.Join(dir, manifestName), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestV1ShardOverflowingNNZRejected: a corrupt v1 nnz field near
// 2⁶⁴/12 used to wrap the declared-size arithmetic past the length
// equality and panic in make(); it must be an error.
func TestV1ShardOverflowingNNZRejected(t *testing.T) {
	k := 4 // 12·nnz ≡ 12k (mod 2⁶⁴) when nnz = 2⁶² + k, since 12·2⁶² = 3·2⁶⁴
	data := make([]byte, shardHeaderV1+8+12*k)
	copy(data, "SACOSHv1")
	binary.LittleEndian.PutUint32(data[8:], 0) // rows = 0 → 8·(rows+1) = 8
	binary.LittleEndian.PutUint64(data[12:], 1<<62+uint64(k))
	if _, _, err := decodeShard(data, 4, false); err == nil {
		t.Fatal("wrapping v1 nnz accepted")
	}
}

// urlLikeText synthesizes a dataset with the paper's url characteristics:
// wide, very sparse, heavily skewed column indices (a dense cluster of
// frequent low features plus a sparse tail) and binary ±1 values. This
// is the regime the delta codec is for.
func urlLikeText(rows, rowNNZ int) string {
	r := rng.New(99)
	var sb strings.Builder
	for i := 0; i < rows; i++ {
		if i%2 == 0 {
			sb.WriteString("1")
		} else {
			sb.WriteString("-1")
		}
		col := 0
		for k := 0; k < rowNNZ; k++ {
			// Skewed gaps: mostly 1–8, occasionally a long jump into the
			// tail — url-style hostname/path token locality.
			gap := 1 + int(r.Uint64()%8)
			if r.Uint64()%64 == 0 {
				gap += int(r.Uint64() % 5000)
			}
			col += gap
			val := 1
			if r.Uint64()%4 == 0 {
				val = -1
			}
			fmt.Fprintf(&sb, " %d:%d", col, val)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// TestDeltaCodecShrinksSkewedShards is the bench-backed size guarantee:
// on a url-like skewed index distribution the delta codec must cut total
// shard bytes by at least 1.8× in both layouts (the ROADMAP's "roughly
// halve shard bytes" item). BenchmarkShardEncode reports the same ratio
// as a metric.
func TestDeltaCodecShrinksSkewedShards(t *testing.T) {
	text := urlLikeText(512, 60)
	for _, layout := range []Layout{LayoutCSR, LayoutCSC} {
		raw := buildText(t, text, BuildOptions{BlockRows: 128, Layout: layout, Codec: CodecRaw})
		delta := buildText(t, text, BuildOptions{BlockRows: 128, Layout: layout, Codec: CodecDelta})
		rawBytes, err := raw.ShardBytes()
		if err != nil {
			t.Fatal(err)
		}
		deltaBytes, err := delta.ShardBytes()
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(rawBytes) / float64(deltaBytes)
		t.Logf("layout=%v raw=%d delta=%d ratio=%.2fx", layout, rawBytes, deltaBytes, ratio)
		if ratio < 1.8 {
			t.Fatalf("layout=%v: delta shards only %.2fx smaller (raw %d, delta %d), want >= 1.8x",
				layout, ratio, rawBytes, deltaBytes)
		}
		// Compression must not cost correctness: both stores decode to
		// identical blocks.
		a, labels, err := libsvm.Read(strings.NewReader(text), 0)
		if err != nil {
			t.Fatal(err)
		}
		assertDatasetEquals(t, delta, a, labels)
	}
}

// BenchmarkShardEncode measures encode throughput and reports the
// delta:raw size ratio on the url-like distribution as a metric, so the
// size guarantee is visible in bench output too.
func BenchmarkShardEncode(b *testing.B) {
	a, _, err := libsvm.Read(strings.NewReader(urlLikeText(512, 60)), 0)
	if err != nil {
		b.Fatal(err)
	}
	block := shardBlock{csr: a}
	rawLen := len(encodeShard(LayoutCSR, CodecRaw, block))
	deltaLen := len(encodeShard(LayoutCSR, CodecDelta, block))
	b.ReportMetric(float64(rawLen)/float64(deltaLen), "raw/delta-bytes")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := encodeShard(LayoutCSR, CodecDelta, block); len(out) != deltaLen {
			b.Fatal("nondeterministic encode")
		}
	}
}

// TestCacheCounters pins the cache accounting the parity harness leans
// on: hits, misses, evictions, and the no-double-read prefetch
// invariant (every miss costs exactly one disk load; banked prefetches
// are consumed, never discarded and re-read).
func TestCacheCounters(t *testing.T) {
	ds, _, _ := buildFixture(t, 640, 80, 64) // 10 shards, cache 2
	// Three sequential epochs through the block iterator.
	it := ds.Blocks()
	for epoch := 0; epoch < 3; epoch++ {
		for it.Next() {
		}
		if err := it.Err(); err != nil {
			t.Fatal(err)
		}
		it.Reset()
	}
	st := ds.CacheStats()
	// No double-reads: every disk load is consumed by exactly one miss,
	// except at most the final wrap-around prefetch still in flight when
	// the pass ends. A cache that discarded prefetched blocks and
	// re-read them would push Loads past Misses+1.
	if st.Loads > st.Misses+1 {
		t.Fatalf("prefetch double-read: %d loads for %d misses (%+v)", st.Loads, st.Misses, st)
	}
	// 10 shards, 3 epochs, budget 2: the consumed and prefetched blocks
	// are the only residents, so every access is a miss — the first
	// synchronous, all later ones satisfied by draining the wrapped
	// prefetch (that's the streaming design: disk reads overlap compute,
	// but nothing is read twice).
	if st.Misses != 30 || st.Hits != 0 {
		t.Fatalf("misses/hits %d/%d, want 30/0 (%+v)", st.Misses, st.Hits, st)
	}
	if st.PrefetchHits != 29 || st.Loads != 31 {
		t.Fatalf("prefetch accounting: %+v", st)
	}
	if st.Evictions != st.Misses-2 {
		t.Fatalf("evictions %d with budget 2 after %d misses (%+v)", st.Evictions, st.Misses, st)
	}
	if st.Conversions != 0 {
		t.Fatalf("block iteration converted %d shards (%+v)", st.Conversions, st)
	}

	// A warm re-read inside the budget is a pure hit: no loads.
	small, _, _ := buildFixture(t, 64, 20, 64) // one shard
	for i := 0; i < 3; i++ {
		it := small.Blocks()
		for it.Next() {
		}
		if err := it.Err(); err != nil {
			t.Fatal(err)
		}
		it.Reset()
	}
	if st := small.CacheStats(); st.Misses != 1 || st.Hits != 2 || st.Loads != 1 {
		t.Fatalf("single-shard epochs: %+v", st)
	}
}

// TestColStreamZeroConversions is the tentpole acceptance counter: a
// full streamed Lasso solve over a LayoutCSC store must never
// materialize a CSR→CSC conversion, while the same solve over a
// LayoutCSR store converts every shard load.
func TestColStreamZeroConversions(t *testing.T) {
	d := fixtureText(t, 640, 80)
	opt := core.LassoOptions{Lambda: 0.4, Iters: 60, S: 4, BlockSize: 2, Seed: 7}

	csc := buildText(t, d, BuildOptions{BlockRows: 64, Layout: LayoutCSC})
	if _, err := core.Lasso(csc.Cols(), csc.B, opt); err != nil {
		t.Fatal(err)
	}
	if st := csc.CacheStats(); st.Conversions != 0 {
		t.Fatalf("CSC store: %d conversions during a column solve (%+v)", st.Conversions, st)
	}

	csr := buildText(t, d, BuildOptions{BlockRows: 64, Layout: LayoutCSR})
	if _, err := core.Lasso(csr.Cols(), csr.B, opt); err != nil {
		t.Fatal(err)
	}
	if st := csr.CacheStats(); st.Conversions == 0 {
		t.Fatalf("CSR store: column solve reported no conversions (%+v)", st)
	}
}

// fixtureText renders a synthetic regression fixture as LIBSVM text.
func fixtureText(t *testing.T, m, n int) string {
	t.Helper()
	d := datagen.Regression("fmtfix", 7, m, n, 0.1, 8, 0.1)
	var buf bytes.Buffer
	if err := libsvm.Write(&buf, d.AsCSR(), d.B); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestMmapMatchesCopy drives identical access sequences through both
// read modes and asserts (a) bitwise-identical decoded data, (b)
// identical cache decisions (the CacheStats snapshot, net of the
// fallback counter), and (c) Close releasing the mappings afterwards.
func TestMmapMatchesCopy(t *testing.T) {
	for _, lc := range layoutCodecCases {
		t.Run(fmt.Sprintf("%v-%v", lc.layout, lc.codec), func(t *testing.T) {
			text := urlLikeText(300, 40)
			a, _, err := libsvm.Read(strings.NewReader(text), 0)
			if err != nil {
				t.Fatal(err)
			}
			copyDS := buildText(t, text, BuildOptions{BlockRows: 64, Layout: lc.layout, Codec: lc.codec})
			mmapDS, err := Open(copyDS.Dir())
			if err != nil {
				t.Fatal(err)
			}
			mmapDS.SetReadMode(ReadMmap)
			if mmapDS.ReadMode() != ReadMmap {
				t.Fatal("read mode did not stick")
			}

			access := func(d *Dataset) CacheStats {
				assertDatasetEquals(t, d, a, d.B)
				x := make([]float64, a.N)
				for j := range x {
					x[j] = float64(j%7) - 3
				}
				y := make([]float64, a.M)
				d.Cols().MulVec(x, y)
				want := make([]float64, a.M)
				a.MulVec(x, want)
				for i := range want {
					if y[i] != want[i] {
						t.Fatalf("MulVec differs at %d", i)
					}
				}
				return d.CacheStats()
			}
			stCopy := access(copyDS)
			stMmap := access(mmapDS)
			if mmapSupported && stMmap.MmapFallbacks != 0 {
				t.Fatalf("mmap fell back %d times on a supporting platform", stMmap.MmapFallbacks)
			}
			stMmap.MmapFallbacks = 0 // the only field allowed to differ
			stCopy.MmapFallbacks = 0
			if stCopy != stMmap {
				t.Fatalf("cache decisions diverge:\ncopy %+v\nmmap %+v", stCopy, stMmap)
			}
			if err := mmapDS.Close(); err != nil {
				t.Fatal(err)
			}
			if err := mmapDS.Close(); err != nil { // idempotent
				t.Fatal(err)
			}
			if err := copyDS.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestConvertStore: a one-pass conversion between every layout × codec
// pair preserves the data bit for bit, carries the source stamp, and —
// for CSR→CSC — writes shard files byte-identical to an at-ingest CSC
// build (the transpose is the same transpose).
func TestConvertStore(t *testing.T) {
	text := urlLikeText(200, 30)
	a, labels, err := libsvm.Read(strings.NewReader(text), 0)
	if err != nil {
		t.Fatal(err)
	}
	src := buildText(t, text, BuildOptions{BlockRows: 32})
	for _, lc := range layoutCodecCases {
		dst := filepath.Join(t.TempDir(), "conv")
		conv, err := Convert(src, dst, lc.layout, lc.codec)
		if err != nil {
			t.Fatal(err)
		}
		if conv.Layout() != lc.layout || conv.Codec() != lc.codec {
			t.Fatalf("converted store is %v/%v", conv.Layout(), conv.Codec())
		}
		assertDatasetEquals(t, conv, a, labels)
		if conv.BlockRows() != src.BlockRows() || conv.NumShards() != src.NumShards() {
			t.Fatalf("conversion changed the shard shape")
		}

		ingest := buildText(t, text, BuildOptions{BlockRows: 32, Layout: lc.layout, Codec: lc.codec})
		for i := 0; i < src.NumShards(); i++ {
			cb, err := os.ReadFile(shardPath(conv.Dir(), i))
			if err != nil {
				t.Fatal(err)
			}
			ib, err := os.ReadFile(shardPath(ingest.Dir(), i))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(cb, ib) {
				t.Fatalf("%v/%v shard %d: converted and at-ingest bytes differ", lc.layout, lc.codec, i)
			}
		}
	}
	if _, err := Convert(src, src.Dir(), LayoutCSC, CodecRaw); err == nil {
		t.Fatal("in-place conversion was accepted")
	}
}

// FuzzDecodeShard: arbitrary bytes must produce an error, never a panic
// or an unbounded allocation.
func FuzzDecodeShard(f *testing.F) {
	row := shardBlock{csr: &sparse.CSR{M: 2, N: 6, RowPtr: []int{0, 2, 3}, ColIdx: []int{1, 4, 5}, Val: []float64{1, -2, 0.5}}}
	col := shardBlock{csc: cscFromBlock([]int{0, 2, 3}, []int{1, 4, 5}, []float64{1, -2, 0.5})}
	f.Add(encodeShard(LayoutCSR, CodecRaw, row))
	f.Add(encodeShard(LayoutCSR, CodecDelta, row))
	f.Add(encodeShard(LayoutCSC, CodecRaw, col))
	f.Add(encodeShard(LayoutCSC, CodecDelta, col))
	f.Add([]byte("SACOSHv1"))
	f.Add([]byte("SACOSHv2"))
	f.Fuzz(func(t *testing.T, data []byte) {
		block, _, err := decodeShard(data, 6, false)
		if err != nil {
			return
		}
		if block.csr == nil && block.csc == nil {
			t.Fatal("no error and no block")
		}
	})
}
