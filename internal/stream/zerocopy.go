package stream

import "unsafe"

// hostLittleEndian reports whether the running machine stores multi-byte
// integers little-endian — the precondition for reinterpreting the raw
// vals section (IEEE-754 bits, little-endian on disk) as a []float64
// without a decode copy.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// asFloat64LE reinterprets b as n little-endian float64 values without
// copying. It returns (nil, false) when the platform cannot alias the
// bytes safely: big-endian hosts, or a section that is not 8-byte
// aligned (v2 shards pad the vals section to alignment, so mapped
// sections qualify; v1 shards and foreign buffers may not). The returned
// slice aliases b — the caller owns keeping b's backing memory alive and
// must treat the floats as read-only.
func asFloat64LE(b []byte, n int) ([]float64, bool) {
	if n == 0 {
		return []float64{}, false // nothing aliased, no need to pin b
	}
	if !hostLittleEndian || len(b) < 8*n {
		return nil, false
	}
	p := unsafe.Pointer(unsafe.SliceData(b))
	if uintptr(p)%8 != 0 {
		return nil, false
	}
	return unsafe.Slice((*float64)(p), n), true
}
