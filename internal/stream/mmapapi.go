package stream

// The exported mmap seam. The shard cache's read path (mmap_unix.go /
// mmap_stub.go / zerocopy.go) is equally what a zero-copy model load
// needs: map read-only, alias the float payload in place, release when
// the last reader is gone. These thin wrappers let internal/serve reuse
// that machinery without duplicating the platform gates.

// MmapSupported reports whether this build carries a working mmap path.
// Callers should fall back to a copying read when it returns false.
func MmapSupported() bool { return mmapSupported }

// MapFile maps path read-only and returns the mapping. The bytes stay
// valid until UnmapFile; the mapping is PROT_READ, so writes through
// any view of it fault. Empty files map to an empty non-nil slice.
func MapFile(path string) ([]byte, error) { return mmapFile(path) }

// UnmapFile releases a mapping returned by MapFile. Any slice aliased
// into the mapping (AsFloat64LE) is invalid afterwards.
func UnmapFile(data []byte) error { return munmapFile(data) }

// AsFloat64LE reinterprets b as n little-endian float64 values without
// copying, returning ok=false when the platform cannot alias safely
// (big-endian host, short or misaligned section). The result aliases b:
// the caller owns keeping b alive and must treat the floats as
// read-only.
func AsFloat64LE(b []byte, n int) ([]float64, bool) { return asFloat64LE(b, n) }
