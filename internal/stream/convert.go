package stream

import (
	"fmt"
	"os"

	"saco/internal/sparse"
)

// Convert re-spills an existing store into dstDir with a different
// layout and/or codec in one sequential prefetched pass: each shard is
// decoded in its stored form, transposed if the layouts differ, and
// re-encoded — peak memory stays at the cache budget plus one block.
// Labels, block size and the source-identity stamp carry over, so a
// converted store passes the same SourceMatches check as the original.
// The conversion is exact: both codecs round-trip every float64
// bit-for-bit, and the block transpose is the same counting transpose
// the column views' per-load conversion used, so solver trajectories
// over the converted store are bitwise identical.
func Convert(src *Dataset, dstDir string, layout Layout, codec Codec) (*Dataset, error) {
	if dstDir == "" {
		return nil, fmt.Errorf("stream: empty destination directory")
	}
	if dstDir == src.dir {
		return nil, fmt.Errorf("stream: conversion cannot overwrite the source store %s", src.dir)
	}
	if err := os.MkdirAll(dstDir, 0o755); err != nil {
		return nil, err
	}
	d := &Dataset{
		dir: dstDir, m: src.m, n: src.n, nnz: src.nnz,
		blockRows: src.blockRows, layout: layout, codec: codec,
		srcSize: src.srcSize, srcMTime: src.srcMTime,
		shards: append([]ShardInfo(nil), src.shards...),
		B:      append([]float64(nil), src.B...),
	}
	for i := range src.shards {
		var block shardBlock
		if layout == LayoutCSC {
			a, err := src.cache.getCSC(i, true)
			if err != nil {
				return nil, err
			}
			block.csc = trimCSC(a)
		} else {
			a, err := src.cache.getCSR(i, true)
			if err != nil {
				return nil, err
			}
			block.csr = a
		}
		if err := writeShard(shardPath(dstDir, i), layout, codec, block); err != nil {
			return nil, err
		}
	}
	d.cache = newShardCache(d, defaultCacheShards)
	if err := writeManifest(d); err != nil {
		return nil, err
	}
	return d, nil
}

// trimCSC narrows a decoded block to its occupied column width before
// encoding, matching what an at-ingest CSC spill writes (the decoder
// pads back out to the dataset width, so trailing empty columns never
// cost disk bytes).
func trimCSC(a *sparse.CSC) *sparse.CSC {
	width := a.N
	for width > 0 && a.ColPtr[width-1] == a.ColPtr[width] {
		width--
	}
	return &sparse.CSC{M: a.M, N: width, ColPtr: a.ColPtr[:width+1], RowIdx: a.RowIdx, Val: a.Val}
}
