package stream

import (
	"sort"

	"saco/internal/mat"
	"saco/internal/sparse"
)

// RowStream is the out-of-core core.RowMatrix view of a Dataset: the
// access pattern of the dual coordinate-descent SVM solvers (sampled
// row Grams, hoisted row·x products, rank-one primal updates). Rows
// live whole inside one shard (the 1D-row partitioning), so every row
// kernel reproduces the in-memory sparse.CSR arithmetic exactly and
// sequential-backend trajectories are bitwise identical.
//
// Sampled access is not sequential, so the view batches: RowGram and
// RowMulVec gather the sampled rows shard by shard (ascending, each
// covering shard loaded once per call) into a resident mini-CSR that is
// memoized until the sampled set changes — the s-step SVM's per-outer
// RowGram + RowMulVec + s RowTAxpy sequence then costs one pass over
// the covering shards instead of one load per touched row. Single-row
// calls outside the memoized set (classical s = 1 solves) fall back to
// the shard cache; raise Dataset.SetCacheShards if that thrashes.
type RowStream struct {
	d *Dataset

	// Memoized gather of the last sampled row set.
	gathered *sparse.CSR
	rowOf    map[int]int // global row -> gathered row
}

// Rows returns the row-access streaming view (for saco.SVM,
// saco.PegasosSVM).
func (d *Dataset) Rows() *RowStream {
	return &RowStream{d: d, rowOf: make(map[int]int)}
}

// Dims returns (rows, columns).
func (v *RowStream) Dims() (int, int) { return v.d.m, v.d.n }

// RowNormSq returns ‖A_i‖².
func (v *RowStream) RowNormSq(i int) float64 {
	if g, ok := v.rowOf[i]; ok {
		return v.gathered.RowNormSq(g)
	}
	si, li := v.d.locate(i)
	return mustLoad(v.d.cache.getCSR(si, false)).RowNormSq(li)
}

// RowTAxpy performs x += alpha·A_rowᵀ.
func (v *RowStream) RowTAxpy(row int, alpha float64, x []float64) {
	if len(x) != v.d.n {
		panic("stream: RowTAxpy shape mismatch")
	}
	if g, ok := v.rowOf[row]; ok {
		v.gathered.RowTAxpy(g, alpha, x)
		return
	}
	si, li := v.d.locate(row)
	mustLoad(v.d.cache.getCSR(si, false)).RowTAxpy(li, alpha, x)
}

// RowMulVec computes dst[k] = A_rows[k] · x over the gathered sample.
func (v *RowStream) RowMulVec(rows []int, x []float64, dst []float64) {
	if len(x) != v.d.n || len(dst) != len(rows) {
		panic("stream: RowMulVec shape mismatch")
	}
	v.gather(rows)
	for k, r := range rows {
		g := v.gathered
		i := v.rowOf[r]
		var s float64
		for p := g.RowPtr[i]; p < g.RowPtr[i+1]; p++ {
			s += g.Val[p] * x[g.ColIdx[p]]
		}
		dst[k] = s
	}
}

// RowGram computes dst = A_R·A_Rᵀ (|R|×|R|) over the gathered sample,
// entry by entry with the same sorted-merge dots as sparse.CSR.RowGram.
func (v *RowStream) RowGram(rows []int, dst *mat.Dense) {
	if dst.R != len(rows) || dst.C != len(rows) {
		panic("stream: RowGram dst shape mismatch")
	}
	v.gather(rows)
	g := v.gathered
	for i := range rows {
		gi := v.rowOf[rows[i]]
		for j := i; j < len(rows); j++ {
			val := sparse.RowDot(g, gi, g, v.rowOf[rows[j]])
			dst.Set(i, j, val)
			dst.Set(j, i, val)
		}
	}
}

// MulVec computes y = A·x with one sequential prefetched pass.
func (v *RowStream) MulVec(x, y []float64) {
	if len(x) != v.d.n || len(y) != v.d.m {
		panic("stream: MulVec shape mismatch")
	}
	mustLoad(0, v.d.forEachCSR(func(info ShardInfo, a *sparse.CSR) {
		a.MulVec(x, y[info.Row0:info.Row0+info.Rows])
	}))
}

// gather extracts the distinct sampled rows into the memoized mini-CSR,
// visiting each covering shard once in ascending order. A repeated call
// with rows already gathered is free.
func (v *RowStream) gather(rows []int) {
	if v.gathered != nil {
		hit := true
		for _, r := range rows {
			if _, ok := v.rowOf[r]; !ok {
				hit = false
				break
			}
		}
		if hit {
			return
		}
	}
	distinct := make([]int, 0, len(rows))
	seen := make(map[int]bool, len(rows))
	for _, r := range rows {
		if !seen[r] {
			seen[r] = true
			distinct = append(distinct, r)
		}
	}
	// Ascending global order groups rows by shard; each shard loads once.
	sort.Ints(distinct)

	clear(v.rowOf)
	rowPtr := make([]int, 1, len(distinct)+1)
	var colIdx []int
	var vals []float64
	var cur *sparse.CSR
	curShard := -1
	for _, r := range distinct {
		si, li := v.d.locate(r)
		if si != curShard {
			cur = mustLoad(v.d.cache.getCSR(si, false))
			curShard = si
		}
		lo, hi := cur.RowPtr[li], cur.RowPtr[li+1]
		colIdx = append(colIdx, cur.ColIdx[lo:hi]...)
		vals = append(vals, cur.Val[lo:hi]...)
		v.rowOf[r] = len(rowPtr) - 1
		rowPtr = append(rowPtr, len(vals))
	}
	v.gathered = &sparse.CSR{M: len(distinct), N: v.d.n, RowPtr: rowPtr, ColIdx: colIdx, Val: vals}
}
