//go:build unix

package stream

import (
	"fmt"
	"os"
	"syscall"
)

// mmapSupported reports whether this build carries a working mmap path;
// ReadMmap silently degrades to ReadCopy where it does not.
const mmapSupported = true

// mmapFile maps path read-only. The returned bytes stay valid until
// munmapFile; writes through decoded views would fault (the mapping is
// PROT_READ), which is exactly the immutability the shard contract wants.
// Empty files map to an empty non-nil slice so callers need no special
// case.
func mmapFile(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() //saco:nolint commerr the fd may close once the mapping exists; the mapping survives and no write is outstanding
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size() == 0 {
		return []byte{}, nil
	}
	if st.Size() != int64(int(st.Size())) {
		return nil, fmt.Errorf("stream: %s: file too large to map", path)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(st.Size()), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("stream: mmap %s: %v", path, err)
	}
	return data, nil
}

// munmapFile releases a mapping produced by mmapFile.
func munmapFile(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	return syscall.Munmap(data)
}
