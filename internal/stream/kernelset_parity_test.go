// Kernel-set dimension of the determinism matrix: every bitwise
// internal/simd dispatch set must reproduce the scalar-set solver
// trajectories exactly, sequential and multicore, Lasso and SVM. The
// reassociating opt-in set is asserted only tolerance-convergent —
// running it through the bitwise harness would be a category error, as
// its summation order is deliberately different.
package stream_test

import (
	"testing"

	"saco/internal/core"
	"saco/internal/datagen"
	"saco/internal/testmatrix"
)

func TestParityKernelSetsLasso(t *testing.T) {
	d := datagen.Regression("kernelset-lasso", 33, 256, 64, 0.12, 8, 0.1)
	a := d.AsCSR()
	opt := lassoOpts()

	var ref *core.LassoResult
	t.Run("scalar-reference", func(t *testing.T) {
		testmatrix.WithKernelSet(t, "scalar")
		var err error
		ref, err = core.Lasso(a.ToCSC(), d.B, opt)
		if err != nil {
			t.Fatal(err)
		}
	})
	if ref == nil {
		t.Fatal("no scalar reference")
	}

	for _, ks := range testmatrix.KernelSets() {
		t.Run(ks, func(t *testing.T) {
			testmatrix.WithKernelSet(t, ks)
			seq, err := core.Lasso(a.ToCSC(), d.B, opt)
			if err != nil {
				t.Fatal(err)
			}
			assertLassoBitwise(t, seq, ref)

			o := opt
			o.Exec = core.Exec{Backend: core.BackendMulticore, Workers: 3}
			mc, err := core.Lasso(a.ToCSC(), d.B, o)
			if err != nil {
				t.Fatal(err)
			}
			assertLassoBitwise(t, mc, ref)
		})
	}

	t.Run("reassoc-tolerance", func(t *testing.T) {
		testmatrix.WithKernelSet(t, "reassoc")
		res, err := core.Lasso(a.ToCSC(), d.B, opt)
		if err != nil {
			t.Fatal(err)
		}
		if rd := testmatrix.RelDiff(res.Objective, ref.Objective); rd > 1e-6 {
			t.Fatalf("reassoc objective drifted: %.17g vs %.17g (rel %.3e)",
				res.Objective, ref.Objective, rd)
		}
	})
}

func TestParityKernelSetsSVM(t *testing.T) {
	d := datagen.Classification("kernelset-svm", 57, 192, 48, 0.15, 0.1)
	a := d.AsCSR()
	opt := svmOpts()

	var ref *core.SVMResult
	t.Run("scalar-reference", func(t *testing.T) {
		testmatrix.WithKernelSet(t, "scalar")
		var err error
		ref, err = core.SVM(a, d.B, opt)
		if err != nil {
			t.Fatal(err)
		}
	})
	if ref == nil {
		t.Fatal("no scalar reference")
	}

	for _, ks := range testmatrix.KernelSets() {
		t.Run(ks, func(t *testing.T) {
			testmatrix.WithKernelSet(t, ks)
			seq, err := core.SVM(a, d.B, opt)
			if err != nil {
				t.Fatal(err)
			}
			assertSVMBitwise(t, seq, ref)

			o := opt
			o.Exec = core.Exec{Backend: core.BackendMulticore, Workers: 3}
			mc, err := core.SVM(a, d.B, o)
			if err != nil {
				t.Fatal(err)
			}
			assertSVMBitwise(t, mc, ref)
		})
	}

	t.Run("reassoc-tolerance", func(t *testing.T) {
		testmatrix.WithKernelSet(t, "reassoc")
		res, err := core.SVM(a, d.B, opt)
		if err != nil {
			t.Fatal(err)
		}
		if rd := testmatrix.RelDiff(res.Primal, ref.Primal); rd > 1e-6 {
			t.Fatalf("reassoc primal drifted: %.17g vs %.17g (rel %.3e)",
				res.Primal, ref.Primal, rd)
		}
	})
}
