package stream

import (
	"bytes"
	"testing"

	"saco/internal/core"
	"saco/internal/datagen"
	"saco/internal/libsvm"
)

// benchDataset builds a small out-of-core fixture once per benchmark.
func benchDataset(b *testing.B, m, n, blockRows int) (*Dataset, []float64) {
	b.Helper()
	d := datagen.Regression("bench", 13, m, n, 0.05, 10, 0.1)
	var buf bytes.Buffer
	if err := libsvm.Write(&buf, d.AsCSR(), d.B); err != nil {
		b.Fatal(err)
	}
	ds, err := Build(&buf, b.TempDir(), BuildOptions{BlockRows: blockRows, Features: n})
	if err != nil {
		b.Fatal(err)
	}
	return ds, d.B
}

// BenchmarkBlockPass measures one prefetched sequential epoch over the
// shards — the raw streaming substrate cost.
func BenchmarkBlockPass(b *testing.B) {
	ds, _ := benchDataset(b, 2048, 256, 256)
	it := ds.Blocks()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it.Reset()
		nnz := int64(0)
		for it.Next() {
			nnz += int64(it.Block().A.NNZ())
		}
		if err := it.Err(); err != nil {
			b.Fatal(err)
		}
		if nnz != ds.NNZ() {
			b.Fatalf("pass saw %d nonzeros, want %d", nnz, ds.NNZ())
		}
	}
}

// BenchmarkLassoStream runs the s-step Lasso over the streaming column
// view, the end-to-end out-of-core solver path.
func BenchmarkLassoStream(b *testing.B) {
	ds, labels := benchDataset(b, 2048, 256, 256)
	lam := 0.1 * core.LambdaMaxL1(ds.Cols(), labels)
	iters := 64
	if testing.Short() {
		iters = 16
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Lasso(ds.Cols(), labels, core.LassoOptions{
			Lambda: lam, Iters: iters, S: 8, BlockSize: 4, Seed: 1,
		}); err != nil {
			b.Fatal(err)
		}
	}
}
