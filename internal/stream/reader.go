package stream

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"saco/internal/libsvm"
	"saco/internal/sparse"
)

// BuildOptions configures an out-of-core ingestion.
type BuildOptions struct {
	// BlockRows is the rows-per-shard spill threshold; 0 means 8192.
	BlockRows int
	// Features declares the column count; 0 infers it from the largest
	// index seen (like libsvm.Read).
	Features int
	// CacheShards is the loaded-shard budget of the dataset's views;
	// values below 2 (one consumed + one prefetched) are raised to 2.
	CacheShards int
	// Layout selects row-major (LayoutCSR, the zero value) or
	// column-major (LayoutCSC) shards. Column solves over a CSC store
	// skip the per-load CSR→CSC conversion entirely.
	Layout Layout
	// Codec selects fixed-width (CodecRaw, the zero value) or
	// delta-varint (CodecDelta) shard sections.
	Codec Codec
}

func (o BuildOptions) withDefaults() BuildOptions {
	if o.BlockRows <= 0 {
		o.BlockRows = 8192
	}
	if o.CacheShards < defaultCacheShards {
		o.CacheShards = defaultCacheShards
	}
	return o
}

// Build ingests a LIBSVM stream into dir in bounded memory: rows are
// parsed with the same grammar as libsvm.Read (shared libsvm.RowParser,
// so both paths accept and reject identical inputs) and spilled to CSR
// shards of BlockRows rows. Unlike the in-memory reader there is no row
// length cap — lines grow as needed — and peak memory is one block plus
// the label vector.
func Build(r io.Reader, dir string, opt BuildOptions) (*Dataset, error) {
	return build(r, dir, opt, 0, 0)
}

// build is Build plus the source-identity stamp BuildFile records so
// cache reuse can detect a stale or foreign shard directory.
func build(r io.Reader, dir string, opt BuildOptions, srcSize, srcMTime int64) (*Dataset, error) {
	opt = opt.withDefaults()
	if dir == "" {
		return nil, fmt.Errorf("stream: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	d := &Dataset{
		dir: dir, n: opt.Features, blockRows: opt.BlockRows,
		layout: opt.Layout, codec: opt.Codec,
		srcSize: srcSize, srcMTime: srcMTime,
	}

	var (
		br     = bufio.NewReaderSize(r, 1<<20)
		line   []byte
		lineNo int
		parser libsvm.RowParser
		maxCol = -1

		// One block of CSR under construction.
		rowPtr = make([]int, 1, opt.BlockRows+1)
		colIdx []int
		vals   []float64
	)
	flush := func() error {
		rows := len(rowPtr) - 1
		if rows == 0 {
			return nil
		}
		info := ShardInfo{Row0: d.m, Rows: rows, NNZ: int64(len(vals))}
		block := shardBlock{csr: &sparse.CSR{M: rows, RowPtr: rowPtr, ColIdx: colIdx, Val: vals}}
		if opt.Layout == LayoutCSC {
			// Transpose the block before it spills — the same counting
			// transpose a CSR store pays per load, paid once at ingest.
			block = shardBlock{csc: cscFromBlock(rowPtr, colIdx, vals)}
		}
		if err := writeShard(shardPath(dir, len(d.shards)), opt.Layout, opt.Codec, block); err != nil {
			return err
		}
		d.shards = append(d.shards, info)
		d.m += rows
		d.nnz += info.NNZ
		rowPtr = rowPtr[:1]
		colIdx = colIdx[:0]
		vals = vals[:0]
		return nil
	}

	for {
		var err error
		line, err = readLine(br, line[:0])
		if err == io.EOF && len(line) == 0 {
			break
		}
		if err != nil && err != io.EOF {
			return nil, fmt.Errorf("stream: %v", err)
		}
		atEOF := err == io.EOF
		lineNo++
		text := string(line) // one conversion shared by Skip and Parse
		if !libsvm.Skip(text) {
			label, perr := parser.Parse(text, lineNo)
			if perr != nil {
				return nil, perr
			}
			d.B = append(d.B, label)
			colIdx = append(colIdx, parser.Cols...)
			vals = append(vals, parser.Vals...)
			rowPtr = append(rowPtr, len(vals))
			if c := parser.MaxCol(); c > maxCol {
				maxCol = c
			}
			if len(rowPtr)-1 == opt.BlockRows {
				if err := flush(); err != nil {
					return nil, err
				}
			}
		}
		if atEOF {
			break
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}

	if maxCol >= MaxFeatures {
		return nil, fmt.Errorf("stream: index %d exceeds the shard format's %d-feature cap", maxCol+1, MaxFeatures)
	}
	if d.n == 0 {
		d.n = maxCol + 1
	} else if maxCol >= d.n {
		return nil, fmt.Errorf("libsvm: index %d exceeds declared features %d", maxCol+1, d.n)
	}
	d.cache = newShardCache(d, opt.CacheShards)
	if err := writeManifest(d); err != nil {
		return nil, err
	}
	return d, nil
}

// BuildFile ingests a LIBSVM file from disk into dir, recording the
// file's size and modification time in the manifest so SourceMatches
// can catch reuse of the cache against different data.
func BuildFile(path, dir string, opt BuildOptions) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() //saco:nolint commerr read-only fd; a close failure after a successful read cannot lose data
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	return build(f, dir, opt, st.Size(), st.ModTime().UnixNano())
}

// readLine appends one line (without the terminator) to dst, growing
// past the reader's buffer as needed — this is what lets the streaming
// path accept rows wider than the in-memory reader's 64 MiB scanner
// cap. It returns io.EOF with the final unterminated line, if any.
func readLine(br *bufio.Reader, dst []byte) ([]byte, error) {
	for {
		chunk, err := br.ReadSlice('\n')
		dst = append(dst, chunk...)
		switch err {
		case nil:
			if len(dst) > 0 && dst[len(dst)-1] == '\n' {
				dst = dst[:len(dst)-1]
			}
			if len(dst) > 0 && dst[len(dst)-1] == '\r' {
				dst = dst[:len(dst)-1]
			}
			return dst, nil
		case bufio.ErrBufferFull:
			continue
		default:
			return dst, err
		}
	}
}
