// Package stream is the out-of-core dataset layer between LIBSVM files
// on disk and the solver stack: it ingests arbitrarily large inputs in
// bounded memory by spilling contiguous row blocks ("shards") to a
// compact binary format, and exposes the result through
//
//   - BlockIterator — sequential multi-epoch passes over CSR shards
//     with a double-buffered background prefetch;
//   - Dataset.Cols() — a core.ColMatrix whose kernels stream the shards
//     and thread every accumulator through the blocks in row order, so
//     the (sequential-backend) Lasso CD/BCD trajectory is bitwise
//     identical to the in-memory sparse.CSC run;
//   - Dataset.Rows() — a core.RowMatrix for the dual-CD SVM solvers,
//     gathering sampled rows shard by shard;
//   - Dataset.RowsCSC / Dataset.ColsCSR — the dist.Source block loaders
//     of the simulated cluster, so paper-scale replicas need never
//     materialize the full CSR.
//
// Streaming v2 adds three orthogonal knobs, all preserving the bitwise
// contract:
//
//   - Layout: shards spill row-major (LayoutCSR) or column-major
//     (LayoutCSC). A CSC store is decoded natively by the column views,
//     so streamed Lasso runs perform zero CSR→CSC conversions
//     (CacheStats.Conversions counts the cross-layout loads that remain).
//   - Codec: CodecRaw fixed-width sections, or CodecDelta varint
//     segment lengths / index deltas / byte-reversed value bits —
//     roughly half the shard bytes on url-like skewed inputs, exact
//     round-trip either way.
//   - ReadMode: ReadCopy loads shard files through a transient heap
//     buffer; ReadMmap maps them and decodes in place, serving the raw
//     vals section as a zero-copy []float64 where alignment and
//     endianness allow. Mmap falls back to copy reads gracefully
//     (unsupported platform or a failing map), and both modes drive the
//     LRU/prefetch cache through identical decisions — CacheStats is
//     the proof hook the parity tests use.
//
// The memory model: peak resident matrix data ≈ CacheShards blocks
// (default 2: the block in use plus the prefetched one) regardless of
// file size, plus solver state (iterate vectors and the s·µ batch).
// This is the substrate the ROADMAP's "out-of-core / streaming datasets
// for cmd/sasolve" item asks for; the 1D-row partitioning mirrors the
// paper's Fig. 1 layout, with shards standing in for ranks' row blocks.
package stream

import (
	"fmt"
	"os"
	"sync"

	"saco/internal/sparse"
)

// defaultCacheShards is the default loaded-shard budget: the shard being
// consumed plus one being prefetched.
const defaultCacheShards = 2

// ReadMode selects how shard bytes reach the decoder.
type ReadMode uint8

const (
	// ReadCopy reads each shard file into a transient buffer (the
	// historical path; works everywhere).
	ReadCopy ReadMode = iota
	// ReadMmap maps shard files and decodes from the mapping, serving
	// raw-codec vals sections zero-copy. Falls back to ReadCopy when the
	// platform has no mmap or a map fails (CacheStats.MmapFallbacks).
	ReadMmap
)

// String names the read mode for flags and reports.
func (m ReadMode) String() string {
	if m == ReadMmap {
		return "mmap"
	}
	return "copy"
}

// ShardInfo locates one spilled row block.
type ShardInfo struct {
	// Row0 is the shard's first global row.
	Row0 int
	// Rows is the shard's row count (BlockRows except for the last).
	Rows int
	// NNZ is the shard's stored nonzero count.
	NNZ int64
}

// CacheStats is a snapshot of the shard cache's decision counters. The
// parity tests use it two ways: Conversions == 0 proves a column solve
// over a CSC store never materialized a CSR→CSC conversion, and equal
// snapshots across ReadCopy and ReadMmap runs prove the two read paths
// take identical cache decisions.
type CacheStats struct {
	// Hits counts requests satisfied by a resident entry.
	Hits uint64
	// Misses counts requests that had to produce an entry (by draining
	// the in-flight prefetch or loading synchronously).
	Misses uint64
	// Loads counts shard files actually read and decoded (synchronous
	// loads plus prefetch loads). A sequential pass that never discards
	// a prefetch has Loads == Misses — the "prefetch never double-reads"
	// invariant.
	Loads uint64
	// Evictions counts entries dropped over the budget.
	Evictions uint64
	// PrefetchStarts counts background loads launched; PrefetchHits
	// counts misses satisfied by draining one.
	PrefetchStarts uint64
	PrefetchHits   uint64
	// Conversions counts cross-layout decodes (CSR shard asked for as
	// CSC or vice versa) — zero when views match the store layout.
	Conversions uint64
	// MmapFallbacks counts shard loads that wanted ReadMmap but fell
	// back to a copy read.
	MmapFallbacks uint64
}

// Dataset is an out-of-core LIBSVM dataset: labels resident, matrix
// spilled to row-block shards under a cache directory.
type Dataset struct {
	dir       string
	m, n      int
	nnz       int64
	blockRows int
	layout    Layout
	codec     Codec
	shards    []ShardInfo

	// srcSize/srcMTime identify the source file of a BuildFile
	// ingestion (0 when built from a generic reader); see SourceMatches.
	srcSize  int64
	srcMTime int64

	// B is the label vector (resident).
	B []float64

	cache *shardCache
}

// Open loads the manifest of a dataset previously built into dir.
func Open(dir string) (*Dataset, error) { return readManifest(dir) }

// Dims returns (rows, columns).
func (d *Dataset) Dims() (int, int) { return d.m, d.n }

// NNZ returns the stored nonzero count.
func (d *Dataset) NNZ() int64 { return d.nnz }

// Density returns NNZ/(M·N).
func (d *Dataset) Density() float64 {
	if d.m == 0 || d.n == 0 {
		return 0
	}
	return float64(d.nnz) / (float64(d.m) * float64(d.n))
}

// NumShards returns the spilled block count.
func (d *Dataset) NumShards() int { return len(d.shards) }

// BlockRows returns the rows-per-shard of the build.
func (d *Dataset) BlockRows() int { return d.blockRows }

// Shards returns the shard table.
func (d *Dataset) Shards() []ShardInfo { return d.shards }

// Dir returns the cache directory holding the shards and manifest.
func (d *Dataset) Dir() string { return d.dir }

// Layout returns the store's shard arrangement (row- or column-major).
func (d *Dataset) Layout() Layout { return d.layout }

// Codec returns the store's shard section encoding.
func (d *Dataset) Codec() Codec { return d.codec }

// ShardBytes returns the total on-disk size of the shard files — the
// number the delta codec roughly halves on url-like inputs.
func (d *Dataset) ShardBytes() (int64, error) {
	var total int64
	for i := range d.shards {
		st, err := os.Stat(shardPath(d.dir, i))
		if err != nil {
			return 0, err
		}
		total += st.Size()
	}
	return total, nil
}

// SetReadMode selects copy or mmap shard reads for every view of this
// dataset. Switching modes does not invalidate resident entries; it
// applies to subsequent loads. ReadMmap on a platform without mmap
// support degrades to copy reads per shard (counted in CacheStats).
func (d *Dataset) SetReadMode(m ReadMode) { d.cache.setReadMode(m) }

// ReadMode returns the configured read mode.
func (d *Dataset) ReadMode() ReadMode { return d.cache.readMode() }

// CacheStats returns a snapshot of the shard cache counters.
func (d *Dataset) CacheStats() CacheStats { return d.cache.stats() }

// Close releases every retained shard mapping. Views handed out earlier
// may alias mapped memory (the zero-copy vals path), so Close must only
// run once no decoded block is in use; a Dataset is otherwise free of
// resources (shard files are opened per load). Closing twice is safe.
func (d *Dataset) Close() error { return d.cache.close() }

// SourceMatches reports whether path looks like the file this dataset
// was ingested from (same size and modification time). It returns true
// when the manifest recorded no source (built from a generic reader),
// in which case reuse is the caller's judgement call.
func (d *Dataset) SourceMatches(path string) bool {
	if d.srcSize == 0 && d.srcMTime == 0 {
		return true
	}
	st, err := os.Stat(path)
	if err != nil {
		return false
	}
	return st.Size() == d.srcSize && st.ModTime().UnixNano() == d.srcMTime
}

// SetCacheShards sets the loaded-shard budget of the views (minimum 2:
// one consumed, one prefetched). Larger budgets help the row views,
// whose sampled accesses are not sequential.
func (d *Dataset) SetCacheShards(k int) { d.cache.setMax(k) }

// locate maps a global row to (shard index, local row). Shards hold
// exactly blockRows rows apart from the last, so this is a division.
func (d *Dataset) locate(i int) (int, int) {
	if i < 0 || i >= d.m {
		panic(fmt.Sprintf("stream: row %d out of range [0,%d)", i, d.m))
	}
	si := i / d.blockRows
	return si, i - d.shards[si].Row0
}

// shardCache is the bounded LRU of decoded shards shared by every view
// of a Dataset, with a single-slot background prefetch for sequential
// passes. Each entry holds the shard in its stored layout; the
// cross-layout form is converted lazily per entry and counted. Entries
// handed out remain valid after eviction (eviction only drops the cache
// reference); retained mmap regions live until Dataset.Close.
type shardCache struct {
	d *Dataset

	mu      sync.Mutex
	max     int
	mode    ReadMode
	entries map[int]*cacheEntry
	tick    int64
	st      CacheStats

	pfIdx int                 // shard index of the in-flight prefetch, -1 if none
	pfCh  chan prefetchResult // buffered(1); producer sends exactly once

	// regions are the retained mmap regions of zero-copy decodes,
	// released at Close. Eviction cannot release them: handed-out blocks
	// alias the mapped vals.
	regions [][]byte
}

type cacheEntry struct {
	block shardBlock
	used  int64
}

// csrOf returns the entry's row-major form, converting (and caching the
// conversion) on first cross-layout use.
func (e *cacheEntry) csrOf(c *shardCache) *sparse.CSR {
	if e.block.csr == nil {
		e.block.csr = e.block.csc.ToCSR()
		c.st.Conversions++
	}
	return e.block.csr
}

// cscOf is the column-major mirror of csrOf.
func (e *cacheEntry) cscOf(c *shardCache) *sparse.CSC {
	if e.block.csc == nil {
		e.block.csc = e.block.csr.ToCSC()
		c.st.Conversions++
	}
	return e.block.csc
}

type prefetchResult struct {
	idx    int
	block  shardBlock
	region []byte // retained mapping, nil unless the decode aliased it
	err    error
}

func newShardCache(d *Dataset, max int) *shardCache {
	return &shardCache{d: d, max: max, entries: make(map[int]*cacheEntry), pfIdx: -1}
}

func (c *shardCache) setMax(k int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if k < defaultCacheShards {
		k = defaultCacheShards
	}
	c.max = k
	c.evictLocked(-1)
}

func (c *shardCache) setReadMode(m ReadMode) {
	c.mu.Lock()
	c.mode = m
	c.mu.Unlock()
}

func (c *shardCache) readMode() ReadMode {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mode
}

func (c *shardCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.st
}

// close drains any in-flight prefetch and unmaps retained regions.
func (c *shardCache) close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.pfIdx >= 0 {
		res := <-c.pfCh
		c.pfIdx = -1
		if res.region != nil {
			c.regions = append(c.regions, res.region)
		}
	}
	clear(c.entries)
	var first error
	for _, r := range c.regions {
		if err := munmapFile(r); err != nil && first == nil {
			first = err
		}
	}
	c.regions = nil
	return first
}

// loadShard reads and decodes shard i under the given read mode. It
// touches no cache state (prefetch goroutines call it without c.mu);
// counter updates for fallbacks are deferred to the caller via the
// returned region/fallback flags.
func (c *shardCache) loadShard(i int, mode ReadMode) (block shardBlock, region []byte, fellBack bool, err error) {
	path := shardPath(c.d.dir, i)
	if mode == ReadMmap {
		data, merr := mmapFile(path)
		if merr == nil {
			block, refs, derr := decodeShard(data, c.d.n, true)
			if derr != nil {
				munmapFile(data)
				return shardBlock{}, nil, false, fmt.Errorf("stream: %s: %v", path, derr)
			}
			if refs {
				return block, data, false, nil
			}
			// Nothing aliases the mapping (delta codec, or an empty
			// shard): release it immediately.
			munmapFile(data)
			return block, nil, false, nil
		}
		if !mmapSupported {
			// Expected on these platforms; degrade quietly.
			block, err := readShardFile(path, c.d.n)
			return block, nil, true, err
		}
		// A real mmap failure on a supporting platform: fall back, but
		// count it so operators can see the degradation.
		block, err := readShardFile(path, c.d.n)
		return block, nil, true, err
	}
	block, err = readShardFile(path, c.d.n)
	return block, nil, false, err
}

// getCSR returns shard i decoded as CSR. sequential marks accesses that
// walk shards in order: they consume the prefetched block and schedule
// the next one ((i+1) mod shards, so multi-epoch passes wrap warm).
func (c *shardCache) getCSR(i int, sequential bool) (*sparse.CSR, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, err := c.entryLocked(i)
	if err != nil {
		return nil, err
	}
	if sequential && len(c.d.shards) > 1 {
		c.prefetchLocked((i + 1) % len(c.d.shards))
	}
	return e.csrOf(c), nil
}

// getCSC returns shard i decoded as CSC — natively for a LayoutCSC
// store, converting (and caching the conversion) on a CSR store.
func (c *shardCache) getCSC(i int, sequential bool) (*sparse.CSC, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, err := c.entryLocked(i)
	if err != nil {
		return nil, err
	}
	if sequential && len(c.d.shards) > 1 {
		c.prefetchLocked((i + 1) % len(c.d.shards))
	}
	return e.cscOf(c), nil
}

// entryLocked resolves shard i: cache hit, draining the in-flight
// prefetch, or a synchronous load.
func (c *shardCache) entryLocked(i int) (*cacheEntry, error) {
	c.tick++
	if e, ok := c.entries[i]; ok {
		e.used = c.tick
		c.st.Hits++
		return e, nil
	}
	c.st.Misses++
	if c.pfIdx >= 0 {
		if c.pfIdx == i {
			// The in-flight load is exactly this shard: wait for it (the
			// producer holds no locks and sends exactly once).
			res := <-c.pfCh
			c.pfIdx = -1
			if res.err != nil {
				return nil, res.err
			}
			c.st.PrefetchHits++
			c.bankRegionLocked(res.region)
			return c.insertLocked(i, res.block), nil
		}
		// An unrelated prefetch is in flight: bank it if it already
		// finished, but never block this consumer (or, through c.mu,
		// every other one) behind a disk read nobody here asked for.
		select {
		case res := <-c.pfCh:
			c.pfIdx = -1
			if res.err == nil {
				c.bankRegionLocked(res.region)
				c.insertLocked(res.idx, res.block)
			}
		default:
		}
	}
	c.st.Loads++
	block, region, fellBack, err := c.loadShard(i, c.mode)
	if err != nil {
		c.st.Loads-- // the failed read produced no decoded shard
		return nil, err
	}
	if fellBack {
		c.st.MmapFallbacks++
	}
	c.bankRegionLocked(region)
	return c.insertLocked(i, block), nil
}

// bankRegionLocked retains a mapping that a decoded block aliases.
func (c *shardCache) bankRegionLocked(region []byte) {
	if region != nil {
		c.regions = append(c.regions, region)
	}
}

func (c *shardCache) insertLocked(i int, block shardBlock) *cacheEntry {
	e := &cacheEntry{block: block, used: c.tick}
	c.entries[i] = e
	c.evictLocked(i)
	return e
}

// evictLocked drops least-recently-used entries above the budget,
// sparing keep (the entry just produced). Victim selection tie-breaks
// on the lower shard index so the choice — and therefore the cache's
// load/eviction counters — is identical on every run even when two
// entries share a use tick; map iteration order never leaks out.
func (c *shardCache) evictLocked(keep int) {
	for len(c.entries) > c.max {
		victim, oldest := -1, int64(1<<62)
		//saco:nolint mapiter min-selection with a deterministic (used, idx) tie-break: the result is iteration-order-invariant
		for idx, e := range c.entries {
			if idx != keep && (e.used < oldest || (e.used == oldest && idx < victim)) {
				victim, oldest = idx, e.used
			}
		}
		if victim < 0 {
			return
		}
		delete(c.entries, victim)
		c.st.Evictions++
	}
}

// prefetchLocked starts a background load of shard i if it is neither
// cached nor already in flight. One slot: sequential passes only ever
// need the next block.
func (c *shardCache) prefetchLocked(i int) {
	if c.pfIdx >= 0 {
		return
	}
	if _, ok := c.entries[i]; ok {
		return
	}
	c.pfIdx = i
	c.st.PrefetchStarts++
	c.st.Loads++
	ch := make(chan prefetchResult, 1)
	c.pfCh = ch
	mode := c.mode
	go func() {
		block, region, _, err := c.loadShard(i, mode)
		ch <- prefetchResult{idx: i, block: block, region: region, err: err}
	}()
}

// forEachCSC streams every shard in row order as CSC, slicing nothing:
// f receives the shard's global row range. Used by the column views; a
// load failure is returned to the caller.
func (d *Dataset) forEachCSC(f func(info ShardInfo, a *sparse.CSC)) error {
	for i, info := range d.shards {
		a, err := d.cache.getCSC(i, true)
		if err != nil {
			return err
		}
		f(info, a)
	}
	return nil
}

// forEachCSR is forEachCSC in the row-major decoded form.
func (d *Dataset) forEachCSR(f func(info ShardInfo, a *sparse.CSR)) error {
	for i, info := range d.shards {
		a, err := d.cache.getCSR(i, true)
		if err != nil {
			return err
		}
		f(info, a)
	}
	return nil
}

// Block is one CSR row block of a sequential pass. A keeps the global
// column space; Row0 places it in the full matrix.
type Block struct {
	Row0 int
	A    *sparse.CSR
}

// BlockIterator walks the shards in row order, scanner-style:
//
//	it := d.Blocks()
//	for it.Next() {
//	    blk := it.Block()
//	    ...
//	}
//	if err := it.Err(); err != nil { ... }
//
// The underlying cache prefetches the next shard while the current one
// is consumed; Reset rewinds for another epoch (warm, because the
// prefetch wraps around).
type BlockIterator struct {
	d   *Dataset
	i   int
	cur Block
	err error
}

// Blocks returns a sequential iterator over the shards.
func (d *Dataset) Blocks() *BlockIterator { return &BlockIterator{d: d} }

// Next advances to the next block, reporting whether one is available.
func (it *BlockIterator) Next() bool {
	if it.err != nil || it.i >= len(it.d.shards) {
		return false
	}
	a, err := it.d.cache.getCSR(it.i, true)
	if err != nil {
		it.err = err
		return false
	}
	it.cur = Block{Row0: it.d.shards[it.i].Row0, A: a}
	it.i++
	return true
}

// Block returns the current block (valid after a true Next).
func (it *BlockIterator) Block() Block { return it.cur }

// Err returns the first load error, if any.
func (it *BlockIterator) Err() error { return it.err }

// Reset rewinds the iterator for another epoch.
func (it *BlockIterator) Reset() { it.i = 0; it.err = nil }

// mustLoad converts a shard-load failure inside a matrix kernel (whose
// interface has no error return) into a panic with context; the shards
// were written by this process, so failures here mean the cache
// directory was disturbed mid-solve.
func mustLoad[T any](v T, err error) T {
	if err != nil {
		panic(fmt.Sprintf("stream: shard load failed mid-solve: %v", err))
	}
	return v
}
