// Package stream is the out-of-core dataset layer between LIBSVM files
// on disk and the solver stack: it ingests arbitrarily large inputs in
// bounded memory by spilling contiguous row blocks ("shards") to a
// compact binary format, and exposes the result through
//
//   - BlockIterator — sequential multi-epoch passes over CSR shards
//     with a double-buffered background prefetch;
//   - Dataset.Cols() — a core.ColMatrix whose kernels stream the shards
//     and thread every accumulator through the blocks in row order, so
//     the (sequential-backend) Lasso CD/BCD trajectory is bitwise
//     identical to the in-memory sparse.CSC run;
//   - Dataset.Rows() — a core.RowMatrix for the dual-CD SVM solvers,
//     gathering sampled rows shard by shard;
//   - Dataset.RowsCSC / Dataset.ColsCSR — the dist.Source block loaders
//     of the simulated cluster, so paper-scale replicas need never
//     materialize the full CSR.
//
// The memory model: peak resident matrix data ≈ CacheShards blocks
// (default 2: the block in use plus the prefetched one) regardless of
// file size, plus solver state (iterate vectors and the s·µ batch).
// This is the substrate the ROADMAP's "out-of-core / streaming datasets
// for cmd/sasolve" item asks for; the 1D-row partitioning mirrors the
// paper's Fig. 1 layout, with shards standing in for ranks' row blocks.
package stream

import (
	"fmt"
	"os"
	"sync"

	"saco/internal/sparse"
)

// defaultCacheShards is the default loaded-shard budget: the shard being
// consumed plus one being prefetched.
const defaultCacheShards = 2

// ShardInfo locates one spilled row block.
type ShardInfo struct {
	// Row0 is the shard's first global row.
	Row0 int
	// Rows is the shard's row count (BlockRows except for the last).
	Rows int
	// NNZ is the shard's stored nonzero count.
	NNZ int64
}

// Dataset is an out-of-core LIBSVM dataset: labels resident, matrix
// spilled to row-block shards under a cache directory.
type Dataset struct {
	dir       string
	m, n      int
	nnz       int64
	blockRows int
	shards    []ShardInfo

	// srcSize/srcMTime identify the source file of a BuildFile
	// ingestion (0 when built from a generic reader); see SourceMatches.
	srcSize  int64
	srcMTime int64

	// B is the label vector (resident).
	B []float64

	cache *shardCache
}

// Open loads the manifest of a dataset previously built into dir.
func Open(dir string) (*Dataset, error) { return readManifest(dir) }

// Dims returns (rows, columns).
func (d *Dataset) Dims() (int, int) { return d.m, d.n }

// NNZ returns the stored nonzero count.
func (d *Dataset) NNZ() int64 { return d.nnz }

// Density returns NNZ/(M·N).
func (d *Dataset) Density() float64 {
	if d.m == 0 || d.n == 0 {
		return 0
	}
	return float64(d.nnz) / (float64(d.m) * float64(d.n))
}

// NumShards returns the spilled block count.
func (d *Dataset) NumShards() int { return len(d.shards) }

// BlockRows returns the rows-per-shard of the build.
func (d *Dataset) BlockRows() int { return d.blockRows }

// Shards returns the shard table.
func (d *Dataset) Shards() []ShardInfo { return d.shards }

// Dir returns the cache directory holding the shards and manifest.
func (d *Dataset) Dir() string { return d.dir }

// SourceMatches reports whether path looks like the file this dataset
// was ingested from (same size and modification time). It returns true
// when the manifest recorded no source (built from a generic reader),
// in which case reuse is the caller's judgement call.
func (d *Dataset) SourceMatches(path string) bool {
	if d.srcSize == 0 && d.srcMTime == 0 {
		return true
	}
	st, err := os.Stat(path)
	if err != nil {
		return false
	}
	return st.Size() == d.srcSize && st.ModTime().UnixNano() == d.srcMTime
}

// SetCacheShards sets the loaded-shard budget of the views (minimum 2:
// one consumed, one prefetched). Larger budgets help the row views,
// whose sampled accesses are not sequential.
func (d *Dataset) SetCacheShards(k int) { d.cache.setMax(k) }

// locate maps a global row to (shard index, local row). Shards hold
// exactly blockRows rows apart from the last, so this is a division.
func (d *Dataset) locate(i int) (int, int) {
	if i < 0 || i >= d.m {
		panic(fmt.Sprintf("stream: row %d out of range [0,%d)", i, d.m))
	}
	si := i / d.blockRows
	return si, i - d.shards[si].Row0
}

// shardCache is the bounded LRU of decoded shards shared by every view
// of a Dataset, with a single-slot background prefetch for sequential
// passes. CSR is the decoded form; the column views attach a lazily
// converted CSC per entry. Entries handed out remain valid after
// eviction (eviction only drops the cache reference).
type shardCache struct {
	d *Dataset

	mu      sync.Mutex
	max     int
	entries map[int]*cacheEntry
	tick    int64

	pfIdx int                 // shard index of the in-flight prefetch, -1 if none
	pfCh  chan prefetchResult // buffered(1); producer sends exactly once
}

type cacheEntry struct {
	csr  *sparse.CSR
	csc  *sparse.CSC
	used int64
}

type prefetchResult struct {
	idx int
	csr *sparse.CSR
	err error
}

func newShardCache(d *Dataset, max int) *shardCache {
	return &shardCache{d: d, max: max, entries: make(map[int]*cacheEntry), pfIdx: -1}
}

func (c *shardCache) setMax(k int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if k < defaultCacheShards {
		k = defaultCacheShards
	}
	c.max = k
	c.evictLocked(-1)
}

// getCSR returns shard i decoded as CSR. sequential marks accesses that
// walk shards in order: they consume the prefetched block and schedule
// the next one ((i+1) mod shards, so multi-epoch passes wrap warm).
func (c *shardCache) getCSR(i int, sequential bool) (*sparse.CSR, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, err := c.entryLocked(i)
	if err != nil {
		return nil, err
	}
	if sequential && len(c.d.shards) > 1 {
		c.prefetchLocked((i + 1) % len(c.d.shards))
	}
	return e.csr, nil
}

// getCSC returns shard i decoded as CSC, converting (and caching the
// conversion) on first use.
func (c *shardCache) getCSC(i int, sequential bool) (*sparse.CSC, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, err := c.entryLocked(i)
	if err != nil {
		return nil, err
	}
	if e.csc == nil {
		e.csc = e.csr.ToCSC()
	}
	if sequential && len(c.d.shards) > 1 {
		c.prefetchLocked((i + 1) % len(c.d.shards))
	}
	return e.csc, nil
}

// entryLocked resolves shard i: cache hit, draining the in-flight
// prefetch, or a synchronous load.
func (c *shardCache) entryLocked(i int) (*cacheEntry, error) {
	c.tick++
	if e, ok := c.entries[i]; ok {
		e.used = c.tick
		return e, nil
	}
	if c.pfIdx >= 0 {
		if c.pfIdx == i {
			// The in-flight load is exactly this shard: wait for it (the
			// producer holds no locks and sends exactly once).
			res := <-c.pfCh
			c.pfIdx = -1
			if res.err != nil {
				return nil, res.err
			}
			return c.insertLocked(i, res.csr), nil
		}
		// An unrelated prefetch is in flight: bank it if it already
		// finished, but never block this consumer (or, through c.mu,
		// every other one) behind a disk read nobody here asked for.
		select {
		case res := <-c.pfCh:
			c.pfIdx = -1
			if res.err == nil {
				c.insertLocked(res.idx, res.csr)
			}
		default:
		}
	}
	csr, err := readShard(shardPath(c.d.dir, i), c.d.n)
	if err != nil {
		return nil, err
	}
	return c.insertLocked(i, csr), nil
}

func (c *shardCache) insertLocked(i int, csr *sparse.CSR) *cacheEntry {
	e := &cacheEntry{csr: csr, used: c.tick}
	c.entries[i] = e
	c.evictLocked(i)
	return e
}

// evictLocked drops least-recently-used entries above the budget,
// sparing keep (the entry just produced).
func (c *shardCache) evictLocked(keep int) {
	for len(c.entries) > c.max {
		victim, oldest := -1, int64(1<<62)
		for idx, e := range c.entries {
			if idx != keep && e.used < oldest {
				victim, oldest = idx, e.used
			}
		}
		if victim < 0 {
			return
		}
		delete(c.entries, victim)
	}
}

// prefetchLocked starts a background load of shard i if it is neither
// cached nor already in flight. One slot: sequential passes only ever
// need the next block.
func (c *shardCache) prefetchLocked(i int) {
	if c.pfIdx >= 0 {
		return
	}
	if _, ok := c.entries[i]; ok {
		return
	}
	c.pfIdx = i
	ch := make(chan prefetchResult, 1)
	c.pfCh = ch
	path, n := shardPath(c.d.dir, i), c.d.n
	go func() {
		csr, err := readShard(path, n)
		ch <- prefetchResult{idx: i, csr: csr, err: err}
	}()
}

// forEachCSC streams every shard in row order as CSC, slicing nothing:
// f receives the shard's global row range. Used by the column views; a
// load failure is returned to the caller.
func (d *Dataset) forEachCSC(f func(info ShardInfo, a *sparse.CSC)) error {
	for i, info := range d.shards {
		a, err := d.cache.getCSC(i, true)
		if err != nil {
			return err
		}
		f(info, a)
	}
	return nil
}

// forEachCSR is forEachCSC in the row-major decoded form.
func (d *Dataset) forEachCSR(f func(info ShardInfo, a *sparse.CSR)) error {
	for i, info := range d.shards {
		a, err := d.cache.getCSR(i, true)
		if err != nil {
			return err
		}
		f(info, a)
	}
	return nil
}

// Block is one CSR row block of a sequential pass. A keeps the global
// column space; Row0 places it in the full matrix.
type Block struct {
	Row0 int
	A    *sparse.CSR
}

// BlockIterator walks the shards in row order, scanner-style:
//
//	it := d.Blocks()
//	for it.Next() {
//	    blk := it.Block()
//	    ...
//	}
//	if err := it.Err(); err != nil { ... }
//
// The underlying cache prefetches the next shard while the current one
// is consumed; Reset rewinds for another epoch (warm, because the
// prefetch wraps around).
type BlockIterator struct {
	d   *Dataset
	i   int
	cur Block
	err error
}

// Blocks returns a sequential iterator over the shards.
func (d *Dataset) Blocks() *BlockIterator { return &BlockIterator{d: d} }

// Next advances to the next block, reporting whether one is available.
func (it *BlockIterator) Next() bool {
	if it.err != nil || it.i >= len(it.d.shards) {
		return false
	}
	a, err := it.d.cache.getCSR(it.i, true)
	if err != nil {
		it.err = err
		return false
	}
	it.cur = Block{Row0: it.d.shards[it.i].Row0, A: a}
	it.i++
	return true
}

// Block returns the current block (valid after a true Next).
func (it *BlockIterator) Block() Block { return it.cur }

// Err returns the first load error, if any.
func (it *BlockIterator) Err() error { return it.err }

// Reset rewinds the iterator for another epoch.
func (it *BlockIterator) Reset() { it.i = 0; it.err = nil }

// mustLoad converts a shard-load failure inside a matrix kernel (whose
// interface has no error return) into a panic with context; the shards
// were written by this process, so failures here mean the cache
// directory was disturbed mid-solve.
func mustLoad[T any](v T, err error) T {
	if err != nil {
		panic(fmt.Sprintf("stream: shard load failed mid-solve: %v", err))
	}
	return v
}
