package stream

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"math/bits"
	"os"
	"path/filepath"

	"saco/internal/sparse"
)

// On-disk layout, version 2 (all fixed-width fields little-endian).
//
// Shard file (shard-NNNNN.bin) — one contiguous row block, stored either
// row-major (CSR) or column-major (CSC), with a per-shard codec flag:
//
//	magic    [8]byte  "SACOSHv2"
//	layout   uint8    0 = CSR, 1 = CSC
//	codec    uint8    0 = raw, 1 = delta-varint
//	reserved uint16
//	rows     uint32   block row count
//	cols     uint32   stored column width (CSC only; the decoder pads the
//	                  column pointer out to the dataset width, so shards
//	                  never spend bytes on trailing empty columns)
//	nnz      uint64
//	ptrBytes uint64   byte length of the ptr section
//	idxBytes uint64   byte length of the idx section
//	ptr      section  raw: (segments+1) × uint64 offsets
//	                  delta: segments × uvarint segment lengths
//	idx      section  raw: nnz × uint32
//	                  delta: per segment, uvarint(first) then
//	                  uvarint(difference) — indices are strictly
//	                  increasing within a segment, so every difference
//	                  is ≥ 1 and url-like skewed index distributions
//	                  collapse to one byte per entry
//	pad      to an 8-byte boundary
//	vals     section  raw: nnz × float64 IEEE-754 bits (the 8-alignment
//	                  lets the mmap read path serve this section as a
//	                  zero-copy []float64)
//	                  delta: nnz × uvarint(byte-reversed float64 bits) —
//	                  exact (bit-for-bit) for every value, and short for
//	                  the low-entropy values real LIBSVM files hold
//	                  (binary ±1 features, small integers, halves)
//
// A "segment" is a row for CSR shards and a column for CSC shards; its
// idx entries are column indices (CSR) or block-local row indices (CSC).
//
// Version-1 shards ("SACOSHv1": rows uint32, nnz uint64, then fixed-width
// rowptr/colidx/vals) remain readable; new stores always write v2.
//
// Manifest file (manifest.bin), version 2 — dataset metadata plus the
// label vector (labels stay resident; at paper scale they are ~20 MB vs
// ~4 GB of matrix data):
//
//	magic     [8]byte  "SACOSMv2"
//	m, n      uint64
//	nnz       uint64
//	blockRows uint32
//	nshards   uint32
//	srcSize   uint64             source file size (0 = unrecorded)
//	srcMTime  int64              source mtime, unix nanos (0 = unrecorded)
//	layout    uint8
//	codec     uint8
//	reserved  [6]byte
//	shards    nshards × { rows uint32, nnz uint64 }
//	labels    m × float64
//
// Version-1 manifests ("SACOSMv1", no layout/codec trailer) open as
// CSR/raw. Column indices are stored in (at most) 32 bits, which caps the
// feature space at 2³²−1 — 1000× the paper's widest dataset.
const (
	shardMagicV1  = "SACOSHv1"
	shardMagicV2  = "SACOSHv2"
	manifestMagic = "SACOSMv1"
	manifestV2    = "SACOSMv2"
	manifestName  = "manifest.bin"

	shardHeaderV1 = 20
	shardHeaderV2 = 48

	// MaxFeatures is the widest column space the shard encoding holds.
	MaxFeatures = 1<<32 - 1
)

// Layout selects how a shard store arranges each row block on disk.
type Layout uint8

const (
	// LayoutCSR spills row-major shards: row-ptr / col-idx / val. The
	// historical (v1) arrangement; row views decode it natively, column
	// views convert per load.
	LayoutCSR Layout = iota
	// LayoutCSC spills column-major shards: col-ptr / row-idx / val.
	// Column views (the Lasso access pattern) decode it natively with
	// zero CSR→CSC conversions.
	LayoutCSC
)

// String names the layout for flags and reports.
func (l Layout) String() string {
	if l == LayoutCSC {
		return "csc"
	}
	return "csr"
}

// ParseLayout maps a flag value onto a Layout.
func ParseLayout(s string) (Layout, error) {
	switch s {
	case "csr":
		return LayoutCSR, nil
	case "csc":
		return LayoutCSC, nil
	}
	return 0, fmt.Errorf("stream: unknown layout %q (csr, csc)", s)
}

// Codec selects the shard section encoding.
type Codec uint8

const (
	// CodecRaw stores fixed-width sections (uint64 ptr, uint32 idx,
	// float64 vals). The vals section is 8-aligned, which is what lets
	// the mmap read path serve it zero-copy.
	CodecRaw Codec = iota
	// CodecDelta stores varint segment lengths, varint index deltas and
	// varint byte-reversed value bits: exact round-trip, and roughly
	// half the bytes on url-like inputs (skewed indices, low-entropy
	// values).
	CodecDelta
)

// String names the codec for flags and reports.
func (c Codec) String() string {
	if c == CodecDelta {
		return "delta"
	}
	return "raw"
}

// ParseCodec maps a flag value onto a Codec.
func ParseCodec(s string) (Codec, error) {
	switch s {
	case "raw":
		return CodecRaw, nil
	case "delta":
		return CodecDelta, nil
	}
	return 0, fmt.Errorf("stream: unknown codec %q (raw, delta)", s)
}

// shardPath names shard i inside the dataset directory.
func shardPath(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%05d.bin", i))
}

// shardBlock is one decoded (or to-be-encoded) row block in whichever
// arrangement the store's layout dictates: exactly one of csr/csc is
// non-nil.
type shardBlock struct {
	csr *sparse.CSR
	csc *sparse.CSC
}

// encodeShard serializes one row block. For LayoutCSR the block arrives
// as CSR arrays; for LayoutCSC the caller transposes first (cscFromBlock)
// and rowPtr/colIdx are ignored. The encoder builds the whole shard in
// one buffer — the block is already resident, and shard sizes are bounded
// by BlockRows.
func encodeShard(layout Layout, codec Codec, block shardBlock) []byte {
	var (
		segPtr []int // segment offsets (rowPtr or colPtr)
		idx    []int // colIdx or rowIdx
		vals   []float64
		rows   int
		cols   int
	)
	if layout == LayoutCSC {
		a := block.csc
		segPtr, idx, vals, rows, cols = a.ColPtr, a.RowIdx, a.Val, a.M, a.N
	} else {
		a := block.csr
		segPtr, idx, vals, rows = a.RowPtr, a.ColIdx, a.Val, a.M
	}

	var ptrSec, idxSec, valSec []byte
	switch codec {
	case CodecDelta:
		ptrSec = make([]byte, 0, len(segPtr))
		for s := 0; s+1 < len(segPtr); s++ {
			ptrSec = binary.AppendUvarint(ptrSec, uint64(segPtr[s+1]-segPtr[s]))
		}
		idxSec = make([]byte, 0, len(idx)*2)
		for s := 0; s+1 < len(segPtr); s++ {
			prev := -1
			for p := segPtr[s]; p < segPtr[s+1]; p++ {
				if prev < 0 {
					idxSec = binary.AppendUvarint(idxSec, uint64(idx[p]))
				} else {
					idxSec = binary.AppendUvarint(idxSec, uint64(idx[p]-prev))
				}
				prev = idx[p]
			}
		}
		valSec = make([]byte, 0, len(vals)*4)
		for _, v := range vals {
			valSec = binary.AppendUvarint(valSec, bits.ReverseBytes64(math.Float64bits(v)))
		}
	default:
		ptrSec = make([]byte, 8*len(segPtr))
		for k, v := range segPtr {
			binary.LittleEndian.PutUint64(ptrSec[8*k:], uint64(v))
		}
		idxSec = make([]byte, 4*len(idx))
		for k, v := range idx {
			binary.LittleEndian.PutUint32(idxSec[4*k:], uint32(v))
		}
		valSec = make([]byte, 8*len(vals))
		for k, v := range vals {
			binary.LittleEndian.PutUint64(valSec[8*k:], math.Float64bits(v))
		}
	}

	le := binary.LittleEndian
	pad := padTo8(shardHeaderV2 + len(ptrSec) + len(idxSec))
	out := make([]byte, 0, shardHeaderV2+len(ptrSec)+len(idxSec)+pad+len(valSec))
	var hdr [shardHeaderV2]byte
	copy(hdr[:], shardMagicV2)
	hdr[8] = byte(layout)
	hdr[9] = byte(codec)
	le.PutUint32(hdr[12:], uint32(rows))
	le.PutUint32(hdr[16:], uint32(cols))
	le.PutUint64(hdr[20:], uint64(len(vals)))
	le.PutUint64(hdr[28:], uint64(len(ptrSec)))
	le.PutUint64(hdr[36:], uint64(len(idxSec)))
	out = append(out, hdr[:]...)
	out = append(out, ptrSec...)
	out = append(out, idxSec...)
	out = append(out, make([]byte, pad)...)
	out = append(out, valSec...)
	return out
}

// padTo8 returns the zero-padding that aligns off to an 8-byte boundary.
func padTo8(off int) int { return (8 - off%8) % 8 }

// writeShard spills one encoded row block, syncing before close so a full
// disk cannot masquerade as a successful build.
func writeShard(path string, layout Layout, codec Codec, block shardBlock) error {
	data := encodeShard(layout, codec, block)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close() //saco:nolint commerr best-effort close on an already-failing path; the first error is propagating and the success path checks Close
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close() //saco:nolint commerr best-effort close on an already-failing path; the first error is propagating and the success path checks Close
		return err
	}
	return f.Close()
}

// cscFromBlock transposes one CSR row block into block-local CSC with the
// narrowest column space covering the block (the decoder pads back out to
// the dataset width). This is the same counting transpose as
// sparse.CSR.ToCSC, so an at-ingest CSC store is bit-identical to one
// produced by transposing a CSR store.
func cscFromBlock(rowPtr, colIdx []int, vals []float64) *sparse.CSC {
	width := 0
	for _, c := range colIdx {
		if c >= width {
			width = c + 1
		}
	}
	rows := len(rowPtr) - 1
	a := sparse.CSR{M: rows, N: width, RowPtr: rowPtr, ColIdx: colIdx, Val: vals}
	return a.ToCSC()
}

// decodeShard decodes one shard file. n is the dataset's global column
// count (shards do not record it). Exactly one of the returned blocks is
// non-nil, matching the shard's stored layout. refsData reports whether
// the decoded block aliases data (the zero-copy vals path): the caller
// must then keep the backing mapping alive. Every structural invariant is
// re-validated because the bytes come from disk.
func decodeShard(data []byte, n int, allowZeroCopy bool) (block shardBlock, refsData bool, err error) {
	if len(data) >= 8 && string(data[:8]) == shardMagicV1 {
		csr, err := decodeShardV1(data, n)
		return shardBlock{csr: csr}, false, err
	}
	if len(data) < shardHeaderV2 {
		return shardBlock{}, false, fmt.Errorf("stream: short shard header (%d bytes)", len(data))
	}
	if string(data[:8]) != shardMagicV2 {
		return shardBlock{}, false, fmt.Errorf("stream: bad shard magic %q", data[:8])
	}
	le := binary.LittleEndian
	layout := Layout(data[8])
	codec := Codec(data[9])
	if layout > LayoutCSC {
		return shardBlock{}, false, fmt.Errorf("stream: unknown shard layout %d", data[8])
	}
	if codec > CodecDelta {
		return shardBlock{}, false, fmt.Errorf("stream: unknown shard codec %d", data[9])
	}
	rows := int(le.Uint32(data[12:]))
	cols := int(le.Uint32(data[16:]))
	nnz64 := le.Uint64(data[20:])
	ptrBytes64 := le.Uint64(data[28:])
	idxBytes64 := le.Uint64(data[36:])
	body := uint64(len(data) - shardHeaderV2)
	if nnz64 > body || ptrBytes64 > body || idxBytes64 > body {
		return shardBlock{}, false, fmt.Errorf("stream: shard header declares %d nnz / %d+%d section bytes, file body is %d bytes", nnz64, ptrBytes64, idxBytes64, body)
	}
	nnz, ptrBytes, idxBytes := int(nnz64), int(ptrBytes64), int(idxBytes64)

	segs := rows
	if layout == LayoutCSC {
		segs = cols
		if cols > n {
			return shardBlock{}, false, fmt.Errorf("stream: shard stores %d columns, dataset has %d", cols, n)
		}
	}

	// Validate section sizes before any nnz- or segment-proportional
	// allocation, so a corrupt header cannot drive memory use.
	switch codec {
	case CodecRaw:
		if ptrBytes != 8*(segs+1) || idxBytes != 4*nnz {
			return shardBlock{}, false, fmt.Errorf("stream: raw shard sections %d+%d bytes, want %d+%d", ptrBytes, idxBytes, 8*(segs+1), 4*nnz)
		}
	default:
		// Varint sections: every segment length and every index costs at
		// least one byte.
		if segs > ptrBytes || nnz > idxBytes {
			return shardBlock{}, false, fmt.Errorf("stream: delta shard declares %d segments / %d nnz in %d/%d section bytes", segs, nnz, ptrBytes, idxBytes)
		}
	}
	pad := padTo8(shardHeaderV2 + ptrBytes + idxBytes)
	valOff := shardHeaderV2 + ptrBytes + idxBytes + pad
	if valOff > len(data) {
		return shardBlock{}, false, fmt.Errorf("stream: shard truncated before the vals section")
	}
	valSec := data[valOff:]
	if codec == CodecRaw && len(valSec) != 8*nnz {
		return shardBlock{}, false, fmt.Errorf("stream: raw vals section %d bytes, want %d", len(valSec), 8*nnz)
	}
	if codec == CodecDelta && nnz > len(valSec) {
		return shardBlock{}, false, fmt.Errorf("stream: delta vals section %d bytes for %d values", len(valSec), nnz)
	}

	// ptr section → segment offsets. CSC column pointers are padded out
	// to the dataset width so trailing empty columns cost no disk bytes.
	ptrLen := segs + 1
	if layout == LayoutCSC {
		ptrLen = n + 1
	}
	segPtr := make([]int, ptrLen)
	ptrSec := data[shardHeaderV2 : shardHeaderV2+ptrBytes]
	if codec == CodecDelta {
		off := 0
		for s := 0; s < segs; s++ {
			v, k := binary.Uvarint(ptrSec[off:])
			if k <= 0 || v > uint64(nnz) {
				return shardBlock{}, false, fmt.Errorf("stream: corrupt segment length at segment %d", s)
			}
			off += k
			segPtr[s+1] = segPtr[s] + int(v)
		}
		if off != len(ptrSec) {
			return shardBlock{}, false, fmt.Errorf("stream: %d trailing bytes after the ptr section", len(ptrSec)-off)
		}
	} else {
		if v := le.Uint64(ptrSec); v != 0 {
			return shardBlock{}, false, fmt.Errorf("stream: ptr[0] = %d, want 0", v)
		}
		for s := 1; s <= segs; s++ {
			v := le.Uint64(ptrSec[8*s:])
			if v > uint64(nnz) {
				return shardBlock{}, false, fmt.Errorf("stream: ptr[%d] = %d exceeds nnz %d", s, v, nnz)
			}
			segPtr[s] = int(v)
		}
	}
	for s := segs; s < ptrLen-1; s++ {
		segPtr[s+1] = segPtr[s]
	}
	if segPtr[ptrLen-1] != nnz {
		return shardBlock{}, false, fmt.Errorf("stream: ptr ends at %d, nnz is %d", segPtr[ptrLen-1], nnz)
	}

	// idx section.
	idx := make([]int, nnz)
	idxSec := data[shardHeaderV2+ptrBytes : shardHeaderV2+ptrBytes+idxBytes]
	if codec == CodecDelta {
		off := 0
		for s := 0; s < segs; s++ {
			prev := -1
			for p := segPtr[s]; p < segPtr[s+1]; p++ {
				v, k := binary.Uvarint(idxSec[off:])
				if k <= 0 {
					return shardBlock{}, false, fmt.Errorf("stream: corrupt index varint in segment %d", s)
				}
				off += k
				if prev < 0 {
					idx[p] = int(v)
				} else {
					idx[p] = prev + int(v)
				}
				if idx[p] < 0 {
					return shardBlock{}, false, fmt.Errorf("stream: index overflow in segment %d", s)
				}
				prev = idx[p]
			}
		}
		if off != len(idxSec) {
			return shardBlock{}, false, fmt.Errorf("stream: %d trailing bytes after the idx section", len(idxSec)-off)
		}
	} else {
		for k := range idx {
			idx[k] = int(le.Uint32(idxSec[4*k:]))
		}
	}

	// vals section: raw vals can be served straight out of an 8-aligned
	// mapping (zero-copy); everything else decodes into fresh memory.
	var vals []float64
	if codec == CodecRaw {
		if allowZeroCopy {
			vals, refsData = asFloat64LE(valSec, nnz)
		}
		if vals == nil {
			vals = make([]float64, nnz)
			for k := range vals {
				vals[k] = math.Float64frombits(le.Uint64(valSec[8*k:]))
			}
		}
	} else {
		vals = make([]float64, nnz)
		off := 0
		for k := range vals {
			v, n := binary.Uvarint(valSec[off:])
			if n <= 0 {
				return shardBlock{}, false, fmt.Errorf("stream: corrupt value varint at entry %d", k)
			}
			off += n
			vals[k] = math.Float64frombits(bits.ReverseBytes64(v))
		}
		if off != len(valSec) {
			return shardBlock{}, false, fmt.Errorf("stream: %d trailing bytes after the vals section", len(valSec)-off)
		}
	}

	if layout == LayoutCSC {
		csc, err := sparse.NewCSC(rows, n, segPtr, idx, vals)
		if err != nil {
			return shardBlock{}, false, err
		}
		return shardBlock{csc: csc}, refsData, nil
	}
	csr, err := sparse.NewCSR(rows, n, segPtr, idx, vals)
	if err != nil {
		return shardBlock{}, false, err
	}
	return shardBlock{csr: csr}, refsData, nil
}

// decodeShardV1 decodes the version-1 row-major fixed-width format, kept
// readable so pre-v2 shard caches keep working.
func decodeShardV1(data []byte, n int) (*sparse.CSR, error) {
	if len(data) < shardHeaderV1 {
		return nil, fmt.Errorf("stream: short v1 shard header (%d bytes)", len(data))
	}
	le := binary.LittleEndian
	rows64 := uint64(le.Uint32(data[8:]))
	nnz64 := le.Uint64(data[12:])
	// Bound nnz by the file length before the size arithmetic: a corrupt
	// field near 2⁶⁴/12 would otherwise wrap `want`, slip past the
	// equality and drive make() into a panic (the v2 decoder has the
	// same guard).
	if nnz64 > uint64(len(data))/12 {
		return nil, fmt.Errorf("stream: v1 shard header declares %d nonzeros in a %d-byte file", nnz64, len(data))
	}
	want := uint64(shardHeaderV1) + 8*(rows64+1) + 4*nnz64 + 8*nnz64
	if uint64(len(data)) != want {
		return nil, fmt.Errorf("stream: v1 shard is %d bytes, header declares %d (rows=%d nnz=%d)", len(data), want, rows64, nnz64)
	}
	rows, nnz := int(rows64), int(nnz64)
	rowPtr := make([]int, rows+1)
	off := shardHeaderV1
	for k := range rowPtr {
		rowPtr[k] = int(le.Uint64(data[off:]))
		off += 8
	}
	colIdx := make([]int, nnz)
	for k := range colIdx {
		colIdx[k] = int(le.Uint32(data[off:]))
		off += 4
	}
	vals := make([]float64, nnz)
	for k := range vals {
		vals[k] = math.Float64frombits(le.Uint64(data[off:]))
		off += 8
	}
	return sparse.NewCSR(rows, n, rowPtr, colIdx, vals)
}

// readShardFile loads and decodes one shard in copy mode: the file bytes
// pass through a transient heap buffer that is released as soon as the
// sections are decoded.
func readShardFile(path string, n int) (shardBlock, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return shardBlock{}, err
	}
	block, _, err := decodeShard(data, n, false)
	if err != nil {
		return shardBlock{}, fmt.Errorf("stream: %s: %v", path, err)
	}
	return block, nil
}

// writeManifest persists the dataset metadata and labels, syncing before
// close so a full disk cannot masquerade as a successful build.
func writeManifest(d *Dataset) (err error) {
	f, err := os.Create(filepath.Join(d.dir, manifestName))
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	var hdr [64]byte
	copy(hdr[:], manifestV2)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(d.m))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(d.n))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(d.nnz))
	binary.LittleEndian.PutUint32(hdr[32:], uint32(d.blockRows))
	binary.LittleEndian.PutUint32(hdr[36:], uint32(len(d.shards)))
	binary.LittleEndian.PutUint64(hdr[40:], uint64(d.srcSize))
	binary.LittleEndian.PutUint64(hdr[48:], uint64(d.srcMTime))
	hdr[56] = byte(d.layout)
	hdr[57] = byte(d.codec)
	if _, err := bw.Write(hdr[:]); err != nil {
		f.Close() //saco:nolint commerr best-effort close on an already-failing path; the first error is propagating and the success path checks Close
		return err
	}
	var rec [12]byte
	for _, sh := range d.shards {
		binary.LittleEndian.PutUint32(rec[:], uint32(sh.Rows))
		binary.LittleEndian.PutUint64(rec[4:], uint64(sh.NNZ))
		if _, err := bw.Write(rec[:]); err != nil {
			f.Close() //saco:nolint commerr best-effort close on an already-failing path; the first error is propagating and the success path checks Close
			return err
		}
	}
	buf := make([]byte, 8*4096)
	if err := writeChunked(bw, buf, len(d.B), 8, func(k int, b []byte) {
		binary.LittleEndian.PutUint64(b, math.Float64bits(d.B[k]))
	}); err != nil {
		f.Close() //saco:nolint commerr best-effort close on an already-failing path; the first error is propagating and the success path checks Close
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close() //saco:nolint commerr best-effort close on an already-failing path; the first error is propagating and the success path checks Close
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close() //saco:nolint commerr best-effort close on an already-failing path; the first error is propagating and the success path checks Close
		return err
	}
	return f.Close()
}

// writeChunked encodes count fixed-width elements through a bounded
// scratch buffer, so spilling never doubles the block's memory.
func writeChunked(w io.Writer, buf []byte, count, width int, put func(k int, b []byte)) error {
	per := len(buf) / width
	for base := 0; base < count; base += per {
		end := min(base+per, count)
		b := buf[:(end-base)*width]
		for k := base; k < end; k++ {
			put(k, b[(k-base)*width:])
		}
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}

// readManifest loads the metadata of a previously built dataset, v1 or v2.
func readManifest(dir string) (*Dataset, error) {
	f, err := os.Open(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, err
	}
	defer f.Close() //saco:nolint commerr read-only fd; a close failure after a successful read cannot lose data
	br := bufio.NewReaderSize(f, 1<<20)
	var hdr [56]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("stream: %s: short manifest: %v", dir, err)
	}
	version := 0
	switch string(hdr[:8]) {
	case manifestMagic:
		version = 1
	case manifestV2:
		version = 2
	default:
		return nil, fmt.Errorf("stream: %s: bad manifest magic %q", dir, hdr[:8])
	}
	d := &Dataset{
		dir:       dir,
		m:         int(binary.LittleEndian.Uint64(hdr[8:])),
		n:         int(binary.LittleEndian.Uint64(hdr[16:])),
		nnz:       int64(binary.LittleEndian.Uint64(hdr[24:])),
		blockRows: int(binary.LittleEndian.Uint32(hdr[32:])),
		srcSize:   int64(binary.LittleEndian.Uint64(hdr[40:])),
		srcMTime:  int64(binary.LittleEndian.Uint64(hdr[48:])),
	}
	if version == 2 {
		var tail [8]byte
		if _, err := io.ReadFull(br, tail[:]); err != nil {
			return nil, fmt.Errorf("stream: %s: short v2 manifest trailer: %v", dir, err)
		}
		d.layout = Layout(tail[0])
		d.codec = Codec(tail[1])
		if d.layout > LayoutCSC || d.codec > CodecDelta {
			return nil, fmt.Errorf("stream: %s: unknown manifest layout/codec %d/%d", dir, tail[0], tail[1])
		}
	}
	nshards := int(binary.LittleEndian.Uint32(hdr[36:]))
	d.shards = make([]ShardInfo, nshards)
	row0 := 0
	var rec [12]byte
	for i := range d.shards {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("stream: %s: shard table: %v", dir, err)
		}
		d.shards[i] = ShardInfo{
			Row0: row0,
			Rows: int(binary.LittleEndian.Uint32(rec[:])),
			NNZ:  int64(binary.LittleEndian.Uint64(rec[4:])),
		}
		row0 += d.shards[i].Rows
	}
	if row0 != d.m {
		return nil, fmt.Errorf("stream: %s: shard rows sum to %d, manifest says %d", dir, row0, d.m)
	}
	d.B = make([]float64, d.m)
	buf := make([]byte, 8*4096)
	if err := readChunked(br, buf, d.m, 8, func(k int, b []byte) {
		d.B[k] = math.Float64frombits(binary.LittleEndian.Uint64(b))
	}); err != nil {
		return nil, fmt.Errorf("stream: %s: labels: %v", dir, err)
	}
	d.cache = newShardCache(d, defaultCacheShards)
	return d, nil
}

// readChunked is the decoding mirror of writeChunked.
func readChunked(r io.Reader, buf []byte, count, width int, get func(k int, b []byte)) error {
	per := len(buf) / width
	for base := 0; base < count; base += per {
		end := min(base+per, count)
		b := buf[:(end-base)*width]
		if _, err := io.ReadFull(r, b); err != nil {
			return err
		}
		for k := base; k < end; k++ {
			get(k, b[(k-base)*width:])
		}
	}
	return nil
}
