package stream

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"saco/internal/sparse"
)

// On-disk layout (all fixed-width fields little-endian):
//
// Shard file (shard-NNNNN.bin) — one contiguous row block in CSR:
//
//	magic   [8]byte  "SACOSHv1"
//	rows    uint32
//	nnz     uint64
//	rowptr  (rows+1) × uint64   row offsets, rowptr[0] = 0
//	colidx  nnz × uint32        global 0-based column indices
//	vals    nnz × float64       IEEE-754 bits
//
// Manifest file (manifest.bin) — dataset metadata plus the label vector
// (labels stay resident; at paper scale they are ~20 MB vs ~4 GB of
// matrix data):
//
//	magic     [8]byte  "SACOSMv1"
//	m, n      uint64
//	nnz       uint64
//	blockRows uint32
//	nshards   uint32
//	srcSize   uint64             source file size (0 = unrecorded)
//	srcMTime  int64              source mtime, unix nanos (0 = unrecorded)
//	shards    nshards × { rows uint32, nnz uint64 }
//	labels    m × float64
//
// Column indices are uint32, which caps the feature space at 2³²−1 —
// 1000× the paper's widest dataset — and keeps shards 33% smaller than
// an int64 encoding.
const (
	shardMagic    = "SACOSHv1"
	manifestMagic = "SACOSMv1"
	manifestName  = "manifest.bin"

	// MaxFeatures is the widest column space the shard encoding holds.
	MaxFeatures = 1<<32 - 1
)

// shardPath names shard i inside the dataset directory.
func shardPath(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%05d.bin", i))
}

// writeShard spills one row block. rowPtr must start at 0 and have one
// entry per block row plus one; colIdx holds global column indices.
func writeShard(path string, rowPtr, colIdx []int, vals []float64) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	bw := bufio.NewWriterSize(f, 1<<20)
	var hdr [20]byte
	copy(hdr[:], shardMagic)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(rowPtr)-1))
	binary.LittleEndian.PutUint64(hdr[12:], uint64(len(vals)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	buf := make([]byte, 8*4096)
	if err := writeChunked(bw, buf, len(rowPtr), 8, func(k int, b []byte) {
		binary.LittleEndian.PutUint64(b, uint64(rowPtr[k]))
	}); err != nil {
		return err
	}
	if err := writeChunked(bw, buf, len(colIdx), 4, func(k int, b []byte) {
		binary.LittleEndian.PutUint32(b, uint32(colIdx[k]))
	}); err != nil {
		return err
	}
	if err := writeChunked(bw, buf, len(vals), 8, func(k int, b []byte) {
		binary.LittleEndian.PutUint64(b, math.Float64bits(vals[k]))
	}); err != nil {
		return err
	}
	return bw.Flush()
}

// writeChunked encodes count fixed-width elements through a bounded
// scratch buffer, so spilling never doubles the block's memory.
func writeChunked(w io.Writer, buf []byte, count, width int, put func(k int, b []byte)) error {
	per := len(buf) / width
	for base := 0; base < count; base += per {
		end := min(base+per, count)
		b := buf[:(end-base)*width]
		for k := base; k < end; k++ {
			put(k, b[(k-base)*width:])
		}
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}

// readShard loads one spilled row block; n is the dataset's global
// column count (shards do not record it). The CSR invariants are
// re-validated on every load because the bytes come from disk.
func readShard(path string, n int) (*sparse.CSR, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	var hdr [20]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("stream: %s: short header: %v", path, err)
	}
	if string(hdr[:8]) != shardMagic {
		return nil, fmt.Errorf("stream: %s: bad shard magic %q", path, hdr[:8])
	}
	rows := int(binary.LittleEndian.Uint32(hdr[8:]))
	nnz := int(binary.LittleEndian.Uint64(hdr[12:]))
	rowPtr := make([]int, rows+1)
	colIdx := make([]int, nnz)
	vals := make([]float64, nnz)
	buf := make([]byte, 8*4096)
	if err := readChunked(br, buf, rows+1, 8, func(k int, b []byte) {
		rowPtr[k] = int(binary.LittleEndian.Uint64(b))
	}); err != nil {
		return nil, fmt.Errorf("stream: %s: rowptr: %v", path, err)
	}
	if err := readChunked(br, buf, nnz, 4, func(k int, b []byte) {
		colIdx[k] = int(binary.LittleEndian.Uint32(b))
	}); err != nil {
		return nil, fmt.Errorf("stream: %s: colidx: %v", path, err)
	}
	if err := readChunked(br, buf, nnz, 8, func(k int, b []byte) {
		vals[k] = math.Float64frombits(binary.LittleEndian.Uint64(b))
	}); err != nil {
		return nil, fmt.Errorf("stream: %s: vals: %v", path, err)
	}
	a, err := sparse.NewCSR(rows, n, rowPtr, colIdx, vals)
	if err != nil {
		return nil, fmt.Errorf("stream: %s: %v", path, err)
	}
	return a, nil
}

// readChunked is the decoding mirror of writeChunked.
func readChunked(r io.Reader, buf []byte, count, width int, get func(k int, b []byte)) error {
	per := len(buf) / width
	for base := 0; base < count; base += per {
		end := min(base+per, count)
		b := buf[:(end-base)*width]
		if _, err := io.ReadFull(r, b); err != nil {
			return err
		}
		for k := base; k < end; k++ {
			get(k, b[(k-base)*width:])
		}
	}
	return nil
}

// writeManifest persists the dataset metadata and labels, syncing before
// close so a full disk cannot masquerade as a successful build.
func writeManifest(d *Dataset) (err error) {
	f, err := os.Create(filepath.Join(d.dir, manifestName))
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	var hdr [8 + 8*3 + 4 + 4 + 8 + 8]byte
	copy(hdr[:], manifestMagic)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(d.m))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(d.n))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(d.nnz))
	binary.LittleEndian.PutUint32(hdr[32:], uint32(d.blockRows))
	binary.LittleEndian.PutUint32(hdr[36:], uint32(len(d.shards)))
	binary.LittleEndian.PutUint64(hdr[40:], uint64(d.srcSize))
	binary.LittleEndian.PutUint64(hdr[48:], uint64(d.srcMTime))
	if _, err := bw.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	var rec [12]byte
	for _, sh := range d.shards {
		binary.LittleEndian.PutUint32(rec[:], uint32(sh.Rows))
		binary.LittleEndian.PutUint64(rec[4:], uint64(sh.NNZ))
		if _, err := bw.Write(rec[:]); err != nil {
			f.Close()
			return err
		}
	}
	buf := make([]byte, 8*4096)
	if err := writeChunked(bw, buf, len(d.B), 8, func(k int, b []byte) {
		binary.LittleEndian.PutUint64(b, math.Float64bits(d.B[k]))
	}); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// readManifest loads the metadata of a previously built dataset.
func readManifest(dir string) (*Dataset, error) {
	f, err := os.Open(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	var hdr [56]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("stream: %s: short manifest: %v", dir, err)
	}
	if string(hdr[:8]) != manifestMagic {
		return nil, fmt.Errorf("stream: %s: bad manifest magic %q", dir, hdr[:8])
	}
	d := &Dataset{
		dir:       dir,
		m:         int(binary.LittleEndian.Uint64(hdr[8:])),
		n:         int(binary.LittleEndian.Uint64(hdr[16:])),
		nnz:       int64(binary.LittleEndian.Uint64(hdr[24:])),
		blockRows: int(binary.LittleEndian.Uint32(hdr[32:])),
		srcSize:   int64(binary.LittleEndian.Uint64(hdr[40:])),
		srcMTime:  int64(binary.LittleEndian.Uint64(hdr[48:])),
	}
	nshards := int(binary.LittleEndian.Uint32(hdr[36:]))
	d.shards = make([]ShardInfo, nshards)
	row0 := 0
	var rec [12]byte
	for i := range d.shards {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("stream: %s: shard table: %v", dir, err)
		}
		d.shards[i] = ShardInfo{
			Row0: row0,
			Rows: int(binary.LittleEndian.Uint32(rec[:])),
			NNZ:  int64(binary.LittleEndian.Uint64(rec[4:])),
		}
		row0 += d.shards[i].Rows
	}
	if row0 != d.m {
		return nil, fmt.Errorf("stream: %s: shard rows sum to %d, manifest says %d", dir, row0, d.m)
	}
	d.B = make([]float64, d.m)
	buf := make([]byte, 8*4096)
	if err := readChunked(br, buf, d.m, 8, func(k int, b []byte) {
		d.B[k] = math.Float64frombits(binary.LittleEndian.Uint64(b))
	}); err != nil {
		return nil, fmt.Errorf("stream: %s: labels: %v", dir, err)
	}
	d.cache = newShardCache(d, defaultCacheShards)
	return d, nil
}
