package mpi

import (
	"context"
	"fmt"
	"sync"
)

// simWorld owns the channel mesh of one simulated cluster run: ranks
// are goroutines, messages are Go channels, and a per-rank done channel
// makes a Recv from a finished rank fail fast instead of deadlocking
// the world (the historical failure mode of mismatched send/recv
// pairs).
type simWorld struct {
	p       int
	chans   [][]chan Message // chans[src][dst]
	done    []chan struct{}  // done[r] closes when rank r's endpoint closes
	closers []sync.Once
	ctx     context.Context
}

func newSimWorld(ctx context.Context, p int) *simWorld {
	w := &simWorld{p: p, ctx: ctx, done: make([]chan struct{}, p), closers: make([]sync.Once, p)}
	w.chans = make([][]chan Message, p)
	for i := range w.chans {
		w.chans[i] = make([]chan Message, p)
		for j := range w.chans[i] {
			// Capacity bounds the number of in-flight messages per
			// ordered pair. Binomial-tree collectives need 1; a margin
			// is kept for pipelined point-to-point use.
			w.chans[i][j] = make(chan Message, 64)
		}
		w.done[i] = make(chan struct{})
	}
	return w
}

// transport returns rank's endpoint into the world.
func (w *simWorld) transport(rank int) *transportSim {
	return &transportSim{w: w, rank: rank}
}

// transportSim is the in-process Transport: rank goroutines exchanging
// copied payloads over the world's channel mesh. It is the reference
// implementation — every deterministic trajectory in the test suite is
// anchored on it — and the TCP transport must match it bitwise.
type transportSim struct {
	w    *simWorld
	rank int
}

// Rank returns this endpoint's rank.
func (t *transportSim) Rank() int { return t.rank }

// Size returns the world's rank count.
func (t *transportSim) Size() int { return t.w.p }

// Send copies the payload (messages are immutable in flight, so callers
// may reuse buffers — the copy is also what a real NIC DMA would do)
// and enqueues it for dst. A finished dst fails the send fast with a
// *PeerError instead of filling the channel and deadlocking.
func (t *transportSim) Send(dst int, msg Message) error {
	if dst < 0 || dst >= t.w.p || dst == t.rank {
		return fmt.Errorf("mpi: rank %d: send to invalid rank %d of %d", t.rank, dst, t.w.p)
	}
	payload := make([]float64, len(msg.Data))
	copy(payload, msg.Data)
	msg.Data = payload
	ch := t.w.chans[t.rank][dst]
	select {
	case ch <- msg: // fast path: buffer space available
		return nil
	default:
	}
	select {
	case ch <- msg:
		return nil
	case <-t.w.done[dst]:
		return &PeerError{Rank: t.rank, Peer: dst, Op: "send", Tag: msg.Tag, Err: ErrPeerGone}
	case <-t.w.ctx.Done():
		return &PeerError{Rank: t.rank, Peer: dst, Op: "send", Tag: msg.Tag, Err: t.w.ctx.Err()}
	}
}

// Recv blocks for the next message from src. If src's endpoint closes
// first, any message it already enqueued is still delivered (the close
// happens after all of its sends), and only then does Recv fail with a
// *PeerError naming both ranks.
func (t *transportSim) Recv(src int) (Message, error) {
	if src < 0 || src >= t.w.p || src == t.rank {
		return Message{}, fmt.Errorf("mpi: rank %d: recv from invalid rank %d of %d", t.rank, src, t.w.p)
	}
	ch := t.w.chans[src][t.rank]
	select {
	case msg := <-ch: // fast path: message already queued
		return msg, nil
	default:
	}
	select {
	case msg := <-ch:
		return msg, nil
	case <-t.w.done[src]:
		// The peer closed between our poll and the select: drain the
		// channel before declaring it gone (its sends happened-before
		// the close).
		select {
		case msg := <-ch:
			return msg, nil
		default:
			return Message{}, &PeerError{Rank: t.rank, Peer: src, Op: "recv", Err: ErrPeerGone}
		}
	case <-t.w.ctx.Done():
		return Message{}, &PeerError{Rank: t.rank, Peer: src, Op: "recv", Err: t.w.ctx.Err()}
	}
}

// Close marks the rank finished, failing peers blocked on it fast.
func (t *transportSim) Close() error {
	t.w.closers[t.rank].Do(func() { close(t.w.done[t.rank]) })
	return nil
}
