// Package faulty is the fault-injection harness of the transport layer:
// a Transport wrapper that kills, drops or delays a chosen rank at a
// chosen point-to-point operation. The checkpoint/restart tests use it
// to prove the recovery contract — a rank killed at s-step k and
// restarted from its checkpoint produces a trajectory bitwise identical
// to the uninterrupted run — without racing real process signals.
//
// Faults are one-shot across a whole supervised run: an Injector fires
// at most once even when the driver re-runs the world for recovery,
// mirroring a real process that is killed once and then restarted
// healthy. Operation counts also persist across attempts, so "the Nth
// send" means the Nth of the first (interrupted) attempt.
package faulty

import (
	"fmt"
	"sync/atomic"
	"time"

	"saco/internal/mpi"
)

// ErrInjected marks a failure manufactured by the harness. It wraps
// mpi.ErrPeerGone, so recovery paths classify an injected kill exactly
// like a real vanished peer.
var ErrInjected = fmt.Errorf("faulty: injected fault: %w", mpi.ErrPeerGone)

// Plan says which rank suffers what, and when. Counts are 1-based over
// the afflicted rank's own operations; zero disables that fault.
type Plan struct {
	// Rank is the afflicted rank; all other ranks pass through.
	Rank int
	// KillAtSend kills the rank immediately before its Nth Send: the
	// underlying transport closes (peers observe a vanished rank) and
	// the send fails with ErrInjected.
	KillAtSend int
	// KillAtRecv is KillAtSend for the Nth Recv.
	KillAtRecv int
	// DropAtSend silently discards the Nth Send (the frame never leaves
	// the rank) — a lost message, surfacing at peers as a receive
	// timeout or tag skew. Only meaningful on transports with receive
	// deadlines; the simulated world would block forever.
	DropAtSend int
	// DelayAtRecv stalls the rank for Delay (wall time) before its Nth
	// Recv completes — a straggler, not a failure.
	DelayAtRecv int
	// Delay is the stall of DelayAtRecv; default 10ms.
	Delay time.Duration
}

// Injector carries a Plan's state across a supervised run: wrap every
// rank's transport through Wrap (the mpi.WorldOptions.Wrap /
// dist.Options.WrapTransport seam) and the plan fires exactly once.
type Injector struct {
	plan         Plan
	sends, recvs atomic.Int64
	fired        atomic.Bool
}

// New builds an injector for plan.
func New(plan Plan) *Injector {
	if plan.Delay <= 0 {
		plan.Delay = 10 * time.Millisecond
	}
	return &Injector{plan: plan}
}

// Wrap interposes the plan on rank's endpoint; other ranks' transports
// are returned untouched.
func (in *Injector) Wrap(rank int, t mpi.Transport) mpi.Transport {
	if rank != in.plan.Rank {
		return t
	}
	return &transport{Transport: t, in: in}
}

// Sends returns how many Send calls the afflicted rank has made through
// the injector — run a clean plan (no faults) first to calibrate
// "kill at half the run".
func (in *Injector) Sends() int64 { return in.sends.Load() }

// Recvs is Sends for Recv calls.
func (in *Injector) Recvs() int64 { return in.recvs.Load() }

// Fired reports whether the one-shot fault has been injected.
func (in *Injector) Fired() bool { return in.fired.Load() }

// transport decorates the afflicted rank's endpoint.
type transport struct {
	mpi.Transport
	in *Injector
}

// fire consumes the one-shot if n matches at, returning whether the
// fault happens now.
func (in *Injector) fire(at int, n int64) bool {
	return at > 0 && n == int64(at) && in.fired.CompareAndSwap(false, true)
}

func (t *transport) Send(dst int, msg mpi.Message) error {
	n := t.in.sends.Add(1)
	if t.in.fire(t.in.plan.KillAtSend, n) {
		t.Transport.Close() //saco:nolint commerr injected kill: the teardown is the fault itself
		return &mpi.PeerError{Rank: t.Rank(), Peer: dst, Op: "send", Tag: msg.Tag,
			Err: fmt.Errorf("killed at send %d: %w", n, ErrInjected)}
	}
	if t.in.fire(t.in.plan.DropAtSend, n) {
		return nil // the frame vanishes; the peer's deadline finds out
	}
	return t.Transport.Send(dst, msg)
}

func (t *transport) Recv(src int) (mpi.Message, error) {
	n := t.in.recvs.Add(1)
	if t.in.fire(t.in.plan.KillAtRecv, n) {
		t.Transport.Close() //saco:nolint commerr injected kill: the teardown is the fault itself
		return mpi.Message{}, &mpi.PeerError{Rank: t.Rank(), Peer: src, Op: "recv",
			Err: fmt.Errorf("killed at recv %d: %w", n, ErrInjected)}
	}
	if t.in.fire(t.in.plan.DelayAtRecv, n) {
		time.Sleep(t.in.plan.Delay)
	}
	return t.Transport.Recv(src)
}
