package faulty_test

import (
	"errors"
	"os"
	"testing"
	"time"

	"saco/internal/mpi"
	"saco/internal/mpi/faulty"
)

// body is a tiny SPMD program with enough traffic to aim faults at:
// iterated allreduces of a one-word buffer.
func body(iters int) func(c *mpi.Comm) error {
	return func(c *mpi.Comm) error {
		buf := []float64{float64(c.Rank() + 1)}
		for i := 0; i < iters; i++ {
			if err := c.Allreduce(mpi.Sum, buf); err != nil {
				return err
			}
		}
		return nil
	}
}

func TestCleanPlanCountsOps(t *testing.T) {
	in := faulty.New(faulty.Plan{Rank: 1})
	_, err := mpi.RunWorld(nil, 4, mpi.CrayXC30(), mpi.WorldOptions{Wrap: in.Wrap}, body(10))
	if err != nil {
		t.Fatalf("clean plan perturbed the run: %v", err)
	}
	if in.Fired() {
		t.Fatal("clean plan fired")
	}
	if in.Sends() == 0 || in.Recvs() == 0 {
		t.Fatalf("no traffic observed: sends=%d recvs=%d", in.Sends(), in.Recvs())
	}
}

func TestKillAtSendFailsWorldRecoverably(t *testing.T) {
	// Calibrate, then kill rank 1 halfway through its sends.
	cal := faulty.New(faulty.Plan{Rank: 1})
	if _, err := mpi.RunWorld(nil, 4, mpi.CrayXC30(), mpi.WorldOptions{Wrap: cal.Wrap}, body(10)); err != nil {
		t.Fatal(err)
	}
	in := faulty.New(faulty.Plan{Rank: 1, KillAtSend: int(cal.Sends() / 2)})
	_, err := mpi.RunWorld(nil, 4, mpi.CrayXC30(), mpi.WorldOptions{Wrap: in.Wrap}, body(10))
	if err == nil {
		t.Fatal("killed world succeeded")
	}
	if !errors.Is(err, mpi.ErrPeerGone) {
		t.Fatalf("kill error %v does not classify as a vanished peer", err)
	}
	if !in.Fired() {
		t.Fatal("kill never fired")
	}
	// One-shot: a re-run of the same world with the same injector must
	// complete — the restarted rank does not die again.
	if _, err := mpi.RunWorld(nil, 4, mpi.CrayXC30(), mpi.WorldOptions{Wrap: in.Wrap}, body(10)); err != nil {
		t.Fatalf("second attempt still faulted: %v", err)
	}
}

func TestKillAtRecvOverTCP(t *testing.T) {
	in := faulty.New(faulty.Plan{Rank: 2, KillAtRecv: 3})
	_, err := mpi.RunWorld(nil, 3, mpi.CrayXC30(),
		mpi.WorldOptions{Wrap: in.Wrap, TCP: &mpi.TCPOptions{RecvTimeout: 2 * time.Second}}, body(10))
	if err == nil {
		t.Fatal("killed world succeeded")
	}
	if !errors.Is(err, mpi.ErrPeerGone) {
		t.Fatalf("kill error %v does not classify as a vanished peer", err)
	}
}

func TestDropAtSendTripsPeerDeadline(t *testing.T) {
	// A dropped frame is only detectable on transports with receive
	// deadlines; over TCP the starved peer times out.
	in := faulty.New(faulty.Plan{Rank: 1, DropAtSend: 2})
	_, err := mpi.RunWorld(nil, 2, mpi.CrayXC30(),
		mpi.WorldOptions{Wrap: in.Wrap, TCP: &mpi.TCPOptions{RecvTimeout: 500 * time.Millisecond}}, body(8))
	if err == nil {
		t.Fatal("a dropped frame went unnoticed")
	}
	var pe *mpi.PeerError
	if !errors.As(err, &pe) {
		t.Fatalf("drop surfaced as %v, want a *PeerError", err)
	}
	if !errors.Is(err, os.ErrDeadlineExceeded) && !errors.Is(err, mpi.ErrTagMismatch) {
		t.Fatalf("drop surfaced as %v, want a deadline or tag error", err)
	}
}

func TestDelayAtRecvIsBenign(t *testing.T) {
	// A straggler changes wall time only: the run still completes and
	// the modeled stats are untouched (virtual clocks ignore sleeps).
	ref, err := mpi.Run(nil, 3, mpi.CrayXC30(), body(5))
	if err != nil {
		t.Fatal(err)
	}
	in := faulty.New(faulty.Plan{Rank: 1, DelayAtRecv: 2, Delay: 50 * time.Millisecond})
	got, err := mpi.RunWorld(nil, 3, mpi.CrayXC30(), mpi.WorldOptions{Wrap: in.Wrap}, body(5))
	if err != nil {
		t.Fatalf("delayed world failed: %v", err)
	}
	if !in.Fired() {
		t.Fatal("delay never fired")
	}
	for r := range ref.PerRank {
		if got.PerRank[r] != ref.PerRank[r] {
			t.Fatalf("rank %d modeled stats changed under delay:\n got %+v\nwant %+v",
				r, got.PerRank[r], ref.PerRank[r])
		}
	}
}
