package mpi

import "context"

// bg is the background context shared by tests that never cancel.
var bg = context.Background()

// transports enumerates the Transport implementations the collective
// tests run against: the in-process simulated world and the loopback TCP
// mesh. The collectives are written once against Comm, so both must
// execute identical message DAGs and deliver identical results.
var transports = []struct {
	name string
	run  func(ctx context.Context, p, cores int, m Machine, body func(c *Comm) error) (*Stats, error)
}{
	{"sim", RunHybrid},
	{"tcp", RunTCP},
}
