package mpi

import (
	"net"
	"testing"
	"time"
)

// TestEpochAgreementAndZombieRejection: a rendezvous at epoch 2 must
// refuse a stale epoch-1 dialer (a zombie of a torn-down generation)
// while accepting an epoch-unknown peer (a freshly resumed process),
// and both surviving endpoints must agree on the highest epoch seen.
func TestEpochAgreementAndZombieRejection(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	rootOpt := &TCPOptions{RendezvousTimeout: 10 * time.Second, Epoch: 2}
	rootCh := make(chan Transport, 1)
	rootErr := make(chan error, 1)
	go func() {
		t0, err := bootTCPRoot(bg, ln, 2, rootOpt)
		if err != nil {
			rootErr <- err
			return
		}
		rootCh <- t0
	}()

	// The zombie dials first with the old epoch; its bootstrap must fail
	// (the root closes the connection without a world descriptor).
	zombieOpt := &TCPOptions{RendezvousTimeout: 2 * time.Second, Epoch: 1}
	if _, err := DialTCP(bg, 1, 2, addr, zombieOpt); err == nil {
		t.Fatal("an epoch-1 dialer joined an epoch-2 world")
	}

	// The resumed peer (epoch unknown) joins and adopts the world's.
	resumedOpt := &TCPOptions{RendezvousTimeout: 10 * time.Second, Epoch: -1}
	t1, err := DialTCP(bg, 1, 2, addr, resumedOpt)
	if err != nil {
		t.Fatalf("epoch-unknown peer refused: %v", err)
	}
	defer t1.Close()
	select {
	case err := <-rootErr:
		t.Fatalf("root bootstrap failed: %v", err)
	case t0 := <-rootCh:
		defer t0.Close()
		if got := TransportEpoch(t0); got != 2 {
			t.Fatalf("root epoch %d, want 2", got)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("root bootstrap hung")
	}
	if got := TransportEpoch(t1); got != 2 {
		t.Fatalf("peer adopted epoch %d, want 2", got)
	}
}

// TestEpochRootAdoptsSurvivors: a restarted rank 0 with an unknown epoch
// must converge on the survivors' bumped epoch rather than resetting the
// world to generation zero.
func TestEpochRootAdoptsSurvivors(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	rootCh := make(chan Transport, 1)
	rootErr := make(chan error, 1)
	go func() {
		t0, err := bootTCPRoot(bg, ln, 2, &TCPOptions{RendezvousTimeout: 10 * time.Second, Epoch: -1})
		if err != nil {
			rootErr <- err
			return
		}
		rootCh <- t0
	}()
	t1, err := DialTCP(bg, 1, 2, addr, &TCPOptions{RendezvousTimeout: 10 * time.Second, Epoch: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer t1.Close()
	select {
	case err := <-rootErr:
		t.Fatalf("root bootstrap failed: %v", err)
	case t0 := <-rootCh:
		defer t0.Close()
		if got := TransportEpoch(t0); got != 3 {
			t.Fatalf("root epoch %d, want 3 (the survivor's)", got)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("root bootstrap hung")
	}
	if got := TransportEpoch(t1); got != 3 {
		t.Fatalf("survivor epoch %d, want 3", got)
	}
	// The simulated transport has no epochs; the helper reports 0.
	w := newSimWorld(bg, 1)
	if got := TransportEpoch(w.transport(0)); got != 0 {
		t.Fatalf("sim transport epoch %d, want 0", got)
	}
}
