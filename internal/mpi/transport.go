package mpi

import (
	"errors"
	"fmt"
)

// Message is one point-to-point transfer as a transport sees it: a tag
// for matching, the payload, and the sender's virtual clock at send
// completion. The clock piggybacks the α-β-γ cost model: the simulated
// world uses it to align receiver clocks, and the TCP transport carries
// it on the wire (8 bytes per frame) so a machine model charged on a
// networked run stays bitwise identical to the simulated one.
type Message struct {
	Tag   int
	Clock float64
	Data  []float64
}

// Transport is the point-to-point contract under Comm: one rank's
// endpoint into a world of Size() ranks. Two implementations ship: the
// in-process simulated world (goroutine ranks over a channel mesh,
// transportSim) and a length-prefixed TCP mesh across real processes
// (transportTCP). The collectives are written once against Comm, which
// wraps any Transport, so the same binomial trees and Rabenseifner
// exchanges run on both.
//
// A Transport is owned by a single rank goroutine: Send and Recv are
// never called concurrently with themselves or each other. Close may be
// called from another goroutine (shutdown paths) and must be idempotent.
type Transport interface {
	// Rank returns this endpoint's rank in [0, Size).
	Rank() int
	// Size returns the number of ranks in the world.
	Size() int
	// Send delivers msg to dst. The payload must not be retained or
	// mutated after the call returns: transports that queue in memory
	// copy it, transports that serialize write it out before returning.
	Send(dst int, msg Message) error
	// Recv blocks for the next message from src, in send order. A
	// vanished peer (finished goroutine, torn connection) fails fast
	// with a *PeerError instead of blocking forever.
	Recv(src int) (Message, error)
	// Close releases the endpoint. In the simulated world it marks the
	// rank finished so peers blocked on it fail fast; over TCP it tears
	// down the connection mesh.
	Close() error
}

// Sentinel causes of peer failures, wrapped inside *PeerError.
var (
	// ErrPeerGone marks a peer that finished (or died) without sending
	// the message the local rank is blocked on.
	ErrPeerGone = errors.New("peer is gone without sending")
	// ErrTagMismatch marks a message whose tag does not match the
	// receiver's expectation — a mismatched SPMD program (one rank in a
	// Bcast while another is in a Reduce), caught instead of
	// misdelivered.
	ErrTagMismatch = errors.New("tag mismatch")
)

// PeerError is the graceful rank-failure error of a point-to-point
// operation: it names both ends and the operation so a failed
// collective reads like
//
//	mpi: rank 2: recv from rank 0 (tag -9): peer is gone without sending
//
// rather than deadlocking the world. Errors.Is matches the sentinel
// causes (ErrPeerGone, ErrTagMismatch, context.Canceled, net errors).
type PeerError struct {
	Rank int    // the local rank observing the failure
	Peer int    // the remote rank
	Op   string // "send" or "recv"
	Tag  int    // the tag in flight (for recv: the expected tag)
	Err  error  // the underlying cause
}

func (e *PeerError) Error() string {
	return fmt.Sprintf("mpi: rank %d: %s %s rank %d (tag %d): %v",
		e.Rank, e.Op, e.direction(), e.Peer, e.Tag, e.Err)
}

func (e *PeerError) direction() string {
	if e.Op == "send" {
		return "to"
	}
	return "from"
}

// Unwrap exposes the cause to errors.Is / errors.As.
func (e *PeerError) Unwrap() error { return e.Err }
