package mpi

// AllreduceRSAG is a bandwidth-optimal Allreduce (Rabenseifner's
// algorithm: recursive-halving reduce-scatter followed by
// recursive-doubling allgather). Its modeled cost is
//
//	2·α·log₂P + 2·β·W·(P−1)/P
//
// versus the binomial Reduce+Bcast's 2·log₂P·(α + β·W): the same latency
// but a log₂P-fold smaller bandwidth term. That matters precisely for the
// synchronization-avoiding solvers, whose batched Gram messages grow as
// s²µ² — pairing SA with a bandwidth-optimal reduction pushes the optimal
// s higher. It is exposed as an explicit choice (dist.Options) and
// benchmarked as an ablation rather than silently auto-selected, so
// experiment costs stay attributable.
//
// Like Allreduce, the result is identical on every rank (each vector
// element is combined along one fixed binary tree). For tiny messages or
// P < 4 it falls back to the binomial Allreduce, which is cheaper there.
func (c *Comm) AllreduceRSAG(op Op, data []float64) error {
	p := c.Size()
	if p < 4 || len(data) < p {
		return c.Allreduce(op, data)
	}
	// Largest power of two ≤ p; the r extra ranks fold into partners
	// during a pre-phase and receive the result in a post-phase.
	p2 := 1
	for p2*2 <= p {
		p2 *= 2
	}
	r := p - p2
	rank := c.Rank()
	tag := c.collTag(kindReduce)

	// Pre-phase: ranks [0, 2r) pair up (even, odd); odd ranks hand their
	// contribution to the even partner and wait for the post-phase.
	er := -1 // effective rank within the power-of-two group
	switch {
	case rank < 2*r && rank%2 == 1:
		if err := c.Send(rank-1, tag, data); err != nil {
			return err
		}
	case rank < 2*r:
		in, err := c.Recv(rank+1, tag)
		if err != nil {
			return err
		}
		c.Compute(float64(len(data)))
		op.combine(data, in)
		er = rank / 2
	default:
		er = rank - r
	}
	if er < 0 {
		// Idle until the post-phase delivers the final vector.
		out, err := c.Recv(rank-1, tag)
		if err != nil {
			return err
		}
		copy(data, out)
		return nil
	}
	toActual := func(e int) int {
		if e < r {
			return 2 * e
		}
		return e + r
	}

	// Recursive-halving reduce-scatter. Track the owned segment and the
	// halving history for the mirror allgather phase.
	lo, hi := 0, len(data)
	type seg struct{ lo, hi, dist int }
	var history []seg
	for dist := p2 / 2; dist >= 1; dist /= 2 {
		partner := toActual(er ^ dist)
		mid := lo + (hi-lo)/2
		var keepLo, keepHi, sendLo, sendHi int
		if er&dist == 0 {
			keepLo, keepHi, sendLo, sendHi = lo, mid, mid, hi
		} else {
			keepLo, keepHi, sendLo, sendHi = mid, hi, lo, mid
		}
		if err := c.Send(partner, tag, data[sendLo:sendHi]); err != nil {
			return err
		}
		in, err := c.Recv(partner, tag)
		if err != nil {
			return err
		}
		c.Compute(float64(keepHi - keepLo))
		op.combine(data[keepLo:keepHi], in)
		history = append(history, seg{lo, hi, dist})
		lo, hi = keepLo, keepHi
	}

	// Recursive-doubling allgather: undo the halving in reverse, each
	// round exchanging the owned segment for the partner's sibling
	// segment so both end up with the parent segment.
	for i := len(history) - 1; i >= 0; i-- {
		parent := history[i]
		partner := toActual(er ^ parent.dist)
		if err := c.Send(partner, tag, data[lo:hi]); err != nil {
			return err
		}
		in, err := c.Recv(partner, tag)
		if err != nil {
			return err
		}
		// The partner owns parent minus my segment.
		if lo == parent.lo {
			copy(data[hi:parent.hi], in)
		} else {
			copy(data[parent.lo:lo], in)
		}
		lo, hi = parent.lo, parent.hi
	}

	// Post-phase: deliver to the folded odd ranks.
	if rank < 2*r {
		return c.Send(rank+1, tag, data)
	}
	return nil
}
