package mpi

import (
	"fmt"
	"testing"
)

// Non-power-of-two rank counts are where tree collectives break: the
// binomial trees handle a ragged top level, and Rabenseifner's allreduce
// folds the p − 2^⌊log₂p⌋ extra ranks into partners in a pre/post phase.
// These tests pin that machinery at the awkward counts (3, 5, 6, 7, 9,
// 11, 12, 13) with data sizes straddling the algorithms' internal
// boundaries — and run every case over both transports (the simulated
// world and the loopback TCP mesh), which is the collective-level half
// of the sim/TCP parity contract.

// nonPow2Ps are rank counts with every "shape" of raggedness: one above
// a power of two (5, 9), one below (3, 7), and composites (6, 12).
var nonPow2Ps = []int{3, 5, 6, 7, 9, 11, 12, 13}

// TestReduceNonPow2AllRoots: binomial reduce must deliver the exact sum
// to every possible root at ragged rank counts (the virtual-rank
// rotation is where off-by-ones would hide).
func TestReduceNonPow2AllRoots(t *testing.T) {
	for _, tr := range transports {
		t.Run(tr.name, func(t *testing.T) {
			for _, p := range nonPow2Ps {
				for root := 0; root < p; root++ {
					_, err := tr.run(bg, p, 1, Zero(), func(c *Comm) error {
						data := []float64{float64(c.Rank() + 1), float64((c.Rank() + 1) * (c.Rank() + 1))}
						if err := c.Reduce(root, Sum, data); err != nil {
							return err
						}
						if c.Rank() == root {
							wantA := float64(p*(p+1)) / 2
							wantB := float64(p*(p+1)*(2*p+1)) / 6
							if data[0] != wantA || data[1] != wantB {
								return fmt.Errorf("root %d/%d got %v, want [%v %v]", root, p, data, wantA, wantB)
							}
						}
						return nil
					})
					if err != nil {
						t.Fatalf("p=%d root=%d: %v", p, root, err)
					}
				}
			}
		})
	}
}

// TestBcastNonPow2LastRootChain: broadcasting from the last rank at
// ragged counts exercises the deepest wrap-around of the virtual-rank
// mapping.
func TestBcastNonPow2LastRootChain(t *testing.T) {
	for _, tr := range transports {
		t.Run(tr.name, func(t *testing.T) {
			for _, p := range nonPow2Ps {
				root := p - 1
				_, err := tr.run(bg, p, 1, Zero(), func(c *Comm) error {
					data := make([]float64, 7)
					if c.Rank() == root {
						for i := range data {
							data[i] = float64(1000 + i)
						}
					}
					if err := c.Bcast(root, data); err != nil {
						return err
					}
					for i := range data {
						if data[i] != float64(1000+i) {
							return fmt.Errorf("rank %d/%d got %v", c.Rank(), p, data)
						}
					}
					// A second, dependent collective catches sequence-number skew
					// left behind by a ragged first one.
					if got, err := c.AllreduceScalar(Sum, 1); err != nil {
						return err
					} else if got != float64(p) {
						return fmt.Errorf("follow-up allreduce got %v", got)
					}
					return nil
				})
				if err != nil {
					t.Fatalf("p=%d: %v", p, err)
				}
			}
		})
	}
}

// TestAllgatherNonPow2UnequalValues: the gather tree concatenates
// doubling block ranges; ragged counts leave partial ranges at the top,
// and the rank-order rotation must still place every block correctly.
func TestAllgatherNonPow2UnequalValues(t *testing.T) {
	for _, tr := range transports {
		t.Run(tr.name, func(t *testing.T) {
			for _, p := range nonPow2Ps {
				for _, blk := range []int{1, 3} {
					_, err := tr.run(bg, p, 1, Zero(), func(c *Comm) error {
						local := make([]float64, blk)
						for i := range local {
							local[i] = float64(c.Rank()*100 + i)
						}
						out, err := c.Allgather(local)
						if err != nil {
							return err
						}
						if len(out) != p*blk {
							return fmt.Errorf("len=%d, want %d", len(out), p*blk)
						}
						for r := 0; r < p; r++ {
							for i := 0; i < blk; i++ {
								if out[r*blk+i] != float64(r*100+i) {
									return fmt.Errorf("rank %d: block %d elem %d = %v", c.Rank(), r, i, out[r*blk+i])
								}
							}
						}
						return nil
					})
					if err != nil {
						t.Fatalf("p=%d blk=%d: %v", p, blk, err)
					}
				}
			}
		})
	}
}

// TestAllreduceRSAGNonPow2Boundaries drives Rabenseifner's allreduce
// through its fold-in pre/post phase at ragged counts, with message
// sizes exactly at the fallback boundary (len < p falls back to the
// binomial tree), one past it, and sizes that do not divide evenly
// through the recursive halving.
func TestAllreduceRSAGNonPow2Boundaries(t *testing.T) {
	for _, tr := range transports {
		t.Run(tr.name, func(t *testing.T) {
			for _, p := range nonPow2Ps {
				for _, n := range []int{p - 1, p, p + 1, 2*p + 1, 65} {
					if n <= 0 {
						continue
					}
					results := make([][]float64, p)
					_, err := tr.run(bg, p, 1, Zero(), func(c *Comm) error {
						data := make([]float64, n)
						for i := range data {
							// Integer-valued so any combine order is exact.
							data[i] = float64((c.Rank()+2)*(i+1)%23 - 11)
						}
						if err := c.AllreduceRSAG(Sum, data); err != nil {
							return err
						}
						results[c.Rank()] = data
						return nil
					})
					if err != nil {
						t.Fatalf("p=%d n=%d: %v", p, n, err)
					}
					want := make([]float64, n)
					for r := 0; r < p; r++ {
						for i := range want {
							want[i] += float64((r+2)*(i+1)%23 - 11)
						}
					}
					for r := 0; r < p; r++ {
						for i := range want {
							if results[r][i] != want[i] {
								t.Fatalf("p=%d n=%d rank %d elem %d: %v want %v", p, n, r, i, results[r][i], want[i])
							}
						}
					}
				}
			}
		})
	}
}

// TestAllreduceRSAGNonPow2FoldedRanksCharged: the folded odd ranks of
// the pre-phase sit idle during the halving; their virtual clocks must
// still advance to the post-phase delivery (waiting is communication
// time), so no rank reports a zero clock on a costed machine. Across
// transports the clocks must also agree bitwise — the piggybacked
// clocks carry the cost model over the wire unchanged.
func TestAllreduceRSAGNonPow2FoldedRanksCharged(t *testing.T) {
	m := Machine{Alpha: 1e-6, Beta: 1e-9}
	for _, p := range []int{5, 6, 7, 9} {
		clocks := make(map[string][]float64)
		for _, tr := range transports {
			stats, err := tr.run(bg, p, 1, m, func(c *Comm) error {
				data := make([]float64, 4*p)
				return c.AllreduceRSAG(Sum, data)
			})
			if err != nil {
				t.Fatalf("%s p=%d: %v", tr.name, p, err)
			}
			for r, st := range stats.PerRank {
				if st.Clock <= 0 {
					t.Fatalf("%s p=%d rank %d: zero clock after RSAG", tr.name, p, r)
				}
				clocks[tr.name] = append(clocks[tr.name], st.Clock)
			}
		}
		for r := 0; r < p; r++ {
			if clocks["sim"][r] != clocks["tcp"][r] {
				t.Fatalf("p=%d rank %d: modeled clock differs sim=%v tcp=%v", p, r, clocks["sim"][r], clocks["tcp"][r])
			}
		}
	}
}

// TestMixedCollectiveSequenceNonPow2 runs a solver-shaped sequence —
// reduce, bcast, allreduce, barrier, gather — at ragged counts to catch
// tag/sequence skew between collectives of different shapes.
func TestMixedCollectiveSequenceNonPow2(t *testing.T) {
	for _, tr := range transports {
		t.Run(tr.name, func(t *testing.T) {
			for _, p := range nonPow2Ps {
				_, err := tr.run(bg, p, 1, Zero(), func(c *Comm) error {
					v := []float64{1}
					if err := c.Reduce(p/2, Sum, v); err != nil {
						return err
					}
					if c.Rank() == p/2 && v[0] != float64(p) {
						return fmt.Errorf("reduce got %v", v[0])
					}
					if err := c.Bcast(p/2, v); err != nil {
						return err
					}
					if v[0] != float64(p) {
						return fmt.Errorf("bcast got %v", v[0])
					}
					if got, err := c.AllreduceScalar(Max, float64(c.Rank())); err != nil {
						return err
					} else if got != float64(p-1) {
						return fmt.Errorf("allreduce max got %v", got)
					}
					if err := c.Barrier(); err != nil {
						return err
					}
					out, err := c.Gather(0, []float64{float64(c.Rank())})
					if err != nil {
						return err
					}
					if c.Rank() == 0 {
						for r := 0; r < p; r++ {
							if out[r] != float64(r) {
								return fmt.Errorf("gather block %d = %v", r, out[r])
							}
						}
					}
					return nil
				})
				if err != nil {
					t.Fatalf("p=%d: %v", p, err)
				}
			}
		})
	}
}
