package mpi

// Machine holds the α-β-γ cost parameters of the simulated distributed
// machine. The simulator charges
//
//	α            per message (latency, the paper's L term),
//	β            per 8-byte word moved (bandwidth, the W term),
//	γ            per flop (computation, the F term),
//
// along the message DAG, which is exactly the model behind Table I of the
// paper. Two flop rates are kept because the paper attributes part of the
// SA speedup to BLAS-3 cache efficiency: "computing the s² entries of the
// Gram matrix is more cache-efficient (uses a BLAS-3 routine) than
// computing s individual dot-products (uses a BLAS-1 routine)" (§IV-B).
// Blocked (BLAS-3-like) work whose working set exceeds CacheWords falls
// back to the streaming rate, reproducing the "once s becomes too large we
// see slowdowns" effect.
type Machine struct {
	Name         string
	Alpha        float64 // seconds per message
	Beta         float64 // seconds per 8-byte word
	GammaStream  float64 // seconds per flop, BLAS-1 / sparse streaming
	GammaBlocked float64 // seconds per flop, blocked BLAS-3
	CacheWords   int     // blocked-rate working-set limit, in words
}

// CrayXC30 approximates a node of the NERSC Edison system used in the
// paper: Aries interconnect (~1.4 µs latency, ~8 GB/s effective per-core
// bandwidth) and Ivy Bridge cores (~2 Gflop/s streaming, ~9.6 Gflop/s
// blocked peak, 2.5 MB L3 slice per core).
func CrayXC30() Machine {
	return Machine{
		Name:         "cray-xc30",
		Alpha:        1.4e-6,
		Beta:         1.0e-9,
		GammaStream:  5.0e-10,
		GammaBlocked: 1.05e-10,
		CacheWords:   320_000,
	}
}

// EthernetCluster approximates a commodity 10 GbE cluster: ~50 µs latency
// and ~1 GB/s bandwidth. Latency costs dominate sooner, so SA methods gain
// more than on the Cray, as the paper predicts for higher-latency fabrics.
func EthernetCluster() Machine {
	return Machine{
		Name:         "ethernet-10g",
		Alpha:        5.0e-5,
		Beta:         8.0e-9,
		GammaStream:  5.0e-10,
		GammaBlocked: 1.05e-10,
		CacheWords:   320_000,
	}
}

// SparkLike approximates a bulk-synchronous data-analytics framework where
// each synchronization is a scheduled task wave (milliseconds of latency).
// The paper's conclusion singles this case out: "our methods would attain
// greater speedups on frameworks like Spark due to the large latency
// costs".
func SparkLike() Machine {
	return Machine{
		Name:         "spark-like",
		Alpha:        5.0e-3,
		Beta:         8.0e-9,
		GammaStream:  5.0e-10,
		GammaBlocked: 1.05e-10,
		CacheWords:   320_000,
	}
}

// Zero is a machine with no costs; useful for tests that only check
// algebraic results.
func Zero() Machine { return Machine{Name: "zero"} }

// gammaFor returns the per-flop cost for blocked work with the given
// working set, applying the cache knee.
func (m Machine) gammaFor(blocked bool, workingSetWords int) float64 {
	if !blocked {
		return m.GammaStream
	}
	if m.CacheWords > 0 && workingSetWords > m.CacheWords {
		return m.GammaStream
	}
	return m.GammaBlocked
}
