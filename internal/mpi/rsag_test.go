package mpi

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func TestAllreduceRSAGMatchesBinomial(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 5, 6, 7, 8, 11, 16} {
		for _, n := range []int{1, 5, 16, 33, 257} {
			p, n := p, n
			t.Run(fmt.Sprintf("p=%d,n=%d", p, n), func(t *testing.T) {
				results := make([][]float64, p)
				_, err := Run(bg, p, Zero(), func(c *Comm) error {
					data := make([]float64, n)
					for i := range data {
						// Integer-valued so any summation order is exact.
						data[i] = float64((c.Rank()+1)*(i+3)%17 - 8)
					}
					c.AllreduceRSAG(Sum, data)
					results[c.Rank()] = data
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
				want := make([]float64, n)
				for r := 0; r < p; r++ {
					for i := range want {
						want[i] += float64((r+1)*(i+3)%17 - 8)
					}
				}
				for r := 0; r < p; r++ {
					for i := range want {
						if results[r][i] != want[i] {
							t.Fatalf("rank %d elem %d: %v want %v", r, i, results[r][i], want[i])
						}
					}
				}
				// Replication invariant: bitwise identical across ranks.
				for r := 1; r < p; r++ {
					for i := range want {
						if results[r][i] != results[0][i] {
							t.Fatalf("rank %d differs from rank 0 at %d", r, i)
						}
					}
				}
			})
		}
	}
}

func TestAllreduceRSAGMax(t *testing.T) {
	_, err := Run(bg, 6, Zero(), func(c *Comm) error {
		data := make([]float64, 40)
		for i := range data {
			data[i] = float64(c.Rank()*40 + i)
		}
		c.AllreduceRSAG(Max, data)
		for i := range data {
			if want := float64(5*40 + i); data[i] != want {
				return fmt.Errorf("rank %d elem %d: %v want %v", c.Rank(), i, data[i], want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// For large messages the bandwidth-optimal algorithm must beat the
// binomial tree on the modeled clock; for tiny ones it falls back.
func TestAllreduceRSAGBandwidthAdvantage(t *testing.T) {
	m := Machine{Alpha: 1e-6, Beta: 1e-9}
	clock := func(n int, rsag bool) float64 {
		stats, err := Run(bg, 8, m, func(c *Comm) error {
			data := make([]float64, n)
			if rsag {
				c.AllreduceRSAG(Sum, data)
			} else {
				c.Allreduce(Sum, data)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats.MaxClock()
	}
	big := 1 << 16
	if r, b := clock(big, true), clock(big, false); r >= b {
		t.Fatalf("RSAG %v not faster than binomial %v for %d words", r, b, big)
	}
}

// Property: RSAG equals the binomial Allreduce to roundoff on random
// float inputs for random P.
func TestAllreduceRSAGProperty(t *testing.T) {
	f := func(seed int64, pRaw, nRaw uint8) bool {
		p := 1 + int(pRaw%12)
		n := 1 + int(nRaw%64)
		mk := func(r int) []float64 {
			out := make([]float64, n)
			s := seed + int64(r)*2654435761
			for i := range out {
				s = s*6364136223846793005 + 1442695040888963407
				out[i] = float64(int16(s>>32)) / 256
			}
			return out
		}
		var got, want [][]float64
		run := func(rsag bool, dst *[][]float64) bool {
			*dst = make([][]float64, p)
			_, err := Run(bg, p, Zero(), func(c *Comm) error {
				data := mk(c.Rank())
				if rsag {
					c.AllreduceRSAG(Sum, data)
				} else {
					c.Allreduce(Sum, data)
				}
				(*dst)[c.Rank()] = data
				return nil
			})
			return err == nil
		}
		if !run(true, &got) || !run(false, &want) {
			return false
		}
		for i := range want[0] {
			if math.Abs(got[0][i]-want[0][i]) > 1e-9*(1+math.Abs(want[0][i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
