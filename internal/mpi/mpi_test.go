package mpi

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

var testPs = []int{1, 2, 3, 4, 5, 7, 8, 13, 16}

func TestBlockRange(t *testing.T) {
	for _, p := range testPs {
		for _, n := range []int{0, 1, p - 1, p, p + 1, 10 * p, 10*p + 3} {
			if n < 0 {
				continue
			}
			prev := 0
			total := 0
			for r := 0; r < p; r++ {
				lo, hi := BlockRange(n, p, r)
				if lo != prev {
					t.Fatalf("n=%d p=%d r=%d: lo=%d, want %d", n, p, r, lo, prev)
				}
				if hi < lo {
					t.Fatalf("n=%d p=%d r=%d: hi<lo", n, p, r)
				}
				if sz := hi - lo; sz != n/p && sz != n/p+1 {
					t.Fatalf("n=%d p=%d r=%d: unbalanced size %d", n, p, r, sz)
				}
				prev = hi
				total += hi - lo
			}
			if prev != n || total != n {
				t.Fatalf("n=%d p=%d: ranges do not cover (end=%d)", n, p, prev)
			}
		}
	}
}

func TestSendRecvPingPong(t *testing.T) {
	stats, err := Run(bg, 2, Zero(), func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 7, []float64{1, 2, 3}); err != nil {
				return err
			}
			back, err := c.Recv(1, 8)
			if err != nil {
				return err
			}
			if len(back) != 1 || back[0] != 6 {
				return fmt.Errorf("got %v", back)
			}
		} else {
			in, err := c.Recv(0, 7)
			if err != nil {
				return err
			}
			return c.Send(0, 8, []float64{in[0] + in[1] + in[2]})
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalMsgs() != 2 || stats.TotalWords() != 4 {
		t.Fatalf("msgs=%d words=%d", stats.TotalMsgs(), stats.TotalWords())
	}
}

func TestSendCopiesPayload(t *testing.T) {
	_, err := Run(bg, 2, Zero(), func(c *Comm) error {
		if c.Rank() == 0 {
			buf := []float64{42}
			c.Send(1, 0, buf)
			buf[0] = -1 // mutate after send; receiver must still see 42
			c.Barrier()
		} else {
			in, err := c.Recv(0, 0)
			if err != nil {
				return err
			}
			c.Barrier()
			if in[0] != 42 {
				return fmt.Errorf("payload mutated in flight: %v", in[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceSumAllSizes(t *testing.T) {
	for _, p := range testPs {
		p := p
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			results := make([][]float64, p)
			_, err := Run(bg, p, Zero(), func(c *Comm) error {
				data := []float64{float64(c.Rank() + 1), float64(c.Rank() * 2), -1}
				c.Allreduce(Sum, data)
				results[c.Rank()] = data
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			wantA := float64(p*(p+1)) / 2
			wantB := float64(p * (p - 1))
			for r, got := range results {
				if got[0] != wantA || got[1] != wantB || got[2] != float64(-p) {
					t.Fatalf("rank %d: %v, want [%v %v %v]", r, got, wantA, wantB, float64(-p))
				}
			}
			// Bitwise-identical across ranks (replication invariant).
			for r := 1; r < p; r++ {
				for i := range results[0] {
					if results[r][i] != results[0][i] {
						t.Fatalf("rank %d result differs from rank 0", r)
					}
				}
			}
		})
	}
}

func TestAllreduceMax(t *testing.T) {
	_, err := Run(bg, 5, Zero(), func(c *Comm) error {
		data := []float64{float64(c.Rank()), -float64(c.Rank())}
		c.Allreduce(Max, data)
		if data[0] != 4 || data[1] != 0 {
			return fmt.Errorf("rank %d: %v", c.Rank(), data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceScalar(t *testing.T) {
	_, err := Run(bg, 4, Zero(), func(c *Comm) error {
		got, err := c.AllreduceScalar(Sum, 1.5)
		if err != nil {
			return err
		}
		if got != 6 {
			return fmt.Errorf("sum = %v", got)
		}
		got, err = c.AllreduceScalar(Max, float64(c.Rank()))
		if err != nil {
			return err
		}
		if got != 3 {
			return fmt.Errorf("max = %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcastFromEveryRoot(t *testing.T) {
	for _, p := range []int{1, 2, 3, 6, 8} {
		for root := 0; root < p; root++ {
			_, err := Run(bg, p, Zero(), func(c *Comm) error {
				data := make([]float64, 4)
				if c.Rank() == root {
					for i := range data {
						data[i] = float64(100*root + i)
					}
				}
				c.Bcast(root, data)
				for i := range data {
					if data[i] != float64(100*root+i) {
						return fmt.Errorf("rank %d got %v", c.Rank(), data)
					}
				}
				return nil
			})
			if err != nil {
				t.Fatalf("p=%d root=%d: %v", p, root, err)
			}
		}
	}
}

func TestReduceToEveryRoot(t *testing.T) {
	for _, p := range []int{2, 3, 5, 8} {
		for root := 0; root < p; root++ {
			_, err := Run(bg, p, Zero(), func(c *Comm) error {
				data := []float64{1}
				c.Reduce(root, Sum, data)
				if c.Rank() == root && data[0] != float64(p) {
					return fmt.Errorf("root got %v, want %d", data[0], p)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("p=%d root=%d: %v", p, root, err)
			}
		}
	}
}

func TestGatherAllRootsAllSizes(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 7, 8} {
		for root := 0; root < p; root++ {
			_, err := Run(bg, p, Zero(), func(c *Comm) error {
				local := []float64{float64(c.Rank()), float64(c.Rank() * 10)}
				out, err := c.Gather(root, local)
				if err != nil {
					return err
				}
				if c.Rank() != root {
					if out != nil {
						return errors.New("non-root got data")
					}
					return nil
				}
				for r := 0; r < p; r++ {
					if out[2*r] != float64(r) || out[2*r+1] != float64(r*10) {
						return fmt.Errorf("block %d = %v", r, out[2*r:2*r+2])
					}
				}
				return nil
			})
			if err != nil {
				t.Fatalf("p=%d root=%d: %v", p, root, err)
			}
		}
	}
}

func TestAllgather(t *testing.T) {
	for _, p := range testPs {
		_, err := Run(bg, p, Zero(), func(c *Comm) error {
			out, err := c.Allgather([]float64{float64(c.Rank() + 1)})
			if err != nil {
				return err
			}
			if len(out) != p {
				return fmt.Errorf("len=%d", len(out))
			}
			for r := 0; r < p; r++ {
				if out[r] != float64(r+1) {
					return fmt.Errorf("rank %d: out=%v", c.Rank(), out)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestBarrierNoDeadlockAndOrdering(t *testing.T) {
	// Ranks do asymmetric pre-barrier work; the barrier must still match.
	_, err := Run(bg, 8, CrayXC30(), func(c *Comm) error {
		for i := 0; i < c.Rank(); i++ {
			c.Compute(1e6)
		}
		c.Barrier()
		c.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTagMismatchError: a mismatched SPMD program (sender on tag 1, the
// receiver expecting tag 2) must fail with a tagged *PeerError naming
// both ranks — historically this panicked the whole world.
func TestTagMismatchError(t *testing.T) {
	_, err := Run(bg, 2, Zero(), func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 1, []float64{1})
		}
		_, err := c.Recv(0, 2)
		if err == nil {
			return errors.New("expected tag mismatch error")
		}
		return err
	})
	if !errors.Is(err, ErrTagMismatch) {
		t.Fatalf("err = %v, want ErrTagMismatch", err)
	}
	var pe *PeerError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T, want *PeerError", err)
	}
	if pe.Rank != 1 || pe.Peer != 0 || pe.Op != "recv" || pe.Tag != 2 {
		t.Fatalf("PeerError = %+v, want rank 1 recv from 0 tag 2", pe)
	}
}

func TestRunErrorPropagation(t *testing.T) {
	want := errors.New("boom")
	_, err := Run(bg, 3, Zero(), func(c *Comm) error {
		if c.Rank() == 1 {
			return want
		}
		return nil
	})
	if !errors.Is(err, want) {
		t.Fatalf("err = %v", err)
	}
	if _, err := Run(bg, 0, Zero(), func(*Comm) error { return nil }); err == nil {
		t.Fatal("expected error for p=0")
	}
}

func TestVirtualClockSingleMessage(t *testing.T) {
	m := Machine{Alpha: 1e-6, Beta: 1e-9}
	stats, err := Run(bg, 2, m, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 0, make([]float64, 1000))
		} else {
			c.Recv(0, 0)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 1e-6 + 1e-9*1000
	if got := stats.MaxClock(); math.Abs(got-want) > 1e-15 {
		t.Fatalf("clock = %v, want %v", got, want)
	}
	if stats.PerRank[1].CommTime <= 0 {
		t.Fatal("receiver comm time not charged")
	}
}

func TestVirtualClockComputeKinds(t *testing.T) {
	m := CrayXC30()
	stats, err := Run(bg, 1, m, func(c *Comm) error {
		c.Compute(1e6)                     // stream rate
		c.ComputeBlocked(1e6, 1000)        // fits in cache: blocked rate
		c.ComputeBlocked(1e6, 100_000_000) // blows cache: stream rate
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 1e6*m.GammaStream + 1e6*m.GammaBlocked + 1e6*m.GammaStream
	if got := stats.MaxClock(); math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("clock = %v, want %v", got, want)
	}
	if stats.PerRank[0].Flops != 3e6 {
		t.Fatalf("flops = %v", stats.PerRank[0].Flops)
	}
}

func TestAllreduceLatencyScalesLogP(t *testing.T) {
	m := Machine{Alpha: 1e-3} // latency only
	clock := func(p int) float64 {
		stats, err := Run(bg, p, m, func(c *Comm) error {
			c.Allreduce(Sum, []float64{1})
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats.MaxClock()
	}
	c4, c16 := clock(4), clock(16)
	// Binomial reduce+bcast: ~2·log₂P rounds of α. Doubling log₂P from 2
	// to 4 should roughly double the modeled time, certainly not 4x.
	if ratio := c16 / c4; ratio < 1.5 || ratio > 3.0 {
		t.Fatalf("latency ratio p16/p4 = %v, want about 2", ratio)
	}
}

func TestAllreduceMessageCount(t *testing.T) {
	stats, err := Run(bg, 8, Zero(), func(c *Comm) error {
		c.Allreduce(Sum, []float64{1})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Binomial reduce: 7 messages; binomial bcast: 7 messages.
	if got := stats.TotalMsgs(); got != 14 {
		t.Fatalf("msgs = %d, want 14", got)
	}
}

func TestDeterministicClocks(t *testing.T) {
	run := func() (float64, float64) {
		stats, err := Run(bg, 6, CrayXC30(), func(c *Comm) error {
			data := make([]float64, 64)
			for i := range data {
				data[i] = float64(c.Rank()*64 + i)
			}
			for it := 0; it < 10; it++ {
				c.Compute(float64(1000 * (c.Rank() + 1)))
				c.Allreduce(Sum, data)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats.MaxClock(), stats.MaxComm()
	}
	a1, b1 := run()
	a2, b2 := run()
	if a1 != a2 || b1 != b2 {
		t.Fatalf("virtual clocks nondeterministic: (%v,%v) vs (%v,%v)", a1, b1, a2, b2)
	}
}

// Property: Allreduce(Sum) over random vectors equals the sequential sum,
// for random processor counts.
func TestAllreduceSumProperty(t *testing.T) {
	f := func(seed int64, pRaw, nRaw uint8) bool {
		p := 1 + int(pRaw%9)
		n := 1 + int(nRaw%17)
		inputs := make([][]float64, p)
		for r := range inputs {
			inputs[r] = make([]float64, n)
			for i := range inputs[r] {
				seed = seed*6364136223846793005 + 1442695040888963407
				inputs[r][i] = float64(int8(seed >> 32))
			}
		}
		want := make([]float64, n)
		for _, in := range inputs {
			for i, v := range in {
				want[i] += v
			}
		}
		ok := true
		_, err := Run(bg, p, Zero(), func(c *Comm) error {
			data := append([]float64(nil), inputs[c.Rank()]...)
			c.Allreduce(Sum, data)
			for i := range data {
				if math.Abs(data[i]-want[i]) > 1e-9 {
					ok = false
				}
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMachinePresets(t *testing.T) {
	for _, m := range []Machine{CrayXC30(), EthernetCluster(), SparkLike()} {
		if m.Alpha <= 0 || m.Beta <= 0 || m.GammaStream <= 0 || m.GammaBlocked <= 0 {
			t.Fatalf("%s: non-positive cost parameter", m.Name)
		}
		if m.GammaBlocked >= m.GammaStream {
			t.Fatalf("%s: blocked rate should beat streaming rate", m.Name)
		}
	}
	if SparkLike().Alpha <= CrayXC30().Alpha {
		t.Fatal("Spark-like latency should exceed Cray latency")
	}
}

func TestElapsedAndMachineAccessors(t *testing.T) {
	m := CrayXC30()
	_, err := Run(bg, 2, m, func(c *Comm) error {
		if c.Machine().Name != m.Name {
			return errors.New("machine accessor mismatch")
		}
		before := c.Elapsed()
		c.Compute(1e6)
		if c.Elapsed() <= before {
			return errors.New("Elapsed did not advance")
		}
		if c.Size() != 2 {
			return errors.New("bad size")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRunHybridComputeParallel pins the hybrid cost accounting: the
// parallel variants divide modeled time by the core budget, charge the
// full flop count as work, and plain Compute is unaffected. Run must be
// exactly RunHybrid with one core.
func TestRunHybridComputeParallel(t *testing.T) {
	m := Machine{GammaStream: 1e-9, GammaBlocked: 2.5e-10, CacheWords: 1000}
	stats, err := RunHybrid(bg, 1, 4, m, func(c *Comm) error {
		if c.Cores() != 4 {
			return fmt.Errorf("Cores() = %d", c.Cores())
		}
		c.Compute(1e6)                         // 1e6·γs
		c.ComputeParallel(1e6)                 // 1e6/4·γs
		c.ComputeBlockedParallel(1e6, 100)     // 1e6/4·γb (fits cache)
		c.ComputeBlockedParallel(1e6, 100_000) // 1e6/4·γs (spills cache)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 1e6*m.GammaStream + 1e6/4*m.GammaStream + 1e6/4*m.GammaBlocked + 1e6/4*m.GammaStream
	if got := stats.MaxClock(); math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("hybrid clock = %v, want %v", got, want)
	}
	if stats.PerRank[0].Flops != 4e6 {
		t.Fatalf("flops = %v, want full work counted", stats.PerRank[0].Flops)
	}

	flat, err := Run(bg, 1, m, func(c *Comm) error {
		if c.Cores() != 1 {
			return fmt.Errorf("flat Cores() = %d", c.Cores())
		}
		c.Compute(1e6)
		c.ComputeParallel(1e6) // = Compute at one core
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := flat.MaxClock(), 2e6*m.GammaStream; math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("flat clock = %v, want %v", got, want)
	}
	if _, err := RunHybrid(bg, 1, 0, m, func(c *Comm) error {
		if c.Cores() != 1 {
			return fmt.Errorf("cores clamp: %d", c.Cores())
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
