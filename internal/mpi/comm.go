// Package mpi is a small message-passing runtime that stands in for MPI in
// the paper's experiments. The point-to-point layer is the Transport
// interface with two implementations: the simulated world (ranks are
// goroutines, messages are Go channels, so a "cluster" runs inside one
// process with real parallelism and real synchronization costs) and a
// length-prefixed TCP mesh that runs the same SPMD programs across real
// processes and machines (see transportTCP, DialTCP, cmd/sarank). The
// collectives are binomial trees written once against Comm, so both
// transports execute identical message DAGs and deterministic programs
// produce bitwise-identical trajectories on either.
//
// Alongside real execution the runtime maintains a virtual clock per rank
// in an α-β-γ machine model (see Machine). Every message advances the
// sender's and receiver's clocks by α + β·words; every Compute call
// advances the caller's clock by γ·flops. The maximum clock over ranks is
// the modeled parallel running time — the quantity Figures 3 and 4 of the
// paper plot. This is how a 12,288-core Cray XC30 experiment is reproduced
// faithfully in shape on a laptop: the counts of messages, words and flops
// are exact, and the machine constants are presets. Networked runs charge
// the same model (piggybacking clocks on the wire); their measured time is
// Stats.Wall.
package mpi

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// World is kept as a historical name for the simulated cluster; the
// runtime now speaks to any Transport. See Run, RunTCP and DialTCP.

// RankStats is the per-rank accounting of one run.
type RankStats struct {
	Clock    float64 // virtual seconds: total modeled time of this rank
	CompTime float64 // virtual seconds spent computing
	CommTime float64 // virtual seconds in messaging (transfer + wait)
	Flops    float64 // flops charged
	Msgs     int64   // messages sent
	Words    int64   // 8-byte words sent
}

// Stats summarizes a completed run. Single-process drivers (Run,
// RunHybrid, RunTCP) fill PerRank for the whole world; a rank running
// alone in its own process (cmd/sarank over DialTCP) only knows itself,
// so PerRank holds just the local rank and Local is true.
type Stats struct {
	PerRank []RankStats
	Wall    time.Duration // real elapsed time of the run
	// Local marks stats that cover only the local rank (multi-process
	// runs): the Max* aggregates are then per-rank numbers, and wall
	// clock is the meaningful cross-rank measure.
	Local bool
}

// MaxClock returns the modeled parallel running time: the maximum virtual
// clock over ranks (the critical path through the message DAG).
func (s *Stats) MaxClock() float64 {
	var m float64
	for _, r := range s.PerRank {
		if r.Clock > m {
			m = r.Clock
		}
	}
	return m
}

// MaxComm returns the largest per-rank communication time. The paper's
// Fig. 4e–h communication speedups are ratios of this quantity.
func (s *Stats) MaxComm() float64 {
	var m float64
	for _, r := range s.PerRank {
		if r.CommTime > m {
			m = r.CommTime
		}
	}
	return m
}

// MaxComp returns the largest per-rank computation time.
func (s *Stats) MaxComp() float64 {
	var m float64
	for _, r := range s.PerRank {
		if r.CompTime > m {
			m = r.CompTime
		}
	}
	return m
}

// TotalMsgs returns the total number of messages sent by all ranks.
func (s *Stats) TotalMsgs() int64 {
	var n int64
	for _, r := range s.PerRank {
		n += r.Msgs
	}
	return n
}

// TotalWords returns the total number of words sent by all ranks.
func (s *Stats) TotalWords() int64 {
	var n int64
	for _, r := range s.PerRank {
		n += r.Words
	}
	return n
}

// Comm is one rank's handle into the world: cost accounting and the
// collectives over an underlying Transport. All methods are called from
// that rank's goroutine only.
type Comm struct {
	t       Transport
	machine Machine
	cores   int
	st      RankStats
	seq     int       // collective sequence number (SPMD-aligned)
	one     []float64 // scratch for scalar reductions
}

// NewComm wraps an established transport endpoint in a Comm charging
// the given machine model with a per-rank core budget of cores (clamped
// to at least 1). It is the entry point for external transports — a
// cmd/sarank process wraps its DialTCP endpoint here; the in-process
// drivers (Run, RunHybrid, RunTCP) call it for every rank goroutine.
func NewComm(t Transport, m Machine, cores int) *Comm {
	if cores < 1 {
		cores = 1
	}
	return &Comm{t: t, machine: m, cores: cores}
}

// CloseTransport tears down this rank's endpoint immediately, before
// the driver's own deferred close: an abrupt departure from the world.
// Peers blocked on this rank fail fast with a *PeerError. Drivers use it
// for early shutdown; the fault-injection tests use it to simulate a
// dying rank.
func (c *Comm) CloseTransport() error { return c.t.Close() }

// Rank returns this rank's id in [0, Size).
func (c *Comm) Rank() int { return c.t.Rank() }

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.t.Size() }

// Machine returns the cost model in effect.
func (c *Comm) Machine() Machine { return c.machine }

// Elapsed returns this rank's virtual clock in seconds.
func (c *Comm) Elapsed() float64 { return c.st.Clock }

// RankStats returns a snapshot of this rank's cost accounting — the
// per-rank entry a single-process driver aggregates, and all a
// multi-process rank can know about the run.
func (c *Comm) RankStats() RankStats { return c.st }

// SetRankStats overwrites this rank's cost accounting. It exists for
// checkpoint restore: a resumed rank installs the virtual clock and
// traffic counters it had at the checkpointed s-step boundary, so the
// recovered run's modeled stats are bitwise identical to an
// uninterrupted run's.
func (c *Comm) SetRankStats(st RankStats) { c.st = st }

// Run executes body on p simulated ranks and returns the per-rank
// statistics. It is the moral equivalent of mpirun: body is the SPMD
// program. The first error returned by any rank aborts the run's result;
// ranks blocked on a failed peer fail fast with a *PeerError (no rank is
// left blocked on a vanished peer forever), and the root-cause error is
// preferred over the induced peer errors.
func Run(ctx context.Context, p int, m Machine, body func(c *Comm) error) (*Stats, error) {
	return RunHybrid(ctx, p, 1, m, body)
}

// RunHybrid is Run with a per-rank core budget: every rank owns cores
// threads, the hybrid MPI×threads configuration of modern MPI codes (the
// paper's natural extension; cf. ROADMAP). The budget has two effects,
// both the rank program's to apply: kernels may actually run on that
// many shared-memory workers (see dist.Options.RankWorkers), and
// parallelizable work charged through ComputeParallel /
// ComputeBlockedParallel advances the virtual clock by flops/cores — the
// model's assumption of perfectly scaling intra-rank kernels.
// Communication costs are unchanged: one message per rank pair, exactly
// like a one-rank-per-node MPI+OpenMP layout.
func RunHybrid(ctx context.Context, p, cores int, m Machine, body func(c *Comm) error) (*Stats, error) {
	return RunWorld(ctx, p, m, WorldOptions{Cores: cores}, body)
}

// runWorld drives one single-process world: it spawns p rank
// goroutines, each over its own transport endpoint, runs body as the
// SPMD program, and aggregates per-rank statistics. dial is called on
// the rank's goroutine (TCP endpoints bootstrap concurrently).
func runWorld(p, cores int, m Machine, body func(c *Comm) error, dial func(rank int) (Transport, error)) (*Stats, error) {
	errs := make([]error, p)
	stats := make([]RankStats, p)
	start := time.Now() //saco:nolint nondet wall-clock harness stat (Stats.Wall) only; modeled time comes from the costmodel clocks piggybacked on frames
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			t, err := dial(rank)
			if err != nil {
				errs[rank] = err
				return
			}
			// A close failure on an otherwise-clean rank is a real
			// error (leaked socket, peer torn down mid-frame): record
			// it so firstError can surface it instead of silently
			// swallowing the teardown.
			defer func() {
				if cerr := t.Close(); cerr != nil && errs[rank] == nil {
					errs[rank] = fmt.Errorf("mpi: rank %d: closing transport: %w", rank, cerr)
				}
			}()
			comm := NewComm(t, m, cores)
			errs[rank] = body(comm)
			stats[rank] = comm.st
		}(r)
	}
	wg.Wait()
	all := &Stats{PerRank: stats, Wall: time.Since(start)}
	return all, firstError(errs)
}

// firstError picks the error a failed run reports: the lowest-rank
// error that is not an induced peer failure, falling back to the
// lowest-rank error of any kind. When one rank fails mid-collective its
// peers abort with *PeerError; the root cause is the interesting one.
func firstError(errs []error) error {
	var peer error
	for _, err := range errs {
		if err == nil {
			continue
		}
		var pe *PeerError
		if errors.As(err, &pe) {
			if peer == nil {
				peer = err
			}
			continue
		}
		return err
	}
	return peer
}

// Send transfers a copy of data to rank dst with the given tag (the
// transport owns the copy, so callers may reuse buffers freely). The
// sender's clock advances by α + β·len(data): sends are not overlapped,
// matching the non-offloaded MPI the paper benchmarks. A vanished peer
// returns a *PeerError instead of blocking.
func (c *Comm) Send(dst, tag int, data []float64) error {
	m := c.machine
	cost := m.Alpha + m.Beta*float64(len(data))
	c.st.Clock += cost
	c.st.CommTime += cost
	c.st.Msgs++
	c.st.Words += int64(len(data))
	return c.t.Send(dst, Message{Tag: tag, Clock: c.st.Clock, Data: data})
}

// Recv blocks until the next message from src arrives and returns its
// payload. The receiver's clock advances to at least the message's arrival
// time (sender completion), so waiting is charged as communication. A
// mismatched tag fails fast with a *PeerError naming both ranks (a
// mismatched SPMD program, caught instead of silently misdelivered), as
// does a peer that vanished without sending.
func (c *Comm) Recv(src, tag int) ([]float64, error) {
	msg, err := c.t.Recv(src)
	if err != nil {
		var pe *PeerError
		if errors.As(err, &pe) && pe.Op == "recv" {
			pe.Tag = tag // stamp the expected tag for the error message
		}
		return nil, err
	}
	if msg.Tag != tag {
		return nil, &PeerError{Rank: c.Rank(), Peer: src, Op: "recv", Tag: tag,
			Err: fmt.Errorf("%w: expected tag %d, got %d", ErrTagMismatch, tag, msg.Tag)}
	}
	before := c.st.Clock
	if msg.Clock > c.st.Clock {
		c.st.Clock = msg.Clock
	}
	c.st.CommTime += c.st.Clock - before
	return msg.Data, nil
}

// Compute charges flops of local work at the streaming (BLAS-1 / sparse)
// rate. The caller performs the actual arithmetic itself; Compute only
// advances the virtual clock.
func (c *Comm) Compute(flops float64) {
	t := flops * c.machine.GammaStream
	c.st.Clock += t
	c.st.CompTime += t
	c.st.Flops += flops
}

// Cores returns this rank's core budget (1 unless the run was started
// with RunHybrid or an explicit NewComm budget).
func (c *Comm) Cores() int { return c.cores }

// ComputeParallel charges flops of kernel work that fans out across the
// rank's core budget: the full flops are counted as work performed, but
// the clock advances by only flops/cores at the streaming rate. Use it
// for the data-parallel kernels (Gram assembly over the owned block,
// batched products, residual updates); redundant per-rank scalar work
// (the µ×µ eigensolve, the prox step) stays on Compute.
func (c *Comm) ComputeParallel(flops float64) {
	t := flops / float64(c.cores) * c.machine.GammaStream
	c.st.Clock += t
	c.st.CompTime += t
	c.st.Flops += flops
}

// ComputeBlocked charges flops of blocked (BLAS-3-like) work with the
// given working set. If the working set exceeds the machine's cache the
// streaming rate applies — the cache knee behind the paper's observation
// that computation speedups of SA vanish for very large s.
func (c *Comm) ComputeBlocked(flops float64, workingSetWords int) {
	t := flops * c.machine.gammaFor(true, workingSetWords)
	c.st.Clock += t
	c.st.CompTime += t
	c.st.Flops += flops
}

// ComputeBlockedParallel is ComputeBlocked across the rank's core
// budget: flops/cores at the blocked (or, past the cache knee, the
// streaming) rate. The working set is not divided — the cores cooperate
// on one shared block, as the pool's partitioned Gram kernels do.
func (c *Comm) ComputeBlockedParallel(flops float64, workingSetWords int) {
	t := flops / float64(c.cores) * c.machine.gammaFor(true, workingSetWords)
	c.st.Clock += t
	c.st.CompTime += t
	c.st.Flops += flops
}

// StatsMark is a snapshot of a rank's cost accounting, used with Restore
// to exclude instrumentation (objective tracking, convergence checks) from
// the modeled time and traffic of a solver run. All ranks must mark and
// restore around the same collective sequence to stay consistent.
type StatsMark struct{ st RankStats }

// Mark snapshots this rank's cost state.
func (c *Comm) Mark() StatsMark { return StatsMark{st: c.st} }

// Restore rewinds this rank's cost state to a snapshot.
func (c *Comm) Restore(m StatsMark) { c.st = m.st }

// BlockRange splits n items over p ranks as evenly as possible and returns
// the half-open range owned by rank r. The first n%p ranks receive one
// extra item. It is the 1D partitioner used for both the row-partitioned
// Lasso layout and the column-partitioned SVM layout.
func BlockRange(n, p, r int) (lo, hi int) {
	base := n / p
	rem := n % p
	lo = r*base + min(r, rem)
	hi = lo + base
	if r < rem {
		hi++
	}
	return lo, hi
}
