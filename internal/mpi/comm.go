// Package mpi is a small message-passing runtime that stands in for MPI in
// the paper's experiments. Ranks are goroutines, messages are Go channels,
// and collectives are binomial trees, so a "cluster" runs inside one
// process with real parallelism and real synchronization costs.
//
// Alongside real execution the runtime maintains a virtual clock per rank
// in an α-β-γ machine model (see Machine). Every message advances the
// sender's and receiver's clocks by α + β·words; every Compute call
// advances the caller's clock by γ·flops. The maximum clock over ranks is
// the modeled parallel running time — the quantity Figures 3 and 4 of the
// paper plot. This is how a 12,288-core Cray XC30 experiment is reproduced
// faithfully in shape on a laptop: the counts of messages, words and flops
// are exact, and the machine constants are presets.
package mpi

import (
	"fmt"
	"sync"
	"time"
)

// message is one point-to-point transfer, carrying the sender's virtual
// clock at completion of the send so the receiver can align.
type message struct {
	data  []float64
	tag   int
	clock float64
}

// World owns the channel mesh and per-rank statistics for one simulated
// cluster run.
type World struct {
	p       int
	cores   int // per-rank core budget (hybrid rank×thread runs)
	machine Machine
	chans   [][]chan message // chans[src][dst]
	stats   []RankStats
}

// RankStats is the per-rank accounting of one run.
type RankStats struct {
	Clock    float64 // virtual seconds: total modeled time of this rank
	CompTime float64 // virtual seconds spent computing
	CommTime float64 // virtual seconds in messaging (transfer + wait)
	Flops    float64 // flops charged
	Msgs     int64   // messages sent
	Words    int64   // 8-byte words sent
}

// Stats summarizes a completed run.
type Stats struct {
	PerRank []RankStats
	Wall    time.Duration // real elapsed time of the goroutine run
}

// MaxClock returns the modeled parallel running time: the maximum virtual
// clock over ranks (the critical path through the message DAG).
func (s *Stats) MaxClock() float64 {
	var m float64
	for _, r := range s.PerRank {
		if r.Clock > m {
			m = r.Clock
		}
	}
	return m
}

// MaxComm returns the largest per-rank communication time. The paper's
// Fig. 4e–h communication speedups are ratios of this quantity.
func (s *Stats) MaxComm() float64 {
	var m float64
	for _, r := range s.PerRank {
		if r.CommTime > m {
			m = r.CommTime
		}
	}
	return m
}

// MaxComp returns the largest per-rank computation time.
func (s *Stats) MaxComp() float64 {
	var m float64
	for _, r := range s.PerRank {
		if r.CompTime > m {
			m = r.CompTime
		}
	}
	return m
}

// TotalMsgs returns the total number of messages sent by all ranks.
func (s *Stats) TotalMsgs() int64 {
	var n int64
	for _, r := range s.PerRank {
		n += r.Msgs
	}
	return n
}

// TotalWords returns the total number of words sent by all ranks.
func (s *Stats) TotalWords() int64 {
	var n int64
	for _, r := range s.PerRank {
		n += r.Words
	}
	return n
}

// Comm is one rank's handle into the world. All methods are called from
// that rank's goroutine only.
type Comm struct {
	world *World
	rank  int
	st    RankStats
	seq   int       // collective sequence number (SPMD-aligned)
	one   []float64 // scratch for scalar reductions
}

// Rank returns this rank's id in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.world.p }

// Machine returns the cost model in effect.
func (c *Comm) Machine() Machine { return c.world.machine }

// Elapsed returns this rank's virtual clock in seconds.
func (c *Comm) Elapsed() float64 { return c.st.Clock }

// Run executes body on p ranks and returns the per-rank statistics. It is
// the moral equivalent of mpirun: body is the SPMD program. The first
// error returned by any rank aborts the run's result (after all goroutines
// finish, so no rank is left blocked on a channel forever — programs are
// expected to be deterministic SPMD and fail collectively).
func Run(p int, m Machine, body func(c *Comm) error) (*Stats, error) {
	return RunHybrid(p, 1, m, body)
}

// RunHybrid is Run with a per-rank core budget: every rank owns cores
// threads, the hybrid MPI×threads configuration of modern MPI codes (the
// paper's natural extension; cf. ROADMAP). The budget has two effects,
// both the rank program's to apply: kernels may actually run on that
// many shared-memory workers (see dist.Options.RankWorkers), and
// parallelizable work charged through ComputeParallel /
// ComputeBlockedParallel advances the virtual clock by flops/cores — the
// model's assumption of perfectly scaling intra-rank kernels.
// Communication costs are unchanged: one message per rank pair, exactly
// like a one-rank-per-node MPI+OpenMP layout.
func RunHybrid(p, cores int, m Machine, body func(c *Comm) error) (*Stats, error) {
	if p <= 0 {
		return nil, fmt.Errorf("mpi: Run with p=%d", p)
	}
	if cores < 1 {
		cores = 1
	}
	w := &World{p: p, cores: cores, machine: m, stats: make([]RankStats, p)}
	w.chans = make([][]chan message, p)
	for i := range w.chans {
		w.chans[i] = make([]chan message, p)
		for j := range w.chans[i] {
			// Capacity bounds the number of in-flight messages per
			// ordered pair. Binomial-tree collectives need 1; a margin
			// is kept for pipelined point-to-point use.
			w.chans[i][j] = make(chan message, 64)
		}
	}
	errs := make([]error, p)
	start := time.Now()
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			comm := &Comm{world: w, rank: rank}
			errs[rank] = body(comm)
			w.stats[rank] = comm.st
		}(r)
	}
	wg.Wait()
	stats := &Stats{PerRank: w.stats, Wall: time.Since(start)}
	for _, err := range errs {
		if err != nil {
			return stats, err
		}
	}
	return stats, nil
}

// Send transfers a copy of data to rank dst with the given tag. Copying
// makes messages immutable in flight, so callers may reuse buffers freely
// (the copy is also what a real NIC DMA would do). The sender's clock
// advances by α + β·len(data): sends are not overlapped, matching the
// non-offloaded MPI the paper benchmarks.
func (c *Comm) Send(dst, tag int, data []float64) {
	if dst == c.rank {
		panic("mpi: Send to self")
	}
	m := c.world.machine
	cost := m.Alpha + m.Beta*float64(len(data))
	c.st.Clock += cost
	c.st.CommTime += cost
	c.st.Msgs++
	c.st.Words += int64(len(data))
	payload := make([]float64, len(data))
	copy(payload, data)
	c.world.chans[c.rank][dst] <- message{data: payload, tag: tag, clock: c.st.Clock}
}

// Recv blocks until the next message from src arrives and returns its
// payload. The receiver's clock advances to at least the message's arrival
// time (sender completion), so waiting is charged as communication. Recv
// panics if the arriving tag does not match, which catches mismatched SPMD
// programs immediately instead of silently misdelivering.
func (c *Comm) Recv(src, tag int) []float64 {
	msg := <-c.world.chans[src][c.rank]
	if msg.tag != tag {
		panic(fmt.Sprintf("mpi: rank %d expected tag %d from %d, got %d", c.rank, tag, src, msg.tag))
	}
	before := c.st.Clock
	if msg.clock > c.st.Clock {
		c.st.Clock = msg.clock
	}
	c.st.CommTime += c.st.Clock - before
	return msg.data
}

// Compute charges flops of local work at the streaming (BLAS-1 / sparse)
// rate. The caller performs the actual arithmetic itself; Compute only
// advances the virtual clock.
func (c *Comm) Compute(flops float64) {
	t := flops * c.world.machine.GammaStream
	c.st.Clock += t
	c.st.CompTime += t
	c.st.Flops += flops
}

// Cores returns this rank's core budget (1 unless the run was started
// with RunHybrid).
func (c *Comm) Cores() int { return c.world.cores }

// ComputeParallel charges flops of kernel work that fans out across the
// rank's core budget: the full flops are counted as work performed, but
// the clock advances by only flops/cores at the streaming rate. Use it
// for the data-parallel kernels (Gram assembly over the owned block,
// batched products, residual updates); redundant per-rank scalar work
// (the µ×µ eigensolve, the prox step) stays on Compute.
func (c *Comm) ComputeParallel(flops float64) {
	t := flops / float64(c.world.cores) * c.world.machine.GammaStream
	c.st.Clock += t
	c.st.CompTime += t
	c.st.Flops += flops
}

// ComputeBlocked charges flops of blocked (BLAS-3-like) work with the
// given working set. If the working set exceeds the machine's cache the
// streaming rate applies — the cache knee behind the paper's observation
// that computation speedups of SA vanish for very large s.
func (c *Comm) ComputeBlocked(flops float64, workingSetWords int) {
	t := flops * c.world.machine.gammaFor(true, workingSetWords)
	c.st.Clock += t
	c.st.CompTime += t
	c.st.Flops += flops
}

// ComputeBlockedParallel is ComputeBlocked across the rank's core
// budget: flops/cores at the blocked (or, past the cache knee, the
// streaming) rate. The working set is not divided — the cores cooperate
// on one shared block, as the pool's partitioned Gram kernels do.
func (c *Comm) ComputeBlockedParallel(flops float64, workingSetWords int) {
	t := flops / float64(c.world.cores) * c.world.machine.gammaFor(true, workingSetWords)
	c.st.Clock += t
	c.st.CompTime += t
	c.st.Flops += flops
}

// StatsMark is a snapshot of a rank's cost accounting, used with Restore
// to exclude instrumentation (objective tracking, convergence checks) from
// the modeled time and traffic of a solver run. All ranks must mark and
// restore around the same collective sequence to stay consistent.
type StatsMark struct{ st RankStats }

// Mark snapshots this rank's cost state.
func (c *Comm) Mark() StatsMark { return StatsMark{st: c.st} }

// Restore rewinds this rank's cost state to a snapshot.
func (c *Comm) Restore(m StatsMark) { c.st = m.st }

// BlockRange splits n items over p ranks as evenly as possible and returns
// the half-open range owned by rank r. The first n%p ranks receive one
// extra item. It is the 1D partitioner used for both the row-partitioned
// Lasso layout and the column-partitioned SVM layout.
func BlockRange(n, p, r int) (lo, hi int) {
	base := n / p
	rem := n % p
	lo = r*base + min(r, rem)
	hi = lo + base
	if r < rem {
		hi++
	}
	return lo, hi
}
