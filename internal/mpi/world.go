package mpi

import (
	"context"
	"fmt"
	"net"
	"time"
)

// WorldOptions configures an in-process world run beyond the rank count
// and machine model. The zero value is the plain simulated world with
// sequential ranks.
type WorldOptions struct {
	// Cores is the per-rank core budget (RunHybrid semantics); values
	// below 1 mean one core.
	Cores int
	// TCP, when non-nil, runs the world over a loopback TCP mesh
	// instead of the simulated channel world, with the given transport
	// options (zero fields take the DialTCP defaults). The rendezvous
	// listens on an ephemeral loopback port.
	TCP *TCPOptions
	// Wrap, when non-nil, wraps each rank's transport endpoint before
	// the rank program runs. It is the fault-injection seam
	// (internal/mpi/faulty interposes kill/drop/delay faults here) and
	// works for any other interposer (tracing, traffic capture). The
	// returned Transport must delegate Rank and Size faithfully.
	Wrap func(rank int, t Transport) Transport
}

// RunWorld executes body on p ranks within this process, over either the
// simulated channel world or a loopback TCP mesh (opt.TCP). It is the
// general driver behind Run, RunHybrid and RunTCP, and the only one that
// exposes the transport wrap seam. Error semantics match Run: ranks
// blocked on a failed peer fail fast with a *PeerError, and firstError
// prefers the root cause.
func RunWorld(ctx context.Context, p int, m Machine, opt WorldOptions, body func(c *Comm) error) (*Stats, error) {
	if p <= 0 {
		return nil, fmt.Errorf("mpi: RunWorld with p=%d", p)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	cores := opt.Cores
	if cores < 1 {
		cores = 1
	}
	var dial func(rank int) (Transport, error)
	if opt.TCP != nil {
		// Reserve the rendezvous port before any rank dials: bind the
		// listener here and hand it to rank 0, so peers never race it.
		topt := *opt.TCP
		var lc net.ListenConfig
		ln, err := lc.Listen(ctx, "tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("mpi: RunWorld listen: %w", err)
		}
		addr := ln.Addr().String()
		if topt.RendezvousTimeout <= 0 {
			if d, ok := ctx.Deadline(); ok {
				if left := time.Until(d); left > 0 {
					topt.RendezvousTimeout = left
				}
			}
		}
		dial = func(rank int) (Transport, error) {
			if rank == 0 {
				return bootTCPRoot(ctx, ln, p, &topt)
			}
			return DialTCP(ctx, rank, p, addr, &topt)
		}
	} else {
		w := newSimWorld(ctx, p)
		dial = func(rank int) (Transport, error) {
			return w.transport(rank), nil
		}
	}
	if wrap := opt.Wrap; wrap != nil {
		inner := dial
		dial = func(rank int) (Transport, error) {
			t, err := inner(rank)
			if err != nil {
				return nil, err
			}
			return wrap(rank, t), nil
		}
	}
	return runWorld(p, cores, m, body, dial)
}
