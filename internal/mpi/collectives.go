package mpi

import "fmt"

// Op selects the combining operator of a reduction.
type Op int

// Reduction operators.
const (
	Sum Op = iota
	Max
)

func (o Op) combine(dst, src []float64) {
	switch o {
	case Sum:
		for i, v := range src {
			dst[i] += v
		}
	case Max:
		for i, v := range src {
			if v > dst[i] {
				dst[i] = v
			}
		}
	default:
		panic(fmt.Sprintf("mpi: unknown op %d", o))
	}
}

// Collective tags combine a per-rank sequence number with the collective
// kind (tag = -(8·seq + kind)) so that a mismatched program — one rank in
// a Bcast while another is in a Reduce — fails with a tagged error
// instead of exchanging wrong data. SPMD programs execute the same
// collective sequence on every rank, keeping the counters aligned.
// Negative tags keep the collective namespace disjoint from user
// point-to-point tags (>= 0).
const (
	kindReduce = iota
	kindBcast
	kindBarrier
	kindGather
)

func (c *Comm) collTag(kind int) int {
	c.seq++
	return -(c.seq*8 + kind)
}

// Reduce combines data from all ranks with op, leaving the result in data
// on root. Non-root ranks' buffers hold partial combines afterwards and
// must be treated as scratch. Binomial tree: ⌈log₂P⌉ rounds, each moving
// len(data) words, so the latency per call is O(log P) — the L term of
// Table I. A failed peer aborts with a *PeerError; the partially combined
// buffer must then be discarded.
func (c *Comm) Reduce(root int, op Op, data []float64) error {
	p, r := c.Size(), c.Rank()
	if p == 1 {
		return nil
	}
	tag := c.collTag(kindReduce)
	// Rotate so the algorithm always reduces to virtual rank 0.
	vr := (r - root + p) % p
	for dist := 1; dist < p; dist <<= 1 {
		if vr&dist != 0 {
			dst := ((vr - dist) + root) % p
			return c.Send(dst, tag, data)
		}
		if vr+dist < p {
			src := ((vr + dist) + root) % p
			in, err := c.Recv(src, tag)
			if err != nil {
				return err
			}
			c.Compute(float64(len(data))) // combine cost: one op per word
			op.combine(data, in)
		}
	}
	return nil
}

// Bcast sends root's data to all ranks, in place. Binomial tree, ⌈log₂P⌉
// rounds.
func (c *Comm) Bcast(root int, data []float64) error {
	p, r := c.Size(), c.Rank()
	if p == 1 {
		return nil
	}
	tag := c.collTag(kindBcast)
	vr := (r - root + p) % p
	// Find the top of the power-of-two range covering p.
	top := 1
	for top < p {
		top <<= 1
	}
	// Receive once from the parent, then forward down the tree.
	recvd := vr == 0
	for dist := top >> 1; dist >= 1; dist >>= 1 {
		if !recvd && vr&dist != 0 {
			if vr&(dist-1) == 0 { // it is our turn this round
				src := ((vr - dist) + root) % p
				in, err := c.Recv(src, tag)
				if err != nil {
					return err
				}
				copy(data, in)
				recvd = true
			}
			continue
		}
		if recvd && vr&(dist-1) == 0 && vr+dist < p {
			dst := ((vr + dist) + root) % p
			if err := c.Send(dst, tag, data); err != nil {
				return err
			}
		}
	}
	return nil
}

// Allreduce combines data across ranks with op and leaves the identical
// result on every rank. It is implemented as Reduce to rank 0 followed by
// Bcast, which guarantees bitwise-identical results on all ranks — the
// property the solvers rely on to keep replicated vectors consistent
// (Fig. 1 step 4: "Sum reduce dot-products and replicate on all
// processors").
func (c *Comm) Allreduce(op Op, data []float64) error {
	if c.Size() == 1 {
		return nil
	}
	// Reduce leaves partial combines in non-root buffers, but the Bcast
	// overwrites them with the root's result, so data can be reduced in
	// place.
	if err := c.Reduce(0, op, data); err != nil {
		return err
	}
	return c.Bcast(0, data)
}

// AllreduceScalar is Allreduce for a single value, returning the result.
func (c *Comm) AllreduceScalar(op Op, v float64) (float64, error) {
	buf := c.scratch1()
	buf[0] = v
	if err := c.Allreduce(op, buf); err != nil {
		return 0, err
	}
	return buf[0], nil
}

// Barrier blocks until every rank has entered it. Dissemination algorithm:
// ⌈log₂P⌉ rounds of zero-word messages, so a barrier costs about α·log₂P —
// this is exactly the per-iteration synchronization cost the SA methods
// amortize.
func (c *Comm) Barrier() error {
	p, r := c.Size(), c.Rank()
	if p == 1 {
		return nil
	}
	tag := c.collTag(kindBarrier)
	for dist := 1; dist < p; dist <<= 1 {
		dst := (r + dist) % p
		src := (r - dist + p) % p
		if err := c.Send(dst, tag, nil); err != nil {
			return err
		}
		if _, err := c.Recv(src, tag); err != nil {
			return err
		}
	}
	return nil
}

// Gather concatenates equal-length blocks on root: the result holds rank
// i's block at offset i*len(local). Non-root ranks return nil. Binomial
// tree with doubling block ranges.
func (c *Comm) Gather(root int, local []float64) ([]float64, error) {
	p, r := c.Size(), c.Rank()
	blk := len(local)
	if p == 1 {
		out := make([]float64, blk)
		copy(out, local)
		return out, nil
	}
	tag := c.collTag(kindGather)
	vr := (r - root + p) % p
	// acc holds the blocks of a contiguous virtual-rank range [vr, ...).
	acc := make([]float64, blk, blk*nextPow2(p))
	copy(acc, local)
	for dist := 1; dist < p; dist <<= 1 {
		if vr&dist != 0 {
			dst := ((vr - dist) + root) % p
			if err := c.Send(dst, tag, acc); err != nil {
				return nil, err
			}
			break
		}
		if vr+dist < p {
			src := ((vr + dist) + root) % p
			in, err := c.Recv(src, tag)
			if err != nil {
				return nil, err
			}
			acc = append(acc, in...)
		}
	}
	if vr != 0 {
		return nil, nil
	}
	// acc is ordered by virtual rank; rotate back to actual rank order.
	out := make([]float64, blk*p)
	for v := 0; v < p; v++ {
		actual := (v + root) % p
		copy(out[actual*blk:(actual+1)*blk], acc[v*blk:(v+1)*blk])
	}
	return out, nil
}

// Allgather concatenates equal-length blocks and replicates the result on
// every rank (Gather to rank 0 followed by Bcast).
func (c *Comm) Allgather(local []float64) ([]float64, error) {
	p := c.Size()
	blk := len(local)
	full, err := c.Gather(0, local)
	if err != nil {
		return nil, err
	}
	if c.Rank() != 0 {
		full = make([]float64, blk*p)
	}
	if err := c.Bcast(0, full); err != nil {
		return nil, err
	}
	return full, nil
}

// scratch1 returns the reusable single-element buffer for scalar
// reductions, avoiding a heap allocation per call in tight solver loops.
func (c *Comm) scratch1() []float64 {
	if c.one == nil {
		c.one = make([]float64, 1)
	}
	return c.one
}

func nextPow2(p int) int {
	n := 1
	for n < p {
		n <<= 1
	}
	return n
}
