package mpi

import (
	"errors"
	"testing"
)

// closeFailTransport is a stub endpoint whose Close fails; the bodies
// under test never actually message.
type closeFailTransport struct {
	rank, size int
	closeErr   error
}

func (t *closeFailTransport) Rank() int               { return t.rank }
func (t *closeFailTransport) Size() int               { return t.size }
func (t *closeFailTransport) Send(int, Message) error { return nil }
func (t *closeFailTransport) Recv(int) (Message, error) {
	return Message{}, errors.New("closeFailTransport: no messages")
}
func (t *closeFailTransport) Close() error { return t.closeErr }

// A transport close failure on an otherwise-clean rank must surface
// from the driver instead of being swallowed by the deferred teardown
// (the commerr finding this regression test pins down).
func TestRunWorldSurfacesCloseError(t *testing.T) {
	boom := errors.New("socket leaked")
	_, err := runWorld(3, 1, Machine{}, func(c *Comm) error { return nil },
		func(rank int) (Transport, error) {
			var cerr error
			if rank == 1 {
				cerr = boom
			}
			return &closeFailTransport{rank: rank, size: 3, closeErr: cerr}, nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("runWorld error = %v, want the rank-1 close failure", err)
	}
}

// When the rank body itself failed, that root cause wins over the
// close error — teardown noise must not mask the real failure.
func TestRunWorldBodyErrorBeatsCloseError(t *testing.T) {
	bodyErr := errors.New("solver diverged")
	closeErr := errors.New("socket leaked")
	_, err := runWorld(2, 1, Machine{},
		func(c *Comm) error {
			if c.Rank() == 0 {
				return bodyErr
			}
			return nil
		},
		func(rank int) (Transport, error) {
			return &closeFailTransport{rank: rank, size: 2, closeErr: closeErr}, nil
		})
	if !errors.Is(err, bodyErr) {
		t.Fatalf("runWorld error = %v, want the body error", err)
	}
}

// Clean bodies over clean transports: no error at all.
func TestRunWorldCleanClose(t *testing.T) {
	stats, err := runWorld(2, 1, Machine{}, func(c *Comm) error { return nil },
		func(rank int) (Transport, error) {
			return &closeFailTransport{rank: rank, size: 2}, nil
		})
	if err != nil {
		t.Fatalf("runWorld: %v", err)
	}
	if len(stats.PerRank) != 2 {
		t.Fatalf("PerRank = %d entries, want 2", len(stats.PerRank))
	}
}
