package mpi

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"testing"
	"time"
)

// TestRecvFromFinishedPeerFailsFast is the regression test for the
// silent-deadlock failure mode: a Recv from a rank that already finished
// used to block the simulated world forever. It must now fail fast with
// a *PeerError naming both ranks.
func TestRecvFromFinishedPeerFailsFast(t *testing.T) {
	for _, tr := range transports {
		t.Run(tr.name, func(t *testing.T) {
			done := make(chan error, 1)
			go func() {
				_, err := tr.run(bg, 2, 1, Zero(), func(c *Comm) error {
					if c.Rank() == 0 {
						return nil // finish without ever sending
					}
					_, err := c.Recv(0, 5)
					if err == nil {
						return errors.New("recv from finished peer succeeded")
					}
					return err
				})
				done <- err
			}()
			select {
			case err := <-done:
				if !errors.Is(err, ErrPeerGone) {
					t.Fatalf("err = %v, want ErrPeerGone", err)
				}
				var pe *PeerError
				if !errors.As(err, &pe) {
					t.Fatalf("err = %T, want *PeerError", err)
				}
				if pe.Rank != 1 || pe.Peer != 0 || pe.Op != "recv" || pe.Tag != 5 {
					t.Fatalf("PeerError = %+v, want rank 1 recv from rank 0 tag 5", pe)
				}
			case <-time.After(30 * time.Second):
				t.Fatal("world deadlocked on a finished peer")
			}
		})
	}
}

// TestFinishedPeerDrainsInFlightMessages: a peer's sends happen before
// its close, so a message already in flight must still be delivered even
// if the sender has since finished — only then does the peer count as
// gone. Without this guarantee a fast sender racing a slow receiver
// would drop tail messages.
func TestFinishedPeerDrainsInFlight(t *testing.T) {
	for _, tr := range transports {
		t.Run(tr.name, func(t *testing.T) {
			_, err := tr.run(bg, 2, 1, Zero(), func(c *Comm) error {
				if c.Rank() == 0 {
					return c.Send(1, 3, []float64{7}) // send and finish immediately
				}
				time.Sleep(50 * time.Millisecond) // let rank 0 finish first
				in, err := c.Recv(0, 3)
				if err != nil {
					return err
				}
				if in[0] != 7 {
					return fmt.Errorf("got %v", in)
				}
				_, err = c.Recv(0, 4) // nothing else is coming
				if !errors.Is(err, ErrPeerGone) {
					return fmt.Errorf("second recv: err = %v, want ErrPeerGone", err)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestTornConnectionCleanError injects a mid-collective fault: one TCP
// rank slams its endpoint shut while its peers are blocked inside an
// allreduce. The survivors must surface a clean *PeerError — not hang,
// not panic — and the driver must prefer the root cause.
func TestTornConnectionCleanError(t *testing.T) {
	sabotage := errors.New("sabotaged")
	done := make(chan error, 1)
	go func() {
		_, err := RunTCP(bg, 4, 1, Zero(), func(c *Comm) error {
			if err := c.Barrier(); err != nil { // everyone is up
				return err
			}
			if c.Rank() == 2 {
				// Tear the mesh down without the courtesy of finishing
				// the program: peers mid-recv see the connection die.
				c.CloseTransport()
				return sabotage
			}
			err := c.Allreduce(Sum, make([]float64, 1024))
			if err == nil {
				return errors.New("allreduce survived a torn peer")
			}
			var pe *PeerError
			if !errors.As(err, &pe) {
				return fmt.Errorf("err = %T (%v), want *PeerError", err, err)
			}
			return err
		})
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, sabotage) {
			t.Fatalf("err = %v, want the sabotage root cause", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("world hung on a torn connection")
	}
}

// TestRecvDeadline: a silent (but connected) peer must trip the receive
// deadline rather than stall the rank forever.
func TestRecvDeadline(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	opt := &TCPOptions{RecvTimeout: 100 * time.Millisecond}
	errs := make(chan error, 2)
	go func() {
		t0, err := bootTCPRoot(bg, ln, 2, opt)
		if err != nil {
			errs <- err
			return
		}
		defer t0.Close()
		_, err = t0.Recv(1) // rank 1 stays silent
		errs <- err
	}()
	t1, err := DialTCP(bg, 1, 2, ln.Addr().String(), opt)
	if err != nil {
		t.Fatal(err)
	}
	defer t1.Close()
	select {
	case err := <-errs:
		if !errors.Is(err, os.ErrDeadlineExceeded) {
			t.Fatalf("err = %v, want deadline exceeded", err)
		}
		var pe *PeerError
		if !errors.As(err, &pe) || pe.Rank != 0 || pe.Peer != 1 {
			t.Fatalf("err = %v, want *PeerError rank 0 from rank 1", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("recv deadline never fired")
	}
}

// TestBootstrapRejectsMismatchedWorldSize: a peer joining with the wrong
// world size is a misconfigured cluster; the rendezvous must refuse it.
func TestBootstrapRejectsMismatchedWorldSize(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	opt := &TCPOptions{RendezvousTimeout: 5 * time.Second}
	rootErr := make(chan error, 1)
	go func() {
		_, err := bootTCPRoot(bg, ln, 3, opt)
		rootErr <- err
	}()
	if _, err := DialTCP(bg, 1, 2, addr, opt); err == nil {
		// The peer itself may or may not observe the refusal (its hello
		// was sent); the root must reject either way.
		t.Log("peer dial unexpectedly succeeded; checking root")
	}
	select {
	case err := <-rootErr:
		if err == nil {
			t.Fatal("root accepted a peer with mismatched world size")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("root bootstrap hung")
	}
}

// TestDialTCPValidatesRank: out-of-range ranks are caller bugs, caught
// before any socket is opened.
func TestDialTCPValidatesRank(t *testing.T) {
	for _, tc := range []struct{ rank, size int }{{-1, 4}, {4, 4}, {0, 0}} {
		if _, err := DialTCP(bg, tc.rank, tc.size, "127.0.0.1:1", nil); err == nil {
			t.Fatalf("DialTCP(%d, %d) succeeded", tc.rank, tc.size)
		}
	}
}

// TestRendezvousTimeout: rank 0 waiting for peers that never come must
// give up at the rendezvous deadline with a context error, not block.
func TestRendezvousTimeout(t *testing.T) {
	opt := &TCPOptions{RendezvousTimeout: 150 * time.Millisecond}
	start := time.Now()
	_, err := DialTCP(bg, 0, 2, "127.0.0.1:0", opt)
	if err == nil {
		t.Fatal("bootstrap succeeded without peers")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 20*time.Second {
		t.Fatalf("bootstrap took %v to fail", elapsed)
	}
}

// TestRunCancellation: cancelling the run's context releases ranks
// blocked in a receive (the shutdown path of a driver that gives up).
func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := Run(ctx, 2, Zero(), func(c *Comm) error {
			if c.Rank() == 0 {
				<-ctx.Done() // hold the rank open so nobody closes cleanly
				return ctx.Err()
			}
			cancel()
			_, err := c.Recv(0, 1) // nothing will ever arrive
			return err
		})
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancellation did not release the world")
	}
}

// TestTCPSendRecvLargePayload round-trips a frame big enough to span
// many TCP segments, checking the length-prefixed framing end to end.
func TestTCPSendRecvLargePayload(t *testing.T) {
	const n = 1 << 18 // 2 MiB payload
	_, err := RunTCP(bg, 2, 1, Zero(), func(c *Comm) error {
		if c.Rank() == 0 {
			data := make([]float64, n)
			for i := range data {
				data[i] = float64(i%977) * 0.5
			}
			return c.Send(1, 9, data)
		}
		in, err := c.Recv(0, 9)
		if err != nil {
			return err
		}
		if len(in) != n {
			return fmt.Errorf("len = %d, want %d", len(in), n)
		}
		for i := range in {
			if in[i] != float64(i%977)*0.5 {
				return fmt.Errorf("elem %d = %v", i, in[i])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
