package mpi

import (
	"testing"
	"time"
)

func TestDialBackoffGrowsAndCaps(t *testing.T) {
	prev := time.Duration(0)
	for attempt := 0; attempt < 6; attempt++ {
		d := dialBackoff(attempt, 0)
		if d <= prev {
			t.Fatalf("attempt %d: backoff %v did not grow past %v", attempt, d, prev)
		}
		prev = d
	}
	capped := dialBackoff(20, 0)
	if capped != dialBackoffCap {
		t.Fatalf("attempt 20: backoff %v, want the cap %v", capped, dialBackoffCap)
	}
	if dialBackoff(1000, 0) != capped {
		t.Fatalf("backoff must stay at the cap for arbitrarily late attempts")
	}
}

func TestDialBackoffStaggersRanks(t *testing.T) {
	// Two ranks in different stagger slots must not share an instant.
	a := dialBackoff(10, 1)
	b := dialBackoff(10, 2)
	if a == b {
		t.Fatalf("ranks 1 and 2 retry together at %v", a)
	}
	// The schedule is a pure function: same inputs, same wait.
	if dialBackoff(3, 5) != dialBackoff(3, 5) {
		t.Fatalf("dialBackoff is not deterministic")
	}
	// Stagger is bounded: no rank waits more than cap + 15 slots.
	worst := dialBackoffCap + 15*dialBackoffStagger
	for r := 0; r < 64; r++ {
		if d := dialBackoff(30, r); d > worst {
			t.Fatalf("rank %d: backoff %v exceeds bound %v", r, d, worst)
		}
	}
}
