package mpi

import "time"

// Dial retry pacing. A fixed short interval makes every waiting rank
// hammer rank 0's rendezvous listener in lockstep — at large rank
// counts the accept queue sees a thundering herd every 50 ms. The
// schedule below is exponential with a cap, plus a per-rank stagger so
// ranks spread over the retry window instead of arriving together. It
// is a pure function of (attempt, rank): no clocks, no randomness, so
// the nondet contract holds and the schedule is reproducible in tests.
const (
	dialBackoffBase    = 5 * time.Millisecond
	dialBackoffCap     = 400 * time.Millisecond
	dialBackoffStagger = 2 * time.Millisecond // per rank slot, mod 16
)

// dialBackoff returns the wait before retry number attempt (0-based) of
// the given rank's dial loop: base·2^attempt capped at dialBackoffCap,
// staggered by the rank's slot in a 16-wide comb. First retries stay
// fast (5–10 ms, so small worlds still assemble instantly); by the cap
// each rank retries at ~2.5 Hz instead of 20 Hz.
func dialBackoff(attempt, rank int) time.Duration {
	d := dialBackoffCap
	if attempt < 7 { // 5ms << 7 already exceeds the 400ms cap
		d = dialBackoffBase << uint(attempt)
		if d > dialBackoffCap {
			d = dialBackoffCap
		}
	}
	if rank < 0 {
		rank = -rank
	}
	return d + time.Duration(rank%16)*dialBackoffStagger
}
