package mpi

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"os"
	"sync"
	"time"
)

// TCPOptions tunes the networked transport. The zero value (or a nil
// pointer) picks defaults suitable for loopback clusters and CI.
type TCPOptions struct {
	// RendezvousTimeout bounds the bootstrap: rank 0 waiting for all
	// hellos, peers dialing the rendezvous address (with retry, so
	// process start order does not matter) and the mesh handshake.
	// Default 30s.
	RendezvousTimeout time.Duration
	// SendTimeout is the per-frame write deadline. A peer that stops
	// draining its socket fails the sender within this bound instead of
	// blocking forever. Default 30s.
	SendTimeout time.Duration
	// RecvTimeout bounds how long Recv waits for the next frame from a
	// peer. SPMD programs advance in lockstep, so a silence longer than
	// this means the peer is dead or the program is mismatched; the
	// receiver fails with a *PeerError instead of hanging. Default 120s;
	// set negative to disable.
	RecvTimeout time.Duration
	// ListenAddr is where a non-root rank listens for mesh connections
	// from higher ranks. Default "127.0.0.1:0" (loopback, ephemeral
	// port); multi-machine clusters set it to an externally reachable
	// interface.
	ListenAddr string
	// AdvertiseAddr overrides the address published to peers in the
	// world descriptor. Default: the mesh listener's own address (works
	// on loopback; NAT or multi-homed hosts override it).
	AdvertiseAddr string
	// Epoch is the control-plane generation of this world. A supervised
	// cluster bumps it on every restart so that stale dialers from a
	// previous generation — a zombie process still retrying the
	// rendezvous after its world was torn down and rebuilt — are
	// refused instead of corrupting the new mesh. Rank 0 rejects hellos
	// carrying an epoch below its own and adopts the highest epoch it
	// sees; the agreed value rides the world descriptor, so every
	// endpoint learns it (Transport Epoch / TransportEpoch). Negative
	// means unknown (a freshly resumed process that cannot know how
	// many generations passed): such a rank joins any epoch and adopts
	// the world's. Default 0.
	Epoch int
}

func (o *TCPOptions) withDefaults() TCPOptions {
	var v TCPOptions
	if o != nil {
		v = *o
	}
	if v.RendezvousTimeout <= 0 {
		v.RendezvousTimeout = 30 * time.Second
	}
	if v.SendTimeout <= 0 {
		v.SendTimeout = 30 * time.Second
	}
	if v.RecvTimeout == 0 {
		v.RecvTimeout = 120 * time.Second
	}
	if v.ListenAddr == "" {
		v.ListenAddr = "127.0.0.1:0"
	}
	return v
}

// helloMsg is the bootstrap control message: a peer's hello to rank 0
// and the ident a mesh dialer presents. Control messages are
// length-prefixed JSON; data frames are binary (see writeFrame).
type helloMsg struct {
	Rank  int    `json:"rank"`
	Size  int    `json:"size"`
	Addr  string `json:"addr,omitempty"`
	Epoch int    `json:"epoch"` // negative: unknown, join any generation
}

// worldMsg is the descriptor rank 0 broadcasts once every peer has said
// hello: the mesh addresses of all ranks. Addrs[0] is unused (every rank
// is already connected to rank 0 via its hello connection).
type worldMsg struct {
	Size  int      `json:"size"`
	Addrs []string `json:"addrs"`
	Epoch int      `json:"epoch"` // the agreed control-plane generation
}

// transportTCP is the networked Transport: a full mesh of TCP
// connections, one per rank pair, with length-prefixed frames
// [u32 words][i64 tag][u64 clock bits][payload float64 LE]. A per-peer
// reader goroutine feeds an inbox channel, so Recv is a channel wait
// with a deadline and a torn connection surfaces as a sticky error, not
// a hang. Bootstrap: rank 0 listens at the rendezvous address, peers
// dial (with retry), exchange hellos, and rank 0 broadcasts the world
// descriptor; the hello connection is reused as the 0↔r data
// connection, and within the mesh the lower rank listens while the
// higher rank dials.
type transportTCP struct {
	rank, size int
	opt        TCPOptions
	epoch      int // the world's agreed control-plane generation
	conns      []net.Conn
	inbox      []chan Message
	rerr       []error // sticky reader error per peer, set before inbox close
	mu         sync.Mutex
	closed     chan struct{}
	closeOnce  sync.Once
	wbuf       []byte // send serialization buffer (single sender goroutine)
}

// Epoch returns the world's agreed control-plane generation (see
// TCPOptions.Epoch). A supervised process passes Epoch+1 when it
// rebuilds the mesh after a peer loss.
func (t *transportTCP) Epoch() int { return t.epoch }

// TransportEpoch returns t's control-plane epoch when the transport has
// one (the TCP mesh); the simulated world and other transports report 0.
func TransportEpoch(t Transport) int {
	if e, ok := t.(interface{ Epoch() int }); ok {
		return e.Epoch()
	}
	return 0
}

// DialTCP establishes one rank's endpoint of a TCP world of the given
// size. addr is the rendezvous address: rank 0 listens on it, every
// other rank dials it (retrying until the rendezvous timeout, so ranks
// may start in any order). The call returns once the full connection
// mesh is up — it is the collective "MPI_Init" of a networked run.
func DialTCP(ctx context.Context, rank, size int, addr string, opt *TCPOptions) (Transport, error) {
	if size <= 0 || rank < 0 || rank >= size {
		return nil, fmt.Errorf("mpi: DialTCP rank %d of %d", rank, size)
	}
	o := opt.withDefaults()
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithTimeout(ctx, o.RendezvousTimeout)
	defer cancel()
	t := &transportTCP{
		rank:   rank,
		size:   size,
		opt:    o,
		epoch:  max(o.Epoch, 0),
		conns:  make([]net.Conn, size),
		inbox:  make([]chan Message, size),
		rerr:   make([]error, size),
		closed: make(chan struct{}),
	}
	for i := range t.inbox {
		t.inbox[i] = make(chan Message, 64)
	}
	var err error
	if rank == 0 {
		err = t.bootstrapRoot(ctx, addr)
	} else {
		err = t.bootstrapPeer(ctx, addr)
	}
	if err != nil {
		t.Close() //saco:nolint commerr best-effort teardown of a half-built mesh; the bootstrap error is propagating
		return nil, fmt.Errorf("mpi: rank %d: tcp bootstrap: %w", rank, err)
	}
	for p := 0; p < size; p++ {
		if p != rank {
			go t.reader(p)
		}
	}
	return t, nil
}

// bootstrapRoot runs rank 0's side of the rendezvous: listen, collect a
// hello from every peer, then broadcast the world descriptor.
func (t *transportTCP) bootstrapRoot(ctx context.Context, addr string) error {
	var lc net.ListenConfig
	ln, err := lc.Listen(ctx, "tcp", addr)
	if err != nil {
		return fmt.Errorf("listen %s: %w", addr, err)
	}
	defer ln.Close()
	return t.acceptPeers(ctx, ln)
}

// acceptPeers is the body of rank 0's rendezvous over an already-bound
// listener: collect a hello from every peer, then broadcast the world
// descriptor. The hello connections become the 0↔r data connections.
// Hellos from an older control-plane epoch are refused (connection
// closed, accept loop continues): they are zombies of a torn-down world
// generation, and letting one in would wedge the rebuilt mesh. The
// agreed epoch — the highest seen, so a restarted root with an unknown
// epoch converges on the survivors' — rides the descriptor.
func (t *transportTCP) acceptPeers(ctx context.Context, ln net.Listener) error {
	stopGuard := closeOnDone(ctx, ln)
	defer stopGuard()
	addrs := make([]string, t.size)
	for have := 1; have < t.size; {
		conn, err := ln.Accept()
		if err != nil {
			return fmt.Errorf("accept (have %d of %d peers): %w", have-1, t.size-1, ctxErr(ctx, err))
		}
		var hello helloMsg
		if err := readCtl(conn, &hello); err != nil {
			conn.Close()
			return fmt.Errorf("read hello: %w", err)
		}
		if hello.Epoch >= 0 && hello.Epoch < t.epoch {
			// A stale dialer from a previous world generation: refuse it
			// and keep the rendezvous open for the real peers. The zombie
			// sees EOF on the descriptor read and gives up when its own
			// rendezvous timeout expires.
			conn.Close()
			continue
		}
		if hello.Size != t.size {
			conn.Close()
			return fmt.Errorf("peer rank %d joined with world size %d, want %d", hello.Rank, hello.Size, t.size)
		}
		if hello.Rank <= 0 || hello.Rank >= t.size || t.conns[hello.Rank] != nil {
			conn.Close()
			return fmt.Errorf("invalid or duplicate hello from rank %d", hello.Rank)
		}
		if hello.Epoch > t.epoch {
			t.epoch = hello.Epoch
		}
		t.conns[hello.Rank] = conn
		addrs[hello.Rank] = hello.Addr
		have++
	}
	world := worldMsg{Size: t.size, Addrs: addrs, Epoch: t.epoch}
	for p := 1; p < t.size; p++ {
		if err := writeCtl(t.conns[p], world); err != nil {
			return fmt.Errorf("send world descriptor to rank %d: %w", p, err)
		}
	}
	return nil
}

// bootstrapPeer runs a non-root rank's side: open the mesh listener,
// dial the rendezvous with retry, say hello, learn the world, then
// build the mesh (dial every lower rank, accept every higher one).
func (t *transportTCP) bootstrapPeer(ctx context.Context, addr string) error {
	var lc net.ListenConfig
	ln, err := lc.Listen(ctx, "tcp", t.opt.ListenAddr)
	if err != nil {
		return fmt.Errorf("mesh listen %s: %w", t.opt.ListenAddr, err)
	}
	defer ln.Close()
	stopGuard := closeOnDone(ctx, ln)
	defer stopGuard()
	advertise := t.opt.AdvertiseAddr
	if advertise == "" {
		advertise = ln.Addr().String()
	}

	root, err := dialRetry(ctx, addr, t.rank)
	if err != nil {
		return fmt.Errorf("dial rendezvous %s: %w", addr, err)
	}
	t.conns[0] = root
	if err := writeCtl(root, helloMsg{Rank: t.rank, Size: t.size, Addr: advertise, Epoch: t.opt.Epoch}); err != nil {
		return fmt.Errorf("send hello: %w", err)
	}
	var world worldMsg
	if err := readCtl(root, &world); err != nil {
		return fmt.Errorf("read world descriptor: %w", err)
	}
	if world.Size != t.size || len(world.Addrs) != t.size {
		return fmt.Errorf("world descriptor size %d, want %d", world.Size, t.size)
	}
	t.epoch = world.Epoch // the root's agreed generation

	// Mesh rule: the lower rank listens, the higher rank dials. Every
	// mesh listener exists before rank 0 releases the descriptor (it is
	// opened before the hello), so the dials below cannot race a missing
	// listener; the kernel backlog holds them until the peer accepts.
	for q := 1; q < t.rank; q++ {
		conn, err := dialRetry(ctx, world.Addrs[q], t.rank)
		if err != nil {
			return fmt.Errorf("dial mesh peer rank %d at %s: %w", q, world.Addrs[q], err)
		}
		if err := writeCtl(conn, helloMsg{Rank: t.rank, Size: t.size}); err != nil {
			conn.Close()
			return fmt.Errorf("ident to rank %d: %w", q, err)
		}
		t.conns[q] = conn
	}
	for n := t.rank + 1; n < t.size; n++ {
		conn, err := ln.Accept()
		if err != nil {
			return fmt.Errorf("mesh accept: %w", ctxErr(ctx, err))
		}
		var ident helloMsg
		if err := readCtl(conn, &ident); err != nil {
			conn.Close()
			return fmt.Errorf("read mesh ident: %w", err)
		}
		if ident.Rank <= t.rank || ident.Rank >= t.size || t.conns[ident.Rank] != nil {
			conn.Close()
			return fmt.Errorf("invalid or duplicate mesh ident from rank %d", ident.Rank)
		}
		t.conns[ident.Rank] = conn
	}
	return nil
}

// closeOnDone closes c when ctx is cancelled, unblocking Accept/Read
// calls that have no context form. The returned stop function must be
// deferred to release the watcher.
func closeOnDone(ctx context.Context, c io.Closer) (stop func()) {
	done := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			c.Close()
		case <-done:
		}
	}()
	return func() { close(done) }
}

// ctxErr prefers the context's error over the opaque network error it
// induces (closed listener, reset connection) so bootstrap timeouts read
// as timeouts.
func ctxErr(ctx context.Context, err error) error {
	if ctx.Err() != nil {
		return ctx.Err()
	}
	return err
}

// dialRetry dials addr until it succeeds or ctx expires, pacing retries
// with dialBackoff. Retrying makes process start order irrelevant: a
// peer may come up before the rank it must reach is listening.
func dialRetry(ctx context.Context, addr string, rank int) (net.Conn, error) {
	var d net.Dialer
	var lastErr error
	for attempt := 0; ; attempt++ {
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err == nil {
			if tc, ok := conn.(*net.TCPConn); ok {
				tc.SetNoDelay(true) // latency matters more than batching here
			}
			return conn, nil
		}
		lastErr = err
		select {
		case <-ctx.Done():
			if lastErr != nil {
				return nil, fmt.Errorf("%w (last attempt: %v)", ctx.Err(), lastErr)
			}
			return nil, ctx.Err()
		case <-time.After(dialBackoff(attempt, rank)):
		}
	}
}

// Control-plane messages are length-prefixed JSON. The explicit length
// prefix (rather than a streaming decoder) keeps the decoder from
// buffering past the message into the binary frames that follow on the
// same connection.
const maxCtlBytes = 1 << 20

func writeCtl(conn net.Conn, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	buf := make([]byte, 4+len(body))
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(body)))
	copy(buf[4:], body)
	_, err = conn.Write(buf)
	return err
}

func readCtl(conn net.Conn, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxCtlBytes {
		return fmt.Errorf("control message of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(conn, body); err != nil {
		return err
	}
	return json.Unmarshal(body, v)
}

// Data frames: [u32 payload words][i64 tag][u64 clock bits][payload LE].
const (
	frameHdrBytes = 4 + 8 + 8
	maxFrameWords = 1 << 27 // 1 GiB of payload; anything larger is corruption
)

// Rank returns this endpoint's rank.
func (t *transportTCP) Rank() int { return t.rank }

// Size returns the world's rank count.
func (t *transportTCP) Size() int { return t.size }

// Send serializes msg into one frame and writes it under the send
// deadline. Serialization completes before return, so the caller may
// reuse the payload buffer.
func (t *transportTCP) Send(dst int, msg Message) error {
	if dst < 0 || dst >= t.size || dst == t.rank {
		return fmt.Errorf("mpi: rank %d: send to invalid rank %d of %d", t.rank, dst, t.size)
	}
	conn := t.conns[dst]
	need := frameHdrBytes + 8*len(msg.Data)
	if cap(t.wbuf) < need {
		t.wbuf = make([]byte, need)
	}
	buf := t.wbuf[:need]
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(msg.Data)))
	binary.LittleEndian.PutUint64(buf[4:12], uint64(int64(msg.Tag)))
	binary.LittleEndian.PutUint64(buf[12:20], math.Float64bits(msg.Clock))
	for i, v := range msg.Data {
		binary.LittleEndian.PutUint64(buf[frameHdrBytes+8*i:], math.Float64bits(v))
	}
	// A failed deadline set means the connection is already dead (closed
	// or torn down); report it as the peer failure it is rather than
	// silently writing without pacing and blocking on a wedged socket.
	if err := conn.SetWriteDeadline(time.Now().Add(t.opt.SendTimeout)); err != nil { //saco:nolint nondet socket write deadline: I/O pacing only, never trajectory time
		return &PeerError{Rank: t.rank, Peer: dst, Op: "send", Tag: msg.Tag,
			Err: fmt.Errorf("set write deadline: %w", err)}
	}
	if _, err := conn.Write(buf); err != nil {
		return &PeerError{Rank: t.rank, Peer: dst, Op: "send", Tag: msg.Tag, Err: err}
	}
	return nil
}

// reader pulls frames from peer p's connection into its inbox. On any
// read error it records the sticky cause and closes the inbox, so every
// later Recv from p fails immediately instead of waiting out a timeout.
func (t *transportTCP) reader(p int) {
	conn := t.conns[p]
	var hdr [frameHdrBytes]byte
	var payload []byte
	for {
		_, err := io.ReadFull(conn, hdr[:])
		if err == nil {
			words := binary.LittleEndian.Uint32(hdr[0:4])
			if words > maxFrameWords {
				err = fmt.Errorf("frame of %d words exceeds limit", words)
			} else {
				need := 8 * int(words)
				if cap(payload) < need {
					payload = make([]byte, need)
				}
				_, err = io.ReadFull(conn, payload[:need])
				if err == nil {
					msg := Message{
						Tag:   int(int64(binary.LittleEndian.Uint64(hdr[4:12]))),
						Clock: math.Float64frombits(binary.LittleEndian.Uint64(hdr[12:20])),
						Data:  make([]float64, words),
					}
					for i := range msg.Data {
						msg.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8*i:]))
					}
					select {
					case t.inbox[p] <- msg:
						continue
					case <-t.closed:
						return
					}
				}
			}
		}
		if err == io.EOF {
			// The peer closed its end cleanly: it finished (or its
			// process exited) without sending what we may still expect.
			err = ErrPeerGone
		}
		t.mu.Lock()
		t.rerr[p] = err
		t.mu.Unlock()
		close(t.inbox[p]) // only this goroutine sends on the inbox
		return
	}
}

func (t *transportTCP) readErr(p int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.rerr[p] != nil {
		return t.rerr[p]
	}
	return ErrPeerGone
}

// Recv waits for peer src's next frame under the receive deadline. A
// torn connection, a vanished peer, a closed endpoint and a silent peer
// all surface as a *PeerError naming both ranks.
func (t *transportTCP) Recv(src int) (Message, error) {
	if src < 0 || src >= t.size || src == t.rank {
		return Message{}, fmt.Errorf("mpi: rank %d: recv from invalid rank %d of %d", t.rank, src, t.size)
	}
	var timeout <-chan time.Time
	if t.opt.RecvTimeout > 0 {
		timer := time.NewTimer(t.opt.RecvTimeout)
		defer timer.Stop()
		timeout = timer.C
	}
	select {
	case msg, ok := <-t.inbox[src]:
		if !ok {
			return Message{}, &PeerError{Rank: t.rank, Peer: src, Op: "recv", Err: t.readErr(src)}
		}
		return msg, nil
	case <-t.closed:
		return Message{}, &PeerError{Rank: t.rank, Peer: src, Op: "recv", Err: net.ErrClosed}
	case <-timeout:
		return Message{}, &PeerError{Rank: t.rank, Peer: src, Op: "recv",
			Err: fmt.Errorf("no frame within %v: %w", t.opt.RecvTimeout, os.ErrDeadlineExceeded)}
	}
}

// Close tears down the connection mesh. Idempotent; safe to call from a
// goroutine other than the rank's own (shutdown paths).
func (t *transportTCP) Close() error {
	t.closeOnce.Do(func() {
		close(t.closed)
		for _, conn := range t.conns {
			if conn != nil {
				conn.Close()
			}
		}
	})
	return nil
}

// RunTCP executes body on p ranks connected over a loopback TCP mesh
// within this process: the networked twin of RunHybrid, used by the
// transport-parity tests and anywhere a real-socket run of an SPMD
// program is wanted without spawning processes. The rendezvous listens
// on an ephemeral loopback port. Deterministic programs produce
// bitwise-identical results and modeled stats to RunHybrid — the
// transports carry the same message DAG and piggybacked clocks.
func RunTCP(ctx context.Context, p, cores int, m Machine, body func(c *Comm) error) (*Stats, error) {
	return RunWorld(ctx, p, m, WorldOptions{Cores: cores, TCP: &TCPOptions{}}, body)
}

// bootTCPRoot builds rank 0's endpoint over an already-bound listener
// (RunTCP's ephemeral-port case; DialTCP binds its own from an address).
func bootTCPRoot(ctx context.Context, ln net.Listener, size int, opt *TCPOptions) (Transport, error) {
	o := opt.withDefaults()
	ctx, cancel := context.WithTimeout(ctx, o.RendezvousTimeout)
	defer cancel()
	t := &transportTCP{
		rank:   0,
		size:   size,
		opt:    o,
		epoch:  max(o.Epoch, 0),
		conns:  make([]net.Conn, size),
		inbox:  make([]chan Message, size),
		rerr:   make([]error, size),
		closed: make(chan struct{}),
	}
	for i := range t.inbox {
		t.inbox[i] = make(chan Message, 64)
	}
	err := t.acceptPeers(ctx, ln)
	ln.Close() // rendezvous is over either way
	if err != nil {
		t.Close() //saco:nolint commerr best-effort teardown of a half-built mesh; the bootstrap error is propagating
		return nil, fmt.Errorf("mpi: rank 0: tcp bootstrap: %w", err)
	}
	for p := 1; p < size; p++ {
		go t.reader(p)
	}
	return t, nil
}
