package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one constant key="value" pair attached to a series at
// registration time. Labels distinguish series within a family (the
// per-model registry counters use model="<name>"); they are fixed for
// the life of the series, never parsed back, and rendered sorted by key
// so identity is order-independent.
type Label struct{ Key, Value string }

// metric is one registered series (or histogram series bundle).
type metric interface {
	// write appends the series lines (without HELP/TYPE headers) for
	// this metric; name already carries the rendered label suffix.
	write(w io.Writer, name string) error
}

// entry is a registered metric plus its family metadata.
type entry struct {
	family string // bare family name (no labels)
	labels string // rendered {k="v",...} suffix, "" when none
	help   string
	typ    string // counter | gauge | histogram
	m      metric
}

// Registry holds named metrics and renders them in the Prometheus text
// exposition format. Registration is idempotent: asking for a series
// that already exists returns the existing instance, so per-model
// series survive ownership rebalances without double counting.
// Registering the same series under a different type is a programming
// error and panics, mirroring the prometheus client's MustRegister
// contract.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

// Counter is a monotone uint64. The zero value is usable; a nil
// *Counter ignores Add, so optional wiring needs no branches.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) write(w io.Writer, name string) error {
	_, err := fmt.Fprintf(w, "%s %d\n", name, c.v.Load())
	return err
}

// Gauge is a settable int64 level (queue depth, active version). The
// zero value is usable; nil ignores Set/Add.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current level (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

func (g *Gauge) write(w io.Writer, name string) error {
	_, err := fmt.Fprintf(w, "%s %d\n", name, g.v.Load())
	return err
}

// gaugeFunc samples a callback at scrape time — for levels that already
// live somewhere authoritative (len of a channel, a registry's version)
// and would drift if mirrored into a stored gauge.
type gaugeFunc struct{ fn func() float64 }

func (g gaugeFunc) write(w io.Writer, name string) error {
	_, err := fmt.Fprintf(w, "%s %s\n", name, formatFloat(g.fn()))
	return err
}

// Counter registers (or fetches) a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	e := r.register(name, help, "counter", labels, func() metric { return &Counter{} })
	return e.m.(*Counter)
}

// Gauge registers (or fetches) a stored gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	e := r.register(name, help, "gauge", labels, func() metric { return &Gauge{} })
	return e.m.(*Gauge)
}

// GaugeFunc registers a callback-backed gauge series; fn runs at every
// scrape. Re-registering an existing series replaces its callback
// (ownership of a per-model gauge moves with the model).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := name + renderLabels(labels)
	if e, ok := r.entries[key]; ok {
		if e.typ != "gauge" {
			panic(fmt.Sprintf("metrics: %s re-registered as gauge (is %s)", key, e.typ))
		}
		e.m = gaugeFunc{fn}
		return
	}
	r.entries[key] = &entry{family: name, labels: renderLabels(labels), help: help, typ: "gauge", m: gaugeFunc{fn}}
}

// Histogram registers (or fetches) a histogram with the given upper
// bucket bounds (strictly increasing; the +Inf bucket is implicit).
// Bounds are fixed for the life of the series — the exposition schema
// is deterministic by construction.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	e := r.register(name, help, "histogram", labels, func() metric { return newHistogram(buckets) })
	return e.m.(*Histogram)
}

// Unregister removes a series; a scrape no longer reports it. Removing
// an absent series is a no-op.
func (r *Registry) Unregister(name string, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.entries, name+renderLabels(labels))
}

// register is the shared idempotent-or-panic registration path.
func (r *Registry) register(name, help, typ string, labels []Label, mk func() metric) *entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	suffix := renderLabels(labels)
	key := name + suffix
	if e, ok := r.entries[key]; ok {
		if e.typ != typ {
			panic(fmt.Sprintf("metrics: %s re-registered as %s (is %s)", key, typ, e.typ))
		}
		return e
	}
	e := &entry{family: name, labels: suffix, help: help, typ: typ, m: mk()}
	r.entries[key] = e
	return e
}

// renderLabels renders a sorted, escaped {k="v",...} suffix ("" for no
// labels). Sorting makes series identity independent of argument order.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(l.Value))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// escapeLabel escapes the three characters the text format reserves.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// formatFloat renders a float64 the shortest way that round-trips,
// with Inf spelled the Prometheus way.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Write renders every registered series in the text exposition format:
// families sorted by name, series within a family sorted by label
// suffix, one HELP/TYPE header per family. The order is deterministic,
// so scrapes diff cleanly in tests.
func (r *Registry) Write(w io.Writer) error {
	r.mu.Lock()
	sorted := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		sorted = append(sorted, e)
	}
	r.mu.Unlock()
	// Families sorted by name, series within a family by label suffix:
	// every family's header precedes all of its series.
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].family != sorted[j].family {
			return sorted[i].family < sorted[j].family
		}
		return sorted[i].labels < sorted[j].labels
	})
	lastFamily := ""
	for _, e := range sorted {
		if e.family != lastFamily {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", e.family, e.help, e.family, e.typ); err != nil {
				return err
			}
			lastFamily = e.family
		}
		if err := e.m.write(w, e.family+e.labels); err != nil {
			return err
		}
	}
	return nil
}

// Handler serves the registry as a Prometheus-text scrape endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.Write(w) //nolint:errcheck // a vanished scraper needs no report
	})
}
