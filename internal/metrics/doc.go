// Package metrics is the zero-dependency operations surface of the
// serving layer: counters, gauges and histograms collected with atomic
// operations only and rendered in the Prometheus text exposition
// format.
//
// The design carries the repository's synchronization-avoiding stance
// into observability:
//
//   - Counters and gauges are single atomic words; incrementing one on
//     the request path costs one uncontended atomic add and never takes
//     a lock.
//   - Histograms stripe their bucket counters across cache-line-padded
//     shards so concurrent observers do not serialize on one hot line;
//     a scrape sums the shards in fixed shard order.
//   - Bucket boundaries are fixed at construction, so the exposition
//     layout — which series exist, in which order, with which "le"
//     labels — is deterministic across runs and replicas. Only the
//     observed totals vary; the schema never does.
//
// Metric identity is the name plus an optional pre-rendered label set
// (e.g. model="alpha"); Registry.Write emits families and series in
// sorted order, which keeps scrapes diffable in tests and CI.
package metrics
