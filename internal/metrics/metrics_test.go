package metrics

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestExpositionFormat pins the rendered text format: sorted families,
// one HELP/TYPE header each, label suffixes, cumulative buckets with a
// trailing +Inf, and _sum/_count series.
func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("saco_requests_total", "requests accepted").Add(3)
	r.Gauge("saco_queue_depth", "jobs queued").Set(2)
	r.GaugeFunc("saco_active_version", "serving version", func() float64 { return 7 }, Label{"model", "alpha"})
	h := r.Histogram("saco_batch_rows", "rows per batch", []float64{1, 4, 16})
	h.Observe(1)
	h.Observe(3)
	h.Observe(100)

	var sb strings.Builder
	if err := r.Write(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP saco_active_version serving version
# TYPE saco_active_version gauge
saco_active_version{model="alpha"} 7
# HELP saco_batch_rows rows per batch
# TYPE saco_batch_rows histogram
saco_batch_rows_bucket{le="1"} 1
saco_batch_rows_bucket{le="4"} 2
saco_batch_rows_bucket{le="16"} 2
saco_batch_rows_bucket{le="+Inf"} 3
saco_batch_rows_sum 104
saco_batch_rows_count 3
# HELP saco_queue_depth jobs queued
# TYPE saco_queue_depth gauge
saco_queue_depth 2
# HELP saco_requests_total requests accepted
# TYPE saco_requests_total counter
saco_requests_total 3
`
	if sb.String() != want {
		t.Fatalf("exposition mismatch:\n got:\n%s\nwant:\n%s", sb.String(), want)
	}
}

// TestLabeledHistogram: a label suffix folds into le= bucket labels and
// suffixes _sum/_count.
func TestLabeledHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "l", []float64{0.5}, Label{"model", "m1"})
	h.Observe(0.25)
	var sb strings.Builder
	if err := r.Write(&sb); err != nil {
		t.Fatal(err)
	}
	for _, line := range []string{
		`lat_bucket{model="m1",le="0.5"} 1`,
		`lat_bucket{model="m1",le="+Inf"} 1`,
		`lat_sum{model="m1"} 0.25`,
		`lat_count{model="m1"} 1`,
	} {
		if !strings.Contains(sb.String(), line+"\n") {
			t.Fatalf("missing %q in:\n%s", line, sb.String())
		}
	}
}

// TestIdempotentRegistration: the same (name, labels) returns the same
// instance; a different label value is a distinct series; a type clash
// panics.
func TestIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c", "h", Label{"model", "x"})
	b := r.Counter("c", "h", Label{"model", "x"})
	if a != b {
		t.Fatal("re-registration must return the existing counter")
	}
	c := r.Counter("c", "h", Label{"model", "y"})
	if c == a {
		t.Fatal("distinct label values must be distinct series")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("type clash must panic")
		}
	}()
	r.Gauge("c", "h", Label{"model", "x"})
}

// TestUnregister removes a series from scrapes.
func TestUnregister(t *testing.T) {
	r := NewRegistry()
	r.Counter("gone", "h", Label{"model", "x"}).Inc()
	r.Counter("kept", "h").Inc()
	r.Unregister("gone", Label{"model", "x"})
	var sb strings.Builder
	if err := r.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "gone") || !strings.Contains(sb.String(), "kept 1") {
		t.Fatalf("unregister failed:\n%s", sb.String())
	}
}

// TestNilSafety: nil metric handles ignore writes and read as zero, so
// optional wiring needs no branches.
func TestNilSafety(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Add(5)
	c.Inc()
	g.Set(3)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil metrics must read as zero")
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines
// (run under -race in CI) and checks that no observation is lost and
// the sum matches, shard striping notwithstanding.
func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "h", []float64{10, 100, 1000})
	const workers = 8
	const perWorker = 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(float64(i % 1500))
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("count = %d, want %d", got, workers*perWorker)
	}
	var wantSum float64
	for i := 0; i < perWorker; i++ {
		wantSum += float64(i % 1500)
	}
	wantSum *= workers
	if got := h.Sum(); math.Abs(got-wantSum) > 1e-6*wantSum {
		t.Fatalf("sum = %v, want ~%v", got, wantSum)
	}
	cum, count, _ := h.snapshot()
	if count != workers*perWorker || cum[len(cum)-1] != count {
		t.Fatalf("snapshot count %d / cum %v", count, cum)
	}
	for j := 1; j < len(cum); j++ {
		if cum[j] < cum[j-1] {
			t.Fatalf("cumulative counts must be monotone: %v", cum)
		}
	}
}

// TestHandler serves the scrape over HTTP with the text content type.
func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "h").Add(9)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	buf := make([]byte, 1024)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "x 9") {
		t.Fatalf("scrape body: %s", buf[:n])
	}
}

// TestBadBuckets: non-increasing bounds are a construction panic.
func TestBadBuckets(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on unsorted buckets")
		}
	}()
	NewRegistry().Histogram("h", "h", []float64{1, 1})
}

// TestLabelEscaping: reserved characters in label values are escaped.
func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("e", "h", Label{"k", `a"b\c` + "\n"}).Inc()
	var sb strings.Builder
	if err := r.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `e{k="a\"b\\c\n"} 1`) {
		t.Fatalf("escaping: %s", sb.String())
	}
}
