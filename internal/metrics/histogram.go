package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync/atomic"
)

// DefLatencyBuckets are the fixed latency bounds, in seconds, shared by
// every latency histogram in the serving layer: 100µs to 5s, roughly
// ×2.5 per step. Fixed bounds keep the exposition schema identical
// across replicas, so cluster-wide scrapes aggregate cleanly.
var DefLatencyBuckets = []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5}

// DefSizeBuckets are the fixed size bounds (rows per batch): powers of
// two through the dispatcher's default MaxBatch.
var DefSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}

// histShards stripes a histogram's counters so concurrent observers on
// different cores do not serialize on one cache line. Power of two so
// the cursor masks instead of dividing.
const histShards = 8

// histShard is one stripe: per-bucket observation counts (not
// cumulative; cumulation happens at scrape) plus the float64-bits sum.
// The trailing pad keeps adjacent shards off each other's cache lines —
// the counts arrays are separate allocations, but sumBits/cursor fields
// of neighbouring shards would otherwise share one.
type histShard struct {
	counts  []atomic.Uint64 // len(buckets)+1; last cell is +Inf
	sumBits atomic.Uint64   // float64 bits, CAS-added
	_       [4]uint64
}

// add accumulates v into the shard's sum with a CAS loop — the same
// lock-free float addition the HOGWILD iterate uses.
func (s *histShard) add(v float64) {
	for {
		old := s.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if s.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Histogram counts observations into fixed buckets. Buckets are upper
// bounds (le semantics), strictly increasing, frozen at construction;
// the implicit +Inf bucket catches the rest. Observe is lock-free: one
// atomic add on a striped counter plus one CAS-add on the striped sum.
//
// The shards field is atomic-only storage audited in this file (see
// internal/lint's atomicguard registry): all access goes through
// Observe and the snapshot methods below.
type Histogram struct {
	buckets []float64
	shards  []histShard
	cursor  atomic.Uint64 // round-robin shard cursor
}

// newHistogram validates and freezes the bucket bounds.
func newHistogram(buckets []float64) *Histogram {
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("metrics: histogram buckets not strictly increasing at %v", buckets[i]))
		}
	}
	h := &Histogram{
		buckets: append([]float64(nil), buckets...),
		shards:  make([]histShard, histShards),
	}
	for i := range h.shards {
		h.shards[i].counts = make([]atomic.Uint64, len(buckets)+1)
	}
	return h
}

// Observe records one value. Nil receivers ignore the call.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Smallest bucket whose bound is >= v (le semantics); past the last
	// bound lands in the +Inf cell.
	b := sort.SearchFloat64s(h.buckets, v)
	s := &h.shards[h.cursor.Add(1)&(histShards-1)]
	s.counts[b].Add(1)
	s.add(v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.shards {
		for j := range h.shards[i].counts {
			n += h.shards[i].counts[j].Load()
		}
	}
	return n
}

// Sum returns the sum of all observed values. Shards are reduced in
// fixed shard order; which shard an observation landed in is scheduling
// -dependent, so the float sum is operational, not bitwise-reproducible.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	var sum float64
	for i := range h.shards {
		sum += math.Float64frombits(h.shards[i].sumBits.Load())
	}
	return sum
}

// snapshot folds the shards into cumulative bucket counts (Prometheus
// exposition semantics), the total count and the value sum.
func (h *Histogram) snapshot() (cum []uint64, count uint64, sum float64) {
	cum = make([]uint64, len(h.buckets)+1)
	for i := range h.shards {
		for j := range h.shards[i].counts {
			cum[j] += h.shards[i].counts[j].Load()
		}
		sum += math.Float64frombits(h.shards[i].sumBits.Load())
	}
	for j := 1; j < len(cum); j++ {
		cum[j] += cum[j-1]
	}
	return cum, cum[len(cum)-1], sum
}

// write renders the _bucket/_sum/_count series. name may carry a
// rendered {k="v"} suffix; the le label folds into it.
func (h *Histogram) write(w io.Writer, name string) error {
	cum, count, sum := h.snapshot()
	base, labels := name, ""
	if j := strings.IndexByte(name, '{'); j >= 0 {
		base, labels = name[:j], name[j+1:len(name)-1]+","
	}
	suffix := ""
	if labels != "" {
		suffix = "{" + labels[:len(labels)-1] + "}"
	}
	for j, bound := range h.buckets {
		if _, err := fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", base, labels, formatFloat(bound), cum[j]); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", base, labels, count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", base, suffix, formatFloat(sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", base, suffix, count)
	return err
}
