package lint

import (
	"go/ast"
	"go/types"
)

// MapIter flags range statements over maps in deterministic packages.
// Go randomizes map iteration order on purpose; in a package whose
// outputs are asserted bitwise-reproducible, feeding that order into
// float accumulation, ordered output, or shard/manifest serialization
// is a replay-breaking bug. The one recognized-safe shape is
// collect-then-sort: a loop whose body only appends keys or values to
// one slice which the same function later passes to a sort.* /
// slices.Sort* call.
var MapIter = &Analyzer{
	Name: "mapiter",
	Doc: "flags range over maps in deterministic packages " +
		"(map order is random; collect keys and sort, or keep a slice)",
	Run: runMapIter,
}

func runMapIter(pass *Pass) error {
	if !deterministicPkgs[pass.Path] {
		return nil
	}
	for _, f := range pass.Files {
		// Track the enclosing function body so the collect-then-sort
		// escape can look for the later sort call.
		inspectStack([]*ast.File{f}, func(n ast.Node, stack []ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if collectThenSort(pass, rs, enclosingBody(stack)) {
				return true
			}
			pass.Report(rs.For,
				"iteration over map %s in a deterministic package: map order is random; "+
					"collect the keys into a slice and sort it (or keep the data in a slice) before consuming",
				types.ExprString(rs.X))
			return true
		})
	}
	return nil
}

// enclosingBody returns the body of the innermost function declaration
// or literal on the stack.
func enclosingBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

// collectThenSort reports whether rs is the sanctioned shape: every
// statement in its body appends to the same slice variable, and the
// enclosing function later sorts that slice.
func collectThenSort(pass *Pass, rs *ast.RangeStmt, body *ast.BlockStmt) bool {
	if body == nil || len(rs.Body.List) == 0 {
		return false
	}
	var target *types.Var
	for _, stmt := range rs.Body.List {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return false
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return false
		}
		v, ok := pass.Info.Uses[id].(*types.Var)
		if !ok {
			if v, ok = pass.Info.Defs[id].(*types.Var); !ok {
				return false
			}
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return false
		}
		if fid, ok := call.Fun.(*ast.Ident); !ok || fid.Name != "append" {
			return false
		}
		if target == nil {
			target = v
		} else if target != v {
			return false
		}
	}
	if target == nil {
		return false
	}
	// Look for a later sort.*(...) or slices.Sort*(...) mentioning the
	// collected slice.
	sorted := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if exprMentions(pass, arg, target) {
				sorted = true
				return false
			}
		}
		return true
	})
	return sorted
}

// exprMentions reports whether v is referenced anywhere inside e.
func exprMentions(pass *Pass, e ast.Expr, v *types.Var) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == v {
			found = true
			return false
		}
		return !found
	})
	return found
}
