package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// Src maps each file name to its raw bytes; the nolint filter needs
	// line text to tell trailing comments from standalone ones.
	Src map[string][]byte
}

// listEntry is the subset of `go list -json` output the loader needs.
type listEntry struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
}

// ExportClosure resolves patterns with `go list` in dir and returns
// just the import-path → export-data map; the fixture test harness
// uses it to type-check testdata packages against the real repository
// types.
func ExportClosure(dir string, patterns ...string) (map[string]string, error) {
	_, exports, err := listExports(dir, patterns...)
	return exports, err
}

// listExports resolves patterns with `go list -export -deps -json` run
// in dir, returning the target packages (everything matched by
// patterns that is neither a dependency-only entry nor part of the
// standard library) and a map from import path to export-data file
// covering the full dependency closure. The go command compiles
// through its build cache, so repeated runs are cheap and fully
// offline.
func listExports(dir string, patterns ...string) ([]listEntry, map[string]string, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, errb.String())
	}
	exports := make(map[string]string)
	var targets []listEntry
	dec := json.NewDecoder(&out)
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
		if !e.DepOnly && !e.Standard {
			targets = append(targets, e)
		}
	}
	return targets, exports, nil
}

// NewImporter returns a types.Importer that serves every import from
// the export-data files in exports — the mechanism `go vet` uses to
// type-check one package at a time.
func NewImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// Load resolves patterns (relative to dir, "" meaning the current
// directory) and returns the matched packages parsed and type-checked.
func Load(dir string, patterns ...string) ([]*Package, error) {
	targets, exports, err := listExports(dir, patterns...)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := NewImporter(fset, exports)
	var pkgs []*Package
	for _, t := range targets {
		var names []string
		for _, f := range t.GoFiles {
			names = append(names, filepath.Join(t.Dir, f))
		}
		p, err := CheckFiles(fset, imp, t.ImportPath, names)
		if err != nil {
			return nil, err
		}
		p.Dir = t.Dir
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// CheckFiles parses and type-checks one package from explicit file
// names under the import path asPath, resolving imports through imp.
// It is the entry point for drivers that already know the file set —
// the `go vet -vettool` protocol and the fixture test harness.
func CheckFiles(fset *token.FileSet, imp types.Importer, asPath string, fileNames []string) (*Package, error) {
	src := make(map[string][]byte, len(fileNames))
	var files []*ast.File
	for _, name := range fileNames {
		b, err := os.ReadFile(name)
		if err != nil {
			return nil, err
		}
		src[name] = b
		f, err := parser.ParseFile(fset, name, b, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(asPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", asPath, err)
	}
	return &Package{
		Path:  asPath,
		Fset:  fset,
		Files: files,
		Pkg:   pkg,
		Info:  info,
		Src:   src,
	}, nil
}
