package lint_test

import (
	"testing"

	"saco/internal/lint"
	"saco/internal/lint/linttest"
)

// The transport surface: the fixture imports the real saco/internal/mpi
// package, so the guarded methods are the genuine Send/Recv/Close and
// collectives. Dropped errors flagged in every form (expression
// statement, defer, go, assignment to _); handled and nolint'd calls
// allowed.
func TestCommErrTransport(t *testing.T) {
	linttest.Run(t, lint.CommErr, "testdata/commerr/mpi", "saco/internal/dist")
}

// The cluster-router surface: the fixture imports the real
// saco/internal/shard package, so the guarded method is the genuine
// Router.Forward. Dropped errors flagged; Dispatch (void by design),
// handled and nolint'd calls allowed.
func TestCommErrShardRouter(t *testing.T) {
	linttest.Run(t, lint.CommErr, "testdata/commerr/shard", "saco/internal/serve")
}

// The file surface: (*os.File).Close and .Sync with dropped errors in a
// streaming package.
func TestCommErrFile(t *testing.T) {
	linttest.Run(t, lint.CommErr, "testdata/commerr/file", "saco/internal/stream")
}

// File Close/Sync checking is scoped to the streaming/IO packages and
// the CLIs; in a kernel package the same drops are not commerr's
// concern.
func TestCommErrFileScope(t *testing.T) {
	linttest.RunClean(t, lint.CommErr, "testdata/commerr/file", "saco/internal/core")
}

// The net.Conn deadline setters: dropped errors flagged on the
// interface and on the concrete conns (whose setters promote from an
// unexported embedded type), in ANY package — the fixture type-checks
// as saco/internal/core, outside the file-rule scope, to pin that down.
func TestCommErrNetConnDeadlines(t *testing.T) {
	linttest.Run(t, lint.CommErr, "testdata/commerr/netconn", "saco/internal/core")
}
