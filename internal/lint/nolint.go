package lint

import (
	"bytes"
	"fmt"
	"go/token"
	"strings"
)

// nolintPrefix introduces a suppression comment:
//
//	//saco:nolint <analyzer>[,<analyzer>] <reason>
//
// The reason is mandatory — a suppression without one is itself a
// diagnostic — so every accepted deviation from the determinism and
// concurrency contracts carries its justification in the source.
const nolintPrefix = "//saco:nolint"

// nolintEntry is one parsed suppression comment.
type nolintEntry struct {
	names  []string // analyzers suppressed
	line   int      // line the suppression applies to
	pos    token.Position
	broken string // non-empty: why the comment itself is malformed
}

// suppressions scans a package's comments for //saco:nolint entries.
// A trailing comment (code before it on the line) suppresses its own
// line; a standalone comment suppresses the next line.
func suppressions(p *Package) []nolintEntry {
	var entries []nolintEntry
	for _, f := range p.Files {
		name := p.Fset.Position(f.Pos()).Filename
		src := p.Src[name]
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, nolintPrefix) {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				e := nolintEntry{pos: pos, line: pos.Line}
				if standalone(src, pos) {
					e.line++
				}
				rest := strings.TrimPrefix(c.Text, nolintPrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // some other directive, e.g. //saco:nolintXYZ
				}
				fields := strings.Fields(rest)
				switch {
				case len(fields) == 0:
					e.broken = "suppression names no analyzer (want //saco:nolint <analyzer> <reason>)"
				case len(fields) == 1:
					e.broken = "suppression has no reason — the reason is mandatory (want //saco:nolint <analyzer> <reason>)"
				default:
					e.names = strings.Split(fields[0], ",")
				}
				entries = append(entries, e)
			}
		}
	}
	return entries
}

// standalone reports whether the comment at pos is alone on its line
// (only whitespace before it), in which case it applies to the line
// below rather than its own.
func standalone(src []byte, pos token.Position) bool {
	if src == nil || pos.Offset > len(src) {
		return false
	}
	lineStart := bytes.LastIndexByte(src[:pos.Offset], '\n') + 1
	return len(bytes.TrimSpace(src[lineStart:pos.Offset])) == 0
}

// applySuppressions drops diagnostics matched by a //saco:nolint entry
// and appends a diagnostic for every malformed or unknown-name
// suppression. known is the set of valid analyzer names.
func applySuppressions(diags []Diagnostic, entries []nolintEntry, known map[string]bool) []Diagnostic {
	type key struct {
		file string
		line int
		name string
	}
	suppressed := make(map[key]bool)
	var out []Diagnostic
	for _, e := range entries {
		if e.broken != "" {
			out = append(out, Diagnostic{Analyzer: "nolint", Pos: e.pos, Message: e.broken})
			continue
		}
		for _, n := range e.names {
			if !known[n] {
				out = append(out, Diagnostic{
					Analyzer: "nolint", Pos: e.pos,
					Message: fmt.Sprintf("suppression names unknown analyzer %q", n),
				})
				continue
			}
			suppressed[key{e.pos.Filename, e.line, n}] = true
		}
	}
	for _, d := range diags {
		if suppressed[key{d.Pos.Filename, d.Pos.Line, d.Analyzer}] {
			continue
		}
		out = append(out, d)
	}
	return out
}
