package lint_test

import (
	"os"
	"strings"
	"testing"

	"saco/internal/lint"
	"saco/internal/lint/linttest"
)

// The suppression machinery, asserted directly on the diagnostic list
// (a want comment cannot share a line with the suppression under test).
// The fixture is a hot-path package full of time.Now calls; nondet
// supplies the findings and the //saco:nolint comments vary in
// validity.
func TestNolint(t *testing.T) {
	const dir = "testdata/nolint/src"
	diags := linttest.Diagnostics(t, lint.All(), dir, "saco/internal/core")

	line := lineLocator(t, dir+"/src.go")
	type want struct {
		analyzer string
		line     int
		contains string
	}
	wants := []want{
		// A suppression without a reason is malformed, and the finding
		// it failed to suppress survives alongside the complaint.
		{"nolint", line("func missingReason") + 1, "no reason"},
		{"nondet", line("func missingReason") + 1, "time.Now"},
		// An unknown analyzer name is reported and suppresses nothing.
		{"nolint", line("func unknownName") + 1, `unknown analyzer "nodnet"`},
		{"nondet", line("func unknownName") + 1, "time.Now"},
		// Naming the wrong (but real) analyzer is well-formed, yet the
		// nondet finding is untouched.
		{"nondet", line("func wrongName") + 1, "time.Now"},
		// No suppression at all.
		{"nondet", line("func bare") + 1, "time.Now"},
	}

	matched := make([]bool, len(diags))
	for _, w := range wants {
		found := false
		for i, d := range diags {
			if matched[i] || d.Analyzer != w.analyzer || d.Pos.Line != w.line {
				continue
			}
			if !strings.Contains(d.Message, w.contains) {
				continue
			}
			matched[i], found = true, true
			break
		}
		if !found {
			t.Errorf("missing diagnostic: [%s] line %d containing %q", w.analyzer, w.line, w.contains)
		}
	}
	// Everything else — in particular the valid trailing and standalone
	// suppressions in ok and okStandalone — must be silent.
	for i, d := range diags {
		if !matched[i] {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}

// Suppression names validate against the whole suite even when only a
// subset of analyzers runs: `savet -only mapiter` over code carrying
// valid nondet suppressions must not misreport them as unknown names.
// Only the genuinely malformed comments still surface.
func TestNolintKnownNamesWithSubset(t *testing.T) {
	diags := linttest.Diagnostics(t, []*lint.Analyzer{lint.MapIter},
		"testdata/nolint/src", "saco/internal/core")
	var got []string
	for _, d := range diags {
		if strings.Contains(d.Message, `unknown analyzer "nondet"`) ||
			strings.Contains(d.Message, `unknown analyzer "mapiter"`) {
			t.Errorf("valid suite name misreported as unknown: %s", d)
		}
		got = append(got, d.Analyzer+": "+d.Message)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want exactly the two malformed suppressions:\n%s",
			len(diags), strings.Join(got, "\n"))
	}
}

// lineLocator maps a unique substring of the fixture to its 1-based
// line number, so the assertions track the source instead of hard-coded
// positions.
func lineLocator(t *testing.T, path string) func(marker string) int {
	t.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading fixture: %v", err)
	}
	lines := strings.Split(string(src), "\n")
	return func(marker string) int {
		hit := 0
		for i, l := range lines {
			if strings.Contains(l, marker) {
				if hit != 0 {
					t.Fatalf("marker %q is not unique in %s", marker, path)
				}
				hit = i + 1
			}
		}
		if hit == 0 {
			t.Fatalf("marker %q not found in %s", marker, path)
		}
		return hit
	}
}
