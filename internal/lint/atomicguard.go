package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
)

// guardedField is a struct field documented atomic-only. Any selector
// access outside its home file is a violation (the home file holds the
// audited accessor methods); when atomicElems is set, even the home
// file may only index the field underneath a sync/atomic call.
type guardedField struct {
	pkg, typ, field string
	home            string
	atomicElems     bool
	why             string
}

// guardedVar is a package-level variable documented atomic-only,
// referenced legally only from its home file.
type guardedVar struct {
	pkg, name string
	home      string
	why       string
}

// The registry of atomic-only storage. Each entry names an invariant
// one of the -race CI gates proves at runtime; this analyzer keeps new
// code from ever reaching those gates with a plain load or store.
var guardedFields = []guardedField{
	{
		pkg: "saco/internal/mat", typ: "AtomicVec", field: "bits",
		home: "atomic.go", atomicElems: true,
		why: "the HOGWILD shared iterate: every element access must be a sync/atomic op or updates tear",
	},
	{
		pkg: "saco/internal/runtime", typ: "job", field: "taken",
		home: "pool.go",
		why:  "chunk-claim flags: CompareAndSwap is the single claim authority",
	},
	{
		pkg: "saco/internal/serve", typ: "Registry", field: "cur",
		home: "registry.go",
		why:  "the serving model pointer: readers must load it wait-free through Current",
	},
	{
		pkg: "saco/internal/metrics", typ: "Histogram", field: "shards",
		home: "histogram.go",
		why:  "striped lock-free histogram counters: Observe and the snapshot methods are the only audited access",
	},
	{
		pkg: "saco/internal/shard", typ: "Table", field: "cur",
		home: "table.go",
		why:  "the live ring pointer: request paths must load it wait-free through Current, swaps go through Set",
	},
}

var guardedVars = []guardedVar{
	{
		pkg: "saco/internal/simd", name: "active",
		home: "kernels.go",
		why:  "the kernel dispatch pointer: swaps go through Use so numerics never change mid-call",
	},
}

// AtomicGuard enforces the registry above.
var AtomicGuard = &Analyzer{
	Name: "atomicguard",
	Doc: "flags direct loads/stores of fields documented atomic-only (mat.AtomicVec storage, " +
		"the serve registry model pointer, the shard ring pointer, metrics histogram stripes, " +
		"simd's dispatch pointer, runtime pool taken[] claims)",
	Run: runAtomicGuard,
}

func runAtomicGuard(pass *Pass) error {
	inspectStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			g, ok := fieldGuard(pass, n)
			if !ok {
				return true
			}
			file := filepath.Base(pass.Fset.Position(n.Pos()).Filename)
			if file != g.home {
				pass.Report(n.Pos(),
					"direct access to %s.%s.%s outside its home file %s: %s — use the accessor methods",
					g.pkg, g.typ, g.field, g.home, g.why)
				return true
			}
			if g.atomicElems {
				checkAtomicIndex(pass, n, g, stack)
			}
		case *ast.Ident:
			v, ok := pass.Info.Uses[n].(*types.Var)
			if !ok || v.Pkg() == nil {
				return true
			}
			for _, g := range guardedVars {
				if v.Pkg().Path() != g.pkg || v.Name() != g.name {
					continue
				}
				if v.Parent() != v.Pkg().Scope() {
					continue // a local that happens to share the name
				}
				file := filepath.Base(pass.Fset.Position(n.Pos()).Filename)
				if file != g.home {
					pass.Report(n.Pos(),
						"direct access to %s.%s outside its home file %s: %s",
						g.pkg, g.name, g.home, g.why)
				}
			}
		}
		return true
	})
	return nil
}

// fieldGuard resolves sel against the guarded-field registry.
func fieldGuard(pass *Pass, sel *ast.SelectorExpr) (guardedField, bool) {
	s, ok := pass.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return guardedField{}, false
	}
	recv := s.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return guardedField{}, false
	}
	for _, g := range guardedFields {
		if named.Obj().Pkg().Path() == g.pkg && named.Obj().Name() == g.typ && sel.Sel.Name == g.field {
			return g, true
		}
	}
	return guardedField{}, false
}

// checkAtomicIndex enforces the in-home rule for atomicElems fields:
// indexing the backing slice is legal only as &field[i] passed straight
// to a sync/atomic function. Ranging for the index, len/cap, and
// whole-slice (re)assignment stay legal — they touch structure, not
// elements.
func checkAtomicIndex(pass *Pass, sel *ast.SelectorExpr, g guardedField, stack []ast.Node) {
	if len(stack) == 0 {
		return
	}
	idx, ok := stack[len(stack)-1].(*ast.IndexExpr)
	if !ok || idx.X != sel {
		return
	}
	// Expect ... CallExpr(sync/atomic) -> UnaryExpr(&) -> IndexExpr.
	if len(stack) >= 3 {
		if amp, ok := stack[len(stack)-2].(*ast.UnaryExpr); ok && amp.X == idx {
			if call, ok := stack[len(stack)-3].(*ast.CallExpr); ok {
				if fn, ok := callPkgFunc(pass, call); ok && fn.Pkg().Path() == "sync/atomic" {
					return
				}
			}
		}
	}
	pass.Report(idx.Pos(),
		"non-atomic element access to %s.%s: %s — wrap it in a sync/atomic operation",
		g.typ, g.field, g.why)
}

// callPkgFunc returns the package-level function a call selects, if
// its callee is pkg.Func.
func callPkgFunc(pass *Pass, call *ast.CallExpr) (*types.Func, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil, false
	}
	return fn, true
}
