// Package linttest runs internal/lint analyzers over testdata fixture
// packages and checks their findings against // want comments — the
// analysistest idiom, rebuilt on the repository's stdlib-only driver.
//
// A fixture directory holds one package's .go files. Each expected
// finding is declared on the line it occurs:
//
//	s := s0 + s1 // want "reassociated float reduction"
//
// The quoted string is a regexp matched against the diagnostic
// message; several `want` strings on one line expect several findings.
// Every diagnostic must be matched by a want and every want must be
// matched by a diagnostic, or the test fails.
//
// Fixtures are type-checked under a caller-chosen import path, which is
// how a file in testdata masquerades as, say, saco/internal/core for a
// scope-limited analyzer — and they may import real repository packages
// (the harness serves export data for the whole module).
package linttest

import (
	"fmt"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"

	"saco/internal/lint"
)

var (
	once    sync.Once
	imp     types.Importer
	fset    *token.FileSet
	loadErr error
)

// importerFor lazily builds one shared importer covering the module's
// full dependency closure plus the stdlib packages fixtures use.
func importerFor(t *testing.T) (*token.FileSet, types.Importer) {
	t.Helper()
	once.Do(func() {
		root, err := moduleRoot()
		if err != nil {
			loadErr = err
			return
		}
		exports, err := lint.ExportClosure(root,
			"saco/...", "fmt", "os", "time", "sort", "math", "math/rand", "runtime", "sync/atomic")
		if err != nil {
			loadErr = err
			return
		}
		fset = token.NewFileSet()
		imp = lint.NewImporter(fset, exports)
	})
	if loadErr != nil {
		t.Fatalf("linttest: loading export data: %v", loadErr)
	}
	return fset, imp
}

// ModuleRoot locates the repository root via the go command, for tests
// that load real packages rather than fixtures.
func ModuleRoot(t *testing.T) string {
	t.Helper()
	root, err := moduleRoot()
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	return root
}

// moduleRoot locates the repository root via the go command.
func moduleRoot() (string, error) {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return "", fmt.Errorf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("not in a module")
	}
	return filepath.Dir(gomod), nil
}

// Run type-checks the fixture package in dir as import path asPath,
// runs analyzer a over it (suppression comments included, so fixtures
// can exercise //saco:nolint), and diffs the findings against the
// fixture's want comments.
func Run(t *testing.T, a *lint.Analyzer, dir, asPath string) {
	t.Helper()
	pkg, diags := analyze(t, []*lint.Analyzer{a}, dir, asPath)
	checkWants(t, pkg, diags)
}

// RunClean runs analyzer a over the fixture in dir under asPath and
// asserts it reports nothing, ignoring any want comments. This is how a
// want-bearing fixture doubles as a scope or exemption test: re-checked
// under an out-of-scope import path (or an exempt file name), the same
// code must produce zero findings.
func RunClean(t *testing.T, a *lint.Analyzer, dir, asPath string) {
	t.Helper()
	_, diags := analyze(t, []*lint.Analyzer{a}, dir, asPath)
	for _, d := range diags {
		t.Errorf("unexpected diagnostic under %s: %s", asPath, d)
	}
}

// Diagnostics returns the raw findings of the given analyzers over the
// fixture, for tests that assert on diagnostics directly instead of via
// want comments (the nolint machinery needs this: a want comment cannot
// share a line with the suppression under test).
func Diagnostics(t *testing.T, as []*lint.Analyzer, dir, asPath string) []lint.Diagnostic {
	t.Helper()
	_, diags := analyze(t, as, dir, asPath)
	return diags
}

// analyze loads the fixture package in dir under asPath and runs the
// analyzers over it.
func analyze(t *testing.T, as []*lint.Analyzer, dir, asPath string) (*lint.Package, []lint.Diagnostic) {
	t.Helper()
	fset, imp := importerFor(t)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		t.Fatalf("linttest: no fixture files in %s", dir)
	}
	pkg, err := lint.CheckFiles(fset, imp, asPath, files)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	diags, err := lint.RunAnalyzers([]*lint.Package{pkg}, as)
	if err != nil {
		t.Fatalf("linttest: running analyzers: %v", err)
	}
	return pkg, diags
}

var wantRE = regexp.MustCompile(`// want (.*)$`)
var wantStrRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// checkWants matches diagnostics against want comments line by line.
func checkWants(t *testing.T, pkg *lint.Package, diags []lint.Diagnostic) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	for name, src := range pkg.Src {
		for i, lineText := range strings.Split(string(src), "\n") {
			m := wantRE.FindStringSubmatch(lineText)
			if m == nil {
				continue
			}
			k := key{name, i + 1}
			for _, qs := range wantStrRE.FindAllString(m[1], -1) {
				unq, err := unquote(qs)
				if err != nil {
					t.Fatalf("%s:%d: bad want string %s: %v", name, i+1, qs, err)
				}
				re, err := regexp.Compile(unq)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", name, i+1, unq, err)
				}
				wants[k] = append(wants[k], re)
			}
		}
	}
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		idx := -1
		for i, re := range wants[k] {
			if re.MatchString(d.Message) {
				idx = i
				break
			}
		}
		if idx < 0 {
			t.Errorf("unexpected diagnostic at %s", d)
			continue
		}
		wants[k] = append(wants[k][:idx], wants[k][idx+1:]...)
	}
	for k, res := range wants {
		for _, re := range res {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, re)
		}
	}
}

// unquote strips a want string's quotes, unescaping only \" and \\ so
// regexp escapes like \( pass through to the regexp compiler verbatim.
func unquote(s string) (string, error) {
	var out strings.Builder
	body := s[1 : len(s)-1]
	for i := 0; i < len(body); i++ {
		if body[i] == '\\' && i+1 < len(body) && (body[i+1] == '"' || body[i+1] == '\\') {
			i++
		}
		out.WriteByte(body[i])
	}
	return out.String(), nil
}
