package lint_test

import (
	"testing"

	"saco/internal/lint"
	"saco/internal/lint/linttest"
)

// The field rules, with the fixture masquerading as saco/internal/mat
// so its AtomicVec is the guarded type: home-file access is legal only
// underneath sync/atomic, any other file may not touch the field at
// all.
func TestAtomicGuardFields(t *testing.T) {
	linttest.Run(t, lint.AtomicGuard, "testdata/atomicguard/mat", "saco/internal/mat")
}

// The package-variable rule for simd's dispatch pointer: loads and
// swaps outside kernels.go are flagged, accessors and shadowing locals
// are not.
func TestAtomicGuardVars(t *testing.T) {
	linttest.Run(t, lint.AtomicGuard, "testdata/atomicguard/simd", "saco/internal/simd")
}

// The metrics histogram stripes: the audited accessors in histogram.go
// touch them freely (the cells are atomics themselves); any other file
// is out of contract even for structural peeks.
func TestAtomicGuardMetricsShards(t *testing.T) {
	linttest.Run(t, lint.AtomicGuard, "testdata/atomicguard/metrics", "saco/internal/metrics")
}

// The shard ring pointer: Current/Set in table.go are the seam; even
// an atomic load elsewhere is flagged.
func TestAtomicGuardShardTable(t *testing.T) {
	linttest.Run(t, lint.AtomicGuard, "testdata/atomicguard/shardring", "saco/internal/shard")
}

// The registry keys on the real package paths: the same shapes in an
// unrelated package define their own unguarded types and are clean.
func TestAtomicGuardScope(t *testing.T) {
	linttest.RunClean(t, lint.AtomicGuard, "testdata/atomicguard/mat", "saco/internal/core")
	linttest.RunClean(t, lint.AtomicGuard, "testdata/atomicguard/simd", "saco/internal/core")
	linttest.RunClean(t, lint.AtomicGuard, "testdata/atomicguard/metrics", "saco/internal/core")
	linttest.RunClean(t, lint.AtomicGuard, "testdata/atomicguard/shardring", "saco/internal/core")
}
