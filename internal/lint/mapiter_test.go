package lint_test

import (
	"testing"

	"saco/internal/lint"
	"saco/internal/lint/linttest"
)

// Map ranges feeding float accumulation or serialization are flagged;
// the collect-then-sort escape and slice iteration are allowed.
func TestMapIter(t *testing.T) {
	linttest.Run(t, lint.MapIter, "testdata/mapiter/src", "saco/internal/stream")
}

// Outside the deterministic packages map iteration order is nobody's
// business.
func TestMapIterScope(t *testing.T) {
	linttest.RunClean(t, lint.MapIter, "testdata/mapiter/src", "saco/cmd/sabench")
}
