package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one named check. It mirrors the
// golang.org/x/tools/go/analysis shape so the checks port mechanically
// if the repo ever takes that dependency.
type Analyzer struct {
	// Name is the analyzer's identifier: what savet prints, what
	// //saco:nolint comments reference, and what -only selects.
	Name string
	// Doc is a one-paragraph description shown by `savet -list`.
	Doc string
	// Run performs the check on one package and reports findings via
	// pass.Report.
	Run func(*Pass) error
}

// Pass carries one package's syntax and type information through an
// analyzer run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed source files (comments retained).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds the package's type-checking results.
	Info *types.Info
	// Path is the import path the package is analyzed as. Analyzers
	// scope themselves by this, which is also what lets test fixtures
	// masquerade as in-tree packages.
	Path string

	diags *[]Diagnostic
}

// Report records a finding at pos.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String formats the diagnostic the way savet prints it.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// inspectStack walks every file, calling fn with each node and the
// stack of its ancestors (outermost first, not including n). If fn
// returns false the node's children are skipped. Several analyzers
// need ancestry (is this index expression an argument of a sync/atomic
// call? is this call statement-discarded?), which plain ast.Inspect
// does not provide.
func inspectStack(files []*ast.File, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			descend := fn(n, stack)
			if descend {
				stack = append(stack, n)
			}
			return descend
		})
	}
}
