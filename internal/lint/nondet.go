package lint

import (
	"go/ast"
	"strconv"
)

// NonDet flags ambient nondeterminism in the solver/kernel hot paths:
// math/rand (global or locally seeded — per-worker streams must come
// from internal/rng, whose sequences are part of the trajectory's
// bitwise class), time.Now (modeled clocks come from the cost model and
// piggyback on transport frames; wall clocks belong in harnesses), and
// runtime.GOMAXPROCS (worker-count sizing that leaks into chunking or
// summation order makes the trajectory depend on the machine).
var NonDet = &Analyzer{
	Name: "nondet",
	Doc: "flags math/rand, time.Now and GOMAXPROCS-dependent sizing in solver/kernel " +
		"hot paths (streams come from internal/rng, clocks from the cost model)",
	Run: runNonDet,
}

func runNonDet(pass *Pass) error {
	if !hotPathPkgs[pass.Path] {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Report(imp.Pos(),
					"%s in a hot-path package: per-worker streams must come from internal/rng so the sequence is part of the deterministic trajectory", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch {
			case isPkgFunc(pass.Info, call, "time", "Now"):
				pass.Report(call.Pos(),
					"time.Now in a hot-path package: modeled clocks come from internal/costmodel and must be transport-invariant; wall clocks belong in harnesses")
			case isPkgFunc(pass.Info, call, "runtime", "GOMAXPROCS"):
				pass.Report(call.Pos(),
					"runtime.GOMAXPROCS in a hot-path package: machine-dependent sizing must never reach chunking or summation order (resolve widths through the audited runtime.Resolve path)")
			}
			return true
		})
	}
	return nil
}
