package lint_test

import (
	"testing"

	"saco/internal/lint"
	"saco/internal/lint/linttest"
)

// The suite's own acceptance gate: every analyzer over every package in
// the module, zero surviving diagnostics. A true finding must be fixed
// or carry a reasoned //saco:nolint before this test (and the CI lint
// job that shells out to cmd/savet) goes green again.
func TestSweepRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root := linttest.ModuleRoot(t)
	pkgs, err := lint.Load(root, "saco/...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	diags, err := lint.RunAnalyzers(pkgs, lint.All())
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
