package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// DetFloat flags float reductions whose summation order differs from
// the single-accumulator fold — the shape that silently moves a kernel
// out of its bitwise class. Two patterns are reported:
//
//   - a loop that accumulates into two or more distinct float
//     variables which are later combined with + (the classic
//     lane-split reduction: s0..s3 summed after the loop), and
//   - any call to math.FMA (fused multiply-add contracts the
//     intermediate rounding step and is not reproducible across
//     kernel sets).
//
// The one sanctioned home for reassociated reductions is
// internal/simd's opt-in reassoc set (simd/reassoc.go), which is
// excluded from the deterministic backend matrix and tolerance-gated
// in tests; that file is exempt.
var DetFloat = &Analyzer{
	Name: "detfloat",
	Doc: "flags multi-accumulator float reductions and math.FMA outside " +
		"internal/simd's opt-in reassoc set (reduction order defines the bitwise class)",
	Run: runDetFloat,
}

func runDetFloat(pass *Pass) error {
	if !deterministicPkgs[pass.Path] {
		return nil
	}
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Pos()).Filename
		if pass.Path == "saco/internal/simd" && filepath.Base(name) == "reassoc.go" {
			continue // the opt-in reassoc set: reassociation is its contract
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if isPkgFunc(pass.Info, n, "math", "FMA") {
					pass.Report(n.Pos(), "math.FMA contracts the intermediate rounding and is not bitwise-reproducible across kernel sets; use a*b+c via the dispatched kernels instead")
				}
			case *ast.FuncDecl:
				if n.Body != nil {
					detFloatFunc(pass, n.Body)
				}
				// Keep descending so the CallExpr case sees math.FMA
				// inside the body; detFloatFunc itself is only triggered
				// by FuncDecl nodes, which do not nest.
			}
			return true
		})
	}
	return nil
}

// detFloatFunc checks one function body for the lane-split reduction
// shape.
func detFloatFunc(pass *Pass, body *ast.BlockStmt) {
	// Pass 1: for every loop, the set of float accumulators it updates.
	type loopAccs struct {
		loop ast.Node
		accs map[*types.Var]bool
	}
	var loops []loopAccs
	ast.Inspect(body, func(n ast.Node) bool {
		var loopBody *ast.BlockStmt
		switch l := n.(type) {
		case *ast.ForStmt:
			loopBody = l.Body
		case *ast.RangeStmt:
			loopBody = l.Body
		default:
			return true
		}
		accs := make(map[*types.Var]bool)
		ast.Inspect(loopBody, func(m ast.Node) bool {
			as, ok := m.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				v, ok := pass.Info.Uses[id].(*types.Var)
				if !ok || !isFloat(v.Type()) {
					continue
				}
				// Loop-carried only: the accumulator must outlive the loop.
				if v.Pos() >= n.Pos() && v.Pos() <= n.End() {
					continue
				}
				switch {
				case as.Tok == token.ADD_ASSIGN:
					accs[v] = true
				case as.Tok == token.ASSIGN && i < len(as.Rhs):
					// s = s + e counts too.
					if exprLeavesContain(as.Rhs[i], v, pass.Info) {
						accs[v] = true
					}
				}
			}
			return true
		})
		if len(accs) >= 2 {
			loops = append(loops, loopAccs{loop: n, accs: accs})
		}
		return true
	})
	if len(loops) == 0 {
		return
	}
	// Pass 2: a maximal + tree outside the loop combining >=2 of one
	// loop's accumulators is the reassociated fold.
	inspectStack([]*ast.File{wrapBody(body)}, func(n ast.Node, stack []ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || be.Op != token.ADD {
			return true
		}
		if len(stack) > 0 {
			if p, ok := stack[len(stack)-1].(*ast.BinaryExpr); ok && p.Op == token.ADD {
				return true // only report the outermost + tree
			}
		}
		leaves := addLeaves(be, nil)
		for _, la := range loops {
			if be.Pos() >= la.loop.Pos() && be.End() <= la.loop.End() {
				continue // combining inside the loop body is a different shape
			}
			var hit []string
			seen := make(map[*types.Var]bool)
			for _, leaf := range leaves {
				id, ok := leaf.(*ast.Ident)
				if !ok {
					continue
				}
				if v, ok := pass.Info.Uses[id].(*types.Var); ok && la.accs[v] && !seen[v] {
					seen[v] = true
					hit = append(hit, v.Name())
				}
			}
			if len(hit) >= 2 {
				sort.Strings(hit)
				pass.Report(be.Pos(),
					"reassociated float reduction: loop accumulators %s are combined after the loop; "+
						"the split summation order breaks the bitwise class (keep one accumulator, or move the kernel into internal/simd's opt-in reassoc set)",
					strings.Join(hit, ", "))
				return false
			}
		}
		return true
	})
}

// wrapBody lets inspectStack (which takes files) walk a single block.
func wrapBody(body *ast.BlockStmt) *ast.File {
	return &ast.File{
		Name:  ast.NewIdent("_"),
		Decls: []ast.Decl{&ast.FuncDecl{Name: ast.NewIdent("_"), Type: &ast.FuncType{}, Body: body}},
	}
}

// addLeaves flattens a + tree into its leaf expressions.
func addLeaves(e ast.Expr, out []ast.Expr) []ast.Expr {
	switch e := e.(type) {
	case *ast.BinaryExpr:
		if e.Op == token.ADD {
			out = addLeaves(e.X, out)
			return addLeaves(e.Y, out)
		}
	case *ast.ParenExpr:
		return addLeaves(e.X, out)
	}
	return append(out, e)
}

// exprLeavesContain reports whether v appears as an identifier leaf of
// the + tree rooted at e.
func exprLeavesContain(e ast.Expr, v *types.Var, info *types.Info) bool {
	for _, leaf := range addLeaves(e, nil) {
		if id, ok := leaf.(*ast.Ident); ok && info.Uses[id] == v {
			return true
		}
	}
	return false
}

// isFloat reports whether t is float32 or float64.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Float64 || b.Kind() == types.Float32)
}

// isPkgFunc reports whether call invokes the named function of the
// named (standard-library) package.
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkg, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != name {
		return false
	}
	return fn.Pkg() != nil && fn.Pkg().Path() == pkg
}
