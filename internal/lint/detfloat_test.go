package lint_test

import (
	"testing"

	"saco/internal/lint"
	"saco/internal/lint/linttest"
)

// The main fixture: lane-split reductions and math.FMA flagged in a
// deterministic package, single-accumulator folds and nolint'd sites
// allowed.
func TestDetFloat(t *testing.T) {
	linttest.Run(t, lint.DetFloat, "testdata/detfloat/src", "saco/internal/core")
}

// cmd/sabench is outside the deterministic set (benchmarks may sum
// however they like), so the same fixture must produce nothing there.
func TestDetFloatScope(t *testing.T) {
	linttest.RunClean(t, lint.DetFloat, "testdata/detfloat/src", "saco/cmd/sabench")
}

// The simd reassoc set exemption is the package plus the file name:
// reassoc.go under saco/internal/simd is silent, the identical file
// under any other deterministic package is flagged.
func TestDetFloatReassocExemption(t *testing.T) {
	linttest.RunClean(t, lint.DetFloat, "testdata/detfloat/reassoc", "saco/internal/simd")
}

func TestDetFloatReassocShapeElsewhere(t *testing.T) {
	linttest.Run(t, lint.DetFloat, "testdata/detfloat/reassoc", "saco/internal/core")
}
