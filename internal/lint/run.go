package lint

import "sort"

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		DetFloat,
		MapIter,
		NonDet,
		CommErr,
		AtomicGuard,
	}
}

// Names returns the set of valid analyzer names, including the
// "nolint" pseudo-analyzer that reports malformed suppressions.
func Names(as []*Analyzer) map[string]bool {
	known := map[string]bool{"nolint": true}
	for _, a := range as {
		known[a.Name] = true
	}
	return known
}

// RunAnalyzers runs every analyzer over every package, applies
// //saco:nolint suppressions, and returns the surviving diagnostics
// sorted by position.
func RunAnalyzers(pkgs []*Package, as []*Analyzer) ([]Diagnostic, error) {
	// Suppressions validate against the whole suite (plus any extra
	// analyzers passed in), not just the selected subset: running
	// `savet -only detfloat` over a tree with valid nondet suppressions
	// must not misreport them as unknown names.
	known := Names(All())
	for name := range Names(as) {
		known[name] = true
	}
	var all []Diagnostic
	for _, p := range pkgs {
		var diags []Diagnostic
		for _, a := range as {
			pass := &Pass{
				Analyzer: a,
				Fset:     p.Fset,
				Files:    p.Files,
				Pkg:      p.Pkg,
				Info:     p.Info,
				Path:     p.Path,
				diags:    &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, err
			}
		}
		all = append(all, applySuppressions(diags, suppressions(p), known)...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i].Pos, all[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return all[i].Analyzer < all[j].Analyzer
	})
	return all, nil
}
