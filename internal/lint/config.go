package lint

import "strings"

// The analyzer scopes below are the machine-readable form of the
// ROADMAP backend-matrix contract. A package appears in a scope because
// the runtime test suite asserts an invariant over it; adding a new
// package to the deterministic matrix means adding it here too (see the
// "Static analysis" section of the README).

// deterministicPkgs are the packages whose outputs — trajectories,
// serialized artifacts, report lines — are covered by a bitwise
// determinism assertion somewhere in the test suite. detfloat and
// mapiter fire only inside these.
var deterministicPkgs = map[string]bool{
	"saco":                     true,
	"saco/internal/core":       true,
	"saco/internal/mat":        true,
	"saco/internal/sparse":     true,
	"saco/internal/simd":       true,
	"saco/internal/casvm":      true,
	"saco/internal/dist":       true,
	"saco/internal/mpi":        true,
	"saco/internal/stream":     true,
	"saco/internal/runtime":    true,
	"saco/internal/rng":        true,
	"saco/internal/costmodel":  true,
	"saco/internal/libsvm":     true,
	"saco/internal/datagen":    true,
	"saco/internal/serve":      true,
	"saco/internal/metrics":    true,
	"saco/internal/shard":      true,
	"saco/internal/testmatrix": true,
	"saco/cmd/sasolve":         true,
	"saco/cmd/sarank":          true,
	"saco/cmd/saserve":         true,
	"saco/cmd/sadatagen":       true,
	"saco/cmd/saexp":           true,
	"saco/internal/bench":      true,
}

// hotPathPkgs are the solver/kernel packages where wall clocks, global
// RNG, and GOMAXPROCS-dependent sizing can silently change a
// trajectory's bitwise class. nondet fires only inside these;
// measurement harnesses (cmd/sabench, internal/bench) and the serving
// layer's operational stats are deliberately outside.
var hotPathPkgs = map[string]bool{
	"saco/internal/core":      true,
	"saco/internal/mat":       true,
	"saco/internal/sparse":    true,
	"saco/internal/simd":      true,
	"saco/internal/casvm":     true,
	"saco/internal/dist":      true,
	"saco/internal/mpi":       true,
	"saco/internal/stream":    true,
	"saco/internal/runtime":   true,
	"saco/internal/rng":       true,
	"saco/internal/costmodel": true,
}

// fileErrPkgs are the packages where a dropped (*os.File).Close or
// .Sync error loses data or hides a short write: the streaming stack,
// the LIBSVM reader/writer, the distributed loaders, and every CLI.
func inFileErrScope(path string) bool {
	switch path {
	case "saco/internal/stream", "saco/internal/libsvm", "saco/internal/dist":
		return true
	}
	return strings.HasPrefix(path, "saco/cmd/")
}
