package lint_test

import (
	"testing"

	"saco/internal/lint"
	"saco/internal/lint/linttest"
)

// math/rand, time.Now, and GOMAXPROCS flagged in a hot-path package;
// runtime.NumCPU and the nolint'd width resolution allowed.
func TestNonDet(t *testing.T) {
	linttest.Run(t, lint.NonDet, "testdata/nondet/src", "saco/internal/core")
}

// The solver CLIs are deterministic packages but not hot paths:
// wall-clock reads there are fine, so the fixture is clean under a cmd
// import path.
func TestNonDetScope(t *testing.T) {
	linttest.RunClean(t, lint.NonDet, "testdata/nondet/src", "saco/cmd/sabench")
}
