// Fixture for the mapiter analyzer, type-checked as a deterministic
// package (saco/internal/stream).
package src

import "sort"

// Map order feeding a float accumulator: the sum is reproducible only
// by accident of Go's randomized iteration.
func sumMap(m map[int]float64) float64 {
	var s float64
	for _, v := range m { // want "iteration over map"
		s += v
	}
	return s
}

// Map order feeding ordered output (a manifest/serialization shape).
func serialize(m map[string]int, emit func(string)) {
	for k := range m { // want "iteration over map"
		emit(k)
	}
}

// The sanctioned shape: collect the keys, sort, then consume.
func sortedKeys(m map[int]float64) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// Collect-then-sort through sort.Slice works too.
func sortedVals(m map[string]float64) []float64 {
	var vals []float64
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

// Ranging a slice is always fine.
func sumSlice(xs []float64) float64 {
	var s float64
	for _, v := range xs {
		s += v
	}
	return s
}

// An order-invariant fold can be suppressed, with its reason.
func count(m map[int]int) int {
	n := 0
	//saco:nolint mapiter pure cardinality: the count is iteration-order-invariant
	for range m {
		n++
	}
	return n
}
