// Fixture for the suppression machinery itself, type-checked as a
// hot-path package (saco/internal/core) so nondet provides the
// findings to suppress. Asserted directly by nolint_test.go rather
// than via want comments (a want comment cannot share a line with the
// suppression under test).
package src

import "time"

// Valid trailing suppression — silent.
func ok() time.Time {
	return time.Now() //saco:nolint nondet fixture: justified deviation
}

// A standalone suppression applies to the next line — silent.
func okStandalone() time.Time {
	//saco:nolint nondet fixture: justified deviation, standalone form
	return time.Now()
}

// Suppression without a reason — malformed, and the finding
// it failed to suppress survives too.
func missingReason() time.Time {
	return time.Now() //saco:nolint nondet
}

// Suppression naming an unknown analyzer — malformed, finding
// survives.
func unknownName() time.Time {
	return time.Now() //saco:nolint nodnet typo in the analyzer name
}

// Suppression naming a different analyzer — finding survives.
func wrongName() time.Time {
	return time.Now() //saco:nolint mapiter reason aimed at the wrong analyzer
}

// Unsuppressed finding.
func bare() time.Time {
	return time.Now()
}
