// The internal/simd opt-in reassoc set: the one file where lane-split
// reductions are the contract (tolerance-gated, excluded from the
// deterministic matrix). Type-checked as saco/internal/simd with this
// file name, detfloat must stay silent (linttest.RunClean ignores the
// want below); re-checked under any other import path, the identical
// code is flagged — the exemption is the package plus the file name,
// not the shape.
package src

func reassocDot(x, y []float64) float64 {
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(x); i += 4 {
		s0 += x[i] * y[i]
		s1 += x[i+1] * y[i+1]
		s2 += x[i+2] * y[i+2]
		s3 += x[i+3] * y[i+3]
	}
	s := (s0 + s1) + (s2 + s3) // want "reassociated float reduction"
	for ; i < len(x); i++ {
		s += x[i] * y[i]
	}
	return s
}
