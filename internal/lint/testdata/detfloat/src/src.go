// Fixture for the detfloat analyzer, type-checked as a deterministic
// package (saco/internal/core). Flagged and allowed cases side by side.
package src

import "math"

// The PR 7 false-sharing/reassociation shape: a lane-split reduction
// with four independent accumulators folded after the loop — exactly
// the kernel form that is legal only inside internal/simd's opt-in
// reassoc set.
func laneSplitDot(x, y []float64) float64 {
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(x); i += 4 {
		s0 += x[i] * y[i]
		s1 += x[i+1] * y[i+1]
		s2 += x[i+2] * y[i+2]
		s3 += x[i+3] * y[i+3]
	}
	s := (s0 + s1) + (s2 + s3) // want "reassociated float reduction"
	for ; i < len(x); i++ {
		s += x[i] * y[i]
	}
	return s
}

// Two accumulators folded into the return: the same hazard at width 2.
func stripedSum(x []float64) float64 {
	var even, odd float64
	for i, v := range x {
		if i%2 == 0 {
			even += v
		} else {
			odd += v
		}
	}
	return even + odd // want "reassociated float reduction"
}

// Folding into an existing accumulator trips it too.
func laneSplitNorm(acc float64, x []float64) float64 {
	var s0, s1 float64
	for i := 0; i+2 <= len(x); i += 2 {
		s0 += x[i] * x[i]
		s1 += x[i+1] * x[i+1]
	}
	acc += s0 + s1 // want "reassociated float reduction"
	return acc
}

// Fused multiply-add contracts the intermediate rounding: never in a
// deterministic kernel.
func fused(a, b, c float64) float64 {
	return math.FMA(a, b, c) // want "math.FMA"
}

// Single-accumulator unrolled fold: additions stay in scalar order,
// bitwise-identical, allowed.
func unrolledDot(x, y []float64) float64 {
	var s float64
	i := 0
	for ; i+4 <= len(x); i += 4 {
		s += x[i] * y[i]
		s += x[i+1] * y[i+1]
		s += x[i+2] * y[i+2]
		s += x[i+3] * y[i+3]
	}
	for ; i < len(x); i++ {
		s += x[i] * y[i]
	}
	return s
}

// Two accumulators that are never combined track two different
// quantities (objective and gap): allowed.
func objAndGap(m []float64) (float64, float64) {
	var obj, gap float64
	for _, v := range m {
		obj += v * v
		gap += v
	}
	return obj, gap
}

// A sanctioned deviation carries its justification in a suppression.
func sanctioned(x []float64) float64 {
	var a, b float64
	for i, v := range x {
		if i%2 == 0 {
			a += v
		} else {
			b += v
		}
	}
	return a + b //saco:nolint detfloat fixture-sanctioned reassociation exercising the suppression path
}
