// A second file of the same package: even naming the guarded field is
// out of contract here — everything goes through the accessors.
package src

import "sync/atomic"

func peek(v *AtomicVec) []uint64 {
	return v.bits // want "outside its home file"
}

func pokeAtomically(v *AtomicVec, i int, x uint64) {
	atomic.StoreUint64(&v.bits[i], x) // want "outside its home file"
}

func throughAccessor(v *AtomicVec, i int) float64 {
	return v.Load(i)
}
