// Fixture for atomicguard's field rules, type-checked as
// saco/internal/mat. This file is the guarded field's home (atomic.go):
// element access is legal only underneath a sync/atomic call.
package src

import (
	"math"
	"sync/atomic"
)

type AtomicVec struct {
	bits []uint64
}

func NewAtomicVec(n int) *AtomicVec {
	return &AtomicVec{bits: make([]uint64, n)}
}

// Element access through sync/atomic: the contract.
func (v *AtomicVec) Load(i int) float64 {
	return math.Float64frombits(atomic.LoadUint64(&v.bits[i]))
}

func (v *AtomicVec) Store(i int, x float64) {
	atomic.StoreUint64(&v.bits[i], math.Float64bits(x))
}

// Structure access (len, range index) is legal; it touches no element.
func (v *AtomicVec) Len() int { return len(v.bits) }

func (v *AtomicVec) Snapshot(dst []float64) {
	for i := range v.bits {
		dst[i] = math.Float64frombits(atomic.LoadUint64(&v.bits[i]))
	}
}

// A plain element load tears under concurrent CAS writers.
func (v *AtomicVec) torn(i int) uint64 {
	return v.bits[i] // want "non-atomic element access"
}

// A plain element store is worse.
func (v *AtomicVec) clobber(i int, x uint64) {
	v.bits[i] = x // want "non-atomic element access"
}

// Pre-publication initialization is the sanctioned exception — with
// its reason on record.
func (v *AtomicVec) init(src []float64) {
	for i, x := range src {
		v.bits[i] = math.Float64bits(x) //saco:nolint atomicguard fixture: pre-publication init, the vector is not shared yet
	}
}
