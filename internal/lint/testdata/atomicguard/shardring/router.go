// A second file of the same package: request paths read the ring
// through Current — naming the pointer here, even atomically, skips
// the audited seam.
package src

func sneakLoad(t *Table) *Ring {
	return t.cur.Load() // want "outside its home file"
}

func sneakSwap(t *Table, r *Ring) {
	t.cur.Store(r) // want "outside its home file"
}

func throughAccessor(t *Table) *Ring {
	return t.Current()
}
