// Fixture for the shard ring-pointer rule, type-checked as
// saco/internal/shard. This file is the guarded field's home
// (table.go): Current and Set are the audited accessors.
package src

import "sync/atomic"

type Ring struct {
	gen uint64
}

type Table struct {
	cur atomic.Pointer[Ring]
}

func (t *Table) Current() *Ring { return t.cur.Load() }

func (t *Table) Set(r *Ring) { t.cur.Store(r) }
