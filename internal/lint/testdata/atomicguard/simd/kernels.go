// Fixture for atomicguard's package-variable rule, type-checked as
// saco/internal/simd. This file is the dispatch pointer's home
// (kernels.go): loads and swaps here are the audited surface.
package src

import "sync/atomic"

type Kernels struct {
	name string
}

var active atomic.Pointer[Kernels]

func Active() *Kernels { return active.Load() }

func Use(k *Kernels) { active.Store(k) }
