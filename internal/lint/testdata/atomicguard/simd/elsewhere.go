// Outside kernels.go the dispatch pointer is off limits, even through
// its own atomic methods — swaps must go through Use.
package src

func sneakySwap(k *Kernels) {
	active.Store(k) // want "outside its home file"
}

func throughAccessor() *Kernels {
	return Active()
}

func shadowed() int {
	active := 3 // a local sharing the name is fine
	return active
}
