// A second file of the same package: the stripes are reachable only
// through the audited accessors in histogram.go — even a structural
// peek names storage this file has no business holding.
package src

func stripeCount(h *Histogram) int {
	return len(h.shards) // want "outside its home file"
}

func drainFirst(h *Histogram) uint64 {
	return h.shards[0].sumBits.Load() // want "outside its home file"
}

func throughAccessor(h *Histogram) uint64 {
	return h.Count()
}
