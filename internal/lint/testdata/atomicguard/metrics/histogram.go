// Fixture for the metrics histogram stripe rule, type-checked as
// saco/internal/metrics. This file is the guarded field's home
// (histogram.go): the audited Observe/snapshot accessors live here and
// may touch the stripes freely — the striped cells are themselves
// atomics.
package src

import "sync/atomic"

type histShard struct {
	counts  []atomic.Uint64
	sumBits atomic.Uint64
}

type Histogram struct {
	shards []histShard
	cursor atomic.Uint64
}

func newHistogram(buckets int) *Histogram {
	h := &Histogram{shards: make([]histShard, 8)}
	for i := range h.shards {
		h.shards[i].counts = make([]atomic.Uint64, buckets+1)
	}
	return h
}

func (h *Histogram) Observe(bucket int) {
	s := &h.shards[h.cursor.Add(1)&7]
	s.counts[bucket].Add(1)
}

func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.shards {
		for j := range h.shards[i].counts {
			n += h.shards[i].counts[j].Load()
		}
	}
	return n
}
