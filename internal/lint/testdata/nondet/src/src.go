// Fixture for the nondet analyzer, type-checked as a hot-path package
// (saco/internal/core).
package src

import (
	"math/rand" // want "math/rand"
	"runtime"
	"time"
)

func ambient(r *rand.Rand) float64 {
	return r.Float64()
}

func stamp() time.Time {
	return time.Now() // want "time.Now"
}

func width() int {
	return runtime.GOMAXPROCS(0) // want "GOMAXPROCS"
}

func sanctionedWidth() int {
	return runtime.GOMAXPROCS(0) //saco:nolint nondet fixture: the audited width-resolution seam
}

// Using the time package without consulting a wall clock is fine.
func later(t time.Time, d time.Duration) time.Time {
	return t.Add(d)
}

// NumCPU is not GOMAXPROCS; other runtime introspection stays legal.
func cpus() int {
	return runtime.NumCPU()
}
