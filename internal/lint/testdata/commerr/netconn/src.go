// Fixture for the commerr analyzer's net.Conn deadline rule. A dropped
// SetDeadline error leaves the socket unbounded — the read or write
// that follows can hang forever instead of surfacing a vanished peer.
// Type-checked as saco/internal/core, deliberately OUTSIDE the file
// Close/Sync scope: the deadline rule guards every package.
package src

import (
	"net"
	"time"
)

func sendFrame(conn net.Conn, b []byte) error {
	conn.SetWriteDeadline(time.Now().Add(time.Second)) // want "error from net.Conn.SetWriteDeadline is discarded"
	_, err := conn.Write(b)
	return err
}

func recvFrame(conn net.Conn, b []byte) error {
	_ = conn.SetReadDeadline(time.Now().Add(time.Second)) // want "error from net.Conn.SetReadDeadline is discarded"
	_, err := conn.Read(b)
	return err
}

func closeLater(conn net.Conn) {
	// Deferring a deadline reset drops its error just the same.
	defer conn.SetDeadline(time.Time{}) // want "deferred with no error check"
}

// The concrete conns promote the setters from an unexported embedded
// type; the rule matches them by package and method name.
func tcpFrame(conn *net.TCPConn, b []byte) error {
	conn.SetWriteDeadline(time.Now().Add(time.Second)) // want "error from net.conn.SetWriteDeadline is discarded"
	_, err := conn.Write(b)
	return err
}

// The checked forms are the contract.
func sendChecked(conn net.Conn, b []byte) error {
	if err := conn.SetWriteDeadline(time.Now().Add(time.Second)); err != nil {
		return err
	}
	_, err := conn.Write(b)
	return err
}

func teardown(conn net.Conn) error {
	conn.SetDeadline(time.Time{}) //saco:nolint commerr fixture: best-effort unarm on the close path
	return conn.Close()
}
