// Fixture for the commerr analyzer's transport rule, type-checked as
// saco/internal/dist against the real saco/internal/mpi types.
package src

import "saco/internal/mpi"

func dropClose(t mpi.Transport) {
	t.Close() // want "error from mpi.Transport.Close is discarded"
}

func deferClose(t mpi.Transport) {
	defer t.Close() // want "deferred with no error check"
}

func blankClose(t mpi.Transport) {
	_ = t.Close() // want "assigned to _"
}

func dropSend(t mpi.Transport, m mpi.Message) {
	t.Send(1, m) // want "error from mpi.Transport.Send is discarded"
}

func dropRecvErr(t mpi.Transport) mpi.Message {
	m, _ := t.Recv(0) // want "assigned to _"
	return m
}

func dropCollective(c *mpi.Comm) {
	c.Barrier() // want "error from mpi.Comm.Barrier is discarded"
}

// Handling the error is the contract.
func handledClose(t mpi.Transport) error {
	return t.Close()
}

func handledRecv(t mpi.Transport) (mpi.Message, error) {
	return t.Recv(0)
}

func checkedDefer(t mpi.Transport) (err error) {
	defer func() {
		if cerr := t.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	return nil
}

// Error-free transport methods are not error-returning: no finding.
func rank(t mpi.Transport) int {
	return t.Rank()
}

// Best-effort teardown is sanctioned only with a written reason.
func teardown(t mpi.Transport) {
	t.Close() //saco:nolint commerr fixture: best-effort teardown on a failing path
}
