// Fixture for the commerr analyzer's file rule, type-checked as
// saco/internal/stream (one of the packages where a dropped Close or
// Sync hides a short write).
package src

import "os"

func spill(path string, b []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close() // want "error from \\(\\*os.File\\).Close is discarded"
		return err
	}
	f.Sync() // want "error from \\(\\*os.File\\).Sync is discarded"
	return f.Close()
}

func read(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() // want "deferred with no error check"
	var b [64]byte
	n, err := f.Read(b[:])
	return b[:n], err
}

// The checked forms are the contract.
func checked(path string, b []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close() //saco:nolint commerr fixture: best-effort close, the write error is propagating
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}
