// Fixture for the commerr analyzer's shard rule, type-checked as
// saco/internal/serve against the real saco/internal/shard types: a
// dropped Forward error turns a dead peer into a silent black hole.
package src

import (
	"net/http"

	"saco/internal/shard"
)

func dropForward(rt *shard.Router, req *http.Request) {
	rt.Forward(req, "peer:1", nil) // want "error from shard.Router.Forward is discarded"
}

func blankForward(rt *shard.Router, req *http.Request) *http.Response {
	resp, _ := rt.Forward(req, "peer:1", nil) // want "assigned to _"
	return resp
}

// Handling the error is the contract.
func handledForward(rt *shard.Router, req *http.Request) (*http.Response, error) {
	return rt.Forward(req, "peer:1", nil)
}

// Dispatch reports through the ResponseWriter, not an error: no finding.
func dispatch(rt *shard.Router, w http.ResponseWriter, req *http.Request) {
	rt.Dispatch(w, req, "alpha", nil, func() {})
}

// Best-effort cleanup is sanctioned only with a written reason.
func bestEffort(rt *shard.Router, req *http.Request) {
	rt.Forward(req, "peer:1", nil) //saco:nolint commerr fixture: fire-and-forget replay on a failing path
}
