package lint

import (
	"go/ast"
	"go/types"
)

// CommErr flags discarded errors from the communication and I/O
// surfaces that PR 6 and PR 3 deliberately made error-returning:
//
//   - any error-returning method defined in internal/mpi — the
//     Transport point-to-point contract (Send/Recv/Close) and the
//     collectives — called with its error dropped (expression
//     statement, defer, go, or an assignment to _),
//   - any error-returning method defined in internal/shard — the
//     cluster router's Forward path, where a swallowed error turns a
//     dead peer into a silent black hole instead of a 502, and
//   - (*os.File).Close and .Sync with the error dropped, in the
//     streaming/IO packages and the CLIs, where a swallowed close
//     error hides a short write or lost flush, and
//   - the net.Conn deadline setters (SetDeadline, SetReadDeadline,
//     SetWriteDeadline), whose silent failure turns a bounded socket
//     operation into an unbounded hang — exactly the stall the
//     transport's peer-loss detection exists to prevent.
//
// Best-effort teardown on an already-failing path is sometimes right —
// that is what //saco:nolint commerr <reason> is for.
var CommErr = &Analyzer{
	Name: "commerr",
	Doc: "flags discarded errors from internal/mpi Send/Recv/Close and collectives, " +
		"from internal/shard's router forwards, " +
		"from file Close/Sync in the streaming packages and CLIs, " +
		"and from net.Conn deadline setters",
	Run: runCommErr,
}

func runCommErr(pass *Pass) error {
	inspectStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		kind := commErrTarget(pass, call)
		if kind == "" {
			return true
		}
		if why, discarded := discards(pass, call, stack); discarded {
			pass.Report(call.Pos(),
				"error from %s is discarded (%s): the call is error-returning by contract — handle it, or suppress with //saco:nolint commerr <reason> if teardown is genuinely best-effort",
				kind, why)
		}
		return true
	})
	return nil
}

// commErrTarget classifies call as one of the guarded surfaces,
// returning a human-readable description or "" if it is not guarded.
func commErrTarget(pass *Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !returnsError(sig) {
		return ""
	}
	if fn.Pkg().Path() == "saco/internal/mpi" {
		return "mpi." + recvName(sig) + "." + fn.Name()
	}
	if fn.Pkg().Path() == "saco/internal/shard" {
		return "shard." + recvName(sig) + "." + fn.Name()
	}
	if fn.Pkg().Path() == "os" && (fn.Name() == "Close" || fn.Name() == "Sync") &&
		recvName(sig) == "File" && inFileErrScope(pass.Path) {
		return "(*os.File)." + fn.Name()
	}
	if fn.Pkg().Path() == "net" && isDeadlineSetter(fn.Name()) {
		// A silently failed SetWriteDeadline/SetReadDeadline turns a
		// bounded socket operation into an unbounded one: the transport
		// then hangs instead of surfacing a vanished peer. Guarded on
		// every net.Conn flavor (interface and concrete receivers alike).
		return "net." + recvName(sig) + "." + fn.Name()
	}
	return ""
}

// isDeadlineSetter matches the net.Conn deadline mutators.
func isDeadlineSetter(name string) bool {
	return name == "SetDeadline" || name == "SetReadDeadline" || name == "SetWriteDeadline"
}

// recvName returns the bare type name of a method's receiver.
func recvName(sig *types.Signature) string {
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}

// returnsError reports whether any result of sig is the error type.
func returnsError(sig *types.Signature) bool {
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrorType(sig.Results().At(i).Type()) {
			return true
		}
	}
	return false
}

func isErrorType(t types.Type) bool {
	return t.String() == "error" && types.IsInterface(t)
}

// discards reports whether the error result of call is dropped given
// its ancestor chain, and how.
func discards(pass *Pass, call *ast.CallExpr, stack []ast.Node) (string, bool) {
	if len(stack) == 0 {
		return "", false
	}
	switch parent := stack[len(stack)-1].(type) {
	case *ast.ExprStmt:
		return "result unused", true
	case *ast.DeferStmt:
		if parent.Call == call {
			return "deferred with no error check", true
		}
	case *ast.GoStmt:
		if parent.Call == call {
			return "go statement drops the result", true
		}
	case *ast.AssignStmt:
		// The call must be the sole RHS for result positions to line up.
		if len(parent.Rhs) != 1 || parent.Rhs[0] != call {
			return "", false
		}
		sig := callSignature(pass, call)
		if sig == nil {
			return "", false
		}
		for i := 0; i < sig.Results().Len() && i < len(parent.Lhs); i++ {
			if !isErrorType(sig.Results().At(i).Type()) {
				continue
			}
			if id, ok := parent.Lhs[i].(*ast.Ident); !ok || id.Name != "_" {
				return "", false // the error is captured
			}
		}
		return "assigned to _", true
	}
	return "", false
}

// callSignature returns the signature of call's callee, if known.
func callSignature(pass *Pass, call *ast.CallExpr) *types.Signature {
	tv, ok := pass.Info.Types[call.Fun]
	if !ok {
		return nil
	}
	sig, _ := tv.Type.(*types.Signature)
	return sig
}
