// Package lint is the repository's static-analysis suite: it turns the
// ROADMAP's backend-matrix contract — bitwise-deterministic
// trajectories, tolerance-convergent HOGWILD, no-torn-read serving,
// error-checked transports — from prose into machine-checked law.
//
// The suite ships five analyzers, each enforcing one invariant the
// runtime tests assert only by example:
//
//   - detfloat: multi-accumulator float64 reductions and math.FMA
//     outside internal/simd's opt-in reassoc set. Reduction order
//     defines the bitwise class; a reassociated fold silently moves a
//     kernel out of it.
//   - mapiter: range over a map in a deterministic package. Go map
//     order is deliberately random; feeding it into float accumulation,
//     ordered output, or shard/manifest serialization breaks replay.
//     Collect-keys-then-sort in the same function is recognized and
//     allowed.
//   - nondet: math/rand, time.Now, and runtime.GOMAXPROCS in solver /
//     kernel hot paths. Per-worker streams must come from internal/rng,
//     clocks from the cost model, and worker-count sizing must never
//     leak into summation order.
//   - commerr: discarded errors from internal/mpi methods (Transport
//     Send/Recv/Close and the error-returning collectives) and from
//     file Close/Sync in the streaming/IO packages and the CLIs. PR 6
//     made these error-return for a reason.
//   - atomicguard: direct access to fields documented atomic-only
//     (mat.AtomicVec's bit storage, the serve registry's model pointer,
//     internal/simd's dispatch pointer, the runtime pool's taken[]
//     claims) outside their audited home file, and non-atomic element
//     access even inside it.
//
// Findings are suppressed per line with
//
//	//saco:nolint <analyzer>[,<analyzer>] <reason>
//
// where the reason is mandatory: a bare suppression is itself a
// diagnostic. A trailing comment suppresses its own line; a standalone
// comment suppresses the line that follows it.
//
// # Design note: no golang.org/x/tools dependency
//
// The suite deliberately mirrors the golang.org/x/tools/go/analysis
// shape (Analyzer, Pass, Report, analysistest-style fixtures with
// "want" comments) but is built entirely on the standard library, so
// it works in hermetic and offline builds with no module downloads.
// Package loading shells out to `go list -export -deps -json` and
// feeds the resulting export data to go/importer's gc importer via a
// lookup function — the same mechanism `go vet` uses — giving full,
// accurate type information for every package without compiling
// anything twice (the build cache is shared).
package lint
