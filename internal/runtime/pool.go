package runtime

import (
	stdruntime "runtime"
	"sync/atomic"
)

// hardCap bounds the number of worker goroutines a pool will ever spawn.
// Parked workers cost only a blocked goroutine, so the cap is a runaway
// backstop, not a tuning knob; useful parallelism is still governed by
// GOMAXPROCS.
const hardCap = 1024

// Pool is a persistent shared-memory worker pool. Workers are spawned
// lazily up to the requested width (never more than hardCap), park on a
// shared channel, and live for the life of the pool. The zero value is
// not usable; construct with NewPool or use the package-level Default.
type Pool struct {
	work    chan *job
	free    chan *job
	spawned atomic.Int64
}

// NewPool returns an empty pool; workers are spawned on demand as calls
// request width.
func NewPool() *Pool {
	return &Pool{
		work: make(chan *job, hardCap),
		free: make(chan *job, 64),
	}
}

// defaultPool is the process-wide pool every package-level entry point
// dispatches to. One pool is the point: solver kernels, BLAS helpers and
// cluster-parallel training all share the same parked workers instead of
// each spawning their own.
var defaultPool = NewPool()

// Default returns the process-wide pool.
func Default() *Pool { return defaultPool }

// Resolve normalizes a requested width: w > 0 is taken as-is, anything
// else means runtime.GOMAXPROCS(0) at the time of the call — not at
// package init — so GOMAXPROCS changes made after import take effect.
func Resolve(w int) int {
	if w > 0 {
		return w
	}
	return stdruntime.GOMAXPROCS(0) //saco:nolint nondet width sizes the worker pool only; For chunk geometry and Reduce summation order are fixed independently of it
}

// cacheLineItems is one 64-byte cache line of float64s. For-chunk sizes
// are rounded up to this granularity so chunk boundaries fall on cache
// lines (when the backing array is line-aligned, as Go's allocator gives
// large float64 slices): adjacent executors then never write the same
// line of an output vector.
const cacheLineItems = 8

// job is a reusable parallel-region descriptor. Executors (the caller
// plus any helping workers) claim work by atomically incrementing next:
// chunk index c covers [c·chunk, min((c+1)·chunk, n)) for a For job, or
// the half-open range [bounds[c], bounds[c+1]) for a Ranges job. Each
// chunk's taken flag is the single claim authority — an executor runs a
// chunk only after winning its CompareAndSwap — which is what lets the
// affinity fast path below coexist with counter-order stealing. refs
// counts executors still holding the descriptor; the last one out
// signals done, which is also what makes recycling safe — a descriptor
// is returned to the free list only after every reference is dead.
type job struct {
	body   func(lo, hi int)
	bounds []int // nil for For jobs
	n      int   // items (For) or ranges (Ranges)
	chunk  int   // chunk size (For); unused for Ranges
	chunks int   // number of claimable chunks
	taken  []atomic.Bool
	next   atomic.Int64
	refs   atomic.Int64
	done   chan struct{}
}

// exec runs one claimed chunk.
func (j *job) exec(c int) {
	if j.bounds != nil {
		lo, hi := j.bounds[c], j.bounds[c+1]
		if lo < hi {
			j.body(lo, hi)
		}
		return
	}
	lo := c * j.chunk
	hi := lo + j.chunk
	if hi > j.n {
		hi = j.n
	}
	j.body(lo, hi)
}

// run claims and executes chunks until none remain. id is the
// executor's stable identity: 0 for the dispatching caller, the spawn
// index for pool workers, -1 for a foreign job drained during a join.
//
// An executor first tries the chunk matching its own id. Because chunk
// boundaries depend only on (w, n, minChunk) and ids are stable for the
// life of the process, repeated regions over the same data send each
// worker back to the range it touched last time — the read-mostly
// shared vectors of iterative solvers (x in repeated MulVec calls, the
// residual in gradient sweeps) stay in that worker's private cache
// instead of migrating every iteration. Remaining chunks are then
// stolen in counter order, so a stalled executor never strands work.
func (j *job) run(id int) {
	if id >= 0 && id < j.chunks && j.taken[id].CompareAndSwap(false, true) {
		j.exec(id)
	}
	for {
		c := int(j.next.Add(1)) - 1
		if c >= j.chunks {
			return
		}
		if j.taken[c].CompareAndSwap(false, true) {
			j.exec(c)
		}
	}
}

// finish drops one reference, signalling the waiter when it was the
// last.
func (j *job) finish() {
	if j.refs.Add(-1) == 0 {
		j.done <- struct{}{}
	}
}

// worker is the persistent loop every pool goroutine parks in. id is
// the 1-based spawn index; it doubles as the worker's preferred chunk
// in every job it helps with (the dispatching caller claims chunk 0).
func (p *Pool) worker(id int) {
	for j := range p.work {
		j.run(id)
		j.finish()
	}
}

// getJob takes a recycled descriptor or allocates one.
func (p *Pool) getJob() *job {
	select {
	case j := <-p.free:
		return j
	default:
		return &job{done: make(chan struct{}, 1)}
	}
}

// putJob recycles a descriptor; safe because the caller observed
// refs == 0, which happens only after every executor finished touching
// it.
func (p *Pool) putJob(j *job) {
	j.body = nil
	j.bounds = nil
	select {
	case p.free <- j:
	default:
	}
}

// ensure spawns workers until at least w exist (capped at hardCap).
func (p *Pool) ensure(w int) {
	if w > hardCap {
		w = hardCap
	}
	for {
		cur := p.spawned.Load()
		if int(cur) >= w {
			return
		}
		if p.spawned.CompareAndSwap(cur, cur+1) {
			go p.worker(int(cur) + 1)
		}
	}
}

// execute runs a prepared job with up to w executors: the caller plus
// w−1 helping workers. Helper delivery is a buffered, non-blocking send
// — if the queue is full the region simply runs narrower — and the
// caller always claims chunks inline, so dispatch itself cannot block.
//
// The join is cooperative, which is what makes nested parallelism safe.
// A caller that finished its own chunks may still hold references: its
// undelivered queue entries, or helpers mid-chunk. Blocking outright
// here can deadlock when the caller is itself a pool worker — every
// worker can be parked in this join while the queue holds the very
// entries that would release them (e.g. cluster-parallel CA-SVM whose
// local solves use multicore kernels). So the waiting caller drains the
// queue instead: its own job's entries are cancelled (nobody else needs
// to consume them), other jobs' entries are executed on the spot. Each
// drained entry either resolves one of this job's references or makes
// progress on the job some other caller is waiting on, so joins ground
// out bottom-up through any nesting depth.
func (p *Pool) execute(j *job, w int) {
	j.next.Store(0)
	j.refs.Store(1)
	if cap(j.taken) >= j.chunks {
		j.taken = j.taken[:j.chunks]
		for i := range j.taken {
			j.taken[i].Store(false)
		}
	} else {
		j.taken = make([]atomic.Bool, j.chunks)
	}
	helpers := w - 1
	p.ensure(helpers)
deliver:
	for i := 0; i < helpers; i++ {
		j.refs.Add(1)
		select {
		case p.work <- j:
		default:
			// Queue full: plenty of work is already outstanding.
			j.refs.Add(-1)
			break deliver
		}
	}
	j.run(0)
	if j.refs.Add(-1) == 0 {
		p.putJob(j)
		return
	}
	for {
		select {
		case other := <-p.work:
			if other == j {
				// One of this job's own undelivered entries: every chunk is
				// already claimed (the caller's run only returns then), so
				// cancel the reference rather than re-run an empty claim loop.
				if j.refs.Add(-1) == 0 {
					p.putJob(j)
					return
				}
				continue
			}
			other.run(-1)
			other.finish()
		case <-j.done:
			p.putJob(j)
			return
		}
	}
}

// For splits [0,n) into contiguous chunks of at least minChunk items and
// runs body(lo, hi) on up to w executors from the pool (w <= 0 resolves
// to GOMAXPROCS at call time). It runs inline when the region is too
// small to split or only one executor is requested, so callers never pay
// dispatch on the tiny per-iteration blocks that dominate the solvers'
// inner loops. Chunk sizes above one cache line are rounded up to whole
// lines (cacheLineItems), so executors writing adjacent chunks of an
// output vector never share a line. Chunk boundaries still depend only
// on (w, n, minChunk), so any kernel that partitions independent output
// elements is bitwise identical at every width.
func (p *Pool) For(w, n, minChunk int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if minChunk < 1 {
		minChunk = 1
	}
	w = Resolve(w)
	if w > n/minChunk {
		w = n / minChunk
	}
	if w <= 1 {
		body(0, n)
		return
	}
	chunk := (n + w - 1) / w
	if chunk > cacheLineItems {
		chunk = (chunk + cacheLineItems - 1) &^ (cacheLineItems - 1)
	}
	chunks := (n + chunk - 1) / chunk
	if chunks <= 1 {
		body(0, n)
		return
	}
	j := p.getJob()
	j.body = body
	j.bounds = nil
	j.n = n
	j.chunk = chunk
	j.chunks = chunks
	p.execute(j, w)
}

// Ranges runs body on the consecutive half-open ranges
// [bounds[i], bounds[i+1]), claimed by up to len(bounds)-1 executors.
// It is the building block for load-balanced partitions whose chunk
// boundaries carry meaning — e.g. TriangleRanges for Gram assembly,
// where equal index ranges would give the first worker almost all the
// flops. Empty ranges are skipped.
func (p *Pool) Ranges(bounds []int, body func(lo, hi int)) {
	nr := len(bounds) - 1
	if nr <= 0 {
		return
	}
	if nr == 1 {
		if bounds[0] < bounds[1] {
			body(bounds[0], bounds[1])
		}
		return
	}
	j := p.getJob()
	j.body = body
	j.bounds = bounds
	j.n = nr
	j.chunks = nr
	p.execute(j, nr)
}

// For runs the region on the process-wide pool.
func For(w, n, minChunk int, body func(lo, hi int)) {
	defaultPool.For(w, n, minChunk, body)
}

// Ranges runs the partitioned region on the process-wide pool.
func Ranges(bounds []int, body func(lo, hi int)) {
	defaultPool.Ranges(bounds, body)
}

// Workers reports how many persistent workers the pool has spawned so
// far (they are created on demand, up to the largest width requested).
func (p *Pool) Workers() int { return int(p.spawned.Load()) }

// TriangleRanges partitions rows [0,n) of an upper-triangular loop
// (row i costs ~n−i) into at most parts ranges of roughly equal pair
// counts, returning the boundaries for Ranges. The split depends only on
// n and parts, never on scheduling, so partitioned kernels stay
// deterministic.
func TriangleRanges(n, parts int) []int {
	if parts < 1 {
		parts = 1
	}
	if parts > n {
		parts = n
	}
	bounds := make([]int, 1, parts+1)
	total := float64(n) * float64(n+1) / 2
	row := 0
	for p := 1; p < parts; p++ {
		// Row r has weight n−r; advance until this part holds ≥ total/parts.
		target := total * float64(p) / float64(parts)
		// Rows [0,r) cover n + (n−1) + ... + (n−r+1) = r·n − r(r−1)/2 pairs.
		for row < n {
			covered := float64(row)*float64(n) - float64(row)*float64(row-1)/2
			if covered >= target {
				break
			}
			row++
		}
		bounds = append(bounds, row)
	}
	bounds = append(bounds, n)
	return bounds
}

// Reduce folds leaf values over [0,n) into a single float64 with a
// deterministic tree: the range is cut into fixed-size chunks (chunk
// size depends only on n and minChunk, never on the worker count), leaf
// computes each chunk's partial, and the partials are combined pairwise
// along a binary tree in chunk-index order. The result is identical for
// every width — including 1 — which is what lets solvers call it from
// any backend without perturbing iterates. It does NOT generally equal
// the single left-to-right fold of a plain loop; callers that need that
// exact order (the distributed runtime's replicated state) must stay
// sequential.
func (p *Pool) Reduce(w, n, minChunk int, leaf func(lo, hi int) float64, combine func(a, b float64) float64) float64 {
	if n <= 0 {
		return 0
	}
	if minChunk < 1 {
		minChunk = 1
	}
	nc := (n + minChunk - 1) / minChunk
	if nc == 1 {
		return leaf(0, n)
	}
	partial := make([]float64, nc)
	p.For(w, nc, 1, func(clo, chi int) {
		for c := clo; c < chi; c++ {
			lo := c * minChunk
			hi := lo + minChunk
			if hi > n {
				hi = n
			}
			partial[c] = leaf(lo, hi)
		}
	})
	// Pairwise tree fold in chunk-index order: (p0⊕p1) ⊕ (p2⊕p3) ⊕ ...
	for nc > 1 {
		half := nc / 2
		for i := 0; i < half; i++ {
			partial[i] = combine(partial[2*i], partial[2*i+1])
		}
		if nc%2 == 1 {
			partial[half] = partial[nc-1]
			nc = half + 1
		} else {
			nc = half
		}
	}
	return partial[0]
}

// Reduce runs the deterministic tree reduction on the process-wide pool.
func Reduce(w, n, minChunk int, leaf func(lo, hi int) float64, combine func(a, b float64) float64) float64 {
	return defaultPool.Reduce(w, n, minChunk, leaf, combine)
}
