package runtime

import (
	"fmt"
	stdruntime "runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestForCoversRangeExactlyOnce checks every index is visited exactly
// once for a grid of sizes and widths, including widths far beyond n.
func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, w := range []int{0, 1, 2, 3, 7, 16, 100} {
		for _, n := range []int{0, 1, 2, 5, 63, 64, 65, 1000} {
			for _, minChunk := range []int{1, 3, 64} {
				hits := make([]int32, n)
				For(w, n, minChunk, func(lo, hi int) {
					if lo < 0 || hi > n || lo >= hi {
						t.Errorf("w=%d n=%d mc=%d: bad range [%d,%d)", w, n, minChunk, lo, hi)
						return
					}
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&hits[i], 1)
					}
				})
				for i, h := range hits {
					if h != 1 {
						t.Fatalf("w=%d n=%d mc=%d: index %d visited %d times", w, n, minChunk, i, h)
					}
				}
			}
		}
	}
}

// TestForMinChunkRespected: no chunk smaller than minChunk unless it is
// the whole (short) tail or the whole range.
func TestForMinChunkRespected(t *testing.T) {
	n, minChunk := 1000, 128
	var minSeen atomic.Int64
	minSeen.Store(int64(n))
	For(8, n, minChunk, func(lo, hi int) {
		sz := int64(hi - lo)
		for {
			cur := minSeen.Load()
			if sz >= cur || minSeen.CompareAndSwap(cur, sz) {
				break
			}
		}
	})
	// n/minChunk = 7 executors max, chunk = ceil(1000/7) = 143 > 128.
	if minSeen.Load() < int64(minChunk)/2 {
		t.Fatalf("chunk of %d items; minChunk %d", minSeen.Load(), minChunk)
	}
}

// TestForInlineWhenNarrow: width 1 (or tiny n) must run on the calling
// goroutine with a single body call.
func TestForInlineWhenNarrow(t *testing.T) {
	calls := 0
	For(1, 100, 1, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 100 {
			t.Fatalf("inline range [%d,%d)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("%d body calls inline", calls)
	}
	calls = 0
	For(8, 10, 100, func(lo, hi int) { calls++ }) // n < minChunk
	if calls != 1 {
		t.Fatalf("%d body calls for sub-chunk n", calls)
	}
}

// TestRangesCoversBounds verifies every nonempty range runs exactly once.
func TestRangesCoversBounds(t *testing.T) {
	bounds := []int{0, 10, 10, 35, 80, 100}
	var mu sync.Mutex
	got := map[[2]int]int{}
	Ranges(bounds, func(lo, hi int) {
		mu.Lock()
		got[[2]int{lo, hi}]++
		mu.Unlock()
	})
	want := [][2]int{{0, 10}, {10, 35}, {35, 80}, {80, 100}}
	if len(got) != len(want) {
		t.Fatalf("ranges executed: %v", got)
	}
	for _, r := range want {
		if got[r] != 1 {
			t.Fatalf("range %v executed %d times", r, got[r])
		}
	}
}

// TestNestedForNoDeadlock: a body that itself calls For must complete
// even when the pool is saturated — the caller always participates.
func TestNestedForNoDeadlock(t *testing.T) {
	var total atomic.Int64
	For(4, 8, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			For(4, 100, 1, func(l, h int) {
				total.Add(int64(h - l))
			})
		}
	})
	if total.Load() != 800 {
		t.Fatalf("nested total = %d", total.Load())
	}
}

// TestNestedForFreshPoolNoDeadlock is the regression test for the
// cooperative join: on a fresh pool (no idle workers left over from
// other regions) every outer executor nests another For, so each one
// must drain its own queued entries instead of waiting for a worker
// that is itself parked in a join. Before the cooperative join this
// deadlocked whenever live workers < outer width.
func TestNestedForFreshPoolNoDeadlock(t *testing.T) {
	p := NewPool()
	var total atomic.Int64
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		p.For(4, 8, 1, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				p.For(4, 100, 1, func(l, h int) {
					total.Add(int64(h - l))
				})
			}
		})
	}()
	select {
	case <-finished:
	case <-time.After(30 * time.Second):
		t.Fatal("nested For on a fresh pool deadlocked")
	}
	if total.Load() != 800 {
		t.Fatalf("nested total = %d", total.Load())
	}
}

// TestDeeplyNestedFreshPool grounds the join through three levels of
// nesting with contention from parallel outer callers.
func TestDeeplyNestedFreshPool(t *testing.T) {
	p := NewPool()
	var total atomic.Int64
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				p.For(3, 6, 1, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						p.For(3, 9, 1, func(l, h int) {
							for k := l; k < h; k++ {
								p.For(2, 10, 1, func(a, b int) {
									total.Add(int64(b - a))
								})
							}
						})
					}
				})
			}()
		}
		wg.Wait()
	}()
	select {
	case <-finished:
	case <-time.After(30 * time.Second):
		t.Fatal("deeply nested For deadlocked")
	}
	if want := int64(4 * 6 * 9 * 10); total.Load() != want {
		t.Fatalf("total = %d, want %d", total.Load(), want)
	}
}

// TestConcurrentRegions hammers one pool from many goroutines to shake
// out descriptor-recycling races (run under -race in CI).
func TestConcurrentRegions(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < 50; it++ {
				n := 100 + (g+it)%57
				sum := int64(0)
				var asum atomic.Int64
				For(3, n, 1, func(lo, hi int) {
					s := int64(0)
					for i := lo; i < hi; i++ {
						s += int64(i)
					}
					asum.Add(s)
				})
				sum = int64(n*(n-1)) / 2
				if asum.Load() != sum {
					t.Errorf("g=%d it=%d: sum %d want %d", g, it, asum.Load(), sum)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestWorkersPersist: repeated regions must reuse parked workers, not
// spawn per call.
func TestWorkersPersist(t *testing.T) {
	p := NewPool()
	for i := 0; i < 100; i++ {
		p.For(4, 1000, 1, func(lo, hi int) {})
	}
	if w := p.Workers(); w > 3 {
		t.Fatalf("pool spawned %d workers for width-4 regions", w)
	}
}

// TestResolveTracksGOMAXPROCS is the satellite fix: widths requested as
// 0 must follow GOMAXPROCS at call time, not at package init.
func TestResolveTracksGOMAXPROCS(t *testing.T) {
	old := stdruntime.GOMAXPROCS(0)
	defer stdruntime.GOMAXPROCS(old)
	stdruntime.GOMAXPROCS(3)
	if got := Resolve(0); got != 3 {
		t.Fatalf("Resolve(0) = %d after GOMAXPROCS(3)", got)
	}
	stdruntime.GOMAXPROCS(old)
	if got := Resolve(0); got != old {
		t.Fatalf("Resolve(0) = %d after restore", got)
	}
	if got := Resolve(5); got != 5 {
		t.Fatalf("Resolve(5) = %d", got)
	}
}

// TestReduceWidthInvariance: the tree reduction must give bit-identical
// results at every width, including 1.
func TestReduceWidthInvariance(t *testing.T) {
	n := 10000
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i%97)/7.0 - 3.5
	}
	leaf := func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			s += x[i] * x[i]
		}
		return s
	}
	add := func(a, b float64) float64 { return a + b }
	ref := Reduce(1, n, 512, leaf, add)
	for _, w := range []int{2, 3, 8, 0} {
		if got := Reduce(w, n, 512, leaf, add); got != ref {
			t.Fatalf("width %d: %v != %v", w, got, ref)
		}
	}
}

// TestTriangleRanges checks coverage and monotonicity of the triangular
// partitioner for a grid of sizes.
func TestTriangleRanges(t *testing.T) {
	for _, n := range []int{1, 2, 7, 64, 1000} {
		for _, parts := range []int{1, 2, 3, 8, n + 5} {
			b := TriangleRanges(n, parts)
			if b[0] != 0 || b[len(b)-1] != n {
				t.Fatalf("n=%d parts=%d: bounds %v", n, parts, b)
			}
			for i := 1; i < len(b); i++ {
				if b[i] < b[i-1] {
					t.Fatalf("n=%d parts=%d: non-monotone %v", n, parts, b)
				}
			}
		}
	}
}

func BenchmarkDispatchTinyRegions(b *testing.B) {
	// The pool's reason to exist: back-to-back small regions. Compare
	// against a per-call goroutine implementation by history.
	x := make([]float64, 4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		For(4, len(x), 256, func(lo, hi int) {
			for k := lo; k < hi; k++ {
				x[k] += 1
			}
		})
	}
}

func BenchmarkDispatchWidths(b *testing.B) {
	x := make([]float64, 1<<16)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("w=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				For(w, len(x), 1024, func(lo, hi int) {
					for k := lo; k < hi; k++ {
						x[k] += 1
					}
				})
			}
		})
	}
}

// TestForChunkAlignment: every chunk boundary (except 0 and n) falls on
// a cache-line multiple once chunks exceed one line, so adjacent
// executors never write the same 64-byte line of an output vector.
func TestForChunkAlignment(t *testing.T) {
	// n/w > cacheLineItems throughout; smaller chunks stay unaligned by
	// design (rounding them up would serialize the region).
	for _, w := range []int{2, 3, 5, 8, 16} {
		for _, n := range []int{200, 1000, 4097} {
			var mu sync.Mutex
			var bounds []int
			For(w, n, 1, func(lo, hi int) {
				mu.Lock()
				bounds = append(bounds, lo, hi)
				mu.Unlock()
			})
			for _, b := range bounds {
				if b == 0 || b == n {
					continue
				}
				if b%cacheLineItems != 0 {
					t.Fatalf("w=%d n=%d: boundary %d not a multiple of %d", w, n, b, cacheLineItems)
				}
			}
		}
	}
}

// TestForAffinityCoversExactlyOnce stresses the taken-flag claim path:
// repeated regions at widths around the chunk count must still visit
// every index exactly once even when affinity claims and counter steals
// race.
func TestForAffinityCoversExactlyOnce(t *testing.T) {
	const n = 1024
	for iter := 0; iter < 200; iter++ {
		w := 2 + iter%7
		hits := make([]int32, n)
		For(w, n, 8, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("iter=%d w=%d: index %d visited %d times", iter, w, i, h)
			}
		}
	}
}
