// Package runtime is the shared-memory execution layer of the
// repository: a persistent, long-lived worker pool behind a chunked
// fork-join API (For, Ranges) and the deterministic partitioners the
// kernels above it are built on.
//
// The pool exists because of the paper's workload shape. The solvers'
// per-iteration blocks are tiny (µ ≤ 8 in every experiment), so an
// execution layer that spawns goroutines per parallel region pays a
// dispatch cost comparable to the kernel itself. Here workers are
// spawned once, parked on a channel, and fed reusable job descriptors;
// steady-state dispatch is one channel send per helping worker plus
// atomic chunk claiming — no goroutine creation, no per-call
// synchronization beyond the final join.
//
// The determinism contract is unchanged from the fork-join layer this
// package replaces: a parallel kernel partitions only independent
// output elements across workers and leaves each element's summation
// order exactly as in the sequential code. Chunk boundaries depend only
// on (n, minChunk, width), never on scheduling, and which worker
// executes which chunk cannot affect any result. Multicore kernels are
// therefore bitwise identical to their sequential runs at every width —
// the shared-memory analogue of the paper's "same iterate sequence up
// to floating-point roundoff" claim, and the property internal/core's
// backend-equivalence tests pin end to end.
//
// Worker widths are resolved at call time: a width of 0 means
// runtime.GOMAXPROCS(0) as of the call, so GOMAXPROCS changes after
// package init take effect (unlike a pool sized once at import). The
// caller always participates in its own job, so a width-1 call runs
// inline on the calling goroutine, nested calls cannot deadlock, and
// progress never depends on pool capacity.
//
// The simulated distributed runtime (internal/mpi, internal/dist) runs
// one goroutine per rank; its ranks use this pool only when a per-rank
// core budget is configured (hybrid rank×thread runs), and its
// reductions always follow the binomial-tree order of the modeled
// collectives, never this package's.
package runtime
