// Package casvm implements the communication-eliminating SVM of You et
// al. ("CA-SVM", IPDPS 2015), which the paper discusses in §II: a k-means
// clustering pass partitions the data so that each processor trains an
// independent local SVM with no further communication, trading accuracy
// for the removed synchronization. The paper observes that "CA-SVM uses a
// local SVM solver which can be replaced with our SA-variant" — this
// package does exactly that, using the (SA-)dual-coordinate-descent
// solver of internal/core as the local trainer, so the two
// communication-reduction strategies compose.
package casvm

import (
	"errors"
	"fmt"
	"math"

	"saco/internal/core"
	"saco/internal/mat"
	"saco/internal/rng"
	rt "saco/internal/runtime"
	"saco/internal/sparse"
)

// Options configures a CA-SVM training run.
type Options struct {
	// Clusters is the number of k-means partitions (the processor count
	// of the original CA-SVM).
	Clusters int
	// KMeansIters bounds the Lloyd iterations (default 10).
	KMeansIters int
	// Seed drives centroid initialization.
	Seed uint64
	// Local configures the per-cluster dual CD solver; its S field makes
	// the local solver synchronization-avoiding, and its Exec field picks
	// the kernel backend inside each local solve.
	Local core.SVMOptions
	// Workers fans the independent per-cluster training runs (and the
	// k-means assignment scans) across a shared-memory pool; 0 or 1
	// trains sequentially. Cluster results are independent, so the model
	// is identical for every worker count.
	Workers int
}

// Model is a trained CA-SVM: one linear model per cluster, dispatched by
// nearest centroid.
type Model struct {
	Centroids []*centroid
	Weights   [][]float64 // per-cluster primal vectors
	// PureLabel[c] is nonzero when cluster c contained a single class; the
	// cluster then predicts that label constantly (no linear model can).
	PureLabel []float64
	// ClusterSizes records how many training points landed in each
	// cluster (diagnostic for degenerate clusterings).
	ClusterSizes []int
}

// centroid is a dense cluster center with its cached squared norm.
type centroid struct {
	v      []float64
	normSq float64
}

// Train clusters the rows of a and fits one local SVM per cluster.
func Train(a *sparse.CSR, b []float64, opt Options) (*Model, error) {
	m, n := a.Dims()
	if len(b) != m {
		return nil, fmt.Errorf("casvm: len(b)=%d for %d rows", len(b), m)
	}
	if opt.Clusters <= 0 {
		return nil, errors.New("casvm: Clusters must be positive")
	}
	if opt.Clusters > m {
		return nil, fmt.Errorf("casvm: %d clusters for %d points", opt.Clusters, m)
	}
	if opt.KMeansIters <= 0 {
		opt.KMeansIters = 10
	}

	assign, centroids := kmeansRows(a, opt.Clusters, opt.KMeansIters, opt.Seed, opt.Workers)

	model := &Model{
		Centroids:    centroids,
		ClusterSizes: make([]int, opt.Clusters),
		PureLabel:    make([]float64, opt.Clusters),
	}
	model.Weights = make([][]float64, opt.Clusters)
	rowsByCluster := make([][]int, opt.Clusters)
	for i, ci := range assign {
		rowsByCluster[ci] = append(rowsByCluster[ci], i)
	}
	// The per-cluster solves are CA-SVM's whole point: zero inter-cluster
	// communication, so they fan out across the pool embarrassingly. Each
	// iteration writes only its own cluster's model slots.
	errs := make([]error, opt.Clusters)
	rt.For(max(1, opt.Workers), opt.Clusters, 1, func(clo, chi int) {
		for c := clo; c < chi; c++ {
			rows := rowsByCluster[c]
			model.ClusterSizes[c] = len(rows)
			if len(rows) == 0 {
				model.Weights[c] = make([]float64, n)
				continue
			}
			sub, subLabels := extractRows(a, b, rows)
			if oneClass(subLabels) {
				// A pure cluster needs no solver: it predicts its label.
				model.Weights[c] = make([]float64, n)
				model.PureLabel[c] = subLabels[0]
				continue
			}
			lopt := opt.Local
			if lopt.Lambda == 0 {
				lopt.Lambda = 1
			}
			if lopt.Iters == 0 {
				lopt.Iters = 10 * len(rows)
			}
			res, err := core.SVM(sub, subLabels, lopt)
			if err != nil {
				errs[c] = err
				continue
			}
			model.Weights[c] = res.X
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return model, nil
}

// Predict returns the decision value for one sparse row (given as index/
// value pairs): the local model of the nearest centroid scores it.
func (md *Model) Predict(idx []int, val []float64) float64 {
	c := md.nearest(idx, val)
	if l := md.PureLabel[c]; l != 0 {
		return l
	}
	var s float64
	w := md.Weights[c]
	for k, j := range idx {
		s += w[j] * val[k]
	}
	return s
}

// PredictAll scores every row of a matrix.
func (md *Model) PredictAll(a *sparse.CSR) []float64 {
	out := make([]float64, a.M)
	for i := 0; i < a.M; i++ {
		lo, hi := a.RowPtr[i], a.RowPtr[i+1]
		out[i] = md.Predict(a.ColIdx[lo:hi], a.Val[lo:hi])
	}
	return out
}

// nearest returns the centroid index minimizing squared distance
// ‖x‖² − 2x·c + ‖c‖² (the ‖x‖² term is common, so only the last two are
// compared).
func (md *Model) nearest(idx []int, val []float64) int {
	best, bestScore := 0, math.Inf(1)
	for c, cen := range md.Centroids {
		var dot float64
		for k, j := range idx {
			dot += cen.v[j] * val[k]
		}
		if score := cen.normSq - 2*dot; score < bestScore {
			best, bestScore = c, score
		}
	}
	return best
}

// kmeansRows is Lloyd's algorithm over sparse rows with dense centroids,
// k-means++-style seeding from distinct random rows. The assignment scan
// — every row against every centroid, by far the dominant cost — fans
// out across workers; each row's nearest centroid is independent, so the
// clustering is identical for every worker count.
func kmeansRows(a *sparse.CSR, k, iters int, seed uint64, workers int) ([]int, []*centroid) {
	m, n := a.Dims()
	r := rng.New(seed)
	centroids := make([]*centroid, k)
	for c, row := range r.SampleK(m, k) {
		v := make([]float64, n)
		for p := a.RowPtr[row]; p < a.RowPtr[row+1]; p++ {
			v[a.ColIdx[p]] = a.Val[p]
		}
		centroids[c] = &centroid{v: v, normSq: mat.Nrm2Sq(v)}
	}
	assign := make([]int, m)
	next := make([]int, m)
	for it := 0; it < iters; it++ {
		rt.For(max(1, workers), m, 256, func(ilo, ihi int) {
			for i := ilo; i < ihi; i++ {
				lo, hi := a.RowPtr[i], a.RowPtr[i+1]
				best, bestScore := 0, math.Inf(1)
				for c, cen := range centroids {
					var dot float64
					for p := lo; p < hi; p++ {
						dot += cen.v[a.ColIdx[p]] * a.Val[p]
					}
					if score := cen.normSq - 2*dot; score < bestScore {
						best, bestScore = c, score
					}
				}
				next[i] = best
			}
		})
		changed := false
		for i, b := range next {
			if assign[i] != b {
				assign[i] = b
				changed = true
			}
		}
		if !changed && it > 0 {
			break
		}
		// Recompute centroids.
		counts := make([]int, k)
		for c := range centroids {
			mat.Fill(centroids[c].v, 0)
		}
		for i := 0; i < m; i++ {
			c := assign[i]
			counts[c]++
			for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
				centroids[c].v[a.ColIdx[p]] += a.Val[p]
			}
		}
		for c := range centroids {
			if counts[c] > 0 {
				mat.Scal(1/float64(counts[c]), centroids[c].v)
			}
			centroids[c].normSq = mat.Nrm2Sq(centroids[c].v)
		}
	}
	return assign, centroids
}

// extractRows builds the sub-matrix and labels of the selected rows.
func extractRows(a *sparse.CSR, b []float64, rows []int) (*sparse.CSR, []float64) {
	rowPtr := make([]int, len(rows)+1)
	var colIdx []int
	var val []float64
	labels := make([]float64, len(rows))
	for k, i := range rows {
		labels[k] = b[i]
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			colIdx = append(colIdx, a.ColIdx[p])
			val = append(val, a.Val[p])
		}
		rowPtr[k+1] = len(val)
	}
	return &sparse.CSR{M: len(rows), N: a.N, RowPtr: rowPtr, ColIdx: colIdx, Val: val}, labels
}

func oneClass(labels []float64) bool {
	for _, l := range labels[1:] {
		if l != labels[0] {
			return false
		}
	}
	return true
}
