package casvm

import (
	"testing"

	"saco/internal/core"
	"saco/internal/datagen"
	"saco/internal/rng"
	"saco/internal/sparse"
)

// blobData builds two well-separated Gaussian blobs per class so that
// k-means finds meaningful structure (the regime CA-SVM targets).
func blobData(seed uint64, m, n int) (*sparse.CSR, []float64) {
	r := rng.New(seed)
	coo := sparse.NewCOO(m, n)
	b := make([]float64, m)
	for i := 0; i < m; i++ {
		cls := i % 2
		blob := (i / 2) % 2 // two blobs per class at different offsets
		b[i] = float64(2*cls - 1)
		base := cls*6 + blob*3
		for j := 0; j < 4; j++ {
			coo.Add(i, (base+j)%n, 2+0.3*r.NormFloat64())
		}
		// Background noise features.
		for _, j := range r.SampleK(n, 2) {
			coo.Add(i, j, 0.2*r.NormFloat64())
		}
	}
	return coo.ToCSR(), b
}

func accuracy(scores, b []float64) float64 {
	correct := 0
	for i, s := range scores {
		if s*b[i] > 0 {
			correct++
		}
	}
	return float64(correct) / float64(len(b))
}

func TestCASVMTrainsAccurateLocalModels(t *testing.T) {
	a, b := blobData(1, 400, 30)
	model, err := Train(a, b, Options{
		Clusters: 4,
		Seed:     2,
		Local:    core.SVMOptions{Lambda: 1, Iters: 4000, Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(model.Weights) != 4 || len(model.Centroids) != 4 {
		t.Fatal("model shape wrong")
	}
	total := 0
	for _, sz := range model.ClusterSizes {
		total += sz
	}
	if total != 400 {
		t.Fatalf("cluster sizes sum to %d", total)
	}
	acc := accuracy(model.PredictAll(a), b)
	if acc < 0.9 {
		t.Fatalf("training accuracy %v too low", acc)
	}
}

// The §II composition claim: the local solver can be the SA variant, and
// the result is unchanged relative to the classical local solver.
func TestCASVMWithSALocalSolver(t *testing.T) {
	a, b := blobData(4, 300, 24)
	base := Options{Clusters: 3, Seed: 5, Local: core.SVMOptions{Lambda: 1, Iters: 3000, Seed: 6}}
	classic, err := Train(a, b, base)
	if err != nil {
		t.Fatal(err)
	}
	saOpt := base
	saOpt.Local.S = 100
	sa, err := Train(a, b, saOpt)
	if err != nil {
		t.Fatal(err)
	}
	for c := range classic.Weights {
		for j := range classic.Weights[c] {
			d := classic.Weights[c][j] - sa.Weights[c][j]
			if d < -1e-7 || d > 1e-7 {
				t.Fatalf("cluster %d weight %d differs: %v vs %v",
					c, j, classic.Weights[c][j], sa.Weights[c][j])
			}
		}
	}
}

// CA-SVM trades accuracy for communication: on non-clusterable data it
// must still work, and on clusterable data it should approach the global
// solver.
func TestCASVMVersusGlobalSVM(t *testing.T) {
	a, b := blobData(7, 400, 30)
	global, err := core.SVM(a, b, core.SVMOptions{Lambda: 1, Iters: 8000, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	margins := make([]float64, 400)
	a.MulVec(global.X, margins)
	globalAcc := accuracy(margins, b)

	model, err := Train(a, b, Options{Clusters: 4, Seed: 9, Local: core.SVMOptions{Lambda: 1, Iters: 4000, Seed: 10}})
	if err != nil {
		t.Fatal(err)
	}
	caAcc := accuracy(model.PredictAll(a), b)
	if caAcc < globalAcc-0.12 {
		t.Fatalf("CA-SVM accuracy %v too far below global %v", caAcc, globalAcc)
	}
}

func TestCASVMDegenerateClusters(t *testing.T) {
	// All-positive tiny dataset: pure clusters take the constant-model
	// path and prediction must not crash.
	d := datagen.Classification("pure", 11, 30, 10, 0.4, 0.01)
	for i := range d.B {
		d.B[i] = 1
	}
	model, err := Train(d.CSR, d.B, Options{Clusters: 2, Seed: 12, Local: core.SVMOptions{Lambda: 1, Iters: 100, Seed: 13}})
	if err != nil {
		t.Fatal(err)
	}
	scores := model.PredictAll(d.CSR)
	for i, s := range scores {
		if s < 0 {
			t.Fatalf("pure-positive cluster predicted negative at %d", i)
		}
	}
}

func TestCASVMValidation(t *testing.T) {
	a, b := blobData(14, 20, 10)
	if _, err := Train(a, b, Options{Clusters: 0}); err == nil {
		t.Fatal("expected cluster-count error")
	}
	if _, err := Train(a, b, Options{Clusters: 100}); err == nil {
		t.Fatal("expected too-many-clusters error")
	}
	if _, err := Train(a, b[:3], Options{Clusters: 2}); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestKMeansAssignsAllPointsAndConverges(t *testing.T) {
	a, _ := blobData(15, 200, 20)
	assign, cents := kmeansRows(a, 4, 20, 16, 1)
	if len(assign) != 200 || len(cents) != 4 {
		t.Fatal("kmeans output shape")
	}
	seen := make(map[int]bool)
	for _, c := range assign {
		if c < 0 || c >= 4 {
			t.Fatalf("assignment %d out of range", c)
		}
		seen[c] = true
	}
	if len(seen) < 2 {
		t.Fatal("kmeans collapsed to one cluster on blob data")
	}
}
