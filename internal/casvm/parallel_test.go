package casvm

import (
	"testing"
	"time"

	"saco/internal/core"
)

// TestTrainNestedPoolNoDeadlock pins the nested-parallelism contract end
// to end: cluster-parallel training whose local solves themselves use
// multicore kernels nests pool regions inside pool workers. With a
// blocking join this combination deadlocks whenever every worker is
// busy in an outer cluster body (it only ever worked when earlier tests
// happened to leave idle workers behind); the cooperative join drains
// the queue instead. Guarded by a timeout so a regression fails fast
// instead of hanging the suite, and meaningful regardless of which
// tests ran before it.
func TestTrainNestedPoolNoDeadlock(t *testing.T) {
	a, b := blobData(31, 320, 20)
	finished := make(chan error, 1)
	go func() {
		_, err := Train(a, b, Options{
			Clusters: 8,
			Workers:  8,
			Seed:     5,
			Local: core.SVMOptions{
				Lambda: 1, Iters: 3000, Seed: 7, S: 32,
				Exec: core.Exec{Backend: core.BackendMulticore, Workers: 8},
			},
		})
		finished <- err
	}()
	select {
	case err := <-finished:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("nested cluster-parallel training deadlocked")
	}
}

// TestTrainWorkerInvariant pins the cluster-parallel training contract:
// every cluster's local solve is independent, so the model is identical
// for any worker count (including the kernel backend inside each solve).
func TestTrainWorkerInvariant(t *testing.T) {
	a, b := blobData(29, 240, 24)
	base := Options{
		Clusters: 4,
		Seed:     3,
		Local:    core.SVMOptions{Lambda: 1, Iters: 2000, Seed: 7, S: 16},
	}
	ref, err := Train(a, b, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 8} {
		opt := base
		opt.Workers = w
		opt.Local.Exec = core.Exec{Backend: core.BackendMulticore, Workers: w}
		got, err := Train(a, b, opt)
		if err != nil {
			t.Fatal(err)
		}
		for c := range ref.Weights {
			if got.ClusterSizes[c] != ref.ClusterSizes[c] || got.PureLabel[c] != ref.PureLabel[c] {
				t.Fatalf("workers=%d: cluster %d metadata differs", w, c)
			}
			for j := range ref.Weights[c] {
				if got.Weights[c][j] != ref.Weights[c][j] {
					t.Fatalf("workers=%d: weight[%d][%d] %v != %v",
						w, c, j, got.Weights[c][j], ref.Weights[c][j])
				}
			}
		}
	}
}
