package casvm

import (
	"testing"

	"saco/internal/core"
)

// TestTrainWorkerInvariant pins the cluster-parallel training contract:
// every cluster's local solve is independent, so the model is identical
// for any worker count (including the kernel backend inside each solve).
func TestTrainWorkerInvariant(t *testing.T) {
	a, b := blobData(29, 240, 24)
	base := Options{
		Clusters: 4,
		Seed:     3,
		Local:    core.SVMOptions{Lambda: 1, Iters: 2000, Seed: 7, S: 16},
	}
	ref, err := Train(a, b, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 8} {
		opt := base
		opt.Workers = w
		opt.Local.Exec = core.Exec{Backend: core.BackendMulticore, Workers: w}
		got, err := Train(a, b, opt)
		if err != nil {
			t.Fatal(err)
		}
		for c := range ref.Weights {
			if got.ClusterSizes[c] != ref.ClusterSizes[c] || got.PureLabel[c] != ref.PureLabel[c] {
				t.Fatalf("workers=%d: cluster %d metadata differs", w, c)
			}
			for j := range ref.Weights[c] {
				if got.Weights[c][j] != ref.Weights[c][j] {
					t.Fatalf("workers=%d: weight[%d][%d] %v != %v",
						w, c, j, got.Weights[c][j], ref.Weights[c][j])
				}
			}
		}
	}
}
