// Package sparse implements the compressed sparse row (CSR) and column
// (CSC) matrix formats and the access kernels the synchronization-avoiding
// coordinate-descent solvers require:
//
//   - column sampling: extract µ (or s·µ) columns and form Gram matrices
//     AᵀS·A_S and products AᵀS·v (the Lasso side, 1D-row partitioned),
//   - row sampling: extract rows and form Gram matrices A_R·AᵀR and
//     products A_R·x (the SVM side, 1D-column partitioned),
//   - slicing by row/column ranges, which is how the distributed runtime
//     partitions a global matrix across ranks.
//
// The paper stores all datasets in 3-array CSR (§IV-B); this package also
// keeps CSC because the Lasso solvers sample columns, which is the natural
// CSC access pattern. Index arrays are int and values float64. Within each
// row (CSR) or column (CSC) the indices are strictly increasing, which the
// merge-based sparse dot products rely on; constructors enforce it.
package sparse
