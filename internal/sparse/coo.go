package sparse

import (
	"fmt"
	"sort"
)

// COO is a coordinate-format builder for sparse matrices. Entries may be
// added in any order; duplicates are summed when converting. The zero
// value is unusable; construct with NewCOO.
type COO struct {
	m, n int
	rows []int
	cols []int
	vals []float64
}

// NewCOO returns an empty m-by-n builder.
func NewCOO(m, n int) *COO {
	if m < 0 || n < 0 {
		panic(fmt.Sprintf("sparse: NewCOO negative dimension %dx%d", m, n))
	}
	return &COO{m: m, n: n}
}

// Dims returns the matrix dimensions (rows, columns).
func (c *COO) Dims() (int, int) { return c.m, c.n }

// NNZ returns the number of stored entries (before duplicate merging).
func (c *COO) NNZ() int { return len(c.vals) }

// Add appends the entry (i, j, v). Explicit zeros are dropped.
func (c *COO) Add(i, j int, v float64) {
	if i < 0 || i >= c.m || j < 0 || j >= c.n {
		panic(fmt.Sprintf("sparse: COO.Add (%d,%d) out of range %dx%d", i, j, c.m, c.n))
	}
	if v == 0 {
		return
	}
	c.rows = append(c.rows, i)
	c.cols = append(c.cols, j)
	c.vals = append(c.vals, v)
}

// ToCSR converts the accumulated entries to CSR, summing duplicates.
func (c *COO) ToCSR() *CSR {
	type ent struct {
		r, c int
		v    float64
	}
	ents := make([]ent, len(c.vals))
	for i := range c.vals {
		ents[i] = ent{c.rows[i], c.cols[i], c.vals[i]}
	}
	sort.Slice(ents, func(a, b int) bool {
		if ents[a].r != ents[b].r {
			return ents[a].r < ents[b].r
		}
		return ents[a].c < ents[b].c
	})
	rowPtr := make([]int, c.m+1)
	colIdx := make([]int, 0, len(ents))
	vals := make([]float64, 0, len(ents))
	for i := 0; i < len(ents); {
		j := i
		v := 0.0
		for j < len(ents) && ents[j].r == ents[i].r && ents[j].c == ents[i].c {
			v += ents[j].v
			j++
		}
		if v != 0 {
			colIdx = append(colIdx, ents[i].c)
			vals = append(vals, v)
			rowPtr[ents[i].r+1]++
		}
		i = j
	}
	for i := 0; i < c.m; i++ {
		rowPtr[i+1] += rowPtr[i]
	}
	return &CSR{M: c.m, N: c.n, RowPtr: rowPtr, ColIdx: colIdx, Val: vals}
}

// ToCSC converts the accumulated entries to CSC, summing duplicates.
func (c *COO) ToCSC() *CSC { return c.ToCSR().ToCSC() }
