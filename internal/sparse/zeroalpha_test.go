package sparse

import (
	"math"
	"testing"

	"saco/internal/mat"
)

// One test per Axpy-family variant: alpha == 0 (or an all-zero
// coefficient) must leave the destination untouched bit for bit — no
// -0 → +0 normalization, no NaN produced from 0·Inf — in the plain
// kernel AND its atomic mirror, for both sparse matrices and dense
// views. This pins the unified semantic documented in internal/simd
// (historically CSR.RowTAxpyAtomic and mat.ScatterAxpy disagreed with
// the rest of the family).

// poison returns a destination whose bits detect any write: NaN, ±Inf,
// -0 and ordinary values.
func poison(n int) []float64 {
	specials := []float64{math.NaN(), math.Inf(1), math.Inf(-1), math.Copysign(0, -1), 1.25, -3}
	out := make([]float64, n)
	for i := range out {
		out[i] = specials[i%len(specials)]
	}
	return out
}

func assertUntouched(t *testing.T, what string, got, want []float64) {
	t.Helper()
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: alpha==0 modified dst[%d]: %x -> %x",
				what, i, math.Float64bits(want[i]), math.Float64bits(got[i]))
		}
	}
}

func zeroAlphaFixture(t *testing.T) (*CSR, *CSC, *mat.Dense) {
	t.Helper()
	a, err := NewCSR(3, 4,
		[]int{0, 2, 3, 5},
		[]int{0, 2, 1, 0, 3},
		[]float64{1, math.Inf(1), -2, math.NaN(), 4})
	if err != nil {
		t.Fatal(err)
	}
	return a, a.ToCSC(), a.ToDense()
}

func TestZeroAlphaCSRRowTAxpy(t *testing.T) {
	a, _, _ := zeroAlphaFixture(t)
	want := poison(a.N)
	got := append([]float64(nil), want...)
	a.RowTAxpy(2, 0, got)
	assertUntouched(t, "CSR.RowTAxpy", got, want)
}

func TestZeroAlphaCSRRowTAxpyAtomic(t *testing.T) {
	a, _, _ := zeroAlphaFixture(t)
	want := poison(a.N)
	v := mat.NewAtomicVecFrom(want)
	a.RowTAxpyAtomic(2, 0, v)
	assertUntouched(t, "CSR.RowTAxpyAtomic", v.Snapshot(nil), want)
}

func TestZeroAlphaDenseRowsRowTAxpy(t *testing.T) {
	_, _, d := zeroAlphaFixture(t)
	rows := DenseRows{A: d}
	want := poison(d.C)
	got := append([]float64(nil), want...)
	rows.RowTAxpy(2, 0, got)
	assertUntouched(t, "DenseRows.RowTAxpy", got, want)
}

func TestZeroAlphaDenseRowsRowTAxpyAtomic(t *testing.T) {
	_, _, d := zeroAlphaFixture(t)
	rows := DenseRows{A: d}
	want := poison(d.C)
	v := mat.NewAtomicVecFrom(want)
	rows.RowTAxpyAtomic(2, 0, v)
	assertUntouched(t, "DenseRows.RowTAxpyAtomic", v.Snapshot(nil), want)
}

func TestZeroAlphaCSCColMulAdd(t *testing.T) {
	_, c, _ := zeroAlphaFixture(t)
	want := poison(c.M)
	got := append([]float64(nil), want...)
	c.ColMulAdd([]int{0, 2, 3}, []float64{0, 0, 0}, got)
	assertUntouched(t, "CSC.ColMulAdd", got, want)
}

func TestZeroAlphaCSCColMulAddAtomic(t *testing.T) {
	_, c, _ := zeroAlphaFixture(t)
	want := poison(c.M)
	v := mat.NewAtomicVecFrom(want)
	c.ColMulAddAtomic([]int{0, 2, 3}, []float64{0, 0, 0}, v)
	assertUntouched(t, "CSC.ColMulAddAtomic", v.Snapshot(nil), want)
}

// The dense column view is documented out-of-family: ColMulAdd
// accumulates a per-row dot that includes the zero coefficients and
// adds the (exact zero) sum to v, and its atomic mirror must match that
// — the pair's mutual consistency is the contract, asserted here on
// finite data where both resolve to the same bits.
func TestZeroAlphaDenseColsPairConsistent(t *testing.T) {
	_, _, d := zeroAlphaFixture(t)
	// Replace non-finite entries: the pair contract is bit-equality of
	// plain vs atomic, checked on data where += 0 is well defined.
	for i, v := range d.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			d.Data[i] = 0.5
		}
	}
	cols := DenseCols{A: d}
	base := []float64{1.25, math.Copysign(0, -1), -3, 2}[:d.R]
	plain := append([]float64(nil), base...)
	cols.ColMulAdd([]int{0, 2}, []float64{0, 0}, plain)
	v := mat.NewAtomicVecFrom(base)
	cols.ColMulAddAtomic([]int{0, 2}, []float64{0, 0}, v)
	assertUntouched(t, "DenseCols plain vs atomic", v.Snapshot(nil), plain)
}

func TestZeroAlphaMatAxpy(t *testing.T) {
	want := poison(7)
	got := append([]float64(nil), want...)
	mat.Axpy(0, []float64{1, math.Inf(1), math.NaN(), 2, 3, 4, 5}, got)
	assertUntouched(t, "mat.Axpy", got, want)
}

func TestZeroAlphaMatScatterAxpy(t *testing.T) {
	want := poison(7)
	got := append([]float64(nil), want...)
	mat.ScatterAxpy(0, got, []float64{math.Inf(1), math.NaN(), 2}, []int{1, 4, 6})
	assertUntouched(t, "mat.ScatterAxpy", got, want)
}
