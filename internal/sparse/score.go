package sparse

import (
	"fmt"

	"saco/internal/mat"
	rt "saco/internal/runtime"
	"saco/internal/simd"
)

// Batched model-scoring kernels: y = A·x for a *sparse* coefficient
// vector x given as strictly increasing (idx, val) pairs — the shape of
// a trained Lasso/SVM model, whose support is a small fraction of the
// feature space. The serving layer micro-batches concurrent prediction
// requests into one matrix A (CSR for sparse request rows, DenseRows for
// dense datasets) and makes a single kernel call, amortizing dispatch
// across the batch exactly like the solvers' Gram kernels.
//
// Every output row is an independent dot product with a fixed summation
// order, partitioned across the persistent worker pool, so a batched
// call is bitwise identical to scoring each row alone — the guarantee
// the serving tests pin.

// checkSparseVec validates the (idx, val) representation of a sparse
// model vector against the feature dimension n.
func checkSparseVec(n int, idx []int, val []float64) {
	if len(idx) != len(val) {
		panic(fmt.Sprintf("sparse: sparse vector index/value length mismatch %d != %d", len(idx), len(val)))
	}
	prev := -1
	for _, j := range idx {
		if j <= prev || j >= n {
			panic(fmt.Sprintf("sparse: sparse vector index %d out of order or out of range (n=%d)", j, n))
		}
		prev = j
	}
}

// MulSparseVec computes y[i] = A_i · x where x is the sparse vector
// Σ_k val[k]·e_idx[k] (indices strictly increasing). Each row is a
// two-pointer merge of the row's nonzeros with the model's support:
// O(nnz(row) + nnz(x)) per row, never touching the n-wide dense space.
// Rows partition across the kernel workers with unchanged per-row
// summation order, so results are bitwise identical at every width.
func (a *CSR) MulSparseVec(idx []int, val []float64, y []float64) {
	if len(y) != a.M {
		panic(fmt.Sprintf("sparse: MulSparseVec shape mismatch A=%dx%d len(y)=%d", a.M, a.N, len(y)))
	}
	checkSparseVec(a.N, idx, val)
	rt.For(a.KernelWorkers(), a.M, 64, func(lo, hi int) {
		kr := simd.Active()
		for i := lo; i < hi; i++ {
			p, end := a.RowPtr[i], a.RowPtr[i+1]
			y[i] = kr.MergeDot(0, a.ColIdx[p:end], a.Val[p:end], idx, val)
		}
	})
}

// MulSparseVec computes y[i] = A_i · x for a dense batch against the
// sparse model x: each row reads only the model's support coordinates
// (mat.SparseDot), so the cost is rows × nnz(x). Rows partition across
// the kernel workers; per-row order is fixed, results bitwise identical
// at every width.
func (d DenseRows) MulSparseVec(idx []int, val []float64, y []float64) {
	if len(y) != d.A.R {
		panic(fmt.Sprintf("sparse: DenseRows.MulSparseVec shape mismatch A=%dx%d len(y)=%d", d.A.R, d.A.C, len(y)))
	}
	checkSparseVec(d.A.C, idx, val)
	rt.For(d.KernelWorkers(), d.A.R, 64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			y[i] = mat.SparseDot(d.A.Row(i), idx, val)
		}
	})
}
