package sparse

import (
	"fmt"

	"saco/internal/mat"
	rt "saco/internal/runtime"
	"saco/internal/simd"
)

// CSR is a compressed sparse row matrix. Row i occupies the half-open
// index range [RowPtr[i], RowPtr[i+1]) of ColIdx and Val, with ColIdx
// strictly increasing within a row.
type CSR struct {
	M, N   int
	RowPtr []int
	ColIdx []int
	Val    []float64

	// workers is the kernel worker count (0 or 1 = sequential); set via
	// WithKernelWorkers so views, not mutation, select the backend.
	workers int
}

// NewCSR validates the three arrays and returns the matrix. It returns an
// error (rather than panicking) because CSR data often arrives from disk.
func NewCSR(m, n int, rowPtr, colIdx []int, val []float64) (*CSR, error) {
	if len(rowPtr) != m+1 {
		return nil, fmt.Errorf("sparse: len(rowPtr)=%d, want %d", len(rowPtr), m+1)
	}
	if len(colIdx) != len(val) {
		return nil, fmt.Errorf("sparse: len(colIdx)=%d != len(val)=%d", len(colIdx), len(val))
	}
	if rowPtr[0] != 0 || rowPtr[m] != len(val) {
		return nil, fmt.Errorf("sparse: rowPtr bounds [%d,%d], want [0,%d]", rowPtr[0], rowPtr[m], len(val))
	}
	for i := 0; i < m; i++ {
		if rowPtr[i] > rowPtr[i+1] {
			return nil, fmt.Errorf("sparse: rowPtr not monotone at row %d", i)
		}
		for k := rowPtr[i]; k < rowPtr[i+1]; k++ {
			if colIdx[k] < 0 || colIdx[k] >= n {
				return nil, fmt.Errorf("sparse: column %d out of range in row %d", colIdx[k], i)
			}
			if k > rowPtr[i] && colIdx[k] <= colIdx[k-1] {
				return nil, fmt.Errorf("sparse: columns not strictly increasing in row %d", i)
			}
		}
	}
	return &CSR{M: m, N: n, RowPtr: rowPtr, ColIdx: colIdx, Val: val}, nil
}

// Dims returns (rows, columns).
func (a *CSR) Dims() (int, int) { return a.M, a.N }

// NNZ returns the number of stored nonzeros.
func (a *CSR) NNZ() int { return len(a.Val) }

// Density returns NNZ/(M·N), the f of the paper's cost model (Table I).
func (a *CSR) Density() float64 {
	if a.M == 0 || a.N == 0 {
		return 0
	}
	return float64(a.NNZ()) / (float64(a.M) * float64(a.N))
}

// RowNNZ returns the number of nonzeros in row i.
func (a *CSR) RowNNZ(i int) int { return a.RowPtr[i+1] - a.RowPtr[i] }

// MulVec computes y = A·x. len(x) must be N and len(y) must be M. Rows
// are partitioned across the kernel workers: each y[i] is one row dot
// with a fixed summation order, so the multicore result is bitwise
// identical to the sequential one.
func (a *CSR) MulVec(x, y []float64) {
	if len(x) != a.N || len(y) != a.M {
		panic(fmt.Sprintf("sparse: MulVec shape mismatch A=%dx%d len(x)=%d len(y)=%d", a.M, a.N, len(x), len(y)))
	}
	rt.For(a.KernelWorkers(), a.M, 128, func(lo, hi int) {
		simd.SpMVRows(a.RowPtr, a.ColIdx, a.Val, x, y, lo, hi)
	})
}

// MulVecT computes y = Aᵀ·x. len(x) must be M and len(y) must be N.
func (a *CSR) MulVecT(x, y []float64) {
	if len(x) != a.M || len(y) != a.N {
		panic(fmt.Sprintf("sparse: MulVecT shape mismatch A=%dx%d len(x)=%d len(y)=%d", a.M, a.N, len(x), len(y)))
	}
	mat.Fill(y, 0)
	k := simd.Active()
	for i := 0; i < a.M; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		p0, p1 := a.RowPtr[i], a.RowPtr[i+1]
		k.ScatterAxpy(xi, y, a.Val[p0:p1], a.ColIdx[p0:p1])
	}
}

// RowMulVec computes dst[k] = A_{rows[k]} · x, the batched row-vector dot
// products the SVM solvers need (Alg. 4 line 10: x' = Yᵀ·x).
func (a *CSR) RowMulVec(rows []int, x []float64, dst []float64) {
	if len(x) != a.N || len(dst) != len(rows) {
		panic("sparse: RowMulVec shape mismatch")
	}
	rt.For(a.KernelWorkers(), len(rows), 1, func(lo, hi int) {
		kr := simd.Active()
		for k := lo; k < hi; k++ {
			r := rows[k]
			p0, p1 := a.RowPtr[r], a.RowPtr[r+1]
			dst[k] = kr.GatherDot(0, a.Val[p0:p1], a.ColIdx[p0:p1], x)
		}
	})
}

// RowTAxpy performs x += alpha·A_rowᵀ, the primal-vector update of the
// dual CD SVM (Alg. 3 line 15).
func (a *CSR) RowTAxpy(row int, alpha float64, x []float64) {
	if len(x) != a.N {
		panic("sparse: RowTAxpy shape mismatch")
	}
	p0, p1 := a.RowPtr[row], a.RowPtr[row+1]
	simd.ScatterAxpy(alpha, x, a.Val[p0:p1], a.ColIdx[p0:p1])
}

// RowNormSq returns ‖A_row‖², the diagonal Gram entry η of Alg. 3 line 7.
func (a *CSR) RowNormSq(row int) float64 {
	return simd.Nrm2Sq(0, a.Val[a.RowPtr[row]:a.RowPtr[row+1]])
}

// RowGram computes dst = A_R·AᵀR for the row set R (|R|×|R|), the s×s Gram
// matrix of Alg. 4 line 9 (without the γ regularization, which the solver
// adds on the diagonal). Rows are merged pairwise using the sorted column
// indices; dst must be |R|×|R|.
func (a *CSR) RowGram(rows []int, dst *mat.Dense) {
	s := len(rows)
	if dst.R != s || dst.C != s {
		panic("sparse: RowGram dst shape mismatch")
	}
	// Triangle rows are independent and balanced with TriangleRanges;
	// every entry remains one sorted-merge rowDot, so the s×s SA-SVM Gram
	// is bitwise identical on every backend.
	// Only the upper triangle is written inside the parallel region; the
	// mirror happens after the join. Mirroring inline would write dst(j,i)
	// from the worker that owns row i — a cache line owned by another
	// worker's rows — and the resulting false sharing bounces the Gram
	// block between cores on every entry.
	gramRows := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ri := rows[i]
			for j := i; j < s; j++ {
				dst.Set(i, j, a.rowDot(ri, rows[j]))
			}
		}
	}
	if w := a.KernelWorkers(); w > 1 && s >= 4 {
		rt.Ranges(rt.TriangleRanges(s, w), gramRows)
	} else {
		gramRows(0, s)
	}
	dst.MirrorUpper()
}

// rowDot returns A_i · A_j via a sorted merge of the two rows.
func (a *CSR) rowDot(i, j int) float64 {
	p, pEnd := a.RowPtr[i], a.RowPtr[i+1]
	q, qEnd := a.RowPtr[j], a.RowPtr[j+1]
	return simd.MergeDot(0, a.ColIdx[p:pEnd], a.Val[p:pEnd], a.ColIdx[q:qEnd], a.Val[q:qEnd])
}

// RowDot returns A_i · B_j via a sorted merge of row i of a and row j of
// b, which must share a column space. With a == b and i == j it reduces
// to the in-matrix rowDot; the two-matrix form lets out-of-core row
// views (package stream) compute Gram entries between rows that live in
// different shards with the exact summation order of the in-memory
// RowGram.
func RowDot(a *CSR, i int, b *CSR, j int) float64 {
	if a.N != b.N {
		panic(fmt.Sprintf("sparse: RowDot column spaces %d and %d differ", a.N, b.N))
	}
	p, pEnd := a.RowPtr[i], a.RowPtr[i+1]
	q, qEnd := b.RowPtr[j], b.RowPtr[j+1]
	return simd.MergeDot(0, a.ColIdx[p:pEnd], a.Val[p:pEnd], b.ColIdx[q:qEnd], b.Val[q:qEnd])
}

// SliceRows returns the submatrix of rows [r0, r1) with the same column
// space. This is the 1D-row partitioner used for the Lasso layout.
func (a *CSR) SliceRows(r0, r1 int) *CSR {
	if r0 < 0 || r1 < r0 || r1 > a.M {
		panic(fmt.Sprintf("sparse: SliceRows [%d,%d) out of range", r0, r1))
	}
	lo, hi := a.RowPtr[r0], a.RowPtr[r1]
	rowPtr := make([]int, r1-r0+1)
	for i := range rowPtr {
		rowPtr[i] = a.RowPtr[r0+i] - lo
	}
	colIdx := make([]int, hi-lo)
	copy(colIdx, a.ColIdx[lo:hi])
	val := make([]float64, hi-lo)
	copy(val, a.Val[lo:hi])
	return &CSR{M: r1 - r0, N: a.N, RowPtr: rowPtr, ColIdx: colIdx, Val: val}
}

// SliceCols returns the submatrix of columns [c0, c1), reindexed to start
// at zero, keeping all rows. This is the 1D-column partitioner used for
// the SVM layout.
func (a *CSR) SliceCols(c0, c1 int) *CSR {
	if c0 < 0 || c1 < c0 || c1 > a.N {
		panic(fmt.Sprintf("sparse: SliceCols [%d,%d) out of range", c0, c1))
	}
	rowPtr := make([]int, a.M+1)
	var colIdx []int
	var val []float64
	for i := 0; i < a.M; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if c := a.ColIdx[k]; c >= c0 && c < c1 {
				colIdx = append(colIdx, c-c0)
				val = append(val, a.Val[k])
			}
		}
		rowPtr[i+1] = len(val)
	}
	return &CSR{M: a.M, N: c1 - c0, RowPtr: rowPtr, ColIdx: colIdx, Val: val}
}

// ToCSC converts to compressed sparse column format.
func (a *CSR) ToCSC() *CSC {
	colPtr := make([]int, a.N+1)
	for _, c := range a.ColIdx {
		colPtr[c+1]++
	}
	for j := 0; j < a.N; j++ {
		colPtr[j+1] += colPtr[j]
	}
	rowIdx := make([]int, a.NNZ())
	val := make([]float64, a.NNZ())
	next := make([]int, a.N)
	copy(next, colPtr[:a.N])
	for i := 0; i < a.M; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			c := a.ColIdx[k]
			p := next[c]
			rowIdx[p] = i
			val[p] = a.Val[k]
			next[c]++
		}
	}
	return &CSC{M: a.M, N: a.N, ColPtr: colPtr, RowIdx: rowIdx, Val: val}
}

// ToDense expands to a dense matrix (for tests and tiny problems).
func (a *CSR) ToDense() *mat.Dense {
	d := mat.NewDense(a.M, a.N)
	for i := 0; i < a.M; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			d.Set(i, a.ColIdx[k], a.Val[k])
		}
	}
	return d
}

// FromDense compresses a dense matrix, dropping exact zeros.
func FromDense(d *mat.Dense) *CSR {
	rowPtr := make([]int, d.R+1)
	var colIdx []int
	var val []float64
	for i := 0; i < d.R; i++ {
		row := d.Row(i)
		for j, v := range row {
			if v != 0 {
				colIdx = append(colIdx, j)
				val = append(val, v)
			}
		}
		rowPtr[i+1] = len(val)
	}
	return &CSR{M: d.R, N: d.C, RowPtr: rowPtr, ColIdx: colIdx, Val: val}
}
