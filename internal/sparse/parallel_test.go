package sparse

import (
	"math/rand"
	"testing"

	"saco/internal/mat"
)

func sameVec(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d != %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: element %d: parallel %v != sequential %v", name, i, got[i], want[i])
		}
	}
}

// TestParallelKernelsBitwiseIdentical pins the backend contract: every
// parallel kernel partitions independent outputs with unchanged
// summation order, so multicore views produce bitwise-identical results
// for any worker count.
func TestParallelKernelsBitwiseIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	csr := randCSR(rng, 300, 120, 0.15)
	csc := csr.ToCSC()
	x := randVec(rng, 120)
	v := randVec(rng, 300)
	cols := rng.Perm(120)[:40]
	rows := rng.Perm(300)[:48]

	for _, w := range []int{2, 8, 32} {
		pcsr := csr.WithKernelWorkers(w).(*CSR)
		pcsc := csc.WithKernelWorkers(w).(*CSC)

		y1 := make([]float64, 300)
		y2 := make([]float64, 300)
		csr.MulVec(x, y1)
		pcsr.MulVec(x, y2)
		sameVec(t, "CSR.MulVec", y2, y1)

		d1 := make([]float64, len(rows))
		d2 := make([]float64, len(rows))
		csr.RowMulVec(rows, x, d1)
		pcsr.RowMulVec(rows, x, d2)
		sameVec(t, "CSR.RowMulVec", d2, d1)

		g1 := mat.NewDense(len(rows), len(rows))
		g2 := mat.NewDense(len(rows), len(rows))
		csr.RowGram(rows, g1)
		pcsr.RowGram(rows, g2)
		sameVec(t, "CSR.RowGram", g2.Data, g1.Data)

		c1 := make([]float64, len(cols))
		c2 := make([]float64, len(cols))
		csc.ColTMulVec(cols, v, c1)
		pcsc.ColTMulVec(cols, v, c2)
		sameVec(t, "CSC.ColTMulVec", c2, c1)

		gg1 := mat.NewDense(len(cols), len(cols))
		gg2 := mat.NewDense(len(cols), len(cols))
		csc.ColGram(cols, gg1)
		pcsc.ColGram(cols, gg2)
		sameVec(t, "CSC.ColGram", gg2.Data, gg1.Data)

		t1 := make([]float64, 120)
		t2 := make([]float64, 120)
		csc.MulVecT(v, t1)
		pcsc.MulVecT(v, t2)
		sameVec(t, "CSC.MulVecT", t2, t1)
	}
}

func TestDenseViewParallelKernelsBitwiseIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	d := mat.NewDense(200, 80)
	for i := range d.Data {
		if rng.Float64() < 0.7 {
			d.Data[i] = rng.NormFloat64()
		}
	}
	x := randVec(rng, 80)
	v := randVec(rng, 200)
	cols := rng.Perm(80)[:24]
	rows := rng.Perm(200)[:32]
	coef := randVec(rng, len(cols))

	seqC := DenseCols{A: d}
	seqR := DenseRows{A: d}
	for _, w := range []int{2, 8} {
		parC := seqC.WithKernelWorkers(w).(DenseCols)
		parR := seqR.WithKernelWorkers(w).(DenseRows)

		c1 := make([]float64, len(cols))
		c2 := make([]float64, len(cols))
		seqC.ColTMulVec(cols, v, c1)
		parC.ColTMulVec(cols, v, c2)
		sameVec(t, "DenseCols.ColTMulVec", c2, c1)

		m1 := randVec(rng, 200)
		m2 := append([]float64(nil), m1...)
		seqC.ColMulAdd(cols, coef, m1)
		parC.ColMulAdd(cols, coef, m2)
		sameVec(t, "DenseCols.ColMulAdd", m2, m1)

		g1 := mat.NewDense(len(cols), len(cols))
		g2 := mat.NewDense(len(cols), len(cols))
		seqC.ColGram(cols, g1)
		parC.ColGram(cols, g2)
		sameVec(t, "DenseCols.ColGram", g2.Data, g1.Data)

		y1 := make([]float64, 200)
		y2 := make([]float64, 200)
		seqC.MulVec(x, y1)
		parC.MulVec(x, y2)
		sameVec(t, "DenseCols.MulVec", y2, y1)

		r1 := make([]float64, len(rows))
		r2 := make([]float64, len(rows))
		seqR.RowMulVec(rows, x, r1)
		parR.RowMulVec(rows, x, r2)
		sameVec(t, "DenseRows.RowMulVec", r2, r1)

		rg1 := mat.NewDense(len(rows), len(rows))
		rg2 := mat.NewDense(len(rows), len(rows))
		seqR.RowGram(rows, rg1)
		parR.RowGram(rows, rg2)
		sameVec(t, "DenseRows.RowGram", rg2.Data, rg1.Data)
	}
}

func TestWithKernelWorkersIsAView(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	csr := randCSR(rng, 50, 20, 0.2)
	if csr.KernelWorkers() != 1 {
		t.Fatalf("fresh CSR workers = %d, want sequential", csr.KernelWorkers())
	}
	p := csr.WithKernelWorkers(4).(*CSR)
	if p.KernelWorkers() != 4 || csr.KernelWorkers() != 1 {
		t.Fatal("WithKernelWorkers must not mutate the receiver")
	}
	if &p.Val[0] != &csr.Val[0] {
		t.Fatal("view must share storage")
	}
	if q := csr.WithKernelWorkers(0).(*CSR); q.KernelWorkers() != 1 {
		t.Fatal("w=0 must normalize to sequential")
	}
}
