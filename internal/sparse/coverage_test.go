package sparse

import (
	"math/rand"
	"testing"

	"saco/internal/mat"
)

// Direct tests of the accessor and conversion methods that the solver
// packages exercise only indirectly.
func TestAccessorsAndConversions(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	a := randCSR(rng, 9, 7, 0.4)
	if m, n := a.Dims(); m != 9 || n != 7 {
		t.Fatal("CSR.Dims")
	}
	if a.RowNNZ(0) != a.RowPtr[1]-a.RowPtr[0] {
		t.Fatal("RowNNZ")
	}

	c := a.ToCSC()
	if m, n := c.Dims(); m != 9 || n != 7 {
		t.Fatal("CSC.Dims")
	}
	if c.ColNNZ(3) != c.ColPtr[4]-c.ColPtr[3] {
		t.Fatal("ColNNZ")
	}
	if !c.ToDense().Equal(a.ToDense()) {
		t.Fatal("CSC.ToDense mismatch")
	}

	coo := NewCOO(3, 2)
	if m, n := coo.Dims(); m != 3 || n != 2 {
		t.Fatal("COO.Dims")
	}
	coo.Add(1, 1, 4)
	if coo.NNZ() != 1 {
		t.Fatal("COO.NNZ")
	}
	if coo.ToCSC().ToDense().At(1, 1) != 4 {
		t.Fatal("COO.ToCSC")
	}
}

func TestCSCMulVecBothWays(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	a := randCSR(rng, 12, 8, 0.35)
	c := a.ToCSC()
	x := randVec(rng, 8)
	y1 := make([]float64, 12)
	y2 := make([]float64, 12)
	a.MulVec(x, y1)
	c.MulVec(x, y2)
	for i := range y1 {
		if !approxEq(y1[i], y2[i], 1e-12) {
			t.Fatalf("CSC.MulVec[%d]", i)
		}
	}
	v := randVec(rng, 12)
	w1 := make([]float64, 8)
	w2 := make([]float64, 8)
	a.MulVecT(v, w1)
	c.MulVecT(v, w2)
	for i := range w1 {
		if !approxEq(w1[i], w2[i], 1e-12) {
			t.Fatalf("CSC.MulVecT[%d]", i)
		}
	}
}

func TestDenseViewDimsAndMulVecT(t *testing.T) {
	d := mat.NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	dc := DenseCols{A: d}
	dr := DenseRows{A: d}
	if m, n := dc.Dims(); m != 2 || n != 3 {
		t.Fatal("DenseCols.Dims")
	}
	if m, n := dr.Dims(); m != 2 || n != 3 {
		t.Fatal("DenseRows.Dims")
	}
	y := make([]float64, 2)
	dc.MulVec([]float64{1, 1, 1}, y)
	if y[0] != 6 || y[1] != 15 {
		t.Fatalf("DenseCols.MulVec = %v", y)
	}
	w := make([]float64, 3)
	dc.MulVecT([]float64{1, 1}, w)
	if w[0] != 5 || w[1] != 7 || w[2] != 9 {
		t.Fatalf("DenseCols.MulVecT = %v", w)
	}
	x := make([]float64, 3)
	dr.RowTAxpy(1, 2, x)
	if x[0] != 8 || x[1] != 10 || x[2] != 12 {
		t.Fatalf("DenseRows.RowTAxpy = %v", x)
	}
	y2 := make([]float64, 2)
	dr.MulVec([]float64{1, 0, 0}, y2)
	if y2[0] != 1 || y2[1] != 4 {
		t.Fatalf("DenseRows.MulVec = %v", y2)
	}
}

func TestZeroCoefficientFastPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	a := randCSR(rng, 10, 6, 0.5)
	c := a.ToCSC()
	v := make([]float64, 10)
	// Zero coefficients and zero x entries exercise the skip branches.
	c.ColMulAdd([]int{0, 1}, []float64{0, 0}, v)
	for _, e := range v {
		if e != 0 {
			t.Fatal("ColMulAdd with zero coef changed v")
		}
	}
	y := make([]float64, 6)
	a.MulVecT(make([]float64, 10), y)
	for _, e := range y {
		if e != 0 {
			t.Fatal("MulVecT of zero vector nonzero")
		}
	}
}
