package sparse

import (
	"fmt"

	"saco/internal/mat"
	rt "saco/internal/runtime"
	"saco/internal/simd"
)

// CSC is a compressed sparse column matrix. Column j occupies the
// half-open range [ColPtr[j], ColPtr[j+1]) of RowIdx and Val, with RowIdx
// strictly increasing within a column. It is the working format of the
// Lasso solvers, which sample columns every iteration.
type CSC struct {
	M, N   int
	ColPtr []int
	RowIdx []int
	Val    []float64

	// workers is the kernel worker count (0 or 1 = sequential); set via
	// WithKernelWorkers so views, not mutation, select the backend.
	workers int
}

// NewCSC validates the three arrays and returns the matrix. It returns an
// error (rather than panicking) because CSC data now also arrives from
// disk (the column-sharded spill format of package stream), mirroring
// NewCSR.
func NewCSC(m, n int, colPtr, rowIdx []int, val []float64) (*CSC, error) {
	if len(colPtr) != n+1 {
		return nil, fmt.Errorf("sparse: len(colPtr)=%d, want %d", len(colPtr), n+1)
	}
	if len(rowIdx) != len(val) {
		return nil, fmt.Errorf("sparse: len(rowIdx)=%d != len(val)=%d", len(rowIdx), len(val))
	}
	if colPtr[0] != 0 || colPtr[n] != len(val) {
		return nil, fmt.Errorf("sparse: colPtr bounds [%d,%d], want [0,%d]", colPtr[0], colPtr[n], len(val))
	}
	for j := 0; j < n; j++ {
		if colPtr[j] > colPtr[j+1] {
			return nil, fmt.Errorf("sparse: colPtr not monotone at column %d", j)
		}
		for p := colPtr[j]; p < colPtr[j+1]; p++ {
			if rowIdx[p] < 0 || rowIdx[p] >= m {
				return nil, fmt.Errorf("sparse: row %d out of range in column %d", rowIdx[p], j)
			}
			if p > colPtr[j] && rowIdx[p] <= rowIdx[p-1] {
				return nil, fmt.Errorf("sparse: rows not strictly increasing in column %d", j)
			}
		}
	}
	return &CSC{M: m, N: n, ColPtr: colPtr, RowIdx: rowIdx, Val: val}, nil
}

// Dims returns (rows, columns).
func (a *CSC) Dims() (int, int) { return a.M, a.N }

// NNZ returns the number of stored nonzeros.
func (a *CSC) NNZ() int { return len(a.Val) }

// ColNNZ returns the number of nonzeros in column j.
func (a *CSC) ColNNZ(j int) int { return a.ColPtr[j+1] - a.ColPtr[j] }

// Density returns NNZ/(M·N), the f of the paper's cost model (Table I).
func (a *CSC) Density() float64 {
	if a.M == 0 || a.N == 0 {
		return 0
	}
	return float64(a.NNZ()) / (float64(a.M) * float64(a.N))
}

// ColNormSq returns ‖A_:j‖², the 1×1 Gram matrix of coordinate descent.
func (a *CSC) ColNormSq(j int) float64 {
	return simd.Nrm2Sq(0, a.Val[a.ColPtr[j]:a.ColPtr[j+1]])
}

// ColTMulVec computes dst[k] = A_:cols[k] · v, i.e. dst = A_Sᵀ·v. This is
// the dot-product step of Fig. 1 (lines 8–9 of Alg. 1); in the distributed
// layout each rank calls it on its local row block and the results are
// summed by an Allreduce.
func (a *CSC) ColTMulVec(cols []int, v []float64, dst []float64) {
	if len(v) != a.M || len(dst) != len(cols) {
		panic(fmt.Sprintf("sparse: ColTMulVec shape mismatch A=%dx%d len(v)=%d", a.M, a.N, len(v)))
	}
	// Each dst[k] is an independent column dot with a fixed summation
	// order, so partitioning the output keeps results bitwise identical.
	rt.For(a.KernelWorkers(), len(cols), 1, func(lo, hi int) {
		kr := simd.Active()
		for k := lo; k < hi; k++ {
			j := cols[k]
			p0, p1 := a.ColPtr[j], a.ColPtr[j+1]
			dst[k] = kr.GatherDot(0, a.Val[p0:p1], a.RowIdx[p0:p1], v)
		}
	})
}

// ColMulAdd computes v += A_S·coef, the residual update z̃ += A_h·Δz
// (Alg. 1 line 15). coef[k] multiplies column cols[k]. It stays
// sequential on every backend: the column scatter writes overlapping
// rows of v, and the sampled blocks are small enough (≤ sµ columns) that
// a race-free row-partitioned rewrite would cost more than it saves.
func (a *CSC) ColMulAdd(cols []int, coef []float64, v []float64) {
	if len(v) != a.M || len(coef) != len(cols) {
		panic("sparse: ColMulAdd shape mismatch")
	}
	kr := simd.Active()
	for k, j := range cols {
		p0, p1 := a.ColPtr[j], a.ColPtr[j+1]
		kr.ScatterAxpy(coef[k], v, a.Val[p0:p1], a.RowIdx[p0:p1])
	}
}

// ColGram computes dst = A_SᵀA_S for the column set S (|S|×|S|): the µ×µ
// Gram matrix of Alg. 1 line 8, or the sµ×sµ batched Gram matrix of
// Alg. 2 line 11 when S concatenates s sampled blocks. Only the upper
// triangle is computed and then mirrored, matching the paper's footnote 3
// (symmetry halves the flops and message size).
func (a *CSC) ColGram(cols []int, dst *mat.Dense) {
	s := len(cols)
	if dst.R != s || dst.C != s {
		panic("sparse: ColGram dst shape mismatch")
	}
	// Rows of the upper triangle are independent; TriangleRanges balances
	// the shrinking row lengths so the batched sµ×sµ Gram of the SA
	// solvers spreads evenly over the pool. Entry values are unchanged —
	// each is still one sorted-merge colDot.
	// The mirror writes happen after the parallel join: writing dst(j,i)
	// from the worker that owns row i lands on cache lines owned by other
	// workers' rows and bounces the Gram block between cores.
	gramRows := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ci := cols[i]
			for j := i; j < s; j++ {
				dst.Set(i, j, a.colDot(ci, cols[j]))
			}
		}
	}
	if w := a.KernelWorkers(); w > 1 && s >= 4 {
		rt.Ranges(rt.TriangleRanges(s, w), gramRows)
	} else {
		gramRows(0, s)
	}
	dst.MirrorUpper()
}

// ColTMulVecAcc accumulates dst[k] += A_:cols[k] · v term by term,
// continuing the running sum already in dst. It is the row-block
// continuation kernel of the out-of-core column views (package stream):
// when A is split into consecutive row blocks A = [B₀; B₁; …] and the
// blocks are visited in order with v sliced to the matching rows, the
// additions onto dst[k] happen in exactly the row order of the
// in-memory ColTMulVec, so the streamed result is bitwise identical.
func (a *CSC) ColTMulVecAcc(cols []int, v []float64, dst []float64) {
	if len(v) != a.M || len(dst) != len(cols) {
		panic(fmt.Sprintf("sparse: ColTMulVecAcc shape mismatch A=%dx%d len(v)=%d", a.M, a.N, len(v)))
	}
	kr := simd.Active()
	for k, j := range cols {
		p0, p1 := a.ColPtr[j], a.ColPtr[j+1]
		dst[k] = kr.GatherDot(dst[k], a.Val[p0:p1], a.RowIdx[p0:p1], v)
	}
}

// ColGramAcc accumulates the upper triangle of A_SᵀA_S into dst,
// continuing the running sums already there; callers mirror the lower
// triangle (mat.Dense.MirrorUpper) after the final block. Like
// ColTMulVecAcc it threads each entry's accumulator through consecutive
// row blocks in row order, so Σ_blocks ColGramAcc followed by one mirror
// is bitwise identical to the in-memory ColGram.
func (a *CSC) ColGramAcc(cols []int, dst *mat.Dense) {
	s := len(cols)
	if dst.R != s || dst.C != s {
		panic("sparse: ColGramAcc dst shape mismatch")
	}
	for i := 0; i < s; i++ {
		ci := cols[i]
		for j := i; j < s; j++ {
			dst.Set(i, j, a.colDotAcc(ci, cols[j], dst.At(i, j)))
		}
	}
}

// ColNormSqAcc returns acc + ‖A_:j‖² accumulated term by term, the
// row-block continuation of ColNormSq.
func (a *CSC) ColNormSqAcc(j int, acc float64) float64 {
	return simd.Nrm2Sq(acc, a.Val[a.ColPtr[j]:a.ColPtr[j+1]])
}

// colDot returns A_:i · A_:j via a sorted merge of the two columns.
func (a *CSC) colDot(i, j int) float64 { return a.colDotAcc(i, j, 0) }

// colDotAcc continues a running dot product over this block's rows.
func (a *CSC) colDotAcc(i, j int, s float64) float64 {
	p, pEnd := a.ColPtr[i], a.ColPtr[i+1]
	q, qEnd := a.ColPtr[j], a.ColPtr[j+1]
	return simd.MergeDot(s, a.RowIdx[p:pEnd], a.Val[p:pEnd], a.RowIdx[q:qEnd], a.Val[q:qEnd])
}

// MulVec computes y = A·x by column accumulation.
func (a *CSC) MulVec(x, y []float64) {
	if len(x) != a.N || len(y) != a.M {
		panic("sparse: CSC.MulVec shape mismatch")
	}
	mat.Fill(y, 0)
	kr := simd.Active()
	for j := 0; j < a.N; j++ {
		p0, p1 := a.ColPtr[j], a.ColPtr[j+1]
		kr.ScatterAxpy(x[j], y, a.Val[p0:p1], a.RowIdx[p0:p1])
	}
}

// MulVecT computes y = Aᵀ·x, partitioning output columns across the
// kernel workers (each y[j] keeps its sequential summation order).
func (a *CSC) MulVecT(x, y []float64) {
	if len(x) != a.M || len(y) != a.N {
		panic("sparse: CSC.MulVecT shape mismatch")
	}
	rt.For(a.KernelWorkers(), a.N, 64, func(lo, hi int) {
		kr := simd.Active()
		for j := lo; j < hi; j++ {
			p0, p1 := a.ColPtr[j], a.ColPtr[j+1]
			y[j] = kr.GatherDot(0, a.Val[p0:p1], a.RowIdx[p0:p1], x)
		}
	})
}

// ToCSR converts to compressed sparse row format.
func (a *CSC) ToCSR() *CSR {
	rowPtr := make([]int, a.M+1)
	for _, r := range a.RowIdx {
		rowPtr[r+1]++
	}
	for i := 0; i < a.M; i++ {
		rowPtr[i+1] += rowPtr[i]
	}
	colIdx := make([]int, a.NNZ())
	val := make([]float64, a.NNZ())
	next := make([]int, a.M)
	copy(next, rowPtr[:a.M])
	for j := 0; j < a.N; j++ {
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			r := a.RowIdx[p]
			q := next[r]
			colIdx[q] = j
			val[q] = a.Val[p]
			next[r]++
		}
	}
	return &CSR{M: a.M, N: a.N, RowPtr: rowPtr, ColIdx: colIdx, Val: val}
}

// ToDense expands to a dense matrix.
func (a *CSC) ToDense() *mat.Dense {
	d := mat.NewDense(a.M, a.N)
	for j := 0; j < a.N; j++ {
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			d.Set(a.RowIdx[p], j, a.Val[p])
		}
	}
	return d
}
