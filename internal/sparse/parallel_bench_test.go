package sparse

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"saco/internal/mat"
)

// benchWorkers is the worker ladder every kernel benchmark climbs:
// sequential, the 4-worker point of the acceptance criterion, and the
// whole machine (deduplicated on small hosts).
func benchWorkers() []int {
	ws := []int{1, 4, runtime.GOMAXPROCS(0)}
	out := ws[:1]
	for _, w := range ws[1:] {
		if w > out[len(out)-1] {
			out = append(out, w)
		}
	}
	return out
}

// benchDims picks the kernel problem size: CI smoke runs stay small
// under -short, local runs measure at paper-figure scale.
func benchDims(b *testing.B) (m, n, k int, density float64) {
	if testing.Short() {
		return 2000, 800, 64, 0.05
	}
	return 20000, 4000, 256, 0.02
}

// BenchmarkGram measures the batched sµ×sµ Gram assembly G = YᵀY of the
// SA Lasso outer iteration (Alg. 2 line 11) at one worker versus all
// cores — the kernel the paper's batched-communication trade lives on.
func BenchmarkGram(b *testing.B) {
	m, n, k, density := benchDims(b)
	rng := rand.New(rand.NewSource(41))
	csc := randCSR(rng, m, n, density).ToCSC()
	cols := rng.Perm(n)[:k]
	dst := mat.NewDense(k, k)
	for _, w := range benchWorkers() {
		pm := csc.WithKernelWorkers(w).(*CSC)
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pm.ColGram(cols, dst)
			}
		})
	}
}

// BenchmarkSpMV measures the row-partitioned CSR y = A·x kernel.
func BenchmarkSpMV(b *testing.B) {
	m, n, _, density := benchDims(b)
	rng := rand.New(rand.NewSource(42))
	csr := randCSR(rng, m, n, density)
	x := randVec(rng, n)
	y := make([]float64, m)
	for _, w := range benchWorkers() {
		pm := csr.WithKernelWorkers(w).(*CSR)
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pm.MulVec(x, y)
			}
		})
	}
}

// BenchmarkRowGram measures the s×s dual-SVM row Gram (Alg. 4 line 9).
func BenchmarkRowGram(b *testing.B) {
	m, n, k, density := benchDims(b)
	rng := rand.New(rand.NewSource(43))
	csr := randCSR(rng, m, n, density)
	rows := rng.Perm(m)[:k]
	dst := mat.NewDense(k, k)
	for _, w := range benchWorkers() {
		pm := csr.WithKernelWorkers(w).(*CSR)
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pm.RowGram(rows, dst)
			}
		})
	}
}
